package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunErrorPaths drives run() through the flag and startup error surface:
// failures must land on stderr with the documented non-zero exit status.
// (The happy serving path is exercised end to end by the service tests and
// the CI server-smoke step.)
func TestRunErrorPaths(t *testing.T) {
	cases := []struct {
		name       string
		args       []string
		wantCode   int
		wantStderr string
	}{
		{"bad flag", []string{"-bogus"}, 2, "flag provided but not defined"},
		{"flag help", []string{"-h"}, 0, "-data"},
		{"metrics flag documented", []string{"-h"}, 0, "-metrics"},
		{"bad metrics value", []string{"-metrics=maybe"}, 2, "invalid boolean value"},
		{"malformed data flag", []string{"-data", "justaname"}, 2, "want name=path"},
		{"empty data name", []string{"-data", "=path"}, 2, "want name=path"},
		{"unreadable dataset", []string{"-data", "x=/no/such/file.dat"}, 1, "no such file"},
		{"invalid dataset name", []string{"-data", "a;b=../../testdata/golden_input.dat"}, 1, "invalid dataset name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			code := run(tc.args, &stderr)
			if code != tc.wantCode {
				t.Fatalf("exit code = %d, want %d\nstderr: %s", code, tc.wantCode, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Errorf("stderr %q missing %q", stderr.String(), tc.wantStderr)
			}
		})
	}
}

func TestDataFlagsString(t *testing.T) {
	var d dataFlags
	if err := d.Set("a=x"); err != nil {
		t.Fatal(err)
	}
	if err := d.Set("b=y"); err != nil {
		t.Fatal(err)
	}
	if got := d.String(); got != "a=x,b=y" {
		t.Errorf("String() = %q", got)
	}
}

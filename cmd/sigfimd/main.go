// Command sigfimd serves the significance-mining pipeline over HTTP: named
// datasets are registered once (at startup or by upload) and analysis jobs
// run asynchronously on a bounded worker pool, with repeated queries served
// from a deterministic result cache.
//
// Usage:
//
//	sigfimd [-addr :8080] [-data name=path]... [-workers N] [-queue N]
//	        [-cache N] [-max-upload BYTES] [-metrics=false]
//	        [-workers-remote http://h1:8080,http://h2:8080]
//	        [-workers-remote-timeout 2m] [-workers-remote-hedge 500ms]
//	        [-workers-remote-rangesize auto|N] [-workers-remote-rangetarget 2s]
//	        [-partials-inflight N] [-trace-retention N] [-debug-addr :6060]
//
// Each -data flag registers one FIMI file (gzip detected transparently)
// under a name before the server starts listening. Quickstart:
//
//	sigfimd -addr :8080 -data golden=testdata/golden_input.dat &
//	curl localhost:8080/healthz
//	curl -X POST localhost:8080/v1/jobs \
//	     -d '{"dataset":"golden","kind":"significant","k":2,"config":{"Delta":120,"Seed":9}}'
//	curl localhost:8080/v1/jobs/j000001          # poll status/progress/result
//	curl localhost:8080/v1/jobs/j000001/events   # live SSE progress stream
//	curl localhost:8080/v1/stats
//	curl localhost:8080/metrics                  # Prometheus text format
//
// -metrics=false leaves GET /metrics unrouted (the other endpoints are
// unaffected). "sigfim jobs watch JOB" renders the SSE stream as a live
// progress line.
//
// -workers-remote turns the instance into a coordinator: every job's Monte
// Carlo replicates are sharded across the listed sigfimd workers, addressed
// by dataset content hash (register the same files on each worker; names may
// differ). The workers run under a supervisor shared by all jobs: every
// range request carries the -workers-remote-timeout deadline, a worker that
// keeps failing is ejected and re-probed (/healthz, exponential backoff)
// until it answers again, a 503-shedding worker is backed off without being
// ejected, -workers-remote-hedge re-dispatches straggling ranges to a second
// worker, and a range no worker serves is mined locally — all without
// changing a byte of the result, which stays bit-identical to a
// single-process run. Every sigfimd serves POST /v1/partials, so any
// instance can act as a worker — the flag only controls whether this one
// fans out; -partials-inflight bounds how many partials a worker mines
// concurrently before it sheds load with 503 + Retry-After.
// -workers-remote-rangesize pins the replicates per dispatched range, or
// (the "auto" default) sizes ranges from each worker's observed latency so a
// range takes about -workers-remote-rangetarget of wall time; either way the
// result bytes are unchanged.
//
// Every job records a span trace — queue wait, dataset warm-up, Monte Carlo
// phases, per-range fabric dispatches — served at GET /v1/jobs/{id}/trace
// and rendered by "sigfim jobs trace JOB"; -trace-retention bounds how many
// completed traces are kept (LRU, default 128). -debug-addr starts an
// opt-in net/http/pprof listener on a separate address (keep it private: it
// exposes profiling data and is deliberately not on the API listener).
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight HTTP requests and
// running jobs are drained (up to a timeout), queued jobs are canceled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sigfim/internal/service"
)

// dataFlags collects repeated -data name=path registrations.
type dataFlags []struct{ name, path string }

func (d *dataFlags) String() string {
	var parts []string
	for _, e := range *d {
		parts = append(parts, e.name+"="+e.path)
	}
	return strings.Join(parts, ",")
}

func (d *dataFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*d = append(*d, struct{ name, path string }{name, path})
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// run is main without os.Exit, so tests can drive the flag and startup error
// paths directly.
func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("sigfimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 2, "job worker pool size")
	queue := fs.Int("queue", 64, "job queue capacity (backpressure bound)")
	cacheSize := fs.Int("cache", 256, "result cache entries (negative disables)")
	maxUpload := fs.Int64("max-upload", 1<<30, "max dataset upload size in bytes")
	metricsOn := fs.Bool("metrics", true, "serve Prometheus metrics at GET /metrics")
	workersRemote := fs.String("workers-remote", "", "comma-separated sigfimd worker base URLs to shard Monte Carlo replicates across (coordinator mode)")
	remoteTimeout := fs.Duration("workers-remote-timeout", 0, "per-range HTTP deadline for remote workers (0 = 2m)")
	remoteHedge := fs.Duration("workers-remote-hedge", 0, "hedge a straggling range onto a second worker after this delay (0 disables)")
	remoteRangeSize := fs.String("workers-remote-rangesize", "auto", "replicates per remote range: auto (latency-driven) or a positive integer")
	remoteRangeTarget := fs.Duration("workers-remote-rangetarget", 0, "target wall time per autotuned remote range (0 = 2s)")
	partialsInflight := fs.Int("partials-inflight", 0, "max concurrent POST /v1/partials before shedding with 503 (0 = max(8, 4*GOMAXPROCS), negative = unlimited)")
	traceRetention := fs.Int("trace-retention", 0, "completed job traces kept for GET /v1/jobs/{id}/trace (0 = 128, negative disables)")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this separate address (empty disables; keep private)")
	drain := fs.Duration("drain", 30*time.Second, "graceful shutdown drain timeout")
	var data dataFlags
	fs.Var(&data, "data", "register dataset as name=path (repeatable)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	var remote []string
	for _, w := range strings.Split(*workersRemote, ",") {
		if w = strings.TrimSpace(w); w != "" {
			remote = append(remote, w)
		}
	}
	rangeSize := 0
	if v := *remoteRangeSize; v != "" && v != "auto" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			fmt.Fprintf(stderr, "sigfimd: invalid -workers-remote-rangesize %q (want auto or a positive integer)\n", v)
			return 2
		}
		rangeSize = n
	}

	logger := slog.New(slog.NewTextHandler(stderr, nil))
	srv := service.New(service.Options{
		Workers:           *workers,
		QueueCap:          *queue,
		CacheSize:         *cacheSize,
		MaxUploadBytes:    *maxUpload,
		DisableMetrics:    !*metricsOn,
		RemoteWorkers:     remote,
		RemoteTimeout:     *remoteTimeout,
		RemoteHedgeDelay:  *remoteHedge,
		RemoteRangeSize:   rangeSize,
		RemoteRangeTarget: *remoteRangeTarget,
		PartialsInflight:  *partialsInflight,
		TraceRetention:    *traceRetention,
		Logger:            logger,
	})
	for _, e := range data {
		info, err := srv.Registry().RegisterFile(e.name, e.path)
		if err != nil {
			fmt.Fprintln(stderr, "sigfimd:", err)
			return 1
		}
		logger.Info("dataset registered", "name", info.Name, "hash", info.Hash,
			"transactions", info.NumTransactions, "items", info.NumItems)
	}

	// The pprof surface is opt-in and on its own listener so profiling
	// endpoints are never reachable through the API address. The explicit
	// mux avoids http.DefaultServeMux (and the side-effect registration a
	// blank pprof import would do on it).
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbg := &http.Server{Addr: *debugAddr, Handler: dmux}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("debug listener failed", "addr", *debugAddr, "err", err)
			}
		}()
		defer dbg.Close()
		logger.Info("pprof debug listener", "addr", *debugAddr)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "datasets", srv.Registry().Len())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		// ListenAndServe only returns on failure (bad address, port in use).
		fmt.Fprintln(stderr, "sigfimd:", err)
		return 1
	case <-ctx.Done():
	}

	logger.Info("shutting down", "drain_timeout", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	httpErr := httpSrv.Shutdown(drainCtx)
	jobErr := srv.Shutdown(drainCtx)
	if httpErr != nil || jobErr != nil {
		fmt.Fprintln(stderr, "sigfimd: shutdown:", errors.Join(httpErr, jobErr))
		return 1
	}
	logger.Info("bye")
	return 0
}

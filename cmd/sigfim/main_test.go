package main

import (
	"bytes"
	"strings"
	"testing"
)

const goldenPath = "../../testdata/golden_input.dat"

// TestRunExitCodes drives the extracted run() through the CLI's error
// surface: every failure mode must land on stderr with the documented
// non-zero exit status — never a panic — and the happy paths must exit 0.
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name       string
		args       []string
		wantCode   int
		wantStderr string // substring; "" = don't care
		wantStdout string // substring; "" = don't care
	}{
		{"no args", nil, 2, "usage:", ""},
		{"help", []string{"help"}, 0, "usage:", ""},
		{"unknown subcommand", []string{"transmogrify"}, 2, "unknown subcommand", ""},
		{"bad flag", []string{"mine", "-bogus"}, 2, "flag provided but not defined", ""},
		{"flag help", []string{"mine", "-h"}, 0, "-minsup", ""},
		{"missing input", []string{"mine", "-minsup", "5"}, 1, "missing -in", ""},
		{"unreadable input", []string{"mine", "-in", "/no/such/file.dat", "-minsup", "5"}, 1, "no such file", ""},
		{"bad algorithm", []string{"mine", "-in", goldenPath, "-minsup", "5", "-algo", "quantum"}, 1, "unknown algorithm", ""},
		{"smin missing input", []string{"smin"}, 1, "missing -in", ""},
		{"smin bad path", []string{"smin", "-in", "/no/such/file.dat"}, 1, "no such file", ""},
		{"significant bad path", []string{"significant", "-in", "/no/such/file.dat"}, 1, "no such file", ""},
		{"closed bad path", []string{"closed", "-in", "/no/such/file.dat"}, 1, "no such file", ""},
		{"rules bad path", []string{"rules", "-in", "/no/such/file.dat"}, 1, "no such file", ""},
		{"smin bad delta", []string{"smin", "-in", goldenPath, "-delta=-1"}, 1, "Delta", ""},
		{"smin bad null", []string{"smin", "-in", goldenPath, "-null", "bogus"}, 1, "unknown null model", ""},
		{"smin rejects swap null", []string{"smin", "-in", goldenPath, "-null", "swap"}, 1, "independence null", ""},
		{"significant bad null", []string{"significant", "-in", goldenPath, "-null", "bogus"}, 1, "unknown null model", ""},
		{"mine ok", []string{"mine", "-in", goldenPath, "-minsup", "80", "-k", "2", "-top", "3"}, 0, "", "itemsets with support >= 80"},
		{"smin ok", []string{"smin", "-in", goldenPath, "-delta", "30", "-seed", "5"}, 0, "", "s_min = "},
		{"significant swap ok", []string{"significant", "-in", goldenPath, "-delta", "30", "-seed", "5", "-null", "swap", "-swap-ppo", "2", "-top", "0"}, 0, "", "null model: swap randomization"},
		{"closed ok", []string{"closed", "-in", goldenPath, "-minsup", "100", "-top", "3"}, 0, "", "closed itemsets"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("exit code = %d, want %d\nstdout: %s\nstderr: %s",
					code, tc.wantCode, stdout.String(), stderr.String())
			}
			if tc.wantStderr != "" && !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Errorf("stderr %q missing %q", stderr.String(), tc.wantStderr)
			}
			if tc.wantStdout != "" && !strings.Contains(stdout.String(), tc.wantStdout) {
				t.Errorf("stdout %q missing %q", stdout.String(), tc.wantStdout)
			}
			if code != 0 && stderr.Len() == 0 {
				t.Error("non-zero exit with empty stderr")
			}
		})
	}
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sigfim"
	"sigfim/internal/service"
)

const goldenPath = "../../testdata/golden_input.dat"

// TestRunExitCodes drives the extracted run() through the CLI's error
// surface: every failure mode must land on stderr with the documented
// non-zero exit status — never a panic — and the happy paths must exit 0.
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name       string
		args       []string
		wantCode   int
		wantStderr string // substring; "" = don't care
		wantStdout string // substring; "" = don't care
	}{
		{"no args", nil, 2, "usage:", ""},
		{"help", []string{"help"}, 0, "usage:", ""},
		{"unknown subcommand", []string{"transmogrify"}, 2, "unknown subcommand", ""},
		{"bad flag", []string{"mine", "-bogus"}, 2, "flag provided but not defined", ""},
		{"flag help", []string{"mine", "-h"}, 0, "-minsup", ""},
		{"missing input", []string{"mine", "-minsup", "5"}, 1, "missing -in", ""},
		{"unreadable input", []string{"mine", "-in", "/no/such/file.dat", "-minsup", "5"}, 1, "no such file", ""},
		{"bad algorithm", []string{"mine", "-in", goldenPath, "-minsup", "5", "-algo", "quantum"}, 1, "unknown algorithm", ""},
		{"smin missing input", []string{"smin"}, 1, "missing -in", ""},
		{"smin bad path", []string{"smin", "-in", "/no/such/file.dat"}, 1, "no such file", ""},
		{"significant bad path", []string{"significant", "-in", "/no/such/file.dat"}, 1, "no such file", ""},
		{"closed bad path", []string{"closed", "-in", "/no/such/file.dat"}, 1, "no such file", ""},
		{"rules bad path", []string{"rules", "-in", "/no/such/file.dat"}, 1, "no such file", ""},
		{"smin bad delta", []string{"smin", "-in", goldenPath, "-delta=-1"}, 1, "Delta", ""},
		{"smin bad null", []string{"smin", "-in", goldenPath, "-null", "bogus"}, 1, "unknown null model", ""},
		{"smin rejects swap null", []string{"smin", "-in", goldenPath, "-null", "swap"}, 1, "independence null", ""},
		{"significant bad null", []string{"significant", "-in", goldenPath, "-null", "bogus"}, 1, "unknown null model", ""},
		{"mine ok", []string{"mine", "-in", goldenPath, "-minsup", "80", "-k", "2", "-top", "3"}, 0, "", "itemsets with support >= 80"},
		{"smin ok", []string{"smin", "-in", goldenPath, "-delta", "30", "-seed", "5"}, 0, "", "s_min = "},
		{"significant swap ok", []string{"significant", "-in", goldenPath, "-delta", "30", "-seed", "5", "-null", "swap", "-swap-ppo", "2", "-top", "0"}, 0, "", "null model: swap randomization"},
		{"closed ok", []string{"closed", "-in", goldenPath, "-minsup", "100", "-top", "3"}, 0, "", "closed itemsets"},
		{"maximal ok", []string{"closed", "-in", goldenPath, "-minsup", "100", "-maximal", "-top", "3"}, 0, "", "maximal itemsets"},
		{"maximal bad path", []string{"closed", "-in", "/no/such/file.dat", "-maximal"}, 1, "no such file", ""},
		{"maximal bad flag", []string{"closed", "-in", goldenPath, "-maximal", "-bogus"}, 2, "flag provided but not defined", ""},
		{"jobs no subcommand", []string{"jobs"}, 2, "usage: sigfim jobs", ""},
		{"jobs unknown subcommand", []string{"jobs", "transmogrify"}, 2, "unknown subcommand", ""},
		{"jobs help", []string{"jobs", "help"}, 0, "usage: sigfim jobs", ""},
		{"jobs get missing id", []string{"jobs", "get", "-server", "http://127.0.0.1:1"}, 1, "missing job id", ""},
		{"jobs watch missing id", []string{"jobs", "watch", "-server", "http://127.0.0.1:1"}, 1, "missing job id", ""},
		{"jobs list unreachable", []string{"jobs", "list", "-server", "http://127.0.0.1:1"}, 1, "connection refused", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("exit code = %d, want %d\nstdout: %s\nstderr: %s",
					code, tc.wantCode, stdout.String(), stderr.String())
			}
			if tc.wantStderr != "" && !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Errorf("stderr %q missing %q", stderr.String(), tc.wantStderr)
			}
			if tc.wantStdout != "" && !strings.Contains(stdout.String(), tc.wantStdout) {
				t.Errorf("stdout %q missing %q", stdout.String(), tc.wantStdout)
			}
			if code != 0 && stderr.Len() == 0 {
				t.Error("non-zero exit with empty stderr")
			}
		})
	}
}

// TestClosedMaximalOutput pins the -maximal wiring semantically: the printed
// maximal family is nonempty, is a subset of the closed family (every maximal
// itemset is closed), is no larger than it, and matches the library call it
// wraps — and the closed-only diagnostic line stays off the maximal output.
func TestClosedMaximalOutput(t *testing.T) {
	runOut := func(args ...string) string {
		t.Helper()
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("%v: exit %d, stderr %s", args, code, stderr.String())
		}
		return stdout.String()
	}
	closedOut := runOut("closed", "-in", goldenPath, "-minsup", "100", "-top", "0")
	maximalOut := runOut("closed", "-in", goldenPath, "-minsup", "100", "-maximal", "-top", "0")

	if strings.Contains(maximalOut, "largest closed itemset") {
		t.Errorf("maximal output carries the closed-only diagnostic:\n%s", maximalOut)
	}

	itemLines := func(out string) []string {
		var lines []string
		for _, l := range strings.Split(out, "\n") {
			// Pattern rows print as "  [items]  support N"; header and
			// diagnostic lines are unindented.
			if strings.HasPrefix(l, "  ") && strings.Contains(l, "  support ") {
				lines = append(lines, l)
			}
		}
		return lines
	}
	closedLines, maximalLines := itemLines(closedOut), itemLines(maximalOut)
	if len(maximalLines) == 0 {
		t.Fatal("no maximal itemsets printed; test is vacuous")
	}
	if len(maximalLines) > len(closedLines) {
		t.Fatalf("%d maximal itemsets but only %d closed ones", len(maximalLines), len(closedLines))
	}
	closedSet := make(map[string]bool, len(closedLines))
	for _, l := range closedLines {
		closedSet[l] = true
	}
	for _, l := range maximalLines {
		if !closedSet[l] {
			t.Errorf("maximal itemset %q is not in the closed family", strings.TrimSpace(l))
		}
	}

	// The CLI must print exactly what the library mines.
	d, err := sigfim.OpenFIMI(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	want := d.MaximalItemsets(100)
	if got := len(maximalLines); got != len(want) {
		t.Fatalf("CLI printed %d maximal itemsets, library mined %d", got, len(want))
	}
}

// TestJobsSubcommandE2E drives "sigfim jobs list/get/watch" against a real
// in-process sigfimd: watch must follow a job to completion over SSE, get
// must print the full status JSON (result included), and list must render
// the job's row without result payloads.
func TestJobsSubcommandE2E(t *testing.T) {
	srv := service.New(service.Options{
		Workers: 1, QueueCap: 4,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if _, err := srv.Registry().RegisterFile("golden", goldenPath); err != nil {
		t.Fatalf("register golden: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	// No jobs yet: list says so.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"jobs", "list", "-server", ts.URL}, &stdout, &stderr); code != 0 {
		t.Fatalf("jobs list: exit %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "no jobs") {
		t.Fatalf("empty listing = %q, want 'no jobs'", stdout.String())
	}

	st, err := srv.Engine().Submit(service.JobRequest{
		Dataset: "golden", Kind: service.KindSMin, K: 2,
		Config: &sigfim.Config{Delta: 4000, Seed: 12},
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"jobs", "watch", "-server", ts.URL, st.ID}, &stdout, &stderr); code != 0 {
		t.Fatalf("jobs watch: exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if out := stdout.String(); !strings.Contains(out, st.ID) || !strings.Contains(out, "done") {
		t.Fatalf("watch output %q lacks the job id and terminal state", out)
	}
	if !strings.Contains(stdout.String(), "4000/4000") {
		t.Fatalf("watch output %q lacks final progress 4000/4000", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"jobs", "get", "-server", ts.URL, st.ID}, &stdout, &stderr); code != 0 {
		t.Fatalf("jobs get: exit %d, stderr %s", code, stderr.String())
	}
	var got service.JobStatus
	if err := json.Unmarshal(stdout.Bytes(), &got); err != nil {
		t.Fatalf("jobs get output is not JSON: %v\n%s", err, stdout.String())
	}
	if got.ID != st.ID || got.State != service.StateDone || len(got.Result) == 0 {
		t.Fatalf("jobs get = %s/%s with %d result bytes; want done with result", got.ID, got.State, len(got.Result))
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"jobs", "list", "-server", ts.URL}, &stdout, &stderr); code != 0 {
		t.Fatalf("jobs list: exit %d, stderr %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, st.ID) || !strings.Contains(out, "done") || !strings.Contains(out, "4000/4000") {
		t.Fatalf("listing %q lacks the finished job's row", out)
	}

	// Unknown job: exit 1 with the server's error on stderr.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"jobs", "get", "-server", ts.URL, "nope"}, &stdout, &stderr); code != 1 {
		t.Fatalf("jobs get nope: exit %d, want 1", code)
	}
}

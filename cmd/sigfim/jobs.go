package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"sigfim/internal/client"
	"sigfim/internal/service"
	"sigfim/internal/trace"
)

// defaultServer resolves the sigfimd base URL: $SIGFIM_SERVER when set,
// otherwise the sigfimd default listen address.
func defaultServer() string {
	if s := os.Getenv("SIGFIM_SERVER"); s != "" {
		return s
	}
	return "http://127.0.0.1:8080"
}

// cmdJobs implements "sigfim jobs <list|get|watch|trace|workers>", a status
// client for a running sigfimd: list shows every job the server tracks, get
// prints one job's full status (result included) as JSON, watch consumes the
// server's SSE stream, rendering a live progress line until the job ends,
// trace renders a completed job's span tree, and workers renders a
// coordinator's worker-supervision table.
func cmdJobs(args []string, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		jobsUsage(stderr)
		return usageError{fmt.Errorf("missing jobs subcommand")}
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "-h", "--help", "help":
		jobsUsage(stderr)
		return nil
	case "list":
		return jobsList(rest, stdout, stderr)
	case "get":
		return jobsGet(rest, stdout, stderr)
	case "watch":
		return jobsWatch(rest, stdout, stderr)
	case "trace":
		return jobsTrace(rest, stdout, stderr)
	case "workers":
		return jobsWorkers(rest, stdout, stderr)
	}
	fmt.Fprintf(stderr, "sigfim jobs: unknown subcommand %q\n", sub)
	jobsUsage(stderr)
	return usageError{fmt.Errorf("unknown jobs subcommand %q", sub)}
}

func jobsUsage(w io.Writer) {
	fmt.Fprintln(w, `usage: sigfim jobs <list|get|watch|trace|workers> [-server URL] [job-id]
  list     list the server's jobs in submission order
  get      print one job's full status (result included) as JSON
  watch    stream a job's progress live (SSE) until it finishes
  trace    print a completed job's span tree with durations
  workers  show a coordinator's remote-worker supervision state
-server defaults to $SIGFIM_SERVER, then http://127.0.0.1:8080`)
}

// jobLookupError decorates a failed job lookup: an unknown (or already
// evicted) job id is the common stumble, so point at `sigfim jobs list` —
// the listing shows every id the server still tracks.
func jobLookupError(id string, err error) error {
	if strings.Contains(err.Error(), "HTTP 404") {
		return fmt.Errorf("%w (job %q is unknown or its record was evicted; run `sigfim jobs list` to see the ids the server tracks)", err, id)
	}
	return err
}

// jobDuration renders how long a job ran (or has been running).
func jobDuration(st service.JobStatus) string {
	switch {
	case st.StartedAt == nil:
		return "-"
	case st.FinishedAt == nil:
		return time.Since(*st.StartedAt).Round(time.Millisecond).String()
	default:
		return st.FinishedAt.Sub(*st.StartedAt).Round(time.Millisecond).String()
	}
}

func jobsList(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("jobs list", stderr)
	server := fs.String("server", defaultServer(), "sigfimd base URL")
	if err := parse(fs, args); err != nil {
		return err
	}
	jobs, err := client.New(*server, nil).Jobs(context.Background())
	if err != nil {
		return err
	}
	if len(jobs) == 0 {
		fmt.Fprintln(stdout, "no jobs")
		return nil
	}
	tw := tabwriter.NewWriter(stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "ID\tSTATE\tKIND\tK\tDATASET\tPROGRESS\tCACHE\tDURATION")
	for _, j := range jobs {
		cache := ""
		if j.CacheHit {
			cache = "hit"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%s\t%d/%d\t%s\t%s\n",
			j.ID, j.State, j.Kind, j.K, j.Dataset,
			j.Progress.Done, j.Progress.Total, cache, jobDuration(j))
	}
	return tw.Flush()
}

func jobsGet(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("jobs get", stderr)
	server := fs.String("server", defaultServer(), "sigfimd base URL")
	if err := parse(fs, args); err != nil {
		return err
	}
	id := fs.Arg(0)
	if id == "" {
		return fmt.Errorf("missing job id (usage: sigfim jobs get [-server URL] JOB)")
	}
	st, err := client.New(*server, nil).Job(context.Background(), id)
	if err != nil {
		return jobLookupError(id, err)
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(st)
}

// jobsTrace renders a completed job's trace (GET /v1/jobs/{id}/trace) as an
// indented span tree: each span's name nested under its parent, with wall
// duration and attributes. Spans print in start order within each level.
func jobsTrace(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("jobs trace", stderr)
	server := fs.String("server", defaultServer(), "sigfimd base URL")
	if err := parse(fs, args); err != nil {
		return err
	}
	id := fs.Arg(0)
	if id == "" {
		return fmt.Errorf("missing job id (usage: sigfim jobs trace [-server URL] JOB)")
	}
	tr, err := client.New(*server, nil).Trace(context.Background(), id)
	if err != nil {
		return jobLookupError(id, err)
	}
	fmt.Fprintf(stdout, "trace %s  job %s  (%d spans", tr.TraceID, tr.JobID, len(tr.Spans))
	if tr.Dropped > 0 {
		fmt.Fprintf(stdout, ", %d dropped", tr.Dropped)
	}
	fmt.Fprintln(stdout, ")")
	return printSpanTree(stdout, tr)
}

// printSpanTree writes the trace's spans as an indented tree. A span whose
// parent is missing (dropped past the recorder's cap) prints at the root
// level rather than disappearing.
func printSpanTree(w io.Writer, tr *trace.Trace) error {
	present := make(map[int]bool, len(tr.Spans))
	for _, sp := range tr.Spans {
		present[sp.ID] = true
	}
	children := make(map[int][]trace.Span)
	for _, sp := range tr.Spans {
		parent := sp.Parent
		if !present[parent] {
			parent = 0
		}
		children[parent] = append(children[parent], sp)
	}
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	var walk func(parent, depth int)
	walk = func(parent, depth int) {
		for _, sp := range children[parent] {
			var attrs strings.Builder
			for i, a := range sp.Attrs {
				if i > 0 {
					attrs.WriteByte(' ')
				}
				fmt.Fprintf(&attrs, "%s=%s", a.Key, a.Value)
			}
			fmt.Fprintf(tw, "%s%s\t%s\t%s\n",
				strings.Repeat("  ", depth), sp.Name, spanDuration(sp.Duration), attrs.String())
			walk(sp.ID, depth+1)
		}
	}
	walk(0, 0)
	return tw.Flush()
}

// spanDuration rounds a span duration to a readable precision by magnitude.
func spanDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}

// jobsWorkers renders the coordinator's fabric supervision table from
// GET /v1/stats: per worker its state, dispatch outcomes, circuit-breaker
// history, and (while ejected) the time to its next health probe.
func jobsWorkers(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("jobs workers", stderr)
	server := fs.String("server", defaultServer(), "sigfimd base URL")
	if err := parse(fs, args); err != nil {
		return err
	}
	st, err := client.New(*server, nil).Stats(context.Background())
	if err != nil {
		return err
	}
	if st.Fabric == nil {
		fmt.Fprintln(stdout, "no remote workers configured (server is not a coordinator)")
		return nil
	}
	tw := tabwriter.NewWriter(stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "WORKER\tSTATE\tOK\tFAIL\tBACKOFF\tEJECT\tREADMIT\tHEDGED\tNEXT PROBE")
	for _, w := range st.Fabric.Workers {
		probe := "-"
		if w.NextProbeInSeconds > 0 {
			probe = (time.Duration(w.NextProbeInSeconds * float64(time.Second))).Round(time.Millisecond).String()
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			w.URL, w.State, w.Successes, w.Failures, w.Backoffs,
			w.Ejections, w.Readmissions, w.Hedged, probe)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "hedged dispatches: %d, local fallbacks: %d\n",
		st.Fabric.Hedges, st.Fabric.LocalFallbacks)
	return nil
}

func jobsWatch(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("jobs watch", stderr)
	server := fs.String("server", defaultServer(), "sigfimd base URL")
	if err := parse(fs, args); err != nil {
		return err
	}
	id := fs.Arg(0)
	if id == "" {
		return fmt.Errorf("missing job id (usage: sigfim jobs watch [-server URL] JOB)")
	}
	final, err := client.New(*server, nil).Watch(context.Background(), id, func(ev service.JobEvent) {
		st := ev.Status
		if p := st.Progress; p.Total > 0 {
			fmt.Fprintf(stdout, "\r%s %-8s %d/%d (%3.0f%%)", st.ID, st.State,
				p.Done, p.Total, 100*float64(p.Done)/float64(p.Total))
		} else {
			fmt.Fprintf(stdout, "\r%s %-8s", st.ID, st.State)
		}
	})
	if err != nil {
		fmt.Fprintln(stdout)
		return jobLookupError(id, err)
	}
	dur := ""
	if final.StartedAt != nil && final.FinishedAt != nil {
		dur = " in " + final.FinishedAt.Sub(*final.StartedAt).Round(time.Millisecond).String()
	}
	fmt.Fprintf(stdout, "\r%s %s %d/%d%s\n",
		final.ID, final.State, final.Progress.Done, final.Progress.Total, dur)
	if final.State != service.StateDone {
		return fmt.Errorf("job %s ended %s: %s", final.ID, final.State, final.Error)
	}
	return nil
}

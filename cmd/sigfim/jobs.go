package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"sigfim/internal/client"
	"sigfim/internal/service"
)

// defaultServer resolves the sigfimd base URL: $SIGFIM_SERVER when set,
// otherwise the sigfimd default listen address.
func defaultServer() string {
	if s := os.Getenv("SIGFIM_SERVER"); s != "" {
		return s
	}
	return "http://127.0.0.1:8080"
}

// cmdJobs implements "sigfim jobs <list|get|watch|workers>", a status client
// for a running sigfimd: list shows every job the server tracks, get prints
// one job's full status (result included) as JSON, watch consumes the
// server's SSE stream, rendering a live progress line until the job ends,
// and workers renders a coordinator's worker-supervision table.
func cmdJobs(args []string, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		jobsUsage(stderr)
		return usageError{fmt.Errorf("missing jobs subcommand")}
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "-h", "--help", "help":
		jobsUsage(stderr)
		return nil
	case "list":
		return jobsList(rest, stdout, stderr)
	case "get":
		return jobsGet(rest, stdout, stderr)
	case "watch":
		return jobsWatch(rest, stdout, stderr)
	case "workers":
		return jobsWorkers(rest, stdout, stderr)
	}
	fmt.Fprintf(stderr, "sigfim jobs: unknown subcommand %q\n", sub)
	jobsUsage(stderr)
	return usageError{fmt.Errorf("unknown jobs subcommand %q", sub)}
}

func jobsUsage(w io.Writer) {
	fmt.Fprintln(w, `usage: sigfim jobs <list|get|watch|workers> [-server URL] [job-id]
  list     list the server's jobs in submission order
  get      print one job's full status (result included) as JSON
  watch    stream a job's progress live (SSE) until it finishes
  workers  show a coordinator's remote-worker supervision state
-server defaults to $SIGFIM_SERVER, then http://127.0.0.1:8080`)
}

// jobDuration renders how long a job ran (or has been running).
func jobDuration(st service.JobStatus) string {
	switch {
	case st.StartedAt == nil:
		return "-"
	case st.FinishedAt == nil:
		return time.Since(*st.StartedAt).Round(time.Millisecond).String()
	default:
		return st.FinishedAt.Sub(*st.StartedAt).Round(time.Millisecond).String()
	}
}

func jobsList(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("jobs list", stderr)
	server := fs.String("server", defaultServer(), "sigfimd base URL")
	if err := parse(fs, args); err != nil {
		return err
	}
	jobs, err := client.New(*server, nil).Jobs(context.Background())
	if err != nil {
		return err
	}
	if len(jobs) == 0 {
		fmt.Fprintln(stdout, "no jobs")
		return nil
	}
	tw := tabwriter.NewWriter(stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "ID\tSTATE\tKIND\tK\tDATASET\tPROGRESS\tCACHE\tDURATION")
	for _, j := range jobs {
		cache := ""
		if j.CacheHit {
			cache = "hit"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%s\t%d/%d\t%s\t%s\n",
			j.ID, j.State, j.Kind, j.K, j.Dataset,
			j.Progress.Done, j.Progress.Total, cache, jobDuration(j))
	}
	return tw.Flush()
}

func jobsGet(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("jobs get", stderr)
	server := fs.String("server", defaultServer(), "sigfimd base URL")
	if err := parse(fs, args); err != nil {
		return err
	}
	id := fs.Arg(0)
	if id == "" {
		return fmt.Errorf("missing job id (usage: sigfim jobs get [-server URL] JOB)")
	}
	st, err := client.New(*server, nil).Job(context.Background(), id)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(st)
}

// jobsWorkers renders the coordinator's fabric supervision table from
// GET /v1/stats: per worker its state, dispatch outcomes, circuit-breaker
// history, and (while ejected) the time to its next health probe.
func jobsWorkers(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("jobs workers", stderr)
	server := fs.String("server", defaultServer(), "sigfimd base URL")
	if err := parse(fs, args); err != nil {
		return err
	}
	st, err := client.New(*server, nil).Stats(context.Background())
	if err != nil {
		return err
	}
	if st.Fabric == nil {
		fmt.Fprintln(stdout, "no remote workers configured (server is not a coordinator)")
		return nil
	}
	tw := tabwriter.NewWriter(stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "WORKER\tSTATE\tOK\tFAIL\tBACKOFF\tEJECT\tREADMIT\tHEDGED\tNEXT PROBE")
	for _, w := range st.Fabric.Workers {
		probe := "-"
		if w.NextProbeInSeconds > 0 {
			probe = (time.Duration(w.NextProbeInSeconds * float64(time.Second))).Round(time.Millisecond).String()
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			w.URL, w.State, w.Successes, w.Failures, w.Backoffs,
			w.Ejections, w.Readmissions, w.Hedged, probe)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "hedged dispatches: %d, local fallbacks: %d\n",
		st.Fabric.Hedges, st.Fabric.LocalFallbacks)
	return nil
}

func jobsWatch(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("jobs watch", stderr)
	server := fs.String("server", defaultServer(), "sigfimd base URL")
	if err := parse(fs, args); err != nil {
		return err
	}
	id := fs.Arg(0)
	if id == "" {
		return fmt.Errorf("missing job id (usage: sigfim jobs watch [-server URL] JOB)")
	}
	final, err := client.New(*server, nil).Watch(context.Background(), id, func(ev service.JobEvent) {
		st := ev.Status
		if p := st.Progress; p.Total > 0 {
			fmt.Fprintf(stdout, "\r%s %-8s %d/%d (%3.0f%%)", st.ID, st.State,
				p.Done, p.Total, 100*float64(p.Done)/float64(p.Total))
		} else {
			fmt.Fprintf(stdout, "\r%s %-8s", st.ID, st.State)
		}
	})
	if err != nil {
		fmt.Fprintln(stdout)
		return err
	}
	dur := ""
	if final.StartedAt != nil && final.FinishedAt != nil {
		dur = " in " + final.FinishedAt.Sub(*final.StartedAt).Round(time.Millisecond).String()
	}
	fmt.Fprintf(stdout, "\r%s %s %d/%d%s\n",
		final.ID, final.State, final.Progress.Done, final.Progress.Total, dur)
	if final.State != service.StateDone {
		return fmt.Errorf("job %s ended %s: %s", final.ID, final.State, final.Error)
	}
	return nil
}

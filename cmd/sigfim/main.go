// Command sigfim mines frequent and statistically significant itemsets from
// FIMI-format transaction files (gzip-compressed input is detected
// transparently).
//
// Subcommands:
//
//	sigfim mine -in data.dat -minsup 100 [-k 2] [-algo auto|eclat|eclat-bits|apriori|fpgrowth] [-workers N] [-top 50]
//	    Classical frequent itemset mining.
//	sigfim smin -in data.dat -k 2 [-delta 1000] [-eps 0.01] [-seed 1]
//	    [-algo fpgrowth] [-workers N] [-workers-remote URL,URL]
//	    Algorithm 1: estimate the Poisson threshold ŝ_min of the dataset's
//	    independence null model. (-null swap is rejected: the standalone
//	    threshold is defined against the paper's independence null; use
//	    "significant -null swap" for a swap-null analysis.)
//	sigfim significant -in data.dat -k 2 [-alpha 0.05] [-beta 0.05]
//	    [-delta 1000] [-baseline] [-correction by|bonferroni|holm|westfall-young]
//	    [-algo fpgrowth] [-workers N] [-top 50]
//	    [-null independence|swap] [-swap-ppo 8] [-swap-proposals N]
//	    [-workers-remote URL,URL]
//	    The full methodology: ŝ_min, the threshold ladder, s*, and the
//	    significant family with its FDR certificate. -null swap replaces the
//	    independence null with margin-preserving swap randomization;
//	    -swap-ppo sets the per-replicate burn-in in proposals per matrix
//	    occurrence, -swap-proposals overrides it with an absolute count.
//	    -correction picks the baseline's multiple-testing correction (and
//	    implies -baseline): by is the paper's Benjamini-Yekutieli default,
//	    westfall-young calibrates against the replicate min-p distribution
//	    collected from the same Monte Carlo replicates (see the README's
//	    "Multiple testing corrections").
//	    -workers-remote shards the Monte Carlo replicates across running
//	    sigfimd instances that have the same dataset registered (matched by
//	    content hash); the result is bit-identical to a local run.
//	sigfim closed -in data.dat -minsup 100 [-maximal] [-top 50]
//	    Closed itemset mining (LCM-style enumeration); -maximal mines
//	    maximal itemsets (no frequent strict superset) instead.
//	sigfim rules -in data.dat -minsup 100 [-minconf 0.5] [-beta 0.05] [-top 50]
//	    Association rules with exact Binomial and Fisher p-values;
//	    -beta selects the Benjamini-Yekutieli-significant subset.
//	sigfim jobs <list|get|watch|trace|workers> [-server URL] [job-id]
//	    Client for a running sigfimd: list jobs, fetch one job's status and
//	    result, watch a job's live progress over its SSE event stream, print
//	    a completed job's span tree (see the tracing section of the README),
//	    or show a coordinator's remote-worker supervision table (state,
//	    dispatch outcomes, ejections, next health probe).
//	    -server defaults to $SIGFIM_SERVER, then http://127.0.0.1:8080.
//
// The smin and significant subcommands accept -workers-remote-rangesize
// (auto = size remote ranges from each worker's observed latency, or a fixed
// positive integer) and -workers-remote-rangetarget (the wall time an
// autotuned range aims for, default 2s); range size never changes result
// bytes.
//
// Errors go to stderr with a non-zero exit status: 2 for usage errors (bad
// flags, unknown subcommands), 1 for runtime failures (unreadable input,
// pipeline errors).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sigfim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without os.Exit: it dispatches a subcommand and maps errors to
// exit codes (0 ok, 1 runtime error, 2 usage error), writing errors to
// stderr. Tests drive it directly.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	cmds := map[string]func([]string, io.Writer, io.Writer) error{
		"mine":        cmdMine,
		"smin":        cmdSMin,
		"significant": cmdSignificant,
		"closed":      cmdClosed,
		"rules":       cmdRules,
		"jobs":        cmdJobs,
	}
	name := args[0]
	switch name {
	case "-h", "--help", "help":
		usage(stderr)
		return 0
	}
	cmd, ok := cmds[name]
	if !ok {
		fmt.Fprintf(stderr, "sigfim: unknown subcommand %q\n", name)
		usage(stderr)
		return 2
	}
	if err := cmd(args[1:], stdout, stderr); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		if _, isUsage := err.(usageError); isUsage {
			// The FlagSet already printed the problem to stderr.
			return 2
		}
		fmt.Fprintln(stderr, "sigfim:", err)
		return 1
	}
	return 0
}

// usageError marks flag-parse failures so run can exit 2 without printing
// the error twice (the FlagSet reports it on stderr as it occurs).
type usageError struct{ error }

// newFlagSet builds a subcommand FlagSet that reports errors on stderr and
// returns them instead of exiting the process.
func newFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

// parse wraps FlagSet.Parse, tagging failures as usage errors.
func parse(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return flag.ErrHelp
		}
		return usageError{err}
	}
	return nil
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: sigfim <mine|smin|significant|closed|rules|jobs> [flags]
run "sigfim <subcommand> -h" for flags`)
}

func load(path string) (*sigfim.Dataset, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -in FILE")
	}
	return sigfim.OpenFIMI(path)
}

func cmdMine(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("mine", stderr)
	in := fs.String("in", "", "input FIMI file")
	minsup := fs.Int("minsup", 0, "absolute support threshold")
	k := fs.Int("k", 0, "itemset size (0 = all sizes)")
	maxLen := fs.Int("maxlen", 0, "max itemset size when -k 0 (0 = unbounded)")
	algo := fs.String("algo", "auto", "auto|eclat|eclat-bits|apriori|fpgrowth")
	top := fs.Int("top", 50, "print at most this many itemsets (0 = all)")
	workers := fs.Int("workers", 0, "mining goroutines (0 = all CPUs, 1 = serial)")
	if err := parse(fs, args); err != nil {
		return err
	}
	d, err := load(*in)
	if err != nil {
		return err
	}
	ps, err := d.Mine(sigfim.MineOptions{
		K: *k, MinSupport: *minsup, MaxLen: *maxLen, Algorithm: *algo,
		Workers: *workers,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%d itemsets with support >= %d\n", len(ps), *minsup)
	printPatterns(stdout, ps, *top)
	return nil
}

// splitWorkers parses a comma-separated -workers-remote list, dropping empty
// entries so "" means no remote workers.
func splitWorkers(s string) []string {
	var out []string
	for _, w := range strings.Split(s, ",") {
		if w = strings.TrimSpace(w); w != "" {
			out = append(out, w)
		}
	}
	return out
}

// parseRangeSize maps a -workers-remote-rangesize value onto
// Config.RemoteRangeSize: "auto" selects latency-driven autotuning (0), a
// positive integer pins the replicates per remote range.
func parseRangeSize(v string) (int, error) {
	if v == "" || v == "auto" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("invalid -workers-remote-rangesize %q (want auto or a positive integer)", v)
	}
	return n, nil
}

// parseNull maps a -null flag value onto Config.SwapNull.
func parseNull(name string) (swap bool, err error) {
	switch name {
	case "", "independence":
		return false, nil
	case "swap":
		return true, nil
	}
	return false, fmt.Errorf("unknown null model %q (want independence or swap)", name)
}

func cmdSMin(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("smin", stderr)
	in := fs.String("in", "", "input FIMI file")
	k := fs.Int("k", 2, "itemset size")
	delta := fs.Int("delta", 1000, "Monte Carlo replicates")
	eps := fs.Float64("eps", 0.01, "Poisson tolerance")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "worker goroutines (0 = all CPUs, 1 = serial)")
	algo := fs.String("algo", "auto", "mining algorithm: auto|eclat|eclat-bits|apriori|fpgrowth")
	null := fs.String("null", "independence", "null model: independence (swap is rejected — see doc)")
	remote := fs.String("workers-remote", "", "comma-separated sigfimd worker URLs to shard replicates across")
	remoteTimeout := fs.Duration("workers-remote-timeout", 0, "per-range HTTP deadline for remote workers (0 = 2m)")
	remoteHedge := fs.Duration("workers-remote-hedge", 0, "hedge a straggling range onto a second worker after this delay (0 disables)")
	remoteRangeSize := fs.String("workers-remote-rangesize", "auto", "replicates per remote range: auto (latency-driven) or a positive integer")
	remoteRangeTarget := fs.Duration("workers-remote-rangetarget", 0, "target wall time per autotuned remote range (0 = 2s)")
	if err := parse(fs, args); err != nil {
		return err
	}
	swap, err := parseNull(*null)
	if err != nil {
		return err
	}
	rangeSize, err := parseRangeSize(*remoteRangeSize)
	if err != nil {
		return err
	}
	d, err := load(*in)
	if err != nil {
		return err
	}
	s, err := d.FindSMin(*k, &sigfim.Config{
		Delta: *delta, Epsilon: *eps, Seed: *seed, Workers: *workers, Algorithm: *algo,
		SwapNull: swap, RemoteWorkers: splitWorkers(*remote),
		RemoteTimeout: *remoteTimeout, RemoteHedgeDelay: *remoteHedge,
		RemoteRangeSize: rangeSize, RemoteRangeTarget: *remoteRangeTarget,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "s_min = %d (k=%d, delta=%d, eps=%g)\n", s, *k, *delta, *eps)
	return nil
}

func cmdSignificant(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("significant", stderr)
	in := fs.String("in", "", "input FIMI file")
	k := fs.Int("k", 2, "itemset size")
	alpha := fs.Float64("alpha", 0.05, "confidence budget")
	beta := fs.Float64("beta", 0.05, "FDR budget")
	delta := fs.Int("delta", 1000, "Monte Carlo replicates")
	seed := fs.Uint64("seed", 1, "random seed")
	baseline := fs.Bool("baseline", false, "also run the per-itemset baseline (Procedure 1)")
	correction := fs.String("correction", "", "baseline correction: by|bonferroni|holm|westfall-young (implies -baseline; \"\" = by)")
	top := fs.Int("top", 50, "print at most this many itemsets (0 = all)")
	workers := fs.Int("workers", 0, "worker goroutines (0 = all CPUs, 1 = serial)")
	algo := fs.String("algo", "auto", "mining algorithm: auto|eclat|eclat-bits|apriori|fpgrowth")
	null := fs.String("null", "independence", "null model: independence|swap")
	swapPPO := fs.Int("swap-ppo", 0, "swap null: proposals per matrix occurrence per replicate (0 = 8)")
	swapProposals := fs.Int("swap-proposals", 0, "swap null: absolute proposals per replicate (overrides -swap-ppo)")
	remote := fs.String("workers-remote", "", "comma-separated sigfimd worker URLs to shard replicates across")
	remoteTimeout := fs.Duration("workers-remote-timeout", 0, "per-range HTTP deadline for remote workers (0 = 2m)")
	remoteHedge := fs.Duration("workers-remote-hedge", 0, "hedge a straggling range onto a second worker after this delay (0 disables)")
	remoteRangeSize := fs.String("workers-remote-rangesize", "auto", "replicates per remote range: auto (latency-driven) or a positive integer")
	remoteRangeTarget := fs.Duration("workers-remote-rangetarget", 0, "target wall time per autotuned remote range (0 = 2s)")
	if err := parse(fs, args); err != nil {
		return err
	}
	swap, err := parseNull(*null)
	if err != nil {
		return err
	}
	rangeSize, err := parseRangeSize(*remoteRangeSize)
	if err != nil {
		return err
	}
	d, err := load(*in)
	if err != nil {
		return err
	}
	rep, err := d.Significant(*k, &sigfim.Config{
		Alpha: *alpha, Beta: *beta, Delta: *delta, Seed: *seed,
		WithBaseline: *baseline, Correction: *correction, Workers: *workers, Algorithm: *algo,
		SwapNull: swap, SwapProposalsPerOccurrence: *swapPPO, SwapProposals: *swapProposals,
		RemoteWorkers: splitWorkers(*remote),
		RemoteTimeout: *remoteTimeout, RemoteHedgeDelay: *remoteHedge,
		RemoteRangeSize: rangeSize, RemoteRangeTarget: *remoteRangeTarget,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "k = %d, alpha = %g, beta = %g\n", rep.K, rep.Alpha, rep.Beta)
	if swap {
		fmt.Fprintln(stdout, "null model: swap randomization (item supports and transaction lengths preserved)")
	}
	fmt.Fprintf(stdout, "s_min = %d (Poisson regime)\n", rep.SMin)
	fmt.Fprintln(stdout, "threshold ladder:")
	for _, st := range rep.Steps {
		fmt.Fprintf(stdout, "  s=%-8d Q=%-10d lambda=%-12.4g p=%-12.4g rejected=%v\n",
			st.S, st.Q, st.Lambda, st.PValue, st.Rejected)
	}
	if rep.Infinite {
		fmt.Fprintln(stdout, "s* = infinity: no significant support threshold (data consistent with the null)")
		return nil
	}
	fmt.Fprintf(stdout, "s* = %d: %d significant %d-itemsets (null expects %.4g), FDR <= %g with confidence %g\n",
		rep.SStar, rep.NumSignificant, rep.K, rep.Lambda, rep.Beta, 1-rep.Alpha)
	printPatterns(stdout, rep.Significant, *top)
	if rep.Baseline != nil {
		fmt.Fprintf(stdout, "\n%s baseline (Procedure 1): %d of %d tested flagged; power ratio r = %.3f\n",
			rep.Baseline.Correction, rep.Baseline.NumSignificant, rep.Baseline.NumTested, rep.PowerRatio)
	}
	return nil
}

func cmdClosed(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("closed", stderr)
	in := fs.String("in", "", "input FIMI file")
	minsup := fs.Int("minsup", 0, "absolute support threshold")
	maximal := fs.Bool("maximal", false, "mine maximal itemsets (no frequent strict superset) instead of closed")
	top := fs.Int("top", 50, "print at most this many itemsets (0 = all)")
	if err := parse(fs, args); err != nil {
		return err
	}
	d, err := load(*in)
	if err != nil {
		return err
	}
	if *maximal {
		ps := d.MaximalItemsets(*minsup)
		fmt.Fprintf(stdout, "%d maximal itemsets with support >= %d\n", len(ps), *minsup)
		printPatterns(stdout, ps, *top)
		return nil
	}
	ps := d.ClosedItemsets(*minsup)
	fmt.Fprintf(stdout, "%d closed itemsets with support >= %d\n", len(ps), *minsup)
	printPatterns(stdout, ps, *top)
	if big, ok := d.LargestClosedItemset(*minsup); ok {
		fmt.Fprintf(stdout, "largest closed itemset: %d items at support %d\n", len(big.Items), big.Support)
	}
	return nil
}

func printPatterns(w io.Writer, ps []sigfim.Pattern, top int) {
	for i, p := range ps {
		if top > 0 && i == top {
			fmt.Fprintf(w, "... and %d more\n", len(ps)-top)
			return
		}
		fmt.Fprintf(w, "  %v  support %d\n", p.Items, p.Support)
	}
}

func cmdRules(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("rules", stderr)
	in := fs.String("in", "", "input FIMI file")
	minsup := fs.Int("minsup", 0, "absolute joint-support threshold")
	minconf := fs.Float64("minconf", 0, "minimum confidence")
	maxlen := fs.Int("maxlen", 0, "max joint itemset size (0 = 4)")
	beta := fs.Float64("beta", 0, "if > 0, keep only BY-significant rules at this FDR")
	top := fs.Int("top", 50, "print at most this many rules (0 = all)")
	if err := parse(fs, args); err != nil {
		return err
	}
	d, err := load(*in)
	if err != nil {
		return err
	}
	opts := sigfim.RuleOptions{MinSupport: *minsup, MinConfidence: *minconf, MaxLen: *maxlen}
	var rules []sigfim.AssociationRule
	if *beta > 0 {
		rules, err = d.SignificantRules(opts, *beta)
	} else {
		rules, err = d.Rules(opts)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%d rules\n", len(rules))
	for i, r := range rules {
		if *top > 0 && i == *top {
			fmt.Fprintf(stdout, "... and %d more\n", len(rules)-*top)
			break
		}
		fmt.Fprintf(stdout, "  %v => %v  sup=%d conf=%.3f lift=%.2f p=%.3g fisher=%.3g\n",
			r.Antecedent, r.Consequent, r.Support, r.Confidence, r.Lift, r.PValue, r.FisherP)
	}
	return nil
}

// Command sigfim mines frequent and statistically significant itemsets from
// FIMI-format transaction files.
//
// Subcommands:
//
//	sigfim mine -in data.dat -minsup 100 [-k 2] [-algo auto|eclat|eclat-bits|apriori|fpgrowth] [-workers N] [-top 50]
//	    Classical frequent itemset mining.
//	sigfim smin -in data.dat -k 2 [-delta 1000] [-eps 0.01] [-seed 1]
//	    [-algo fpgrowth] [-workers N]
//	    Algorithm 1: estimate the Poisson threshold ŝ_min of the dataset's
//	    null model.
//	sigfim significant -in data.dat -k 2 [-alpha 0.05] [-beta 0.05]
//	    [-delta 1000] [-baseline] [-algo fpgrowth] [-workers N] [-top 50]
//	    The full methodology: ŝ_min, the threshold ladder, s*, and the
//	    significant family with its FDR certificate.
//	sigfim closed -in data.dat -minsup 100 [-top 50]
//	    Closed itemset mining (LCM-style enumeration).
//	sigfim rules -in data.dat -minsup 100 [-minconf 0.5] [-beta 0.05] [-top 50]
//	    Association rules with exact Binomial and Fisher p-values;
//	    -beta selects the Benjamini-Yekutieli-significant subset.
package main

import (
	"flag"
	"fmt"
	"os"

	"sigfim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "mine":
		err = cmdMine(os.Args[2:])
	case "smin":
		err = cmdSMin(os.Args[2:])
	case "significant":
		err = cmdSignificant(os.Args[2:])
	case "closed":
		err = cmdClosed(os.Args[2:])
	case "rules":
		err = cmdRules(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "sigfim: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sigfim:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: sigfim <mine|smin|significant|closed|rules> [flags]
run "sigfim <subcommand> -h" for flags`)
}

func load(path string) (*sigfim.Dataset, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -in FILE")
	}
	return sigfim.OpenFIMI(path)
}

func cmdMine(args []string) error {
	fs := flag.NewFlagSet("mine", flag.ExitOnError)
	in := fs.String("in", "", "input FIMI file")
	minsup := fs.Int("minsup", 0, "absolute support threshold")
	k := fs.Int("k", 0, "itemset size (0 = all sizes)")
	maxLen := fs.Int("maxlen", 0, "max itemset size when -k 0 (0 = unbounded)")
	algo := fs.String("algo", "auto", "auto|eclat|eclat-bits|apriori|fpgrowth")
	top := fs.Int("top", 50, "print at most this many itemsets (0 = all)")
	workers := fs.Int("workers", 0, "mining goroutines (0 = all CPUs, 1 = serial)")
	fs.Parse(args)
	d, err := load(*in)
	if err != nil {
		return err
	}
	ps, err := d.Mine(sigfim.MineOptions{
		K: *k, MinSupport: *minsup, MaxLen: *maxLen, Algorithm: *algo,
		Workers: *workers,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%d itemsets with support >= %d\n", len(ps), *minsup)
	printPatterns(ps, *top)
	return nil
}

func cmdSMin(args []string) error {
	fs := flag.NewFlagSet("smin", flag.ExitOnError)
	in := fs.String("in", "", "input FIMI file")
	k := fs.Int("k", 2, "itemset size")
	delta := fs.Int("delta", 1000, "Monte Carlo replicates")
	eps := fs.Float64("eps", 0.01, "Poisson tolerance")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "worker goroutines (0 = all CPUs, 1 = serial)")
	algo := fs.String("algo", "auto", "mining algorithm: auto|eclat|eclat-bits|apriori|fpgrowth")
	fs.Parse(args)
	d, err := load(*in)
	if err != nil {
		return err
	}
	s, err := d.FindSMin(*k, &sigfim.Config{
		Delta: *delta, Epsilon: *eps, Seed: *seed, Workers: *workers, Algorithm: *algo,
	})
	if err != nil {
		return err
	}
	fmt.Printf("s_min = %d (k=%d, delta=%d, eps=%g)\n", s, *k, *delta, *eps)
	return nil
}

func cmdSignificant(args []string) error {
	fs := flag.NewFlagSet("significant", flag.ExitOnError)
	in := fs.String("in", "", "input FIMI file")
	k := fs.Int("k", 2, "itemset size")
	alpha := fs.Float64("alpha", 0.05, "confidence budget")
	beta := fs.Float64("beta", 0.05, "FDR budget")
	delta := fs.Int("delta", 1000, "Monte Carlo replicates")
	seed := fs.Uint64("seed", 1, "random seed")
	baseline := fs.Bool("baseline", false, "also run the Benjamini-Yekutieli baseline")
	top := fs.Int("top", 50, "print at most this many itemsets (0 = all)")
	workers := fs.Int("workers", 0, "worker goroutines (0 = all CPUs, 1 = serial)")
	algo := fs.String("algo", "auto", "mining algorithm: auto|eclat|eclat-bits|apriori|fpgrowth")
	fs.Parse(args)
	d, err := load(*in)
	if err != nil {
		return err
	}
	rep, err := d.Significant(*k, &sigfim.Config{
		Alpha: *alpha, Beta: *beta, Delta: *delta, Seed: *seed,
		WithBaseline: *baseline, Workers: *workers, Algorithm: *algo,
	})
	if err != nil {
		return err
	}
	fmt.Printf("k = %d, alpha = %g, beta = %g\n", rep.K, rep.Alpha, rep.Beta)
	fmt.Printf("s_min = %d (Poisson regime)\n", rep.SMin)
	fmt.Println("threshold ladder:")
	for _, st := range rep.Steps {
		fmt.Printf("  s=%-8d Q=%-10d lambda=%-12.4g p=%-12.4g rejected=%v\n",
			st.S, st.Q, st.Lambda, st.PValue, st.Rejected)
	}
	if rep.Infinite {
		fmt.Println("s* = infinity: no significant support threshold (data consistent with the null)")
		return nil
	}
	fmt.Printf("s* = %d: %d significant %d-itemsets (null expects %.4g), FDR <= %g with confidence %g\n",
		rep.SStar, rep.NumSignificant, rep.K, rep.Lambda, rep.Beta, 1-rep.Alpha)
	printPatterns(rep.Significant, *top)
	if rep.Baseline != nil {
		fmt.Printf("\nBY baseline (Procedure 1): %d of %d tested flagged; power ratio r = %.3f\n",
			rep.Baseline.NumSignificant, rep.Baseline.NumTested, rep.PowerRatio)
	}
	return nil
}

func cmdClosed(args []string) error {
	fs := flag.NewFlagSet("closed", flag.ExitOnError)
	in := fs.String("in", "", "input FIMI file")
	minsup := fs.Int("minsup", 0, "absolute support threshold")
	top := fs.Int("top", 50, "print at most this many itemsets (0 = all)")
	fs.Parse(args)
	d, err := load(*in)
	if err != nil {
		return err
	}
	ps := d.ClosedItemsets(*minsup)
	fmt.Printf("%d closed itemsets with support >= %d\n", len(ps), *minsup)
	printPatterns(ps, *top)
	if big, ok := d.LargestClosedItemset(*minsup); ok {
		fmt.Printf("largest closed itemset: %d items at support %d\n", len(big.Items), big.Support)
	}
	return nil
}

func printPatterns(ps []sigfim.Pattern, top int) {
	for i, p := range ps {
		if top > 0 && i == top {
			fmt.Printf("... and %d more\n", len(ps)-top)
			return
		}
		fmt.Printf("  %v  support %d\n", p.Items, p.Support)
	}
}

func cmdRules(args []string) error {
	fs := flag.NewFlagSet("rules", flag.ExitOnError)
	in := fs.String("in", "", "input FIMI file")
	minsup := fs.Int("minsup", 0, "absolute joint-support threshold")
	minconf := fs.Float64("minconf", 0, "minimum confidence")
	maxlen := fs.Int("maxlen", 0, "max joint itemset size (0 = 4)")
	beta := fs.Float64("beta", 0, "if > 0, keep only BY-significant rules at this FDR")
	top := fs.Int("top", 50, "print at most this many rules (0 = all)")
	fs.Parse(args)
	d, err := load(*in)
	if err != nil {
		return err
	}
	opts := sigfim.RuleOptions{MinSupport: *minsup, MinConfidence: *minconf, MaxLen: *maxlen}
	var rules []sigfim.AssociationRule
	if *beta > 0 {
		rules, err = d.SignificantRules(opts, *beta)
	} else {
		rules, err = d.Rules(opts)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%d rules\n", len(rules))
	for i, r := range rules {
		if *top > 0 && i == *top {
			fmt.Printf("... and %d more\n", len(rules)-*top)
			break
		}
		fmt.Printf("  %v => %v  sup=%d conf=%.3f lift=%.2f p=%.3g fisher=%.3g\n",
			r.Antecedent, r.Consequent, r.Support, r.Confidence, r.Lift, r.PValue, r.FisherP)
	}
	return nil
}

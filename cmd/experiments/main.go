// Command experiments regenerates the paper's evaluation tables (Tables 1-5)
// on the synthetic benchmark profiles.
//
// Usage:
//
//	experiments -table N [-scale F] [-delta D] [-k list] [-datasets list]
//	            [-trials T] [-seed S] [-workers W] [-verbose]
//
// Table 1 prints the benchmark profile parameters; Table 2 runs Algorithm 1
// (ŝ_min) on the random counterparts; Table 3 runs Procedure 2 on the "real"
// variants; Table 4 applies Procedure 2 to pure-random instances and counts
// finite outcomes; Table 5 compares Procedure 1 and Procedure 2 power.
// -table 0 runs everything.
//
// -scale divides every profile's transaction count (default 16; use 1 for
// the paper's full-size runs — hours of CPU). Scaled thresholds shrink
// roughly in proportion; the qualitative pattern is preserved.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"sigfim/internal/core"
	"sigfim/internal/dataset"
	"sigfim/internal/mining"
	"sigfim/internal/montecarlo"
	"sigfim/internal/randmodel"
	"sigfim/internal/stats"
	"sigfim/internal/synth"
)

var (
	flagTable    = flag.Int("table", 0, "table to regenerate (1-5; 0 = all)")
	flagScale    = flag.Int("scale", 0, "divide every profile's t by this factor (0 = per-profile auto; 1 = full size)")
	flagDelta    = flag.Int("delta", 200, "Monte Carlo replicates for Algorithm 1")
	flagK        = flag.String("k", "2,3,4", "comma-separated itemset sizes")
	flagDatasets = flag.String("datasets", "", "comma-separated profile names (default: all six)")
	flagTrials   = flag.Int("trials", 20, "random instances per profile for Table 4")
	flagSeed     = flag.Uint64("seed", 20090629, "base random seed")
	flagVerbose  = flag.Bool("verbose", false, "print per-step diagnostics")
	flagWorkers  = flag.Int("workers", 0, "worker goroutines (0 = all CPUs, 1 = serial)")
	flagAlgo     = flag.String("algo", "auto", "mining algorithm: auto|eclat|eclat-bits|apriori|fpgrowth")
)

// algo holds the parsed -algo selection; every table's mining stages use it.
var algo mining.Algorithm

func main() {
	flag.Parse()
	ks, err := parseKs(*flagK)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if algo, err = mining.ParseAlgorithm(*flagAlgo); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	specs, err := selectSpecs(*flagDatasets, *flagScale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	run := func(n int) bool { return *flagTable == 0 || *flagTable == n }
	if run(1) {
		table1(specs)
	}
	if run(2) {
		table2(specs, ks)
	}
	if run(3) {
		table3(specs, ks)
	}
	if run(4) {
		table4(specs, ks)
	}
	if run(5) {
		table5(specs, ks)
	}
}

func parseKs(s string) ([]int, error) {
	var ks []int
	for _, part := range strings.Split(s, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || k < 1 {
			return nil, fmt.Errorf("experiments: bad k %q", part)
		}
		ks = append(ks, k)
	}
	return ks, nil
}

func selectSpecs(names string, scale int) ([]synth.Spec, error) {
	var specs []synth.Spec
	if names == "" {
		specs = synth.Profiles()
	} else {
		for _, n := range strings.Split(names, ",") {
			s, ok := synth.ByName(strings.TrimSpace(n))
			if !ok {
				return nil, fmt.Errorf("experiments: unknown dataset %q (have %v)", n, synth.Names())
			}
			specs = append(specs, s)
		}
	}
	for i := range specs {
		f := scale
		if f == 0 {
			f = synth.RecommendedScale(specs[i].Name)
		}
		specs[i] = specs[i].Scale(f)
	}
	return specs, nil
}

// table1 reports the measured parameters of one generated "real" instance of
// each profile, next to the published targets.
func table1(specs []synth.Spec) {
	fmt.Println("== Table 1: benchmark dataset parameters (measured on one synthetic instance) ==")
	fmt.Printf("%-12s %8s %-24s %7s %9s\n", "Dataset", "n", "[fmin; fmax]", "m", "t")
	for _, spec := range specs {
		v := spec.GenerateReal(*flagSeed)
		p := dataset.ExtractVertical(spec.Name, v)
		fmin, fmax := p.FreqRange()
		fmt.Printf("%-12s %8d [%.3g ; %.3g] %10.1f %9d\n",
			spec.Name, p.NumItems(), fmin, fmax, p.AvgTransactionLen(), p.T)
	}
	fmt.Println()
}

// table2 runs Algorithm 1 on each random counterpart: a random dataset with
// the same transaction count and item frequencies as the (generated) real
// benchmark instance, exactly as the paper's RandX datasets are defined.
func table2(specs []synth.Spec, ks []int) {
	fmt.Println("== Table 2: ŝ_min from Algorithm 1 (eps=0.01) on random counterparts ==")
	header("Dataset", ks, func(k int) string { return fmt.Sprintf("k=%d", k) })
	for _, spec := range specs {
		cells := make([]string, len(ks))
		real := spec.GenerateReal(*flagSeed)
		null := randmodel.FromProfile(dataset.ExtractVertical(spec.Name, real))
		for i, k := range ks {
			res, err := montecarlo.FindPoissonThreshold(null, montecarlo.Config{
				K: k, Delta: *flagDelta, Epsilon: 0.01, Seed: *flagSeed, Workers: *flagWorkers, Algorithm: algo,
			})
			if err != nil {
				cells[i] = "err:" + err.Error()
				continue
			}
			cells[i] = strconv.Itoa(res.SMin)
		}
		row("Rand"+spec.Name, cells)
	}
	fmt.Println()
}

// table3 runs Procedure 2 on the planted "real" variants.
func table3(specs []synth.Spec, ks []int) {
	fmt.Println("== Table 3: Procedure 2 (alpha=beta=0.05) on the benchmark datasets ==")
	fmt.Printf("%-12s %4s %10s %12s %12s\n", "Dataset", "k", "s*", "Q_{k,s*}", "lambda(s*)")
	for _, spec := range specs {
		v := spec.GenerateReal(*flagSeed)
		for _, k := range ks {
			a, err := core.Analyze(spec.Name, v, k, core.Options{
				Delta: *flagDelta, Seed: *flagSeed, Workers: *flagWorkers, Algorithm: algo,
			})
			if err != nil {
				fmt.Printf("%-12s %4d  error: %v\n", spec.Name, k, err)
				continue
			}
			printProc2Row(spec.Name, k, a.Proc2)
			if *flagVerbose {
				for _, st := range a.Proc2.Steps {
					fmt.Printf("    step i=%d s=%d Q=%d lam=%.4g p=%.4g rej=%v\n",
						st.I, st.S, st.Q, st.Lambda, st.PValue, st.Rejected)
				}
			}
		}
	}
	fmt.Println()
}

func printProc2Row(name string, k int, p2 *core.Procedure2Result) {
	if p2.Found {
		fmt.Printf("%-12s %4d %10d %12d %12.3g\n", name, k, p2.SStar, p2.Q, p2.Lambda)
	} else {
		fmt.Printf("%-12s %4d %10s %12d %12d\n", name, k, "inf", 0, 0)
	}
}

// table4 applies Procedure 2 to pure-random instances. Algorithm 1 runs once
// per (profile, k) — ŝ_min and the lambda estimates are properties of the
// null model, not of any individual instance — and each trial then runs only
// the Procedure 2 ladder against its own instance.
func table4(specs []synth.Spec, ks []int) {
	fmt.Printf("== Table 4: finite s* count over %d random instances per profile ==\n", *flagTrials)
	header("Dataset", ks, func(k int) string { return fmt.Sprintf("k=%d", k) })
	for _, spec := range specs {
		cells := make([]string, len(ks))
		real := spec.GenerateReal(*flagSeed)
		null := randmodel.FromProfile(dataset.ExtractVertical(spec.Name, real))
		for i, k := range ks {
			mc, err := montecarlo.FindPoissonThreshold(null, montecarlo.Config{
				K: k, Delta: *flagDelta, Epsilon: 0.01, Seed: *flagSeed, Workers: *flagWorkers, Algorithm: algo,
			})
			if err != nil {
				cells[i] = "err:" + err.Error()
				continue
			}
			sMin := mc.SMin
			if sMin < mc.Floor {
				sMin = mc.Floor
			}
			lambda := func(s int) float64 {
				if s < mc.Floor {
					s = mc.Floor
				}
				return mc.Lambda(s)
			}
			finite := 0
			for trial := 0; trial < *flagTrials; trial++ {
				v := null.Generate(stats.NewRNG(*flagSeed + uint64(1000+trial)))
				p2, err := core.Procedure2Ex(v, k, sMin, lambda, 0.05, 0.05, core.SplitEqual, *flagWorkers, algo)
				if err != nil {
					cells[i] = "err:" + err.Error()
					break
				}
				if p2.Found {
					finite++
				}
			}
			if cells[i] == "" {
				cells[i] = strconv.Itoa(finite)
			}
		}
		row("Random"+spec.Name, cells)
	}
	fmt.Println()
}

// table5 compares Procedure 1's family size |R| against Procedure 2's.
func table5(specs []synth.Spec, ks []int) {
	fmt.Println("== Table 5: Procedure 1 |R| and power ratio r = Q_{k,s*}/|R| (beta=0.05) ==")
	fmt.Printf("%-12s %4s %10s %10s\n", "Dataset", "k", "|R|", "r")
	for _, spec := range specs {
		v := spec.GenerateReal(*flagSeed)
		for _, k := range ks {
			a, err := core.Analyze(spec.Name, v, k, core.Options{
				Delta: *flagDelta, Seed: *flagSeed, Workers: *flagWorkers, Algorithm: algo, RunProcedure1: true,
			})
			if err != nil {
				fmt.Printf("%-12s %4d  error: %v\n", spec.Name, k, err)
				continue
			}
			r := a.PowerRatio()
			rs := fmt.Sprintf("%.3f", r)
			if math.IsInf(r, 1) {
				rs = "inf"
			}
			fmt.Printf("%-12s %4d %10d %10s\n", spec.Name, k, a.Proc1.FamilySize, rs)
		}
	}
	fmt.Println()
}

func header(label string, ks []int, f func(int) string) {
	fmt.Printf("%-16s", label)
	for _, k := range ks {
		fmt.Printf("%12s", f(k))
	}
	fmt.Println()
}

func row(label string, cells []string) {
	fmt.Printf("%-16s", label)
	for _, c := range cells {
		fmt.Printf("%12s", c)
	}
	fmt.Println()
}

// Command experiments regenerates the paper's evaluation tables (Tables 1-5)
// on the synthetic benchmark profiles.
//
// Usage:
//
//	experiments -table N [-scale F] [-delta D] [-k list] [-datasets list]
//	            [-trials T] [-seed S] [-workers W] [-verbose]
//	            [-null independence|swap] [-swap-ppo 8] [-swap-proposals N]
//	            [-correction by|bonferroni|holm|westfall-young]
//
// Table 1 prints the benchmark profile parameters; Table 2 runs Algorithm 1
// (ŝ_min) on the random counterparts; Table 3 runs Procedure 2 on the "real"
// variants; Table 4 applies Procedure 2 to pure-random instances and counts
// finite outcomes; Table 5 compares Procedure 1 and Procedure 2 power.
// -table 0 runs everything.
//
// -scale divides every profile's transaction count (default 16; use 1 for
// the paper's full-size runs — hours of CPU). Scaled thresholds shrink
// roughly in proportion; the qualitative pattern is preserved.
//
// -correction picks the multiple-testing correction Procedure 1 uses in
// Table 5 (default: the paper's Benjamini–Yekutieli step-up). The
// Westfall–Young mode resamples per-replicate min-p statistics on the same
// Monte Carlo replicates, so Table 5 then shows the power the resampling
// correction buys over the analytic ones.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"sigfim/internal/core"
	"sigfim/internal/dataset"
	"sigfim/internal/mining"
	"sigfim/internal/montecarlo"
	"sigfim/internal/randmodel"
	"sigfim/internal/stats"
	"sigfim/internal/synth"
)

// app carries one invocation's settings and output sink; run() builds it
// from the flags, so run is reentrant (no mutable package state).
type app struct {
	seed          uint64
	delta         int
	trials        int
	workers       int
	verbose       bool
	algo          mining.Algorithm
	correction    string
	swapNull      bool
	swapPPO       int
	swapProposals int
	out           io.Writer
}

// nullFor builds the selected null model for one generated instance: the
// paper's independence model from the measured profile, or margin-preserving
// swap randomization seeded from the instance itself.
func (a *app) nullFor(name string, v *dataset.Vertical) randmodel.Model {
	if m := a.coreNull(v); m != nil {
		return m
	}
	return randmodel.FromProfile(dataset.ExtractVertical(name, v))
}

// coreNull is the core.Options.NullModel value for one instance: nil keeps
// the pipeline's default (independence from the measured profile).
func (a *app) coreNull(v *dataset.Vertical) randmodel.Model {
	if !a.swapNull {
		return nil
	}
	return &randmodel.SwapModel{
		Base:                   v.Horizontal(),
		ProposalsPerOccurrence: a.swapPPO,
		Proposals:              a.swapProposals,
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without os.Exit: usage errors (bad flags, bad -k/-datasets
// lists, unknown algorithms) report on stderr with exit code 2, and the
// selected tables print to stdout. Tests drive it directly.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	table := fs.Int("table", 0, "table to regenerate (1-5; 0 = all)")
	scale := fs.Int("scale", 0, "divide every profile's t by this factor (0 = per-profile auto; 1 = full size)")
	delta := fs.Int("delta", 200, "Monte Carlo replicates for Algorithm 1")
	kList := fs.String("k", "2,3,4", "comma-separated itemset sizes")
	datasets := fs.String("datasets", "", "comma-separated profile names (default: all six)")
	trials := fs.Int("trials", 20, "random instances per profile for Table 4")
	seed := fs.Uint64("seed", 20090629, "base random seed")
	verbose := fs.Bool("verbose", false, "print per-step diagnostics")
	workers := fs.Int("workers", 0, "worker goroutines (0 = all CPUs, 1 = serial)")
	algoName := fs.String("algo", "auto", "mining algorithm: auto|eclat|eclat-bits|apriori|fpgrowth")
	null := fs.String("null", "independence", "null model for tables 2-5: independence|swap")
	correction := fs.String("correction", "", "Procedure 1 correction for table 5: by|bonferroni|holm|westfall-young (\"\" = by)")
	swapPPO := fs.Int("swap-ppo", 0, "swap null: proposals per matrix occurrence per replicate (0 = 8)")
	swapProposals := fs.Int("swap-proposals", 0, "swap null: absolute proposals per replicate (overrides -swap-ppo)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	var swapNull bool
	switch *null {
	case "", "independence":
	case "swap":
		swapNull = true
	default:
		fmt.Fprintf(stderr, "experiments: unknown null model %q (want independence or swap)\n", *null)
		return 2
	}
	ks, err := parseKs(*kList)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	algo, err := mining.ParseAlgorithm(*algoName)
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 2
	}
	corr, err := core.ParseCorrection(*correction)
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 2
	}
	if *table < 0 || *table > 5 {
		fmt.Fprintf(stderr, "experiments: -table must be 0-5, got %d\n", *table)
		return 2
	}
	if *scale < 0 {
		fmt.Fprintf(stderr, "experiments: -scale must be >= 0, got %d\n", *scale)
		return 2
	}
	specs, err := selectSpecs(*datasets, *scale)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	a := &app{
		seed: *seed, delta: *delta, trials: *trials, workers: *workers,
		verbose: *verbose, algo: algo, correction: corr, out: stdout,
		swapNull: swapNull, swapPPO: *swapPPO, swapProposals: *swapProposals,
	}
	want := func(n int) bool { return *table == 0 || *table == n }
	if want(1) {
		a.table1(specs)
	}
	if want(2) {
		a.table2(specs, ks)
	}
	if want(3) {
		a.table3(specs, ks)
	}
	if want(4) {
		a.table4(specs, ks)
	}
	if want(5) {
		a.table5(specs, ks)
	}
	return 0
}

func parseKs(s string) ([]int, error) {
	var ks []int
	for _, part := range strings.Split(s, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || k < 1 {
			return nil, fmt.Errorf("experiments: bad k %q", part)
		}
		ks = append(ks, k)
	}
	return ks, nil
}

func selectSpecs(names string, scale int) ([]synth.Spec, error) {
	var specs []synth.Spec
	if names == "" {
		specs = synth.Profiles()
	} else {
		for _, n := range strings.Split(names, ",") {
			s, ok := synth.ByName(strings.TrimSpace(n))
			if !ok {
				return nil, fmt.Errorf("experiments: unknown dataset %q (have %v)", n, synth.Names())
			}
			specs = append(specs, s)
		}
	}
	for i := range specs {
		f := scale
		if f == 0 {
			f = synth.RecommendedScale(specs[i].Name)
		}
		specs[i] = specs[i].Scale(f)
	}
	return specs, nil
}

// table1 reports the measured parameters of one generated "real" instance of
// each profile, next to the published targets.
func (a *app) table1(specs []synth.Spec) {
	fmt.Fprintln(a.out, "== Table 1: benchmark dataset parameters (measured on one synthetic instance) ==")
	fmt.Fprintf(a.out, "%-12s %8s %-24s %7s %9s\n", "Dataset", "n", "[fmin; fmax]", "m", "t")
	for _, spec := range specs {
		v := spec.GenerateReal(a.seed)
		p := dataset.ExtractVertical(spec.Name, v)
		fmin, fmax := p.FreqRange()
		fmt.Fprintf(a.out, "%-12s %8d [%.3g ; %.3g] %10.1f %9d\n",
			spec.Name, p.NumItems(), fmin, fmax, p.AvgTransactionLen(), p.T)
	}
	fmt.Fprintln(a.out)
}

// table2 runs Algorithm 1 on each random counterpart: a random dataset with
// the same transaction count and item frequencies as the (generated) real
// benchmark instance, exactly as the paper's RandX datasets are defined.
func (a *app) table2(specs []synth.Spec, ks []int) {
	fmt.Fprintln(a.out, "== Table 2: ŝ_min from Algorithm 1 (eps=0.01) on random counterparts ==")
	a.header("Dataset", ks, func(k int) string { return fmt.Sprintf("k=%d", k) })
	for _, spec := range specs {
		cells := make([]string, len(ks))
		real := spec.GenerateReal(a.seed)
		null := a.nullFor(spec.Name, real)
		for i, k := range ks {
			res, err := montecarlo.FindPoissonThreshold(null, montecarlo.Config{
				K: k, Delta: a.delta, Epsilon: 0.01, Seed: a.seed, Workers: a.workers, Algorithm: a.algo,
			})
			if err != nil {
				cells[i] = "err:" + err.Error()
				continue
			}
			cells[i] = strconv.Itoa(res.SMin)
		}
		a.row("Rand"+spec.Name, cells)
	}
	fmt.Fprintln(a.out)
}

// table3 runs Procedure 2 on the planted "real" variants.
func (a *app) table3(specs []synth.Spec, ks []int) {
	fmt.Fprintln(a.out, "== Table 3: Procedure 2 (alpha=beta=0.05) on the benchmark datasets ==")
	fmt.Fprintf(a.out, "%-12s %4s %10s %12s %12s\n", "Dataset", "k", "s*", "Q_{k,s*}", "lambda(s*)")
	for _, spec := range specs {
		v := spec.GenerateReal(a.seed)
		nm := a.coreNull(v) // one model per spec: its snapshot/pool warm across ks
		for _, k := range ks {
			an, err := core.Analyze(spec.Name, v, k, core.Options{
				Delta: a.delta, Seed: a.seed, Workers: a.workers, Algorithm: a.algo,
				NullModel: nm,
			})
			if err != nil {
				fmt.Fprintf(a.out, "%-12s %4d  error: %v\n", spec.Name, k, err)
				continue
			}
			a.printProc2Row(spec.Name, k, an.Proc2)
			if a.verbose {
				for _, st := range an.Proc2.Steps {
					fmt.Fprintf(a.out, "    step i=%d s=%d Q=%d lam=%.4g p=%.4g rej=%v\n",
						st.I, st.S, st.Q, st.Lambda, st.PValue, st.Rejected)
				}
			}
		}
	}
	fmt.Fprintln(a.out)
}

func (a *app) printProc2Row(name string, k int, p2 *core.Procedure2Result) {
	if p2.Found {
		fmt.Fprintf(a.out, "%-12s %4d %10d %12d %12.3g\n", name, k, p2.SStar, p2.Q, p2.Lambda)
	} else {
		fmt.Fprintf(a.out, "%-12s %4d %10s %12d %12d\n", name, k, "inf", 0, 0)
	}
}

// table4 applies Procedure 2 to pure-random instances. Algorithm 1 runs once
// per (profile, k) — ŝ_min and the lambda estimates are properties of the
// null model, not of any individual instance — and each trial then runs only
// the Procedure 2 ladder against its own instance.
func (a *app) table4(specs []synth.Spec, ks []int) {
	fmt.Fprintf(a.out, "== Table 4: finite s* count over %d random instances per profile ==\n", a.trials)
	a.header("Dataset", ks, func(k int) string { return fmt.Sprintf("k=%d", k) })
	for _, spec := range specs {
		cells := make([]string, len(ks))
		real := spec.GenerateReal(a.seed)
		null := a.nullFor(spec.Name, real)
		for i, k := range ks {
			mc, err := montecarlo.FindPoissonThreshold(null, montecarlo.Config{
				K: k, Delta: a.delta, Epsilon: 0.01, Seed: a.seed, Workers: a.workers, Algorithm: a.algo,
			})
			if err != nil {
				cells[i] = "err:" + err.Error()
				continue
			}
			sMin := mc.SMin
			if sMin < mc.Floor {
				sMin = mc.Floor
			}
			lambda := func(s int) float64 {
				if s < mc.Floor {
					s = mc.Floor
				}
				return mc.Lambda(s)
			}
			finite := 0
			for trial := 0; trial < a.trials; trial++ {
				v := null.Generate(stats.NewRNG(a.seed + uint64(1000+trial)))
				p2, err := core.Procedure2Ex(v, k, sMin, lambda, 0.05, 0.05, core.SplitEqual, a.workers, a.algo)
				if err != nil {
					cells[i] = "err:" + err.Error()
					break
				}
				if p2.Found {
					finite++
				}
			}
			if cells[i] == "" {
				cells[i] = strconv.Itoa(finite)
			}
		}
		a.row("Random"+spec.Name, cells)
	}
	fmt.Fprintln(a.out)
}

// table5 compares Procedure 1's family size |R| against Procedure 2's,
// under the correction selected by -correction.
func (a *app) table5(specs []synth.Spec, ks []int) {
	fmt.Fprintf(a.out, "== Table 5: Procedure 1 |R| and power ratio r = Q_{k,s*}/|R| (beta=0.05, correction=%s) ==\n", a.correction)
	fmt.Fprintf(a.out, "%-12s %4s %10s %10s\n", "Dataset", "k", "|R|", "r")
	for _, spec := range specs {
		v := spec.GenerateReal(a.seed)
		nm := a.coreNull(v) // one model per spec: its snapshot/pool warm across ks
		for _, k := range ks {
			an, err := core.Analyze(spec.Name, v, k, core.Options{
				Delta: a.delta, Seed: a.seed, Workers: a.workers, Algorithm: a.algo, RunProcedure1: true,
				Correction: a.correction, NullModel: nm,
			})
			if err != nil {
				fmt.Fprintf(a.out, "%-12s %4d  error: %v\n", spec.Name, k, err)
				continue
			}
			r := an.PowerRatio()
			rs := fmt.Sprintf("%.3f", r)
			if math.IsInf(r, 1) {
				rs = "inf"
			}
			fmt.Fprintf(a.out, "%-12s %4d %10d %10s\n", spec.Name, k, an.Proc1.FamilySize, rs)
		}
	}
	fmt.Fprintln(a.out)
}

func (a *app) header(label string, ks []int, f func(int) string) {
	fmt.Fprintf(a.out, "%-16s", label)
	for _, k := range ks {
		fmt.Fprintf(a.out, "%12s", f(k))
	}
	fmt.Fprintln(a.out)
}

func (a *app) row(label string, cells []string) {
	fmt.Fprintf(a.out, "%-16s", label)
	for _, c := range cells {
		fmt.Fprintf(a.out, "%12s", c)
	}
	fmt.Fprintln(a.out)
}

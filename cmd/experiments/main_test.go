package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunExitCodes drives the extracted run() through the flag/selection
// error surface (exit 2, message on stderr, no panic) and one fast success
// path (Table 1 on the smallest profile, heavily scaled down).
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name       string
		args       []string
		wantCode   int
		wantStderr string
		wantStdout string
	}{
		{"bad flag", []string{"-bogus"}, 2, "flag provided but not defined", ""},
		{"flag help", []string{"-h"}, 0, "-table", ""},
		{"bad k list", []string{"-k", "2,zero"}, 2, "bad k", ""},
		{"zero k", []string{"-k", "0"}, 2, "bad k", ""},
		{"bad algorithm", []string{"-algo", "quantum"}, 2, "unknown algorithm", ""},
		{"unknown dataset", []string{"-datasets", "NoSuchProfile"}, 2, "unknown dataset", ""},
		{"bad table", []string{"-table", "9"}, 2, "-table must be 0-5", ""},
		{"negative scale", []string{"-scale=-2"}, 2, "-scale must be >= 0", ""},
		{"table1 ok", []string{"-table", "1", "-datasets", "Bms1", "-scale", "64"}, 0, "", "== Table 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("exit code = %d, want %d\nstdout: %s\nstderr: %s",
					code, tc.wantCode, stdout.String(), stderr.String())
			}
			if tc.wantStderr != "" && !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Errorf("stderr %q missing %q", stderr.String(), tc.wantStderr)
			}
			if tc.wantStdout != "" && !strings.Contains(stdout.String(), tc.wantStdout) {
				t.Errorf("stdout %q missing %q", stdout.String(), tc.wantStdout)
			}
			if code != 0 && stderr.Len() == 0 {
				t.Error("non-zero exit with empty stderr")
			}
		})
	}
}

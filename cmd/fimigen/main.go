// Command fimigen synthesizes FIMI-format transaction datasets from the
// benchmark profiles (Table 1 of the paper) or from explicit parameters.
//
//	fimigen -profile Bms1 [-scale 16] [-variant real|random] [-seed 1] -out bms1.dat
//	fimigen -n 1000 -t 50000 -fmin 1e-5 -fmax 0.1 -meanlen 4 [-seed 1] -out custom.dat
//
// The "real" variant includes the profile's planted correlated blocks; the
// "random" variant is the pure independence null model.
package main

import (
	"flag"
	"fmt"
	"os"

	"sigfim/internal/dataset"
	"sigfim/internal/synth"
)

var (
	flagProfile = flag.String("profile", "", "benchmark profile name (Retail, Kosarak, Bms1, Bms2, Bmspos, Pumsb*)")
	flagScale   = flag.Int("scale", 1, "divide the profile's t by this factor")
	flagVariant = flag.String("variant", "real", "real (planted correlations) or random (pure null)")
	flagSeed    = flag.Uint64("seed", 1, "random seed")
	flagOut     = flag.String("out", "", "output file (default stdout)")

	flagN       = flag.Int("n", 0, "custom: number of items")
	flagT       = flag.Int("t", 0, "custom: number of transactions")
	flagFMin    = flag.Float64("fmin", 1e-5, "custom: minimum item frequency")
	flagFMax    = flag.Float64("fmax", 0.5, "custom: maximum item frequency")
	flagMeanLen = flag.Float64("meanlen", 5, "custom: mean transaction length")
)

func main() {
	flag.Parse()
	spec, err := buildSpec()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fimigen:", err)
		os.Exit(2)
	}
	var v = generate(spec)
	d := v.Horizontal()
	out := os.Stdout
	if *flagOut != "" {
		f, err := os.Create(*flagOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fimigen:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := dataset.WriteFIMI(out, d); err != nil {
		fmt.Fprintln(os.Stderr, "fimigen:", err)
		os.Exit(1)
	}
	p := dataset.Extract(spec.Name, d)
	fmin, fmax := p.FreqRange()
	fmt.Fprintf(os.Stderr, "%s (%s): n=%d t=%d m=%.2f f=[%.3g, %.3g]\n",
		spec.Name, *flagVariant, p.NumItems(), p.T, p.AvgTransactionLen(), fmin, fmax)
}

func buildSpec() (synth.Spec, error) {
	if *flagProfile != "" {
		s, ok := synth.ByName(*flagProfile)
		if !ok {
			return synth.Spec{}, fmt.Errorf("unknown profile %q (have %v)", *flagProfile, synth.Names())
		}
		return s.Scale(*flagScale), nil
	}
	if *flagN <= 0 || *flagT <= 0 {
		return synth.Spec{}, fmt.Errorf("need -profile NAME or both -n and -t")
	}
	return synth.Spec{
		Name: "custom", N: *flagN, T: *flagT,
		FMin: *flagFMin, FMax: *flagFMax, MeanLen: *flagMeanLen,
	}, nil
}

func generate(spec synth.Spec) *dataset.Vertical {
	switch *flagVariant {
	case "real":
		return spec.GenerateReal(*flagSeed)
	case "random":
		return spec.GenerateNull(*flagSeed)
	default:
		fmt.Fprintf(os.Stderr, "fimigen: unknown variant %q\n", *flagVariant)
		os.Exit(2)
		return nil
	}
}

package sigfim

// Benchmark harness: one benchmark per table of the paper's evaluation
// (Tables 1-5; the paper has no figures). Each benchmark regenerates the
// table's rows for a scaled benchmark profile; `go test -bench Table -v`
// prints the actual values via b.Log. cmd/experiments runs the same
// computations over all profiles with configurable scale, and EXPERIMENTS.md
// records paper-vs-measured.
//
// The profiles are scaled (t divided by benchScale) so the full suite runs
// in minutes; the qualitative shape — which (dataset, k) pairs admit finite
// s*, the ordering of ŝ_min across profiles, power ratios >= 1 — is
// preserved under scaling because every threshold is driven by Binomial
// tails in t.

import (
	"testing"
)

const (
	benchScale = 32
	benchDelta = 80
	benchSeed  = 20090629
)

func benchSpec(b *testing.B, name string) BenchmarkSpec {
	b.Helper()
	spec, err := BenchmarkProfile(name)
	if err != nil {
		b.Fatal(err)
	}
	return spec.Scale(benchScale)
}

// BenchmarkTable1Profiles measures profile extraction (the Table 1 columns)
// on a generated instance of each benchmark.
func BenchmarkTable1Profiles(b *testing.B) {
	for _, name := range BenchmarkNames() {
		b.Run(name, func(b *testing.B) {
			d := benchSpec(b, name).Real(benchSeed)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := d.Profile(name)
				if p.NumTransactions == 0 {
					b.Fatal("empty profile")
				}
			}
			p := d.Profile(name)
			b.Logf("n=%d t=%d m=%.2f f=[%.3g, %.3g]",
				p.NumItems, p.NumTransactions, p.AvgTransactionLen, p.FMin, p.FMax)
		})
	}
}

// BenchmarkTable2SMin runs Algorithm 1 (FindPoissonThreshold) on the random
// counterpart of each profile for k = 2, 3, 4 — the Table 2 computation.
func BenchmarkTable2SMin(b *testing.B) {
	for _, name := range BenchmarkNames() {
		for _, k := range []int{2, 3, 4} {
			b.Run(benchName(name, k), func(b *testing.B) {
				d := benchSpec(b, name).Random(benchSeed)
				var sMin int
				var err error
				for i := 0; i < b.N; i++ {
					sMin, err = d.FindSMin(k, &Config{Delta: benchDelta, Seed: benchSeed})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.Logf("s_min = %d", sMin)
			})
		}
	}
}

// BenchmarkTable3Procedure2 runs the full methodology (Algorithm 1 +
// Procedure 2) on the planted "real" variant of each profile — Table 3.
func BenchmarkTable3Procedure2(b *testing.B) {
	for _, name := range BenchmarkNames() {
		for _, k := range []int{2, 3, 4} {
			b.Run(benchName(name, k), func(b *testing.B) {
				d := benchSpec(b, name).Real(benchSeed)
				var rep *Report
				var err error
				for i := 0; i < b.N; i++ {
					rep, err = d.Significant(k, &Config{Delta: benchDelta, Seed: benchSeed, MaxPatterns: 1})
					if err != nil {
						b.Fatal(err)
					}
				}
				if rep.Infinite {
					b.Logf("s* = inf")
				} else {
					b.Logf("s* = %d Q = %d lambda = %.3g", rep.SStar, rep.NumSignificant, rep.Lambda)
				}
			})
		}
	}
}

// BenchmarkTable4Robustness applies Procedure 2 to a pure-random instance —
// the per-trial cost of the Table 4 robustness experiment (the table itself
// aggregates 100 such trials per profile; cmd/experiments -table 4 does the
// aggregation).
func BenchmarkTable4Robustness(b *testing.B) {
	for _, name := range BenchmarkNames() {
		b.Run(name, func(b *testing.B) {
			spec := benchSpec(b, name)
			finite := 0
			for i := 0; i < b.N; i++ {
				d := spec.Random(benchSeed + uint64(i))
				rep, err := d.Significant(2, &Config{Delta: benchDelta, Seed: benchSeed, MaxPatterns: 1})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Infinite {
					finite++
				}
			}
			b.Logf("finite s* in %d of %d random trials", finite, b.N)
		})
	}
}

// BenchmarkTable5Power runs Procedure 2 with the Procedure 1 baseline and
// reports the power ratio r = Q_{k,s*}/|R| — Table 5.
func BenchmarkTable5Power(b *testing.B) {
	for _, name := range BenchmarkNames() {
		for _, k := range []int{2, 3, 4} {
			b.Run(benchName(name, k), func(b *testing.B) {
				d := benchSpec(b, name).Real(benchSeed)
				var rep *Report
				var err error
				for i := 0; i < b.N; i++ {
					rep, err = d.Significant(k, &Config{
						Delta: benchDelta, Seed: benchSeed,
						WithBaseline: true, MaxPatterns: 1,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				if rep.Baseline != nil {
					b.Logf("|R| = %d, r = %.3f", rep.Baseline.NumSignificant, rep.PowerRatio)
				}
			})
		}
	}
}

func benchName(dataset string, k int) string {
	return dataset + "/k=" + string(rune('0'+k))
}

// BenchmarkMine compares the mining algorithms on a realistic profile — the
// engine-level ablation behind every table.
func BenchmarkMine(b *testing.B) {
	d := benchSpec(b, "Bms2").Real(benchSeed)
	sMin := 10
	for _, algo := range []string{AlgoEclat, AlgoEclatBit, AlgoApriori, AlgoFPGrowth} {
		b.Run(algo, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := d.Mine(MineOptions{K: 2, MinSupport: sMin, Algorithm: algo}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCountVsMine quantifies the benefit of counting Q_{k,s} without
// materializing itemsets (what Procedure 2's histogram pass relies on).
func BenchmarkCountVsMine(b *testing.B) {
	d := benchSpec(b, "Bms1").Real(benchSeed)
	b.Run("count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d.CountK(3, 2)
		}
	})
	b.Run("mine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d.Mine(MineOptions{K: 3, MinSupport: 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGenerate measures null-model dataset generation (the inner loop
// of Algorithm 1): cost is proportional to output size, not to t*n.
func BenchmarkGenerate(b *testing.B) {
	for _, name := range []string{"Bms1", "Pumsb*"} {
		b.Run(name, func(b *testing.B) {
			spec := benchSpec(b, name)
			d := spec.Random(benchSeed)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.RandomTwin(uint64(i))
			}
		})
	}
}

// BenchmarkSwapRandomization measures the alternative null model's chain.
func BenchmarkSwapRandomization(b *testing.B) {
	d := benchSpec(b, "Bms1").Real(benchSeed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.SwapTwin(uint64(i))
	}
}

package sigfim

import (
	"reflect"
	"strings"
	"testing"
)

// Public-API swap-null tests: the swap null rides the whole Significant
// pipeline deterministically for every worker count, and FindSMin documents
// its independence-only contract with an explicit rejection.

func TestSignificantSwapNullWorkerIdentity(t *testing.T) {
	d, err := OpenFIMI("testdata/golden_input.dat")
	if err != nil {
		t.Fatalf("open golden fixture: %v", err)
	}
	base := &Config{Delta: 40, Seed: 11, SwapNull: true, SwapProposalsPerOccurrence: 4}
	ref, err := d.Significant(2, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 8} {
		cfg := *base
		cfg.Workers = workers
		rep, err := d.Significant(2, &cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep, ref) {
			t.Fatalf("swap-null Significant differs between workers=1 and workers=%d", workers)
		}
	}
	// The swap and independence nulls are genuinely different models; on the
	// golden fixture their ladders should not coincide step for step.
	indep, err := d.Significant(2, &Config{Delta: 40, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(ref.Steps, indep.Steps) {
		t.Error("swap-null ladder identical to independence ladder; the null-model switch is not taking effect")
	}
}

func TestFindSMinRejectsSwapNull(t *testing.T) {
	d, err := OpenFIMI("testdata/golden_input.dat")
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.FindSMin(2, &Config{Delta: 20, Seed: 1, SwapNull: true})
	if err == nil {
		t.Fatal("FindSMin accepted SwapNull; want an explicit rejection")
	}
	if !strings.Contains(err.Error(), "independence null") {
		t.Errorf("rejection error %q does not explain the independence-only contract", err)
	}
}

package sigfim

import (
	"context"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sigfim/internal/montecarlo"
)

// White-box tests for the fabric's latency telemetry: the per-worker range
// histogram and autotuning EWMA, and the hedging paths that feed them.

// telemetryRequest is hardeningRequest in montecarlo form, for runRemote.
func telemetryRequest() montecarlo.RangeRequest {
	return montecarlo.RangeRequest{
		Range: montecarlo.ReplicateRange{From: 5, To: 10},
		K:     2, Floor: 3, Seeds: []uint64{1, 2, 3, 4, 5},
	}
}

// stallServer answers /healthz and hangs every other request until the
// client abandons it.
func stallServer(t *testing.T) *httptest.Server {
	t.Helper()
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	t.Cleanup(hs.Close)
	return hs
}

// workerStatus pulls one worker's snapshot out of the pool by URL.
func workerStatus(t *testing.T, pool *WorkerPool, url string) WorkerStatus {
	t.Helper()
	st := pool.Snapshot()
	for _, w := range st.Workers {
		if w.URL == url {
			return w
		}
	}
	t.Fatalf("worker %s missing from snapshot %+v", url, st.Workers)
	return WorkerStatus{}
}

func TestRangeLatencyTelemetry(t *testing.T) {
	pool := NewWorkerPool([]string{"http://a"}, WorkerPoolOptions{})
	defer pool.Close()

	pool.reportSuccess("http://a", 40*time.Millisecond, 10) // 0.004 s/replicate
	pool.reportSuccess("http://a", 80*time.Millisecond, 10) // 0.008 s/replicate
	rl := workerStatus(t, pool, "http://a").RangeLatency
	if rl == nil {
		t.Fatal("no RangeLatency after two successes")
	}
	if rl.Count != 2 {
		t.Fatalf("Count = %d, want 2", rl.Count)
	}
	// EWMA seeds on the first observation, then smooths: 0.7*0.004 + 0.3*0.008.
	if want := 0.0052; math.Abs(rl.EWMAReplicateSeconds-want) > 1e-12 {
		t.Fatalf("EWMA = %v, want %v", rl.EWMAReplicateSeconds, want)
	}
	if len(rl.Buckets) != len(RangeLatencyBuckets)+1 {
		t.Fatalf("bucket count = %d, want %d", len(rl.Buckets), len(RangeLatencyBuckets)+1)
	}
	// 0.04s lands in the le=0.05 bucket, 0.08s in le=0.1.
	if rl.Buckets[2] != 1 || rl.Buckets[3] != 1 {
		t.Fatalf("bucket layout wrong: %v", rl.Buckets)
	}

	// A hedge loss is censored: histogram yes, EWMA no.
	pool.noteHedgeLoss("http://a", 70*time.Millisecond)
	rl = workerStatus(t, pool, "http://a").RangeLatency
	if rl.Count != 3 || rl.Buckets[3] != 2 {
		t.Fatalf("hedge loss not in histogram: count=%d buckets=%v", rl.Count, rl.Buckets)
	}
	if want := 0.0052; math.Abs(rl.EWMAReplicateSeconds-want) > 1e-12 {
		t.Fatalf("hedge loss moved the EWMA: %v, want %v", rl.EWMAReplicateSeconds, want)
	}
	if want := 0.04 + 0.08 + 0.07; math.Abs(rl.SumSeconds-want) > 1e-9 {
		t.Fatalf("SumSeconds = %v, want %v", rl.SumSeconds, want)
	}
}

func TestAutotuneRangeSize(t *testing.T) {
	pool := NewWorkerPool([]string{"http://a", "http://b"}, WorkerPoolOptions{})
	defer pool.Close()

	if got := pool.AutotuneRangeSize(1000, 0); got != 0 {
		t.Fatalf("no observations: autotune = %d, want 0 (no opinion)", got)
	}

	// 8 replicates in 2s = 0.25 s/replicate (exact in binary): the 2s default
	// target asks for 8-replicate ranges.
	pool.reportSuccess("http://a", 2*time.Second, 8)
	if got := pool.AutotuneRangeSize(1000, 0); got != 8 {
		t.Fatalf("autotune = %d, want 8", got)
	}
	// Upper clamp: delta/workers keeps every worker busy.
	if got := pool.AutotuneRangeSize(10, 0); got != 5 {
		t.Fatalf("autotune(delta=10) = %d, want 5 (delta/workers)", got)
	}
	// Lower clamp: a target below one replicate's latency still ships work.
	if got := pool.AutotuneRangeSize(1000, time.Millisecond); got != 1 {
		t.Fatalf("autotune(target=1ms) = %d, want 1", got)
	}

	// The slowest worker sets the pace: b at 1 s/replicate drags the size to 2.
	pool.reportSuccess("http://b", 8*time.Second, 8)
	if got := pool.AutotuneRangeSize(1000, 0); got != 2 {
		t.Fatalf("autotune with slow worker = %d, want 2", got)
	}

	// An ejected worker no longer constrains sizing.
	for i := 0; i < 3; i++ {
		pool.reportFailure("http://b", errors.New("boom"))
	}
	if st := workerStatus(t, pool, "http://b"); st.State != WorkerEjected {
		t.Fatalf("worker b not ejected: %+v", st)
	}
	if got := pool.AutotuneRangeSize(1000, 0); got != 8 {
		t.Fatalf("autotune after ejection = %d, want 8", got)
	}

	if got := pool.AutotuneRangeSize(0, 0); got != 0 {
		t.Fatalf("autotune(delta=0) = %d, want 0", got)
	}
}

// TestHedgeLossLatencyRecorded: when a hedged duplicate wins the race, the
// canceled loser's latency must still land in its worker's histogram (as a
// censored observation) while the winner feeds both histogram and EWMA.
func TestHedgeLossLatencyRecorded(t *testing.T) {
	hung := stallServer(t)
	live := partialEcho(t, func(rp *RangePartial) any { return rp })
	defer live.Close()

	pool := NewWorkerPool([]string{hung.URL, live.URL}, WorkerPoolOptions{EjectAfter: 1000})
	defer pool.Close()
	f := &remoteFabric{pool: pool, hc: pool.client(), retries: 2, hedgeDelay: 20 * time.Millisecond}

	p, err := f.runRemote(context.Background(), telemetryRequest(), hardeningRequest(),
		[]string{hung.URL, live.URL})
	if err != nil || p == nil {
		t.Fatalf("runRemote: p=%v err=%v", p, err)
	}

	if st := pool.Snapshot(); st.Hedges != 1 {
		t.Fatalf("Hedges = %d, want 1", st.Hedges)
	}
	ls := workerStatus(t, pool, live.URL)
	if ls.Successes != 1 || ls.RangeLatency == nil || ls.RangeLatency.EWMAReplicateSeconds == 0 {
		t.Fatalf("winner telemetry missing: %+v", ls)
	}

	// The loser drains on a detached goroutine after the winner returns.
	deadline := time.Now().Add(5 * time.Second)
	for {
		hs := workerStatus(t, pool, hung.URL)
		if rl := hs.RangeLatency; rl != nil && rl.Count >= 1 {
			if rl.EWMAReplicateSeconds != 0 {
				t.Fatalf("censored hedge loss moved the EWMA: %+v", rl)
			}
			if hs.Failures != 0 {
				t.Fatalf("hedge loss counted as failure: %+v", hs)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("hedge-loser latency never recorded: %+v", hs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHedgeNotDoubleCounted: a hedged attempt that itself fails and is
// retried on a third worker must count exactly one hedge — the retry is a
// plain sequential attempt, not a second hedge.
func TestHedgeNotDoubleCounted(t *testing.T) {
	hung := stallServer(t)
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer failing.Close()
	live := partialEcho(t, func(rp *RangePartial) any { return rp })
	defer live.Close()

	pool := NewWorkerPool([]string{hung.URL, failing.URL, live.URL}, WorkerPoolOptions{EjectAfter: 1000})
	defer pool.Close()
	f := &remoteFabric{pool: pool, hc: pool.client(), retries: 3, hedgeDelay: 20 * time.Millisecond}

	// Attempt 1 hangs, the hedge fires attempt 2 (the failing worker), its
	// failure launches attempt 3 sequentially, which wins.
	p, err := f.runRemote(context.Background(), telemetryRequest(), hardeningRequest(),
		[]string{hung.URL, failing.URL, live.URL})
	if err != nil || p == nil {
		t.Fatalf("runRemote: p=%v err=%v", p, err)
	}

	st := pool.Snapshot()
	if st.Hedges != 1 {
		t.Fatalf("Hedges = %d, want exactly 1 (retry of a failed hedge is not a new hedge)", st.Hedges)
	}
	if fs := workerStatus(t, pool, failing.URL); fs.Failures != 1 || fs.Hedged != 1 {
		t.Fatalf("failing worker: %+v, want 1 failure and 1 hedged dispatch", fs)
	}
	if ls := workerStatus(t, pool, live.URL); ls.Successes != 1 || ls.Hedged != 0 {
		t.Fatalf("live worker: %+v, want 1 success and 0 hedged dispatches", ls)
	}
}

package sigfim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"sync"

	"sigfim/internal/dataset"
	"sigfim/internal/mining"
	"sigfim/internal/randmodel"
	"sigfim/internal/stats"
)

// Dataset is a transactional dataset: items are dense non-negative integer
// ids, transactions are item sets. Datasets are immutable once constructed
// and safe for concurrent use: the vertical (item-major) index, the item
// supports, and the content hash are built lazily exactly once behind
// sync.Once guards, so many goroutines may analyze the same Dataset at the
// same time (the basis of the sigfimd service).
type Dataset struct {
	d *dataset.Dataset
	v *dataset.Vertical

	prepOnce sync.Once // guards the lazy vertical index + item supports
	hashOnce sync.Once // guards hash
	hash     string
}

// FromTransactions builds a Dataset from raw transactions. Item ids may
// appear in any order and may repeat within a transaction; the universe size
// is one past the largest id.
func FromTransactions(tx [][]uint32) (*Dataset, error) {
	maxID := -1
	for _, tr := range tx {
		for _, it := range tr {
			if int(it) > maxID {
				maxID = int(it)
			}
		}
	}
	d, err := dataset.New(maxID+1, tx)
	if err != nil {
		return nil, err
	}
	return &Dataset{d: d}, nil
}

// OpenFIMI reads a dataset in FIMI format (one transaction per line,
// space-separated integer item ids) from a file. Gzip-compressed files are
// detected by their magic header and decompressed transparently.
func OpenFIMI(path string) (*Dataset, error) {
	d, err := dataset.ReadFIMIFile(path)
	if err != nil {
		return nil, err
	}
	return &Dataset{d: d}, nil
}

// ReadFIMI reads a FIMI-format dataset from a stream, transparently
// decompressing gzip input (sniffed via the 2-byte magic header).
func ReadFIMI(r io.Reader) (*Dataset, error) {
	d, err := dataset.ReadFIMI(r)
	if err != nil {
		return nil, err
	}
	return &Dataset{d: d}, nil
}

// WriteFIMI writes the dataset in FIMI format.
func (ds *Dataset) WriteFIMI(w io.Writer) error {
	return dataset.WriteFIMI(w, ds.d)
}

// fromVertical wraps a generated vertical dataset.
func fromVertical(v *dataset.Vertical) *Dataset {
	return &Dataset{d: v.Horizontal(), v: v}
}

// vertical returns the cached item-major index, building it (and the item
// supports it is derived from) exactly once even under concurrent callers.
func (ds *Dataset) vertical() *dataset.Vertical {
	ds.prepOnce.Do(func() {
		ds.d.ItemSupports() // force the lazy support cache inside the guard
		if ds.v == nil {
			ds.v = ds.d.Vertical()
		}
	})
	return ds.v
}

// frequencies returns the per-item frequency vector after forcing the
// one-time index build, so concurrent readers never race on the lazy caches.
func (ds *Dataset) frequencies() []float64 {
	ds.vertical()
	return ds.d.Frequencies()
}

// Hash returns a deterministic hex-encoded SHA-256 content hash of the
// dataset: two datasets have equal hashes iff they have the same item
// universe size and the same sequence of (sorted, deduplicated)
// transactions. The hash is the cache identity of a dataset in the sigfimd
// service — together with a canonicalized analysis configuration it keys the
// result cache, which is sound because the whole pipeline is deterministic
// for a fixed seed. Computed once and cached; safe for concurrent use.
func (ds *Dataset) Hash() string {
	ds.hashOnce.Do(func() {
		h := sha256.New()
		var buf [8]byte
		writeU64 := func(x uint64) {
			binary.LittleEndian.PutUint64(buf[:], x)
			h.Write(buf[:])
		}
		writeU64(uint64(ds.d.NumItems()))
		writeU64(uint64(ds.d.NumTransactions()))
		var items []byte
		for _, tr := range ds.d.Transactions() {
			writeU64(uint64(len(tr)))
			items = items[:0]
			for _, it := range tr {
				items = binary.LittleEndian.AppendUint32(items, it)
			}
			h.Write(items)
		}
		ds.hash = hex.EncodeToString(h.Sum(nil))
	})
	return ds.hash
}

// NumItems returns the item universe size n.
func (ds *Dataset) NumItems() int { return ds.d.NumItems() }

// NumTransactions returns the transaction count t.
func (ds *Dataset) NumTransactions() int { return ds.d.NumTransactions() }

// Transaction returns the i-th transaction (sorted, deduplicated; shared
// slice, do not modify).
func (ds *Dataset) Transaction(i int) []uint32 { return ds.d.Transaction(i) }

// Support returns the number of transactions containing every item of the
// itemset.
func (ds *Dataset) Support(items []uint32) int { return ds.vertical().Support(items) }

// Profile summarizes the parameters the significance methodology reads from
// a dataset; these are the columns of the paper's Table 1.
type Profile struct {
	// Name labels the dataset in reports.
	Name string
	// NumItems is n.
	NumItems int
	// NumTransactions is t.
	NumTransactions int
	// FMin and FMax bound the nonzero item frequencies.
	FMin, FMax float64
	// AvgTransactionLen is m, the mean transaction length.
	AvgTransactionLen float64
	// Freqs is the full per-item frequency vector f_i = n(i)/t.
	Freqs []float64
}

// Profile measures the dataset.
func (ds *Dataset) Profile(name string) Profile {
	ds.vertical() // force the one-time lazy caches for concurrent safety
	p := dataset.Extract(name, ds.d)
	fmin, fmax := p.FreqRange()
	return Profile{
		Name:              name,
		NumItems:          p.NumItems(),
		NumTransactions:   p.T,
		FMin:              fmin,
		FMax:              fmax,
		AvgTransactionLen: p.AvgTransactionLen(),
		Freqs:             p.Freqs,
	}
}

// internalProfile converts back to the internal representation.
func (p Profile) internalProfile() dataset.Profile {
	return dataset.Profile{Name: p.Name, T: p.NumTransactions, Freqs: p.Freqs}
}

// RandomTwin draws a random dataset from the paper's null model matched to
// this dataset: same transaction count, same item frequencies, items placed
// independently. Comparing a statistic between a dataset and its random
// twins is the heart of the significance methodology.
func (ds *Dataset) RandomTwin(seed uint64) *Dataset {
	m := randmodel.IndependentModel{
		T:     ds.d.NumTransactions(),
		Freqs: ds.frequencies(),
	}
	return fromVertical(m.Generate(stats.NewRNG(seed)))
}

// SwapTwin draws a random dataset that preserves both the item supports and
// the transaction lengths exactly, via swap randomization (Gionis et al.
// 2006) — the alternative null model discussed in the paper.
func (ds *Dataset) SwapTwin(seed uint64) *Dataset {
	out := randmodel.SwapRandomize(ds.d, 8, stats.NewRNG(seed))
	return &Dataset{d: out}
}

// GenerateRandom draws a dataset from the independence null model described
// by the profile.
func GenerateRandom(p Profile, seed uint64) *Dataset {
	m := randmodel.IndependentModel{T: p.NumTransactions, Freqs: p.Freqs}
	return fromVertical(m.Generate(stats.NewRNG(seed)))
}

// Pattern is a mined itemset with its support.
type Pattern struct {
	// Items is the itemset, sorted ascending by item id.
	Items []uint32
	// Support counts the transactions containing every item of Items.
	Support int
}

// Algorithm names accepted by MineOptions.Algorithm and Config.Algorithm.
// Every algorithm mines exactly the same itemsets; the choice affects
// performance only.
const (
	// AlgoAuto picks Eclat with an automatically chosen physical layout
	// (tid lists on sparse data, dense bitsets otherwise).
	AlgoAuto = "auto"
	// AlgoEclat forces vertical depth-first mining over sorted tid lists.
	AlgoEclat = "eclat"
	// AlgoEclatBit forces vertical mining over dense bitsets.
	AlgoEclatBit = "eclat-bits"
	// AlgoApriori forces level-wise horizontal mining with a candidate
	// prefix trie.
	AlgoApriori = "apriori"
	// AlgoFPGrowth forces FP-tree mining with parallel sharded conditional
	// trees.
	AlgoFPGrowth = "fpgrowth"
)

// MineOptions configures plain frequent itemset mining.
type MineOptions struct {
	// K mines itemsets of exactly this size when positive; 0 mines all
	// sizes up to MaxLen.
	K int
	// MinSupport is the absolute support threshold (>= 1).
	MinSupport int
	// MaxLen caps itemset size when K == 0 (0 = unbounded).
	MaxLen int
	// Algorithm is one of the Algo* constants ("" = auto).
	Algorithm string
	// Workers bounds the goroutines of the parallel mining engine: 0 uses
	// every CPU, 1 forces serial mining. Results are identical for every
	// worker count.
	Workers int
}

// Mine runs classical frequent itemset mining.
func (ds *Dataset) Mine(opts MineOptions) ([]Pattern, error) {
	algo, err := mining.ParseAlgorithm(opts.Algorithm)
	if err != nil {
		return nil, fmt.Errorf("sigfim: unknown algorithm %q", opts.Algorithm)
	}
	return ds.mineParsed(algo, opts)
}

// mineParsed is Mine after algorithm-name resolution; internal callers that
// already hold a parsed mining.Algorithm use it directly. Horizontal
// algorithms mine the wrapper's horizontal dataset as-is instead of
// round-tripping it through the vertical index.
func (ds *Dataset) mineParsed(algo mining.Algorithm, opts MineOptions) ([]Pattern, error) {
	ds.vertical() // force the one-time lazy caches for concurrent safety
	mopts := mining.Options{
		K:          opts.K,
		MinSupport: opts.MinSupport,
		MaxLen:     opts.MaxLen,
		Algorithm:  algo,
		Workers:    opts.Workers,
	}
	var rs []mining.Result
	var err error
	switch algo {
	case mining.Apriori, mining.FPGrowth:
		rs, err = mining.Mine(ds.d, mopts)
	default:
		rs, err = mining.MineVertical(ds.vertical(), mopts)
	}
	if err != nil {
		return nil, err
	}
	mining.SortResults(rs)
	out := make([]Pattern, len(rs))
	for i, r := range rs {
		out[i] = Pattern{Items: r.Items, Support: r.Support}
	}
	return out, nil
}

// CountK returns Q_{k,s}: the number of k-itemsets with support >= s,
// counted without materializing them. The count runs on every CPU; use
// CountKWorkers to bound the parallelism.
func (ds *Dataset) CountK(k, minSupport int) int64 {
	return mining.CountKParallel(ds.vertical(), k, minSupport, 0)
}

// CountKWorkers is CountK with an explicit worker bound (1 = serial).
func (ds *Dataset) CountKWorkers(k, minSupport, workers int) int64 {
	return mining.CountKParallel(ds.vertical(), k, minSupport, workers)
}

// ClosedItemsets mines all closed itemsets with support >= minSupport.
func (ds *Dataset) ClosedItemsets(minSupport int) []Pattern {
	rs := mining.ClosedAll(ds.vertical(), minSupport)
	out := make([]Pattern, len(rs))
	for i, r := range rs {
		out[i] = Pattern{Items: r.Items, Support: r.Support}
	}
	return out
}

// LargestClosedItemset returns a maximum-cardinality closed itemset with
// support >= minSupport and its support. Reproduces the paper's diagnostic
// for interpreting huge significant families (Section 4.1).
func (ds *Dataset) LargestClosedItemset(minSupport int) (Pattern, bool) {
	items, sup := mining.MaxClosedCardinality(ds.vertical(), minSupport)
	if len(items) == 0 {
		return Pattern{}, false
	}
	return Pattern{Items: items, Support: sup}, true
}

// MaximalItemsets mines all maximal frequent itemsets (frequent itemsets
// with no frequent strict superset) at the given support threshold.
func (ds *Dataset) MaximalItemsets(minSupport int) []Pattern {
	rs := mining.MaximalAll(ds.vertical(), minSupport)
	out := make([]Pattern, len(rs))
	for i, r := range rs {
		out[i] = Pattern{Items: r.Items, Support: r.Support}
	}
	return out
}

// TopKItemsets returns the K size-k itemsets with the largest supports,
// descending.
func (ds *Dataset) TopKItemsets(k, K int) []Pattern {
	rs := mining.TopK(ds.vertical(), k, K)
	out := make([]Pattern, len(rs))
	for i, r := range rs {
		out[i] = Pattern{Items: r.Items, Support: r.Support}
	}
	return out
}

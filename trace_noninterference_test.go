package sigfim_test

import (
	"context"
	"reflect"
	"testing"

	"sigfim"
	"sigfim/internal/trace"
)

// Tracing is pure observation: a recorder riding the context must not change
// a byte of any report. These golden tests pin that contract for both null
// models — and assert the recorder actually collected spans, so the
// comparison can never pass vacuously with tracing silently disabled.

func TestTracingDoesNotChangeSignificantBytes(t *testing.T) {
	d := goldenDataset(t)
	nulls := []struct {
		name string
		cfg  func() *sigfim.Config
	}{
		{"independence", func() *sigfim.Config {
			return &sigfim.Config{Delta: 120, Seed: 9, WithBaseline: true}
		}},
		{"swap", func() *sigfim.Config {
			return &sigfim.Config{Delta: 60, Seed: 9, SwapNull: true}
		}},
	}
	for _, null := range nulls {
		t.Run(null.name, func(t *testing.T) {
			plain, err := d.SignificantCtx(context.Background(), 2, null.cfg())
			if err != nil {
				t.Fatal(err)
			}
			rec := trace.NewRecorder("golden-job")
			traced, err := d.SignificantCtx(trace.NewContext(context.Background(), rec), 2, null.cfg())
			if err != nil {
				t.Fatal(err)
			}
			if got, want := mustJSON(t, traced), mustJSON(t, plain); !reflect.DeepEqual(got, want) {
				t.Fatalf("tracing changed the report bytes\nplain:  %s\ntraced: %s", want, got)
			}
			tr := rec.Snapshot()
			if len(tr.Spans) == 0 {
				t.Fatal("recorder collected no spans; the non-interference comparison is vacuous")
			}
			names := make(map[string]bool)
			for _, sp := range tr.Spans {
				names[sp.Name] = true
			}
			for _, want := range []string{"dataset.warmup", "montecarlo.mine", "montecarlo.halving"} {
				if !names[want] {
					t.Errorf("trace lacks a %q span; got %v", want, names)
				}
			}
		})
	}
}

func TestTracingDoesNotChangeSMin(t *testing.T) {
	d := goldenDataset(t)
	cfg := func() *sigfim.Config { return &sigfim.Config{Delta: 120, Seed: 9} }
	plain, err := d.FindSMinCtx(context.Background(), 2, cfg())
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder("golden-smin")
	traced, err := d.FindSMinCtx(trace.NewContext(context.Background(), rec), 2, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if traced != plain {
		t.Fatalf("tracing changed s_min: %d vs %d", traced, plain)
	}
	if len(rec.Snapshot().Spans) == 0 {
		t.Fatal("recorder collected no spans on the smin path")
	}
}

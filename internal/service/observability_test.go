package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"sigfim"
	"sigfim/internal/service"
)

// scrapeMetrics fetches /metrics and parses the Prometheus text format into
// a map keyed by the full sample name, labels included (e.g.
// `sigfimd_jobs_finished_total{kind="smin",state="done"}`). It also returns
// the raw body and asserts the version-0.0.4 content type.
func scrapeMetrics(t *testing.T, base string) (map[string]float64, string) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content type %q lacks version=0.0.4", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	samples := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("metrics line %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	return samples, body
}

// TestSubmitJobTooLarge asserts the 413 contract: a body that trips the
// 1 MiB MaxBytesReader must surface as 413 Request Entity Too Large, not as
// a generic 400 (the decode error wraps *http.MaxBytesError, and the handler
// must keep that chain intact for errors.As).
func TestSubmitJobTooLarge(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Workers: 1, QueueCap: 4})

	// A valid JSON prefix forces the decoder to keep reading value bytes
	// until the MaxBytesReader trips, rather than failing on syntax first.
	body := `{"dataset":"` + strings.Repeat("a", 2<<20)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit: status %d, want %d",
			resp.StatusCode, http.StatusRequestEntityTooLarge)
	}
}

// TestJobListingOmitsResult asserts the listing contract: GET /v1/jobs never
// embeds result payloads (the listing would otherwise grow with the sum of
// all completed results), while GET /v1/jobs/{id} still returns them.
func TestJobListingOmitsResult(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Workers: 1, QueueCap: 4})

	st, _ := submit(t, ts, service.JobRequest{
		Dataset: "golden", Kind: service.KindSMin, K: 2,
		Config: &sigfim.Config{Delta: 20, Seed: 3},
	})
	waitState(t, ts, st.ID, service.StateDone)

	var single service.JobStatus
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID, nil, &single); code != http.StatusOK {
		t.Fatalf("GET job: status %d", code)
	}
	if len(single.Result) == 0 {
		t.Fatal("GET /v1/jobs/{id} on a done job returned no result")
	}

	var listing struct {
		Jobs []service.JobStatus `json:"jobs"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", nil, &listing); code != http.StatusOK {
		t.Fatalf("GET jobs: status %d", code)
	}
	if len(listing.Jobs) != 1 {
		t.Fatalf("listing has %d jobs, want 1", len(listing.Jobs))
	}
	if got := listing.Jobs[0]; len(got.Result) != 0 {
		t.Fatalf("listing embeds %d result bytes for job %s; listings must omit results", len(got.Result), got.ID)
	}
	if listing.Jobs[0].State != service.StateDone {
		t.Fatalf("listing state %s, want done", listing.Jobs[0].State)
	}
}

// TestCacheHitProgress asserts that a job completed from the result cache
// reports the same terminal progress a computed run would (Delta/Delta), not
// the misleading 0/0 of a job that never ran.
func TestCacheHitProgress(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Workers: 1, QueueCap: 4, CacheSize: 8})

	req := service.JobRequest{
		Dataset: "golden", Kind: service.KindSMin, K: 2,
		Config: &sigfim.Config{Delta: 30, Seed: 5},
	}
	first, _ := submit(t, ts, req)
	done := waitState(t, ts, first.ID, service.StateDone)
	if done.Progress.Done != 30 || done.Progress.Total != 30 {
		t.Fatalf("computed job progress %d/%d, want 30/30", done.Progress.Done, done.Progress.Total)
	}

	second, code := submit(t, ts, req)
	if code != http.StatusOK || !second.CacheHit || second.State != service.StateDone {
		t.Fatalf("resubmit: code %d, cache_hit %v, state %s; want 200/true/done",
			code, second.CacheHit, second.State)
	}
	if second.Progress.Done != 30 || second.Progress.Total != 30 {
		t.Fatalf("cache-hit job progress %d/%d, want 30/30 to match the computed run",
			second.Progress.Done, second.Progress.Total)
	}
}

// TestMetricsEndpoint exercises GET /metrics end to end: counters must be
// present, monotonic across job submissions, and the per-kind duration
// histogram must be internally consistent (cumulative buckets, +Inf == count).
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Workers: 1, QueueCap: 4, CacheSize: 8})

	before, _ := scrapeMetrics(t, ts.URL)
	if v := before["sigfimd_jobs_submitted_total"]; v != 0 {
		t.Fatalf("fresh server reports %g submitted jobs", v)
	}
	if v := before["sigfimd_datasets"]; v != 1 {
		t.Fatalf("sigfimd_datasets = %g, want 1", v)
	}

	req := service.JobRequest{
		Dataset: "golden", Kind: service.KindSMin, K: 2,
		Config: &sigfim.Config{Delta: 40, Seed: 7},
	}
	st, _ := submit(t, ts, req)
	waitState(t, ts, st.ID, service.StateDone)
	// Same request again: served from cache, still counted as submitted+done.
	if hit, code := submit(t, ts, req); code != http.StatusOK || !hit.CacheHit {
		t.Fatalf("resubmit: code %d cache_hit %v, want cache hit", code, hit.CacheHit)
	}

	after, body := scrapeMetrics(t, ts.URL)
	if v := after["sigfimd_jobs_submitted_total"]; v != 2 {
		t.Fatalf("sigfimd_jobs_submitted_total = %g, want 2", v)
	}
	doneKey := `sigfimd_jobs_finished_total{kind="smin",state="done"}`
	if v := after[doneKey]; v != 2 {
		t.Fatalf("%s = %g, want 2 (computed + cache hit)\n%s", doneKey, v, body)
	}
	if v := after["sigfimd_cache_hits_total"]; v != 1 {
		t.Fatalf("sigfimd_cache_hits_total = %g, want 1", v)
	}
	if v := after["sigfimd_cache_misses_total"]; v != 1 {
		t.Fatalf("sigfimd_cache_misses_total = %g, want 1", v)
	}
	if v := after["sigfimd_cache_entries"]; v != 1 {
		t.Fatalf("sigfimd_cache_entries = %g, want 1", v)
	}
	if v := after["sigfimd_replicates_total"]; v < 40 {
		t.Fatalf("sigfimd_replicates_total = %g, want >= 40 (Delta)", v)
	}
	if v := after["sigfimd_uptime_seconds"]; v < 0 {
		t.Fatalf("sigfimd_uptime_seconds = %g, want >= 0", v)
	}

	// The duration histogram observes computed jobs only: count 1, not 2.
	countKey := `sigfimd_job_duration_seconds_count{kind="smin"}`
	if v := after[countKey]; v != 1 {
		t.Fatalf("%s = %g, want 1 (cache hits are not observed)\n%s", countKey, v, body)
	}
	if v := after[`sigfimd_job_duration_seconds_sum{kind="smin"}`]; v < 0 {
		t.Fatalf("histogram sum %g is negative", v)
	}
	infKey := `sigfimd_job_duration_seconds_bucket{kind="smin",le="+Inf"}`
	if after[infKey] != after[countKey] {
		t.Fatalf("+Inf bucket %g != count %g", after[infKey], after[countKey])
	}
	// Buckets are cumulative: in order of appearance they never decrease.
	prev := -1.0
	seen := 0
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, `sigfimd_job_duration_seconds_bucket{kind="smin"`) {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket series decreases at %q (%g < %g)", line, v, prev)
		}
		prev = v
		seen++
	}
	if seen < 2 {
		t.Fatalf("found %d histogram buckets, want several", seen)
	}

	// HTTP request counters: everything this test did was 2xx.
	if v := after[`sigfimd_http_requests_total{class="2xx"}`]; v < 4 {
		t.Fatalf(`sigfimd_http_requests_total{class="2xx"} = %g, want >= 4`, v)
	}
}

// TestDisableMetrics asserts Options.DisableMetrics leaves /metrics unrouted
// while the rest of the API keeps working.
func TestDisableMetrics(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Workers: 1, QueueCap: 4, DisableMetrics: true})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /metrics with DisableMetrics: status %d, want 404", resp.StatusCode)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
}

// TestJobEventsNotFound asserts the SSE endpoint 404s for unknown jobs.
func TestJobEventsNotFound(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Workers: 1, QueueCap: 4})
	resp, err := http.Get(ts.URL + "/v1/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("events for unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestJobEventsTerminalJob asserts that watching an already-finished job
// yields exactly one state frame carrying the final status, then EOF.
func TestJobEventsTerminalJob(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Workers: 1, QueueCap: 4})

	st, _ := submit(t, ts, service.JobRequest{
		Dataset: "golden", Kind: service.KindSMin, K: 2,
		Config: &sigfim.Config{Delta: 20, Seed: 11},
	})
	final := waitState(t, ts, st.ID, service.StateDone)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("events content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	if !strings.HasPrefix(raw, "event: state\n") {
		t.Fatalf("stream does not open with a state frame:\n%s", raw)
	}
	data := strings.TrimPrefix(strings.SplitN(raw, "\n", 3)[1], "data: ")
	var got service.JobStatus
	if err := json.Unmarshal([]byte(data), &got); err != nil {
		t.Fatalf("decode state frame: %v", err)
	}
	if got.State != service.StateDone || got.ID != final.ID {
		t.Fatalf("terminal frame = %s/%s, want %s/done", got.ID, got.State, final.ID)
	}
	if !bytes.Equal(compactJSON(t, got.Result), compactJSON(t, final.Result)) {
		t.Fatal("terminal frame result differs from GET /v1/jobs/{id}")
	}
}

func compactJSON(t *testing.T, raw json.RawMessage) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatalf("compact %q: %v", raw, err)
	}
	return buf.Bytes()
}

// TestMetricsHTTPClassCounting asserts 4xx responses land in the 4xx class.
func TestMetricsHTTPClassCounting(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Workers: 1, QueueCap: 4})
	for i := 0; i < 3; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/missing%d", ts.URL, i))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	samples, _ := scrapeMetrics(t, ts.URL)
	if v := samples[`sigfimd_http_requests_total{class="4xx"}`]; v != 3 {
		t.Fatalf(`4xx class = %g, want 3`, v)
	}
}

package service

import (
	"reflect"
	"strings"
	"testing"

	"sigfim"
)

// clampFrac maps an arbitrary fuzzed float into the [0, 1) range validate
// accepts, sending NaN/Inf/out-of-range values to 0 (the "use the default"
// spelling).
func clampFrac(v float64) float64 {
	if !(v >= 0 && v < 1) { // also catches NaN
		return 0
	}
	return v
}

// clampNonNeg maps an arbitrary fuzzed int into the non-negative range
// validate accepts.
func clampNonNeg(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

// FuzzCacheKeyCanonical fuzzes the cache-key normal form: from one fuzzed
// configuration it derives a second request that spells every implicit
// default out explicitly, perturbs every knob the canonical form declares
// irrelevant (Workers always; alpha/beta/baseline/max-patterns for smin
// jobs; swap knobs the null-model selection ignores), and asserts both
// requests land on the same cache key — while seed, dataset hash, and delta
// perturbations always move the key. If canonicalize's default-filling ever
// drifts from the pipeline's, or an irrelevant knob leaks into the key and
// splits cache slots, this finds the counterexample.
func FuzzCacheKeyCanonical(f *testing.F) {
	f.Add(true, 2, 0.0, 0.0, 0.0, 0, uint64(9), false, 0, false, 0, 0, uint8(0), 3, "h1")
	f.Add(true, 3, 0.1, 0.2, 0.05, 500, uint64(1), true, 50, true, 4, 0, uint8(1), 0, "h2")
	f.Add(true, 1, 0.0, 0.0, 0.0, 0, uint64(0), false, 0, true, 0, 900, uint8(2), 8, "")
	f.Add(false, 4, 0.9, 0.0, 0.5, 12, uint64(777), true, 3, false, 5, 6, uint8(3), 1, "deadbeef")
	f.Fuzz(func(t *testing.T, significant bool, k int,
		alpha, beta, epsilon float64, delta int, seed uint64,
		baseline bool, maxPatterns int, swapNull bool, swapPPO, swapProposals int,
		algoSel uint8, workersB int, hash string) {

		kind := KindSMin
		if significant {
			kind = KindSignificant
		}
		algos := []string{"", sigfim.AlgoAuto, sigfim.AlgoEclat, sigfim.AlgoApriori, sigfim.AlgoFPGrowth}
		cfg := sigfim.Config{
			Alpha:                      clampFrac(alpha),
			Beta:                       clampFrac(beta),
			Epsilon:                    clampFrac(epsilon),
			Delta:                      clampNonNeg(delta),
			Seed:                       seed,
			WithBaseline:               baseline,
			MaxPatterns:                clampNonNeg(maxPatterns),
			SwapNull:                   significant && swapNull, // smin jobs reject SwapNull
			SwapProposalsPerOccurrence: clampNonNeg(swapPPO),
			SwapProposals:              clampNonNeg(swapProposals),
			Algorithm:                  algos[int(algoSel)%len(algos)],
		}
		if k < 1 {
			k = 1
		}
		a := JobRequest{Dataset: "d", Kind: kind, K: k, Config: &cfg}

		// b is the same request with nothing left implicit and every
		// canonically-irrelevant knob perturbed.
		bcfg := cfg
		bcfg.Workers = clampNonNeg(workersB) // performance-only, any kind
		if bcfg.Epsilon == 0 {
			bcfg.Epsilon = 0.01
		}
		if bcfg.Delta == 0 {
			bcfg.Delta = 1000
		}
		if bcfg.Algorithm == "" {
			bcfg.Algorithm = sigfim.AlgoAuto
		}
		if kind == KindSignificant {
			if bcfg.Alpha == 0 {
				bcfg.Alpha = 0.05
			}
			if bcfg.Beta == 0 {
				bcfg.Beta = 0.05
			}
			if bcfg.MaxPatterns == 0 {
				bcfg.MaxPatterns = 100000
			}
			switch {
			case !bcfg.SwapNull:
				// Independence null: the swap chain knobs cannot matter.
				bcfg.SwapProposalsPerOccurrence = clampNonNeg(swapPPO) + 3
				bcfg.SwapProposals = clampNonNeg(swapProposals) + 7
			case bcfg.SwapProposals > 0:
				// An absolute chain length overrides the per-occurrence
				// knob, so the latter cannot matter.
				bcfg.SwapProposalsPerOccurrence = clampNonNeg(swapPPO) + 3
			default:
				// Per-occurrence path: spelling out the default of 8 must
				// not split the slot.
				if bcfg.SwapProposalsPerOccurrence == 0 {
					bcfg.SwapProposalsPerOccurrence = 8
				}
			}
		} else {
			// smin jobs ignore Procedure 2's knobs and the null selection.
			bcfg.Alpha = clampFrac(alpha + 0.25)
			bcfg.Beta = clampFrac(beta + 0.25)
			bcfg.WithBaseline = !baseline
			bcfg.MaxPatterns = clampNonNeg(maxPatterns) + 11
			bcfg.SwapProposalsPerOccurrence = clampNonNeg(swapPPO) + 3
			bcfg.SwapProposals = clampNonNeg(swapProposals) + 7
		}
		b := JobRequest{Dataset: "d", Kind: kind, K: k, Config: &bcfg}

		// Both spellings must be accepted by the same validation the engine
		// applies before keying — equivalence over rejected requests would
		// be vacuous.
		var e Engine
		if err := e.validate(a); err != nil {
			t.Fatalf("request a rejected: %v", err)
		}
		if err := e.validate(b); err != nil {
			t.Fatalf("request b rejected: %v", err)
		}

		ca, cb := canonicalize(a), canonicalize(b)
		if ca != cb {
			t.Fatalf("equivalent requests canonicalize differently:\na: %+v\nb: %+v", ca, cb)
		}
		ka, kb := cacheKeyFor(hash, ca), cacheKeyFor(hash, cb)
		if ka != kb {
			t.Fatalf("equivalent requests got distinct cache keys:\n%s\n%s", ka, kb)
		}
		if !strings.HasPrefix(ka, hash+"|") {
			t.Fatalf("key %q does not embed dataset hash %q", ka, hash)
		}

		// A nil config is the all-defaults spelling of the zero config.
		if reflect.DeepEqual(cfg, sigfim.Config{}) {
			nilKey := cacheKeyFor(hash, canonicalize(JobRequest{Dataset: "d", Kind: kind, K: k}))
			if nilKey != ka {
				t.Fatalf("nil config keyed differently from zero config:\n%s\n%s", nilKey, ka)
			}
		}

		// Result-bearing fields must move the key: seed, delta, and the
		// dataset identity are all part of what the cached bytes depend on.
		scfg := cfg
		scfg.Seed = seed + 1
		if sk := cacheKeyFor(hash, canonicalize(JobRequest{Dataset: "d", Kind: kind, K: k, Config: &scfg})); sk == ka {
			t.Fatal("seed change did not change the cache key")
		}
		dcfg := cfg
		dcfg.Delta = clampNonNeg(delta) + 1
		if dk := cacheKeyFor(hash, canonicalize(JobRequest{Dataset: "d", Kind: kind, K: k, Config: &dcfg})); dk == ka {
			t.Fatal("delta change did not change the cache key")
		}
		if hk := cacheKeyFor(hash+"x", ca); hk == ka {
			t.Fatal("dataset hash change did not change the cache key")
		}
	})
}

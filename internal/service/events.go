package service

import (
	"sync"
	"time"
)

// Event types of the job event stream (GET /v1/jobs/{id}/events).
const (
	// EventState marks a lifecycle transition. The stream's first frame is
	// always a state frame carrying the job's current status, and the stream
	// ends after the terminal state frame, which (for done jobs) carries the
	// result — the final frame matches GET /v1/jobs/{id}.
	EventState = "state"
	// EventProgress carries a replicate-progress snapshot of a running job.
	// Progress frames are coalesced: the engine publishes one per merged
	// replicate, but each subscriber is delivered at most one per
	// progressInterval, always the latest.
	EventProgress = "progress"
)

// progressInterval is the minimum spacing between progress frames delivered
// to one subscriber. State frames are never delayed or coalesced.
const progressInterval = 100 * time.Millisecond

// JobEvent is one frame of a job's event stream: the SSE event name plus the
// status snapshot it carries.
type JobEvent struct {
	Type   string    `json:"type"`
	Status JobStatus `json:"status"`
}

// subscription is one watcher's coalescing mailbox. Lifecycle frames queue
// in order and are never dropped; progress frames collapse into a single
// latest-wins slot, which is what bounds a subscription's memory no matter
// how fast replicates merge or how slow the client reads.
type subscription struct {
	notify chan struct{} // buffered(1) wake-up; coalesces signals too

	mu       sync.Mutex
	states   []JobEvent
	progress *JobEvent
}

func (s *subscription) push(ev JobEvent) {
	s.mu.Lock()
	if ev.Type == EventProgress {
		s.progress = &ev
	} else {
		s.states = append(s.states, ev)
	}
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default: // a wake-up is already pending
	}
}

// takeStates removes and returns the pending lifecycle frames, in order.
func (s *subscription) takeStates() []JobEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	evs := s.states
	s.states = nil
	return evs
}

// takeProgress removes and returns the latest pending progress frame.
func (s *subscription) takeProgress() (JobEvent, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.progress == nil {
		return JobEvent{}, false
	}
	ev := *s.progress
	s.progress = nil
	return ev, true
}

// eventBus fans job events out to per-job subscribers. It is deliberately
// small: the engine is the only publisher, the SSE handler the only
// subscriber, and publishing to a job nobody watches is close to free (one
// RLock and a map probe), so the per-replicate progress hook can publish
// unconditionally.
type eventBus struct {
	mu   sync.RWMutex
	subs map[string]map[*subscription]struct{} // job id -> watchers
}

func newEventBus() *eventBus {
	return &eventBus{subs: make(map[string]map[*subscription]struct{})}
}

// subscribe registers a watcher for a job id (the job need not exist yet or
// still; the caller validates against the engine separately).
func (b *eventBus) subscribe(jobID string) *subscription {
	sub := &subscription{notify: make(chan struct{}, 1)}
	b.mu.Lock()
	defer b.mu.Unlock()
	set := b.subs[jobID]
	if set == nil {
		set = make(map[*subscription]struct{})
		b.subs[jobID] = set
	}
	set[sub] = struct{}{}
	return sub
}

// unsubscribe removes a watcher, dropping the job's fan-out set when empty.
func (b *eventBus) unsubscribe(jobID string, sub *subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	set := b.subs[jobID]
	delete(set, sub)
	if len(set) == 0 {
		delete(b.subs, jobID)
	}
}

// hasSubscribers is the publish fast path: the engine's per-replicate
// progress hook skips building a status snapshot when nobody is watching.
func (b *eventBus) hasSubscribers(jobID string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.subs[jobID]) > 0
}

// publish delivers an event to every watcher of the job. push never blocks,
// so a stalled subscriber cannot back-pressure the engine.
func (b *eventBus) publish(jobID string, ev JobEvent) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	for sub := range b.subs[jobID] {
		sub.push(ev)
	}
}

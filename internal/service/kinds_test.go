package service_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"sigfim"
	"sigfim/internal/service"
)

// Job-kind surface tests for the mining kinds (closed, maximal, rules) and
// the correction knob: response bytes bit-identical to the direct library
// calls, canonicalized cache keys (variant spellings share one slot), and
// the admission errors that keep malformed requests out of the queue.

// compactResult recovers the engine's stored result bytes from the indented
// status envelope.
func compactResult(t *testing.T, raw json.RawMessage) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestClosedMaximalJobsBitIdentical(t *testing.T) {
	direct, err := sigfim.OpenFIMI(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, service.Options{Workers: 1})

	cases := []struct {
		kind string
		want service.ItemsetsResult
	}{
		{service.KindClosed, service.ItemsetsResult{MinSupport: 3, Itemsets: direct.ClosedItemsets(3)}},
		{service.KindMaximal, service.ItemsetsResult{MinSupport: 3, Itemsets: direct.MaximalItemsets(3)}},
	}
	for _, c := range cases {
		c.want.NumItemsets = len(c.want.Itemsets)
		wantBytes, err := json.Marshal(c.want)
		if err != nil {
			t.Fatal(err)
		}
		st, code := submit(t, ts, service.JobRequest{Dataset: "golden", Kind: c.kind, MinSupport: 3})
		if code != http.StatusAccepted {
			t.Fatalf("%s: submit status %d (err %q)", c.kind, code, st.Error)
		}
		final := waitState(t, ts, st.ID, service.StateDone)
		if got := compactResult(t, final.Result); !bytes.Equal(got, wantBytes) {
			t.Errorf("%s job differs from direct call.\njob:    %s\ndirect: %s", c.kind, got, wantBytes)
		}

		// Resubmitting with an irrelevant analysis config canonicalizes to
		// the same key and must be a synchronous cache hit with the bytes.
		st2, code := submit(t, ts, service.JobRequest{
			Dataset: "golden", Kind: c.kind, MinSupport: 3,
			Config: &sigfim.Config{Delta: 500, Seed: 7, Workers: 3, Algorithm: sigfim.AlgoApriori},
		})
		if code != http.StatusOK || !st2.CacheHit {
			t.Fatalf("%s: variant resubmit status %d cacheHit %v, want cache hit", c.kind, code, st2.CacheHit)
		}
		if !bytes.Equal(st2.Result, final.Result) {
			t.Errorf("%s: cached bytes differ from computed bytes", c.kind)
		}
	}
}

func TestRulesJobBitIdenticalAndCanonical(t *testing.T) {
	direct, err := sigfim.OpenFIMI(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	ropts := sigfim.RuleOptions{MinSupport: 3, MinConfidence: 0.5}
	plain, err := direct.Rules(ropts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(service.RulesResult{
		MinSupport: 3, MinConfidence: 0.5, MaxLen: 4,
		NumRules: len(plain), Rules: plain,
	})
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, service.Options{Workers: 1})
	st, code := submit(t, ts, service.JobRequest{
		Dataset: "golden", Kind: service.KindRules, MinSupport: 3, MinConfidence: 0.5,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (err %q)", code, st.Error)
	}
	final := waitState(t, ts, st.ID, service.StateDone)
	if got := compactResult(t, final.Result); !bytes.Equal(got, want) {
		t.Errorf("rules job differs from direct call.\njob:    %s\ndirect: %s", got, want)
	}

	// MaxLen 0 canonicalizes to the library default of 4: spelling the
	// default out must share the cache slot.
	st2, code := submit(t, ts, service.JobRequest{
		Dataset: "golden", Kind: service.KindRules, MinSupport: 3, MinConfidence: 0.5, MaxLen: 4,
	})
	if code != http.StatusOK || !st2.CacheHit {
		t.Fatalf("explicit max_len=4 resubmit: status %d cacheHit %v, want cache hit", code, st2.CacheHit)
	}

	// A positive Beta switches to SignificantRules and is a different key.
	sig, err := direct.SignificantRules(ropts, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	wantSig, err := json.Marshal(service.RulesResult{
		MinSupport: 3, MinConfidence: 0.5, MaxLen: 4, Beta: 0.05,
		NumRules: len(sig), Rules: sig,
	})
	if err != nil {
		t.Fatal(err)
	}
	st3, code := submit(t, ts, service.JobRequest{
		Dataset: "golden", Kind: service.KindRules, MinSupport: 3, MinConfidence: 0.5,
		Config: &sigfim.Config{Beta: 0.05},
	})
	if code != http.StatusAccepted {
		t.Fatalf("significant-rules submit: status %d", code)
	}
	final3 := waitState(t, ts, st3.ID, service.StateDone)
	if got := compactResult(t, final3.Result); !bytes.Equal(got, wantSig) {
		t.Errorf("significant-rules job differs from direct call.\njob:    %s\ndirect: %s", got, wantSig)
	}
}

func TestCorrectionInCacheKey(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Workers: 1})
	base := service.JobRequest{Dataset: "golden", Kind: service.KindSignificant, K: 2}

	// {WithBaseline: true} and {Correction: "by"} canonicalize identically:
	// the second submission must be a cache hit.
	base.Config = &sigfim.Config{Delta: 40, Seed: 3, WithBaseline: true}
	st1, code := submit(t, ts, base)
	if code != http.StatusAccepted {
		t.Fatalf("baseline submit: status %d (err %q)", code, st1.Error)
	}
	first := waitState(t, ts, st1.ID, service.StateDone)

	base.Config = &sigfim.Config{Delta: 40, Seed: 3, Correction: "by"}
	st2, code := submit(t, ts, base)
	if code != http.StatusOK || !st2.CacheHit {
		t.Fatalf("correction=by resubmit: status %d cacheHit %v, want cache hit", code, st2.CacheHit)
	}
	if !bytes.Equal(st2.Result, first.Result) {
		t.Error("correction=by served different bytes than with_baseline=true")
	}

	// A different correction is a different analysis: must miss and produce
	// a report labeled with its correction.
	base.Config = &sigfim.Config{Delta: 40, Seed: 3, Correction: sigfim.CorrectionWestfallYoung}
	st3, code := submit(t, ts, base)
	if code != http.StatusAccepted {
		t.Fatalf("westfall-young submit: status %d, want 202 (miss)", code)
	}
	final := waitState(t, ts, st3.ID, service.StateDone)
	var rep sigfim.Report
	if err := json.Unmarshal(final.Result, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Baseline == nil || rep.Baseline.Correction != sigfim.CorrectionWestfallYoung {
		t.Fatalf("report baseline = %+v, want westfall-young", rep.Baseline)
	}
}

func TestJobValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Workers: 1})
	cases := []struct {
		name string
		req  service.JobRequest
		want []string
	}{
		{
			"unknown kind enumerates valid kinds",
			service.JobRequest{Dataset: "golden", Kind: "frequent", K: 2},
			[]string{"significant", "smin", "closed", "maximal", "rules"},
		},
		{
			"closed with k",
			service.JobRequest{Dataset: "golden", Kind: service.KindClosed, K: 2, MinSupport: 3},
			[]string{"min_support, not k"},
		},
		{
			"closed without min_support",
			service.JobRequest{Dataset: "golden", Kind: service.KindClosed},
			[]string{"min_support must be >= 1"},
		},
		{
			"significant with min_support",
			service.JobRequest{Dataset: "golden", Kind: service.KindSignificant, K: 2, MinSupport: 3},
			[]string{"do not apply"},
		},
		{
			"maximal with min_confidence",
			service.JobRequest{Dataset: "golden", Kind: service.KindMaximal, MinSupport: 3, MinConfidence: 0.5},
			[]string{"apply only to"},
		},
		{
			"unknown correction",
			service.JobRequest{Dataset: "golden", Kind: service.KindSignificant, K: 2,
				Config: &sigfim.Config{Correction: "bh"}},
			[]string{"bonferroni", "holm", "by", "westfall-young"},
		},
	}
	for _, c := range cases {
		body, err := json.Marshal(c.req)
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error string `json:"error"`
		}
		code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body), &e)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, code)
			continue
		}
		for _, frag := range c.want {
			if !strings.Contains(e.Error, frag) {
				t.Errorf("%s: error %q missing %q", c.name, e.Error, frag)
			}
		}
	}
}

// Package service turns the sigfim significance-mining pipeline into a
// long-running HTTP service: a dataset registry of named, immutable,
// content-hashed datasets; an asynchronous job engine running analyses on a
// bounded worker pool with queue backpressure and cooperative cancellation;
// and an LRU result cache that serves repeated queries the exact bytes of
// the original computation. The whole pipeline is deterministic for a fixed
// seed, which is what makes result caching sound and lets the service
// promise bit-identical answers to equivalent direct library calls.
//
// HTTP surface (all bodies JSON unless noted):
//
//	GET    /healthz              liveness probe
//	GET    /metrics              Prometheus text exposition (see Metrics)
//	GET    /v1/stats             jobs run, cache hits, in-flight, uptime
//	GET    /v1/datasets          list registered datasets
//	POST   /v1/datasets?name=N   register a dataset from a FIMI body
//	                             (gzip detected transparently)
//	GET    /v1/datasets/{name}   one dataset's info
//	POST   /v1/partials          mine one Monte Carlo replicate range against
//	                             a dataset addressed by content hash (the
//	                             worker side of the distributed fabric)
//	GET    /v1/jobs              list jobs in submission order (no results)
//	POST   /v1/jobs              submit a job (JobRequest); kinds: significant,
//	                             smin, closed, maximal, rules
//	GET    /v1/jobs/{id}         job status / progress / result
//	GET    /v1/jobs/{id}/events  live job stream (Server-Sent Events)
//	GET    /v1/jobs/{id}/trace   completed job's span tree (see internal/trace)
//	DELETE /v1/jobs/{id}         cancel a queued or running job
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sigfim"
	"sigfim/internal/trace"
)

// Options configures a Server; the zero value selects sensible defaults.
type Options struct {
	// Workers is the job pool size (default 2).
	Workers int
	// QueueCap bounds the number of queued-but-not-running jobs before
	// submissions are refused with 503 (default 64).
	QueueCap int
	// CacheSize bounds the LRU result cache entry count (default 256;
	// negative disables caching).
	CacheSize int
	// JobRetention bounds how many job records (including their result
	// bytes) the engine keeps; the oldest finished jobs beyond it are
	// evicted and their ids answer 404 (default 1024, floored at
	// Workers+QueueCap so live jobs are never evicted).
	JobRetention int
	// MaxUploadBytes bounds POST /v1/datasets request bodies
	// (default 1 GiB).
	MaxUploadBytes int64
	// DisableMetrics leaves GET /metrics unrouted. Instrumentation itself is
	// always on (it is a handful of atomics); this only hides the endpoint.
	DisableMetrics bool
	// RemoteWorkers lists base URLs of sigfimd workers this server shards
	// its jobs' Monte Carlo replicates across (coordinator mode); empty runs
	// every job in-process. Results are bit-identical either way, so the
	// result cache and the job API are unaffected. Every sigfimd instance
	// serves POST /v1/partials and can act as a worker — the flag only
	// controls whether this one fans out. The server supervises the listed
	// workers through one long-lived sigfim.WorkerPool shared by all jobs, so
	// ejections and probe schedules persist between jobs.
	RemoteWorkers []string
	// RemoteTimeout bounds every HTTP round trip to a remote worker — the
	// per-range deadline (0 = the WorkerPool default of 2 minutes).
	RemoteTimeout time.Duration
	// RemoteHedgeDelay, when positive, hedges straggling ranges onto a second
	// worker after the delay; the first valid partial wins.
	RemoteHedgeDelay time.Duration
	// RemoteRangeSize pins the replicates per dispatched range in
	// coordinator mode; 0 autotunes from observed per-worker latency
	// (targeting RemoteRangeTarget of wall time per range) once the pool has
	// seen a successful range, with a static heuristic before that. Range
	// size can never change result bytes.
	RemoteRangeSize int
	// RemoteRangeTarget is the per-range wall time autotuned sizing aims
	// for (0 = 2s).
	RemoteRangeTarget time.Duration
	// TraceRetention bounds how many completed job traces are retained for
	// GET /v1/jobs/{id}/trace (default 128; negative disables tracing).
	// Traces evict LRU independently of job records, so a queryable job may
	// answer 404 for its trace once it ages out of the store.
	TraceRetention int
	// PartialsInflight caps concurrently executing POST /v1/partials requests
	// before the worker sheds load with 503 + Retry-After (0 = max(8,
	// 4*GOMAXPROCS); negative = unlimited). Shedding protects a worker that is
	// also serving its own jobs: the coordinator backs off without ejecting.
	PartialsInflight int
	// Logger receives structured request and lifecycle logs; nil selects
	// slog.Default().
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = 2
	}
	if o.QueueCap == 0 {
		o.QueueCap = 64
	}
	if o.CacheSize == 0 {
		o.CacheSize = 256
	}
	if o.JobRetention == 0 {
		o.JobRetention = 1024
	}
	if o.MaxUploadBytes == 0 {
		o.MaxUploadBytes = 1 << 30
	}
	if o.PartialsInflight == 0 {
		o.PartialsInflight = 8
		if c := 4 * runtime.GOMAXPROCS(0); c > o.PartialsInflight {
			o.PartialsInflight = c
		}
	}
	if o.TraceRetention == 0 {
		o.TraceRetention = 128
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// Server ties the registry, the job engine, and the result cache together
// behind an http.Handler.
type Server struct {
	registry  *Registry
	cache     *ResultCache
	engine    *Engine
	metrics   *Metrics
	log       *slog.Logger
	maxUpload int64
	pool      *sigfim.WorkerPool // nil unless coordinator mode
	startedAt time.Time
	handler   http.Handler

	// partialsInflight counts executing POST /v1/partials requests against
	// partialsCap (<= 0 disables the cap); over the cap the worker sheds load
	// with 503 so remote coordinators cannot starve this instance's own jobs.
	partialsInflight atomic.Int64
	partialsCap      int64
}

// New assembles a Server and starts its worker pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	reg := NewRegistry()
	cache := NewResultCache(opts.CacheSize)
	s := &Server{
		registry:    reg,
		cache:       cache,
		engine:      NewEngine(reg, cache, opts.Workers, opts.QueueCap, opts.JobRetention),
		log:         opts.Logger,
		maxUpload:   opts.MaxUploadBytes,
		partialsCap: int64(opts.PartialsInflight),
		startedAt:   time.Now().UTC(),
	}
	s.metrics = s.engine.Metrics()
	s.engine.log = opts.Logger
	s.engine.traces = trace.NewStore(opts.TraceRetention)
	s.engine.rangeSize = opts.RemoteRangeSize
	s.engine.rangeTarget = opts.RemoteRangeTarget
	if len(opts.RemoteWorkers) > 0 {
		s.pool = sigfim.NewWorkerPool(opts.RemoteWorkers, sigfim.WorkerPoolOptions{Timeout: opts.RemoteTimeout})
		s.engine.pool = s.pool
		s.engine.hedgeDelay = opts.RemoteHedgeDelay
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if !opts.DisableMetrics {
		mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	mux.HandleFunc("POST /v1/datasets", s.handleUploadDataset)
	mux.HandleFunc("GET /v1/datasets/{name}", s.handleGetDataset)
	mux.HandleFunc("POST /v1/partials", s.handleMinePartial)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.handler = s.logged(mux)
	return s
}

// Metrics returns the server's metrics registry (shared with the engine).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Registry exposes the dataset registry for startup registration.
func (s *Server) Registry() *Registry { return s.registry }

// Engine exposes the job engine (tests and stats).
func (s *Server) Engine() *Engine { return s.engine }

// Handler returns the HTTP handler, with request logging attached.
func (s *Server) Handler() http.Handler { return s.handler }

// Pool returns the coordinator's worker supervisor (nil unless coordinator
// mode is configured).
func (s *Server) Pool() *sigfim.WorkerPool { return s.pool }

// Shutdown drains the job engine and releases the worker supervisor; see
// Engine.Shutdown.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.engine.Shutdown(ctx)
	if s.pool != nil {
		s.pool.Close()
	}
	return err
}

// statusRecorder captures the response status for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// Flush forwards to the wrapped writer so streamed responses (the SSE job
// stream) reach the client as they are produced; without this the wrapper
// would hide the underlying http.Flusher and buffer the whole stream until
// the handler returns.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// logged wraps a handler with structured request logging and the HTTP
// response counter. Every log line carries whatever correlation ids the
// request exposes — job_id from the X-Sigfim-Job header (worker side) or
// the /v1/jobs/{id} path (API side), trace_id and the coordinator's parent
// span from X-Sigfim-Trace — so one grep by job_id collects a job's request
// lines across the coordinator and every worker it fanned out to.
func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		s.metrics.observeHTTP(rec.status)
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"bytes", rec.bytes,
			"duration_ms", float64(time.Since(start).Microseconds()) / 1000,
		}
		if jid := requestJobID(r); jid != "" {
			attrs = append(attrs, "job_id", jid)
		}
		if tid, sid, ok := trace.ParseHeader(r.Header.Get(trace.Header)); ok {
			attrs = append(attrs, "trace_id", tid, "parent_span", sid)
		}
		s.log.Info("request", attrs...)
	})
}

// requestJobID extracts the job a request concerns: the X-Sigfim-Job header
// a coordinator stamps on fabric dispatches, or the {id} segment of a
// /v1/jobs/{id}... path. Empty when the request names no job.
func requestJobID(r *http.Request) string {
	if jid := r.Header.Get(trace.JobHeader); jid != "" {
		return jid
	}
	rest, ok := strings.CutPrefix(r.URL.Path, "/v1/jobs/")
	if !ok {
		return ""
	}
	id, _, _ := strings.Cut(rest, "/")
	return id
}

// writeJSON writes a JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

// writeError maps the service error classes onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &tooBig):
		// Checked before ErrBadRequest: an oversized upload surfaces as a
		// read error inside the FIMI parser, but the client needs 413 ("send
		// less"), not 400 ("malformed").
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrConflict):
		status = http.StatusConflict
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShuttingDown):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Stats is the body of GET /v1/stats.
type Stats struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Datasets      int            `json:"datasets"`
	Jobs          EngineCounters `json:"jobs"`
	Cache         CacheStats     `json:"cache"`
	// Fabric is the worker-supervision snapshot; present only on a
	// coordinator (Options.RemoteWorkers configured).
	Fabric *sigfim.FabricStats `json:"fabric,omitempty"`
}

// CacheStats summarizes the result cache for /v1/stats.
type CacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.Counters()
	st := Stats{
		UptimeSeconds: time.Since(s.startedAt).Seconds(),
		Datasets:      s.registry.Len(),
		Jobs:          s.engine.Counters(),
		Cache:         CacheStats{Hits: hits, Misses: misses, Entries: s.cache.Len()},
	}
	if s.pool != nil {
		fs := s.pool.Snapshot()
		st.Fabric = &fs
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"datasets": s.registry.List()})
}

func (s *Server) handleUploadDataset(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, fmt.Errorf("%w: missing ?name= query parameter", ErrBadRequest))
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxUpload)
	info, err := s.registry.RegisterReader(name, body)
	if err != nil {
		writeError(w, err)
		return
	}
	s.log.Info("dataset registered", "name", info.Name, "hash", info.Hash,
		"transactions", info.NumTransactions, "items", info.NumItems, "source", info.Source)
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	_, info, ok := s.registry.Get(name)
	if !ok {
		writeError(w, fmt.Errorf("%w: dataset %q", ErrNotFound, name))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// shedPartial answers a POST /v1/partials with 503 + Retry-After: the
// worker is draining or over its inflight cap, and the coordinator should
// back off (not eject) and retry the range elsewhere in the meantime.
func (s *Server) shedPartial(w http.ResponseWriter, reason string, retryAfter int) {
	s.metrics.partialShed()
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": reason})
}

// handleMinePartial serves POST /v1/partials: the worker side of the
// distributed replicate fabric. The request addresses a dataset by content
// hash and names a replicate range with its per-replicate seeds; the
// response is the mined partial. Execution is synchronous on the request
// goroutine (the coordinator bounds its own fan-out concurrency) and honors
// client disconnects through the request context. A draining or saturated
// worker sheds the request with 503 + Retry-After instead of queueing it.
func (s *Server) handleMinePartial(w http.ResponseWriter, r *http.Request) {
	if s.engine.Draining() {
		s.shedPartial(w, "worker draining", 30)
		return
	}
	if s.partialsCap > 0 {
		if s.partialsInflight.Add(1) > s.partialsCap {
			s.partialsInflight.Add(-1)
			s.shedPartial(w, "partials inflight cap reached", 1)
			return
		}
		defer s.partialsInflight.Add(-1)
	}
	var req sigfim.PartialRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, fmt.Errorf("%w: %w", ErrBadRequest, err))
		return
	}
	if req.DatasetHash == "" {
		writeError(w, fmt.Errorf("%w: missing dataset_hash", ErrBadRequest))
		return
	}
	ds, _, ok := s.registry.GetByHash(req.DatasetHash)
	if !ok {
		writeError(w, fmt.Errorf("%w: no dataset with hash %s", ErrNotFound, req.DatasetHash))
		return
	}
	mineStart := time.Now()
	p, err := ds.MineReplicateRange(r.Context(), req)
	if err != nil {
		if r.Context().Err() != nil {
			return // client gone; nothing useful to write
		}
		writeError(w, fmt.Errorf("%w: %w", ErrBadRequest, err))
		return
	}
	s.metrics.partialServed(int64(req.To - req.From))
	plog := s.log
	if jid := r.Header.Get(trace.JobHeader); jid != "" {
		plog = plog.With("job_id", jid)
	}
	if tid, sid, ok := trace.ParseHeader(r.Header.Get(trace.Header)); ok {
		plog = plog.With("trace_id", tid, "parent_span", sid)
	}
	plog.Info("partial mined",
		"from", req.From, "to", req.To, "floor", req.Floor,
		"duration_ms", float64(time.Since(mineStart).Microseconds())/1000)
	writeJSON(w, http.StatusOK, p)
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.engine.List()})
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		// Wrap, don't flatten: writeError needs the errors.As chain intact to
		// map an oversized body (*http.MaxBytesError) to 413 like the dataset
		// upload path, instead of a misleading 400.
		writeError(w, fmt.Errorf("%w: %w", ErrBadRequest, err))
		return
	}
	st, err := s.engine.Submit(req)
	if err != nil {
		writeError(w, err)
		return
	}
	status := http.StatusAccepted
	if st.State == StateDone { // served synchronously from the result cache
		status = http.StatusOK
	}
	writeJSON(w, status, st)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	st, err := s.engine.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobTrace serves GET /v1/jobs/{id}/trace: the completed job's span
// tree. Traces live in a bounded LRU store separate from job records, so an
// id can answer 404 here (trace evicted, job never traced, or job still
// running) while GET /v1/jobs/{id} still answers 200.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := s.engine.Trace(id)
	if !ok {
		writeError(w, fmt.Errorf("%w: no trace for job %q", ErrNotFound, id))
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	st, err := s.engine.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.Counters()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap := metricsSnapshot{
		uptimeSeconds: time.Since(s.startedAt).Seconds(),
		datasets:      s.registry.Len(),
		jobs:          s.engine.Counters(),
		cacheHits:     hits,
		cacheMisses:   misses,
		cacheEntries:  s.cache.Len(),
	}
	if s.pool != nil {
		fs := s.pool.Snapshot()
		snap.fabric = &fs
	}
	s.metrics.WritePrometheus(w, snap)
}

// handleJobEvents serves GET /v1/jobs/{id}/events: a Server-Sent Events
// stream of one job's lifecycle. The first frame is always an EventState
// frame with the job's current status; afterwards every state transition
// streams as it happens and replicate progress streams as EventProgress
// frames coalesced to at most one per progressInterval. The stream ends
// after the terminal state frame, whose payload matches GET /v1/jobs/{id}
// (for done jobs it carries the result bytes).
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	st, sub, cancel, err := s.engine.Watch(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, fmt.Errorf("connection does not support streaming"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	if !writeEvent(w, flusher, JobEvent{Type: EventState, Status: st}) || st.State.Terminal() {
		return
	}
	progress := time.NewTicker(progressInterval)
	defer progress.Stop()
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-sub.notify:
			// State frames flush immediately; pending progress is left for
			// the ticker (a terminal frame supersedes it anyway).
			for _, ev := range sub.takeStates() {
				if !writeEvent(w, flusher, ev) || ev.Status.State.Terminal() {
					return
				}
			}
		case <-progress.C:
			if ev, ok := sub.takeProgress(); ok {
				if !writeEvent(w, flusher, ev) {
					return
				}
			}
		case <-heartbeat.C:
			// Comment frame: keeps idle connections (and the proxies between)
			// alive without touching the event schema.
			if _, err := io.WriteString(w, ": ping\n\n"); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// writeEvent writes one SSE frame — event name plus the status snapshot as
// compact JSON — and flushes it; it reports whether the client is still
// there.
func writeEvent(w io.Writer, flusher http.Flusher, ev JobEvent) bool {
	data, err := json.Marshal(ev.Status)
	if err != nil {
		return false
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
		return false
	}
	flusher.Flush()
	return true
}

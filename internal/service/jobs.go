package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sigfim"
	"sigfim/internal/mining"
	"sigfim/internal/trace"
)

// Sentinel error classes; the HTTP layer maps them to status codes.
var (
	// ErrBadRequest marks client errors in a request body or parameter (400).
	ErrBadRequest = errors.New("bad request")
	// ErrNotFound marks lookups of unknown datasets or jobs (404).
	ErrNotFound = errors.New("not found")
	// ErrConflict marks attempts to re-register a dataset name with
	// different content (409).
	ErrConflict = errors.New("conflict")
	// ErrQueueFull is the job queue's backpressure signal (503): the client
	// should retry later rather than pile more work onto a saturated pool.
	ErrQueueFull = errors.New("job queue full")
	// ErrShuttingDown rejects submissions during graceful shutdown (503).
	ErrShuttingDown = errors.New("server shutting down")
)

// Job kinds.
const (
	// KindSignificant runs the full methodology (Dataset.SignificantCtx) and
	// stores the complete sigfim.Report.
	KindSignificant = "significant"
	// KindSMin runs Algorithm 1 alone (Dataset.FindSMinCtx) and stores the
	// estimated Poisson threshold.
	KindSMin = "smin"
	// KindClosed mines the closed frequent itemsets at MinSupport
	// (Dataset.ClosedItemsets) and stores an ItemsetsResult.
	KindClosed = "closed"
	// KindMaximal mines the maximal frequent itemsets at MinSupport
	// (Dataset.MaximalItemsets) and stores an ItemsetsResult.
	KindMaximal = "maximal"
	// KindRules mines association rules (Dataset.Rules, or
	// Dataset.SignificantRules when Config.Beta is set) and stores a
	// RulesResult.
	KindRules = "rules"
)

// jobKinds enumerates every accepted kind, in the order error messages and
// documentation list them.
var jobKinds = []string{KindSignificant, KindSMin, KindClosed, KindMaximal, KindRules}

// JobState is the lifecycle state of a job.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final: done, failed, or canceled.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobRequest is the body of POST /v1/jobs.
type JobRequest struct {
	// Dataset names a registered dataset.
	Dataset string `json:"dataset"`
	// Kind is one of the Kind* constants: "significant", "smin", "closed",
	// "maximal", or "rules".
	Kind string `json:"kind"`
	// K is the itemset size under study (significant and smin jobs only;
	// the mining kinds take MinSupport instead and require K to be absent).
	K int `json:"k,omitempty"`
	// MinSupport is the absolute support threshold of closed, maximal, and
	// rules jobs (>= 1); the statistical kinds derive their threshold and
	// require it to be absent.
	MinSupport int `json:"min_support,omitempty"`
	// MinConfidence keeps only rules with at least this confidence (rules
	// jobs; 0 keeps all).
	MinConfidence float64 `json:"min_confidence,omitempty"`
	// MaxLen caps the itemset size rules are generated from (rules jobs;
	// 0 = the library default of 4).
	MaxLen int `json:"max_len,omitempty"`
	// Config carries the full analysis configuration; nil selects the
	// paper's defaults. Field names follow sigfim.Config (Alpha, Beta,
	// Epsilon, Delta, Seed, WithBaseline, Correction, MaxPatterns, SwapNull,
	// SwapProposalsPerOccurrence, SwapProposals, Workers, Algorithm). Rules
	// jobs read only Beta (> 0 switches to SignificantRules at that FDR
	// budget); closed and maximal jobs ignore Config entirely.
	Config *sigfim.Config `json:"config,omitempty"`
}

// Progress reports how far a running job's Monte Carlo stage has advanced.
type Progress struct {
	// Done counts replicates merged so far; Total is the configured Delta.
	// An internal restart (s-tilde halving) resets Done to zero.
	Done  int `json:"done"`
	Total int `json:"total"`
}

// JobStatus is the public view of a job, returned by the submit, get, and
// cancel endpoints.
type JobStatus struct {
	ID          string          `json:"id"`
	State       JobState        `json:"state"`
	Dataset     string          `json:"dataset"`
	DatasetHash string          `json:"dataset_hash"`
	Kind        string          `json:"kind"`
	K           int             `json:"k"`
	CacheHit    bool            `json:"cache_hit"`
	Progress    Progress        `json:"progress"`
	Error       string          `json:"error,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
	CreatedAt   time.Time       `json:"created_at"`
	StartedAt   *time.Time      `json:"started_at,omitempty"`
	FinishedAt  *time.Time      `json:"finished_at,omitempty"`
}

// SMinResult is the stored result payload of a KindSMin job.
type SMinResult struct {
	K    int `json:"k"`
	SMin int `json:"s_min"`
}

// ItemsetsResult is the stored result payload of KindClosed and KindMaximal
// jobs. Itemsets carries exactly the patterns the corresponding library call
// (Dataset.ClosedItemsets or Dataset.MaximalItemsets) returns, in the same
// order, so the job result is bit-identical to a direct call marshaled the
// same way.
type ItemsetsResult struct {
	MinSupport  int              `json:"min_support"`
	NumItemsets int              `json:"num_itemsets"`
	Itemsets    []sigfim.Pattern `json:"itemsets"`
}

// RulesResult is the stored result payload of a KindRules job. Beta echoes
// the FDR budget when the rules were filtered through SignificantRules; zero
// means the unfiltered Dataset.Rules output.
type RulesResult struct {
	MinSupport    int                      `json:"min_support"`
	MinConfidence float64                  `json:"min_confidence"`
	MaxLen        int                      `json:"max_len"`
	Beta          float64                  `json:"beta"`
	NumRules      int                      `json:"num_rules"`
	Rules         []sigfim.AssociationRule `json:"rules"`
}

// job is the engine's mutable job record. Mutable fields are guarded by the
// engine mutex except the progress counters, which the pipeline's merge
// goroutine updates through atomics.
type job struct {
	id       string
	req      JobRequest
	ds       *sigfim.Dataset
	dsHash   string
	cacheKey string

	state      JobState
	cacheHit   bool
	result     []byte
	errMsg     string
	createdAt  time.Time
	startedAt  time.Time
	finishedAt time.Time
	cancel     context.CancelFunc

	progressDone  atomic.Int64
	progressTotal atomic.Int64
}

// EngineCounters are the lifetime job counters exposed by /v1/stats.
type EngineCounters struct {
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	CacheHits int64 `json:"cache_hits"`
	InFlight  int64 `json:"in_flight"`
	Queued    int64 `json:"queued"`
}

// Engine runs jobs on a bounded worker pool with a bounded queue. Submit
// applies backpressure (ErrQueueFull) instead of queueing without bound, so
// a saturated service degrades by refusing work, never by exhausting memory.
// Finished job records (which hold their result bytes) are likewise bounded:
// once more than retention jobs are tracked, the oldest terminal records are
// evicted and their ids answer 404 — the result cache, not the job table, is
// the long-term result store.
type Engine struct {
	registry  *Registry
	cache     *ResultCache
	queue     chan *job
	retention int
	metrics   *Metrics
	events    *eventBus

	// pool, when non-nil, makes every computed job shard its Monte Carlo
	// replicates across the supervised sigfimd workers (coordinator mode).
	// One pool is shared by all jobs so worker-health state — ejections,
	// probe backoff, per-worker statistics — persists between jobs. Set once
	// before the first submission; results are bit-identical to local
	// execution, so the field is deliberately absent from cache keys and
	// request canonicalization. hedgeDelay enables hedged re-dispatch of
	// straggling ranges when positive.
	pool       *sigfim.WorkerPool
	hedgeDelay time.Duration
	// rangeSize and rangeTarget configure replicate-range sizing in
	// coordinator mode: rangeSize 0 autotunes from the pool's observed
	// per-worker latency, aiming at rangeTarget of wall time per range.
	// Like pool, they are deployment concerns, set once before the first
	// submission and absent from cache keys.
	rangeSize   int
	rangeTarget time.Duration

	// traces retains the last N completed job traces (nil disables
	// tracing); log, when non-nil, carries job lifecycle lines tagged with
	// job_id and trace_id. Both are set by the server before any submission.
	traces *trace.Store
	log    *slog.Logger

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // submission order, for listing
	nextID int
	closed bool

	wg sync.WaitGroup // running workers

	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	cacheHits atomic.Int64
	inFlight  atomic.Int64
	queued    atomic.Int64
}

// NewEngine starts an engine with the given worker pool size (minimum 1),
// queue capacity (minimum 1), and finished-job retention bound (minimum the
// queue capacity plus the pool size, so live jobs are never evicted).
func NewEngine(registry *Registry, cache *ResultCache, workers, queueCap, retention int) *Engine {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	if retention < workers+queueCap {
		retention = workers + queueCap
	}
	e := &Engine{
		registry:  registry,
		cache:     cache,
		queue:     make(chan *job, queueCap),
		retention: retention,
		metrics:   NewMetrics(),
		events:    newEventBus(),
		jobs:      make(map[string]*job),
	}
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

// Metrics returns the engine's metrics registry.
func (e *Engine) Metrics() *Metrics { return e.metrics }

// Draining reports whether Shutdown has begun: the worker side of the fabric
// uses it to shed new partial requests with 503 instead of starting work the
// drain would abandon.
func (e *Engine) Draining() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// validate checks a request before it is admitted, so queued jobs can only
// fail for runtime reasons, never for malformed parameters.
func (e *Engine) validate(req JobRequest) error {
	switch req.Kind {
	case KindSignificant, KindSMin, KindClosed, KindMaximal, KindRules:
	default:
		return fmt.Errorf("%w: unknown job kind %q (valid kinds: %s)",
			ErrBadRequest, req.Kind, strings.Join(jobKinds, ", "))
	}
	statistical := req.Kind == KindSignificant || req.Kind == KindSMin
	if statistical {
		if req.K < 1 {
			return fmt.Errorf("%w: k must be >= 1, got %d", ErrBadRequest, req.K)
		}
		if req.MinSupport != 0 || req.MinConfidence != 0 || req.MaxLen != 0 {
			return fmt.Errorf("%w: min_support, min_confidence, and max_len do not apply to %q jobs (the methodology derives its own threshold)", ErrBadRequest, req.Kind)
		}
	} else {
		if req.K != 0 {
			return fmt.Errorf("%w: %q jobs take min_support, not k", ErrBadRequest, req.Kind)
		}
		if req.MinSupport < 1 {
			return fmt.Errorf("%w: min_support must be >= 1, got %d", ErrBadRequest, req.MinSupport)
		}
		if req.Kind != KindRules && (req.MinConfidence != 0 || req.MaxLen != 0) {
			return fmt.Errorf("%w: min_confidence and max_len apply only to %q jobs", ErrBadRequest, KindRules)
		}
		if req.MinConfidence < 0 || req.MinConfidence > 1 {
			return fmt.Errorf("%w: min_confidence must be in [0, 1], got %v", ErrBadRequest, req.MinConfidence)
		}
		if req.MaxLen < 0 {
			return fmt.Errorf("%w: max_len must be >= 0, got %d", ErrBadRequest, req.MaxLen)
		}
	}
	if c := req.Config; c != nil {
		if _, err := mining.ParseAlgorithm(c.Algorithm); err != nil {
			return fmt.Errorf("%w: unknown algorithm %q", ErrBadRequest, c.Algorithm)
		}
		if c.Delta < 0 || c.MaxPatterns < 0 || c.Workers < 0 {
			return fmt.Errorf("%w: delta, max patterns, and workers must be >= 0", ErrBadRequest)
		}
		if c.SwapProposalsPerOccurrence < 0 || c.SwapProposals < 0 {
			return fmt.Errorf("%w: swap chain lengths must be >= 0", ErrBadRequest)
		}
		if c.Alpha < 0 || c.Alpha >= 1 || c.Beta < 0 || c.Beta >= 1 || c.Epsilon < 0 || c.Epsilon >= 1 {
			return fmt.Errorf("%w: alpha, beta, and epsilon must be in [0, 1) (0 = default)", ErrBadRequest)
		}
		if _, err := sigfim.ParseCorrection(c.Correction); err != nil {
			return fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		if req.Kind == KindSMin && c.SwapNull {
			// FindSMin always runs the independence null; silently returning
			// an independence-model threshold for a swap-null request would
			// be a wrong answer, so refuse instead.
			return fmt.Errorf("%w: SwapNull is not supported for %q jobs (FindSMin uses the independence null)", ErrBadRequest, KindSMin)
		}
	}
	return nil
}

// canonicalRequest is the cache-key normal form of a job request: defaults
// are filled in exactly as the pipeline fills them, fields a kind ignores
// are zeroed, and performance-only knobs (Workers) are dropped entirely —
// the engine guarantees bit-identical results for every worker count, so two
// requests differing only in Workers share one cache slot. Algorithm stays
// in the key: every algorithm mines identical itemsets, but float-valued
// report fields (lambda estimates, p-values) can differ in their last bits
// across algorithms, and the cache contract is bit-identity.
//
// The null model canonicalizes to three fields. NullModel is "independence"
// or "swap" (smin jobs are always "independence": they reject SwapNull at
// validation). Under the swap null, SwapPPO carries the per-occurrence
// burn-in with the pipeline's default of 8 filled in, and SwapProposals the
// absolute override; whichever of the two the pipeline would ignore is
// zeroed, so a request that spells out a default (or sets a knob its own
// configuration makes irrelevant) still shares the cache slot of the run it
// is guaranteed to reproduce.
//
// Correction follows the same logic: it is the normalized correction name
// when the baseline actually runs and empty otherwise, and WithBaseline is
// the effective flag (an explicit Correction implies the baseline), so
// {WithBaseline: true} and {Correction: "by"} share one slot. The mining
// kinds (closed, maximal, rules) zero the whole statistical block including
// Algorithm — their library calls take no algorithm knob — and carry only
// the fields that parameterize them; rules jobs keep Beta with its zero
// meaning "unfiltered", unlike significant jobs where zero means 0.05.
type canonicalRequest struct {
	Kind          string  `json:"kind"`
	K             int     `json:"k"`
	MinSupport    int     `json:"min_support"`
	MinConfidence float64 `json:"min_confidence"`
	MaxLen        int     `json:"max_len"`
	Alpha         float64 `json:"alpha"`
	Beta          float64 `json:"beta"`
	Epsilon       float64 `json:"epsilon"`
	Delta         int     `json:"delta"`
	Seed          uint64  `json:"seed"`
	WithBaseline  bool    `json:"with_baseline"`
	Correction    string  `json:"correction"`
	MaxPatterns   int     `json:"max_patterns"`
	NullModel     string  `json:"null_model"`
	SwapPPO       int     `json:"swap_ppo"`
	SwapProposals int     `json:"swap_proposals"`
	Algorithm     string  `json:"algorithm"`
}

// Canonical null-model names.
const (
	nullIndependence = "independence"
	nullSwap         = "swap"
)

// canonicalize builds the canonical form of a validated request.
func canonicalize(req JobRequest) canonicalRequest {
	cfg := sigfim.Config{}
	if req.Config != nil {
		cfg = *req.Config
	}
	c := canonicalRequest{Kind: req.Kind}

	// The mining kinds depend only on their own parameters: every miner
	// emits the identical pattern set, the dataset carries no randomness,
	// and no analysis config is read (rules jobs read Beta alone). The
	// whole statistical block — including Algorithm — stays zero, so
	// requests differing only in irrelevant config share one cache slot.
	switch req.Kind {
	case KindClosed, KindMaximal:
		c.MinSupport = req.MinSupport
		return c
	case KindRules:
		c.MinSupport = req.MinSupport
		c.MinConfidence = req.MinConfidence
		c.MaxLen = req.MaxLen
		if c.MaxLen == 0 {
			c.MaxLen = 4
		}
		// Beta keeps its raw zero semantic here: zero means unfiltered
		// Rules, any positive value means SignificantRules at that budget.
		c.Beta = cfg.Beta
		return c
	}

	c.K = req.K
	c.Epsilon = cfg.Epsilon
	c.Delta = cfg.Delta
	c.Seed = cfg.Seed
	c.NullModel = nullIndependence
	c.Algorithm = cfg.Algorithm
	if c.Epsilon == 0 {
		c.Epsilon = 0.01
	}
	if c.Delta == 0 {
		c.Delta = 1000
	}
	if c.Algorithm == "" {
		c.Algorithm = sigfim.AlgoAuto
	}
	if req.Kind == KindSignificant {
		c.Alpha = cfg.Alpha
		c.Beta = cfg.Beta
		c.MaxPatterns = cfg.MaxPatterns
		if c.Alpha == 0 {
			c.Alpha = 0.05
		}
		if c.Beta == 0 {
			c.Beta = 0.05
		}
		if c.MaxPatterns == 0 {
			c.MaxPatterns = 100000
		}
		// An explicit Correction implies the baseline (mirroring
		// sigfim.Config), and the correction name only matters when the
		// baseline runs.
		c.WithBaseline = cfg.WithBaseline || cfg.Correction != ""
		if c.WithBaseline {
			c.Correction, _ = sigfim.ParseCorrection(cfg.Correction) // validated at admission
		}
		if cfg.SwapNull {
			c.NullModel = nullSwap
			if cfg.SwapProposals > 0 {
				// An absolute chain length overrides the per-occurrence
				// knob, so the latter cannot influence the result.
				c.SwapProposals = cfg.SwapProposals
			} else {
				c.SwapPPO = cfg.SwapProposalsPerOccurrence
				if c.SwapPPO == 0 {
					c.SwapPPO = 8
				}
			}
		}
	}
	return c
}

// cacheKeyFor composes the full cache key: dataset identity plus the
// canonical request.
func cacheKeyFor(dsHash string, c canonicalRequest) string {
	b, err := json.Marshal(c)
	if err != nil {
		// canonicalRequest contains only scalars; Marshal cannot fail.
		panic(fmt.Sprintf("service: canonical request marshal: %v", err))
	}
	return dsHash + "|" + string(b)
}

// Submit validates and enqueues a job. A result-cache hit completes the job
// synchronously (the returned status is already StateDone and carries the
// cached bytes); otherwise the job is queued, or ErrQueueFull is returned
// when the queue is at capacity.
func (e *Engine) Submit(req JobRequest) (JobStatus, error) {
	if err := e.validate(req); err != nil {
		return JobStatus{}, err
	}
	ds, info, ok := e.registry.Get(req.Dataset)
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: dataset %q is not registered", ErrNotFound, req.Dataset)
	}
	canon := canonicalize(req)
	key := cacheKeyFor(info.Hash, canon)

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return JobStatus{}, ErrShuttingDown
	}
	e.nextID++
	j := &job{
		id:        fmt.Sprintf("j%06d", e.nextID),
		req:       req,
		ds:        ds,
		dsHash:    info.Hash,
		cacheKey:  key,
		createdAt: time.Now().UTC(),
	}
	e.submitted.Add(1)

	if cached, ok := e.cache.Get(key); ok {
		j.state = StateDone
		j.cacheHit = true
		j.result = cached
		j.finishedAt = j.createdAt
		// A cache hit is a completed run: report the same terminal progress a
		// computed job ends with (all Delta replicates merged), so watchers
		// and dashboards never see a done job stuck at 0/0.
		j.progressDone.Store(int64(canon.Delta))
		j.progressTotal.Store(int64(canon.Delta))
		e.cacheHits.Add(1)
		e.completed.Add(1)
		e.metrics.jobFinished(j.req.Kind, StateDone, 0, false)
		// A cache hit still gets a (one-span) trace so `jobs trace` works
		// uniformly on any completed job.
		rec := trace.NewRecorder(j.id)
		rec.AddRoot("job", j.createdAt, 0,
			trace.String("kind", j.req.Kind), trace.String("dataset", j.req.Dataset),
			trace.String("dataset_hash", j.dsHash), trace.Int("k", j.req.K),
			trace.String("state", string(StateDone)), trace.String("cache", "hit"))
		e.traces.Put(j.id, rec.Snapshot())
		e.jobs[j.id] = j
		e.order = append(e.order, j.id)
		e.evictLocked()
		return e.statusLocked(j, true), nil
	}

	select {
	case e.queue <- j:
	default:
		e.submitted.Add(-1)
		return JobStatus{}, ErrQueueFull
	}
	j.state = StateQueued
	e.queued.Add(1)
	e.jobs[j.id] = j
	e.order = append(e.order, j.id)
	e.evictLocked()
	// No event is published here: the id was allocated under the lock just
	// now, so no watcher can be subscribed yet — the SSE handler's initial
	// snapshot is what covers the queued state.
	return e.statusLocked(j, true), nil
}

// evictLocked drops the oldest terminal job records until at most retention
// jobs are tracked, so a long-running service's job table stays bounded.
// Queued and running jobs are never evicted (the retention floor guarantees
// enough headroom for all of them). Callers hold e.mu.
func (e *Engine) evictLocked() {
	for len(e.order) > e.retention {
		evicted := false
		for i, id := range e.order {
			switch e.jobs[id].state {
			case StateDone, StateFailed, StateCanceled:
				delete(e.jobs, id)
				e.order = append(e.order[:i], e.order[i+1:]...)
				evicted = true
			}
			if evicted {
				break
			}
		}
		if !evicted {
			return // every tracked job is still live
		}
	}
}

// worker executes queued jobs until the queue is closed.
func (e *Engine) worker() {
	defer e.wg.Done()
	for j := range e.queue {
		e.run(j)
	}
}

// run executes one job end to end. Cancellation propagates through the
// job's context into the Monte Carlo replicate loop; a canceled job ends in
// StateCanceled with no result, and — because the pipeline either returns a
// complete result or an error, never a partial — cancellation cannot corrupt
// the cache, the registry, or any other job.
func (e *Engine) run(j *job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	e.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		e.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.startedAt = time.Now().UTC()
	j.cancel = cancel
	running := e.statusLocked(j, false)
	e.mu.Unlock()
	e.queued.Add(-1)
	e.inFlight.Add(1)
	defer e.inFlight.Add(-1)
	e.events.publish(j.id, JobEvent{Type: EventState, Status: running})

	// Every computed job records a trace: the recorder rides the context
	// through the public API into the Monte Carlo phases and the range
	// fabric, and the completed span set is retained in the trace store.
	// Tracing is pure observation — result bytes are identical with it on
	// or off — so there is no per-job opt-in.
	rec := trace.NewRecorder(j.id)
	ctx = trace.NewContext(ctx, rec)
	ctx, root := trace.Start(ctx, "job",
		trace.String("kind", j.req.Kind), trace.String("dataset", j.req.Dataset),
		trace.String("dataset_hash", j.dsHash), trace.Int("k", j.req.K))
	trace.Add(ctx, "queued", j.createdAt, j.startedAt.Sub(j.createdAt))
	jlog := e.log
	if jlog != nil {
		jlog = jlog.With("job_id", j.id, "trace_id", rec.TraceID())
		jlog.Info("job running", "kind", j.req.Kind, "dataset", j.req.Dataset, "k", j.req.K)
	}

	var cfg sigfim.Config
	if j.req.Config != nil {
		cfg = *j.req.Config // copy: the engine attaches its own Progress
	}
	// Coordinator mode: shard the replicates across the supervised worker
	// pool. RemotePool is json:"-", so a job request can never inject its own
	// workers — this assignment is the only source.
	cfg.RemotePool = e.pool
	cfg.RemoteHedgeDelay = e.hedgeDelay
	cfg.RemoteRangeSize = e.rangeSize
	cfg.RemoteRangeTarget = e.rangeTarget
	cfg.Progress = func(done, total int) {
		d := int64(done)
		prev := j.progressDone.Swap(d)
		j.progressTotal.Store(int64(total))
		// Replicate throughput: count the merges since the last callback. An
		// internal restart (s-tilde halving) resets done below prev; the new
		// pass's first callback then contributes its own count.
		if delta := d - prev; delta > 0 {
			e.metrics.addReplicates(delta)
		} else if d > 0 {
			e.metrics.addReplicates(d)
		}
		e.publishProgress(j)
	}

	var payload any
	var err error
	switch j.req.Kind {
	case KindSignificant:
		payload, err = j.ds.SignificantCtx(ctx, j.req.K, &cfg)
	case KindSMin:
		var s int
		s, err = j.ds.FindSMinCtx(ctx, j.req.K, &cfg)
		payload = SMinResult{K: j.req.K, SMin: s}
	case KindClosed:
		ps := j.ds.ClosedItemsets(j.req.MinSupport)
		payload = ItemsetsResult{MinSupport: j.req.MinSupport, NumItemsets: len(ps), Itemsets: ps}
	case KindMaximal:
		ps := j.ds.MaximalItemsets(j.req.MinSupport)
		payload = ItemsetsResult{MinSupport: j.req.MinSupport, NumItemsets: len(ps), Itemsets: ps}
	case KindRules:
		ropts := sigfim.RuleOptions{
			MinSupport:    j.req.MinSupport,
			MinConfidence: j.req.MinConfidence,
			MaxLen:        j.req.MaxLen,
		}
		var rs []sigfim.AssociationRule
		if cfg.Beta > 0 {
			rs, err = j.ds.SignificantRules(ropts, cfg.Beta)
		} else {
			rs, err = j.ds.Rules(ropts)
		}
		maxLen := j.req.MaxLen
		if maxLen == 0 {
			maxLen = 4
		}
		payload = RulesResult{
			MinSupport:    j.req.MinSupport,
			MinConfidence: j.req.MinConfidence,
			MaxLen:        maxLen,
			Beta:          cfg.Beta,
			NumRules:      len(rs),
			Rules:         rs,
		}
	default: // unreachable: Submit validated the kind
		err = fmt.Errorf("unknown kind %q", j.req.Kind)
	}

	var result []byte
	if err == nil {
		result, err = json.Marshal(payload)
	}

	e.mu.Lock()
	j.finishedAt = time.Now().UTC()
	j.cancel = nil
	switch {
	case err == nil:
		// Publish to the cache only after the computation fully succeeded;
		// identical future submissions are then served these exact bytes.
		e.cache.Put(j.cacheKey, result)
		j.state = StateDone
		j.result = result
		e.completed.Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateCanceled
		j.errMsg = "canceled"
		e.canceled.Add(1)
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		e.failed.Add(1)
	}
	final := e.statusLocked(j, true)
	e.mu.Unlock()
	root.End(trace.String("state", string(final.State)))
	e.traces.Put(j.id, rec.Snapshot())
	if jlog != nil {
		jlog.Info("job finished", "state", final.State,
			"duration_ms", j.finishedAt.Sub(j.startedAt).Milliseconds())
	}
	e.metrics.jobFinished(j.req.Kind, final.State, j.finishedAt.Sub(j.startedAt), true)
	e.events.publish(j.id, JobEvent{Type: EventState, Status: final})
}

// Trace returns the retained trace of a completed job. The trace store is
// bounded independently of job-record retention, so a job may still be
// queryable after its trace was evicted (and a trace may outlive its job
// record).
func (e *Engine) Trace(id string) (*trace.Trace, bool) {
	return e.traces.Get(id)
}

// publishProgress emits a coalescable progress frame for a running job. It
// is called from the pipeline's merge goroutine once per replicate, so the
// no-subscriber fast path matters; the fields read here are either atomics
// or were written before the pipeline started.
func (e *Engine) publishProgress(j *job) {
	if !e.events.hasSubscribers(j.id) {
		return
	}
	started := j.startedAt
	e.events.publish(j.id, JobEvent{Type: EventProgress, Status: JobStatus{
		ID:          j.id,
		State:       StateRunning,
		Dataset:     j.req.Dataset,
		DatasetHash: j.dsHash,
		Kind:        j.req.Kind,
		K:           j.req.K,
		Progress: Progress{
			Done:  int(j.progressDone.Load()),
			Total: int(j.progressTotal.Load()),
		},
		CreatedAt: j.createdAt,
		StartedAt: &started,
	}})
}

// Get returns the status of a job.
func (e *Engine) Get(id string) (JobStatus, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	return e.statusLocked(j, true), nil
}

// Watch subscribes to a job's event stream, returning the job's current
// status (the stream's mandatory first frame) together with the
// subscription and its cancel function. Subscribing happens before the
// status read, so no transition can fall between the snapshot and the
// stream.
func (e *Engine) Watch(id string) (JobStatus, *subscription, func(), error) {
	sub := e.events.subscribe(id)
	st, err := e.Get(id)
	if err != nil {
		e.events.unsubscribe(id, sub)
		return JobStatus{}, nil, nil, err
	}
	return st, sub, func() { e.events.unsubscribe(id, sub) }, nil
}

// Cancel requests cancellation of a job. Queued jobs are canceled
// immediately; running jobs are canceled cooperatively at the next replicate
// boundary of their Monte Carlo loop. Canceling a finished job is a no-op
// that returns its final status.
func (e *Engine) Cancel(id string) (JobStatus, error) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	if !ok {
		e.mu.Unlock()
		return JobStatus{}, fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	canceledNow := false
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.errMsg = "canceled before start"
		j.finishedAt = time.Now().UTC()
		e.queued.Add(-1)
		e.canceled.Add(1)
		canceledNow = true
	case StateRunning:
		if j.cancel != nil {
			j.cancel() // state transition happens in run when the pipeline unwinds
		}
	}
	st := e.statusLocked(j, true)
	e.mu.Unlock()
	if canceledNow {
		e.metrics.jobFinished(j.req.Kind, StateCanceled, 0, false)
		e.events.publish(j.id, JobEvent{Type: EventState, Status: st})
	}
	return st, nil
}

// List returns the status of every job in submission order. Listings omit
// the jobs' result bytes: with retention at its default of 1024 done jobs,
// embedding every stored Result would make the listing payload unbounded in
// practice — results are served by Get (one job) and by the result cache.
func (e *Engine) List() []JobStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]JobStatus, 0, len(e.order))
	for _, id := range e.order {
		out = append(out, e.statusLocked(e.jobs[id], false))
	}
	return out
}

// Counters snapshots the lifetime job counters.
func (e *Engine) Counters() EngineCounters {
	return EngineCounters{
		Submitted: e.submitted.Load(),
		Completed: e.completed.Load(),
		Failed:    e.failed.Load(),
		Canceled:  e.canceled.Load(),
		CacheHits: e.cacheHits.Load(),
		InFlight:  e.inFlight.Load(),
		Queued:    e.queued.Load(),
	}
}

// statusLocked builds the public view of a job; callers hold e.mu. The
// result bytes are attached only when includeResult is set (and the job is
// done): single-job reads and terminal event frames carry the result, while
// listings stay bounded by omitting it.
func (e *Engine) statusLocked(j *job, includeResult bool) JobStatus {
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Dataset:     j.req.Dataset,
		DatasetHash: j.dsHash,
		Kind:        j.req.Kind,
		K:           j.req.K,
		CacheHit:    j.cacheHit,
		Progress: Progress{
			Done:  int(j.progressDone.Load()),
			Total: int(j.progressTotal.Load()),
		},
		Error:     j.errMsg,
		CreatedAt: j.createdAt,
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		st.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		st.FinishedAt = &t
	}
	if j.state == StateDone && includeResult {
		st.Result = j.result
	}
	return st
}

// Shutdown drains the engine gracefully: no new submissions are accepted,
// still-queued jobs are canceled, and running jobs are given until the
// context expires to finish. If the context expires first, running jobs are
// canceled cooperatively and Shutdown waits for them to unwind (prompt: the
// pipeline aborts at the next replicate boundary) before returning the
// context's error.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()

	// Drain still-queued jobs: they are canceled, not run. Workers may race
	// us for them; whoever wins, run's state check keeps it consistent.
drain:
	for {
		select {
		case j := <-e.queue:
			e.mu.Lock()
			drained := false
			var st JobStatus
			if j.state == StateQueued {
				j.state = StateCanceled
				j.errMsg = "canceled: server shutting down"
				j.finishedAt = time.Now().UTC()
				e.queued.Add(-1)
				e.canceled.Add(1)
				st = e.statusLocked(j, true)
				drained = true
			}
			e.mu.Unlock()
			if drained {
				e.metrics.jobFinished(j.req.Kind, StateCanceled, 0, false)
				e.events.publish(j.id, JobEvent{Type: EventState, Status: st})
			}
		default:
			break drain
		}
	}
	close(e.queue)

	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		e.mu.Lock()
		for _, j := range e.jobs {
			if j.state == StateRunning && j.cancel != nil {
				j.cancel()
			}
		}
		e.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

package service

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sigfim"
)

// durationBuckets are the upper bounds, in seconds, of the fixed-bucket
// job-duration histograms. They span the service's real spread: a tiny-Delta
// smin probe finishes in milliseconds while a full significant analysis of a
// large dataset runs for minutes. Fixed buckets keep observation allocation-
// free and make renders trivially mergeable across processes.
var durationBuckets = []float64{
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// histogram is a fixed-bucket latency histogram safe for concurrent
// observation. Buckets hold per-bucket (non-cumulative) counts; the render
// accumulates them into Prometheus's cumulative le-bucket form.
type histogram struct {
	counts   []atomic.Int64 // len(durationBuckets)+1; the last is +Inf
	sumNanos atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(durationBuckets)+1)}
}

func (h *histogram) observe(d time.Duration) {
	// SearchFloat64s returns the first bucket whose upper bound is >= the
	// observation, which is exactly Prometheus's le semantics; a value above
	// every bound lands in the trailing +Inf bucket.
	i := sort.SearchFloat64s(durationBuckets, d.Seconds())
	h.counts[i].Add(1)
	h.sumNanos.Add(int64(d))
}

// kindMetrics are the per-job-kind counters and the latency histogram.
type kindMetrics struct {
	done     atomic.Int64
	failed   atomic.Int64
	canceled atomic.Int64
	duration *histogram // computed (non-cache-hit) jobs that ended done
}

// Metrics is the service's dependency-free metrics registry: atomic counters
// and gauges plus fixed-bucket latency histograms per job kind, rendered in
// the Prometheus text exposition format by WritePrometheus. The engine owns
// one (Engine.Metrics) and instruments it from Submit, run, and the
// replicate-progress hook; values that already live elsewhere as atomics
// (queue depth, in-flight, cache hits) are snapshotted at render time rather
// than double-counted. Instrumentation never touches result bytes, so the
// service's bit-identity contracts are unaffected.
type Metrics struct {
	replicates atomic.Int64    // Monte Carlo replicates merged, all jobs
	httpByCode [6]atomic.Int64 // responses by status class; index = code/100

	partialsServed    atomic.Int64 // replicate ranges mined for remote coordinators
	partialReplicates atomic.Int64 // replicates inside those ranges
	partialsShed      atomic.Int64 // partial requests shed with 503 (draining / over cap)

	mu    sync.RWMutex
	kinds map[string]*kindMetrics
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{kinds: make(map[string]*kindMetrics)}
}

// kind returns the per-kind slot, creating it on first use.
func (m *Metrics) kind(kind string) *kindMetrics {
	m.mu.RLock()
	km := m.kinds[kind]
	m.mu.RUnlock()
	if km != nil {
		return km
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if km = m.kinds[kind]; km == nil {
		km = &kindMetrics{duration: newHistogram()}
		m.kinds[kind] = km
	}
	return km
}

// jobFinished records one terminal job. The latency histogram observes only
// computed jobs that ended done: cache hits are synchronous (their ~0s would
// drown the real latency signal) and canceled/failed runs measure when the
// job was interrupted, not how long the work takes.
func (m *Metrics) jobFinished(kind string, state JobState, d time.Duration, computed bool) {
	km := m.kind(kind)
	switch state {
	case StateDone:
		km.done.Add(1)
		if computed {
			km.duration.observe(d)
		}
	case StateFailed:
		km.failed.Add(1)
	case StateCanceled:
		km.canceled.Add(1)
	}
}

// addReplicates advances the replicate-throughput counter.
func (m *Metrics) addReplicates(n int64) {
	if n > 0 {
		m.replicates.Add(n)
	}
}

// partialServed records one replicate range mined for a remote coordinator
// (the worker side of the distributed fabric) and the replicates it covered.
func (m *Metrics) partialServed(replicates int64) {
	m.partialsServed.Add(1)
	if replicates > 0 {
		m.partialReplicates.Add(replicates)
	}
}

// partialShed records one partial request refused with 503 + Retry-After
// because the worker is draining or over its inflight cap.
func (m *Metrics) partialShed() {
	m.partialsShed.Add(1)
}

// observeHTTP counts one finished HTTP response by status class.
func (m *Metrics) observeHTTP(status int) {
	if c := status / 100; c >= 1 && c < len(m.httpByCode) {
		m.httpByCode[c].Add(1)
	}
}

// metricsSnapshot carries the point-in-time values that live outside the
// registry — engine counters, cache counters, registry size, uptime — so the
// render is one consistent pass.
type metricsSnapshot struct {
	uptimeSeconds          float64
	datasets               int
	jobs                   EngineCounters
	cacheHits, cacheMisses uint64
	cacheEntries           int
	// fabric is the coordinator's worker-supervision snapshot; nil on a
	// non-coordinator, which omits the fabric families entirely.
	fabric *sigfim.FabricStats
}

// fnum renders a float the way Prometheus expects: shortest exact form.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders every metric family in the Prometheus text
// exposition format (version 0.0.4). Families and label sets are emitted in
// a deterministic order so scrapes diff cleanly.
func (m *Metrics) WritePrometheus(w io.Writer, snap metricsSnapshot) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("# HELP sigfimd_uptime_seconds Seconds since the server started.\n")
	p("# TYPE sigfimd_uptime_seconds gauge\n")
	p("sigfimd_uptime_seconds %s\n", fnum(snap.uptimeSeconds))

	p("# HELP sigfimd_datasets Registered datasets.\n")
	p("# TYPE sigfimd_datasets gauge\n")
	p("sigfimd_datasets %d\n", snap.datasets)

	p("# HELP sigfimd_jobs_submitted_total Jobs accepted by the engine (cache hits included, rejected submissions excluded).\n")
	p("# TYPE sigfimd_jobs_submitted_total counter\n")
	p("sigfimd_jobs_submitted_total %d\n", snap.jobs.Submitted)

	p("# HELP sigfimd_jobs_queued Jobs waiting in the bounded queue (queue depth).\n")
	p("# TYPE sigfimd_jobs_queued gauge\n")
	p("sigfimd_jobs_queued %d\n", snap.jobs.Queued)

	p("# HELP sigfimd_jobs_in_flight Jobs currently executing on the worker pool.\n")
	p("# TYPE sigfimd_jobs_in_flight gauge\n")
	p("sigfimd_jobs_in_flight %d\n", snap.jobs.InFlight)

	m.mu.RLock()
	kinds := make([]string, 0, len(m.kinds))
	for k := range m.kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	byKind := make([]*kindMetrics, len(kinds))
	for i, k := range kinds {
		byKind[i] = m.kinds[k]
	}
	m.mu.RUnlock()

	p("# HELP sigfimd_jobs_finished_total Jobs by kind and terminal state (done includes cache hits).\n")
	p("# TYPE sigfimd_jobs_finished_total counter\n")
	for i, k := range kinds {
		km := byKind[i]
		p("sigfimd_jobs_finished_total{kind=%q,state=\"done\"} %d\n", k, km.done.Load())
		p("sigfimd_jobs_finished_total{kind=%q,state=\"failed\"} %d\n", k, km.failed.Load())
		p("sigfimd_jobs_finished_total{kind=%q,state=\"canceled\"} %d\n", k, km.canceled.Load())
	}

	p("# HELP sigfimd_cache_hits_total Result cache hits.\n")
	p("# TYPE sigfimd_cache_hits_total counter\n")
	p("sigfimd_cache_hits_total %d\n", snap.cacheHits)

	p("# HELP sigfimd_cache_misses_total Result cache misses.\n")
	p("# TYPE sigfimd_cache_misses_total counter\n")
	p("sigfimd_cache_misses_total %d\n", snap.cacheMisses)

	p("# HELP sigfimd_cache_entries Results currently cached.\n")
	p("# TYPE sigfimd_cache_entries gauge\n")
	p("sigfimd_cache_entries %d\n", snap.cacheEntries)

	p("# HELP sigfimd_replicates_total Monte Carlo replicates merged across all jobs (replicate throughput).\n")
	p("# TYPE sigfimd_replicates_total counter\n")
	p("sigfimd_replicates_total %d\n", m.replicates.Load())

	p("# HELP sigfimd_partials_served_total Replicate ranges mined for remote coordinators (POST /v1/partials).\n")
	p("# TYPE sigfimd_partials_served_total counter\n")
	p("sigfimd_partials_served_total %d\n", m.partialsServed.Load())

	p("# HELP sigfimd_partial_replicates_total Monte Carlo replicates mined inside served partials.\n")
	p("# TYPE sigfimd_partial_replicates_total counter\n")
	p("sigfimd_partial_replicates_total %d\n", m.partialReplicates.Load())

	p("# HELP sigfimd_partials_shed_total Partial requests refused with 503 + Retry-After (draining or over the inflight cap).\n")
	p("# TYPE sigfimd_partials_shed_total counter\n")
	p("sigfimd_partials_shed_total %d\n", m.partialsShed.Load())

	if f := snap.fabric; f != nil {
		p("# HELP sigfimd_fabric_worker_state Remote worker supervision state (1 = the worker is in the labeled state).\n")
		p("# TYPE sigfimd_fabric_worker_state gauge\n")
		for _, w := range f.Workers {
			for _, state := range []string{sigfim.WorkerHealthy, sigfim.WorkerSuspect, sigfim.WorkerEjected} {
				v := 0
				if w.State == state {
					v = 1
				}
				p("sigfimd_fabric_worker_state{worker=%q,state=%q} %d\n", w.URL, state, v)
			}
		}

		p("# HELP sigfimd_fabric_worker_ranges_total Range dispatches per remote worker by outcome (backoff = honored 503/429 shed responses).\n")
		p("# TYPE sigfimd_fabric_worker_ranges_total counter\n")
		for _, w := range f.Workers {
			p("sigfimd_fabric_worker_ranges_total{worker=%q,outcome=\"success\"} %d\n", w.URL, w.Successes)
			p("sigfimd_fabric_worker_ranges_total{worker=%q,outcome=\"failure\"} %d\n", w.URL, w.Failures)
			p("sigfimd_fabric_worker_ranges_total{worker=%q,outcome=\"backoff\"} %d\n", w.URL, w.Backoffs)
		}

		p("# HELP sigfimd_fabric_worker_ejections_total Circuit-breaker ejections per remote worker.\n")
		p("# TYPE sigfimd_fabric_worker_ejections_total counter\n")
		for _, w := range f.Workers {
			p("sigfimd_fabric_worker_ejections_total{worker=%q} %d\n", w.URL, w.Ejections)
		}

		p("# HELP sigfimd_fabric_worker_readmissions_total Probe-driven re-admissions per remote worker.\n")
		p("# TYPE sigfimd_fabric_worker_readmissions_total counter\n")
		for _, w := range f.Workers {
			p("sigfimd_fabric_worker_readmissions_total{worker=%q} %d\n", w.URL, w.Readmissions)
		}

		p("# HELP sigfimd_fabric_hedged_dispatches_total Hedged (duplicate) range dispatches to straggler-shadowing workers.\n")
		p("# TYPE sigfimd_fabric_hedged_dispatches_total counter\n")
		p("sigfimd_fabric_hedged_dispatches_total %d\n", f.Hedges)

		p("# HELP sigfimd_fabric_local_fallbacks_total Ranges the coordinator mined locally after exhausting remote attempts.\n")
		p("# TYPE sigfimd_fabric_local_fallbacks_total counter\n")
		p("sigfimd_fabric_local_fallbacks_total %d\n", f.LocalFallbacks)

		p("# HELP sigfimd_fabric_range_seconds Wall-clock latency of range dispatches per remote worker (successes and hedge-loser cancellations).\n")
		p("# TYPE sigfimd_fabric_range_seconds histogram\n")
		for _, w := range f.Workers {
			rl := w.RangeLatency
			if rl == nil {
				continue
			}
			var cum uint64
			for b, le := range sigfim.RangeLatencyBuckets {
				if b < len(rl.Buckets) {
					cum += rl.Buckets[b]
				}
				p("sigfimd_fabric_range_seconds_bucket{worker=%q,le=%q} %d\n", w.URL, fnum(le), cum)
			}
			if n := len(sigfim.RangeLatencyBuckets); n < len(rl.Buckets) {
				cum += rl.Buckets[n]
			}
			p("sigfimd_fabric_range_seconds_bucket{worker=%q,le=\"+Inf\"} %d\n", w.URL, cum)
			p("sigfimd_fabric_range_seconds_sum{worker=%q} %s\n", w.URL, fnum(rl.SumSeconds))
			p("sigfimd_fabric_range_seconds_count{worker=%q} %d\n", w.URL, cum)
		}

		p("# HELP sigfimd_fabric_replicate_seconds_ewma Exponentially weighted moving average of seconds per replicate on successful ranges, per remote worker (drives range-size autotuning).\n")
		p("# TYPE sigfimd_fabric_replicate_seconds_ewma gauge\n")
		for _, w := range f.Workers {
			if w.RangeLatency == nil || w.RangeLatency.EWMAReplicateSeconds == 0 {
				continue
			}
			p("sigfimd_fabric_replicate_seconds_ewma{worker=%q} %s\n", w.URL, fnum(w.RangeLatency.EWMAReplicateSeconds))
		}
	}

	p("# HELP sigfimd_job_duration_seconds Wall-clock duration of computed jobs that ended done, by kind (cache hits excluded).\n")
	p("# TYPE sigfimd_job_duration_seconds histogram\n")
	for i, k := range kinds {
		h := byKind[i].duration
		var cum int64
		for b, le := range durationBuckets {
			cum += h.counts[b].Load()
			p("sigfimd_job_duration_seconds_bucket{kind=%q,le=%q} %d\n", k, fnum(le), cum)
		}
		cum += h.counts[len(durationBuckets)].Load()
		p("sigfimd_job_duration_seconds_bucket{kind=%q,le=\"+Inf\"} %d\n", k, cum)
		p("sigfimd_job_duration_seconds_sum{kind=%q} %s\n", k, fnum(float64(h.sumNanos.Load())/1e9))
		p("sigfimd_job_duration_seconds_count{kind=%q} %d\n", k, cum)
	}

	p("# HELP sigfimd_http_requests_total HTTP responses by status class.\n")
	p("# TYPE sigfimd_http_requests_total counter\n")
	for c := 1; c < len(m.httpByCode); c++ {
		p("sigfimd_http_requests_total{class=\"%dxx\"} %d\n", c, m.httpByCode[c].Load())
	}
}

package service_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"sigfim"
	"sigfim/internal/service"
)

// Swap-null service tests: the engine accepts swap `significant` jobs,
// serves them bit-identical to the direct library call, and canonicalizes
// the null-model fields (null model name, burn-in knobs) into the cache key.

func TestSwapSignificantEndToEnd(t *testing.T) {
	direct, err := sigfim.OpenFIMI(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &sigfim.Config{Delta: 60, Seed: 9, SwapNull: true}
	rep, err := direct.Significant(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, service.Options{Workers: 2})
	st, code := submit(t, ts, service.JobRequest{
		Dataset: "golden", Kind: service.KindSignificant, K: 2, Config: cfg,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (state %s, err %q)", code, st.State, st.Error)
	}
	final := waitState(t, ts, st.ID, service.StateDone)
	if final.CacheHit {
		t.Fatal("first swap submission reported a cache hit")
	}
	var got bytes.Buffer
	if err := json.Compact(&got, final.Result); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("swap service result differs from direct call.\nservice: %s\ndirect:  %s", got.Bytes(), want)
	}

	// Spelling out the default burn-in is the same canonical request: the
	// cache answers synchronously with the stored bytes.
	st2, code := submit(t, ts, service.JobRequest{
		Dataset: "golden", Kind: service.KindSignificant, K: 2,
		Config: &sigfim.Config{Delta: 60, Seed: 9, SwapNull: true, SwapProposalsPerOccurrence: 8, Workers: 1},
	})
	if code != http.StatusOK || !st2.CacheHit || st2.State != service.StateDone {
		t.Fatalf("default-spelled swap resubmit: status %d, cache_hit %v, state %s", code, st2.CacheHit, st2.State)
	}

	// The same parameters under the independence null are a different
	// canonical request: no cache hit, and a (generally) different report.
	st3, code := submit(t, ts, service.JobRequest{
		Dataset: "golden", Kind: service.KindSignificant, K: 2,
		Config: &sigfim.Config{Delta: 60, Seed: 9},
	})
	if code != http.StatusAccepted {
		t.Fatalf("independence submit: status %d", code)
	}
	if st3.CacheHit {
		t.Fatal("independence request hit the swap-null cache slot")
	}
	waitState(t, ts, st3.ID, service.StateDone)

	// A different burn-in is a different canonical request too.
	st4, code := submit(t, ts, service.JobRequest{
		Dataset: "golden", Kind: service.KindSignificant, K: 2,
		Config: &sigfim.Config{Delta: 60, Seed: 9, SwapNull: true, SwapProposalsPerOccurrence: 4},
	})
	if code != http.StatusAccepted || st4.CacheHit {
		t.Fatalf("ppo=4 submit: status %d, cache_hit %v (want a fresh run)", code, st4.CacheHit)
	}
	waitState(t, ts, st4.ID, service.StateDone)
}

func TestSwapCanonicalizationIgnoresIrrelevantKnobs(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Workers: 1})

	// Swap knobs are meaningless under the independence null and must not
	// split the cache.
	first, code := submit(t, ts, service.JobRequest{
		Dataset: "golden", Kind: service.KindSignificant, K: 2,
		Config: &sigfim.Config{Delta: 40, Seed: 3},
	})
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	waitState(t, ts, first.ID, service.StateDone)
	st, code := submit(t, ts, service.JobRequest{
		Dataset: "golden", Kind: service.KindSignificant, K: 2,
		Config: &sigfim.Config{Delta: 40, Seed: 3, SwapProposalsPerOccurrence: 5, SwapProposals: 123},
	})
	if code != http.StatusOK || !st.CacheHit {
		t.Fatalf("independence + stray swap knobs: status %d, cache_hit %v (want cache hit)", code, st.CacheHit)
	}

	// An absolute SwapProposals override makes the per-occurrence knob
	// irrelevant; requests differing only there share a slot.
	swapFirst, code := submit(t, ts, service.JobRequest{
		Dataset: "golden", Kind: service.KindSignificant, K: 2,
		Config: &sigfim.Config{Delta: 40, Seed: 3, SwapNull: true, SwapProposals: 400},
	})
	if code != http.StatusAccepted {
		t.Fatalf("swap proposals submit: status %d", code)
	}
	waitState(t, ts, swapFirst.ID, service.StateDone)
	st, code = submit(t, ts, service.JobRequest{
		Dataset: "golden", Kind: service.KindSignificant, K: 2,
		Config: &sigfim.Config{Delta: 40, Seed: 3, SwapNull: true, SwapProposals: 400, SwapProposalsPerOccurrence: 2},
	})
	if code != http.StatusOK || !st.CacheHit {
		t.Fatalf("override + shadowed ppo: status %d, cache_hit %v (want cache hit)", code, st.CacheHit)
	}
}

func TestSwapKnobValidation(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Workers: 1})
	for _, body := range []string{
		`{"dataset":"golden","kind":"significant","k":2,"config":{"SwapNull":true,"SwapProposalsPerOccurrence":-1}}`,
		`{"dataset":"golden","kind":"significant","k":2,"config":{"SwapNull":true,"SwapProposals":-7}}`,
	} {
		var e map[string]string
		code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader([]byte(body)), &e)
		if code != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, code)
		}
	}
}

package service

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"sigfim"
)

// DatasetInfo is the registry's public view of one dataset.
type DatasetInfo struct {
	// Name is the registry key the dataset was registered under.
	Name string `json:"name"`
	// Hash is the deterministic content hash (sigfim.Dataset.Hash); together
	// with a canonicalized analysis configuration it keys the result cache.
	Hash string `json:"hash"`
	// NumItems and NumTransactions echo the dataset dimensions.
	NumItems        int `json:"num_items"`
	NumTransactions int `json:"num_transactions"`
	// Source records provenance: "file:<path>" for startup registrations,
	// "upload" for datasets that arrived through POST /v1/datasets.
	Source string `json:"source"`
}

// Registry holds the named, immutable datasets the service mines against.
// Datasets are registered once — at startup from -data flags or at runtime
// via upload — and never mutated or removed, so jobs can hold *sigfim.Dataset
// pointers without further coordination: the wrapped Dataset is itself safe
// for concurrent analysis (its lazy indexes are built behind sync.Once).
type Registry struct {
	mu     sync.RWMutex
	byName map[string]registryEntry
	byHash map[string]registryEntry // content-addressed view for the worker endpoint
}

type registryEntry struct {
	ds   *sigfim.Dataset
	info DatasetInfo
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byName: make(map[string]registryEntry),
		byHash: make(map[string]registryEntry),
	}
}

// validName reports whether a dataset name is usable as a path segment of
// the HTTP API: nonempty, at most 128 bytes, and limited to letters, digits,
// '.', '_', and '-'.
func validName(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Register adds a dataset under a name. The content hash and the vertical
// index are computed eagerly inside the call, so by the time the dataset is
// visible to jobs every lazy structure is already warm. Registering an
// existing name fails (datasets are immutable), except when the content hash
// matches exactly — re-registering identical bytes is an idempotent no-op,
// which makes uploads safely retryable.
func (r *Registry) Register(name string, ds *sigfim.Dataset, source string) (DatasetInfo, error) {
	if !validName(name) {
		return DatasetInfo{}, fmt.Errorf("%w: invalid dataset name %q (want [A-Za-z0-9._-]{1,128})", ErrBadRequest, name)
	}
	// Warm the lazy caches before publishing: Hash for the cache identity,
	// Profile for the vertical index and item supports.
	hash := ds.Hash()
	ds.Profile(name)
	info := DatasetInfo{
		Name:            name,
		Hash:            hash,
		NumItems:        ds.NumItems(),
		NumTransactions: ds.NumTransactions(),
		Source:          source,
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[name]; ok {
		if prev.info.Hash == hash {
			return prev.info, nil
		}
		return DatasetInfo{}, fmt.Errorf("%w: dataset %q already registered with different content", ErrConflict, name)
	}
	e := registryEntry{ds: ds, info: info}
	r.byName[name] = e
	if _, ok := r.byHash[hash]; !ok {
		// Two names may alias identical content; the first registration wins
		// the hash slot (the datasets are byte-identical, so it cannot matter).
		r.byHash[hash] = e
	}
	return info, nil
}

// RegisterFile opens a FIMI file (gzip detected transparently) and registers
// it under the given name.
func (r *Registry) RegisterFile(name, path string) (DatasetInfo, error) {
	ds, err := sigfim.OpenFIMI(path)
	if err != nil {
		return DatasetInfo{}, fmt.Errorf("dataset %q: %w", name, err)
	}
	return r.Register(name, ds, "file:"+path)
}

// RegisterReader parses a FIMI stream (gzip detected transparently) and
// registers it under the given name; used by the upload endpoint. The parse
// error is wrapped (not flattened) so the HTTP layer can still distinguish
// special causes like http.MaxBytesError.
func (r *Registry) RegisterReader(name string, src io.Reader) (DatasetInfo, error) {
	ds, err := sigfim.ReadFIMI(src)
	if err != nil {
		return DatasetInfo{}, fmt.Errorf("%w: dataset %q: %w", ErrBadRequest, name, err)
	}
	return r.Register(name, ds, "upload")
}

// Get returns the dataset registered under name.
func (r *Registry) Get(name string) (*sigfim.Dataset, DatasetInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.byName[name]
	return e.ds, e.info, ok
}

// GetByHash resolves a dataset by content hash — the worker endpoint's
// addressing mode, which makes a coordinator/worker pair provably mine the
// same bytes regardless of the names their registries use.
func (r *Registry) GetByHash(hash string) (*sigfim.Dataset, DatasetInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.byHash[hash]
	return e.ds, e.info, ok
}

// List returns every registered dataset, sorted by name.
func (r *Registry) List() []DatasetInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]DatasetInfo, 0, len(r.byName))
	for _, e := range r.byName {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byName)
}

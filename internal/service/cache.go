package service

import (
	"container/list"
	"sync"
)

// ResultCache is a bounded LRU cache from canonical job keys to the exact
// marshaled result bytes of a completed computation. A hit returns the very
// bytes the original job produced, so a cached answer is byte-for-byte
// indistinguishable from recomputing — sound because the whole pipeline is
// deterministic for a fixed seed and the key captures everything the result
// depends on (dataset content hash, kind, k, canonicalized configuration; see
// canonicalRequest). Worker count is deliberately NOT part of the key: the
// engine guarantees bit-identical results for every worker count.
type ResultCache struct {
	mu           sync.Mutex
	capacity     int
	ll           *list.List // front = most recently used
	byKey        map[string]*list.Element
	hits, misses uint64
}

type cacheItem struct {
	key string
	val []byte
}

// NewResultCache returns an LRU cache holding up to capacity results;
// capacity <= 0 disables caching (every lookup misses, stores are dropped).
func NewResultCache(capacity int) *ResultCache {
	return &ResultCache{
		capacity: capacity,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element),
	}
}

// Get returns the cached result bytes for key, marking the entry most
// recently used. The returned slice is shared — callers must not modify it.
func (c *ResultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).val, true
}

// Put stores the result bytes under key, evicting the least recently used
// entry when over capacity. Storing an existing key refreshes its recency
// but keeps the original bytes (both computations of the same key are
// deterministic, hence identical).
func (c *ResultCache) Put(key string, val []byte) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheItem{key: key, val: val})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheItem).key)
	}
}

// Len returns the number of cached results.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Counters returns the lifetime hit and miss counts.
func (c *ResultCache) Counters() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

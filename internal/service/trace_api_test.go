package service_test

import (
	"net/http"
	"testing"

	"sigfim"
	"sigfim/internal/service"
	"sigfim/internal/trace"
)

// Tests for the trace API: GET /v1/jobs/{id}/trace serves a completed job's
// span tree out of a bounded LRU store that evicts independently of job
// records.

// getTrace fetches one job's trace, returning the decoded trace (when 200)
// and the status code.
func getTrace(t *testing.T, base, id string) (*trace.Trace, int) {
	t.Helper()
	var tr trace.Trace
	code := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id+"/trace", nil, &tr)
	if code != http.StatusOK {
		return nil, code
	}
	return &tr, code
}

func sminRequest(seed uint64) service.JobRequest {
	return service.JobRequest{
		Dataset: "golden", Kind: service.KindSMin, K: 2,
		Config: &sigfim.Config{Delta: 40, Seed: seed},
	}
}

func TestJobTraceRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Workers: 1})
	st, code := submit(t, ts, sminRequest(7))
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitState(t, ts, st.ID, service.StateDone)

	tr, code := getTrace(t, ts.URL, st.ID)
	if code != http.StatusOK {
		t.Fatalf("GET trace: status %d", code)
	}
	if tr.TraceID == "" || tr.JobID != st.ID {
		t.Fatalf("trace ids wrong: trace_id=%q job_id=%q (want job %q)", tr.TraceID, tr.JobID, st.ID)
	}

	spansByName := make(map[string]trace.Span)
	ids := make(map[int]bool)
	for _, sp := range tr.Spans {
		spansByName[sp.Name] = sp
		ids[sp.ID] = true
	}
	for _, want := range []string{"job", "queued", "dataset.warmup", "montecarlo.mine", "montecarlo.halving"} {
		if _, ok := spansByName[want]; !ok {
			t.Errorf("trace lacks a %q span", want)
		}
	}
	// The job root carries the terminal state; every non-root span's parent
	// must exist so the CLI can always reconstruct the tree.
	root := spansByName["job"]
	if got := attrValue(root, "state"); got != string(service.StateDone) {
		t.Errorf("job span state = %q, want %q", got, service.StateDone)
	}
	if root.Parent != 0 {
		t.Errorf("job span has parent %d, want root", root.Parent)
	}
	for _, sp := range tr.Spans {
		if sp.Parent != 0 && !ids[sp.Parent] {
			t.Errorf("span %q (id %d) references missing parent %d", sp.Name, sp.ID, sp.Parent)
		}
	}
	if q := spansByName["queued"]; q.Parent != root.ID {
		t.Errorf("queued span parent = %d, want the job root %d", q.Parent, root.ID)
	}
}

func attrValue(sp trace.Span, key string) string {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

func TestJobTraceUnknown404(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Workers: 1})
	if _, code := getTrace(t, ts.URL, "never-existed"); code != http.StatusNotFound {
		t.Fatalf("unknown job trace: status %d, want 404", code)
	}
}

// TestTraceEvictionIndependentOfJobRecord pins the LRU contract: with
// TraceRetention 1, an older job's trace answers 404 while the job record
// itself still answers 200 — traces age out on their own schedule.
func TestTraceEvictionIndependentOfJobRecord(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Workers: 1, TraceRetention: 1})

	a, _ := submit(t, ts, sminRequest(1))
	waitState(t, ts, a.ID, service.StateDone)
	if _, code := getTrace(t, ts.URL, a.ID); code != http.StatusOK {
		t.Fatalf("job A trace before eviction: status %d", code)
	}

	b, _ := submit(t, ts, sminRequest(2)) // different seed: a computed job, not a cache hit
	waitState(t, ts, b.ID, service.StateDone)

	if _, code := getTrace(t, ts.URL, a.ID); code != http.StatusNotFound {
		t.Fatalf("job A trace after eviction: status %d, want 404", code)
	}
	var st service.JobStatus
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+a.ID, nil, &st); code != http.StatusOK {
		t.Fatalf("job A record: status %d, want 200 (eviction must not touch job records)", code)
	}
	if tr, code := getTrace(t, ts.URL, b.ID); code != http.StatusOK || tr.JobID != b.ID {
		t.Fatalf("job B trace: status %d, job_id %v", code, tr)
	}
}

// TestCacheHitJobHasTrace: a job served synchronously from the result cache
// still records a (one-span) trace, so `sigfim jobs trace` works uniformly.
func TestCacheHitJobHasTrace(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Workers: 1})

	first, _ := submit(t, ts, sminRequest(3))
	waitState(t, ts, first.ID, service.StateDone)

	second, code := submit(t, ts, sminRequest(3))
	if code != http.StatusOK || !second.CacheHit {
		t.Fatalf("second submit: status %d, cacheHit %v, want synchronous cache hit", code, second.CacheHit)
	}
	tr, code := getTrace(t, ts.URL, second.ID)
	if code != http.StatusOK {
		t.Fatalf("cache-hit trace: status %d", code)
	}
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "job" {
		t.Fatalf("cache-hit trace spans = %+v, want exactly one job span", tr.Spans)
	}
	if got := attrValue(tr.Spans[0], "cache"); got != "hit" {
		t.Fatalf("cache-hit span cache attr = %q, want \"hit\"", got)
	}
}

// TestFabricRangeMetrics: a coordinator's /metrics must expose the
// per-worker range-latency histogram and autotuning EWMA after a
// distributed job.
func TestFabricRangeMetrics(t *testing.T) {
	_, worker := newTestServer(t, service.Options{Workers: 1})
	_, coord := newTestServer(t, service.Options{
		Workers: 1, RemoteWorkers: []string{worker.URL},
	})

	st, _ := submit(t, coord, sminRequest(11))
	waitState(t, coord, st.ID, service.StateDone)

	samples, body := scrapeMetrics(t, coord.URL)
	count := samples[`sigfimd_fabric_range_seconds_count{worker="`+worker.URL+`"}`]
	if count < 1 {
		t.Fatalf("sigfimd_fabric_range_seconds_count missing or zero; metrics body:\n%s", body)
	}
	inf := samples[`sigfimd_fabric_range_seconds_bucket{worker="`+worker.URL+`",le="+Inf"}`]
	if inf != count {
		t.Fatalf("+Inf bucket %v != count %v (histogram not cumulative)", inf, count)
	}
	if ewma := samples[`sigfimd_fabric_replicate_seconds_ewma{worker="`+worker.URL+`"}`]; ewma <= 0 {
		t.Fatalf("sigfimd_fabric_replicate_seconds_ewma missing or zero; metrics body:\n%s", body)
	}
}

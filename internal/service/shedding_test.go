package service

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// White-box tests for the worker side of the fabric's graceful degradation:
// POST /v1/partials must shed load with 503 + Retry-After while draining or
// over the inflight cap, and the coordinator-side supervision state must
// surface through /v1/stats and /metrics.

func shedTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	s := New(opts)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	if _, err := s.Registry().RegisterFile("golden", "../../testdata/golden_input.dat"); err != nil {
		t.Fatal(err)
	}
	return s
}

// postPartialReq drives one POST /v1/partials through the full handler chain
// and returns the recorder.
func postPartialReq(s *Server, body string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/partials", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// validPartialBody builds a request addressed to the registered dataset.
func validPartialBody(t *testing.T, s *Server) string {
	t.Helper()
	ds, _, ok := s.Registry().Get("golden")
	if !ok {
		t.Fatal("golden dataset missing")
	}
	b, err := json.Marshal(map[string]any{
		"dataset_hash": ds.Hash(),
		"from":         0, "to": 2, "k": 2, "floor": 2,
		"seeds": []uint64{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestPartialShedsWhileDraining(t *testing.T) {
	s := shedTestServer(t, Options{Workers: 1})
	body := validPartialBody(t, s)

	// Sanity: the request is served before the drain begins.
	if rec := postPartialReq(s, body); rec.Code != 200 {
		t.Fatalf("pre-drain partial: HTTP %d: %s", rec.Code, rec.Body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	rec := postPartialReq(s, body)
	if rec.Code != 503 {
		t.Fatalf("draining partial: HTTP %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("503 shed response carries no Retry-After header")
	}
	if got := s.Metrics().partialsShed.Load(); got < 1 {
		t.Fatalf("partialsShed = %d, want >= 1", got)
	}
}

func TestPartialShedsOverInflightCap(t *testing.T) {
	s := shedTestServer(t, Options{Workers: 1, PartialsInflight: 2})
	body := validPartialBody(t, s)

	// Saturate the cap from outside the handler: the next request must shed.
	s.partialsInflight.Add(2)
	rec := postPartialReq(s, body)
	if rec.Code != 503 {
		t.Fatalf("over-cap partial: HTTP %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("over-cap shed response carries no Retry-After header")
	}

	// Capacity restored: served again, and the counter was not leaked by the
	// shed path.
	s.partialsInflight.Add(-2)
	if rec := postPartialReq(s, body); rec.Code != 200 {
		t.Fatalf("post-shed partial: HTTP %d: %s", rec.Code, rec.Body)
	}
	if got := s.partialsInflight.Load(); got != 0 {
		t.Fatalf("inflight counter leaked: %d, want 0", got)
	}
}

func TestNegativePartialsInflightDisablesCap(t *testing.T) {
	s := shedTestServer(t, Options{Workers: 1, PartialsInflight: -1})
	if rec := postPartialReq(s, validPartialBody(t, s)); rec.Code != 200 {
		t.Fatalf("uncapped partial: HTTP %d: %s", rec.Code, rec.Body)
	}
}

// TestFabricObservability: a coordinator's /v1/stats carries the worker
// supervision snapshot and /metrics renders the fabric families; a plain
// worker omits both.
func TestFabricObservability(t *testing.T) {
	coord := shedTestServer(t, Options{Workers: 1, RemoteWorkers: []string{"http://127.0.0.1:1", "http://127.0.0.1:2"}})

	rec := httptest.NewRecorder()
	coord.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Fabric == nil || len(st.Fabric.Workers) != 2 {
		t.Fatalf("coordinator stats fabric = %+v, want 2 workers", st.Fabric)
	}

	rec = httptest.NewRecorder()
	coord.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	metrics := rec.Body.String()
	for _, family := range []string{
		"sigfimd_fabric_worker_state{",
		"sigfimd_fabric_worker_ranges_total{",
		"sigfimd_fabric_worker_ejections_total{",
		"sigfimd_fabric_worker_readmissions_total{",
		"sigfimd_fabric_hedged_dispatches_total",
		"sigfimd_fabric_local_fallbacks_total",
		"sigfimd_partials_shed_total",
	} {
		if !strings.Contains(metrics, family) {
			t.Errorf("coordinator /metrics missing %s", family)
		}
	}

	worker := shedTestServer(t, Options{Workers: 1})
	rec = httptest.NewRecorder()
	worker.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	var wst Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &wst); err != nil {
		t.Fatal(err)
	}
	if wst.Fabric != nil {
		t.Fatalf("non-coordinator stats carries fabric: %+v", wst.Fabric)
	}
	rec = httptest.NewRecorder()
	worker.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if strings.Contains(rec.Body.String(), "sigfimd_fabric_worker_state") {
		t.Error("non-coordinator /metrics renders fabric worker families")
	}
}

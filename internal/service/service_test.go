package service_test

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"sigfim"
	"sigfim/internal/service"
)

const goldenPath = "../../testdata/golden_input.dat"

func quietOptions(opts service.Options) service.Options {
	opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	return opts
}

// newTestServer builds a service with the golden dataset registered and an
// httptest front end.
func newTestServer(t *testing.T, opts service.Options) (*service.Server, *httptest.Server) {
	t.Helper()
	srv := service.New(quietOptions(opts))
	if _, err := srv.Registry().RegisterFile("golden", goldenPath); err != nil {
		t.Fatalf("register golden: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, ts
}

// doJSON performs a request and decodes the JSON response into out (unless
// nil), returning the status code.
func doJSON(t *testing.T, method, url string, body io.Reader, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

// submit posts a job and returns its status.
func submit(t *testing.T, ts *httptest.Server, req service.JobRequest) (service.JobStatus, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var st service.JobStatus
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body), &st)
	return st, code
}

// waitState polls a job until it reaches a terminal state (or the wanted
// state) and returns the final status.
func waitState(t *testing.T, ts *httptest.Server, id string, want service.JobState) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		var st service.JobStatus
		if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+id, nil, &st); code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		switch st.State {
		case want, service.StateDone, service.StateFailed, service.StateCanceled:
			if st.State != want {
				t.Fatalf("job %s reached %s (error %q), want %s", id, st.State, st.Error, want)
			}
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s waiting for %s", id, st.State, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func getStats(t *testing.T, ts *httptest.Server) service.Stats {
	t.Helper()
	var st service.Stats
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	return st
}

// TestEndToEndBitIdentical proves the service contract: a job submitted over
// HTTP returns a Report bit-identical (as JSON bytes) to the direct library
// call with the same configuration on the same data.
func TestEndToEndBitIdentical(t *testing.T) {
	direct, err := sigfim.OpenFIMI(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &sigfim.Config{Delta: 120, Seed: 9, WithBaseline: true}
	rep, err := direct.Significant(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, service.Options{Workers: 2})
	st, code := submit(t, ts, service.JobRequest{
		Dataset: "golden", Kind: service.KindSignificant, K: 2, Config: cfg,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (state %s, err %q)", code, st.State, st.Error)
	}
	final := waitState(t, ts, st.ID, service.StateDone)
	if final.CacheHit {
		t.Fatal("first submission reported a cache hit")
	}
	// The status envelope is served indented, which re-formats the embedded
	// result's whitespace but never its value literals; compacting recovers
	// the engine's stored bytes exactly, so this comparison is bit-identity
	// on every number, string, and field of the report.
	var got bytes.Buffer
	if err := json.Compact(&got, final.Result); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("service result differs from direct call.\nservice: %s\ndirect:  %s", got.Bytes(), want)
	}
	if final.Progress.Total == 0 || final.Progress.Done != final.Progress.Total {
		t.Errorf("progress = %+v, want done == total > 0", final.Progress)
	}
}

// TestCacheHit proves the second identical query is served from the cache:
// synchronously, with the same bytes, and with the stats counter advanced.
func TestCacheHit(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Workers: 1})
	req := service.JobRequest{
		Dataset: "golden", Kind: service.KindSMin, K: 2,
		Config: &sigfim.Config{Delta: 40, Seed: 3},
	}
	st1, code := submit(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	first := waitState(t, ts, st1.ID, service.StateDone)

	// Same query again, this time with a different (performance-only) worker
	// count: canonicalization must still hit the cache.
	req.Config = &sigfim.Config{Delta: 40, Seed: 3, Workers: 1}
	st2, code := submit(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("second submit: status %d, want 200 (cache hit)", code)
	}
	if st2.State != service.StateDone || !st2.CacheHit {
		t.Fatalf("second submit: state %s cacheHit %v, want done from cache", st2.State, st2.CacheHit)
	}
	if !bytes.Equal(st2.Result, first.Result) {
		t.Errorf("cached bytes differ:\nfirst:  %s\nsecond: %s", first.Result, st2.Result)
	}
	stats := getStats(t, ts)
	if stats.Cache.Hits != 1 {
		t.Errorf("cache hits = %d, want 1", stats.Cache.Hits)
	}
	if stats.Jobs.Completed != 2 {
		t.Errorf("completed = %d, want 2", stats.Jobs.Completed)
	}

	// A different seed is a different key: must miss.
	st3, code := submit(t, ts, service.JobRequest{
		Dataset: "golden", Kind: service.KindSMin, K: 2,
		Config: &sigfim.Config{Delta: 40, Seed: 4},
	})
	if code != http.StatusAccepted {
		t.Fatalf("third submit: status %d, want 202 (miss)", code)
	}
	waitState(t, ts, st3.ID, service.StateDone)
}

// TestCancellation cancels an in-flight job and proves the engine, cache,
// and subsequent jobs are unharmed.
func TestCancellation(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Workers: 1})
	// Big Delta: long enough that cancellation lands mid-run.
	long, code := submit(t, ts, service.JobRequest{
		Dataset: "golden", Kind: service.KindSMin, K: 2,
		Config: &sigfim.Config{Delta: 200000, Seed: 1},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitState(t, ts, long.ID, service.StateRunning)

	var st service.JobStatus
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+long.ID, nil, &st); code != http.StatusOK {
		t.Fatalf("cancel: status %d", code)
	}
	final := waitState(t, ts, long.ID, service.StateCanceled)
	if len(final.Result) != 0 {
		t.Errorf("canceled job carries a result: %s", final.Result)
	}

	// The canceled computation must not have polluted the cache: the same
	// query resubmitted runs fresh and completes with the correct value.
	direct, err := sigfim.OpenFIMI(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	wantSMin, err := direct.FindSMin(2, &sigfim.Config{Delta: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	after, code := submit(t, ts, service.JobRequest{
		Dataset: "golden", Kind: service.KindSMin, K: 2,
		Config: &sigfim.Config{Delta: 40, Seed: 7},
	})
	if code != http.StatusAccepted {
		t.Fatalf("post-cancel submit: status %d", code)
	}
	done := waitState(t, ts, after.ID, service.StateDone)
	var res service.SMinResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.SMin != wantSMin {
		t.Errorf("post-cancel s_min = %d, want %d (direct call)", res.SMin, wantSMin)
	}
	stats := getStats(t, ts)
	if stats.Jobs.Canceled != 1 {
		t.Errorf("canceled counter = %d, want 1", stats.Jobs.Canceled)
	}
	if stats.Jobs.InFlight != 0 {
		t.Errorf("in-flight = %d after all jobs ended", stats.Jobs.InFlight)
	}
}

// TestQueueBackpressure fills the bounded queue and verifies the 503 path.
func TestQueueBackpressure(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Workers: 1, QueueCap: 1})
	long := func(seed uint64) service.JobRequest {
		return service.JobRequest{
			Dataset: "golden", Kind: service.KindSMin, K: 2,
			Config: &sigfim.Config{Delta: 200000, Seed: seed},
		}
	}
	a, code := submit(t, ts, long(100))
	if code != http.StatusAccepted {
		t.Fatalf("job a: status %d", code)
	}
	waitState(t, ts, a.ID, service.StateRunning) // a occupies the worker
	b, code := submit(t, ts, long(101))
	if code != http.StatusAccepted {
		t.Fatalf("job b: status %d", code)
	}
	var errBody map[string]string
	cBody, _ := json.Marshal(long(102))
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(cBody), &errBody); code != http.StatusServiceUnavailable {
		t.Fatalf("job c: status %d, want 503 (queue full)", code)
	}
	if !strings.Contains(errBody["error"], "queue full") {
		t.Errorf("503 body = %v", errBody)
	}
	for _, id := range []string{b.ID, a.ID} { // cancel queued first, then running
		if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil, nil); code != http.StatusOK {
			t.Fatalf("cancel %s: status %d", id, code)
		}
	}
	waitState(t, ts, a.ID, service.StateCanceled)
	waitState(t, ts, b.ID, service.StateCanceled)
}

// TestConcurrentSubmissions hammers the submit path from many goroutines
// (the acceptance criterion's race-detector scenario) and verifies identical
// requests converge to identical bytes.
func TestConcurrentSubmissions(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Workers: 4, QueueCap: 64})
	const goroutines = 12
	ids := make([]string, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, code := submit(t, ts, service.JobRequest{
				Dataset: "golden", Kind: service.KindSMin, K: 2,
				Config: &sigfim.Config{Delta: 30, Seed: uint64(i % 3)},
			})
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Errorf("submit %d: status %d", i, code)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	bySeed := make(map[uint64][]byte)
	for i, id := range ids {
		if id == "" {
			continue
		}
		st := waitState(t, ts, id, service.StateDone)
		seed := uint64(i % 3)
		if prev, ok := bySeed[seed]; ok {
			if !bytes.Equal(prev, st.Result) {
				t.Errorf("seed %d: divergent results %s vs %s", seed, prev, st.Result)
			}
		} else {
			bySeed[seed] = st.Result
		}
	}
}

// TestUploadGzipAndContentAddressing uploads a gzip-compressed copy of the
// golden dataset under a new name and verifies (a) transparent gzip
// decoding, (b) hash equality with the file-registered original, and (c)
// that the result cache is content-addressed: a query against the upload
// hits results computed against the original.
func TestUploadGzipAndContentAddressing(t *testing.T) {
	srv, ts := newTestServer(t, service.Options{Workers: 1})
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}

	var info service.DatasetInfo
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/datasets?name=uploaded", bytes.NewReader(gz.Bytes()), &info)
	if code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	_, goldenInfo, _ := srv.Registry().Get("golden")
	if info.Hash != goldenInfo.Hash {
		t.Fatalf("uploaded hash %s != golden hash %s", info.Hash, goldenInfo.Hash)
	}

	cfg := &sigfim.Config{Delta: 30, Seed: 11}
	st1, _ := submit(t, ts, service.JobRequest{Dataset: "golden", Kind: service.KindSMin, K: 2, Config: cfg})
	first := waitState(t, ts, st1.ID, service.StateDone)
	st2, code := submit(t, ts, service.JobRequest{Dataset: "uploaded", Kind: service.KindSMin, K: 2, Config: cfg})
	if code != http.StatusOK || !st2.CacheHit {
		t.Fatalf("query against upload: status %d cacheHit %v, want content-addressed hit", code, st2.CacheHit)
	}
	if !bytes.Equal(st2.Result, first.Result) {
		t.Error("content-addressed hit returned different bytes")
	}
}

// TestHTTPErrors walks the client-error surface.
func TestHTTPErrors(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Workers: 1})
	cases := []struct {
		name, method, url, body string
		want                    int
	}{
		{"unknown dataset", "POST", "/v1/jobs", `{"dataset":"nope","kind":"smin","k":2}`, 404},
		{"bad kind", "POST", "/v1/jobs", `{"dataset":"golden","kind":"mystery","k":2}`, 400},
		{"bad k", "POST", "/v1/jobs", `{"dataset":"golden","kind":"smin","k":0}`, 400},
		{"bad algorithm", "POST", "/v1/jobs", `{"dataset":"golden","kind":"smin","k":2,"config":{"Algorithm":"quantum"}}`, 400},
		{"unknown field", "POST", "/v1/jobs", `{"dataset":"golden","kind":"smin","k":2,"bogus":1}`, 400},
		{"job not found", "GET", "/v1/jobs/j999999", "", 404},
		{"cancel not found", "DELETE", "/v1/jobs/j999999", "", 404},
		{"dataset not found", "GET", "/v1/datasets/nope", "", 404},
		{"upload without name", "POST", "/v1/datasets", "1 2 3\n", 400},
		{"upload bad name", "POST", "/v1/datasets?name=a/b", "1 2 3\n", 400},
		{"upload bad body", "POST", "/v1/datasets?name=bad", "not a fimi line\n", 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body io.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			}
			var e map[string]string
			if code := doJSON(t, tc.method, ts.URL+tc.url, body, &e); code != tc.want {
				t.Fatalf("status %d, want %d (body %v)", code, tc.want, e)
			}
		})
	}

	// Duplicate name with different content conflicts; identical content is
	// an idempotent no-op.
	var e map[string]string
	if code := doJSON(t, "POST", ts.URL+"/v1/datasets?name=dup", strings.NewReader("1 2\n"), nil); code != 201 {
		t.Fatalf("first dup upload: %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/datasets?name=dup", strings.NewReader("3 4\n"), &e); code != 409 {
		t.Fatalf("conflicting re-upload: %d, want 409", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/datasets?name=dup", strings.NewReader("1 2\n"), nil); code != 201 {
		t.Fatalf("idempotent re-upload: %d, want 201", code)
	}
}

// TestGracefulShutdown verifies drain semantics: queued jobs are canceled,
// running jobs are cooperatively canceled once the drain deadline passes,
// and post-shutdown submissions are refused.
func TestGracefulShutdown(t *testing.T) {
	srv := service.New(quietOptions(service.Options{Workers: 1, QueueCap: 4}))
	if _, err := srv.Registry().RegisterFile("golden", goldenPath); err != nil {
		t.Fatal(err)
	}
	long := func(seed uint64) service.JobRequest {
		return service.JobRequest{
			Dataset: "golden", Kind: service.KindSMin, K: 2,
			Config: &sigfim.Config{Delta: 200000, Seed: seed},
		}
	}
	running, err := srv.Engine().Submit(long(1))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := srv.Engine().Get(running.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == service.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	queued, err := srv.Engine().Submit(long(2))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Errorf("shutdown error = %v, want DeadlineExceeded (running job had to be canceled)", err)
	}
	for _, id := range []string{running.ID, queued.ID} {
		st, err := srv.Engine().Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != service.StateCanceled {
			t.Errorf("job %s state = %s, want canceled", id, st.State)
		}
	}
	if _, err := srv.Engine().Submit(long(3)); err == nil {
		t.Error("submit after shutdown succeeded")
	}
	// Idempotent.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

// TestJobRetention verifies the engine's job-table bound: once more than
// JobRetention jobs are tracked, the oldest finished records are evicted
// (404), while the result cache still answers their queries.
func TestJobRetention(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Workers: 1, QueueCap: 1, JobRetention: 2})
	var ids []string
	for seed := uint64(0); seed < 3; seed++ {
		st, code := submit(t, ts, service.JobRequest{
			Dataset: "golden", Kind: service.KindSMin, K: 2,
			Config: &sigfim.Config{Delta: 20, Seed: seed},
		})
		if code != http.StatusAccepted {
			t.Fatalf("submit seed %d: status %d", seed, code)
		}
		waitState(t, ts, st.ID, service.StateDone)
		ids = append(ids, st.ID)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+ids[0], nil, nil); code != http.StatusNotFound {
		t.Errorf("oldest job: status %d, want 404 (evicted)", code)
	}
	for _, id := range ids[1:] {
		if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+id, nil, nil); code != http.StatusOK {
			t.Errorf("job %s: status %d, want retained", id, code)
		}
	}
	// The evicted job's RESULT is still served — from the cache.
	st, code := submit(t, ts, service.JobRequest{
		Dataset: "golden", Kind: service.KindSMin, K: 2,
		Config: &sigfim.Config{Delta: 20, Seed: 0},
	})
	if code != http.StatusOK || !st.CacheHit {
		t.Errorf("evicted job's query: status %d cacheHit %v, want cache hit", code, st.CacheHit)
	}
}

// TestUploadTooLarge verifies oversized uploads map to 413, not 400.
func TestUploadTooLarge(t *testing.T) {
	srv := service.New(quietOptions(service.Options{Workers: 1, MaxUploadBytes: 16}))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	body := strings.Repeat("1 2 3\n", 100)
	var e map[string]string
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/datasets?name=big", strings.NewReader(body), &e); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (%v), want 413", code, e)
	}
}

// TestSMinRejectsSwapNull pins the wrong-model guard: FindSMin always uses
// the independence null, so a swap-null smin request must be refused rather
// than silently answered with the wrong model.
func TestSMinRejectsSwapNull(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Workers: 1})
	var e map[string]string
	body := `{"dataset":"golden","kind":"smin","k":2,"config":{"SwapNull":true}}`
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body), &e); code != http.StatusBadRequest {
		t.Fatalf("status %d (%v), want 400", code, e)
	}
	if !strings.Contains(e["error"], "SwapNull") {
		t.Errorf("error %q does not mention SwapNull", e["error"])
	}
}

// TestCacheLRU exercises the eviction order of the result cache directly.
func TestCacheLRU(t *testing.T) {
	c := service.NewResultCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok { // refresh a; b is now LRU
		t.Fatal("a missing")
	}
	c.Put("c", []byte("C")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if v, ok := c.Get("a"); !ok || string(v) != "A" {
		t.Error("a lost")
	}
	if v, ok := c.Get("c"); !ok || string(v) != "C" {
		t.Error("c lost")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
	hits, misses := c.Counters()
	if hits != 3 || misses != 1 {
		t.Errorf("counters = %d hits %d misses, want 3/1", hits, misses)
	}
	// Disabled cache: never stores, never hits.
	d := service.NewResultCache(0)
	d.Put("x", []byte("X"))
	if _, ok := d.Get("x"); ok {
		t.Error("disabled cache returned a value")
	}
}

// TestStatsEndpointShape sanity-checks /healthz and /v1/stats, and the
// dataset listing endpoints.
func TestStatsEndpointShape(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Workers: 1})
	var h map[string]string
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, &h); code != 200 || h["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, h)
	}
	st := getStats(t, ts)
	if st.Datasets != 1 {
		t.Errorf("datasets = %d, want 1", st.Datasets)
	}
	var list struct {
		Datasets []service.DatasetInfo `json:"datasets"`
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/datasets", nil, &list); code != 200 {
		t.Fatalf("list datasets: %d", code)
	}
	if len(list.Datasets) != 1 || list.Datasets[0].Name != "golden" || list.Datasets[0].Hash == "" {
		t.Errorf("dataset listing = %+v", list.Datasets)
	}
	var one service.DatasetInfo
	if code := doJSON(t, "GET", ts.URL+"/v1/datasets/golden", nil, &one); code != 200 || one.Hash != list.Datasets[0].Hash {
		t.Errorf("get dataset: %d %+v", code, one)
	}
	var jobs struct {
		Jobs []service.JobStatus `json:"jobs"`
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/jobs", nil, &jobs); code != 200 || len(jobs.Jobs) != 0 {
		t.Errorf("job listing: %d %+v", code, jobs.Jobs)
	}
}

package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// nonFlusher is a ResponseWriter that does not implement http.Flusher.
type nonFlusher struct{ http.ResponseWriter }

// TestStatusRecorderFlush asserts the logging wrapper forwards Flush to the
// underlying writer (httptest.ResponseRecorder implements http.Flusher and
// records the call) and is a safe no-op when the underlying writer cannot
// flush. Without the forward, wrapping a handler in logged would hide the
// Flusher and silently buffer SSE streams.
func TestStatusRecorderFlush(t *testing.T) {
	rr := httptest.NewRecorder()
	rec := &statusRecorder{ResponseWriter: rr, status: http.StatusOK}
	var _ http.Flusher = rec // the wrapper itself must satisfy Flusher
	rec.Flush()
	if !rr.Flushed {
		t.Fatal("Flush did not reach the underlying ResponseWriter")
	}

	plain := &statusRecorder{ResponseWriter: nonFlusher{httptest.NewRecorder()}}
	plain.Flush() // must not panic

	if rec.Unwrap() != http.ResponseWriter(rr) {
		t.Fatal("Unwrap does not expose the underlying writer")
	}
}

// TestSubscriptionCoalescing pins the mailbox contract: state frames queue
// in order and are never dropped, progress frames collapse into a single
// latest-wins slot.
func TestSubscriptionCoalescing(t *testing.T) {
	sub := &subscription{notify: make(chan struct{}, 1)}

	progress := func(done int) JobEvent {
		return JobEvent{Type: EventProgress, Status: JobStatus{Progress: Progress{Done: done, Total: 100}}}
	}
	state := func(s JobState) JobEvent {
		return JobEvent{Type: EventState, Status: JobStatus{State: s}}
	}

	for i := 1; i <= 50; i++ {
		sub.push(progress(i))
	}
	sub.push(state(StateRunning))
	sub.push(state(StateDone))

	if ev, ok := sub.takeProgress(); !ok || ev.Status.Progress.Done != 50 {
		t.Fatalf("takeProgress = %+v, %v; want latest (done=50)", ev, ok)
	}
	if _, ok := sub.takeProgress(); ok {
		t.Fatal("second takeProgress returned a frame; the slot must drain")
	}

	states := sub.takeStates()
	if len(states) != 2 || states[0].Status.State != StateRunning || states[1].Status.State != StateDone {
		t.Fatalf("takeStates = %+v; want [running done] in order", states)
	}
	if got := sub.takeStates(); len(got) != 0 {
		t.Fatalf("second takeStates returned %d frames", len(got))
	}

	select {
	case <-sub.notify:
	default:
		t.Fatal("push left no pending wake-up")
	}
}

// TestEventBusFanout covers subscribe/publish/unsubscribe and the
// hasSubscribers fast path the per-replicate progress hook relies on.
func TestEventBusFanout(t *testing.T) {
	bus := newEventBus()
	if bus.hasSubscribers("j1") {
		t.Fatal("fresh bus claims subscribers")
	}
	bus.publish("j1", JobEvent{Type: EventState}) // no subscribers: must not panic

	a := bus.subscribe("j1")
	b := bus.subscribe("j1")
	other := bus.subscribe("j2")
	if !bus.hasSubscribers("j1") || !bus.hasSubscribers("j2") {
		t.Fatal("hasSubscribers misses registered watchers")
	}

	bus.publish("j1", JobEvent{Type: EventState, Status: JobStatus{State: StateRunning}})
	for _, sub := range []*subscription{a, b} {
		if got := sub.takeStates(); len(got) != 1 || got[0].Status.State != StateRunning {
			t.Fatalf("subscriber got %+v, want one running frame", got)
		}
	}
	if got := other.takeStates(); len(got) != 0 {
		t.Fatalf("j2 watcher received j1 events: %+v", got)
	}

	bus.unsubscribe("j1", a)
	bus.unsubscribe("j1", b)
	if bus.hasSubscribers("j1") {
		t.Fatal("unsubscribe left phantom watchers")
	}
	bus.publish("j1", JobEvent{Type: EventProgress})
	if _, ok := a.takeProgress(); ok {
		t.Fatal("publish reached an unsubscribed watcher")
	}
}

// TestHistogramRender pins the Prometheus exposition of the duration
// histogram: cumulative buckets, a +Inf bucket equal to the count, and a sum
// in seconds.
func TestHistogramRender(t *testing.T) {
	m := NewMetrics()
	m.jobFinished(KindSMin, StateDone, 30*time.Millisecond, true)
	m.jobFinished(KindSMin, StateDone, 70*time.Millisecond, true)
	m.jobFinished(KindSMin, StateDone, 2*time.Second, true)
	m.jobFinished(KindSMin, StateDone, 0, false)          // cache hit: counted, not observed
	m.jobFinished(KindSMin, StateFailed, time.Hour, true) // failed: not observed

	var sb strings.Builder
	m.WritePrometheus(&sb, metricsSnapshot{})
	out := sb.String()

	for _, want := range []string{
		`sigfimd_jobs_finished_total{kind="smin",state="done"} 4`,
		`sigfimd_jobs_finished_total{kind="smin",state="failed"} 1`,
		`sigfimd_job_duration_seconds_bucket{kind="smin",le="0.025"} 0`,
		`sigfimd_job_duration_seconds_bucket{kind="smin",le="0.05"} 1`,
		`sigfimd_job_duration_seconds_bucket{kind="smin",le="0.1"} 2`,
		`sigfimd_job_duration_seconds_bucket{kind="smin",le="2.5"} 3`,
		`sigfimd_job_duration_seconds_bucket{kind="smin",le="+Inf"} 3`,
		`sigfimd_job_duration_seconds_sum{kind="smin"} 2.1`,
		`sigfimd_job_duration_seconds_count{kind="smin"} 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition lacks %q\n%s", want, out)
		}
	}
}

// TestHistogramBucketEdges asserts le-bucket semantics: an observation equal
// to a boundary lands in that bucket (le is <=), and observations beyond the
// largest boundary land only in +Inf.
func TestHistogramBucketEdges(t *testing.T) {
	m := NewMetrics()
	m.jobFinished("x", StateDone, 10*time.Millisecond, true) // exactly le="0.01"
	m.jobFinished("x", StateDone, 301*time.Second, true)     // beyond 300: +Inf only

	var sb strings.Builder
	m.WritePrometheus(&sb, metricsSnapshot{})
	out := sb.String()
	for _, want := range []string{
		`sigfimd_job_duration_seconds_bucket{kind="x",le="0.01"} 1`,
		`sigfimd_job_duration_seconds_bucket{kind="x",le="300"} 1`,
		`sigfimd_job_duration_seconds_bucket{kind="x",le="+Inf"} 2`,
		`sigfimd_job_duration_seconds_count{kind="x"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition lacks %q\n%s", want, out)
		}
	}
}

package randmodel

import (
	"hash/fnv"
	"reflect"
	"sync"
	"testing"

	"sigfim/internal/dataset"
	"sigfim/internal/stats"
)

// In-place swap-generation tests: (*SwapModel).GenerateInto must consume the
// exact RNG stream of the allocating Generate path and produce the identical
// dataset, including against golden fingerprints captured from the
// pre-refactor (map-based, allocating) implementation.

// swapGoldenBase rebuilds the fixed dataset the golden fingerprints were
// captured on: one independence-model draw at seed 99 (n=150, t=3000,
// power-law frequencies), materialized horizontally.
func swapGoldenBase() *dataset.Dataset {
	z := stats.FitPowerLaw(150, 1e-3, 0.12, 4)
	im := IndependentModel{T: 3000, Freqs: z.Frequencies()}
	return im.Generate(stats.NewRNG(99)).Horizontal()
}

// verticalFingerprint hashes a vertical layout column by column.
func verticalFingerprint(v *dataset.Vertical) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	w32 := func(x uint32) {
		buf[0], buf[1], buf[2], buf[3] = byte(x), byte(x>>8), byte(x>>16), byte(x>>24)
		h.Write(buf[:])
	}
	w32(uint32(v.NumTransactions))
	for it, l := range v.Tids {
		w32(uint32(it))
		w32(uint32(len(l)))
		for _, tid := range l {
			w32(tid)
		}
	}
	return h.Sum64()
}

// swapGoldenFingerprints pins SwapModel generation (ProposalsPerOccurrence 4)
// on swapGoldenBase for seeds 1..5, captured from the pre-refactor allocating
// implementation. Both Generate and GenerateInto must reproduce them.
var swapGoldenFingerprints = map[uint64]uint64{
	1: 0xd951f5d54992b85c,
	2: 0x77c50106d3b5b3f8,
	3: 0x3a96bbe88d813bec,
	4: 0xa9eecdf278321750,
	5: 0x58b35377601206d0,
}

func TestSwapGenerateMatchesPreRefactorGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second swap chains")
	}
	m := &SwapModel{Base: swapGoldenBase(), ProposalsPerOccurrence: 4}
	v := &dataset.Vertical{}
	for seed, want := range swapGoldenFingerprints {
		if got := verticalFingerprint(m.Generate(stats.NewRNG(seed))); got != want {
			t.Errorf("seed %d: Generate fingerprint %#x, want pre-refactor %#x", seed, got, want)
		}
		// The pooled path reuses v across seeds (dirty reuse on purpose).
		m.GenerateInto(stats.NewRNG(seed), v)
		if got := verticalFingerprint(v); got != want {
			t.Errorf("seed %d: GenerateInto fingerprint %#x, want pre-refactor %#x", seed, got, want)
		}
	}
}

func TestSwapGenerateIntoMatchesGenerate(t *testing.T) {
	// Small enough to cross-check many seeds exhaustively, with a Proposals
	// override in the mix so the absolute-length knob follows the same
	// stream-identity contract.
	d := dataset.MustNew(12, [][]uint32{
		{0, 1, 2}, {1, 2, 3}, {3, 4, 5}, {0, 5, 6}, {6, 7},
		{2, 7, 8}, {8, 9, 10}, {0, 9, 11}, {4, 10, 11}, {1, 6, 9},
	})
	for _, m := range []*SwapModel{
		{Base: d},
		{Base: d, ProposalsPerOccurrence: 3},
		{Base: d, Proposals: 137},
	} {
		v := &dataset.Vertical{}
		for seed := uint64(0); seed < 50; seed++ {
			fresh := m.Generate(stats.NewRNG(seed))
			m.GenerateInto(stats.NewRNG(seed), v)
			if v.NumTransactions != fresh.NumTransactions || len(v.Tids) != len(fresh.Tids) {
				t.Fatalf("seed %d: shape mismatch", seed)
			}
			for it := range fresh.Tids {
				if !reflect.DeepEqual(append([]uint32{}, fresh.Tids[it]...), append([]uint32{}, v.Tids[it]...)) {
					t.Fatalf("seed %d (ppo=%d proposals=%d): column %d differs between pooled and allocating generation",
						seed, m.ProposalsPerOccurrence, m.Proposals, it)
				}
			}
		}
	}
}

func TestSwapGenerateIntoPreservesMargins(t *testing.T) {
	d := swapGoldenBase()
	m := &SwapModel{Base: d, Proposals: 20000}
	v := &dataset.Vertical{}
	m.GenerateInto(stats.NewRNG(7), v)
	wantSup := d.ItemSupports()
	for it := range v.Tids {
		if len(v.Tids[it]) != wantSup[it] {
			t.Fatalf("item %d support changed: %d -> %d", it, wantSup[it], len(v.Tids[it]))
		}
	}
	// Row margins: rebuild horizontally and compare transaction lengths.
	h := v.Horizontal()
	for tid := 0; tid < d.NumTransactions(); tid++ {
		if len(h.Transaction(tid)) != len(d.Transaction(tid)) {
			t.Fatalf("transaction %d length changed: %d -> %d",
				tid, len(d.Transaction(tid)), len(h.Transaction(tid)))
		}
	}
}

func TestSwapGenerateIntoConcurrent(t *testing.T) {
	// Many goroutines share one model: the base snapshot is built once and
	// every worker draws its own scratch from the pool. Each goroutine's
	// output must match the single-threaded result for its seed.
	d := dataset.MustNew(10, [][]uint32{
		{0, 1, 2}, {2, 3, 4}, {4, 5, 6}, {6, 7, 8}, {0, 8, 9}, {1, 5, 9},
	})
	m := &SwapModel{Base: d, ProposalsPerOccurrence: 6}
	want := make([]uint64, 16)
	for seed := range want {
		v := &dataset.Vertical{}
		m.GenerateInto(stats.NewRNG(uint64(seed)), v)
		want[seed] = verticalFingerprint(v)
	}
	var wg sync.WaitGroup
	for seed := range want {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			v := &dataset.Vertical{}
			for rep := 0; rep < 5; rep++ {
				m.GenerateInto(stats.NewRNG(uint64(seed)), v)
				if got := verticalFingerprint(v); got != want[seed] {
					t.Errorf("seed %d rep %d: concurrent GenerateInto diverged", seed, rep)
					return
				}
			}
		}(seed)
	}
	wg.Wait()
}

func TestSwapGenerateIntoDegenerate(t *testing.T) {
	v := &dataset.Vertical{}
	// Single occurrence: the chain can never move and must consume no RNG.
	m := &SwapModel{Base: dataset.MustNew(1, [][]uint32{{0}})}
	r := stats.NewRNG(1)
	m.GenerateInto(r, v)
	if v.NumTransactions != 1 || len(v.Tids) != 1 || len(v.Tids[0]) != 1 {
		t.Fatal("degenerate swap broke dataset")
	}
	if got, want := r.Uint64(), stats.NewRNG(1).Uint64(); got != want {
		t.Fatal("degenerate chain consumed RNG values")
	}
	// Empty dataset.
	m = &SwapModel{Base: dataset.MustNew(0, nil)}
	m.GenerateInto(stats.NewRNG(2), v)
	if v.NumTransactions != 0 || len(v.Tids) != 0 {
		t.Fatal("empty swap broke dataset")
	}
}

package randmodel

import (
	"fmt"

	"sigfim/internal/bitset"
	"sigfim/internal/dataset"
	"sigfim/internal/stats"
)

// IndependentModel is the paper's null model: a dataset of T transactions
// over len(Freqs) items where item i joins each transaction independently
// with probability Freqs[i].
type IndependentModel struct {
	T     int
	Freqs []float64
}

// FromProfile builds the null model matching a measured dataset profile —
// "a random dataset with the same number of transactions and the same
// individual item frequencies" (paper, abstract).
func FromProfile(p dataset.Profile) IndependentModel {
	return IndependentModel{T: p.T, Freqs: p.Freqs}
}

// Validate checks model parameters.
func (m IndependentModel) Validate() error {
	if m.T < 0 {
		return fmt.Errorf("randmodel: negative transaction count %d", m.T)
	}
	for i, f := range m.Freqs {
		if f < 0 || f > 1 {
			return fmt.Errorf("randmodel: frequency %v of item %d outside [0,1]", f, i)
		}
	}
	return nil
}

// NumTransactions returns t.
func (m IndependentModel) NumTransactions() int { return m.T }

// NumItems returns n.
func (m IndependentModel) NumItems() int { return len(m.Freqs) }

// ItemFrequencies returns the model's frequency vector.
func (m IndependentModel) ItemFrequencies() []float64 { return m.Freqs }

// Generate draws one dataset. Column i is filled by visiting only the
// transactions that contain item i (geometric skip sampling), so the total
// expected cost is the expected dataset size sum_i T*f_i. It is a thin
// wrapper over GenerateInto with a fresh Vertical.
func (m IndependentModel) Generate(r *stats.RNG) *dataset.Vertical {
	v := &dataset.Vertical{}
	m.GenerateInto(r, v)
	return v
}

// GenerateInto draws one dataset into v, reusing v's column backing arrays
// (see randmodel.InPlaceGenerator). The random stream consumed is identical
// to Generate's, so for a fixed seed the pooled and fresh paths produce the
// same dataset.
func (m IndependentModel) GenerateInto(r *stats.RNG, v *dataset.Vertical) {
	v.Reuse(m.T, len(m.Freqs))
	for i, f := range m.Freqs {
		v.Tids[i] = sampleColumn(v.Tids[i], m.T, f, r)
	}
}

// sampleColumn appends the sorted tids of a Bernoulli(f) column of height t
// to col (passed with length zero) and returns it.
func sampleColumn(col bitset.TidList, t int, f float64, r *stats.RNG) bitset.TidList {
	if f <= 0 || t == 0 {
		return col
	}
	if col == nil {
		col = make(bitset.TidList, 0, int(float64(t)*f)+4)
	}
	s := stats.NewSkipSampler(t, f, r)
	for {
		pos, ok := s.Next()
		if !ok {
			break
		}
		col = append(col, uint32(pos))
	}
	return col
}

// ExpectedItemsetSupport returns t * prod(f_i over the itemset): the mean of
// the Binomial support distribution of the itemset under this model.
func (m IndependentModel) ExpectedItemsetSupport(items []uint32) float64 {
	p := 1.0
	for _, it := range items {
		p *= m.Freqs[it]
	}
	return float64(m.T) * p
}

// ItemsetSupportDist returns the exact Binomial distribution of the support
// of the given itemset under the model.
func (m IndependentModel) ItemsetSupportDist(items []uint32) stats.Binomial {
	p := 1.0
	for _, it := range items {
		p *= m.Freqs[it]
	}
	return stats.Binomial{N: m.T, P: p}
}

package randmodel

import (
	"math"

	"sigfim/internal/dataset"
	"sigfim/internal/stats"
)

// RDist is a distribution over per-item frequencies, the R of Theorem 3:
// each item x draws R_x ~ R independently, then joins each transaction with
// probability R_x. The analytic Chen-Stein bounds depend on the moments
// E[R^j], which implementations expose exactly.
type RDist interface {
	Sample(r *stats.RNG) float64
	// Moment returns E[R^j].
	Moment(j int) float64
}

// PointR is the degenerate distribution R = p: every item has the same
// frequency. With p = gamma/n this is exactly the Theorem 2 regime.
type PointR struct{ P float64 }

// Sample returns the fixed value.
func (d PointR) Sample(*stats.RNG) float64 { return d.P }

// Moment returns p^j.
func (d PointR) Moment(j int) float64 { return math.Pow(d.P, float64(j)) }

// UniformR is R ~ Uniform(A, B) with 0 <= A <= B <= 1.
type UniformR struct{ A, B float64 }

// Sample draws uniformly from [A, B].
func (d UniformR) Sample(r *stats.RNG) float64 { return d.A + (d.B-d.A)*r.Float64() }

// Moment returns E[R^j] = (B^{j+1} - A^{j+1}) / ((j+1)(B-A)).
func (d UniformR) Moment(j int) float64 {
	if d.B == d.A {
		return math.Pow(d.A, float64(j))
	}
	jp := float64(j + 1)
	return (math.Pow(d.B, jp) - math.Pow(d.A, jp)) / (jp * (d.B - d.A))
}

// TwoPointR takes value Hi with probability W and Lo otherwise — the
// simplest heavy-head model: a few popular items, many rare ones.
type TwoPointR struct {
	Lo, Hi float64
	W      float64 // probability of Hi
}

// Sample draws one of the two support points.
func (d TwoPointR) Sample(r *stats.RNG) float64 {
	if r.Bernoulli(d.W) {
		return d.Hi
	}
	return d.Lo
}

// Moment returns W*Hi^j + (1-W)*Lo^j.
func (d TwoPointR) Moment(j int) float64 {
	return d.W*math.Pow(d.Hi, float64(j)) + (1-d.W)*math.Pow(d.Lo, float64(j))
}

// EmpiricalR resamples frequencies uniformly from an observed frequency
// vector; its moments are the empirical moments.
type EmpiricalR struct{ Freqs []float64 }

// Sample picks one of the observed frequencies uniformly.
func (d EmpiricalR) Sample(r *stats.RNG) float64 {
	return d.Freqs[r.Intn(len(d.Freqs))]
}

// Moment returns the empirical j-th moment.
func (d EmpiricalR) Moment(j int) float64 {
	s := 0.0
	for _, f := range d.Freqs {
		s += math.Pow(f, float64(j))
	}
	return s / float64(len(d.Freqs))
}

// MixtureModel is the Theorem 3 generative regime: frequencies drawn from R,
// then independent placement.
type MixtureModel struct {
	T int
	N int
	R RDist
}

// NumTransactions returns t.
func (m MixtureModel) NumTransactions() int { return m.T }

// NumItems returns n.
func (m MixtureModel) NumItems() int { return m.N }

// ItemFrequencies returns the expected frequency E[R] for every item.
func (m MixtureModel) ItemFrequencies() []float64 {
	f := make([]float64, m.N)
	mean := m.R.Moment(1)
	for i := range f {
		f[i] = mean
	}
	return f
}

// Generate draws frequencies then a dataset.
func (m MixtureModel) Generate(r *stats.RNG) *dataset.Vertical {
	freqs := m.DrawFrequencies(r)
	return IndependentModel{T: m.T, Freqs: freqs}.Generate(r)
}

// GenerateInto draws frequencies then a dataset into v, reusing v's column
// buffers (the per-replicate frequency vector itself is drawn fresh; it is
// n float64s, negligible next to the columns).
func (m MixtureModel) GenerateInto(r *stats.RNG, v *dataset.Vertical) {
	freqs := m.DrawFrequencies(r)
	IndependentModel{T: m.T, Freqs: freqs}.GenerateInto(r, v)
}

// DrawFrequencies samples the per-item frequency vector R_x.
func (m MixtureModel) DrawFrequencies(r *stats.RNG) []float64 {
	freqs := make([]float64, m.N)
	for i := range freqs {
		f := m.R.Sample(r)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		freqs[i] = f
	}
	return freqs
}

// Package randmodel implements the random dataset models the paper's
// significance tests compare against:
//
//   - IndependentModel — the paper's reference null model (Section 1.1):
//     item i appears in each of t transactions independently with its
//     observed frequency f_i. Generation runs in O(sum_i t*f_i) expected
//     time (that is, proportional to the output size, not to t*n) by
//     placing each item's occurrences with geometric skips.
//   - MixtureModel — the Theorem 3 regime: each item's frequency R_x is
//     itself drawn from a distribution R, then occurrences are placed
//     independently. Used to validate the analytic Chen–Stein bounds.
//   - Swap randomization (Gionis et al. 2006) — the alternative null model
//     the paper cites, preserving both item frequencies AND transaction
//     lengths exactly via margin-preserving 2x2 swaps.
package randmodel

import (
	"sigfim/internal/dataset"
	"sigfim/internal/stats"
)

// Model generates random datasets in vertical layout.
type Model interface {
	// Generate draws one dataset using the given generator.
	Generate(r *stats.RNG) *dataset.Vertical
	// NumTransactions returns t, the fixed transaction count.
	NumTransactions() int
	// NumItems returns n, the item universe size.
	NumItems() int
	// ItemFrequencies returns the expected per-item frequencies, used to
	// compute s-tilde (the largest expected k-itemset support) when seeding
	// Algorithm 1's mining floor.
	ItemFrequencies() []float64
}

// InPlaceGenerator is the optional pooled-generation interface: GenerateInto
// refills a caller-owned Vertical, reusing its per-item column backing
// arrays, so a worker that mines thousands of replicates allocates column
// storage only while the buffers are still growing. Both shipped null models
// implement it — IndependentModel directly, *SwapModel through a pooled
// chain scratch — and models that don't simply fall back to Generate.
type InPlaceGenerator interface {
	// GenerateInto draws one dataset into v, which is reshaped via
	// (*dataset.Vertical).Reuse and must not be shared with a previous
	// replicate still in use. The stream consumed from r is identical to
	// Generate's, so pooled and fresh generation produce the same dataset
	// for the same seed.
	GenerateInto(r *stats.RNG, v *dataset.Vertical)
}

// GenerateReusing draws one dataset from m into v when the model supports
// in-place generation (returning v), and falls back to m.Generate otherwise.
// v may be nil, in which case a fresh Vertical is used. For a fixed seed the
// two paths return the same dataset either way — GenerateInto's contract is
// stream identity with Generate — so pooling never changes results.
func GenerateReusing(m Model, r *stats.RNG, v *dataset.Vertical) *dataset.Vertical {
	if ipg, ok := m.(InPlaceGenerator); ok {
		if v == nil {
			v = &dataset.Vertical{}
		}
		ipg.GenerateInto(r, v)
		return v
	}
	return m.Generate(r)
}

// Replicates draws count independent datasets from the model, splitting the
// generator so each replicate has its own stream.
func Replicates(m Model, count int, r *stats.RNG) []*dataset.Vertical {
	out := make([]*dataset.Vertical, count)
	for i := range out {
		out[i] = m.Generate(r.Split())
	}
	return out
}

package randmodel

import (
	"sort"
	"sync"

	"sigfim/internal/dataset"
	"sigfim/internal/stats"
)

// Swap randomization (Gionis, Mannila, Mielikäinen, Tsaparas, KDD 2006):
// a Markov chain over 0/1 matrices with fixed row and column sums. One step
// picks two occurrences (t1, i1), (t2, i2) with i1 ≠ i2, t1 ≠ t2,
// i2 ∉ t1, i1 ∉ t2 and rewires them to (t1, i2), (t2, i1). Every state
// reachable this way has exactly the same item supports and transaction
// lengths as the input; running the chain long enough approximates a uniform
// draw from that state space. The paper discusses this as the alternative
// null model of [10]; we ship it as a first-class null for the significance
// pipeline alongside the independence model.

// SwapRandomizer holds the mutable occurrence structures of the chain.
type SwapRandomizer struct {
	numItems int
	occTid   []uint32          // occurrence -> transaction id
	occItem  []uint32          // occurrence -> item id
	member   []map[uint32]bool // per transaction: item membership
	applied  int               // successful swaps so far
	proposed int               // proposals so far
}

// NewSwapRandomizer initializes the chain at the given dataset.
func NewSwapRandomizer(d *dataset.Dataset) *SwapRandomizer {
	sr := &SwapRandomizer{numItems: d.NumItems()}
	sr.member = make([]map[uint32]bool, d.NumTransactions())
	for tid := 0; tid < d.NumTransactions(); tid++ {
		tr := d.Transaction(tid)
		sr.member[tid] = make(map[uint32]bool, len(tr))
		for _, it := range tr {
			sr.member[tid][it] = true
			sr.occTid = append(sr.occTid, uint32(tid))
			sr.occItem = append(sr.occItem, it)
		}
	}
	return sr
}

// Step proposes one swap; it returns true when the proposal was applied.
func (sr *SwapRandomizer) Step(r *stats.RNG) bool {
	sr.proposed++
	n := len(sr.occTid)
	if n < 2 {
		return false
	}
	a := r.Intn(n)
	b := r.Intn(n)
	if a == b {
		return false
	}
	t1, i1 := sr.occTid[a], sr.occItem[a]
	t2, i2 := sr.occTid[b], sr.occItem[b]
	if t1 == t2 || i1 == i2 {
		return false
	}
	if sr.member[t1][i2] || sr.member[t2][i1] {
		return false
	}
	// Rewire.
	delete(sr.member[t1], i1)
	delete(sr.member[t2], i2)
	sr.member[t1][i2] = true
	sr.member[t2][i1] = true
	sr.occItem[a], sr.occItem[b] = i2, i1
	sr.applied++
	return true
}

// Run performs the given number of proposals and returns how many applied.
func (sr *SwapRandomizer) Run(proposals int, r *stats.RNG) int {
	applied := 0
	for i := 0; i < proposals; i++ {
		if sr.Step(r) {
			applied++
		}
	}
	return applied
}

// Applied returns the number of successful swaps so far.
func (sr *SwapRandomizer) Applied() int { return sr.applied }

// Dataset materializes the current chain state.
func (sr *SwapRandomizer) Dataset() *dataset.Dataset {
	tx := make([][]uint32, len(sr.member))
	for tid, set := range sr.member {
		tr := make([]uint32, 0, len(set))
		for it := range set {
			tr = append(tr, it)
		}
		sort.Slice(tr, func(a, b int) bool { return tr[a] < tr[b] })
		tx[tid] = tr
	}
	return dataset.MustNew(sr.numItems, tx)
}

// SwapRandomize runs the chain for proposalsPerOccurrence * |occurrences|
// proposals starting from d and returns the randomized dataset. Gionis et
// al. report mixing after a small constant times the number of ones; 4-10
// proposals per occurrence is customary.
func SwapRandomize(d *dataset.Dataset, proposalsPerOccurrence int, r *stats.RNG) *dataset.Dataset {
	sr := NewSwapRandomizer(d)
	sr.Run(proposalsPerOccurrence*len(sr.occTid), r)
	return sr.Dataset()
}

// SwapModel adapts swap randomization to the Model interface: every Generate
// (or GenerateInto) re-runs the chain from the reference dataset with a fresh
// stream, so replicates are independent approximate draws from the fixed-
// margin state space. The per-replicate chain length is the model's burn-in:
// every replicate pays it in full because the chain restarts from Base.
//
// SwapModel implements InPlaceGenerator through a shared immutable snapshot
// of the chain-start state (built once) and a pool of per-worker chain
// scratches, so the Monte Carlo replicate loop generates swap replicates
// without per-replicate allocation. Use it by pointer (&SwapModel{...}):
// the methods have pointer receivers because the model carries the shared
// once-guarded snapshot and the scratch pool, and must not be copied.
type SwapModel struct {
	Base *dataset.Dataset
	// ProposalsPerOccurrence controls chain length relative to the number of
	// ones in the matrix (default 8 when zero): each replicate runs
	// ProposalsPerOccurrence * |occurrences| proposals.
	ProposalsPerOccurrence int
	// Proposals, when positive, fixes the absolute number of proposals per
	// replicate and overrides ProposalsPerOccurrence.
	Proposals int

	prepOnce sync.Once
	prep     *swapBase
	pool     sync.Pool // *swapScratch
}

// NumTransactions returns t.
func (m *SwapModel) NumTransactions() int { return m.Base.NumTransactions() }

// NumItems returns n.
func (m *SwapModel) NumItems() int { return m.Base.NumItems() }

// ItemFrequencies returns the base dataset's frequencies, which every chain
// state shares (swaps preserve column margins exactly).
func (m *SwapModel) ItemFrequencies() []float64 { return m.Base.Frequencies() }

// proposals returns the per-replicate chain length for occ occurrences.
func (m *SwapModel) proposals(occ int) int {
	if m.Proposals > 0 {
		return m.Proposals
	}
	ppo := m.ProposalsPerOccurrence
	if ppo <= 0 {
		ppo = 8
	}
	return ppo * occ
}

// Generate runs a fresh chain through the allocating SwapRandomizer and
// returns the vertical layout. GenerateInto consumes the identical random
// stream and produces the identical dataset; keeping this independent
// implementation alive lets the tests cross-check the two against each other.
func (m *SwapModel) Generate(r *stats.RNG) *dataset.Vertical {
	sr := NewSwapRandomizer(m.Base)
	sr.Run(m.proposals(len(sr.occTid)), r)
	return sr.Dataset().Vertical()
}

// GenerateInto runs a fresh chain in pooled scratch space and materializes
// the result into v (reshaped via Reuse, per-item column backing arrays
// retained). The proposal sequence, the accept/reject decisions, and the
// resulting dataset are bit-identical to Generate for the same r, so pooled
// and allocating generation are interchangeable at every worker count.
func (m *SwapModel) GenerateInto(r *stats.RNG, v *dataset.Vertical) {
	b := m.prepare()
	sc, _ := m.pool.Get().(*swapScratch)
	if sc == nil {
		sc = &swapScratch{}
	}
	sc.reset(b)
	sc.run(b, m.proposals(len(b.occTid)), r)
	sc.materialize(b, v)
	m.pool.Put(sc)
}

// prepare builds (once) the immutable chain-start snapshot shared by every
// worker's scratch.
func (m *SwapModel) prepare() *swapBase {
	m.prepOnce.Do(func() {
		d := m.Base
		t := d.NumTransactions()
		total := 0
		for tid := 0; tid < t; tid++ {
			total += len(d.Transaction(tid))
		}
		b := &swapBase{
			numItems: d.NumItems(),
			numTx:    t,
			occTid:   make([]uint32, 0, total),
			arena:    make([]uint32, 0, total),
			txOff:    make([]int, t+1),
		}
		for tid := 0; tid < t; tid++ {
			tr := d.Transaction(tid)
			b.txOff[tid] = len(b.arena)
			b.arena = append(b.arena, tr...)
			for range tr {
				b.occTid = append(b.occTid, uint32(tid))
			}
		}
		b.txOff[t] = len(b.arena)
		m.prep = b
	})
	return m.prep
}

// swapBase is the immutable chain-start state: the occurrence->transaction
// map and the flat sorted-transaction arena. Transactions are enumerated in
// the same (tid, ascending item) order NewSwapRandomizer uses, so occurrence
// j starts at item arena[j] — the arena doubles as the initial occurrence->
// item array.
type swapBase struct {
	numItems int
	numTx    int
	occTid   []uint32 // occurrence -> transaction id (never mutated by the chain)
	arena    []uint32 // concatenated sorted transactions at the chain start
	txOff    []int    // transaction t occupies arena[txOff[t]:txOff[t+1]]
}

// swapScratch is one worker's mutable chain state, reset from the base
// snapshot with two bulk copies per replicate. Transaction windows stay
// sorted across swaps (membership tests are binary searches; an applied swap
// shifts at most one window's worth of items), which also keeps the
// materialized vertical columns sorted for free: transactions are visited in
// ascending tid order, so each item's tid list is appended in order.
type swapScratch struct {
	occItem []uint32 // occurrence -> item id (chain state)
	arena   []uint32 // per-transaction sorted item windows (chain state)
}

// reset restores the scratch to the chain-start state.
func (sc *swapScratch) reset(b *swapBase) {
	sc.occItem = append(sc.occItem[:0], b.arena...)
	sc.arena = append(sc.arena[:0], b.arena...)
}

// searchU32 returns the first index in w whose value is >= x.
func searchU32(w []uint32, x uint32) int {
	lo, hi := 0, len(w)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if w[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// contains reports whether transaction t currently holds item x.
func (sc *swapScratch) contains(b *swapBase, t uint32, x uint32) bool {
	w := sc.arena[b.txOff[t]:b.txOff[t+1]]
	i := searchU32(w, x)
	return i < len(w) && w[i] == x
}

// replace swaps item old for item new in transaction t, keeping the window
// sorted. old must be present and new absent (the chain checks both).
func (sc *swapScratch) replace(b *swapBase, t uint32, old, new uint32) {
	w := sc.arena[b.txOff[t]:b.txOff[t+1]]
	p := searchU32(w, old)
	q := searchU32(w, new)
	if q > p {
		copy(w[p:q-1], w[p+1:q])
		w[q-1] = new
	} else {
		copy(w[q+1:p+1], w[q:p])
		w[q] = new
	}
}

// run executes the Markov chain: the same proposal loop as
// SwapRandomizer.Step, consuming the identical RNG stream (two Intn draws
// per proposal, none when fewer than two occurrences exist).
func (sc *swapScratch) run(b *swapBase, proposals int, r *stats.RNG) {
	n := len(b.occTid)
	if n < 2 {
		return
	}
	for p := 0; p < proposals; p++ {
		a := r.Intn(n)
		c := r.Intn(n)
		if a == c {
			continue
		}
		t1, i1 := b.occTid[a], sc.occItem[a]
		t2, i2 := b.occTid[c], sc.occItem[c]
		if t1 == t2 || i1 == i2 {
			continue
		}
		if sc.contains(b, t1, i2) || sc.contains(b, t2, i1) {
			continue
		}
		sc.replace(b, t1, i1, i2)
		sc.replace(b, t2, i2, i1)
		sc.occItem[a], sc.occItem[c] = i2, i1
	}
}

// materialize writes the current chain state into v in vertical layout.
func (sc *swapScratch) materialize(b *swapBase, v *dataset.Vertical) {
	v.Reuse(b.numTx, b.numItems)
	for tid := 0; tid < b.numTx; tid++ {
		for _, it := range sc.arena[b.txOff[tid]:b.txOff[tid+1]] {
			v.Tids[it] = append(v.Tids[it], uint32(tid))
		}
	}
}

package randmodel

import (
	"sort"

	"sigfim/internal/dataset"
	"sigfim/internal/stats"
)

// Swap randomization (Gionis, Mannila, Mielikäinen, Tsaparas, KDD 2006):
// a Markov chain over 0/1 matrices with fixed row and column sums. One step
// picks two occurrences (t1, i1), (t2, i2) with i1 ≠ i2, t1 ≠ t2,
// i2 ∉ t1, i1 ∉ t2 and rewires them to (t1, i2), (t2, i1). Every state
// reachable this way has exactly the same item supports and transaction
// lengths as the input; running the chain long enough approximates a uniform
// draw from that state space. The paper discusses this as the alternative
// null model of [10]; we ship it as a baseline for cross-model comparisons.

// SwapRandomizer holds the mutable occurrence structures of the chain.
type SwapRandomizer struct {
	numItems int
	occTid   []uint32          // occurrence -> transaction id
	occItem  []uint32          // occurrence -> item id
	member   []map[uint32]bool // per transaction: item membership
	applied  int               // successful swaps so far
	proposed int               // proposals so far
}

// NewSwapRandomizer initializes the chain at the given dataset.
func NewSwapRandomizer(d *dataset.Dataset) *SwapRandomizer {
	sr := &SwapRandomizer{numItems: d.NumItems()}
	sr.member = make([]map[uint32]bool, d.NumTransactions())
	for tid := 0; tid < d.NumTransactions(); tid++ {
		tr := d.Transaction(tid)
		sr.member[tid] = make(map[uint32]bool, len(tr))
		for _, it := range tr {
			sr.member[tid][it] = true
			sr.occTid = append(sr.occTid, uint32(tid))
			sr.occItem = append(sr.occItem, it)
		}
	}
	return sr
}

// Step proposes one swap; it returns true when the proposal was applied.
func (sr *SwapRandomizer) Step(r *stats.RNG) bool {
	sr.proposed++
	n := len(sr.occTid)
	if n < 2 {
		return false
	}
	a := r.Intn(n)
	b := r.Intn(n)
	if a == b {
		return false
	}
	t1, i1 := sr.occTid[a], sr.occItem[a]
	t2, i2 := sr.occTid[b], sr.occItem[b]
	if t1 == t2 || i1 == i2 {
		return false
	}
	if sr.member[t1][i2] || sr.member[t2][i1] {
		return false
	}
	// Rewire.
	delete(sr.member[t1], i1)
	delete(sr.member[t2], i2)
	sr.member[t1][i2] = true
	sr.member[t2][i1] = true
	sr.occItem[a], sr.occItem[b] = i2, i1
	sr.applied++
	return true
}

// Run performs the given number of proposals and returns how many applied.
func (sr *SwapRandomizer) Run(proposals int, r *stats.RNG) int {
	applied := 0
	for i := 0; i < proposals; i++ {
		if sr.Step(r) {
			applied++
		}
	}
	return applied
}

// Applied returns the number of successful swaps so far.
func (sr *SwapRandomizer) Applied() int { return sr.applied }

// Dataset materializes the current chain state.
func (sr *SwapRandomizer) Dataset() *dataset.Dataset {
	tx := make([][]uint32, len(sr.member))
	for tid, set := range sr.member {
		tr := make([]uint32, 0, len(set))
		for it := range set {
			tr = append(tr, it)
		}
		sort.Slice(tr, func(a, b int) bool { return tr[a] < tr[b] })
		tx[tid] = tr
	}
	return dataset.MustNew(sr.numItems, tx)
}

// SwapRandomize runs the chain for proposalsPerOccurrence * |occurrences|
// proposals starting from d and returns the randomized dataset. Gionis et
// al. report mixing after a small constant times the number of ones; 4-10
// proposals per occurrence is customary.
func SwapRandomize(d *dataset.Dataset, proposalsPerOccurrence int, r *stats.RNG) *dataset.Dataset {
	sr := NewSwapRandomizer(d)
	sr.Run(proposalsPerOccurrence*len(sr.occTid), r)
	return sr.Dataset()
}

// SwapModel adapts swap randomization to the Model interface: every Generate
// re-runs the chain from the reference dataset with a fresh stream.
type SwapModel struct {
	Base *dataset.Dataset
	// ProposalsPerOccurrence controls chain length (default 8 when zero).
	ProposalsPerOccurrence int
}

// NumTransactions returns t.
func (m SwapModel) NumTransactions() int { return m.Base.NumTransactions() }

// NumItems returns n.
func (m SwapModel) NumItems() int { return m.Base.NumItems() }

// ItemFrequencies returns the base dataset's frequencies, which every chain
// state shares (swaps preserve column margins exactly).
func (m SwapModel) ItemFrequencies() []float64 { return m.Base.Frequencies() }

// Generate runs a fresh chain and returns the vertical layout.
func (m SwapModel) Generate(r *stats.RNG) *dataset.Vertical {
	ppo := m.ProposalsPerOccurrence
	if ppo <= 0 {
		ppo = 8
	}
	return SwapRandomize(m.Base, ppo, r).Vertical()
}

package randmodel

import (
	"math"
	"testing"

	"sigfim/internal/dataset"
	"sigfim/internal/stats"
)

func TestIndependentModelValidate(t *testing.T) {
	if err := (IndependentModel{T: 10, Freqs: []float64{0.5}}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (IndependentModel{T: -1}).Validate(); err == nil {
		t.Error("negative t accepted")
	}
	if err := (IndependentModel{T: 1, Freqs: []float64{1.5}}).Validate(); err == nil {
		t.Error("f > 1 accepted")
	}
}

func TestGenerateShape(t *testing.T) {
	m := IndependentModel{T: 500, Freqs: []float64{0.1, 0, 1, 0.5}}
	r := stats.NewRNG(1)
	v := m.Generate(r)
	if v.NumTransactions != 500 || v.NumItems() != 4 {
		t.Fatalf("dims = %d,%d", v.NumTransactions, v.NumItems())
	}
	if len(v.Tids[1]) != 0 {
		t.Error("f=0 item has occurrences")
	}
	if len(v.Tids[2]) != 500 {
		t.Errorf("f=1 item has %d occurrences, want 500", len(v.Tids[2]))
	}
	// tids must be strictly increasing and in range.
	for it, l := range v.Tids {
		for i, tid := range l {
			if int(tid) >= 500 || (i > 0 && l[i-1] >= tid) {
				t.Fatalf("item %d tid list invalid at %d", it, i)
			}
		}
	}
}

func TestGenerateDeterministicBySeed(t *testing.T) {
	m := IndependentModel{T: 200, Freqs: []float64{0.3, 0.1, 0.7}}
	a := m.Generate(stats.NewRNG(42))
	b := m.Generate(stats.NewRNG(42))
	for it := range a.Tids {
		if len(a.Tids[it]) != len(b.Tids[it]) {
			t.Fatal("same seed, different datasets")
		}
		for i := range a.Tids[it] {
			if a.Tids[it][i] != b.Tids[it][i] {
				t.Fatal("same seed, different datasets")
			}
		}
	}
}

func TestItemSupportsMatchBinomial(t *testing.T) {
	// Marginal check: the support of item i across replicates must be
	// Binomial(t, f_i). Chi-square on binned counts.
	const t_ = 300
	const reps = 3000
	f := 0.2
	m := IndependentModel{T: t_, Freqs: []float64{f}}
	r := stats.NewRNG(7)
	sample := make([]int, reps)
	for i := range sample {
		sample[i] = len(m.Generate(r.Split()).Tids[0])
	}
	b := stats.Binomial{N: t_, P: f}
	lo, hi := b.Quantile(0.0005), b.Quantile(0.9995)
	obs := make([]float64, hi-lo+3)
	exp := make([]float64, hi-lo+3)
	for _, v := range sample {
		switch {
		case v < lo:
			obs[0]++
		case v > hi:
			obs[len(obs)-1]++
		default:
			obs[v-lo+1]++
		}
	}
	exp[0] = reps * b.CDF(lo-1)
	exp[len(exp)-1] = reps * b.UpperTail(hi+1)
	for v := lo; v <= hi; v++ {
		exp[v-lo+1] = reps * b.PMF(v)
	}
	res := stats.ChiSquareTest(obs, exp, 5, 0)
	if res.PValue < 1e-4 {
		t.Errorf("item support not Binomial: chi2 p=%v", res.PValue)
	}
}

func TestPairSupportMatchesProductBinomial(t *testing.T) {
	// Joint check: support of a pair (i,j) must be Binomial(t, f_i*f_j)
	// because placements are independent across items.
	const t_ = 400
	const reps = 2500
	m := IndependentModel{T: t_, Freqs: []float64{0.3, 0.25}}
	r := stats.NewRNG(8)
	mean := 0.0
	for i := 0; i < reps; i++ {
		v := m.Generate(r.Split())
		mean += float64(v.Support([]uint32{0, 1}))
	}
	mean /= reps
	want := t_ * 0.3 * 0.25
	se := math.Sqrt(want / reps) // variance ~ mean for small p
	if math.Abs(mean-want) > 8*se {
		t.Errorf("pair support mean %v, want %v", mean, want)
	}
}

func TestExpectedItemsetSupport(t *testing.T) {
	m := IndependentModel{T: 1000, Freqs: []float64{0.1, 0.2, 0.5}}
	if got := m.ExpectedItemsetSupport([]uint32{0, 1}); math.Abs(got-20) > 1e-12 {
		t.Errorf("expected support = %v, want 20", got)
	}
	d := m.ItemsetSupportDist([]uint32{0, 2})
	if d.N != 1000 || math.Abs(d.P-0.05) > 1e-12 {
		t.Errorf("support dist = %+v", d)
	}
}

func TestReplicates(t *testing.T) {
	m := IndependentModel{T: 50, Freqs: []float64{0.5, 0.5}}
	r := stats.NewRNG(3)
	reps := Replicates(m, 5, r)
	if len(reps) != 5 {
		t.Fatalf("got %d replicates", len(reps))
	}
	// Replicates must differ (they use split streams).
	same := 0
	for i := 1; i < len(reps); i++ {
		if len(reps[i].Tids[0]) == len(reps[0].Tids[0]) {
			same++
		}
	}
	if same == 4 {
		// Identical support four times is possible but astronomically
		// unlikely to co-occur with identical tid content; check content.
		identical := true
		for i := range reps[0].Tids[0] {
			if reps[1].Tids[0][i] != reps[0].Tids[0][i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("replicates appear identical")
		}
	}
}

func TestRDistMoments(t *testing.T) {
	r := stats.NewRNG(11)
	dists := []RDist{
		PointR{P: 0.3},
		UniformR{A: 0.1, B: 0.4},
		TwoPointR{Lo: 0.01, Hi: 0.3, W: 0.2},
		EmpiricalR{Freqs: []float64{0.1, 0.2, 0.3, 0.4}},
	}
	const trials = 200000
	for _, d := range dists {
		for _, j := range []int{1, 2, 4} {
			emp := 0.0
			for i := 0; i < trials; i++ {
				emp += math.Pow(d.Sample(r), float64(j))
			}
			emp /= trials
			want := d.Moment(j)
			if math.Abs(emp-want) > 0.02*want+1e-4 {
				t.Errorf("%T moment %d: empirical %v vs analytic %v", d, j, emp, want)
			}
		}
	}
}

func TestUniformRDegenerate(t *testing.T) {
	d := UniformR{A: 0.25, B: 0.25}
	if got := d.Moment(2); math.Abs(got-0.0625) > 1e-12 {
		t.Errorf("degenerate uniform moment = %v", got)
	}
}

func TestMixtureModelGenerate(t *testing.T) {
	m := MixtureModel{T: 100, N: 20, R: UniformR{A: 0.05, B: 0.2}}
	r := stats.NewRNG(13)
	v := m.Generate(r)
	if v.NumTransactions != 100 || v.NumItems() != 20 {
		t.Fatalf("dims = %d,%d", v.NumTransactions, v.NumItems())
	}
	freqs := m.DrawFrequencies(r)
	for _, f := range freqs {
		if f < 0.05-1e-12 || f > 0.2+1e-12 {
			t.Fatalf("frequency %v outside R's support", f)
		}
	}
}

func TestSwapPreservesMargins(t *testing.T) {
	r := stats.NewRNG(21)
	// Random base dataset.
	tx := make([][]uint32, 60)
	for i := range tx {
		for it := 0; it < 15; it++ {
			if r.Bernoulli(0.25) {
				tx[i] = append(tx[i], uint32(it))
			}
		}
	}
	d := dataset.MustNew(15, tx)
	randomized := SwapRandomize(d, 10, r)
	// Column margins (item supports).
	a, b := d.ItemSupports(), randomized.ItemSupports()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("item %d support changed: %d -> %d", i, a[i], b[i])
		}
	}
	// Row margins (transaction lengths).
	for i := 0; i < d.NumTransactions(); i++ {
		if len(d.Transaction(i)) != len(randomized.Transaction(i)) {
			t.Fatalf("transaction %d length changed", i)
		}
	}
}

func TestSwapActuallyMixes(t *testing.T) {
	r := stats.NewRNG(22)
	tx := make([][]uint32, 80)
	for i := range tx {
		for it := 0; it < 20; it++ {
			if r.Bernoulli(0.3) {
				tx[i] = append(tx[i], uint32(it))
			}
		}
	}
	d := dataset.MustNew(20, tx)
	sr := NewSwapRandomizer(d)
	applied := sr.Run(10*len(sr.occTid), r)
	if applied == 0 {
		t.Fatal("no swap ever applied")
	}
	randomized := sr.Dataset()
	// At least one transaction must differ from the original.
	differs := false
	for i := 0; i < d.NumTransactions() && !differs; i++ {
		a, b := d.Transaction(i), randomized.Transaction(i)
		for j := range a {
			if a[j] != b[j] {
				differs = true
				break
			}
		}
	}
	if !differs {
		t.Error("chain did not move")
	}
}

func TestSwapModelInterface(t *testing.T) {
	r := stats.NewRNG(23)
	d := dataset.MustNew(3, [][]uint32{{0, 1}, {1, 2}, {0, 2}, {0}})
	var m Model = &SwapModel{Base: d}
	v := m.Generate(r)
	if v.NumTransactions != 4 || m.NumItems() != 3 || m.NumTransactions() != 4 {
		t.Fatal("SwapModel dims")
	}
	// Margins preserved through the interface path too.
	sup := v.ItemSupports()
	wantSup := d.ItemSupports()
	for i := range sup {
		if sup[i] != wantSup[i] {
			t.Fatal("SwapModel changed margins")
		}
	}
}

func TestSwapDegenerateInputs(t *testing.T) {
	r := stats.NewRNG(24)
	// Single occurrence: chain can never move but must not crash.
	d := dataset.MustNew(1, [][]uint32{{0}})
	out := SwapRandomize(d, 10, r)
	if out.NumTransactions() != 1 || out.Support([]uint32{0}) != 1 {
		t.Fatal("degenerate swap broke dataset")
	}
	// Empty dataset.
	e := dataset.MustNew(0, nil)
	out = SwapRandomize(e, 10, r)
	if out.NumTransactions() != 0 {
		t.Fatal("empty swap broke dataset")
	}
}

package randmodel

import (
	"testing"

	"sigfim/internal/stats"
)

// Generation benchmarks: Algorithm 1 draws Delta datasets per run, so
// generation cost bounds the whole methodology's wall clock.

func benchModel() IndependentModel {
	z := stats.FitPowerLaw(2000, 1e-5, 0.3, 8)
	return IndependentModel{T: 50000, Freqs: z.Frequencies()}
}

func BenchmarkGenerateSkipSampling(b *testing.B) {
	m := benchModel()
	r := stats.NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Generate(r.Split())
	}
}

// BenchmarkGenerateNaive is the O(t*n) baseline the geometric-skip
// generator replaces.
func BenchmarkGenerateNaive(b *testing.B) {
	m := benchModel()
	r := stats.NewRNG(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rr := r.Split()
		tx := make([][]uint32, m.T)
		for item, f := range m.Freqs {
			for tid := 0; tid < m.T; tid++ {
				if rr.Float64() < f {
					tx[tid] = append(tx[tid], uint32(item))
				}
			}
		}
		_ = tx
	}
}

func BenchmarkSwapRandomizeChain(b *testing.B) {
	m := benchModel()
	d := m.Generate(stats.NewRNG(3)).Horizontal()
	r := stats.NewRNG(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SwapRandomize(d, 4, r)
	}
}

func BenchmarkVerticalToHorizontal(b *testing.B) {
	m := benchModel()
	v := m.Generate(stats.NewRNG(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Horizontal()
	}
}

var sinkSupport int

func BenchmarkSupportQuery(b *testing.B) {
	m := benchModel()
	v := m.Generate(stats.NewRNG(6))
	query := []uint32{0, 1, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkSupport = v.Support(query)
	}
}

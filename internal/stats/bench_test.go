package stats

import "testing"

// Micro-benchmarks for the hot statistical primitives: exact tails are
// called once per itemset in Procedure 1 and once per ladder level in
// Procedure 2; the samplers dominate random dataset generation.

func BenchmarkBinomialUpperTail(b *testing.B) {
	bin := Binomial{N: 1000000, P: 1e-4}
	for i := 0; i < b.N; i++ {
		bin.UpperTail(150)
	}
}

func BenchmarkBinomialLogUpperTailDeep(b *testing.B) {
	bin := Binomial{N: 1000000, P: 1e-5}
	for i := 0; i < b.N; i++ {
		bin.LogUpperTail(300)
	}
}

func BenchmarkPoissonUpperTail(b *testing.B) {
	p := Poisson{Lambda: 2.5}
	for i := 0; i < b.N; i++ {
		p.UpperTail(15)
	}
}

func BenchmarkBinomialSampleSmallMean(b *testing.B) {
	r := NewRNG(1)
	bin := Binomial{N: 100000, P: 1e-4} // mean 10: geometric skips
	for i := 0; i < b.N; i++ {
		bin.Sample(r)
	}
}

func BenchmarkSkipSamplerColumn(b *testing.B) {
	r := NewRNG(2)
	const t = 100000
	const f = 1e-3
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSkipSampler(t, f, r)
		for {
			if _, ok := s.Next(); !ok {
				break
			}
		}
	}
}

// BenchmarkNaiveBernoulliColumn is the baseline the skip sampler replaces:
// one coin flip per transaction.
func BenchmarkNaiveBernoulliColumn(b *testing.B) {
	r := NewRNG(3)
	const t = 100000
	const f = 1e-3
	for i := 0; i < b.N; i++ {
		count := 0
		for j := 0; j < t; j++ {
			if r.Float64() < f {
				count++
			}
		}
		_ = count
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(4)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkRNGIntn(b *testing.B) {
	r := NewRNG(5)
	for i := 0; i < b.N; i++ {
		r.Intn(1000003)
	}
}

func BenchmarkPoissonSampleLarge(b *testing.B) {
	r := NewRNG(6)
	p := Poisson{Lambda: 500}
	for i := 0; i < b.N; i++ {
		p.Sample(r)
	}
}

func BenchmarkWeightedSampler(b *testing.B) {
	r := NewRNG(7)
	w := make([]float64, 10000)
	for i := range w {
		w[i] = float64(i + 1)
	}
	ws := NewWeightedSampler(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Sample(r)
	}
}

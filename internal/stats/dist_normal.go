package stats

import "math"

// Normal is the Gaussian distribution with mean Mu and standard deviation
// Sigma. Used for approximation cross-checks and the inverse-CDF helper in
// the goodness-of-fit code.
type Normal struct {
	Mu    float64
	Sigma float64
}

// StdNormal is the standard normal distribution.
var StdNormal = Normal{Mu: 0, Sigma: 1}

// PDF returns the density at x.
func (n Normal) PDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-z*z/2) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns Pr(X <= x).
func (n Normal) CDF(x float64) float64 {
	z := (x - n.Mu) / (n.Sigma * math.Sqrt2)
	return 0.5 * math.Erfc(-z)
}

// UpperTail returns Pr(X >= x) with precision preserved in the far tail.
func (n Normal) UpperTail(x float64) float64 {
	z := (x - n.Mu) / (n.Sigma * math.Sqrt2)
	return 0.5 * math.Erfc(z)
}

// Quantile returns the x with CDF(x) = q, using the Acklam rational
// approximation refined by one Halley step; absolute error is below 1e-9
// across (0, 1).
func (n Normal) Quantile(q float64) float64 {
	if q <= 0 {
		return math.Inf(-1)
	}
	if q >= 1 {
		return math.Inf(1)
	}
	z := stdNormQuantile(q)
	return n.Mu + n.Sigma*z
}

// Coefficients of Acklam's inverse normal CDF approximation.
var (
	acklamA = [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	acklamB = [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	acklamC = [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	acklamD = [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
)

func stdNormQuantile(p float64) float64 {
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((acklamC[0]*q+acklamC[1])*q+acklamC[2])*q+acklamC[3])*q+acklamC[4])*q + acklamC[5]) /
			((((acklamD[0]*q+acklamD[1])*q+acklamD[2])*q+acklamD[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((acklamA[0]*r+acklamA[1])*r+acklamA[2])*r+acklamA[3])*r+acklamA[4])*r + acklamA[5]) * q /
			(((((acklamB[0]*r+acklamB[1])*r+acklamB[2])*r+acklamB[3])*r+acklamB[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((acklamC[0]*q+acklamC[1])*q+acklamC[2])*q+acklamC[3])*q+acklamC[4])*q + acklamC[5]) /
			((((acklamD[0]*q+acklamD[1])*q+acklamD[2])*q+acklamD[3])*q + 1)
	}
	// One Halley refinement against the exact CDF.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// Sample draws one variate.
func (n Normal) Sample(r *RNG) float64 {
	return n.Mu + n.Sigma*r.NormFloat64()
}

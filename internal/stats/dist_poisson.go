package stats

import "math"

// Poisson is the Poisson distribution with rate Lambda. Procedure 2's null
// hypothesis is that the observed count Q_{k,s} of frequent k-itemsets is a
// draw from Poisson(lambda_s); its p-value is the exact upper tail below.
type Poisson struct {
	Lambda float64
}

// Mean returns Lambda.
func (p Poisson) Mean() float64 { return p.Lambda }

// Variance returns Lambda.
func (p Poisson) Variance() float64 { return p.Lambda }

// LogPMF returns ln Pr(X = k).
func (p Poisson) LogPMF(k int) float64 {
	if k < 0 {
		return math.Inf(-1)
	}
	if p.Lambda == 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	return float64(k)*math.Log(p.Lambda) - p.Lambda - LogFactorial(k)
}

// PMF returns Pr(X = k).
func (p Poisson) PMF(k int) float64 { return math.Exp(p.LogPMF(k)) }

// CDF returns Pr(X <= k) = Q(k+1, lambda).
func (p Poisson) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	if p.Lambda == 0 {
		return 1
	}
	return RegUpperGamma(float64(k+1), p.Lambda)
}

// UpperTail returns Pr(X >= s) = P(s, lambda) exactly (regularized lower
// incomplete gamma). This is the Poisson p-value used by Procedure 2.
func (p Poisson) UpperTail(s int) float64 {
	if s <= 0 {
		return 1
	}
	if p.Lambda == 0 {
		return 0
	}
	return RegLowerGamma(float64(s), p.Lambda)
}

// LogUpperTail returns ln Pr(X >= s) with graceful handling of deep tails.
func (p Poisson) LogUpperTail(s int) float64 {
	v := p.UpperTail(s)
	if v > 1e-290 {
		return math.Log(v)
	}
	logSum := math.Inf(-1)
	for k := s; ; k++ {
		lp := p.LogPMF(k)
		logSum = LogSumExp(logSum, lp)
		// Terms decay with ratio lambda/(k+1); once tiny relative to the
		// accumulated sum, stop.
		if lp < logSum-46 {
			break
		}
	}
	return logSum
}

// Quantile returns the smallest k with CDF(k) >= q.
func (p Poisson) Quantile(q float64) int {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return math.MaxInt32
	}
	// Bracket around mean + a few standard deviations, then binary search.
	hi := int(p.Lambda + 10*math.Sqrt(p.Lambda+1) + 10)
	for p.CDF(hi) < q {
		hi *= 2
	}
	lo := 0
	for lo < hi {
		mid := (lo + hi) / 2
		if p.CDF(mid) >= q {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Sample draws one variate. Small rates use Knuth's product method; larger
// rates split additively (Poisson(a+b) = Poisson(a) + Poisson(b)) so the
// product never underflows. Exact for all lambda.
func (p Poisson) Sample(r *RNG) int {
	lam := p.Lambda
	if lam <= 0 {
		return 0
	}
	n := 0
	for lam > 30 {
		// Draw the count that arrives in the first half of the interval.
		n += Poisson{Lambda: lam / 2}.sampleKnuth(r, lam/2)
		lam /= 2
	}
	return n + p.sampleKnuth(r, lam)
}

func (p Poisson) sampleKnuth(r *RNG, lam float64) int {
	l := math.Exp(-lam)
	k := 0
	prod := 1.0
	for {
		prod *= r.Float64()
		if prod <= l {
			return k
		}
		k++
	}
}

package stats

import (
	"math"
	"sort"
)

// Goodness-of-fit machinery used by the test suite and the null-calibration
// example: chi-square tests against discrete distributions, one-sample
// Kolmogorov-Smirnov, and total variation distance between an empirical count
// distribution and a theoretical PMF. The paper's core claim — Q̂_{k,s} is
// approximately Poisson above s_min — is validated with these.

// ChiSquareResult reports a chi-square goodness-of-fit test.
type ChiSquareResult struct {
	Statistic float64 // sum (O-E)^2 / E over the binned support
	DF        int     // degrees of freedom after binning
	PValue    float64 // upper tail of chi-square(DF) at Statistic
}

// ChiSquareTest compares observed counts against expected counts. Adjacent
// cells with expected count below minExpected (commonly 5) are pooled, the
// standard remedy for sparse cells. dfAdjust subtracts estimated-parameter
// degrees of freedom.
func ChiSquareTest(observed []float64, expected []float64, minExpected float64, dfAdjust int) ChiSquareResult {
	if len(observed) != len(expected) {
		panic("stats: chi-square length mismatch")
	}
	var obsPooled, expPooled []float64
	accO, accE := 0.0, 0.0
	for i := range observed {
		accO += observed[i]
		accE += expected[i]
		if accE >= minExpected {
			obsPooled = append(obsPooled, accO)
			expPooled = append(expPooled, accE)
			accO, accE = 0, 0
		}
	}
	if accE > 0 {
		if len(expPooled) > 0 {
			obsPooled[len(obsPooled)-1] += accO
			expPooled[len(expPooled)-1] += accE
		} else {
			obsPooled = append(obsPooled, accO)
			expPooled = append(expPooled, accE)
		}
	}
	stat := 0.0
	for i := range obsPooled {
		d := obsPooled[i] - expPooled[i]
		stat += d * d / expPooled[i]
	}
	df := len(obsPooled) - 1 - dfAdjust
	if df < 1 {
		df = 1
	}
	return ChiSquareResult{
		Statistic: stat,
		DF:        df,
		PValue:    ChiSquareUpperTail(stat, df),
	}
}

// ChiSquareUpperTail returns Pr(ChiSq(df) >= x).
func ChiSquareUpperTail(x float64, df int) float64 {
	if x <= 0 {
		return 1
	}
	return RegUpperGamma(float64(df)/2, x/2)
}

// KSResult reports a one-sample Kolmogorov-Smirnov test.
type KSResult struct {
	Statistic float64 // sup |F_emp - F|
	PValue    float64 // asymptotic Kolmogorov p-value
}

// KSTest performs a one-sample KS test of the sample against the continuous
// CDF cdf. The sample is not modified.
func KSTest(sample []float64, cdf func(float64) float64) KSResult {
	n := len(sample)
	if n == 0 {
		return KSResult{Statistic: 0, PValue: 1}
	}
	xs := append([]float64(nil), sample...)
	sort.Float64s(xs)
	d := 0.0
	for i, x := range xs {
		fx := cdf(x)
		lo := float64(i) / float64(n)
		hi := float64(i+1) / float64(n)
		if v := math.Abs(fx - lo); v > d {
			d = v
		}
		if v := math.Abs(fx - hi); v > d {
			d = v
		}
	}
	return KSResult{Statistic: d, PValue: ksPValue(d, n)}
}

// ksPValue is the asymptotic Kolmogorov distribution upper tail with the
// standard finite-n adjustment.
func ksPValue(d float64, n int) float64 {
	if d <= 0 {
		return 1
	}
	sqrtN := math.Sqrt(float64(n))
	x := (sqrtN + 0.12 + 0.11/sqrtN) * d
	// K(x) = 2 sum_{j>=1} (-1)^{j-1} exp(-2 j^2 x^2)
	sum := 0.0
	for j := 1; j <= 100; j++ {
		term := 2 * math.Exp(-2*float64(j*j)*x*x)
		if j%2 == 1 {
			sum += term
		} else {
			sum -= term
		}
		if term < 1e-12 {
			break
		}
	}
	if sum < 0 {
		sum = 0
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// TotalVariationPoisson returns the total variation distance between the
// empirical distribution of the integer sample and Poisson(lambda):
// (1/2) sum_k |emp(k) - pmf(k)|. Small values certify the Poisson
// approximation that underlies the paper's Theorems 2-3.
func TotalVariationPoisson(sample []int, lambda float64) float64 {
	n := len(sample)
	if n == 0 {
		return 0
	}
	maxK := 0
	counts := map[int]int{}
	for _, v := range sample {
		counts[v]++
		if v > maxK {
			maxK = v
		}
	}
	p := Poisson{Lambda: lambda}
	// Sum over observed support plus enough Poisson mass beyond it.
	limit := maxK
	for p.UpperTail(limit+1) > 1e-12 {
		limit++
	}
	tv := 0.0
	for k := 0; k <= limit; k++ {
		emp := float64(counts[k]) / float64(n)
		tv += math.Abs(emp - p.PMF(k))
	}
	tv += p.UpperTail(limit + 1) // unobserved far tail
	return tv / 2
}

// PoissonChiSquare bins an integer sample and tests it against
// Poisson(lambda). dfAdjust should be 1 when lambda was estimated from the
// same sample.
func PoissonChiSquare(sample []int, lambda float64, dfAdjust int) ChiSquareResult {
	n := len(sample)
	maxK := 0
	for _, v := range sample {
		if v > maxK {
			maxK = v
		}
	}
	p := Poisson{Lambda: lambda}
	obs := make([]float64, maxK+2)
	exp := make([]float64, maxK+2)
	for _, v := range sample {
		obs[v]++
	}
	for k := 0; k <= maxK; k++ {
		exp[k] = float64(n) * p.PMF(k)
	}
	exp[maxK+1] = float64(n) * p.UpperTail(maxK+1)
	return ChiSquareTest(obs, exp, 5, dfAdjust)
}

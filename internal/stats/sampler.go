package stats

// Samplers used by the dataset generators: alias-method weighted sampling,
// Floyd's subset sampling, and reservoir sampling.

// WeightedSampler draws indices proportionally to fixed non-negative weights
// in O(1) per draw after O(n) setup (Vose's alias method).
type WeightedSampler struct {
	prob  []float64
	alias []int
}

// NewWeightedSampler builds an alias table for the given weights. Weights
// must be non-negative with a positive sum.
func NewWeightedSampler(weights []float64) *WeightedSampler {
	n := len(weights)
	if n == 0 {
		panic("stats: WeightedSampler with no weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("stats: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("stats: weights sum to zero")
	}
	prob := make([]float64, n)
	alias := make([]int, n)
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		prob[s] = scaled[s]
		alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		prob[i] = 1
	}
	for _, i := range small {
		prob[i] = 1
	}
	return &WeightedSampler{prob: prob, alias: alias}
}

// Sample returns an index drawn proportionally to the construction weights.
func (w *WeightedSampler) Sample(r *RNG) int {
	i := r.Intn(len(w.prob))
	if r.Float64() < w.prob[i] {
		return i
	}
	return w.alias[i]
}

// SampleKOfN returns k distinct integers from [0, n) using Floyd's algorithm,
// in O(k) expected time and O(k) space. The result is not sorted.
func SampleKOfN(k, n int, r *RNG) []int {
	if k < 0 || k > n {
		panic("stats: SampleKOfN with k out of range")
	}
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// Reservoir maintains a uniform sample of fixed capacity over a stream.
type Reservoir struct {
	items []int
	seen  int
	cap   int
	rng   *RNG
}

// NewReservoir returns a reservoir of the given capacity.
func NewReservoir(capacity int, rng *RNG) *Reservoir {
	return &Reservoir{items: make([]int, 0, capacity), cap: capacity, rng: rng}
}

// Offer presents one stream element to the reservoir.
func (rv *Reservoir) Offer(x int) {
	rv.seen++
	if len(rv.items) < rv.cap {
		rv.items = append(rv.items, x)
		return
	}
	j := rv.rng.Intn(rv.seen)
	if j < rv.cap {
		rv.items[j] = x
	}
}

// Items returns the current sample (shared slice; callers copy if needed).
func (rv *Reservoir) Items() []int { return rv.items }

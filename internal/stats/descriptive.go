package stats

import (
	"math"
	"sort"
)

// Descriptive summaries used by profile extraction and the experiment driver.

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for fewer than 2 values).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the minimum and maximum of xs; it panics on empty input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation on the sorted copy.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	if q <= 0 {
		return ys[0]
	}
	if q >= 1 {
		return ys[len(ys)-1]
	}
	pos := q * float64(len(ys)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(ys) {
		return ys[len(ys)-1]
	}
	return ys[lo]*(1-frac) + ys[lo+1]*frac
}

// Summary bundles the usual five-number-plus-moments description.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Q25    float64
	Median float64
	Q75    float64
	Max    float64
}

// Summarize computes a Summary of xs; it panics on empty input.
func Summarize(xs []float64) Summary {
	min, max := MinMax(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    min,
		Q25:    Quantile(xs, 0.25),
		Median: Quantile(xs, 0.5),
		Q75:    Quantile(xs, 0.75),
		Max:    max,
	}
}

// MeanInt is Mean over an int slice.
func MeanInt(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += float64(x)
	}
	return s / float64(len(xs))
}

// VarianceInt is the unbiased sample variance over an int slice.
func VarianceInt(xs []int) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := MeanInt(xs)
	s := 0.0
	for _, x := range xs {
		d := float64(x) - m
		s += d * d
	}
	return s / float64(n-1)
}

package stats

import "math"

// TruncatedPowerLaw models item frequencies f(rank) = C * rank^(-Theta)
// clamped to [Min, Max] over ranks 1..N. The synthetic benchmark profiles
// (internal/synth) fit Theta and C so that the frequency range and the mean
// transaction length (sum of frequencies) match a target dataset; this is the
// standard shape of item popularity in the FIMI market-basket benchmarks.
type TruncatedPowerLaw struct {
	N     int     // number of ranks (items)
	Theta float64 // decay exponent, >= 0
	C     float64 // scale
	Min   float64 // clamp floor
	Max   float64 // clamp ceiling
}

// Freq returns the frequency assigned to rank r in [1, N].
func (z TruncatedPowerLaw) Freq(r int) float64 {
	if r < 1 || r > z.N {
		panic("stats: power-law rank out of range")
	}
	f := z.C * math.Pow(float64(r), -z.Theta)
	if f > z.Max {
		f = z.Max
	}
	if f < z.Min {
		f = z.Min
	}
	return f
}

// Sum returns the sum of frequencies over all ranks; this equals the expected
// transaction length of a dataset generated with these per-item inclusion
// probabilities.
func (z TruncatedPowerLaw) Sum() float64 {
	total := 0.0
	for r := 1; r <= z.N; r++ {
		total += z.Freq(r)
	}
	return total
}

// Frequencies materializes the full frequency vector, rank order (descending).
func (z TruncatedPowerLaw) Frequencies() []float64 {
	out := make([]float64, z.N)
	for r := 1; r <= z.N; r++ {
		out[r-1] = z.Freq(r)
	}
	return out
}

// FitPowerLaw finds a TruncatedPowerLaw over n ranks with clamp range
// [fmin, fmax] whose frequency sum equals targetSum (the desired mean
// transaction length), by bisecting on the exponent theta with the scale tied
// to the ceiling (C = fmax, so rank 1 sits at the ceiling). The FIMI
// benchmarks all have fmax near the ceiling and a long tail near fmin, which
// this one-parameter family captures.
func FitPowerLaw(n int, fmin, fmax, targetSum float64) TruncatedPowerLaw {
	if fmin < 0 || fmax <= 0 || fmin > fmax {
		panic("stats: FitPowerLaw invalid clamp range")
	}
	if targetSum < float64(n)*fmin {
		targetSum = float64(n) * fmin
	}
	if targetSum > float64(n)*fmax {
		targetSum = float64(n) * fmax
	}
	mk := func(theta float64) TruncatedPowerLaw {
		return TruncatedPowerLaw{N: n, Theta: theta, C: fmax, Min: fmin, Max: fmax}
	}
	// Sum is decreasing in theta: theta=0 gives n*fmax, theta->inf gives
	// roughly fmax + (n-1)*fmin.
	lo, hi := 0.0, 1.0
	for mk(hi).Sum() > targetSum && hi < 64 {
		hi *= 2
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if mk(mid).Sum() > targetSum {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12 {
			break
		}
	}
	return mk((lo + hi) / 2)
}

// Zipf is a bounded Zipf(s, v=1) sampler over {1, ..., N} by inverse-CDF
// binary search on the precomputed normalization table. Used by workload
// generators that need popularity-skewed item draws.
type Zipf struct {
	n   int
	cdf []float64 // cdf[i] = Pr(X <= i+1)
}

// NewZipf builds a Zipf sampler with exponent s over {1..n}.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf with n <= 0")
	}
	w := make([]float64, n)
	total := 0.0
	for i := 1; i <= n; i++ {
		w[i-1] = math.Pow(float64(i), -s)
		total += w[i-1]
	}
	cdf := make([]float64, n)
	acc := 0.0
	for i, wi := range w {
		acc += wi / total
		cdf[i] = acc
	}
	cdf[n-1] = 1
	return &Zipf{n: n, cdf: cdf}
}

// Sample draws a rank in [1, n].
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] >= u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo + 1
}

// PMF returns Pr(X = k) for k in [1, n].
func (z *Zipf) PMF(k int) float64 {
	if k < 1 || k > z.n {
		return 0
	}
	if k == 1 {
		return z.cdf[0]
	}
	return z.cdf[k-1] - z.cdf[k-2]
}

package stats

import "math"

// Binomial is the distribution of the number of successes in N independent
// Bernoulli(P) trials. The paper's Procedure 1 computes per-itemset p-values
// Pr(Bin(t, f_X) >= s_X); the random dataset model draws per-item occurrence
// counts from Bin(t, f_i).
type Binomial struct {
	N int
	P float64
}

// Mean returns N*P.
func (b Binomial) Mean() float64 { return float64(b.N) * b.P }

// Variance returns N*P*(1-P).
func (b Binomial) Variance() float64 { return float64(b.N) * b.P * (1 - b.P) }

// LogPMF returns ln Pr(X = k).
func (b Binomial) LogPMF(k int) float64 {
	if k < 0 || k > b.N {
		return math.Inf(-1)
	}
	if b.P == 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	if b.P == 1 {
		if k == b.N {
			return 0
		}
		return math.Inf(-1)
	}
	return LogChoose(b.N, k) + float64(k)*math.Log(b.P) +
		float64(b.N-k)*math.Log1p(-b.P)
}

// PMF returns Pr(X = k).
func (b Binomial) PMF(k int) float64 { return math.Exp(b.LogPMF(k)) }

// CDF returns Pr(X <= k).
func (b Binomial) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= b.N {
		return 1
	}
	return 1 - b.UpperTail(k+1)
}

// UpperTail returns the survival probability Pr(X >= s), computed exactly via
// the regularized incomplete beta identity Pr(X >= s) = I_p(s, n-s+1). This
// is the p-value of Procedure 1's per-itemset test.
func (b Binomial) UpperTail(s int) float64 {
	if s <= 0 {
		return 1
	}
	if s > b.N {
		return 0
	}
	if b.P <= 0 {
		return 0
	}
	if b.P >= 1 {
		return 1
	}
	return RegIncBeta(float64(s), float64(b.N-s+1), b.P)
}

// LogUpperTail returns ln Pr(X >= s), staying in log space when the tail
// underflows float64 (supports deep in the tail have p-values below 1e-308).
func (b Binomial) LogUpperTail(s int) float64 {
	p := b.UpperTail(s)
	if p > 1e-290 {
		return math.Log(p)
	}
	// Sum the PMF from s upward in log space; the terms decay geometrically
	// with ratio < (n-s)p / (s(1-p)), so a few hundred terms suffice.
	logSum := math.Inf(-1)
	for k := s; k <= b.N; k++ {
		lp := b.LogPMF(k)
		logSum = LogSumExp(logSum, lp)
		if lp < logSum-46 { // additional terms below 1e-20 relative
			break
		}
	}
	return logSum
}

// Quantile returns the smallest k with CDF(k) >= q, for q in [0, 1].
func (b Binomial) Quantile(q float64) int {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return b.N
	}
	lo, hi := 0, b.N
	for lo < hi {
		mid := (lo + hi) / 2
		if b.CDF(mid) >= q {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Sample draws one variate. For p <= 1/2 it counts successes via geometric
// skips, costing O(np) expected time; for p > 1/2 it samples the complement.
// Exact (no normal approximation), which the statistical tests rely on.
func (b Binomial) Sample(r *RNG) int {
	if b.P <= 0 {
		return 0
	}
	if b.P >= 1 {
		return b.N
	}
	if b.P > 0.5 {
		return b.N - Binomial{N: b.N, P: 1 - b.P}.Sample(r)
	}
	// Successive gaps between successes are Geometric(p); position advances
	// by gap+1 each success.
	count := 0
	pos := 0
	logq := math.Log1p(-b.P)
	for {
		gap := int(math.Floor(math.Log(r.Float64Open()) / logq))
		pos += gap + 1
		if pos > b.N {
			return count
		}
		count++
	}
}

package stats

import (
	"math"
	"sync"
)

// This file implements the special functions behind the exact distribution
// tails: log-gamma helpers, the regularized incomplete beta function (for
// Binomial tails) and the regularized incomplete gamma functions (for Poisson
// tails). The continued-fraction evaluations follow the modified Lentz
// algorithm.

const (
	cfMaxIter = 500
	cfEps     = 1e-15
	cfTiny    = 1e-300
)

// LogGamma returns ln(Gamma(x)) for x > 0.
func LogGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// logFactCache memoizes ln(n!) for small n; the mining and Chen-Stein code
// calls LogFactorial in tight loops with small arguments.
var (
	logFactOnce  sync.Once
	logFactSmall []float64
)

const logFactCacheSize = 4096

func initLogFact() {
	logFactSmall = make([]float64, logFactCacheSize)
	for n := 2; n < logFactCacheSize; n++ {
		logFactSmall[n] = logFactSmall[n-1] + math.Log(float64(n))
	}
}

// LogFactorial returns ln(n!). It panics for negative n.
func LogFactorial(n int) float64 {
	if n < 0 {
		panic("stats: LogFactorial of negative n")
	}
	logFactOnce.Do(initLogFact)
	if n < logFactCacheSize {
		return logFactSmall[n]
	}
	return LogGamma(float64(n) + 1)
}

// LogChoose returns ln(C(n, k)), with LogChoose(n, k) = -Inf when k < 0 or
// k > n (the binomial coefficient is zero there).
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}

// Choose returns C(n, k) as a float64 (which may overflow to +Inf for very
// large arguments; callers needing log-space use LogChoose).
func Choose(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	return math.Exp(LogChoose(n, k))
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b) for
// a, b > 0 and x in [0, 1]. The Binomial upper tail is
// Pr(Bin(n,p) >= s) = I_p(s, n-s+1).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	case a <= 0 || b <= 0:
		panic("stats: RegIncBeta with non-positive shape")
	}
	// Front factor x^a (1-x)^b / (a B(a,b)), computed in log space.
	logFront := a*math.Log(x) + b*math.Log1p(-x) +
		LogGamma(a+b) - LogGamma(a) - LogGamma(b)
	// Use the continued fraction in its rapidly converging region.
	if x < (a+1)/(a+b+2) {
		return math.Exp(logFront) * betaCF(a, b, x) / a
	}
	return 1 - math.Exp(logFront)*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function by
// the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < cfTiny {
		d = cfTiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= cfMaxIter; m++ {
		m2 := float64(2 * m)
		fm := float64(m)
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < cfTiny {
			d = cfTiny
		}
		c = 1 + aa/c
		if math.Abs(c) < cfTiny {
			c = cfTiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < cfTiny {
			d = cfTiny
		}
		c = 1 + aa/c
		if math.Abs(c) < cfTiny {
			c = cfTiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < cfEps {
			return h
		}
	}
	return h // converged to working precision or exhausted iterations
}

// RegLowerGamma returns the regularized lower incomplete gamma function
// P(a, x) = gamma(a, x) / Gamma(a) for a > 0, x >= 0. The Poisson upper tail
// is Pr(Poisson(lambda) >= k) = P(k, lambda) for integer k >= 1.
func RegLowerGamma(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		panic("stats: RegLowerGamma domain error")
	case x == 0:
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaCF(a, x)
}

// RegUpperGamma returns Q(a, x) = 1 - P(a, x).
func RegUpperGamma(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		panic("stats: RegUpperGamma domain error")
	case x == 0:
		return 1
	}
	if x < a+1 {
		return 1 - gammaSeries(a, x)
	}
	return gammaCF(a, x)
}

// gammaSeries evaluates P(a, x) by its power series (good for x < a+1).
func gammaSeries(a, x float64) float64 {
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < cfMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*cfEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-LogGamma(a))
}

// gammaCF evaluates Q(a, x) by continued fraction (good for x >= a+1).
func gammaCF(a, x float64) float64 {
	b := x + 1 - a
	c := 1 / cfTiny
	d := 1 / b
	h := d
	for i := 1; i <= cfMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < cfTiny {
			d = cfTiny
		}
		c = b + an/c
		if math.Abs(c) < cfTiny {
			c = cfTiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < cfEps {
			break
		}
	}
	return h * math.Exp(-x+a*math.Log(x)-LogGamma(a))
}

// Erf returns the error function (thin wrapper for discoverability next to
// the other special functions).
func Erf(x float64) float64 { return math.Erf(x) }

// Log1mExp returns log(1 - exp(x)) for x < 0, switching between expm1 and
// log1p formulations to preserve precision near both ends.
func Log1mExp(x float64) float64 {
	if x >= 0 {
		panic("stats: Log1mExp requires x < 0")
	}
	if x > -math.Ln2 {
		return math.Log(-math.Expm1(x))
	}
	return math.Log1p(-math.Exp(x))
}

// LogSumExp returns log(exp(a) + exp(b)) robustly.
func LogSumExp(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	m := math.Max(a, b)
	return m + math.Log(math.Exp(a-m)+math.Exp(b-m))
}

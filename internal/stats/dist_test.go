package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, c := range []Binomial{{10, 0.3}, {50, 0.05}, {7, 0.9}, {1, 0.5}, {100, 0.001}} {
		sum := 0.0
		for k := 0; k <= c.N; k++ {
			sum += c.PMF(k)
		}
		if !almostEq(sum, 1, 1e-10) {
			t.Errorf("Binomial%v PMF sums to %v", c, sum)
		}
	}
}

func TestBinomialCDFTailComplement(t *testing.T) {
	b := Binomial{N: 40, P: 0.17}
	for s := 0; s <= 41; s++ {
		lhs := b.CDF(s-1) + b.UpperTail(s)
		if !almostEq(lhs, 1, 1e-10) {
			t.Errorf("CDF(%d)+Tail(%d) = %v", s-1, s, lhs)
		}
	}
}

func TestBinomialDegenerate(t *testing.T) {
	b0 := Binomial{N: 10, P: 0}
	if b0.PMF(0) != 1 || b0.UpperTail(1) != 0 || b0.CDF(0) != 1 {
		t.Error("Binomial p=0 should be point mass at 0")
	}
	b1 := Binomial{N: 10, P: 1}
	if b1.PMF(10) != 1 || b1.UpperTail(10) != 1 || b1.CDF(9) != 0 {
		t.Error("Binomial p=1 should be point mass at N")
	}
}

func TestBinomialQuantileInverse(t *testing.T) {
	b := Binomial{N: 30, P: 0.4}
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		k := b.Quantile(q)
		if b.CDF(k) < q {
			t.Errorf("CDF(Quantile(%v)) = %v < q", q, b.CDF(k))
		}
		if k > 0 && b.CDF(k-1) >= q {
			t.Errorf("Quantile(%v) = %d is not minimal", q, k)
		}
	}
}

func TestBinomialLogUpperTailDeep(t *testing.T) {
	// Deep tail that underflows float64: check against direct log-space sum.
	b := Binomial{N: 100000, P: 1e-4}
	s := 100 // mean is 10; Pr(X >= 100) is astronomically small
	got := b.LogUpperTail(s)
	want := math.Inf(-1)
	for k := s; k <= s+200; k++ {
		want = LogSumExp(want, b.LogPMF(k))
	}
	if !almostEq(got, want, 1e-6) {
		t.Errorf("LogUpperTail = %v, want %v", got, want)
	}
	if got > -100 {
		t.Errorf("deep tail not deep: %v", got)
	}
}

func TestBinomialSampleMoments(t *testing.T) {
	r := NewRNG(42)
	cases := []Binomial{{1000, 0.01}, {50, 0.5}, {200, 0.9}, {10, 0.05}}
	const trials = 20000
	for _, b := range cases {
		sum, sumSq := 0.0, 0.0
		for i := 0; i < trials; i++ {
			x := float64(b.Sample(r))
			sum += x
			sumSq += x * x
		}
		mean := sum / trials
		variance := sumSq/trials - mean*mean
		seMean := math.Sqrt(b.Variance() / trials)
		if math.Abs(mean-b.Mean()) > 6*seMean+1e-9 {
			t.Errorf("Binomial%v sample mean %v, want %v", b, mean, b.Mean())
		}
		if b.Variance() > 0 && math.Abs(variance-b.Variance()) > 0.15*b.Variance()+0.1 {
			t.Errorf("Binomial%v sample var %v, want %v", b, variance, b.Variance())
		}
	}
}

func TestBinomialSampleRange(t *testing.T) {
	r := NewRNG(7)
	f := func(nRaw uint8, pRaw uint16) bool {
		n := int(nRaw)%100 + 1
		p := float64(pRaw) / 65535
		b := Binomial{N: n, P: p}
		x := b.Sample(r)
		return x >= 0 && x <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPoissonPMFSumsToOne(t *testing.T) {
	for _, lam := range []float64{0.1, 1, 5, 30, 200} {
		p := Poisson{Lambda: lam}
		sum := 0.0
		limit := int(lam + 20*math.Sqrt(lam+1) + 20)
		for k := 0; k <= limit; k++ {
			sum += p.PMF(k)
		}
		if !almostEq(sum, 1, 1e-9) {
			t.Errorf("Poisson(%v) PMF sums to %v", lam, sum)
		}
	}
}

func TestPoissonCDFTailComplement(t *testing.T) {
	p := Poisson{Lambda: 7.3}
	for s := 0; s <= 40; s++ {
		lhs := p.CDF(s-1) + p.UpperTail(s)
		if !almostEq(lhs, 1, 1e-10) {
			t.Errorf("CDF(%d)+Tail(%d) = %v", s-1, s, lhs)
		}
	}
}

func TestPoissonZeroLambda(t *testing.T) {
	p := Poisson{Lambda: 0}
	if p.PMF(0) != 1 || p.UpperTail(1) != 0 || p.CDF(0) != 1 {
		t.Error("Poisson(0) should be point mass at 0")
	}
	r := NewRNG(1)
	if p.Sample(r) != 0 {
		t.Error("Poisson(0) sample should be 0")
	}
}

func TestPoissonQuantileInverse(t *testing.T) {
	p := Poisson{Lambda: 12.5}
	for _, q := range []float64{0.001, 0.05, 0.5, 0.95, 0.999} {
		k := p.Quantile(q)
		if p.CDF(k) < q {
			t.Errorf("CDF(Quantile(%v)) < q", q)
		}
		if k > 0 && p.CDF(k-1) >= q {
			t.Errorf("Quantile(%v) = %d not minimal", q, k)
		}
	}
}

func TestPoissonSampleMoments(t *testing.T) {
	r := NewRNG(99)
	const trials = 20000
	for _, lam := range []float64{0.5, 4, 25, 120} {
		p := Poisson{Lambda: lam}
		sum, sumSq := 0.0, 0.0
		for i := 0; i < trials; i++ {
			x := float64(p.Sample(r))
			sum += x
			sumSq += x * x
		}
		mean := sum / trials
		variance := sumSq/trials - mean*mean
		seMean := math.Sqrt(lam / trials)
		if math.Abs(mean-lam) > 6*seMean {
			t.Errorf("Poisson(%v) sample mean %v", lam, mean)
		}
		if math.Abs(variance-lam) > 0.15*lam+0.1 {
			t.Errorf("Poisson(%v) sample var %v", lam, variance)
		}
	}
}

func TestPoissonSampleChiSquare(t *testing.T) {
	r := NewRNG(123)
	p := Poisson{Lambda: 6}
	sample := make([]int, 20000)
	for i := range sample {
		sample[i] = p.Sample(r)
	}
	res := PoissonChiSquare(sample, 6, 0)
	if res.PValue < 1e-4 {
		t.Errorf("Poisson sampler fails chi-square: p=%v stat=%v df=%d",
			res.PValue, res.Statistic, res.DF)
	}
}

func TestNormalCDFQuantileRoundTrip(t *testing.T) {
	n := Normal{Mu: 3, Sigma: 2}
	for _, q := range []float64{1e-6, 0.001, 0.1, 0.5, 0.9, 0.999, 1 - 1e-6} {
		x := n.Quantile(q)
		if got := n.CDF(x); !almostEq(got, q, 1e-7) {
			t.Errorf("CDF(Quantile(%v)) = %v", q, got)
		}
	}
}

func TestNormalKnownValues(t *testing.T) {
	if got := StdNormal.CDF(0); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("Phi(0) = %v", got)
	}
	if got := StdNormal.CDF(1.959963984540054); !almostEq(got, 0.975, 1e-9) {
		t.Errorf("Phi(1.96) = %v", got)
	}
	if got := StdNormal.UpperTail(3); !almostEq(got, 0.0013498980316301, 1e-9) {
		t.Errorf("upper tail at 3 = %v", got)
	}
}

func TestGeometricPMFAndSampler(t *testing.T) {
	g := Geometric{P: 0.25}
	sum := 0.0
	for k := 0; k < 200; k++ {
		sum += g.PMF(k)
	}
	if !almostEq(sum, 1, 1e-10) {
		t.Errorf("Geometric PMF sums to %v", sum)
	}
	r := NewRNG(5)
	const trials = 50000
	total := 0.0
	for i := 0; i < trials; i++ {
		total += float64(g.Sample(r))
	}
	mean := total / trials
	if math.Abs(mean-g.Mean()) > 0.08 {
		t.Errorf("Geometric sample mean %v, want %v", mean, g.Mean())
	}
}

func TestSkipSamplerMatchesBernoulli(t *testing.T) {
	// The set of positions visited by SkipSampler(n, p) must be distributed
	// like independent Bernoulli(p) indicators: count has Binomial(n, p)
	// mean, positions strictly increasing within range.
	r := NewRNG(321)
	n, p := 10000, 0.01
	const trials = 2000
	total := 0
	for i := 0; i < trials; i++ {
		s := NewSkipSampler(n, p, r)
		prev := -1
		for {
			pos, ok := s.Next()
			if !ok {
				break
			}
			if pos <= prev || pos >= n {
				t.Fatalf("positions not strictly increasing in range: %d after %d", pos, prev)
			}
			prev = pos
			total++
		}
	}
	mean := float64(total) / trials
	want := float64(n) * p
	se := math.Sqrt(want * (1 - p) / trials)
	if math.Abs(mean-want) > 6*se {
		t.Errorf("SkipSampler mean count %v, want %v", mean, want)
	}
}

func TestSkipSamplerEdgeCases(t *testing.T) {
	r := NewRNG(1)
	s := NewSkipSampler(100, 0, r)
	if _, ok := s.Next(); ok {
		t.Error("p=0 should yield nothing")
	}
	s = NewSkipSampler(5, 1, r)
	for i := 0; i < 5; i++ {
		pos, ok := s.Next()
		if !ok || pos != i {
			t.Fatalf("p=1 should yield every position: got %d,%v at step %d", pos, ok, i)
		}
	}
	if _, ok := s.Next(); ok {
		t.Error("p=1 sampler should exhaust at n")
	}
}

func TestTruncatedPowerLawFit(t *testing.T) {
	n, fmin, fmax, target := 1000, 1e-4, 0.5, 8.0
	z := FitPowerLaw(n, fmin, fmax, target)
	if got := z.Sum(); math.Abs(got-target) > 0.05*target {
		t.Errorf("fitted sum %v, want %v", got, target)
	}
	fs := z.Frequencies()
	for i, f := range fs {
		if f < fmin-1e-15 || f > fmax+1e-15 {
			t.Fatalf("frequency %v at rank %d outside clamp", f, i+1)
		}
		if i > 0 && f > fs[i-1]+1e-15 {
			t.Fatalf("frequencies not non-increasing at rank %d", i+1)
		}
	}
}

func TestZipfSampler(t *testing.T) {
	z := NewZipf(50, 1.2)
	r := NewRNG(8)
	counts := make([]float64, 50)
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[z.Sample(r)-1]++
	}
	expected := make([]float64, 50)
	for k := 1; k <= 50; k++ {
		expected[k-1] = trials * z.PMF(k)
	}
	res := ChiSquareTest(counts, expected, 5, 0)
	if res.PValue < 1e-4 {
		t.Errorf("Zipf sampler chi-square p=%v", res.PValue)
	}
}

func TestHypergeometricPMFSumsToOne(t *testing.T) {
	cases := []Hypergeometric{
		{N: 20, K: 7, Draws: 5},
		{N: 50, K: 25, Draws: 10},
		{N: 10, K: 10, Draws: 3},
		{N: 10, K: 0, Draws: 3},
		{N: 8, K: 5, Draws: 7}, // lo > 0
	}
	for _, h := range cases {
		sum := 0.0
		for x := 0; x <= h.Draws; x++ {
			sum += h.PMF(x)
		}
		if !almostEq(sum, 1, 1e-10) {
			t.Errorf("Hypergeometric%+v PMF sums to %v", h, sum)
		}
	}
}

func TestHypergeometricTailComplement(t *testing.T) {
	h := Hypergeometric{N: 30, K: 12, Draws: 9}
	for x := 0; x <= 10; x++ {
		lhs := h.CDF(x-1) + h.UpperTail(x)
		if !almostEq(lhs, 1, 1e-10) {
			t.Errorf("CDF(%d)+Tail(%d) = %v", x-1, x, lhs)
		}
	}
}

func TestHypergeometricKnownValue(t *testing.T) {
	// Pr(X = 2) for N=10, K=4, draws=3: C(4,2)C(6,1)/C(10,3) = 36/120 = 0.3.
	h := Hypergeometric{N: 10, K: 4, Draws: 3}
	if got := h.PMF(2); !almostEq(got, 0.3, 1e-12) {
		t.Errorf("PMF(2) = %v, want 0.3", got)
	}
	if got := h.Mean(); !almostEq(got, 1.2, 1e-12) {
		t.Errorf("mean = %v", got)
	}
}

func TestHypergeometricSampleMoments(t *testing.T) {
	r := NewRNG(404)
	h := Hypergeometric{N: 100, K: 30, Draws: 20}
	const trials = 30000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < trials; i++ {
		x := float64(h.Sample(r))
		sum += x
		sumSq += x * x
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean-h.Mean()) > 0.05 {
		t.Errorf("sample mean %v, want %v", mean, h.Mean())
	}
	if math.Abs(variance-h.Variance()) > 0.15*h.Variance() {
		t.Errorf("sample var %v, want %v", variance, h.Variance())
	}
}

func TestFisherExactAgainstBinomialLimit(t *testing.T) {
	// For t >> draws the hypergeometric approaches Binomial(suppB, suppA/t).
	t_, suppA, suppB, joint := 100000, 500, 200, 5
	fisher := FisherExactUpper(t_, suppA, suppB, joint)
	binom := Binomial{N: suppB, P: float64(suppA) / float64(t_)}.UpperTail(joint)
	if math.Abs(fisher-binom) > 0.05*binom {
		t.Errorf("Fisher %v vs Binomial limit %v", fisher, binom)
	}
	if FisherExactUpper(100, 50, 50, 0) != 1 {
		t.Error("tail at support lower bound should be 1")
	}
}

package stats

import "math"

// Geometric is the distribution of the number of failures before the first
// success in Bernoulli(P) trials, supported on {0, 1, 2, ...}. The random
// dataset generator uses geometric gaps to place item occurrences in
// O(expected occurrences) time instead of O(transactions).
type Geometric struct {
	P float64
}

// Mean returns (1-P)/P.
func (g Geometric) Mean() float64 { return (1 - g.P) / g.P }

// Variance returns (1-P)/P^2.
func (g Geometric) Variance() float64 { return (1 - g.P) / (g.P * g.P) }

// PMF returns Pr(X = k) = (1-p)^k p.
func (g Geometric) PMF(k int) float64 {
	if k < 0 {
		return 0
	}
	return math.Exp(float64(k)*math.Log1p(-g.P)) * g.P
}

// CDF returns Pr(X <= k) = 1 - (1-p)^{k+1}.
func (g Geometric) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	return -math.Expm1(float64(k+1) * math.Log1p(-g.P))
}

// Sample draws one variate by inversion.
func (g Geometric) Sample(r *RNG) int {
	if g.P >= 1 {
		return 0
	}
	if g.P <= 0 {
		panic("stats: Geometric with p <= 0")
	}
	return int(math.Floor(math.Log(r.Float64Open()) / math.Log1p(-g.P)))
}

// SkipSampler iterates the success positions of a Bernoulli(p) process over
// positions 0..n-1, visiting only successes. Expected cost is O(np); this is
// how the random-model generator fills a column of t transactions with an
// item of frequency f without touching the other (1-f)t rows.
type SkipSampler struct {
	n    int
	pos  int
	logq float64
	rng  *RNG
	done bool
}

// NewSkipSampler returns a sampler over positions [0, n) with success
// probability p per position.
func NewSkipSampler(n int, p float64, rng *RNG) *SkipSampler {
	s := &SkipSampler{n: n, pos: -1, rng: rng}
	switch {
	case p <= 0:
		s.done = true
	case p >= 1:
		s.logq = 0 // signals "every position"
	default:
		s.logq = math.Log1p(-p)
	}
	return s
}

// Next returns the next success position and true, or (0, false) when the
// range is exhausted.
func (s *SkipSampler) Next() (int, bool) {
	if s.done {
		return 0, false
	}
	if s.logq == 0 { // p >= 1
		s.pos++
	} else {
		gap := int(math.Floor(math.Log(s.rng.Float64Open()) / s.logq))
		s.pos += gap + 1
	}
	if s.pos >= s.n {
		s.done = true
		return 0, false
	}
	return s.pos, true
}

package stats

import "math"

// Hypergeometric is the distribution of the number of successes in Draws
// draws without replacement from a population of size N containing K
// successes. Fisher's exact test — the margin-conditional significance test
// for association rules and 2x2 contingency tables — is its upper tail.
type Hypergeometric struct {
	N     int // population size
	K     int // successes in the population
	Draws int // sample size
}

// supportRange returns the attainable values [lo, hi].
func (h Hypergeometric) supportRange() (lo, hi int) {
	lo = h.Draws + h.K - h.N
	if lo < 0 {
		lo = 0
	}
	hi = h.Draws
	if h.K < hi {
		hi = h.K
	}
	return
}

// Mean returns Draws*K/N.
func (h Hypergeometric) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Draws) * float64(h.K) / float64(h.N)
}

// Variance returns the sampling-without-replacement variance.
func (h Hypergeometric) Variance() float64 {
	if h.N <= 1 {
		return 0
	}
	n, k, d := float64(h.N), float64(h.K), float64(h.Draws)
	return d * (k / n) * (1 - k/n) * (n - d) / (n - 1)
}

// LogPMF returns ln Pr(X = x).
func (h Hypergeometric) LogPMF(x int) float64 {
	lo, hi := h.supportRange()
	if x < lo || x > hi {
		return math.Inf(-1)
	}
	return LogChoose(h.K, x) + LogChoose(h.N-h.K, h.Draws-x) - LogChoose(h.N, h.Draws)
}

// PMF returns Pr(X = x).
func (h Hypergeometric) PMF(x int) float64 { return math.Exp(h.LogPMF(x)) }

// CDF returns Pr(X <= x) by summation over the (short) support.
func (h Hypergeometric) CDF(x int) float64 {
	lo, hi := h.supportRange()
	if x < lo {
		return 0
	}
	if x >= hi {
		return 1
	}
	sum := 0.0
	for v := lo; v <= x; v++ {
		sum += h.PMF(v)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// UpperTail returns Pr(X >= x) — the Fisher exact p-value when x is the
// observed joint count of a 2x2 table with these margins.
func (h Hypergeometric) UpperTail(x int) float64 {
	lo, hi := h.supportRange()
	if x <= lo {
		return 1
	}
	if x > hi {
		return 0
	}
	sum := 0.0
	for v := x; v <= hi; v++ {
		sum += h.PMF(v)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// Sample draws one variate by sequential sampling without replacement.
func (h Hypergeometric) Sample(r *RNG) int {
	remainingK := h.K
	remainingN := h.N
	hits := 0
	for i := 0; i < h.Draws; i++ {
		if remainingN <= 0 {
			break
		}
		if r.Float64() < float64(remainingK)/float64(remainingN) {
			hits++
			remainingK--
		}
		remainingN--
	}
	return hits
}

// FisherExactUpper returns the one-sided Fisher exact p-value for observing
// at least `joint` co-occurrences given the margins: suppA transactions
// contain A, suppB contain B, out of t total. Under the null (A and B
// independent given margins), the joint count is Hypergeometric(t, suppA,
// suppB).
func FisherExactUpper(t, suppA, suppB, joint int) float64 {
	return Hypergeometric{N: t, K: suppA, Draws: suppB}.UpperTail(joint)
}

package stats

import (
	"math"
	"testing"
)

func TestRNGDeterministicBySeed(t *testing.T) {
	a, b := NewRNG(12345), NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(12346)
	same := 0
	a2 := NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d collisions in 1000 draws", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	// Must not be stuck at zero.
	allZero := true
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("zero seed produced all-zero stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(77)
	for i := 0; i < 100000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of range: %v", u)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := NewRNG(31337)
	const bins = 20
	const trials = 200000
	counts := make([]float64, bins)
	for i := 0; i < trials; i++ {
		counts[int(r.Float64()*bins)]++
	}
	expected := make([]float64, bins)
	for i := range expected {
		expected[i] = trials / bins
	}
	res := ChiSquareTest(counts, expected, 5, 0)
	if res.PValue < 1e-4 {
		t.Errorf("uniformity chi-square p=%v", res.PValue)
	}
}

func TestIntnUnbiased(t *testing.T) {
	r := NewRNG(2024)
	const n = 7
	const trials = 140000
	counts := make([]float64, n)
	for i := 0; i < trials; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	expected := make([]float64, n)
	for i := range expected {
		expected[i] = trials / n
	}
	res := ChiSquareTest(counts, expected, 5, 0)
	if res.PValue < 1e-4 {
		t.Errorf("Intn chi-square p=%v", res.PValue)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(55)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(4242)
	const trials = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < trials; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / trials
	variance := sumSq / trials
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %v", variance)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(9)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split children collide %d times", same)
	}
}

func TestWeightedSampler(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	ws := NewWeightedSampler(weights)
	r := NewRNG(66)
	const trials = 100000
	counts := make([]float64, len(weights))
	for i := 0; i < trials; i++ {
		counts[ws.Sample(r)]++
	}
	expected := make([]float64, len(weights))
	for i, w := range weights {
		expected[i] = trials * w / 10
	}
	res := ChiSquareTest(counts, expected, 5, 0)
	if res.PValue < 1e-4 {
		t.Errorf("alias sampler chi-square p=%v", res.PValue)
	}
}

func TestSampleKOfN(t *testing.T) {
	r := NewRNG(17)
	for trial := 0; trial < 200; trial++ {
		k, n := 5, 20
		s := SampleKOfN(k, n, r)
		if len(s) != k {
			t.Fatalf("wrong size %d", len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("invalid sample %v", s)
			}
			seen[v] = true
		}
	}
	// k = n must return everything.
	s := SampleKOfN(10, 10, r)
	if len(s) != 10 {
		t.Fatal("k=n sample wrong size")
	}
}

func TestSampleKOfNUniform(t *testing.T) {
	// Each element should appear with probability k/n.
	r := NewRNG(23)
	const trials = 50000
	k, n := 3, 10
	counts := make([]float64, n)
	for i := 0; i < trials; i++ {
		for _, v := range SampleKOfN(k, n, r) {
			counts[v]++
		}
	}
	expected := make([]float64, n)
	for i := range expected {
		expected[i] = trials * float64(k) / float64(n)
	}
	res := ChiSquareTest(counts, expected, 5, 0)
	if res.PValue < 1e-4 {
		t.Errorf("Floyd sampling chi-square p=%v", res.PValue)
	}
}

func TestReservoir(t *testing.T) {
	r := NewRNG(3)
	const trials = 30000
	const streamLen = 50
	const capacity = 5
	counts := make([]float64, streamLen)
	for i := 0; i < trials; i++ {
		rv := NewReservoir(capacity, r)
		for x := 0; x < streamLen; x++ {
			rv.Offer(x)
		}
		for _, v := range rv.Items() {
			counts[v]++
		}
	}
	expected := make([]float64, streamLen)
	for i := range expected {
		expected[i] = trials * float64(capacity) / float64(streamLen)
	}
	res := ChiSquareTest(counts, expected, 5, 0)
	if res.PValue < 1e-4 {
		t.Errorf("reservoir chi-square p=%v", res.PValue)
	}
}

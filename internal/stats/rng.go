// Package stats provides the statistical substrate for sigfim: special
// functions, discrete distributions with exact tails, random samplers, and
// goodness-of-fit tests.
//
// Everything in this package is implemented from scratch on top of the Go
// standard library (math only). The distributions expose exact upper tails
// (survival functions) because the paper's procedures compute p-values of the
// form Pr(Bin(t,f) >= s) and Pr(Poisson(lambda) >= q), where naive summation
// would be both slow and numerically unstable.
package stats

import "math"

// RNG is a small, fast, seedable pseudo-random generator based on
// xoshiro256**. It is deliberately not safe for concurrent use; callers that
// parallelize create one RNG per goroutine via Split.
//
// A hand-rolled generator (rather than math/rand) keeps replicate streams
// reproducible across Go versions, which matters for the Monte Carlo
// experiments: EXPERIMENTS.md records numbers tied to specific seeds.
type RNG struct {
	s [4]uint64
}

// splitmix64 is the recommended seeding generator for xoshiro: it guarantees
// the four words of state are well mixed even for small consecutive seeds.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from the given seed. Two RNGs built from
// the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent generator from the current one. It consumes
// one value from the parent stream, so repeated Splits yield distinct
// children. Used to hand one RNG per worker goroutine.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in (0, 1); it never returns 0, which
// keeps log(U) finite in exponential/geometric inversions.
func (r *RNG) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	tmp := a1*b0 + w0>>32
	w1, w2 := tmp&mask, tmp>>32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal variate (polar Marsaglia method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an Exp(1) variate by inversion.
func (r *RNG) ExpFloat64() float64 {
	return -math.Log(r.Float64Open())
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

func TestLogFactorial(t *testing.T) {
	want := 0.0
	for n := 0; n <= 200; n++ {
		if n > 0 {
			want += math.Log(float64(n))
		}
		if got := LogFactorial(n); !almostEq(got, want, 1e-10) {
			t.Fatalf("LogFactorial(%d) = %v, want %v", n, got, want)
		}
	}
	// Beyond the cache boundary it must agree with Lgamma.
	for _, n := range []int{logFactCacheSize, logFactCacheSize + 1, 100000} {
		want, _ := math.Lgamma(float64(n) + 1)
		if got := LogFactorial(n); !almostEq(got, want, 1e-12) {
			t.Fatalf("LogFactorial(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestLogChoose(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, math.Log(10)},
		{10, 0, 0},
		{10, 10, 0},
		{52, 5, math.Log(2598960)},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := LogChoose(c.n, c.k); !almostEq(got, c.want, 1e-10) {
			t.Errorf("LogChoose(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	if !math.IsInf(LogChoose(5, 6), -1) || !math.IsInf(LogChoose(5, -1), -1) {
		t.Error("LogChoose outside support should be -Inf")
	}
}

func TestChoosePascalIdentity(t *testing.T) {
	// C(n,k) = C(n-1,k-1) + C(n-1,k) for moderate n.
	for n := 2; n <= 60; n++ {
		for k := 1; k < n; k++ {
			lhs := Choose(n, k)
			rhs := Choose(n-1, k-1) + Choose(n-1, k)
			if !almostEq(lhs, rhs, 1e-9) {
				t.Fatalf("Pascal identity fails at n=%d k=%d: %v vs %v", n, k, lhs, rhs)
			}
		}
	}
}

// Brute-force binomial tail for validation.
func bruteBinTail(n int, p float64, s int) float64 {
	sum := 0.0
	for k := s; k <= n; k++ {
		sum += math.Exp(LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p))
	}
	return sum
}

func TestRegIncBetaAgainstBruteBinomial(t *testing.T) {
	cases := []struct {
		n int
		p float64
		s int
	}{
		{10, 0.3, 4}, {10, 0.3, 0}, {10, 0.3, 10},
		{100, 0.01, 3}, {100, 0.5, 50}, {100, 0.99, 95},
		{1000, 0.001, 5}, {37, 0.42, 20}, {5, 0.9, 5},
	}
	for _, c := range cases {
		want := bruteBinTail(c.n, c.p, c.s)
		got := Binomial{N: c.n, P: c.p}.UpperTail(c.s)
		if !almostEq(got, want, 1e-9) {
			t.Errorf("UpperTail(n=%d,p=%v,s=%d) = %v, want %v", c.n, c.p, c.s, got, want)
		}
	}
}

func TestRegIncBetaEdges(t *testing.T) {
	if got := RegIncBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %v, want 0", got)
	}
	if got := RegIncBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %v, want 1", got)
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		l := RegIncBeta(3, 7, x)
		r := 1 - RegIncBeta(7, 3, 1-x)
		if !almostEq(l, r, 1e-12) {
			t.Errorf("beta symmetry fails at x=%v: %v vs %v", x, l, r)
		}
	}
}

func TestRegGammaComplement(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2, 5.5, 20, 100} {
		for _, x := range []float64{0.1, 1, 3, 10, 50, 150} {
			p := RegLowerGamma(a, x)
			q := RegUpperGamma(a, x)
			if !almostEq(p+q, 1, 1e-12) {
				t.Errorf("P+Q != 1 at a=%v x=%v: %v", a, x, p+q)
			}
			if p < 0 || p > 1 || q < 0 || q > 1 {
				t.Errorf("regularized gamma out of [0,1] at a=%v x=%v", a, x)
			}
		}
	}
}

func TestRegGammaKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^{-x}.
	for _, x := range []float64{0.5, 1, 2, 5} {
		want := 1 - math.Exp(-x)
		if got := RegLowerGamma(1, x); !almostEq(got, want, 1e-12) {
			t.Errorf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
	// Poisson identity: Pr(Pois(l) >= k) = P(k, l) checked against summation.
	for _, l := range []float64{0.5, 2, 10} {
		for _, k := range []int{1, 2, 5, 15} {
			want := 0.0
			pmf := math.Exp(-l)
			for i := 0; ; i++ {
				if i >= k {
					want += pmf
				}
				pmf *= l / float64(i+1)
				if i > k && pmf < 1e-18 {
					break
				}
			}
			got := Poisson{Lambda: l}.UpperTail(k)
			if !almostEq(got, want, 1e-9) {
				t.Errorf("Pois(%v) tail at %d = %v, want %v", l, k, got, want)
			}
		}
	}
}

func TestLog1mExp(t *testing.T) {
	for _, x := range []float64{-1e-10, -0.1, -0.5, -1, -5, -50} {
		want := math.Log(-math.Expm1(x))
		got := Log1mExp(x)
		if !almostEq(got, want, 1e-9) {
			t.Errorf("Log1mExp(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestLogSumExp(t *testing.T) {
	cases := [][3]float64{
		{math.Log(2), math.Log(3), math.Log(5)},
		{-1000, -1000, -1000 + math.Ln2},
		{math.Inf(-1), math.Log(7), math.Log(7)},
	}
	for _, c := range cases {
		if got := LogSumExp(c[0], c[1]); !almostEq(got, c[2], 1e-12) {
			t.Errorf("LogSumExp(%v,%v) = %v, want %v", c[0], c[1], got, c[2])
		}
	}
}

func TestLogSumExpCommutative(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 700)
		b = math.Mod(b, 700)
		return almostEq(LogSumExp(a, b), LogSumExp(b, a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package stats

import (
	"math"
	"testing"
)

func TestChiSquareUpperTailKnown(t *testing.T) {
	// ChiSq(1) at 3.841459 ~ 0.05; ChiSq(10) at 18.307 ~ 0.05.
	if got := ChiSquareUpperTail(3.841458820694124, 1); !almostEq(got, 0.05, 1e-6) {
		t.Errorf("chi2(1) 0.05 quantile tail = %v", got)
	}
	if got := ChiSquareUpperTail(18.307038053275146, 10); !almostEq(got, 0.05, 1e-6) {
		t.Errorf("chi2(10) 0.05 quantile tail = %v", got)
	}
	if got := ChiSquareUpperTail(0, 5); got != 1 {
		t.Errorf("chi2 tail at 0 = %v", got)
	}
}

func TestChiSquareTestNullUniform(t *testing.T) {
	// Under the null, p-values should be roughly uniform; check that a clean
	// match gives a high p-value and a gross mismatch a tiny one.
	obs := []float64{100, 100, 100, 100}
	exp := []float64{100, 100, 100, 100}
	if res := ChiSquareTest(obs, exp, 5, 0); res.PValue < 0.99 {
		t.Errorf("perfect fit p=%v", res.PValue)
	}
	bad := []float64{400, 0, 0, 0}
	if res := ChiSquareTest(bad, exp, 5, 0); res.PValue > 1e-10 {
		t.Errorf("gross mismatch p=%v", res.PValue)
	}
}

func TestChiSquarePooling(t *testing.T) {
	// Cells with tiny expectations must be pooled, shrinking the df.
	obs := []float64{50, 50, 0.5, 0.2, 0.3}
	exp := []float64{50, 50, 0.4, 0.3, 0.3}
	res := ChiSquareTest(obs, exp, 5, 0)
	if res.DF >= 4 {
		t.Errorf("pooling did not reduce df: %d", res.DF)
	}
}

func TestKSAgainstUniform(t *testing.T) {
	r := NewRNG(60)
	sample := make([]float64, 5000)
	for i := range sample {
		sample[i] = r.Float64()
	}
	res := KSTest(sample, func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	})
	if res.PValue < 1e-3 {
		t.Errorf("uniform sample rejected by KS: p=%v", res.PValue)
	}
	// A shifted sample must be rejected decisively.
	for i := range sample {
		sample[i] = sample[i]*0.5 + 0.5
	}
	res = KSTest(sample, func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	})
	if res.PValue > 1e-6 {
		t.Errorf("shifted sample accepted by KS: p=%v", res.PValue)
	}
}

func TestKSEmptySample(t *testing.T) {
	res := KSTest(nil, func(x float64) float64 { return x })
	if res.PValue != 1 || res.Statistic != 0 {
		t.Errorf("empty KS = %+v", res)
	}
}

func TestTotalVariationPoissonSelf(t *testing.T) {
	// A genuine Poisson sample should have small TV distance to its own law;
	// a shifted sample should not.
	r := NewRNG(61)
	p := Poisson{Lambda: 5}
	sample := make([]int, 20000)
	for i := range sample {
		sample[i] = p.Sample(r)
	}
	if tv := TotalVariationPoisson(sample, 5); tv > 0.03 {
		t.Errorf("TV of Poisson sample vs own law = %v", tv)
	}
	shifted := make([]int, len(sample))
	for i, v := range sample {
		shifted[i] = v + 5
	}
	if tv := TotalVariationPoisson(shifted, 5); tv < 0.3 {
		t.Errorf("TV of shifted sample suspiciously small: %v", tv)
	}
}

func TestPoissonChiSquareDetectsMismatch(t *testing.T) {
	r := NewRNG(62)
	p := Poisson{Lambda: 3}
	sample := make([]int, 10000)
	for i := range sample {
		sample[i] = p.Sample(r)
	}
	if res := PoissonChiSquare(sample, 3, 0); res.PValue < 1e-4 {
		t.Errorf("true Poisson rejected: p=%v", res.PValue)
	}
	if res := PoissonChiSquare(sample, 6, 0); res.PValue > 1e-6 {
		t.Errorf("wrong lambda accepted: p=%v", res.PValue)
	}
}

func TestDescriptive(t *testing.T) {
	xs := []float64{4, 2, 7, 1, 9, 3}
	if got := Mean(xs); !almostEq(got, 26.0/6, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	min, max := MinMax(xs)
	if min != 1 || max != 9 {
		t.Errorf("MinMax = %v,%v", min, max)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := Quantile(xs, 1); got != 9 {
		t.Errorf("Quantile(1) = %v", got)
	}
	med := Quantile(xs, 0.5)
	if med < 3 || med > 4 {
		t.Errorf("median = %v", med)
	}
	s := Summarize(xs)
	if s.N != 6 || s.Min != 1 || s.Max != 9 {
		t.Errorf("Summary = %+v", s)
	}
	// Variance of {2,4,4,4,5,5,7,9} is 4.571428... (sample, n-1).
	v := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEq(v, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v", v)
	}
}

func TestDescriptiveEdge(t *testing.T) {
	if Mean(nil) != 0 || Variance([]float64{3}) != 0 {
		t.Error("empty/singleton edge cases")
	}
	if !math.IsNaN(math.NaN()) { // silence unused import paranoia patterns
		t.Fatal("impossible")
	}
	if MeanInt([]int{1, 2, 3}) != 2 {
		t.Error("MeanInt")
	}
	if v := VarianceInt([]int{1, 2, 3}); !almostEq(v, 1, 1e-12) {
		t.Errorf("VarianceInt = %v", v)
	}
}

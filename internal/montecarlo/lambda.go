package montecarlo

import (
	"sigfim/internal/mining"
	"sigfim/internal/randmodel"
	"sigfim/internal/stats"
)

// EstimateLambda returns a standalone Monte Carlo estimate of
// E[Q̂_{k,s}] — the expected number of k-itemsets with support >= s in a
// random dataset — from reps fresh replicates. Procedure 2 normally reuses
// the Algorithm 1 replicates via Result.Lambda; this direct estimator serves
// validation and ad-hoc exploration.
func EstimateLambda(m randmodel.Model, k, s, reps int, seed uint64) float64 {
	if s < 1 || reps < 1 {
		panic("montecarlo: EstimateLambda requires s >= 1 and reps >= 1")
	}
	r := stats.NewRNG(seed)
	var total int64
	for i := 0; i < reps; i++ {
		v := m.Generate(r.Split())
		total += mining.CountK(v, k, s)
	}
	return float64(total) / float64(reps)
}

// SampleQ draws the distribution of Q̂_{k,s} across reps replicates,
// returning one count per replicate. The null-calibration example feeds
// this to the Poisson goodness-of-fit tests.
func SampleQ(m randmodel.Model, k, s, reps int, seed uint64) []int {
	if s < 1 || reps < 1 {
		panic("montecarlo: SampleQ requires s >= 1 and reps >= 1")
	}
	r := stats.NewRNG(seed)
	out := make([]int, reps)
	for i := range out {
		v := m.Generate(r.Split())
		out[i] = int(mining.CountK(v, k, s))
	}
	return out
}

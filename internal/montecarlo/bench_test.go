package montecarlo

import (
	"context"
	"testing"

	"sigfim/internal/dataset"
	"sigfim/internal/mining"
	"sigfim/internal/randmodel"
	"sigfim/internal/stats"
)

// Algorithm 1 benchmarks: replicate mining dominates; the evaluator and the
// crossing search must stay negligible next to it.

func benchModelMC() randmodel.IndependentModel {
	z := stats.FitPowerLaw(500, 1e-4, 0.1, 4)
	return randmodel.IndependentModel{T: 20000, Freqs: z.Frequencies()}
}

func BenchmarkFindPoissonThresholdK2(b *testing.B) {
	m := benchModelMC()
	for i := 0; i < b.N; i++ {
		if _, err := FindPoissonThreshold(m, Config{K: 2, Delta: 40, Epsilon: 0.01, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindPoissonThresholdK3(b *testing.B) {
	m := benchModelMC()
	for i := 0; i < b.N; i++ {
		if _, err := FindPoissonThreshold(m, Config{K: 3, Delta: 40, Epsilon: 0.01, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFindPoissonThreshold is the end-to-end Algorithm 1 benchmark the
// pooled replicate engine is measured by (see BENCH_montecarlo.json).
func BenchmarkFindPoissonThreshold(b *testing.B) {
	m := benchModelMC()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FindPoissonThreshold(m, Config{K: 2, Delta: 100, Epsilon: 0.01, Seed: 1, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMineAll isolates the replicate generate-mine-merge loop, the
// hottest path of the whole system: Delta replicates generated, mined at a
// fixed floor, and merged into the collection.
func BenchmarkMineAll(b *testing.B) {
	m := benchModelMC()
	root := stats.NewRNG(1)
	seeds := make([]uint64, 100)
	for i := range seeds {
		seeds[i] = root.Uint64()
	}
	floor := floorOf(maxExpectedSupport(m, 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mineAll(context.Background(), m, seeds, floor, Config{K: 2, MaxEntries: 50_000_000, Workers: 1, Algorithm: mining.Auto}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMineAllLowFloor is the merge-bound regime: k=3 at a floor of a
// few transactions produces a union set of hundreds of itemsets with tens of
// thousands of (itemset, replicate) entries, so the collection index — not
// replicate generation — dominates. This is where the string-free table and
// the pooled scratch pay off in wall clock, not just allocations.
func BenchmarkMineAllLowFloor(b *testing.B) {
	m := benchModelMC()
	root := stats.NewRNG(1)
	seeds := make([]uint64, 40)
	for i := range seeds {
		seeds[i] = root.Uint64()
	}
	floor := floorOf(maxExpectedSupport(m, 3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mineAll(context.Background(), m, seeds, floor, Config{K: 3, MaxEntries: 50_000_000, Workers: 1, Algorithm: mining.Auto}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateLambda(b *testing.B) {
	m := benchModelMC()
	for i := 0; i < b.N; i++ {
		EstimateLambda(m, 2, 30, 20, 7)
	}
}

func BenchmarkEvaluatorEval(b *testing.B) {
	m := benchModelMC()
	res, err := FindPoissonThreshold(m, Config{K: 2, Delta: 60, Epsilon: 0.01, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	// Rebuild a collection at the result's floor for direct evaluator timing.
	root := stats.NewRNG(3)
	seeds := make([]uint64, 60)
	for i := range seeds {
		seeds[i] = root.Uint64()
	}
	col, _, err := mineAll(context.Background(), m, seeds, res.Floor, Config{K: 2, MaxEntries: 50_000_000, Algorithm: mining.Auto})
	if err != nil {
		b.Fatal(err)
	}
	ev := newEvaluator(col, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.eval(res.SMin)
	}
}

// benchSwapBase is the fixed swap-null base dataset: one independence draw
// (n=150, t=3000, power-law frequencies) materialized horizontally, ~12k
// matrix occurrences.
func benchSwapBase() *dataset.Dataset {
	z := stats.FitPowerLaw(150, 1e-3, 0.12, 4)
	im := randmodel.IndependentModel{T: 3000, Freqs: z.Frequencies()}
	return im.Generate(stats.NewRNG(99)).Horizontal()
}

// BenchmarkSwapReplicates is the swap-null replicate loop (generate via the
// swap chain, mine, merge) the in-place generator is measured by: 40
// replicates at 4 proposals per occurrence, k=2, floor=s-tilde, workers=1.
// Before the pooled chain scratch this path allocated a full dataset (t
// membership maps, horizontal + vertical materialization) per replicate; see
// BENCH_montecarlo.json for the recorded numbers.
func BenchmarkSwapReplicates(b *testing.B) {
	m := &randmodel.SwapModel{Base: benchSwapBase(), ProposalsPerOccurrence: 4}
	root := stats.NewRNG(1)
	seeds := make([]uint64, 40)
	for i := range seeds {
		seeds[i] = root.Uint64()
	}
	floor := floorOf(maxExpectedSupport(m, 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mineAll(context.Background(), m, seeds, floor, Config{K: 2, MaxEntries: 50_000_000, Workers: 1, Algorithm: mining.Auto}); err != nil {
			b.Fatal(err)
		}
	}
}

package montecarlo

import (
	"testing"

	"sigfim/internal/mining"
	"sigfim/internal/randmodel"
	"sigfim/internal/stats"
)

// Algorithm 1 benchmarks: replicate mining dominates; the evaluator and the
// crossing search must stay negligible next to it.

func benchModelMC() randmodel.IndependentModel {
	z := stats.FitPowerLaw(500, 1e-4, 0.1, 4)
	return randmodel.IndependentModel{T: 20000, Freqs: z.Frequencies()}
}

func BenchmarkFindPoissonThresholdK2(b *testing.B) {
	m := benchModelMC()
	for i := 0; i < b.N; i++ {
		if _, err := FindPoissonThreshold(m, Config{K: 2, Delta: 40, Epsilon: 0.01, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindPoissonThresholdK3(b *testing.B) {
	m := benchModelMC()
	for i := 0; i < b.N; i++ {
		if _, err := FindPoissonThreshold(m, Config{K: 3, Delta: 40, Epsilon: 0.01, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateLambda(b *testing.B) {
	m := benchModelMC()
	for i := 0; i < b.N; i++ {
		EstimateLambda(m, 2, 30, 20, 7)
	}
}

func BenchmarkEvaluatorEval(b *testing.B) {
	m := benchModelMC()
	res, err := FindPoissonThreshold(m, Config{K: 2, Delta: 60, Epsilon: 0.01, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	// Rebuild a collection at the result's floor for direct evaluator timing.
	root := stats.NewRNG(3)
	seeds := make([]uint64, 60)
	for i := range seeds {
		seeds[i] = root.Uint64()
	}
	col, err := mineAll(m, seeds, 2, res.Floor, 50_000_000, 0, mining.Auto)
	if err != nil {
		b.Fatal(err)
	}
	ev := newEvaluator(col, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.eval(res.SMin)
	}
}

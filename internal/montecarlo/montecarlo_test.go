package montecarlo

import (
	"math"
	"testing"

	"sigfim/internal/chenstein"
	"sigfim/internal/mining"
	"sigfim/internal/randmodel"
	"sigfim/internal/stats"
)

func uniformModel(n, t int, p float64) randmodel.IndependentModel {
	freqs := make([]float64, n)
	for i := range freqs {
		freqs[i] = p
	}
	return randmodel.IndependentModel{T: t, Freqs: freqs}
}

func TestConfigValidation(t *testing.T) {
	m := uniformModel(5, 20, 0.2)
	bad := []Config{
		{K: 0, Delta: 10, Epsilon: 0.01},
		{K: 2, Delta: 0, Epsilon: 0.01},
		{K: 2, Delta: 10, Epsilon: 0},
		{K: 2, Delta: 10, Epsilon: 1},
	}
	for _, cfg := range bad {
		if _, err := FindPoissonThreshold(m, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestDeltaForConfidence(t *testing.T) {
	got := DeltaForConfidence(0.01, 0.05)
	want := int(math.Ceil(8 * math.Log(20) / 0.01))
	if got != want {
		t.Errorf("DeltaForConfidence = %d, want %d", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid domain should panic")
		}
	}()
	DeltaForConfidence(0, 0.5)
}

func TestFindThresholdDeterministicBySeed(t *testing.T) {
	m := uniformModel(30, 300, 0.1)
	cfg := Config{K: 2, Delta: 200, Epsilon: 0.01, Seed: 99}
	a, err := FindPoissonThreshold(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FindPoissonThreshold(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.SMin != b.SMin || a.NumItemsets != b.NumItemsets {
		t.Errorf("same seed, different results: %d/%d vs %d/%d",
			a.SMin, a.NumItemsets, b.SMin, b.NumItemsets)
	}
}

// TestFindThresholdAlgorithmAgreement runs Algorithm 1 with every replicate
// miner: the mined union set W is algorithm-independent, so SMin, the floor,
// and the itemset count must agree exactly — and, for a fixed algorithm, be
// identical across worker counts.
func TestFindThresholdAlgorithmAgreement(t *testing.T) {
	m := uniformModel(25, 250, 0.1)
	base := Config{K: 2, Delta: 120, Epsilon: 0.01, Seed: 7, Workers: 1}
	ref, err := FindPoissonThreshold(m, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []mining.Algorithm{mining.EclatTids, mining.Apriori, mining.FPGrowth} {
		for _, workers := range []int{1, 4} {
			cfg := base
			cfg.Algorithm = algo
			cfg.Workers = workers
			res, err := FindPoissonThreshold(m, cfg)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", algo, workers, err)
			}
			if res.SMin != ref.SMin || res.Floor != ref.Floor || res.NumItemsets != ref.NumItemsets {
				t.Fatalf("%v workers=%d: SMin/Floor/|W| = %d/%d/%d, want %d/%d/%d",
					algo, workers, res.SMin, res.Floor, res.NumItemsets,
					ref.SMin, ref.Floor, ref.NumItemsets)
			}
		}
	}
}

func TestSMinNearAnalytic(t *testing.T) {
	// In the uniform regime the Monte Carlo ŝ_min should land near the
	// analytic exact-bound threshold (which optimizes eps, not eps/4; the
	// MC uses eps/4, so it can sit slightly higher).
	n, tt, p := 12, 250, 0.15
	m := uniformModel(n, tt, p)
	res, err := FindPoissonThreshold(m, Config{K: 2, Delta: 400, Epsilon: 0.04, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	freqs := make([]float64, n)
	for i := range freqs {
		freqs[i] = p
	}
	exactQuarter, ok := chenstein.SMinExact(freqs, tt, 2, 0.01) // eps/4 = 0.01
	if !ok {
		t.Fatal("no exact threshold")
	}
	if d := res.SMin - exactQuarter; d < -3 || d > 3 {
		t.Errorf("MC ŝ_min = %d, exact eps/4 threshold = %d", res.SMin, exactQuarter)
	}
}

func TestBoundCurveMonotone(t *testing.T) {
	m := uniformModel(25, 300, 0.12)
	res, err := FindPoissonThreshold(m, Config{K: 2, Delta: 300, Epsilon: 0.02, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Completed curve points are sorted by s; b1+b2 must be non-increasing
	// (partial points stopped early and only lower-bound the true value).
	prev := math.Inf(1)
	for _, bp := range res.Curve {
		if bp.Partial {
			continue
		}
		cur := bp.B1 + bp.B2
		if cur > prev*(1+1e-9)+1e-12 {
			t.Fatalf("empirical bound increased at s=%d: %v -> %v", bp.S, prev, cur)
		}
		prev = cur
	}
	// SMin is the crossing: bound at SMin <= eps/4.
	for _, bp := range res.Curve {
		if bp.S == res.SMin && bp.B1+bp.B2 > 0.02/4 {
			t.Errorf("bound at ŝ_min = %v exceeds eps/4", bp.B1+bp.B2)
		}
	}
}

func TestEmptyWReturnsOne(t *testing.T) {
	// Frequencies so tiny that no k-itemset ever reaches support 1.
	m := uniformModel(10, 20, 1e-6)
	res, err := FindPoissonThreshold(m, Config{K: 3, Delta: 30, Epsilon: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SMin != 1 {
		t.Errorf("empty W should give ŝ_min = 1, got %d", res.SMin)
	}
}

func TestLambdaEstimatorAgainstExact(t *testing.T) {
	n, tt, p := 12, 200, 0.2
	m := uniformModel(n, tt, p)
	res, err := FindPoissonThreshold(m, Config{K: 2, Delta: 500, Epsilon: 0.01, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	freqs := make([]float64, n)
	for i := range freqs {
		freqs[i] = p
	}
	for s := res.SMin; s < res.SMin+3 && s <= tt; s++ {
		if s < res.Floor {
			continue
		}
		want := chenstein.ExactLambda(freqs, tt, 2, s)
		got := res.Lambda(s)
		se := math.Sqrt(want / float64(res.Delta))
		if math.Abs(got-want) > 6*se+0.05*want+0.02 {
			t.Errorf("Lambda(%d) = %v, exact %v", s, got, want)
		}
	}
}

func TestLambdaBelowFloorPanics(t *testing.T) {
	m := uniformModel(10, 100, 0.3)
	res, err := FindPoissonThreshold(m, Config{K: 2, Delta: 100, Epsilon: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Floor <= 1 {
		t.Skip("floor reached 1; nothing below it")
	}
	defer func() {
		if recover() == nil {
			t.Error("Lambda below floor should panic")
		}
	}()
	res.Lambda(res.Floor - 1)
}

func TestEstimateLambdaMatchesExact(t *testing.T) {
	freqs := []float64{0.3, 0.25, 0.2, 0.15, 0.35}
	m := randmodel.IndependentModel{T: 80, Freqs: freqs}
	k, s := 2, 5
	want := chenstein.ExactLambda(freqs, 80, k, s)
	got := EstimateLambda(m, k, s, 4000, 7)
	se := math.Sqrt(want / 4000)
	if math.Abs(got-want) > 8*se+0.02 {
		t.Errorf("EstimateLambda = %v, exact %v", got, want)
	}
}

func TestSampleQPoissonAboveSMin(t *testing.T) {
	// The headline theory: above ŝ_min, Q̂_{k,s} is approximately Poisson.
	n, tt, p := 25, 300, 0.12
	m := uniformModel(n, tt, p)
	res, err := FindPoissonThreshold(m, Config{K: 2, Delta: 300, Epsilon: 0.02, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := res.SMin
	sample := SampleQ(m, 2, s, 1500, 17)
	lam := 0.0
	for _, q := range sample {
		lam += float64(q)
	}
	lam /= float64(len(sample))
	if lam == 0 {
		t.Skip("degenerate: no itemsets at s_min")
	}
	tv := stats.TotalVariationPoisson(sample, lam)
	if tv > 0.08 {
		t.Errorf("TV distance to Poisson at ŝ_min = %v", tv)
	}
}

func TestSampleQValidation(t *testing.T) {
	m := uniformModel(5, 10, 0.1)
	defer func() {
		if recover() == nil {
			t.Error("invalid SampleQ args should panic")
		}
	}()
	SampleQ(m, 1, 0, 10, 1)
}

func TestMaxEntriesGuard(t *testing.T) {
	// Dense model with floor 1 explodes; the budget must trip.
	m := uniformModel(30, 50, 0.5)
	_, err := FindPoissonThreshold(m, Config{K: 3, Delta: 50, Epsilon: 0.01, Seed: 4, MaxEntries: 1000})
	if err == nil {
		t.Skip("model found a threshold without tripping the budget")
	}
}

func TestAdaptivePruningPath(t *testing.T) {
	// A sparse model whose s-tilde collapses below 1 and whose floor-1
	// itemset volume is large relative to a tiny artificial budget forces
	// the adaptive pruning to engage; the result must stay consistent:
	// SMin >= Floor and Lambda valid from Floor upward.
	freqs := make([]float64, 120)
	for i := range freqs {
		freqs[i] = 0.02
	}
	m := randmodel.IndependentModel{T: 3000, Freqs: freqs}
	res, err := FindPoissonThreshold(m, Config{K: 3, Delta: 150, Epsilon: 0.01, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.SMin < res.Floor {
		t.Errorf("SMin %d below effective floor %d", res.SMin, res.Floor)
	}
	if res.SMin <= res.SMax {
		lam := res.Lambda(res.SMin)
		if lam < 0 {
			t.Errorf("Lambda(%d) = %v", res.SMin, lam)
		}
	}
	// The bound at SMin (when evaluated) must satisfy eps/4.
	for _, bp := range res.Curve {
		if bp.S == res.SMin && !bp.Partial && bp.B1+bp.B2 > 0.01/4 {
			t.Errorf("bound at SMin = %v exceeds eps/4", bp.B1+bp.B2)
		}
	}
}

func TestCollectionPrune(t *testing.T) {
	col := newCollection(2, 1)
	// Three itemsets with supports spread over levels.
	add := func(items mining.Itemset, reps []int, sups []int) {
		_, added := col.index.Insert(items)
		if !added {
			t.Fatalf("duplicate itemset %v in test setup", items)
		}
		var es []entry
		for i := range reps {
			es = append(es, entry{rep: int32(reps[i]), sup: int32(sups[i])})
			col.numEntry++
		}
		col.entries = append(col.entries, es)
	}
	add(mining.Itemset{0, 1}, []int{0, 1, 2}, []int{1, 5, 9})
	add(mining.Itemset{1, 2}, []int{0, 1}, []int{2, 2})
	add(mining.Itemset{2, 3}, []int{3}, []int{7})
	col.prune(3)
	if col.numEntry > 3 {
		t.Fatalf("prune left %d entries", col.numEntry)
	}
	if col.pruneFloor <= 1 {
		t.Fatalf("prune did not raise floor: %d", col.pruneFloor)
	}
	// Every retained entry respects the new floor.
	for id, es := range col.entries {
		for _, e := range es {
			if int(e.sup) < col.pruneFloor {
				t.Fatalf("entry below floor retained: %v sup %d", col.itemsOf(id), e.sup)
			}
		}
	}
	// Index must be consistent with the entries: every stored tuple must look
	// itself up to its own id, and ids must cover the entries slice.
	if col.index.Len() != len(col.entries) {
		t.Fatalf("table has %d itemsets, entries %d", col.index.Len(), len(col.entries))
	}
	for id := 0; id < col.index.Len(); id++ {
		if got := col.index.Lookup(col.index.Items(id)); got != id {
			t.Fatalf("itemset %v maps to id %d, want %d", col.itemsOf(id), got, id)
		}
	}
}

package montecarlo

import (
	"context"
	"reflect"
	"testing"

	"sigfim/internal/randmodel"
	"sigfim/internal/stats"
)

// Westfall-Young min-p collection tests: the per-replicate minimum marginal
// p-value shards must be shaped right (one value per replicate, valid range),
// bit-identical across worker counts and null models, and must agree with a
// direct recomputation from the mined (itemset, support) stream.

func TestCollectMinPsShapeAndRange(t *testing.T) {
	m := fabricModel()
	cfg := runnerConfig()
	cfg.CollectMinPs = true
	res, err := FindPoissonThresholdCtx(context.Background(), m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MinPs) != cfg.Delta {
		t.Fatalf("len(MinPs) = %d, want Delta = %d", len(res.MinPs), cfg.Delta)
	}
	if res.MinPFloor != res.Floor {
		t.Errorf("MinPFloor = %d, want final floor %d", res.MinPFloor, res.Floor)
	}
	nonSentinel := 0
	for i, p := range res.MinPs {
		if p == MinPNone {
			continue
		}
		nonSentinel++
		if !(p >= 0 && p <= 1) {
			t.Fatalf("MinPs[%d] = %v outside [0,1]", i, p)
		}
	}
	if nonSentinel == 0 {
		t.Fatal("every replicate hit the MinPNone sentinel; test is vacuous")
	}

	// Without the flag the null distribution must not be collected.
	cfg.CollectMinPs = false
	plain, err := FindPoissonThresholdCtx(context.Background(), m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.MinPs) != 0 || plain.MinPFloor != 0 {
		t.Errorf("MinPs collected without CollectMinPs: %d values, floor %d",
			len(plain.MinPs), plain.MinPFloor)
	}
	// Collection must not perturb the threshold itself.
	if res.SMin != plain.SMin || res.NumItemsets != plain.NumItemsets {
		t.Errorf("CollectMinPs changed the result: SMin/|W| = %d/%d, want %d/%d",
			res.SMin, res.NumItemsets, plain.SMin, plain.NumItemsets)
	}
}

// TestCollectMinPsWorkerBitIdentity requires the min-p shards to merge to the
// identical float64 slice at every worker count, under both null models —
// the distributed Westfall-Young contract the service layer builds on.
func TestCollectMinPsWorkerBitIdentity(t *testing.T) {
	models := []struct {
		name string
		m    randmodel.Model
		cfg  Config
	}{
		{"independence", fabricModel(), Config{K: 2, Delta: 40, Epsilon: 0.05, Seed: 5, CollectMinPs: true}},
		{"swap", &randmodel.SwapModel{Base: swapPoolingBase()}, Config{K: 2, Delta: 30, Epsilon: 0.01, Seed: 42, CollectMinPs: true}},
	}
	for _, tc := range models {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Workers = 1
			ref, err := FindPoissonThresholdCtx(context.Background(), tc.m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(ref.MinPs) != cfg.Delta {
				t.Fatalf("len(MinPs) = %d, want %d", len(ref.MinPs), cfg.Delta)
			}
			for _, workers := range []int{4, 8} {
				cfg.Workers = workers
				got, err := FindPoissonThresholdCtx(context.Background(), tc.m, cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !reflect.DeepEqual(got.MinPs, ref.MinPs) {
					t.Fatalf("workers=%d: MinPs differ from single-worker run", workers)
				}
				if got.MinPFloor != ref.MinPFloor {
					t.Fatalf("workers=%d: MinPFloor = %d, want %d", workers, got.MinPFloor, ref.MinPFloor)
				}
			}
		})
	}
}

// TestMineRangeMinPsMatchDirect recomputes every replicate's minimum marginal
// p-value from the partial's own (itemset, support) stream and requires exact
// agreement with the value the visitor closure recorded inline.
func TestMineRangeMinPsMatchDirect(t *testing.T) {
	m := fabricModel()
	const delta, k, floor = 10, 2, 2
	req := RangeRequest{
		Range: ReplicateRange{From: 0, To: delta},
		K:     k, Floor: floor, StatFloor: floor,
		Seeds: fabricSeeds(7, delta),
	}
	var p Partial
	if err := MineRange(context.Background(), m, req, nil, &p); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(req); err != nil {
		t.Fatal(err)
	}
	freqs := m.ItemFrequencies()
	n := m.NumTransactions()
	itemOff, supOff := 0, 0
	for r := 0; r < delta; r++ {
		want := MinPNone
		for j := 0; j < int(p.Counts[r]); j++ {
			sup := int(p.Sups[supOff+j])
			if sup < req.StatFloor {
				continue
			}
			fX := 1.0
			for _, it := range p.Items[itemOff+j*k : itemOff+(j+1)*k] {
				fX *= freqs[it]
			}
			if pv := (stats.Binomial{N: n, P: fX}).UpperTail(sup); pv < want {
				want = pv
			}
		}
		if p.MinPs[r] != want {
			t.Fatalf("replicate %d: MinPs = %v, direct recomputation = %v", r, p.MinPs[r], want)
		}
		itemOff += int(p.Counts[r]) * k
		supOff += int(p.Counts[r])
	}
}

// TestMineRangeStatFloorValidation pins the request/partial contract: a stat
// floor below the mining floor is rejected, and stray MinPs in a range that
// requested none fail validation.
func TestMineRangeStatFloorValidation(t *testing.T) {
	req := RangeRequest{
		Range: ReplicateRange{From: 0, To: 3},
		K:     2, Floor: 3, StatFloor: 2, Seeds: []uint64{1, 2, 3},
	}
	if err := req.validate(); err == nil {
		t.Error("stat floor below mining floor accepted")
	}
	req.StatFloor = 0
	var p Partial
	if err := MineRange(context.Background(), fabricModel(), req, nil, &p); err != nil {
		t.Fatal(err)
	}
	p.MinPs = append(p.MinPs, 0.5, 0.5, 0.5)
	if err := p.Validate(req); err == nil {
		t.Error("stray MinPs in a no-stat-floor range accepted")
	}
}

package montecarlo

import (
	"math"
	"reflect"
	"testing"

	"sigfim/internal/mining"
	"sigfim/internal/randmodel"
	"sigfim/internal/stats"
)

// Pooling-determinism tests: the allocation-free replicate engine (pooled
// generation, per-worker mining scratch, string-free collection index) must
// not change FindPoissonThreshold's output by a single bit — for any worker
// count, for any algorithm, and against the pre-pooling golden values below,
// which were captured from the unpooled implementation on the same model and
// seed.

// poolingGoldenModel is the fixed model the golden values were captured on.
func poolingGoldenModel() randmodel.IndependentModel {
	z := stats.FitPowerLaw(300, 1e-4, 0.1, 4)
	return randmodel.IndependentModel{T: 8000, Freqs: z.Frequencies()}
}

// poolingGolden pins the pre-pooling outputs (captured at the commit before
// this refactor, Workers=1, algorithm eclat-tids). Every (worker, algorithm)
// combination must still reproduce them exactly.
var poolingGolden = []struct {
	k           int
	sMin        int
	sTilde      float64
	floor       int
	sMax        int
	numItemsets int
	curveLen    int
	lambdaFloor float64
}{
	{k: 2, sMin: 73, sTilde: 58.405794, floor: 59, sMax: 81, numItemsets: 4, curveLen: 9, lambdaFloor: 0.566667},
	{k: 3, sMin: 10, sTilde: 3.547285, floor: 4, sMax: 12, numItemsets: 753, curveLen: 5, lambdaFloor: 21.183333},
}

func TestFindPoissonThresholdPoolingDeterminism(t *testing.T) {
	m := poolingGoldenModel()
	algos := []mining.Algorithm{mining.EclatTids, mining.EclatBits, mining.FPGrowth}
	workerCounts := []int{1, 4, 8}
	for _, g := range poolingGolden {
		// algoRef is the workers=1 run of the current algorithm: runs at
		// higher worker counts must be bit-identical to it. crossRef is the
		// first algorithm's run: other algorithms must agree on the support
		// pool exactly (it is a sorted integer multiset) and on every curve
		// point's S; the B1/B2 floats may differ in the last bits BETWEEN
		// algorithms because each algorithm assigns collection ids in its own
		// emission order, which permutes the float summation (this was
		// already true before pooling).
		var algoRef, crossRef *Result
		for _, algo := range algos {
			algoRef = nil
			for _, w := range workerCounts {
				res, err := FindPoissonThreshold(m, Config{
					K: g.k, Delta: 60, Epsilon: 0.01, Seed: 42, Workers: w, Algorithm: algo,
				})
				if err != nil {
					t.Fatalf("k=%d algo=%v workers=%d: %v", g.k, algo, w, err)
				}
				if res.SMin != g.sMin || res.Floor != g.floor || res.SMax != g.sMax ||
					res.NumItemsets != g.numItemsets || len(res.Curve) != g.curveLen {
					t.Fatalf("k=%d algo=%v workers=%d: got (smin=%d floor=%d smax=%d W=%d curve=%d), want (%d %d %d %d %d)",
						g.k, algo, w, res.SMin, res.Floor, res.SMax, res.NumItemsets, len(res.Curve),
						g.sMin, g.floor, g.sMax, g.numItemsets, g.curveLen)
				}
				if math.Abs(res.STilde-g.sTilde) > 1e-4 {
					t.Fatalf("k=%d algo=%v workers=%d: sTilde %v, want %v", g.k, algo, w, res.STilde, g.sTilde)
				}
				if math.Abs(res.Lambda(res.Floor)-g.lambdaFloor) > 1e-4 {
					t.Fatalf("k=%d algo=%v workers=%d: Lambda(floor) %v, want %v",
						g.k, algo, w, res.Lambda(res.Floor), g.lambdaFloor)
				}
				if algoRef == nil {
					algoRef = res
				} else {
					// Bit-identical across worker counts: the same floats
					// from the same additions in the same order.
					if !reflect.DeepEqual(res.Curve, algoRef.Curve) {
						t.Fatalf("k=%d algo=%v workers=%d: bound curve differs from workers=%d run",
							g.k, algo, w, workerCounts[0])
					}
					if !reflect.DeepEqual(res.allSupports, algoRef.allSupports) {
						t.Fatalf("k=%d algo=%v workers=%d: lambda support pool differs from workers=%d run",
							g.k, algo, w, workerCounts[0])
					}
				}
				if crossRef == nil {
					crossRef = res
				} else {
					if !reflect.DeepEqual(res.allSupports, crossRef.allSupports) {
						t.Fatalf("k=%d algo=%v workers=%d: lambda support pool differs across algorithms", g.k, algo, w)
					}
					for i, bp := range res.Curve {
						want := crossRef.Curve[i]
						if bp.S != want.S || bp.Partial != want.Partial {
							t.Fatalf("k=%d algo=%v workers=%d: curve point %d (%+v) disagrees with %+v",
								g.k, algo, w, i, bp, want)
						}
						if bp.Partial {
							// A capped evaluation stops as soon as the budget
							// is exceeded, so its partial B1/B2 depend on the
							// live-set iteration order, which is per-algorithm.
							continue
						}
						if math.Abs(bp.B1-want.B1) > 1e-9 || math.Abs(bp.B2-want.B2) > 1e-9 {
							t.Fatalf("k=%d algo=%v workers=%d: curve point %d (%+v) disagrees with %+v",
								g.k, algo, w, i, bp, want)
						}
					}
				}
			}
		}
	}
}

// TestGenerateReusingMatchesGenerate pins the pooled-generation contract: for
// the same seed, GenerateInto into a dirty reused Vertical produces exactly
// the dataset Generate builds fresh — same stream, same columns.
func TestGenerateReusingMatchesGenerate(t *testing.T) {
	z := stats.FitPowerLaw(80, 1e-3, 0.2, 5)
	m := randmodel.IndependentModel{T: 1000, Freqs: z.Frequencies()}
	pooled := randmodel.GenerateReusing(m, stats.NewRNG(7), nil)
	for seed := uint64(1); seed <= 5; seed++ {
		fresh := m.Generate(stats.NewRNG(seed))
		pooled = randmodel.GenerateReusing(m, stats.NewRNG(seed), pooled)
		if pooled.NumTransactions != fresh.NumTransactions || len(pooled.Tids) != len(fresh.Tids) {
			t.Fatalf("seed %d: shape mismatch", seed)
		}
		for it := range fresh.Tids {
			if !reflect.DeepEqual(append([]uint32{}, fresh.Tids[it]...), append([]uint32{}, pooled.Tids[it]...)) {
				t.Fatalf("seed %d: column %d differs between pooled and fresh generation", seed, it)
			}
		}
	}
}

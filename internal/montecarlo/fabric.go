package montecarlo

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sigfim/internal/dataset"
	"sigfim/internal/mining"
	"sigfim/internal/randmodel"
	"sigfim/internal/stats"
	"sigfim/internal/trace"
)

// The replicate fabric: Algorithm 1's Delta Monte Carlo replicates are
// embarrassingly parallel and deterministic per seed, so the replicate loop
// is expressed as explicit "replicate range -> serializable partial" jobs. A
// RangeRequest names a half-open range of replicate indices together with
// everything needed to mine it (per-replicate seeds, itemset size, mining
// floor, algorithm); MineRange executes one request in-process and fills a
// Partial, a flat, portable encoding of every replicate's mined (itemset,
// support) pairs. The local worker pool and remote sigfimd workers run this
// exact code path — the only difference is who calls MineRange — and the
// coordinator merges partials strictly in replicate-index order, so the
// merged collection (including its adaptive prune schedule) is bit-identical
// to a single-process run no matter how many workers executed the ranges, in
// what order their partials arrived, or whether a failed range was retried
// elsewhere.

// ReplicateRange is a half-open range [From, To) of replicate indices.
type ReplicateRange struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// Len returns the number of replicates in the range.
func (r ReplicateRange) Len() int { return r.To - r.From }

// RangeRequest fully specifies the mining of one replicate range. Two
// requests with the same Range, K, Floor, Algorithm, and Seeds produce
// value-identical partials on any executor — Workers is an intra-mine
// parallelism hint that cannot influence the result.
type RangeRequest struct {
	// Range selects the replicate indices [From, To).
	Range ReplicateRange
	// K is the itemset size under study.
	K int
	// Floor is the integer mining threshold: every itemset with support >=
	// Floor in a replicate is reported. The merge re-filters against its own
	// (possibly higher) prune floor, so any Floor at or below the merge-time
	// prune floor yields the same merged collection.
	Floor int
	// Algorithm selects the replicate miner.
	Algorithm mining.Algorithm
	// Seeds holds one RNG seed per replicate in the range (len == Range.Len());
	// Seeds[i] drives replicate Range.From+i. Replicate index i always
	// consumes seed i of the root stream, so the RNG substream a replicate
	// sees never depends on which worker executes it.
	Seeds []uint64
	// Workers bounds the intra-mine parallelism of each replicate's mine
	// (0 = executor's choice). Results are identical for every value.
	Workers int
	// StatFloor, when positive, additionally collects the Westfall-Young
	// statistic: for each replicate, the minimum marginal Binomial p-value
	// over the mined itemsets with support >= StatFloor (Partial.MinPs).
	// Must be >= Floor, since itemsets below the mining floor are never
	// emitted; requests that collect pin Floor so the two coincide. The
	// statistic is a plain minimum of exactly computed p-values, so it is
	// bit-identical on every executor, for every worker count and algorithm.
	StatFloor int
}

// validate checks a request's internal consistency.
func (req RangeRequest) validate() error {
	if req.Range.From < 0 || req.Range.To <= req.Range.From {
		return fmt.Errorf("montecarlo: invalid replicate range [%d,%d)", req.Range.From, req.Range.To)
	}
	if len(req.Seeds) != req.Range.Len() {
		return fmt.Errorf("montecarlo: range [%d,%d) carries %d seeds, want %d",
			req.Range.From, req.Range.To, len(req.Seeds), req.Range.Len())
	}
	if req.K < 1 {
		return fmt.Errorf("montecarlo: K must be >= 1, got %d", req.K)
	}
	if req.Floor < 1 {
		return fmt.Errorf("montecarlo: mining floor must be >= 1, got %d", req.Floor)
	}
	if req.StatFloor < 0 || (req.StatFloor > 0 && req.StatFloor < req.Floor) {
		return fmt.Errorf("montecarlo: stat floor %d must be 0 or >= mining floor %d", req.StatFloor, req.Floor)
	}
	return nil
}

// Partial is the serializable product of mining one replicate range: for
// each replicate, the k-itemsets whose support reached the mining floor, in
// the deterministic emission order of the mining algorithm. The encoding is
// flat and string-free so partials are cheap to build, merge, and ship as
// JSON between sigfimd processes.
type Partial struct {
	// From and To echo the replicate range [From, To).
	From int `json:"from"`
	To   int `json:"to"`
	// Floor is the mining threshold the range was mined at.
	Floor int `json:"floor"`
	// K is the itemset size.
	K int `json:"k"`
	// Counts[i] is the number of itemsets mined from replicate From+i.
	Counts []int32 `json:"counts"`
	// Items holds K item ids per itemset, concatenated across replicates in
	// range order; Sups holds the parallel supports.
	Items []uint32 `json:"items,omitempty"`
	Sups  []int32  `json:"sups,omitempty"`
	// MinPs, present exactly when the request carried a StatFloor, holds one
	// value per replicate: the minimum marginal Binomial p-value over the
	// replicate's itemsets with support >= StatFloor, or MinPNone when no
	// itemset reached it. float64 values survive the JSON round trip exactly
	// (encoding/json emits the shortest form that decodes to the same bits),
	// so shipping MinPs between sigfimd processes preserves the bit-identity
	// of the Westfall-Young null distribution.
	MinPs []float64 `json:"min_ps,omitempty"`
}

// MinPNone marks a replicate in which no itemset reached the stat floor: it
// compares above every genuine p-value, so the replicate counts against no
// rejection (the family minimum over an empty set is vacuously large).
const MinPNone = 2.0

// reset prepares a (possibly recycled) partial for a new range, keeping the
// backing arrays.
func (p *Partial) reset(req RangeRequest) {
	p.From = req.Range.From
	p.To = req.Range.To
	p.Floor = req.Floor
	p.K = req.K
	p.Counts = p.Counts[:0]
	p.Items = p.Items[:0]
	p.Sups = p.Sups[:0]
	p.MinPs = p.MinPs[:0]
}

// ErrInvalidPartial is wrapped by every Validate failure, so a runner can
// classify a malformed partial (eligible for retry on another worker) apart
// from an execution error with errors.Is.
var ErrInvalidPartial = errors.New("montecarlo: invalid partial")

// Validate checks a partial's internal consistency against the request it
// answers. The coordinator runs it on every partial before merging, so a
// malformed response from a remote worker fails the range loudly (and
// retryably — all errors wrap ErrInvalidPartial) instead of corrupting the
// collection.
func (p *Partial) Validate(req RangeRequest) error {
	if p.From != req.Range.From || p.To != req.Range.To {
		return fmt.Errorf("%w: covers [%d,%d), want [%d,%d)",
			ErrInvalidPartial, p.From, p.To, req.Range.From, req.Range.To)
	}
	if p.K != req.K {
		return fmt.Errorf("%w: mined %d-itemsets, want %d", ErrInvalidPartial, p.K, req.K)
	}
	if p.Floor > req.Floor {
		// A higher floor silently drops entries the merge still needs; a
		// lower one only adds entries the merge filters out.
		return fmt.Errorf("%w: mined at floor %d above requested floor %d", ErrInvalidPartial, p.Floor, req.Floor)
	}
	if len(p.Counts) != p.To-p.From {
		return fmt.Errorf("%w: %d replicate counts, want %d", ErrInvalidPartial, len(p.Counts), p.To-p.From)
	}
	var total int
	for i, c := range p.Counts {
		if c < 0 {
			return fmt.Errorf("%w: negative itemset count %d at replicate %d", ErrInvalidPartial, c, p.From+i)
		}
		total += int(c)
	}
	if len(p.Sups) != total {
		return fmt.Errorf("%w: %d supports, want %d", ErrInvalidPartial, len(p.Sups), total)
	}
	if len(p.Items) != total*p.K {
		return fmt.Errorf("%w: %d item ids, want %d", ErrInvalidPartial, len(p.Items), total*p.K)
	}
	if req.StatFloor > 0 {
		if len(p.MinPs) != p.To-p.From {
			return fmt.Errorf("%w: %d replicate min p-values, want %d", ErrInvalidPartial, len(p.MinPs), p.To-p.From)
		}
		for i, v := range p.MinPs {
			if !(v >= 0 && v <= 1) && v != MinPNone {
				return fmt.Errorf("%w: min p-value %v at replicate %d outside [0,1]", ErrInvalidPartial, v, p.From+i)
			}
		}
	} else if len(p.MinPs) != 0 {
		return fmt.Errorf("%w: %d min p-values in a range that requested none", ErrInvalidPartial, len(p.MinPs))
	}
	return nil
}

// RangeRunner executes one replicate-range request somewhere — typically by
// POSTing it to a remote sigfimd worker — and returns the mined partial. A
// runner must be safe for concurrent calls; it is invoked once per range, so
// any retry policy (other workers, local fallback) lives inside the runner.
// Returning an error fails the whole estimate.
type RangeRunner func(ctx context.Context, req RangeRequest) (*Partial, error)

// RangeScratch bundles the pooled per-worker state MineRange reuses across
// calls: the mining scratch (DFS and tree buffers) and the replicate Vertical
// (column backing arrays refilled in place). One scratch must not be shared
// by concurrent MineRange calls.
type RangeScratch struct {
	scratch *mining.Scratch
	v       *dataset.Vertical

	// Timing, when set, makes MineRange split each replicate's wall time
	// into dataset generation (GenNanos) versus mining (MineNanos),
	// accumulated across calls. Pure observation for tracing: it reads the
	// clock twice per replicate and can never influence the mined partial.
	Timing    bool
	GenNanos  int64
	MineNanos int64
}

// NewRangeScratch returns an empty scratch.
func NewRangeScratch() *RangeScratch {
	return &RangeScratch{scratch: mining.NewScratch()}
}

// MineRange executes one replicate range in-process against the given null
// model, appending each replicate's mined itemsets to out. It is the single
// code path behind both the local worker pool and the sigfimd worker
// endpoint: replicate Range.From+i is generated from Seeds[i] and mined at
// Floor with the requested algorithm, exactly as the single-process loop
// does. scr may be nil (a fresh scratch is used); out is reset first and its
// backing arrays are reused. The context is checked at replicate boundaries.
func MineRange(ctx context.Context, m randmodel.Model, req RangeRequest, scr *RangeScratch, out *Partial) error {
	if err := req.validate(); err != nil {
		return err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if scr == nil {
		scr = NewRangeScratch()
	}
	intra := req.Workers
	if intra < 1 {
		intra = 1
	}
	// Westfall-Young collection: the per-replicate minimum marginal p-value
	// needs the null model's marginals, which both shipped models expose
	// identically (item frequencies and transaction count are preserved by
	// construction under either null). The minimum is order-independent, so
	// the emission order of the mining algorithm cannot influence it.
	var statFreqs []float64
	statT := 0
	if req.StatFloor > 0 {
		statFreqs = m.ItemFrequencies()
		statT = m.NumTransactions()
	}
	out.reset(req)
	for i := 0; i < req.Range.Len(); i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		var t0, t1 time.Time
		if scr.Timing {
			t0 = time.Now()
		}
		scr.v = randmodel.GenerateReusing(m, stats.NewRNG(req.Seeds[i]), scr.v)
		if scr.Timing {
			t1 = time.Now()
			scr.GenNanos += t1.Sub(t0).Nanoseconds()
		}
		before := len(out.Sups)
		visit := func(items mining.Itemset, sup int) {
			out.Items = append(out.Items, items...)
			out.Sups = append(out.Sups, int32(sup))
		}
		minP := MinPNone
		if req.StatFloor > 0 {
			visit = func(items mining.Itemset, sup int) {
				out.Items = append(out.Items, items...)
				out.Sups = append(out.Sups, int32(sup))
				if sup >= req.StatFloor {
					fX := 1.0
					for _, it := range items {
						fX *= statFreqs[it]
					}
					if p := (stats.Binomial{N: statT, P: fX}).UpperTail(sup); p < minP {
						minP = p
					}
				}
			}
		}
		mining.VisitKAlgoScratch(scr.v, req.K, req.Floor, intra, req.Algorithm, scr.scratch, visit)
		if scr.Timing {
			scr.MineNanos += time.Since(t1).Nanoseconds()
		}
		out.Counts = append(out.Counts, int32(len(out.Sups)-before))
		if req.StatFloor > 0 {
			out.MinPs = append(out.MinPs, minP)
		}
	}
	return nil
}

// splitRanges partitions [0, delta) into consecutive ranges of at most size
// replicates.
func splitRanges(delta, size int) []ReplicateRange {
	if size < 1 {
		size = 1
	}
	out := make([]ReplicateRange, 0, (delta+size-1)/size)
	for from := 0; from < delta; from += size {
		to := from + size
		if to > delta {
			to = delta
		}
		out = append(out, ReplicateRange{From: from, To: to})
	}
	return out
}

// mergePartial folds one validated partial into the collection, replicate by
// replicate in range order: entries below the current prune floor are
// dropped, the soft cap triggers adaptive pruning, the entry budget is
// enforced, and progress fires once per replicate — the same per-replicate
// schedule as a single-process run, so the collection is bit-identical
// regardless of how replicates were grouped into ranges. minFloor receives
// the raised prune floor as a mining shortcut for ranges not yet claimed.
// Each adaptive prune records a montecarlo.prune span when ctx carries a
// trace recorder.
func mergePartial(ctx context.Context, col *collection, p *Partial, k, softCap, floor, total int, cfg Config, raiseFloor func(int)) error {
	off := 0
	for ri := 0; ri < p.To-p.From; ri++ {
		rep := p.From + ri
		cnt := int(p.Counts[ri])
		for i := off; i < off+cnt; i++ {
			sup := int(p.Sups[i])
			if sup < col.pruneFloor {
				continue
			}
			id, added := col.index.Insert(p.Items[i*k : (i+1)*k])
			if added {
				col.entries = append(col.entries, nil)
			}
			col.entries[id] = append(col.entries[id], entry{rep: int32(rep), sup: int32(sup)})
			col.numEntry++
			if sup > col.maxSup {
				col.maxSup = sup
			}
		}
		off += cnt
		if col.numEntry > softCap {
			entriesBefore := col.numEntry
			pruneStart := time.Now()
			col.prune(softCap / 2)
			raiseFloor(col.pruneFloor)
			trace.Add(ctx, "montecarlo.prune", pruneStart, time.Since(pruneStart),
				trace.Int("replicate", rep), trace.Int("entries_before", entriesBefore),
				trace.Int("entries_after", col.numEntry), trace.Int("floor_after", col.pruneFloor))
		}
		if col.numEntry > cfg.MaxEntries {
			return fmt.Errorf("montecarlo: entry budget %d exceeded at replicate %d (floor %d too low)", cfg.MaxEntries, rep, floor)
		}
		if cfg.Progress != nil {
			cfg.Progress(rep+1, total)
		}
	}
	return nil
}

package montecarlo

import "math/bits"

// evaluator computes the empirical Chen-Stein bounds b̂1(s), b̂2(s) from the
// mined collection. At a given s only the itemsets with at least one
// replicate support >= s ("live" itemsets) contribute; the evaluator builds,
// per live itemset, a replicate bitmask for O(Delta/64)-word joint
// exceedance counting, and an inverted item index for overlap enumeration.
//
// One evaluator serves every support level searchCrossing probes, so all of
// its working storage is pooled across evalCapped calls: the replicate masks
// live in one flat arena sized |W| * maskWords (each itemset id owns a fixed
// region, re-zeroed lazily when the itemset is live at the probed s), the
// live list reuses its backing array, and the inverted index keeps its
// per-item slices. The galloping search evaluates O(log smax) levels, so the
// former per-call mask allocations multiplied across the whole search.
type evaluator struct {
	col       *collection
	delta     int
	maskWords int
	// stamp machinery for neighbor deduplication.
	stamp   []int
	stampID int
	// pooled per-call storage.
	masks []uint64         // flat mask arena: itemset id i owns masks[i*maskWords:(i+1)*maskWords]
	lives []liveSet        // live list, rebuilt per call in place
	inv   map[uint32][]int // item -> live indices, slices truncated and reused
}

// liveSet is one live itemset at the probed support level: its collection id,
// exceedance probability, and replicate mask (a view into the arena).
type liveSet struct {
	id   int
	p    float64
	mask []uint64
}

func newEvaluator(col *collection, delta int) *evaluator {
	return &evaluator{
		col:       col,
		delta:     delta,
		maskWords: (delta + 63) / 64,
		stamp:     make([]int, col.numItemsets()),
		masks:     make([]uint64, col.numItemsets()*(delta+63)/64),
		inv:       make(map[uint32][]int),
	}
}

// eval computes b̂1 and b̂2 at support level s, in full.
func (ev *evaluator) eval(s int) BoundPoint {
	bp, _ := ev.evalCapped(s, 0)
	return bp
}

// evalCapped computes b̂1 and b̂2 at support level s.
//
//	b̂1(s) = sum over ordered pairs (X, Y) in W^2 with X ∩ Y != ∅
//	        (including X = Y) of p̂_X(s) p̂_Y(s)
//	b̂2(s) = sum over ordered pairs of DISTINCT overlapping (X, Y) of
//	        p̂_{X,Y}(s)
//
// where p̂_X(s) is the fraction of replicates in which sup(X) >= s and
// p̂_{X,Y}(s) the fraction where both exceed s. Itemsets outside W have
// empirical probability zero, per the paper.
//
// When budget > 0 the accumulation stops as soon as b̂1 + b̂2 exceeds it
// (every term is non-negative, so the partial sum certifies the bound is
// violated without the full O(|live|^2) work) and exceeded = true is
// returned with the partial values. At low support levels the live set can
// run to hundreds of thousands of itemsets, but the partial sum crosses any
// useful budget within a handful of terms — this is what keeps Algorithm 1's
// "is s-tilde already below the threshold?" probe cheap.
func (ev *evaluator) evalCapped(s int, budget float64) (bp BoundPoint, exceeded bool) {
	col := ev.col
	// Live itemsets and their exceedance probabilities/masks. Each live
	// itemset's mask region is zeroed on first touch this call; regions of
	// itemsets dead at this s keep stale bits, which nothing reads.
	lives := ev.lives[:0]
	for id, es := range col.entries {
		mask := ev.masks[id*ev.maskWords : (id+1)*ev.maskWords]
		cnt := 0
		for _, e := range es {
			if int(e.sup) >= s {
				if cnt == 0 {
					for i := range mask {
						mask[i] = 0
					}
				}
				mask[e.rep/64] |= 1 << (uint(e.rep) % 64)
				cnt++
			}
		}
		if cnt > 0 {
			lives = append(lives, liveSet{id: id, p: float64(cnt) / float64(ev.delta), mask: mask})
		}
	}
	ev.lives = lives
	if len(lives) == 0 {
		return BoundPoint{S: s}, false
	}
	// Inverted index: item -> live indices. The map and its slices persist
	// across calls; entries for items with no live itemset at this s stay
	// empty and are never consulted.
	inv := ev.inv
	for it := range inv {
		inv[it] = inv[it][:0]
	}
	for li, lv := range lives {
		for _, it := range col.itemsOf(lv.id) {
			inv[it] = append(inv[it], li)
		}
	}
	var b1, b2 float64
	for li, lv := range lives {
		ev.stampID++
		// X overlaps itself: include the diagonal in b1.
		neighborP := 0.0
		for _, it := range col.itemsOf(lv.id) {
			for _, oj := range inv[it] {
				if ev.stamp[oj] == ev.stampID {
					continue
				}
				ev.stamp[oj] = ev.stampID
				other := lives[oj]
				neighborP += other.p
				if oj != li {
					b2 += float64(andCount(lv.mask, other.mask)) / float64(ev.delta)
				}
			}
		}
		b1 += lv.p * neighborP
		if budget > 0 && b1+b2 > budget {
			return BoundPoint{S: s, B1: b1, B2: b2, Partial: true}, true
		}
	}
	return BoundPoint{S: s, B1: b1, B2: b2}, false
}

func andCount(a, b []uint64) int {
	c := 0
	for i := range a {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return c
}

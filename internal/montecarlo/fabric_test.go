package montecarlo

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"sigfim/internal/randmodel"
	"sigfim/internal/stats"
)

// The replicate-fabric unit tests: range splitting, partial validation, the
// MineRange worker path, and — through stub runners — the merge's invariants
// under out-of-order completion, malformed (duplicate-range) partials, and
// runner failure. The distributed HTTP stack has its own end-to-end suite at
// the repository root (distributed_determinism_test.go); these tests pin the
// montecarlo-level contracts it builds on.

// fabricModel is a small independence model dense enough that every replicate
// mines a nontrivial itemset collection.
func fabricModel() randmodel.Model {
	freqs := make([]float64, 24)
	for i := range freqs {
		freqs[i] = 0.08 + 0.01*float64(i%5)
	}
	return randmodel.IndependentModel{T: 150, Freqs: freqs}
}

// fabricSeeds derives per-replicate seeds exactly as FindPoissonThresholdCtx
// does: seed i of the root stream drives replicate i.
func fabricSeeds(rootSeed uint64, delta int) []uint64 {
	root := stats.NewRNG(rootSeed)
	seeds := make([]uint64, delta)
	for i := range seeds {
		seeds[i] = root.Uint64()
	}
	return seeds
}

func TestSplitRanges(t *testing.T) {
	cases := []struct {
		delta, size int
		want        []ReplicateRange
	}{
		{delta: 0, size: 3, want: []ReplicateRange{}},
		{delta: 1, size: 1, want: []ReplicateRange{{0, 1}}},
		{delta: 5, size: 2, want: []ReplicateRange{{0, 2}, {2, 4}, {4, 5}}},
		{delta: 6, size: 2, want: []ReplicateRange{{0, 2}, {2, 4}, {4, 6}}},
		{delta: 4, size: 99, want: []ReplicateRange{{0, 4}}},
		{delta: 3, size: 0, want: []ReplicateRange{{0, 1}, {1, 2}, {2, 3}}}, // size < 1 clamps to 1
	}
	for _, c := range cases {
		got := splitRanges(c.delta, c.size)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("splitRanges(%d, %d) = %v, want %v", c.delta, c.size, got, c.want)
		}
	}
	// Any split covers [0, delta) exactly once, in order.
	for _, size := range []int{1, 2, 3, 7, 100} {
		next := 0
		for _, r := range splitRanges(100, size) {
			if r.From != next || r.To <= r.From {
				t.Fatalf("splitRanges(100, %d): bad range %v after index %d", size, r, next)
			}
			next = r.To
		}
		if next != 100 {
			t.Fatalf("splitRanges(100, %d): covers up to %d, want 100", size, next)
		}
	}
}

func TestRangeRequestValidate(t *testing.T) {
	valid := RangeRequest{
		Range: ReplicateRange{From: 2, To: 5},
		K:     2, Floor: 3, Seeds: []uint64{1, 2, 3},
	}
	if err := valid.validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*RangeRequest)
		want   string
	}{
		{"empty range", func(r *RangeRequest) { r.Range.To = r.Range.From; r.Seeds = nil }, "invalid replicate range"},
		{"inverted range", func(r *RangeRequest) { r.Range.To = 1 }, "invalid replicate range"},
		{"negative from", func(r *RangeRequest) { r.Range.From = -1; r.Seeds = []uint64{1, 2, 3, 4, 5, 6} }, "invalid replicate range"},
		{"seed count mismatch", func(r *RangeRequest) { r.Seeds = r.Seeds[:2] }, "seeds"},
		{"bad k", func(r *RangeRequest) { r.K = 0 }, "K must be"},
		{"bad floor", func(r *RangeRequest) { r.Floor = 0 }, "floor must be"},
	}
	for _, c := range cases {
		req := valid
		c.mutate(&req)
		err := req.validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}
}

// TestMineRangeMatchesSingleReplicates pins the fabric's core algebra: mining
// [0, delta) as one range, as single-replicate ranges, or as uneven chunks
// yields partials whose concatenation is identical — the mined output of a
// replicate depends only on its seed, never on its range grouping.
func TestMineRangeMatchesSingleReplicates(t *testing.T) {
	m := fabricModel()
	const delta, k, floor = 12, 2, 2
	seeds := fabricSeeds(7, delta)

	mine := func(from, to int) *Partial {
		req := RangeRequest{
			Range: ReplicateRange{From: from, To: to},
			K:     k, Floor: floor, Seeds: seeds[from:to],
		}
		var p Partial
		if err := MineRange(context.Background(), m, req, nil, &p); err != nil {
			t.Fatalf("MineRange[%d,%d): %v", from, to, err)
		}
		if err := p.Validate(req); err != nil {
			t.Fatalf("partial[%d,%d) invalid: %v", from, to, err)
		}
		return &p
	}

	whole := mine(0, delta)
	if len(whole.Sups) == 0 {
		t.Fatal("whole-range partial mined nothing; test is vacuous")
	}

	concat := func(ranges []ReplicateRange) *Partial {
		out := &Partial{From: 0, To: delta, Floor: floor, K: k}
		for _, r := range ranges {
			p := mine(r.From, r.To)
			out.Counts = append(out.Counts, p.Counts...)
			out.Items = append(out.Items, p.Items...)
			out.Sups = append(out.Sups, p.Sups...)
		}
		return out
	}
	for _, size := range []int{1, 3, 5, delta} {
		got := concat(splitRanges(delta, size))
		if !reflect.DeepEqual(got, whole) {
			t.Fatalf("range size %d: concatenated partials differ from whole-range mine", size)
		}
	}
}

// TestMineRangeScratchReuse checks that a pooled scratch and a recycled
// output partial are observationally equivalent to fresh ones.
func TestMineRangeScratchReuse(t *testing.T) {
	m := fabricModel()
	seeds := fabricSeeds(11, 6)
	req := RangeRequest{
		Range: ReplicateRange{From: 0, To: 6},
		K:     2, Floor: 2, Seeds: seeds,
	}
	var fresh Partial
	if err := MineRange(context.Background(), m, req, nil, &fresh); err != nil {
		t.Fatal(err)
	}
	scr := NewRangeScratch()
	var recycled Partial
	for pass := 0; pass < 3; pass++ { // same buffers, same scratch, three times
		if err := MineRange(context.Background(), m, req, scr, &recycled); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(recycled, fresh) {
			t.Fatalf("pass %d: recycled-scratch partial differs from fresh partial", pass)
		}
	}
}

// runnerConfig is the base config the stub-runner tests run Algorithm 1 with.
func runnerConfig() Config {
	return Config{K: 2, Delta: 40, Epsilon: 0.05, Seed: 5, Workers: 4}
}

// TestRunnerBitIdentity runs FindPoissonThresholdCtx through a stub runner
// (executing each range in-process via MineRange, exactly as a remote worker
// would) at several range sizes and inflight bounds, and requires the result
// to be deep-equal to the plain single-process run.
func TestRunnerBitIdentity(t *testing.T) {
	m := fabricModel()
	base, err := FindPoissonThresholdCtx(context.Background(), m, runnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, rangeSize := range []int{0, 1, 3, 17, 64} {
		for _, inflight := range []int{1, 4} {
			cfg := runnerConfig()
			cfg.RangeSize = rangeSize
			cfg.RangeInflight = inflight
			cfg.Runner = func(ctx context.Context, req RangeRequest) (*Partial, error) {
				var p Partial
				if err := MineRange(ctx, m, req, nil, &p); err != nil {
					return nil, err
				}
				return &p, nil
			}
			got, err := FindPoissonThresholdCtx(context.Background(), m, cfg)
			if err != nil {
				t.Fatalf("rangeSize=%d inflight=%d: %v", rangeSize, inflight, err)
			}
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("rangeSize=%d inflight=%d: runner result differs from single-process run", rangeSize, inflight)
			}
		}
	}
}

// TestRunnerOutOfOrderCompletion forces partials to COMPLETE in reverse range
// order (the first-claimed range finishes last) and requires the merge — which
// consumes ranges strictly in replicate-index order — to still produce the
// single-process result.
func TestRunnerOutOfOrderCompletion(t *testing.T) {
	m := fabricModel()
	base, err := FindPoissonThresholdCtx(context.Background(), m, runnerConfig())
	if err != nil {
		t.Fatal(err)
	}

	cfg := runnerConfig()
	cfg.RangeSize = 7
	cfg.RangeInflight = 8
	numRanges := len(splitRanges(cfg.Delta, cfg.RangeSize))

	// Completion gate: range i may only return after every range j > i that
	// was dispatched concurrently has returned. With inflight == numRanges
	// every range is in flight at once, so completions run strictly backwards.
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	returned := make(map[int]bool)
	cfg.Runner = func(ctx context.Context, req RangeRequest) (*Partial, error) {
		var p Partial
		if err := MineRange(ctx, m, req, nil, &p); err != nil {
			return nil, err
		}
		idx := req.Range.From / 7
		mu.Lock()
		for later := idx + 1; later < numRanges; later++ {
			if !returned[later] {
				cond.Wait()
				later = idx // recheck all later ranges after every wakeup
			}
		}
		returned[idx] = true
		cond.Broadcast()
		mu.Unlock()
		return &p, nil
	}
	got, err := FindPoissonThresholdCtx(context.Background(), m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, base) {
		t.Fatal("reverse-order completion changed the result")
	}
}

// TestRunnerDuplicateRangePartial has the runner answer every request with a
// partial for range [0, size) — a worker echoing the wrong (duplicated)
// range. Validate must reject the mismatch and fail the run instead of
// merging the same replicates twice.
func TestRunnerDuplicateRangePartial(t *testing.T) {
	m := fabricModel()
	cfg := runnerConfig()
	cfg.RangeSize = 5
	var first *Partial
	var mu sync.Mutex
	cfg.Runner = func(ctx context.Context, req RangeRequest) (*Partial, error) {
		var p Partial
		if err := MineRange(ctx, m, req, nil, &p); err != nil {
			return nil, err
		}
		mu.Lock()
		defer mu.Unlock()
		if first == nil {
			first = &p
		}
		return first, nil // every later range gets range 0's partial
	}
	_, err := FindPoissonThresholdCtx(context.Background(), m, cfg)
	if err == nil {
		t.Fatal("duplicate-range partials were merged without error")
	}
	if !errors.Is(err, ErrInvalidPartial) {
		t.Fatalf("error %q does not wrap ErrInvalidPartial", err)
	}
	if !strings.Contains(err.Error(), "covers") {
		t.Fatalf("error %q does not name the range mismatch", err)
	}
}

// TestRunnerFloorViolationRejected: a partial claiming a mining floor above
// the requested floor silently dropped entries; Validate must refuse it.
func TestRunnerFloorViolationRejected(t *testing.T) {
	m := fabricModel()
	cfg := runnerConfig()
	cfg.RangeSize = 10
	cfg.Runner = func(ctx context.Context, req RangeRequest) (*Partial, error) {
		var p Partial
		if err := MineRange(ctx, m, req, nil, &p); err != nil {
			return nil, err
		}
		p.Floor = req.Floor + 5
		return &p, nil
	}
	_, err := FindPoissonThresholdCtx(context.Background(), m, cfg)
	if err == nil || !strings.Contains(err.Error(), "floor") {
		t.Fatalf("floor violation not rejected: %v", err)
	}
}

// TestRunnerFailurePropagates: a runner error (all retries exhausted inside
// the runner) fails the estimate with the offending range named.
func TestRunnerFailurePropagates(t *testing.T) {
	m := fabricModel()
	cfg := runnerConfig()
	cfg.RangeSize = 8
	cfg.Runner = func(ctx context.Context, req RangeRequest) (*Partial, error) {
		if req.Range.From >= 16 && req.Range.From < 24 {
			return nil, fmt.Errorf("worker exploded")
		}
		var p Partial
		if err := MineRange(ctx, m, req, nil, &p); err != nil {
			return nil, err
		}
		return &p, nil
	}
	_, err := FindPoissonThresholdCtx(context.Background(), m, cfg)
	if err == nil {
		t.Fatal("runner failure did not fail the run")
	}
	if !strings.Contains(err.Error(), "replicate range [16,24)") || !strings.Contains(err.Error(), "worker exploded") {
		t.Fatalf("error %q does not name the failed range and cause", err)
	}
}

// TestRunnerSwapNullBitIdentity repeats the runner identity check under the
// swap-randomization null, whose replicates re-run a Markov chain from the
// base dataset — the null the distributed path must also reproduce exactly.
func TestRunnerSwapNullBitIdentity(t *testing.T) {
	base2 := randmodel.IndependentModel{T: 80, Freqs: fabricModel().(randmodel.IndependentModel).Freqs}
	ds := base2.Generate(stats.NewRNG(99)).Horizontal()
	m := &randmodel.SwapModel{Base: ds, ProposalsPerOccurrence: 2}

	cfg := Config{K: 2, Delta: 24, Epsilon: 0.05, Seed: 3, Workers: 4}
	want, err := FindPoissonThresholdCtx(context.Background(), m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RangeSize = 5
	cfg.Runner = func(ctx context.Context, req RangeRequest) (*Partial, error) {
		// A "remote" executor: fresh model value built from the same base
		// dataset, as a worker process would construct it.
		worker := &randmodel.SwapModel{Base: ds, ProposalsPerOccurrence: 2}
		var p Partial
		if err := MineRange(ctx, worker, req, nil, &p); err != nil {
			return nil, err
		}
		return &p, nil
	}
	got, err := FindPoissonThresholdCtx(context.Background(), m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("swap-null runner result differs from single-process run")
	}
}

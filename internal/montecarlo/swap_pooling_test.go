package montecarlo

import (
	"math"
	"reflect"
	"testing"

	"sigfim/internal/dataset"
	"sigfim/internal/mining"
	"sigfim/internal/randmodel"
	"sigfim/internal/stats"
)

// Swap-null pooling-determinism tests, the swap counterpart of
// pooling_test.go: the in-place swap generator (pooled chain scratch +
// pooled Vertical) must not change FindPoissonThreshold's output by a single
// bit — for any worker count, against the allocating Generate path, and
// against the golden values below, which were captured from the pre-refactor
// implementation (map-based chain, per-replicate materialization) on the
// same base dataset and seed.

// swapPoolingBase rebuilds the fixed base dataset the goldens were captured
// on: one independence draw (n=150, t=3000, power-law frequencies, seed 99)
// materialized horizontally.
func swapPoolingBase() *dataset.Dataset {
	z := stats.FitPowerLaw(150, 1e-3, 0.12, 4)
	im := randmodel.IndependentModel{T: 3000, Freqs: z.Frequencies()}
	return im.Generate(stats.NewRNG(99)).Horizontal()
}

// swapPoolingGolden pins the pre-refactor outputs (Delta=50, Epsilon=0.01,
// Seed=42, Workers=1, algorithm eclat-tids, default chain length).
var swapPoolingGolden = []struct {
	k           int
	sMin        int
	sTilde      float64
	floor       int
	sMax        int
	numItemsets int
	curveLen    int
	lambdaFloor float64
}{
	{k: 2, sMin: 42, sTilde: 32.596000, floor: 33, sMax: 45, numItemsets: 5, curveLen: 7, lambdaFloor: 0.880000},
	{k: 3, sMin: 8, sTilde: 2.390373, floor: 3, sMax: 11, numItemsets: 3879, curveLen: 7, lambdaFloor: 107.920000},
}

// allocOnlySwap hides GenerateInto from the replicate engine, forcing the
// pre-refactor allocating fallback path through randmodel.GenerateReusing.
type allocOnlySwap struct{ m *randmodel.SwapModel }

func (a allocOnlySwap) Generate(r *stats.RNG) *dataset.Vertical { return a.m.Generate(r) }
func (a allocOnlySwap) NumTransactions() int                    { return a.m.NumTransactions() }
func (a allocOnlySwap) NumItems() int                           { return a.m.NumItems() }
func (a allocOnlySwap) ItemFrequencies() []float64              { return a.m.ItemFrequencies() }

func TestFindPoissonThresholdSwapPoolingDeterminism(t *testing.T) {
	base := swapPoolingBase()
	workerCounts := []int{1, 4, 8}
	for _, g := range swapPoolingGolden {
		m := &randmodel.SwapModel{Base: base}
		cfg := Config{K: g.k, Delta: 50, Epsilon: 0.01, Seed: 42, Algorithm: mining.EclatTids}

		// The allocating reference run: in-place generation disabled.
		cfg.Workers = 1
		ref, err := FindPoissonThreshold(allocOnlySwap{m}, cfg)
		if err != nil {
			t.Fatalf("k=%d allocating reference: %v", g.k, err)
		}

		for _, w := range workerCounts {
			cfg.Workers = w
			res, err := FindPoissonThreshold(m, cfg)
			if err != nil {
				t.Fatalf("k=%d workers=%d: %v", g.k, w, err)
			}
			if res.SMin != g.sMin || res.Floor != g.floor || res.SMax != g.sMax ||
				res.NumItemsets != g.numItemsets || len(res.Curve) != g.curveLen {
				t.Fatalf("k=%d workers=%d: got (smin=%d floor=%d smax=%d W=%d curve=%d), want pre-refactor (%d %d %d %d %d)",
					g.k, w, res.SMin, res.Floor, res.SMax, res.NumItemsets, len(res.Curve),
					g.sMin, g.floor, g.sMax, g.numItemsets, g.curveLen)
			}
			if math.Abs(res.STilde-g.sTilde) > 1e-4 {
				t.Fatalf("k=%d workers=%d: sTilde %v, want %v", g.k, w, res.STilde, g.sTilde)
			}
			if math.Abs(res.Lambda(res.Floor)-g.lambdaFloor) > 1e-4 {
				t.Fatalf("k=%d workers=%d: Lambda(floor) %v, want %v", g.k, w, res.Lambda(res.Floor), g.lambdaFloor)
			}
			// Bit-identical to the allocating path: same curve floats from
			// the same additions in the same order, same support pool.
			if !reflect.DeepEqual(res.Curve, ref.Curve) {
				t.Fatalf("k=%d workers=%d: bound curve differs from the allocating path", g.k, w)
			}
			if !reflect.DeepEqual(res.allSupports, ref.allSupports) {
				t.Fatalf("k=%d workers=%d: lambda support pool differs from the allocating path", g.k, w)
			}
		}
	}
}

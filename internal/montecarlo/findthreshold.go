// Package montecarlo implements Algorithm 1 of the paper
// (FindPoissonThreshold): a Monte Carlo estimate of the support threshold
// s_min above which the count Q̂_{k,s} of frequent k-itemsets in a random
// dataset is approximately Poisson.
//
// The estimator generates Delta independent datasets from the null model,
// mines the k-itemsets with support at least s-tilde (the largest expected
// k-itemset support) from each, and estimates the Chen-Stein quantities
// b1(s) and b2(s) from the empirical marginal and joint exceedance
// frequencies of the union set W. The returned threshold is
//
//	ŝ_min = min{ s > s-tilde : b̂1(s) + b̂2(s) <= eps/4 },
//
// halving s-tilde and re-mining when even s-tilde already satisfies the
// bound (the paper's goto). Theorem 4: Delta = O(log(1/delta)/eps)
// replicates suffice for ŝ_min to be sound with probability 1 - delta.
//
// Both b̂1 and b̂2 are non-increasing in s, so instead of scanning every
// support level the search gallops downward from the maximum observed
// support and finishes with a binary search; each evaluation touches only
// the itemsets still live at that s, which keeps the expensive low-s
// evaluations out of the search path entirely.
package montecarlo

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"sigfim/internal/mining"
	"sigfim/internal/randmodel"
	"sigfim/internal/stats"
	"sigfim/internal/trace"
)

// Config parameterizes Algorithm 1.
type Config struct {
	// K is the itemset size under study.
	K int
	// Delta is the number of random replicates (the paper's ∆; 1000 in the
	// paper's experiments).
	Delta int
	// Epsilon is the Poisson-approximation tolerance (the paper uses 0.01);
	// the acceptance test inside the algorithm uses Epsilon/4 per Theorem 4.
	Epsilon float64
	// Seed fixes the replicate streams.
	Seed uint64
	// MaxEntries caps the total number of (itemset, replicate) support
	// records; the estimator fails rather than exhaust memory when the
	// mining floor would collect more. Zero means 50 million.
	MaxEntries int
	// MaxHalvings bounds the s-tilde halving loop. Zero means 20.
	MaxHalvings int
	// Workers bounds the total mining parallelism. Zero means GOMAXPROCS.
	// Workers are split between replicate-level and intra-mine parallelism:
	// up to Delta goroutines each mine one replicate (replicates are
	// embarrassingly parallel, so this level is saturated first), and only
	// when Workers exceeds the replicate count does the surplus parallelize
	// each individual mine through the sharded mining engine. Results are
	// merged in replicate order and intra-mine shards replay in serial
	// order, so the output is identical for any worker count.
	Workers int
	// Algorithm selects the replicate miner (mining.Auto picks Eclat with an
	// automatic physical layout; mining.FPGrowth and mining.Apriori force
	// those engines). Every algorithm mines the same itemsets, and for a
	// fixed algorithm the result is identical for any worker count.
	Algorithm mining.Algorithm
	// Progress, when non-nil, is called on the merge goroutine after each
	// replicate's itemsets have been merged, with the number merged so far
	// and the total Delta. An s-tilde halving restarts the count from zero.
	// The callback must be fast and must not block; it cannot influence the
	// result.
	Progress func(done, total int)
	// Runner, when non-nil, executes replicate ranges remotely (see
	// RangeRunner): the Delta replicates are split into ranges of RangeSize,
	// dispatched concurrently through the runner, and the returned partials
	// are merged in replicate-index order. Results are bit-identical to the
	// in-process run for every runner, range size, and in-flight count,
	// because each replicate index consumes the same seed and the merge
	// consumes replicates in the same order either way.
	Runner RangeRunner
	// RangeSize is the number of replicates per Runner dispatch (0 picks a
	// size that keeps ~4 ranges per in-flight slot). Ignored without Runner.
	RangeSize int
	// RangeInflight bounds concurrent Runner dispatches (0 = 4). Ignored
	// without Runner.
	RangeInflight int
	// CollectMinPs additionally records, for every replicate, the minimum
	// marginal Binomial p-value over the replicate's mined itemsets — the
	// Westfall-Young min-p null distribution (Result.MinPs). Collection
	// pins every replicate range's mining floor to the halving's base floor
	// (disabling the adaptive raised-floor mining shortcut, which is racy by
	// design and merge-corrected, so the minimum's family would otherwise
	// depend on scheduling) and costs one exact Binomial tail per mined
	// itemset; it changes nothing else about the estimate, and the recorded
	// distribution is bit-identical for every worker count, range size,
	// executor, and algorithm.
	CollectMinPs bool
}

func (c Config) withDefaults() Config {
	if c.MaxEntries == 0 {
		c.MaxEntries = 50_000_000
	}
	if c.MaxHalvings == 0 {
		c.MaxHalvings = 20
	}
	return c
}

func (c Config) validate() error {
	if c.K < 1 {
		return fmt.Errorf("montecarlo: K must be >= 1, got %d", c.K)
	}
	if c.Delta < 1 {
		return fmt.Errorf("montecarlo: Delta must be >= 1, got %d", c.Delta)
	}
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		return fmt.Errorf("montecarlo: Epsilon must be in (0,1), got %v", c.Epsilon)
	}
	return nil
}

// DeltaForConfidence returns the Theorem 4 replicate count 8 ln(1/delta)/eps
// guaranteeing Pr(b1(ŝ_min)+b2(ŝ_min) <= eps) >= 1 - delta.
func DeltaForConfidence(eps, delta float64) int {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		panic("montecarlo: DeltaForConfidence domain error")
	}
	return int(math.Ceil(8 * math.Log(1/delta) / eps))
}

// BoundPoint is one evaluated point of the empirical bound curve. Partial
// marks points whose accumulation stopped early once the bound provably
// exceeded the acceptance target; their B1/B2 are lower bounds on the true
// values.
type BoundPoint struct {
	S       int
	B1      float64
	B2      float64
	Partial bool
}

// Result carries the estimated threshold plus the by-products Procedure 2
// reuses: the empirical lambda estimator and the evaluation trace.
type Result struct {
	// SMin is the estimated Poisson threshold ŝ_min.
	SMin int
	// STilde is the final (possibly halved) s-tilde the estimate ran with.
	STilde float64
	// Floor is the integer mining threshold that produced W.
	Floor int
	// SMax is one past the maximum support observed in any replicate.
	SMax int
	// NumItemsets is |W|, the union count of distinct itemsets mined.
	NumItemsets int
	// Curve lists every (s, b1, b2) evaluation performed, ascending in s.
	Curve []BoundPoint
	// Delta is the replicate count used.
	Delta int
	// MinPs, filled under Config.CollectMinPs, holds one value per replicate
	// (index order, len == Delta): the minimum marginal Binomial p-value any
	// k-itemset with support >= MinPFloor attained in that replicate, or
	// MinPNone for replicates in which no itemset reached the floor. This is
	// the Westfall-Young null distribution mht.WestfallYoung consumes.
	MinPs []float64
	// MinPFloor is the support floor the MinPs minima range over — the final
	// halving's base mining floor, always <= the s_min the caller will test
	// at. Minimizing over this superset family can only produce smaller
	// minima, i.e. larger adjusted p-values: the truncation is conservative.
	MinPFloor int

	// allSupports holds every recorded support across replicates, sorted
	// ascending; Lambda(s) = (#supports >= s) / Delta.
	allSupports []int
}

// Lambda returns the Monte Carlo estimate of E[Q̂_{k,s}] for any s >= Floor,
// reusing the Algorithm 1 replicates exactly as the paper prescribes for
// Procedure 2's lambda_i values.
func (r *Result) Lambda(s int) float64 {
	if s < r.Floor {
		panic(fmt.Sprintf("montecarlo: Lambda(%d) below mining floor %d", s, r.Floor))
	}
	idx := sort.SearchInts(r.allSupports, s)
	return float64(len(r.allSupports)-idx) / float64(r.Delta)
}

// entry records one replicate's support of one itemset.
type entry struct {
	rep int32
	sup int32
}

// collection holds the mined union set W with per-replicate supports. The
// itemsets live in a string-free mining.ItemsetTable — an open-addressing
// hash table over the packed [k]uint32 tuples — whose dense insertion-order
// entry ids index the parallel entries slices. The former map[string]int +
// Itemset.Key() index allocated one short-lived string per emitted itemset
// per replicate, which dominated GC pressure in the replicate merge.
//
// pruneFloor is the adaptive retention threshold: when the entry volume
// exceeds the soft cap, entries below a raised pruneFloor are discarded.
// Dropping them is sound because at the moment of pruning there were more
// than softCap recorded (itemset, replicate) pairs with support >= the old
// floor, and the diagonal terms of b1 alone give
//
//	b1(s) >= sum_X p_X(s)^2 >= numEntry / Delta^2   for every s <= old floor
//
// (each entry contributes at least (1/Delta)^2 through its itemset's
// square), which dwarfs eps/4 for any usable configuration — so every
// support level below pruneFloor is already known to fail the Poisson
// acceptance test and never needs an exact evaluation.
type collection struct {
	k          int
	index      *mining.ItemsetTable // W: id lookup + packed tuple storage
	entries    [][]entry            // per itemset id, ascending rep
	maxSup     int
	numEntry   int
	pruneFloor int
}

// newCollection returns an empty collection for k-itemsets.
func newCollection(k, floor int) *collection {
	return &collection{k: k, index: mining.NewItemsetTable(k, 0), pruneFloor: floor}
}

// itemsOf returns the itemset of entry id (a view into the table storage;
// valid until the next prune).
func (col *collection) itemsOf(id int) mining.Itemset {
	return mining.Itemset(col.index.Items(id))
}

// numItemsets returns |W|.
func (col *collection) numItemsets() int { return col.index.Len() }

// softCapFor returns the entry volume at which pruning kicks in; it must
// exceed Delta^2 * eps / 4 for the prune justification above to hold, which
// 2M does for every Delta up to ~28000 at eps = 0.01.
func softCapFor(delta int) int {
	limit := 2_000_000
	if need := delta * delta; limit < need {
		limit = need
	}
	return limit
}

// prune raises pruneFloor until at most target entries remain, rebuilding
// the compact structures. Surviving itemsets are re-inserted in id order, so
// the rebuilt table assigns the same relative ids a from-scratch merge at the
// new floor would — the prune schedule stays deterministic for every worker
// count. Pruning is rare (it fires only when the entry volume crosses the
// multi-million soft cap), so the rebuild allocates a fresh table.
func (col *collection) prune(target int) {
	// Histogram of entry supports to pick the new floor.
	hist := make(map[int]int)
	for _, es := range col.entries {
		for _, e := range es {
			hist[int(e.sup)]++
		}
	}
	newFloor := col.pruneFloor
	remaining := col.numEntry
	for remaining > target {
		remaining -= hist[newFloor]
		newFloor++
	}
	index := mining.NewItemsetTable(col.k, col.index.Len()/2)
	entries := col.entries[:0]
	num := 0
	for id := 0; id < col.index.Len(); id++ {
		es := col.entries[id]
		kept := es[:0]
		for _, e := range es {
			if int(e.sup) >= newFloor {
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 {
			continue
		}
		index.Insert(col.index.Items(id)) // new id == len(entries)
		entries = append(entries, kept)
		num += len(kept)
	}
	col.index = index
	col.entries = entries
	col.numEntry = num
	col.pruneFloor = newFloor
}

// FindPoissonThreshold runs Algorithm 1 against the given null model —
// usually the paper's independence model, but any Model works, including
// swap randomization (the adaptation the paper's Section 1.1 anticipates).
func FindPoissonThreshold(m randmodel.Model, cfg Config) (*Result, error) {
	return FindPoissonThresholdCtx(context.Background(), m, cfg)
}

// FindPoissonThresholdCtx is FindPoissonThreshold with cooperative
// cancellation. The context is checked at replicate boundaries of the Monte
// Carlo loop (the only unbounded stage); once canceled the call returns
// ctx.Err() promptly and no partial Result ever escapes, so cancellation can
// never perturb the determinism of results that do complete.
func FindPoissonThresholdCtx(ctx context.Context, m randmodel.Model, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if im, ok := m.(randmodel.IndependentModel); ok {
		if err := im.Validate(); err != nil {
			return nil, err
		}
	}

	// Per-replicate seeds: deterministic regeneration without retaining the
	// datasets lets the floor drop by re-mining instead of re-storing.
	root := stats.NewRNG(cfg.Seed)
	seeds := make([]uint64, cfg.Delta)
	for i := range seeds {
		seeds[i] = root.Uint64()
	}

	sTilde := maxExpectedSupport(m, cfg.K)
	res := &Result{Delta: cfg.Delta}
	epsQuarter := cfg.Epsilon / 4

	for halving := 0; ; halving++ {
		if halving > cfg.MaxHalvings {
			return nil, fmt.Errorf("montecarlo: exceeded %d s-tilde halvings", cfg.MaxHalvings)
		}
		floor := floorOf(sTilde)
		hctx, hsp := trace.Start(ctx, "montecarlo.halving",
			trace.Int("halving", halving), trace.Int("floor", floor))
		col, minPs, err := mineAll(hctx, m, seeds, floor, cfg)
		if err != nil {
			hsp.End(trace.String("outcome", "error"))
			return nil, err
		}
		// Each halving re-collects; the accepted halving's distribution (the
		// one whose floor the caller's s_min will sit above) is what persists.
		if cfg.CollectMinPs {
			res.MinPs = minPs
			res.MinPFloor = floor
		}
		if col.numEntry == 0 {
			// W empty: no k-itemset ever reaches the floor. At floor 1 the
			// Poisson approximation is vacuous (Q̂ is 0 a.s.); accept 1.
			if floor <= 1 {
				res.SMin = 1
				res.STilde = sTilde
				res.Floor = floor
				res.SMax = floor + 1
				finishResult(res, col)
				hsp.End(trace.String("outcome", "accept-floor"))
				return res, nil
			}
			sTilde /= 2
			hsp.End(trace.String("outcome", "halve"))
			continue
		}
		ev := newEvaluator(col, cfg.Delta)
		// effFloor is the lowest support whose bound can still be evaluated
		// exactly; levels below it were adaptively pruned, which is only
		// done when their bound provably exceeds eps/4 (see collection).
		effFloor := col.pruneFloor
		if effFloor == floor {
			// Capped evaluation: we only need to know on which side of
			// eps/4 the bound at the floor lies, and the partial sum
			// certifies "above" after a handful of terms even when the
			// floor-level live set is enormous.
			bFloor, floorExceeded := ev.evalCapped(floor, epsQuarter)
			res.Curve = append(res.Curve, bFloor)
			if !floorExceeded && bFloor.B1+bFloor.B2 <= epsQuarter {
				// Even s-tilde satisfies the bound; the true threshold is
				// lower.
				if floor <= 1 {
					res.SMin = 1
					res.STilde = sTilde
					res.Floor = floor
					res.SMax = col.maxSup + 1
					finishResult(res, col)
					hsp.End(trace.String("outcome", "accept-floor"))
					return res, nil
				}
				sTilde /= 2
				res.Curve = res.Curve[:0]
				hsp.End(trace.String("outcome", "halve"))
				continue
			}
		}
		// Search (effFloor, smax] for the crossing, galloping down from smax.
		smax := col.maxSup + 1
		_, ssp := trace.Start(hctx, "montecarlo.search",
			trace.Int("floor", effFloor), trace.Int("smax", smax))
		sMin := searchCrossing(ev, effFloor, smax, epsQuarter, res)
		ssp.End(trace.Int("smin", sMin), trace.Int("evaluations", len(res.Curve)))
		res.SMin = sMin
		res.STilde = sTilde
		res.Floor = effFloor
		res.SMax = smax
		finishResult(res, col)
		hsp.End(trace.String("outcome", "done"), trace.Int("smin", sMin))
		return res, nil
	}
}

// finishResult installs the lambda support pool and sorts the curve.
func finishResult(res *Result, col *collection) {
	all := make([]int, 0, col.numEntry)
	for _, es := range col.entries {
		for _, e := range es {
			all = append(all, int(e.sup))
		}
	}
	sort.Ints(all)
	res.allSupports = all
	res.NumItemsets = col.numItemsets()
	sort.Slice(res.Curve, func(i, j int) bool { return res.Curve[i].S < res.Curve[j].S })
}

// searchCrossing finds min{s in (floor, smax] : b1+b2 <= target}. The bound
// is non-increasing in s and known to exceed target at floor. Evaluations
// are appended to res.Curve.
func searchCrossing(ev *evaluator, floor, smax int, target float64, res *Result) int {
	check := func(s int) bool {
		bp, exceeded := ev.evalCapped(s, target)
		res.Curve = append(res.Curve, bp)
		return !exceeded && bp.B1+bp.B2 <= target
	}
	if !check(smax) {
		// Even the top support fails (possible when max support recurs
		// across many replicates); by convention return smax+1, where Q̂ is
		// 0 a.s. and the bound is 0.
		return smax + 1
	}
	// Gallop downward from smax: find lo with bound > target.
	lo, hi := floor, smax // invariant: fails at lo, holds at hi
	step := 1
	s := smax - 1
	for s > floor {
		if !check(s) {
			lo = s
			break
		}
		hi = s
		step *= 2
		s -= step
	}
	if s <= floor {
		lo = floor
	}
	// Binary search in (lo, hi).
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if check(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// floorOf converts s-tilde into the integer mining threshold.
func floorOf(sTilde float64) int {
	f := int(math.Ceil(sTilde))
	if f < 1 {
		f = 1
	}
	return f
}

// maxExpectedSupport returns the paper's s-tilde: t times the product of the
// k largest item frequencies, the largest expected support of any k-itemset
// under the null model.
func maxExpectedSupport(m randmodel.Model, k int) float64 {
	freqs := m.ItemFrequencies()
	if k > len(freqs) {
		return 0
	}
	top := append([]float64(nil), freqs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(top)))
	prod := float64(m.NumTransactions())
	for i := 0; i < k; i++ {
		prod *= top[i]
	}
	return prod
}

// rangeResult carries one range's partial (or the error that produced none)
// from an executor goroutine to the merge.
type rangeResult struct {
	p   *Partial
	err error
}

// mineAll mines the k-itemsets with support >= floor from each replicate,
// pruning adaptively (see collection) when the entry volume exceeds the
// Delta-dependent soft cap. The replicates are partitioned into explicit
// ReplicateRange jobs executed concurrently — in-process through MineRange
// when cfg.Runner is nil (range size 1, so the adaptive floor shortcut and
// buffer recycling work per replicate), or through cfg.Runner (typically an
// HTTP fan-out over remote sigfimd workers) otherwise. Either way the merge
// consumes partials strictly in replicate-index order, so the collection —
// including the prune schedule — is identical for any worker count, range
// size, executor, and partial arrival order.
//
// The local path is the hot loop of the whole system, and it is
// allocation-free in steady state: each worker keeps one RangeScratch
// (pooled Vertical whose column backing arrays are reused across replicates
// via GenerateReusing, plus a mining.Scratch reused across mines) and
// recycles flat Partial buffers through a free list; the merge indexes
// itemsets through the collection's string-free table.
// Under cfg.CollectMinPs, mineAll also returns the per-replicate minimum
// marginal p-values (one per seed, replicate order); otherwise the second
// return is nil.
func mineAll(ctx context.Context, m randmodel.Model, seeds []uint64, floor int, cfg Config) (*collection, []float64, error) {
	k := cfg.K
	col := newCollection(k, floor)
	softCap := softCapFor(len(seeds))
	var minPs []float64
	if cfg.CollectMinPs {
		minPs = make([]float64, len(seeds))
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Split the budget: replicate-level parallelism soaks up workers first;
	// any surplus parallelizes each replicate's mine.
	intra := 1
	if workers > len(seeds) {
		intra = workers / len(seeds)
		workers = len(seeds)
	}

	// Partition the replicates into ranges. Local execution uses ranges of
	// one replicate — exactly the historical per-replicate loop — while a
	// Runner amortizes its per-dispatch overhead over larger ranges, sized so
	// every in-flight slot sees a few ranges (work stealing across uneven
	// workers) unless pinned by RangeSize.
	inflight := workers
	rangeSize := 1
	if cfg.Runner != nil {
		inflight = cfg.RangeInflight
		if inflight < 1 {
			inflight = 4
		}
		rangeSize = cfg.RangeSize
		if rangeSize < 1 {
			rangeSize = (len(seeds) + 4*inflight - 1) / (4 * inflight)
			if rangeSize < 1 {
				rangeSize = 1
			}
		}
	}
	ranges := splitRanges(len(seeds), rangeSize)
	if len(ranges) < inflight {
		inflight = len(ranges)
	}

	// The montecarlo.mine span covers the whole fan-out: its children are
	// the per-range fabric spans (remote execution) and any prune spans; its
	// closing attrs aggregate where the wall time went. traced gates the
	// measurement work so an untraced run touches the clock no more than
	// before.
	traced := trace.Enabled(ctx)
	ctx, msp := trace.Start(ctx, "montecarlo.mine",
		trace.Int("replicates", len(seeds)), trace.Int("floor", floor),
		trace.Int("range_size", rangeSize), trace.Int("ranges", len(ranges)),
		trace.Int("inflight", inflight))
	var genNanos, mineNanos atomic.Int64

	// Executors mine ranges at the floor known when the range was claimed;
	// the merge re-filters against the current (possibly higher) prune
	// floor. minFloor is read atomically as a mining shortcut only —
	// correctness never depends on it.
	var minFloor atomic.Int64
	minFloor.Store(int64(floor))

	// Internal cancellation: when the merge returns early (runner failure,
	// entry budget, caller cancellation) the executors stop claiming ranges
	// and any in-flight runner call is canceled.
	ctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	outputs := make([]chan rangeResult, len(ranges))
	for i := range outputs {
		outputs[i] = make(chan rangeResult, 1)
	}
	// Consumed partial buffers return here for any local executor to reuse;
	// capacity bounds the number of buffers in flight (executors mining +
	// merge lag).
	free := make(chan *Partial, 2*inflight+1)
	var next atomic.Int64
	for w := 0; w < inflight; w++ {
		go func() {
			var scr *RangeScratch
			if cfg.Runner == nil {
				scr = NewRangeScratch()
				scr.Timing = traced
			}
			for {
				// Cancellation checkpoint: stop claiming ranges once the
				// context dies. Ranges already claimed still complete and
				// deposit into their (buffered) output slot, so no goroutine
				// ever blocks on an abandoned merge.
				if ctx.Err() != nil {
					return
				}
				idx := int(next.Add(1)) - 1
				if idx >= len(ranges) {
					return
				}
				rg := ranges[idx]
				req := RangeRequest{
					Range:     rg,
					K:         k,
					Floor:     int(minFloor.Load()),
					Algorithm: cfg.Algorithm,
					Seeds:     seeds[rg.From:rg.To],
					Workers:   intra,
				}
				if cfg.CollectMinPs {
					// The min-p statistic ranges over the itemsets reaching
					// the mining floor, so the floor must be the same for
					// every range regardless of scheduling: pin it to the
					// halving's base floor instead of the racy raised-floor
					// shortcut (the merge re-filters either way).
					req.Floor = floor
					req.StatFloor = floor
				}
				if cfg.Runner != nil {
					p, err := cfg.Runner(ctx, req)
					if err == nil {
						err = p.Validate(req)
					}
					outputs[idx] <- rangeResult{p: p, err: err}
					continue
				}
				var out *Partial
				select {
				case out = <-free:
				default:
					out = &Partial{}
				}
				g0, m0 := scr.GenNanos, scr.MineNanos
				err := MineRange(ctx, m, req, scr, out)
				if traced {
					genNanos.Add(scr.GenNanos - g0)
					mineNanos.Add(scr.MineNanos - m0)
				}
				outputs[idx] <- rangeResult{p: out, err: err}
			}
		}()
	}

	// stall/maxStall accumulate how long the ordered merge sat waiting for
	// the next-in-order range — the straggler signal a trace makes visible.
	var stall, maxStall time.Duration
	for idx, rg := range ranges {
		var res rangeResult
		var waitStart time.Time
		if traced {
			waitStart = time.Now()
		}
		select {
		case res = <-outputs[idx]:
		case <-ctx.Done():
			// Range boundary cancellation: abandon the merge without
			// touching the partially built collection again. Executors drain
			// themselves via the ctx check above.
			msp.End(trace.String("outcome", "canceled"))
			return nil, nil, ctx.Err()
		}
		if traced {
			w := time.Since(waitStart)
			stall += w
			if w > maxStall {
				maxStall = w
			}
		}
		if res.err != nil {
			msp.End(trace.String("outcome", "error"))
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			return nil, nil, fmt.Errorf("montecarlo: replicate range [%d,%d): %w", rg.From, rg.To, res.err)
		}
		if cfg.CollectMinPs {
			copy(minPs[rg.From:rg.To], res.p.MinPs)
		}
		if err := mergePartial(ctx, col, res.p, k, softCap, floor, len(seeds), cfg, func(f int) {
			minFloor.Store(int64(f))
		}); err != nil {
			msp.End(trace.String("outcome", "error"))
			return nil, nil, err
		}
		if cfg.Runner == nil {
			select {
			case free <- res.p:
			default:
			}
		}
	}
	msp.End(trace.String("outcome", "ok"), trace.Int("entries", col.numEntry),
		trace.Int("generate_ms", int(genNanos.Load()/1e6)),
		trace.Int("mine_ms", int(mineNanos.Load()/1e6)),
		trace.Int("merge_wait_ms", int(stall.Milliseconds())),
		trace.Int("merge_wait_max_ms", int(maxStall.Milliseconds())))
	return col, minPs, nil
}

// Package client is a thin Go client for the sigfimd HTTP API: health and
// stats probes, dataset and job listings, job submission and cancellation,
// and live job watching over the Server-Sent Events stream. It exchanges
// the exact wire types of internal/service — so every job kind the server
// accepts (significant, smin, closed, maximal, rules) and every config knob,
// including the multiple-testing Correction, flows through unchanged — and
// is the library behind the "sigfim jobs" subcommand.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"sigfim"
	"sigfim/internal/service"
	"sigfim/internal/trace"
)

// Client calls one sigfimd server. Construct with New; the zero value has no
// base URL and is not usable.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the server at base, e.g. "http://127.0.0.1:8080".
// A nil httpClient selects http.DefaultClient — deliberately without a
// global timeout, because Watch holds one streaming response open for the
// whole life of a job; bound individual calls through their context, or pass
// a custom client.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// apiError turns a non-2xx response into an error, preferring the service's
// {"error": "..."} envelope.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("server: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

// do performs one JSON round trip; out nil skips decoding.
func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return apiError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health probes GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Stats returns GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (service.Stats, error) {
	var st service.Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Datasets lists the registered datasets.
func (c *Client) Datasets(ctx context.Context) ([]service.DatasetInfo, error) {
	var env struct {
		Datasets []service.DatasetInfo `json:"datasets"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/datasets", nil, &env)
	return env.Datasets, err
}

// Jobs lists every job in submission order. Listings omit result bytes by
// contract; fetch a single job with Job to read its result.
func (c *Client) Jobs(ctx context.Context) ([]service.JobStatus, error) {
	var env struct {
		Jobs []service.JobStatus `json:"jobs"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &env)
	return env.Jobs, err
}

// Job returns one job's full status, including its result when done.
func (c *Client) Job(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Submit posts a job. The returned status is queued (HTTP 202) or, on a
// result-cache hit, already done with the result attached (HTTP 200).
func (c *Client) Submit(ctx context.Context, req service.JobRequest) (service.JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return service.JobStatus{}, err
	}
	var st service.JobStatus
	err = c.do(ctx, http.MethodPost, "/v1/jobs", bytes.NewReader(body), &st)
	return st, err
}

// Partial asks the server to mine one Monte Carlo replicate range (POST
// /v1/partials) — the worker side of the distributed replicate fabric. The
// dataset is addressed by content hash inside the request.
func (c *Client) Partial(ctx context.Context, req sigfim.PartialRequest) (*sigfim.RangePartial, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var p sigfim.RangePartial
	if err := c.do(ctx, http.MethodPost, "/v1/partials", bytes.NewReader(body), &p); err != nil {
		return nil, err
	}
	return &p, nil
}

// Trace returns a completed job's span tree (GET /v1/jobs/{id}/trace).
// Traces are retained in a bounded LRU store, so a job the server still
// lists can 404 here once its trace has been evicted.
func (c *Client) Trace(ctx context.Context, id string) (*trace.Trace, error) {
	var tr trace.Trace
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/trace", nil, &tr); err != nil {
		return nil, err
	}
	return &tr, nil
}

// Cancel requests cancellation of a job and returns its status.
func (c *Client) Cancel(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Watch consumes the job's Server-Sent Events stream
// (GET /v1/jobs/{id}/events), calling fn — when non-nil — for every frame,
// and returns the terminal status once the stream's final state frame
// arrives. The final status matches what GET /v1/jobs/{id} would return,
// result bytes included. Cancel the context to stop watching early.
func (c *Client) Watch(ctx context.Context, id string, fn func(service.JobEvent)) (service.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return service.JobStatus{}, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return service.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return service.JobStatus{}, apiError(resp)
	}

	// Minimal SSE parse: "event:"/"data:" fields accumulate until a blank
	// line dispatches the frame; ":" lines are server heartbeats. ReadString
	// grows as needed, so a terminal frame carrying a large result is fine.
	br := bufio.NewReaderSize(resp.Body, 64<<10)
	var evType string
	var data bytes.Buffer
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return service.JobStatus{}, fmt.Errorf("event stream ended before a terminal state: %w", err)
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if evType == "" && data.Len() == 0 {
				continue
			}
			var st service.JobStatus
			if err := json.Unmarshal(data.Bytes(), &st); err != nil {
				return service.JobStatus{}, fmt.Errorf("decode %q event: %w", evType, err)
			}
			if fn != nil {
				fn(service.JobEvent{Type: evType, Status: st})
			}
			if evType == service.EventState && st.State.Terminal() {
				return st, nil
			}
			evType = ""
			data.Reset()
		case strings.HasPrefix(line, ":"): // heartbeat comment
		case strings.HasPrefix(line, "event:"):
			evType = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			if data.Len() > 0 {
				data.WriteByte('\n')
			}
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		}
	}
}

package client_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http/httptest"
	"testing"
	"time"

	"sigfim"
	"sigfim/internal/client"
	"sigfim/internal/service"
)

const goldenPath = "../../testdata/golden_input.dat"

// newServer boots a real service on an httptest listener with the golden
// dataset registered and returns a client pointed at it.
func newServer(t *testing.T) *client.Client {
	t.Helper()
	srv := service.New(service.Options{
		Workers: 2, QueueCap: 8, CacheSize: 8,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if _, err := srv.Registry().RegisterFile("golden", goldenPath); err != nil {
		t.Fatalf("register golden: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return client.New(ts.URL+"/", nil) // trailing slash: New must normalize
}

func TestClientRoundTrips(t *testing.T) {
	cl := newServer(t)
	ctx := context.Background()

	if err := cl.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}
	ds, err := cl.Datasets(ctx)
	if err != nil || len(ds) != 1 || ds[0].Name != "golden" {
		t.Fatalf("datasets = %+v, %v; want [golden]", ds, err)
	}

	st, err := cl.Submit(ctx, service.JobRequest{
		Dataset: "golden", Kind: service.KindSMin, K: 2,
		Config: &sigfim.Config{Delta: 25, Seed: 4},
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	deadline := time.Now().Add(60 * time.Second)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", st.ID, st.State)
		}
		time.Sleep(20 * time.Millisecond)
		if st, err = cl.Job(ctx, st.ID); err != nil {
			t.Fatalf("get job: %v", err)
		}
	}
	if st.State != service.StateDone || len(st.Result) == 0 {
		t.Fatalf("job ended %s (error %q) with %d result bytes", st.State, st.Error, len(st.Result))
	}

	jobs, err := cl.Jobs(ctx)
	if err != nil || len(jobs) != 1 {
		t.Fatalf("jobs = %d entries, %v; want 1", len(jobs), err)
	}
	if len(jobs[0].Result) != 0 {
		t.Fatal("listing embeds result bytes")
	}

	stats, err := cl.Stats(ctx)
	if err != nil || stats.Jobs.Completed != 1 {
		t.Fatalf("stats = %+v, %v; want 1 completed", stats, err)
	}

	// Error path: the {"error": ...} envelope must surface in the message.
	if _, err := cl.Job(ctx, "nope"); err == nil {
		t.Fatal("fetching an unknown job did not error")
	}
}

// TestClientWatch is the SSE end-to-end: watch a real long job from
// submission to completion and assert the terminal frame matches what
// GET /v1/jobs/{id} returns, result bytes included.
func TestClientWatch(t *testing.T) {
	cl := newServer(t)
	ctx := context.Background()

	st, err := cl.Submit(ctx, service.JobRequest{
		Dataset: "golden", Kind: service.KindSMin, K: 2,
		Config: &sigfim.Config{Delta: 30000, Seed: 6},
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	var events []service.JobEvent
	final, err := cl.Watch(ctx, st.ID, func(ev service.JobEvent) {
		events = append(events, ev)
	})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if final.State != service.StateDone {
		t.Fatalf("watch ended %s (error %q), want done", final.State, final.Error)
	}
	if final.Progress.Done != 30000 || final.Progress.Total != 30000 {
		t.Fatalf("final progress %d/%d, want 30000/30000", final.Progress.Done, final.Progress.Total)
	}
	if len(events) == 0 || events[len(events)-1].Type != service.EventState {
		t.Fatalf("callback saw %d events; the last must be the terminal state frame", len(events))
	}
	// Progress frames, when present, must be monotone (coalescing keeps the
	// latest, never replays an older snapshot).
	last := -1
	for _, ev := range events {
		if ev.Type != service.EventProgress {
			continue
		}
		if ev.Status.Progress.Done < last {
			t.Fatalf("progress went backwards: %d after %d", ev.Status.Progress.Done, last)
		}
		last = ev.Status.Progress.Done
	}

	polled, err := cl.Job(ctx, st.ID)
	if err != nil {
		t.Fatalf("get job: %v", err)
	}
	if final.State != polled.State || final.Progress != polled.Progress {
		t.Fatalf("terminal frame %+v differs from GET %+v", final, polled)
	}
	if !bytes.Equal(compact(t, final.Result), compact(t, polled.Result)) {
		t.Fatal("terminal frame result differs from GET /v1/jobs/{id}")
	}
}

// TestClientWatchCancel asserts a canceled watch context surfaces as an
// error rather than hanging.
func TestClientWatchCancel(t *testing.T) {
	cl := newServer(t)
	ctx := context.Background()

	st, err := cl.Submit(ctx, service.JobRequest{
		Dataset: "golden", Kind: service.KindSMin, K: 2,
		Config: &sigfim.Config{Delta: 200000, Seed: 8},
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	watchCtx, cancel := context.WithTimeout(ctx, 300*time.Millisecond)
	defer cancel()
	if _, err := cl.Watch(watchCtx, st.ID, nil); err == nil {
		t.Fatal("watch with expired context returned no error")
	}
	if _, err := cl.Cancel(ctx, st.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
}

func compact(t *testing.T, raw json.RawMessage) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatalf("compact: %v", err)
	}
	return buf.Bytes()
}

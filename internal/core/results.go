// Package core implements the paper's two discovery procedures on top of the
// substrates:
//
//   - Procedure 1 (Section 3.1): mine F_k(s_min), attach to each itemset the
//     exact Binomial p-value of its support under the independence null, and
//     reject by Benjamini-Yekutieli with m = C(n, k) hypotheses, bounding
//     the FDR by beta.
//   - Procedure 2 (Section 3.2): scan the support ladder s_i = s_min + 2^i,
//     testing at each level the null hypothesis that the observed count
//     Q_{k,s_i} is a draw from Poisson(lambda_i); reject when the Poisson
//     p-value is below alpha_i AND Q_{k,s_i} >= beta_i * lambda_i. The first
//     rejected level is the returned threshold s*; by Theorem 6 the family
//     F_k(s*) is, with confidence 1 - alpha, statistically significant with
//     FDR at most beta.
package core

import (
	"math"

	"sigfim/internal/mining"
)

// SignificantItemset is one discovery of Procedure 1.
type SignificantItemset struct {
	Items   mining.Itemset
	Support int
	// PValue is Pr(Bin(t, f_X) >= support) under the independence null.
	PValue float64
}

// Procedure1Result reports the BY-based baseline.
type Procedure1Result struct {
	// K is the itemset size analyzed.
	K int
	// SMin is the mining threshold (Poisson threshold from Algorithm 1).
	SMin int
	// NumMined is |F_k(s_min)|, the number of hypotheses actually tested.
	NumMined int
	// M is the total hypothesis count C(n, k) used by Theorem 5.
	M float64
	// Beta is the FDR budget.
	Beta float64
	// Correction names the multiple-testing correction the rejections were
	// made under (one of the Correction* constants; CorrectionBY is the
	// paper's Theorem 5 procedure).
	Correction string
	// FamilySize is |R|, the exact number of rejected hypotheses.
	FamilySize int
	// Family lists the rejected (= flagged significant) itemsets, ascending
	// by p-value, capped at an internal materialization limit; FamilySize is
	// always exact.
	Family []SignificantItemset
}

// Step records one comparison of Procedure 2's threshold ladder.
type Step struct {
	// I is the comparison index (0-based).
	I int
	// S is the tested support threshold s_i = s_min + 2^i (s_0 = s_min).
	S int
	// Q is the observed count Q_{k,s_i} in the real dataset.
	Q int64
	// Lambda is the null expectation lambda_i = E[Q̂_{k,s_i}].
	Lambda float64
	// PValue is Pr(Poisson(lambda_i) >= Q).
	PValue float64
	// AlphaI and BetaI are this comparison's slice of the error budgets.
	AlphaI, BetaI float64
	// CountOK reports whether Q >= BetaI * Lambda (the FDR strengthening).
	CountOK bool
	// Rejected reports whether the null was rejected at this level.
	Rejected bool
}

// Procedure2Result reports the support-threshold methodology.
type Procedure2Result struct {
	// K is the itemset size analyzed.
	K int
	// SMin is the Poisson threshold the ladder starts from.
	SMin int
	// SMax is the maximum item support in the real dataset.
	SMax int
	// H is the number of comparisons ⌊log2(s_max - s_min)⌋ + 1.
	H int
	// Alpha and Beta are the confidence and FDR budgets.
	Alpha, Beta float64
	// Found reports whether any level was rejected; when false, SStar is
	// conventionally infinite (the paper's s* = ∞).
	Found bool
	// SStar is the selected threshold s* (meaningful only when Found).
	SStar int
	// Q is Q_{k,s*}, the number of k-itemsets flagged significant.
	Q int64
	// Lambda is lambda(s*), the expected count under the null.
	Lambda float64
	// Steps traces every comparison performed, in ladder order.
	Steps []Step
}

// SStarOrInf formats s* respecting the infinite convention: it returns
// (s*, false) when a threshold was found and (0, true) otherwise.
func (r *Procedure2Result) SStarOrInf() (int, bool) {
	if r.Found {
		return r.SStar, false
	}
	return 0, true
}

// Ratio returns the paper's Table 5 power ratio r = Q_{k,s*} / |R| between
// Procedure 2's family size and Procedure 1's. Zero when Procedure 2 found
// no threshold; +Inf when Procedure 1 found nothing but Procedure 2 did.
func Ratio(p2 *Procedure2Result, p1 *Procedure1Result) float64 {
	if !p2.Found {
		return 0
	}
	if p1.FamilySize == 0 {
		return math.Inf(1)
	}
	return float64(p2.Q) / float64(p1.FamilySize)
}

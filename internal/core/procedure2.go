package core

import (
	"fmt"
	"math"

	"sigfim/internal/dataset"
	"sigfim/internal/mining"
	"sigfim/internal/stats"
)

// LambdaFunc returns the null expectation lambda(s) = E[Q̂_{k,s}] for
// supports s >= s_min. Procedure 2 normally receives montecarlo.Result's
// Lambda method, per the paper ("estimates for the lambda_i can be obtained
// from the same random datasets generated in Algorithm 1").
type LambdaFunc func(s int) float64

// BudgetSplit selects how the error budgets alpha and beta are divided over
// the ladder's h comparisons. Theorem 6 holds for ANY split with
// sum(alpha_i) = alpha and sum(1/beta_i) <= beta; the paper's experiments
// use the equal split.
type BudgetSplit int

const (
	// SplitEqual assigns alpha_i = alpha/h and 1/beta_i = beta/h — the
	// paper's experimental configuration.
	SplitEqual BudgetSplit = iota
	// SplitGeometric assigns budgets proportional to 2^{-i}: the earliest
	// (lowest-support) comparisons receive most of the budget, favoring a
	// smaller s* (and hence a larger returned family) when the signal sits
	// just above s_min, at the price of less power for late rungs.
	SplitGeometric
)

// splitWeights returns normalized weights w_i summing to 1 for h levels.
func (bs BudgetSplit) splitWeights(h int) []float64 {
	w := make([]float64, h)
	switch bs {
	case SplitGeometric:
		total := 0.0
		x := 1.0
		for i := range w {
			w[i] = x
			total += x
			x /= 2
		}
		for i := range w {
			w[i] /= total
		}
	default:
		for i := range w {
			w[i] = 1 / float64(h)
		}
	}
	return w
}

// Procedure2 determines the support threshold s* such that, with confidence
// 1 - alpha, F_k(s*) is a family of significant k-itemsets with FDR <= beta.
//
// The ladder tests s_0 = sMin and s_i = sMin + 2^i for 1 <= i < h, with
// h = ⌊log2(sMax - sMin)⌋ + 1 and the budgets split evenly:
// alpha_i = alpha/h and 1/beta_i = beta/h (the paper's experimental choice
// alpha_i = beta_i^{-1} = 0.05/h). Level i rejects its null when
//
//	Pr(Poisson(lambda_i) >= Q_{k,s_i}) <= alpha_i  AND  Q_{k,s_i} >= beta_i * lambda_i,
//
// and s* is the first rejected level (the minimum s_i).
func Procedure2(v *dataset.Vertical, k, sMin int, lambda LambdaFunc, alpha, beta float64) (*Procedure2Result, error) {
	return Procedure2Ex(v, k, sMin, lambda, alpha, beta, SplitEqual, 0, mining.Auto)
}

// Procedure2Split is Procedure2 with an explicit budget split strategy.
func Procedure2Split(v *dataset.Vertical, k, sMin int, lambda LambdaFunc, alpha, beta float64, split BudgetSplit) (*Procedure2Result, error) {
	return Procedure2Ex(v, k, sMin, lambda, alpha, beta, split, 0, mining.Auto)
}

// Procedure2Ex is Procedure2Split with an explicit worker count for the
// counting pass (0 = NumCPU, 1 = serial) and an explicit mining algorithm
// (mining.Auto = Eclat with automatic layout). The result is identical for
// every worker count and algorithm: the counting pass is an integer support
// histogram, which every miner fills identically.
func Procedure2Ex(v *dataset.Vertical, k, sMin int, lambda LambdaFunc, alpha, beta float64, split BudgetSplit, workers int, algo mining.Algorithm) (*Procedure2Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	if sMin < 1 {
		return nil, fmt.Errorf("core: sMin must be >= 1, got %d", sMin)
	}
	if alpha <= 0 || alpha >= 1 || beta <= 0 || beta >= 1 {
		return nil, fmt.Errorf("core: alpha and beta must be in (0,1), got %v, %v", alpha, beta)
	}
	sMax := v.MaxItemSupport()
	res := &Procedure2Result{
		K:     k,
		SMin:  sMin,
		SMax:  sMax,
		Alpha: alpha,
		Beta:  beta,
	}
	if sMax <= sMin {
		// No support level above the Poisson threshold exists in the real
		// dataset beyond s_min itself; test the single level s_0 = s_min
		// when it is attainable, otherwise return s* = ∞ directly.
		if sMax < sMin {
			res.H = 0
			return res, nil
		}
		res.H = 1
	} else {
		res.H = int(math.Floor(math.Log2(float64(sMax-sMin)))) + 1
	}
	h := res.H
	weights := split.splitWeights(h)

	// One histogram pass at s_min yields every Q_{k,s_i}.
	hist := mining.SupportHistogramAlgoParallel(v, k, sMin, workers, algo)
	qCurve := mining.CumulativeQ(hist)
	qAt := func(s int) int64 {
		if s >= len(qCurve) {
			return 0
		}
		if s < 0 {
			s = 0
		}
		return qCurve[s]
	}

	for i := 0; i < h; i++ {
		s := sMin
		if i > 0 {
			step := 1 << uint(i)
			s = sMin + step
		}
		// alpha_i = w_i * alpha; 1/beta_i = w_i * beta, so
		// sum(alpha_i) = alpha and sum(1/beta_i) = beta as Theorem 6 needs.
		alphaI := weights[i] * alpha
		betaI := 1 / (weights[i] * beta)
		q := qAt(s)
		lam := lambda(s)
		p := stats.Poisson{Lambda: lam}.UpperTail(int(q))
		countOK := float64(q) >= betaI*lam
		rejected := p <= alphaI && countOK && q > 0
		res.Steps = append(res.Steps, Step{
			I: i, S: s, Q: q, Lambda: lam, PValue: p,
			AlphaI: alphaI, BetaI: betaI,
			CountOK: countOK, Rejected: rejected,
		})
		if rejected {
			res.Found = true
			res.SStar = s
			res.Q = q
			res.Lambda = lam
			return res, nil
		}
	}
	return res, nil
}

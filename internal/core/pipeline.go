package core

import (
	"context"
	"fmt"

	"sigfim/internal/dataset"
	"sigfim/internal/mining"
	"sigfim/internal/montecarlo"
	"sigfim/internal/randmodel"
)

// Options bundles the methodology's tunables with the paper's defaults.
type Options struct {
	// Alpha is the confidence budget of Procedure 2 (default 0.05).
	Alpha float64
	// Beta is the FDR budget of both procedures (default 0.05).
	Beta float64
	// Epsilon is the Poisson-approximation tolerance of Algorithm 1
	// (default 0.01).
	Epsilon float64
	// Delta is the number of Monte Carlo replicates (default 1000).
	Delta int
	// Seed fixes all random streams.
	Seed uint64
	// MaxEntries caps Algorithm 1's (itemset, replicate) records; zero
	// keeps the montecarlo default.
	MaxEntries int
	// SMinOverride skips Algorithm 1 and uses this Poisson threshold
	// directly (with MC lambda estimation still run); zero disables.
	SMinOverride int
	// RunProcedure1 additionally runs the Procedure 1 baseline for
	// comparison.
	RunProcedure1 bool
	// Correction selects Procedure 1's multiple-testing correction (one of
	// the Correction* constants); empty means CorrectionBY, the paper's
	// Theorem 5 default. CorrectionWestfallYoung additionally turns on
	// Algorithm 1's min-p collection (montecarlo.Config.CollectMinPs) so the
	// resampled null distribution rides the same replicates. Ignored unless
	// RunProcedure1.
	Correction string
	// NullModel overrides the null model used by Algorithm 1 and the lambda
	// estimates; nil selects the paper's independence model built from the
	// dataset's measured profile. Swap randomization (*randmodel.SwapModel)
	// is the natural alternative; both shipped models implement the pooled
	// InPlaceGenerator path, so Algorithm 1's replicate loop stays
	// allocation-free under either null.
	NullModel randmodel.Model
	// Workers bounds the goroutines of every parallel stage: Algorithm 1's
	// replicate mining and the observed-dataset counting passes. 0 selects
	// runtime.NumCPU(), 1 forces serial execution. Results are identical for
	// every worker count.
	Workers int
	// Algorithm selects the frequent-itemset miner driving both Algorithm
	// 1's replicate mining and Procedure 2's counting pass (mining.Auto
	// picks Eclat with an automatic layout; mining.FPGrowth and
	// mining.Apriori force those engines). All algorithms mine identical
	// itemsets, so the choice affects performance only.
	Algorithm mining.Algorithm
	// Progress, when non-nil, receives Algorithm 1's replicate-merge progress
	// (done, total); see montecarlo.Config.Progress. It cannot influence the
	// result.
	Progress func(done, total int)
	// Runner, when non-nil, executes Algorithm 1's replicate ranges remotely
	// (see montecarlo.Config.Runner); nil keeps the in-process pool. The
	// merged result is bit-identical either way.
	Runner montecarlo.RangeRunner
	// RangeSize and RangeInflight tune Runner dispatches; see
	// montecarlo.Config. They cannot influence the result.
	RangeSize     int
	RangeInflight int
}

func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = 0.05
	}
	if o.Beta == 0 {
		o.Beta = 0.05
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.01
	}
	if o.Delta == 0 {
		o.Delta = 1000
	}
	if o.Correction == "" {
		o.Correction = CorrectionBY
	}
	return o
}

// Analysis is the full output of the methodology on one (dataset, k) pair.
type Analysis struct {
	// Profile is the measured dataset profile the null model was built from.
	Profile dataset.Profile
	// K is the itemset size.
	K int
	// MC is the Algorithm 1 output (ŝ_min, empirical bounds, lambda).
	MC *montecarlo.Result
	// Proc2 is the support-threshold methodology result.
	Proc2 *Procedure2Result
	// Proc1 is the Procedure 1 baseline under Options.Correction (nil unless
	// Options.RunProcedure1).
	Proc1 *Procedure1Result
}

// PowerRatio returns the Table 5 ratio r = Q_{k,s*}/|R|; zero when either
// procedure is missing.
func (a *Analysis) PowerRatio() float64 {
	if a.Proc1 == nil || a.Proc2 == nil {
		return 0
	}
	return Ratio(a.Proc2, a.Proc1)
}

// Analyze runs the complete methodology against a dataset: profile
// extraction, Algorithm 1 on the matching null model, Procedure 2 with the
// Monte Carlo lambda estimates, and optionally Procedure 1.
func Analyze(name string, v *dataset.Vertical, k int, opts Options) (*Analysis, error) {
	return AnalyzeCtx(context.Background(), name, v, k, opts)
}

// AnalyzeCtx is Analyze with cooperative cancellation: the context is
// threaded into Algorithm 1's replicate loop and checked between the
// pipeline's stages. A canceled run returns ctx.Err() and never a partial
// Analysis, so cancellation cannot perturb results that do complete.
func AnalyzeCtx(ctx context.Context, name string, v *dataset.Vertical, k int, opts Options) (*Analysis, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	correction, err := ParseCorrection(opts.Correction)
	if err != nil {
		return nil, err
	}
	profile := dataset.ExtractVertical(name, v)
	var model randmodel.Model = randmodel.FromProfile(profile)
	if opts.NullModel != nil {
		model = opts.NullModel
	}

	mc, err := montecarlo.FindPoissonThresholdCtx(ctx, model, montecarlo.Config{
		K:             k,
		Delta:         opts.Delta,
		Epsilon:       opts.Epsilon,
		Seed:          opts.Seed,
		MaxEntries:    opts.MaxEntries,
		Workers:       opts.Workers,
		Algorithm:     opts.Algorithm,
		Progress:      opts.Progress,
		Runner:        opts.Runner,
		RangeSize:     opts.RangeSize,
		RangeInflight: opts.RangeInflight,
		CollectMinPs:  opts.RunProcedure1 && correction == CorrectionWestfallYoung,
	})
	if err != nil {
		return nil, fmt.Errorf("core: Algorithm 1: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sMin := mc.SMin
	if opts.SMinOverride > 0 {
		sMin = opts.SMinOverride
	}
	if sMin < mc.Floor {
		// Lambda estimates only exist down to the mining floor.
		sMin = mc.Floor
	}

	lambda := func(s int) float64 {
		if s < mc.Floor {
			s = mc.Floor
		}
		return mc.Lambda(s)
	}
	p2, err := Procedure2Ex(v, k, sMin, lambda, opts.Alpha, opts.Beta, SplitEqual, opts.Workers, opts.Algorithm)
	if err != nil {
		return nil, err
	}
	a := &Analysis{Profile: profile, K: k, MC: mc, Proc2: p2}
	if opts.RunProcedure1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p1, err := Procedure1Ex(v, k, sMin, opts.Beta, correction, mc.MinPs)
		if err != nil {
			return nil, err
		}
		a.Proc1 = p1
	}
	return a, nil
}

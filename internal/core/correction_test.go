package core

import (
	"strings"
	"testing"

	"sigfim/internal/mining"
)

// Procedure1Ex correction-dispatch tests: name normalization, the
// Bonferroni <= Holm <= BY family-size ordering guaranteed by theory, the
// Westfall-Young path against the resampled null, and the analysis-level
// wiring that collects min-p shards only when the correction needs them.

func TestParseCorrection(t *testing.T) {
	cases := map[string]string{
		"":                CorrectionBY,
		"by":              CorrectionBY,
		" BY ":            CorrectionBY,
		"bonferroni":      CorrectionBonferroni,
		"Holm":            CorrectionHolm,
		"westfall-young":  CorrectionWestfallYoung,
		" Westfall-Young": CorrectionWestfallYoung,
	}
	for in, want := range cases {
		got, err := ParseCorrection(in)
		if err != nil || got != want {
			t.Errorf("ParseCorrection(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	for _, bad := range []string{"bh", "westfall", "fdr", "none"} {
		_, err := ParseCorrection(bad)
		if err == nil {
			t.Errorf("ParseCorrection(%q) accepted", bad)
			continue
		}
		for _, name := range []string{CorrectionBonferroni, CorrectionHolm, CorrectionBY, CorrectionWestfallYoung} {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("ParseCorrection(%q) error %q does not enumerate %q", bad, err, name)
			}
		}
	}
}

func TestProcedure1ExFamilyOrdering(t *testing.T) {
	// Plant a strong pair so every correction flags something, then check
	// the theoretical containments: the Bonferroni family is contained in
	// Holm's (step-down dominates single-step), and with m = C(n, k) both
	// FWER families are no larger than BY's FDR family here.
	freqs := uniformFreqs(30, 0.1)
	v := genNull(400, freqs, 5)
	tids := make([]uint32, 60)
	for i := range tids {
		tids[i] = uint32(100 + i)
	}
	v = plant(v, []uint32{2, 3}, tids)

	size := map[string]int{}
	for _, c := range []string{CorrectionBonferroni, CorrectionHolm, CorrectionBY} {
		res, err := Procedure1Ex(v, 2, 10, 0.05, c, nil)
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if res.Correction != c {
			t.Errorf("%s: result reports correction %q", c, res.Correction)
		}
		found := false
		for _, s := range res.Family {
			found = found || s.Items.Equal(mining.Itemset{2, 3})
		}
		if !found {
			t.Errorf("%s: planted pair not flagged", c)
		}
		size[c] = res.FamilySize
	}
	if size[CorrectionBonferroni] > size[CorrectionHolm] {
		t.Errorf("Bonferroni family (%d) larger than Holm's (%d)",
			size[CorrectionBonferroni], size[CorrectionHolm])
	}

	// BY via the dispatch must agree exactly with the legacy entry point.
	legacy, err := Procedure1(v, 2, 10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.FamilySize != size[CorrectionBY] || legacy.Correction != CorrectionBY {
		t.Errorf("Procedure1 = %d under %q, Procedure1Ex(by) = %d",
			legacy.FamilySize, legacy.Correction, size[CorrectionBY])
	}
}

func TestProcedure1ExWestfallYoung(t *testing.T) {
	freqs := uniformFreqs(30, 0.1)
	v := genNull(400, freqs, 5)
	tids := make([]uint32, 60)
	for i := range tids {
		tids[i] = uint32(100 + i)
	}
	v = plant(v, []uint32{2, 3}, tids)

	// Without the resampled null distribution the request must fail loudly.
	if _, err := Procedure1Ex(v, 2, 10, 0.05, CorrectionWestfallYoung, nil); err == nil {
		t.Fatal("westfall-young without minPs accepted")
	}

	// A null distribution with every replicate minimum at 0.5 rejects only
	// p-values below it (each gets adjusted p = 1/(Delta+1)); the planted
	// pair's p-value is ~1e-30, so it must be flagged.
	minPs := make([]float64, 99)
	for i := range minPs {
		minPs[i] = 0.5
	}
	res, err := Procedure1Ex(v, 2, 10, 0.05, CorrectionWestfallYoung, minPs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Correction != CorrectionWestfallYoung {
		t.Errorf("result reports correction %q", res.Correction)
	}
	found := false
	for _, s := range res.Family {
		found = found || s.Items.Equal(mining.Itemset{2, 3})
	}
	if !found {
		t.Fatal("planted pair not flagged under westfall-young")
	}

	// An all-zeros null distribution dominates every p-value: adjusted p = 1
	// everywhere, nothing rejected.
	zero := make([]float64, 99)
	res, err = Procedure1Ex(v, 2, 10, 0.05, CorrectionWestfallYoung, zero)
	if err != nil {
		t.Fatal(err)
	}
	if res.FamilySize != 0 || len(res.Family) != 0 {
		t.Errorf("degenerate null distribution still flagged %d itemsets", res.FamilySize)
	}
}

func TestAnalyzeWestfallYoungCollectsMinPs(t *testing.T) {
	freqs := uniformFreqs(20, 0.12)
	v := genNull(300, freqs, 3)
	opts := Options{Delta: 60, Seed: 11, Workers: 1, RunProcedure1: true, Correction: CorrectionWestfallYoung}
	a, err := Analyze("wy", v, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.MC.MinPs) != opts.Delta {
		t.Fatalf("len(MC.MinPs) = %d, want Delta = %d", len(a.MC.MinPs), opts.Delta)
	}
	if a.Proc1 == nil || a.Proc1.Correction != CorrectionWestfallYoung {
		t.Fatalf("Proc1 = %+v, want westfall-young baseline", a.Proc1)
	}

	// The default analysis must not pay for collection it does not use.
	opts.Correction = ""
	a, err = Analyze("by", v, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.MC.MinPs) != 0 {
		t.Errorf("BY analysis collected %d min-p values", len(a.MC.MinPs))
	}
	if a.Proc1 == nil || a.Proc1.Correction != CorrectionBY {
		t.Fatalf("Proc1 correction = %q, want by", a.Proc1.Correction)
	}

	// Unknown corrections fail before any mining.
	opts.Correction = "bh"
	if _, err := Analyze("bad", v, 2, opts); err == nil {
		t.Error("unknown correction accepted")
	}
}

package core

import (
	"fmt"
	"math"
	"sort"

	"sigfim/internal/dataset"
	"sigfim/internal/mht"
	"sigfim/internal/mining"
	"sigfim/internal/stats"
)

// maxMaterializedFamily caps how many flagged itemsets Procedure1 keeps in
// memory; FamilySize always reports the exact count. The paper's Bms1 k=4
// row has |R| = 219706 and the mined family F_k(s_min) runs to tens of
// millions, so both the testing pass and the collection pass stream.
const maxMaterializedFamily = 200_000

// Procedure1 mines F_k(sMin) from the dataset and flags significant itemsets
// by the Benjamini-Yekutieli step-up test over m = C(n, k) hypotheses
// (Theorem 5), guaranteeing FDR <= beta. The null hypothesis for itemset X
// is that its support is a draw from Binomial(t, f_X) with f_X the product
// of its items' observed frequencies.
//
// The computation streams in two passes over the mined family: pass one
// records only the p-values (8 bytes per itemset), determines the BY
// rejection threshold, and pass two re-mines to materialize the rejected
// itemsets (capped at maxMaterializedFamily; FamilySize is always exact).
func Procedure1(v *dataset.Vertical, k, sMin int, beta float64) (*Procedure1Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	if sMin < 1 {
		return nil, fmt.Errorf("core: sMin must be >= 1, got %d", sMin)
	}
	if beta <= 0 || beta >= 1 {
		return nil, fmt.Errorf("core: beta must be in (0,1), got %v", beta)
	}
	t := v.NumTransactions
	n := v.NumItems()
	freqs := v.Frequencies()

	pvalOf := func(items mining.Itemset, sup int) float64 {
		fX := 1.0
		for _, it := range items {
			fX *= freqs[it]
		}
		return stats.Binomial{N: t, P: fX}.UpperTail(sup)
	}

	// Pass 1: p-values only.
	var pvals []float64
	mining.VisitK(v, k, sMin, func(items mining.Itemset, sup int) {
		pvals = append(pvals, pvalOf(items, sup))
	})
	m := math.Exp(stats.LogChoose(n, k))

	res := &Procedure1Result{
		K:        k,
		SMin:     sMin,
		NumMined: len(pvals),
		M:        m,
		Beta:     beta,
	}
	if len(pvals) == 0 {
		return res, nil
	}

	// BY step-up threshold: largest i with p_(i) <= i * beta / (m * H(m)).
	sort.Float64s(pvals)
	denom := m * mht.Harmonic(m)
	ell := 0
	for i := len(pvals); i >= 1; i-- {
		if pvals[i-1] <= float64(i)/denom*beta {
			ell = i
			break
		}
	}
	if ell == 0 {
		return res, nil
	}
	threshold := pvals[ell-1]
	// Count rejections exactly: every p-value <= the ell-th order statistic
	// is rejected (ties at the threshold are all below the step-up line).
	res.FamilySize = sort.SearchFloat64s(pvals, math.Nextafter(threshold, 2))

	// Pass 2: materialize the rejected itemsets (capped).
	mining.VisitK(v, k, sMin, func(items mining.Itemset, sup int) {
		if len(res.Family) >= maxMaterializedFamily {
			return
		}
		if p := pvalOf(items, sup); p <= threshold {
			res.Family = append(res.Family, SignificantItemset{
				Items:   items.Clone(),
				Support: sup,
				PValue:  p,
			})
		}
	})
	sort.Slice(res.Family, func(a, b int) bool {
		if res.Family[a].PValue != res.Family[b].PValue {
			return res.Family[a].PValue < res.Family[b].PValue
		}
		return res.Family[a].Support > res.Family[b].Support
	})
	return res, nil
}

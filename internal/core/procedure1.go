package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"sigfim/internal/dataset"
	"sigfim/internal/mht"
	"sigfim/internal/mining"
	"sigfim/internal/stats"
)

// The multiple-testing corrections Procedure 1 can flag discoveries with.
// All four share the prefix property: the rejected set is a prefix of the
// p-values in ascending order and ties never split the stopping point, so
// one streaming threshold pass serves every correction.
const (
	// CorrectionBonferroni controls FWER at beta by rejecting p <= beta/m.
	CorrectionBonferroni = "bonferroni"
	// CorrectionHolm is the uniformly-more-powerful step-down FWER control;
	// with m = C(n, k) astronomically larger than the mined family it is
	// numerically indistinguishable from Bonferroni, but never weaker.
	CorrectionHolm = "holm"
	// CorrectionBY is the paper's Theorem 5 default: Benjamini-Yekutieli
	// step-up, FDR <= beta under arbitrary dependence.
	CorrectionBY = "by"
	// CorrectionWestfallYoung calibrates against the resampled min-p null
	// distribution from Algorithm 1's replicates (FWER <= beta, hence also
	// FDR <= beta), adapting to the actual dependence among supports instead
	// of paying the worst-case C(n, k) penalty.
	CorrectionWestfallYoung = "westfall-young"
)

// ParseCorrection normalizes a user-supplied correction name: trimmed,
// lowercased, empty defaulting to CorrectionBY. Unknown names return an
// error enumerating the valid set.
func ParseCorrection(s string) (string, error) {
	switch c := strings.ToLower(strings.TrimSpace(s)); c {
	case "":
		return CorrectionBY, nil
	case CorrectionBonferroni, CorrectionHolm, CorrectionBY, CorrectionWestfallYoung:
		return c, nil
	default:
		return "", fmt.Errorf("core: unknown correction %q (want %q, %q, %q, or %q)",
			s, CorrectionBonferroni, CorrectionHolm, CorrectionBY, CorrectionWestfallYoung)
	}
}

// maxMaterializedFamily caps how many flagged itemsets Procedure1 keeps in
// memory; FamilySize always reports the exact count. The paper's Bms1 k=4
// row has |R| = 219706 and the mined family F_k(s_min) runs to tens of
// millions, so both the testing pass and the collection pass stream.
const maxMaterializedFamily = 200_000

// Procedure1 mines F_k(sMin) from the dataset and flags significant itemsets
// by the Benjamini-Yekutieli step-up test over m = C(n, k) hypotheses
// (Theorem 5), guaranteeing FDR <= beta. The null hypothesis for itemset X
// is that its support is a draw from Binomial(t, f_X) with f_X the product
// of its items' observed frequencies.
//
// The computation streams in two passes over the mined family: pass one
// records only the p-values (8 bytes per itemset), determines the BY
// rejection threshold, and pass two re-mines to materialize the rejected
// itemsets (capped at maxMaterializedFamily; FamilySize is always exact).
func Procedure1(v *dataset.Vertical, k, sMin int, beta float64) (*Procedure1Result, error) {
	return Procedure1Ex(v, k, sMin, beta, CorrectionBY, nil)
}

// Procedure1Ex generalizes Procedure1 to the full correction family: the
// mined p-values are identical for every correction; only the rejection rule
// applied to their order statistics differs. The correction name is
// normalized via ParseCorrection. For CorrectionWestfallYoung, minPs must be
// the replicate min-p null distribution (montecarlo.Result.MinPs, collected
// under Config.CollectMinPs); every other correction ignores minPs. Because
// the replicate minima range over the superset family mined at the halving
// floor (<= sMin), the resampled distribution is stochastically smaller than
// the exact one, so the adjusted p-values are conservative, never liberal.
func Procedure1Ex(v *dataset.Vertical, k, sMin int, beta float64, correction string, minPs []float64) (*Procedure1Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	if sMin < 1 {
		return nil, fmt.Errorf("core: sMin must be >= 1, got %d", sMin)
	}
	if beta <= 0 || beta >= 1 {
		return nil, fmt.Errorf("core: beta must be in (0,1), got %v", beta)
	}
	correction, err := ParseCorrection(correction)
	if err != nil {
		return nil, err
	}
	if correction == CorrectionWestfallYoung && len(minPs) == 0 {
		return nil, fmt.Errorf("core: correction %q requires the replicate min-p null distribution (run Algorithm 1 with CollectMinPs)", correction)
	}
	t := v.NumTransactions
	n := v.NumItems()
	freqs := v.Frequencies()

	pvalOf := func(items mining.Itemset, sup int) float64 {
		fX := 1.0
		for _, it := range items {
			fX *= freqs[it]
		}
		return stats.Binomial{N: t, P: fX}.UpperTail(sup)
	}

	// Pass 1: p-values only.
	var pvals []float64
	mining.VisitK(v, k, sMin, func(items mining.Itemset, sup int) {
		pvals = append(pvals, pvalOf(items, sup))
	})
	m := math.Exp(stats.LogChoose(n, k))

	res := &Procedure1Result{
		K:          k,
		SMin:       sMin,
		NumMined:   len(pvals),
		M:          m,
		Beta:       beta,
		Correction: correction,
	}
	if len(pvals) == 0 {
		return res, nil
	}

	// Every correction rejects a prefix of the ascending order statistics;
	// ell is the prefix length.
	sort.Float64s(pvals)
	ell := 0
	switch correction {
	case CorrectionBY:
		// Step-up: largest i with p_(i) <= i * beta / (m * H(m)).
		denom := m * mht.Harmonic(m)
		for i := len(pvals); i >= 1; i-- {
			if pvals[i-1] <= float64(i)/denom*beta {
				ell = i
				break
			}
		}
	case CorrectionBonferroni, CorrectionHolm, CorrectionWestfallYoung:
		// Adjusted-p semantics: over sorted input every *Adjust function is
		// monotone with ties mapped to one value, so the rejected set is the
		// prefix with adjusted p <= beta and ties never split it.
		var adj []float64
		switch correction {
		case CorrectionBonferroni:
			adj = mht.BonferroniAdjust(pvals, m)
		case CorrectionHolm:
			adj = mht.HolmAdjust(pvals, m)
		default:
			adj = mht.WestfallYoung(pvals, minPs)
		}
		for ell < len(adj) && adj[ell] <= beta {
			ell++
		}
	}
	if ell == 0 {
		return res, nil
	}
	threshold := pvals[ell-1]
	// Count rejections exactly: every p-value <= the ell-th order statistic
	// is rejected (ties at the threshold are all below the step-up line).
	res.FamilySize = sort.SearchFloat64s(pvals, math.Nextafter(threshold, 2))

	// Pass 2: materialize the rejected itemsets (capped).
	mining.VisitK(v, k, sMin, func(items mining.Itemset, sup int) {
		if len(res.Family) >= maxMaterializedFamily {
			return
		}
		if p := pvalOf(items, sup); p <= threshold {
			res.Family = append(res.Family, SignificantItemset{
				Items:   items.Clone(),
				Support: sup,
				PValue:  p,
			})
		}
	})
	sort.Slice(res.Family, func(a, b int) bool {
		if res.Family[a].PValue != res.Family[b].PValue {
			return res.Family[a].PValue < res.Family[b].PValue
		}
		return res.Family[a].Support > res.Family[b].Support
	})
	return res, nil
}

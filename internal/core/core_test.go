package core

import (
	"math"
	"testing"

	"sigfim/internal/dataset"
	"sigfim/internal/mht"
	"sigfim/internal/mining"
	"sigfim/internal/randmodel"
	"sigfim/internal/stats"
)

// genNull draws a dataset from the independence model.
func genNull(t int, freqs []float64, seed uint64) *dataset.Vertical {
	m := randmodel.IndependentModel{T: t, Freqs: freqs}
	return m.Generate(stats.NewRNG(seed))
}

// plant forces the items of X to co-occur in extra transactions, overwriting
// the given tids' membership for those items.
func plant(v *dataset.Vertical, x []uint32, tids []uint32) *dataset.Vertical {
	d := v.Horizontal()
	tx := make([][]uint32, d.NumTransactions())
	for i := range tx {
		tx[i] = append([]uint32(nil), d.Transaction(i)...)
	}
	for _, tid := range tids {
		tx[tid] = append(tx[tid], x...)
	}
	return dataset.MustNew(d.NumItems(), tx).Vertical()
}

func uniformFreqs(n int, p float64) []float64 {
	f := make([]float64, n)
	for i := range f {
		f[i] = p
	}
	return f
}

func TestProcedure2Validation(t *testing.T) {
	v := genNull(50, uniformFreqs(5, 0.2), 1)
	lam := func(int) float64 { return 1 }
	if _, err := Procedure2(v, 0, 1, lam, 0.05, 0.05); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Procedure2(v, 2, 0, lam, 0.05, 0.05); err == nil {
		t.Error("sMin=0 accepted")
	}
	if _, err := Procedure2(v, 2, 1, lam, 0, 0.05); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := Procedure2(v, 2, 1, lam, 0.05, 1); err == nil {
		t.Error("beta=1 accepted")
	}
}

func TestProcedure1Validation(t *testing.T) {
	v := genNull(50, uniformFreqs(5, 0.2), 1)
	if _, err := Procedure1(v, 0, 1, 0.05); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Procedure1(v, 2, 0, 0.05); err == nil {
		t.Error("sMin=0 accepted")
	}
	if _, err := Procedure1(v, 2, 1, 0); err == nil {
		t.Error("beta=0 accepted")
	}
}

func TestProcedure2LadderShape(t *testing.T) {
	v := genNull(400, uniformFreqs(20, 0.15), 2)
	sMin := 5
	sMax := v.MaxItemSupport()
	lam := func(s int) float64 { return 1000 } // impossible null: never reject
	res, err := Procedure2(v, 2, sMin, lam, 0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("lambda=1000 should never reject")
	}
	wantH := int(math.Floor(math.Log2(float64(sMax-sMin)))) + 1
	if res.H != wantH {
		t.Fatalf("H = %d, want %d", res.H, wantH)
	}
	if len(res.Steps) != wantH {
		t.Fatalf("steps = %d, want %d", len(res.Steps), wantH)
	}
	if res.Steps[0].S != sMin {
		t.Errorf("s_0 = %d, want %d", res.Steps[0].S, sMin)
	}
	for i := 1; i < len(res.Steps); i++ {
		want := sMin + (1 << uint(i))
		if res.Steps[i].S != want {
			t.Errorf("s_%d = %d, want %d", i, res.Steps[i].S, want)
		}
		if math.Abs(res.Steps[i].AlphaI-0.05/float64(wantH)) > 1e-15 {
			t.Errorf("alpha_i = %v", res.Steps[i].AlphaI)
		}
	}
	if _, inf := res.SStarOrInf(); !inf {
		t.Error("SStarOrInf should report infinity")
	}
}

func TestProcedure2SMaxBelowSMin(t *testing.T) {
	v := genNull(50, uniformFreqs(5, 0.1), 3)
	res, err := Procedure2(v, 2, v.MaxItemSupport()+5, func(int) float64 { return 0.1 }, 0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found || res.H != 0 {
		t.Errorf("sMax < sMin should test nothing: %+v", res)
	}
}

func TestProcedure2RejectsPlantedSignal(t *testing.T) {
	// Plant a strong pair: 60 joint occurrences where the null expects ~4.
	freqs := uniformFreqs(30, 0.1)
	v := genNull(400, freqs, 4)
	tids := make([]uint32, 60)
	for i := range tids {
		tids[i] = uint32(i)
	}
	v = plant(v, []uint32{0, 1}, tids)
	// Null expectation: lambda(s) from the exact model is tiny at s ~ 30.
	lam := func(s int) float64 {
		// Exact lambda under the null for the uniform model.
		p := stats.Binomial{N: 400, P: 0.01}
		tail := p.UpperTail(s)
		return 435 * tail // C(30,2)
	}
	res, err := Procedure2(v, 2, 10, lam, 0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("planted signal not detected")
	}
	if res.Q < 1 || res.Lambda > 1 {
		t.Errorf("suspicious rejection: Q=%d lambda=%v", res.Q, res.Lambda)
	}
	// The rejected step's guarantees must hold.
	last := res.Steps[len(res.Steps)-1]
	if !last.Rejected || last.PValue > last.AlphaI || !last.CountOK {
		t.Errorf("rejection conditions violated: %+v", last)
	}
}

func TestProcedure1FlagsPlantedPair(t *testing.T) {
	freqs := uniformFreqs(30, 0.1)
	v := genNull(400, freqs, 5)
	tids := make([]uint32, 60)
	for i := range tids {
		tids[i] = uint32(100 + i)
	}
	v = plant(v, []uint32{2, 3}, tids)
	res, err := Procedure1(v, 2, 10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range res.Family {
		if s.Items.Equal(mining.Itemset{2, 3}) {
			found = true
			if s.PValue > 1e-10 {
				t.Errorf("planted pair p-value suspiciously large: %v", s.PValue)
			}
		}
	}
	if !found {
		t.Fatalf("planted pair not flagged; family = %v", res.Family)
	}
	if res.M != math.Exp(stats.LogChoose(30, 2)) {
		t.Errorf("M = %v", res.M)
	}
}

func TestProcedure1NullYieldsNothing(t *testing.T) {
	// On pure null data with a sane mining threshold, BY with m = C(n,k)
	// should reject nothing (or almost nothing).
	totalFlagged := 0
	for seed := uint64(0); seed < 5; seed++ {
		v := genNull(400, uniformFreqs(30, 0.1), 10+seed)
		res, err := Procedure1(v, 2, 10, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		totalFlagged += res.FamilySize
	}
	if totalFlagged > 1 {
		t.Errorf("null data produced %d discoveries across 5 runs", totalFlagged)
	}
}

func TestAnalyzeNullReturnsInfinity(t *testing.T) {
	// Table 4 logic: on data drawn from the null model itself, Procedure 2
	// should find no threshold.
	freqs := uniformFreqs(25, 0.12)
	foundCount := 0
	for seed := uint64(0); seed < 4; seed++ {
		v := genNull(300, freqs, 100+seed)
		a, err := Analyze("null", v, 2, Options{Delta: 150, Seed: 7, RunProcedure1: true})
		if err != nil {
			t.Fatal(err)
		}
		if a.Proc2.Found {
			foundCount++
		}
		if a.Proc1.FamilySize > 2 {
			t.Errorf("seed %d: Procedure 1 flagged %d on null data", seed, a.Proc1.FamilySize)
		}
	}
	if foundCount > 1 {
		t.Errorf("Procedure 2 found thresholds on %d of 4 null datasets", foundCount)
	}
}

func TestAnalyzePlantedFindsThresholdAndBeatsProc1(t *testing.T) {
	// Plant several overlapping strong pairs; Procedure 2 should find a
	// threshold, and its family should be at least as large as Procedure 1's
	// (the paper's r >= 1 observation).
	freqs := uniformFreqs(25, 0.12)
	v := genNull(300, freqs, 42)
	for i := 0; i < 4; i++ {
		tids := make([]uint32, 50)
		for j := range tids {
			tids[j] = uint32(50*i + j)
		}
		v = plant(v, []uint32{uint32(2 * i), uint32(2*i + 1)}, tids)
	}
	a, err := Analyze("planted", v, 2, Options{Delta: 200, Seed: 9, RunProcedure1: true})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Proc2.Found {
		t.Fatal("Procedure 2 missed planted structure")
	}
	if a.Proc2.Lambda > float64(a.Proc2.Q) {
		t.Errorf("flagged family smaller than null expectation: Q=%d lambda=%v",
			a.Proc2.Q, a.Proc2.Lambda)
	}
	r := a.PowerRatio()
	if r < 0.9 && a.Proc1.FamilySize > 0 {
		t.Errorf("power ratio %v < 1: Proc2 Q=%d vs Proc1 |R|=%d",
			r, a.Proc2.Q, a.Proc1.FamilySize)
	}
}

func TestAnalyzeEmpiricalFDROnPlanted(t *testing.T) {
	// Ground-truth FDR check: discoveries at s* that are not supersets of a
	// planted pair count as false. Averaged over trials the false fraction
	// should respect the beta = 0.05 budget with statistical slack.
	freqs := uniformFreqs(25, 0.12)
	plantedKeys := map[string]bool{}
	totalFalse, totalDisc := 0, 0
	for trial := uint64(0); trial < 3; trial++ {
		v := genNull(300, freqs, 200+trial)
		for i := 0; i < 4; i++ {
			x := mining.Itemset{uint32(2 * i), uint32(2*i + 1)}
			plantedKeys[x.Key()] = true
			tids := make([]uint32, 50)
			for j := range tids {
				tids[j] = uint32(50*i + j)
			}
			v = plant(v, x, tids)
		}
		a, err := Analyze("fdr", v, 2, Options{Delta: 150, Seed: 31 + trial})
		if err != nil {
			t.Fatal(err)
		}
		if !a.Proc2.Found {
			continue
		}
		for _, res := range mining.EclatK(v, 2, a.Proc2.SStar) {
			totalDisc++
			if !plantedKeys[res.Items.Key()] {
				totalFalse++
			}
		}
	}
	if totalDisc == 0 {
		t.Fatal("no discoveries in any trial")
	}
	fdr := float64(totalFalse) / float64(totalDisc)
	if fdr > 0.25 {
		t.Errorf("empirical FDR %v (false %d of %d)", fdr, totalFalse, totalDisc)
	}
}

func TestRatioConventions(t *testing.T) {
	p2 := &Procedure2Result{Found: true, Q: 10}
	p1 := &Procedure1Result{FamilySize: 5}
	if got := Ratio(p2, p1); got != 2 {
		t.Errorf("Ratio = %v, want 2", got)
	}
	if got := Ratio(&Procedure2Result{}, p1); got != 0 {
		t.Errorf("not-found ratio = %v, want 0", got)
	}
	if got := Ratio(p2, &Procedure1Result{}); !math.IsInf(got, 1) {
		t.Errorf("empty-R ratio = %v, want +Inf", got)
	}
}

func TestAnalyzeOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Alpha != 0.05 || o.Beta != 0.05 || o.Epsilon != 0.01 || o.Delta != 1000 {
		t.Errorf("defaults = %+v", o)
	}
	v := genNull(50, uniformFreqs(5, 0.2), 1)
	if _, err := Analyze("x", v, 0, Options{Delta: 10}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestAnalyzeSMinOverride(t *testing.T) {
	v := genNull(200, uniformFreqs(15, 0.2), 77)
	a, err := Analyze("o", v, 2, Options{Delta: 100, Seed: 3, SMinOverride: 25})
	if err != nil {
		t.Fatal(err)
	}
	if a.Proc2.SMin != 25 && a.Proc2.SMin < a.MC.Floor {
		t.Errorf("override not applied: sMin=%d", a.Proc2.SMin)
	}
}

func TestAnalyzeWithSwapNullModel(t *testing.T) {
	// Swap randomization as the null: on a small planted dataset the
	// methodology should still detect the planted pair (its joint support
	// cannot be explained by margins alone).
	freqs := uniformFreqs(20, 0.15)
	v := genNull(250, freqs, 61)
	tids := make([]uint32, 50)
	for i := range tids {
		tids[i] = uint32(i)
	}
	v = plant(v, []uint32{0, 1}, tids)
	base := v.Horizontal()
	a, err := Analyze("swap", v, 2, Options{
		Delta:     60,
		Seed:      13,
		NullModel: &randmodel.SwapModel{Base: base, ProposalsPerOccurrence: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Proc2.Found {
		t.Error("swap-null analysis missed the planted pair")
	}
}

func TestProcedure1StreamingMatchesDirectBY(t *testing.T) {
	// The two-pass streaming implementation must reproduce a direct
	// in-memory BY computation exactly.
	freqs := uniformFreqs(15, 0.2)
	v := genNull(200, freqs, 88)
	tids := make([]uint32, 40)
	for i := range tids {
		tids[i] = uint32(i)
	}
	v = plant(v, []uint32{3, 4}, tids)
	res, err := Procedure1(v, 2, 5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Direct recomputation.
	mined := mining.MineK(v, 2, 5)
	fr := v.Frequencies()
	pvals := make([]float64, len(mined))
	for i, r := range mined {
		fX := fr[r.Items[0]] * fr[r.Items[1]]
		pvals[i] = stats.Binomial{N: 200, P: fX}.UpperTail(r.Support)
	}
	m := math.Exp(stats.LogChoose(15, 2))
	reject := mht.BenjaminiYekutieli(pvals, 0.05, m)
	direct := 0
	for _, b := range reject {
		if b {
			direct++
		}
	}
	if res.FamilySize != direct {
		t.Fatalf("streaming FamilySize %d vs direct BY %d", res.FamilySize, direct)
	}
	if len(res.Family) != res.FamilySize {
		t.Fatalf("materialized %d of %d (below cap, should be full)",
			len(res.Family), res.FamilySize)
	}
	// Family is sorted by ascending p-value.
	for i := 1; i < len(res.Family); i++ {
		if res.Family[i].PValue < res.Family[i-1].PValue {
			t.Fatal("family not sorted by p-value")
		}
	}
}

func TestProcedure1EmptyFamily(t *testing.T) {
	// Mining threshold above every support: nothing mined, nothing flagged.
	v := genNull(100, uniformFreqs(5, 0.1), 9)
	res, err := Procedure1(v, 2, 99, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumMined != 0 || res.FamilySize != 0 || len(res.Family) != 0 {
		t.Fatalf("expected empty result, got %+v", res)
	}
}

func TestBudgetSplitWeights(t *testing.T) {
	for _, bs := range []BudgetSplit{SplitEqual, SplitGeometric} {
		for _, h := range []int{1, 2, 5, 12} {
			w := bs.splitWeights(h)
			if len(w) != h {
				t.Fatalf("split %v h=%d: %d weights", bs, h, len(w))
			}
			sum := 0.0
			for _, x := range w {
				if x <= 0 {
					t.Fatalf("non-positive weight %v", x)
				}
				sum += x
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Fatalf("split %v h=%d: weights sum to %v", bs, h, sum)
			}
		}
	}
	// Geometric front-loads.
	w := SplitGeometric.splitWeights(4)
	if !(w[0] > w[1] && w[1] > w[2] && w[2] > w[3]) {
		t.Fatalf("geometric weights not decreasing: %v", w)
	}
}

func TestProcedure2SplitGeometricFindsEarlySignal(t *testing.T) {
	// A signal just above s_min: geometric splits concentrate budget on the
	// early rungs, so if the equal split rejects, the geometric must reject
	// at the same or an earlier rung.
	freqs := uniformFreqs(30, 0.1)
	v := genNull(400, freqs, 21)
	tids := make([]uint32, 60)
	for i := range tids {
		tids[i] = uint32(i)
	}
	v = plant(v, []uint32{0, 1}, tids)
	lam := func(s int) float64 {
		return 435 * stats.Binomial{N: 400, P: 0.01}.UpperTail(s)
	}
	eq, err := Procedure2Split(v, 2, 10, lam, 0.05, 0.05, SplitEqual)
	if err != nil {
		t.Fatal(err)
	}
	geo, err := Procedure2Split(v, 2, 10, lam, 0.05, 0.05, SplitGeometric)
	if err != nil {
		t.Fatal(err)
	}
	if eq.Found && !geo.Found {
		t.Error("geometric split lost an early signal the equal split found")
	}
	if eq.Found && geo.Found && geo.SStar > eq.SStar {
		t.Errorf("geometric split rejected later: %d vs %d", geo.SStar, eq.SStar)
	}
}

package mining

import (
	"sigfim/internal/bitset"
	"sigfim/internal/dataset"
)

// Scratch is the reusable per-worker mining state: frequent-item and DFS
// prefix buffers, per-depth tid-list and bitset intersection buffers, the
// pooled dense columns, the hash-path table, the FP-Growth node arena, and a
// pooled horizontal conversion target. A Scratch is single-goroutine — it
// must never be shared between concurrently mining goroutines — but it is
// reusable across calls and across datasets of any shape: every buffer is
// re-sized (capacity-preserving) per call, so a worker's second mine of a
// similar dataset allocates nothing. The Monte Carlo replicate engine keeps
// one Scratch per worker for the whole run; this is what makes the replicate
// pipeline allocation-free in steady state.
//
// Kernels that shard work across an internal worker pool draw one child
// Scratch per worker id from the parent (children are pooled too), so even
// intra-mine parallel runs stop allocating after warmup.
type Scratch struct {
	items   []uint32         // frequent items, eclat support order
	prefix  []uint32         // DFS prefix stack
	sorted  []uint32         // emit-time sort buffer
	lens    []int            // per-transaction lengths (hash-path dispatch)
	tidBufs [][]uint32       // per-depth tid-list intersection buffers
	bits    []*bitset.Bitset // per-depth bitset intersection scratch
	cols    []*bitset.Bitset // pooled dense columns, parallel to items
	table   *ItemsetTable    // hash-path counting table
	counts  []int32          // hash-path counts, parallel to table entries
	horiz   *dataset.Dataset // pooled horizontal conversion target
	fp      fpScratch        // FP-Growth arena (trees, rank maps, buffers)
	sub     []*Scratch       // child scratches for intra-mine worker shards
}

// NewScratch returns an empty Scratch; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// child returns the per-worker child Scratch for shard worker w, creating it
// on first use and reusing it afterwards.
func (s *Scratch) child(w int) *Scratch {
	for len(s.sub) <= w {
		s.sub = append(s.sub, NewScratch())
	}
	return s.sub[w]
}

// ensureDepth guarantees k per-depth tid-list buffers and a k-capacity prefix.
func (s *Scratch) ensureDepth(k int) {
	for len(s.tidBufs) < k {
		s.tidBufs = append(s.tidBufs, nil)
	}
	if cap(s.prefix) < k {
		s.prefix = make([]uint32, 0, k)
	}
	if cap(s.sorted) < k {
		s.sorted = make([]uint32, 0, k)
	}
}

// ensureBits guarantees k per-depth bitset buffers of capacity t bits.
func (s *Scratch) ensureBits(t, k int) {
	for len(s.bits) < k {
		s.bits = append(s.bits, bitset.New(0))
	}
	for _, b := range s.bits[:k] {
		b.Reinit(t)
	}
}

// columns fills the pooled dense columns for the given frequent items
// (cols[i] is the bitset of items[i]) and returns the column slice, valid
// until the next call.
func (s *Scratch) columns(v *dataset.Vertical, items []uint32) []*bitset.Bitset {
	for len(s.cols) < len(items) {
		s.cols = append(s.cols, bitset.New(0))
	}
	cols := s.cols[:len(items)]
	for i, it := range items {
		v.Tids[it].ToBitsetInto(v.NumTransactions, cols[i])
	}
	return cols
}

// horizontal returns the pooled transaction-major view of v, rebuilt in
// place; valid until the next call.
func (s *Scratch) horizontal(v *dataset.Vertical) *dataset.Dataset {
	if s.horiz == nil {
		s.horiz = &dataset.Dataset{}
	}
	v.HorizontalInto(s.horiz)
	return s.horiz
}

// sortSmall sorts a short uint32 slice ascending by insertion sort; itemset
// widths are tiny (k items), where this beats sort.Slice and allocates
// nothing.
func sortSmall(a []uint32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// emitSortedScratch hands emit an id-sorted view of the prefix from the
// scratch sort buffer; the slice is valid only during the call.
func (s *Scratch) emitSortedScratch(prefix Itemset, sup int, emit func(Itemset, int)) {
	buf := append(s.sorted[:0], prefix...)
	s.sorted = buf
	sortSmall(buf)
	emit(buf, sup)
}

package mining

import (
	"reflect"
	"testing"

	"sigfim/internal/dataset"
	"sigfim/internal/stats"
)

// plantedDataset builds a deterministic synthetic dataset: n items placed
// i.i.d. with probability p over t transactions, plus a planted itemset
// occurring in every plantEvery-th transaction — structure for the miners to
// find at high support.
func plantedDataset(seed uint64, n, t int, p float64, planted []uint32, plantEvery int) *dataset.Dataset {
	r := stats.NewRNG(seed)
	tx := make([][]uint32, t)
	for i := range tx {
		for it := 0; it < n; it++ {
			if r.Bernoulli(p) {
				tx[i] = append(tx[i], uint32(it))
			}
		}
		if plantEvery > 0 && i%plantEvery == 0 {
			tx[i] = append(tx[i], planted...)
		}
	}
	return dataset.MustNew(n, tx)
}

// crossAlgoCases is the shared table for the equivalence tests: datasets with
// different shapes (dense, sparse, tiny universe) crossed with (k, s) grids.
var crossAlgoCases = []struct {
	name string
	gen  func() *dataset.Dataset
	ks   []int
	sups []int
}{
	{
		name: "dense",
		gen: func() *dataset.Dataset {
			return plantedDataset(11, 30, 400, 0.20, []uint32{3, 7, 11}, 4)
		},
		ks:   []int{1, 2, 3},
		sups: []int{10, 40, 90},
	},
	{
		name: "sparse",
		gen: func() *dataset.Dataset {
			return plantedDataset(23, 120, 600, 0.02, []uint32{5, 50, 100}, 6)
		},
		ks:   []int{2, 3},
		sups: []int{2, 5, 20},
	},
	{
		name: "tiny-universe",
		gen: func() *dataset.Dataset {
			return plantedDataset(37, 8, 200, 0.45, []uint32{0, 1}, 3)
		},
		ks:   []int{1, 2, 3, 4},
		sups: []int{1, 25, 120},
	},
}

// TestCrossAlgorithmEquivalenceAcrossWorkers mines the same datasets with
// every algorithm at Workers 1, 4, and 8 and asserts identical sorted result
// sets; serial FP-Growth anchors the comparison.
func TestCrossAlgorithmEquivalenceAcrossWorkers(t *testing.T) {
	for _, tc := range crossAlgoCases {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.gen()
			v := d.Vertical()
			for _, k := range tc.ks {
				for _, s := range tc.sups {
					want := FPGrowthK(d, k, s)
					sortByItems(want)
					for _, workers := range []int{1, 4, 8} {
						for _, algo := range []Algorithm{Apriori, EclatTids, EclatBits, FPGrowth} {
							got, err := MineVertical(v, Options{
								K: k, MinSupport: s, Algorithm: algo, Workers: workers,
							})
							if err != nil {
								t.Fatalf("k=%d s=%d %v workers=%d: %v", k, s, algo, workers, err)
							}
							sortByItems(got)
							if !resultsEqual(got, append([]Result(nil), want...)) {
								t.Fatalf("k=%d s=%d %v workers=%d: %d results, fpgrowth has %d",
									k, s, algo, workers, len(got), len(want))
							}
						}
						// CountK must agree with the materialized size.
						if got, want := CountKParallel(v, k, s, workers), int64(len(want)); got != want {
							t.Fatalf("CountKParallel(k=%d,s=%d,w=%d) = %d, want %d", k, s, workers, got, want)
						}
					}
				}
			}
		})
	}
}

// TestParallelMatchesSerialExactly pins the stronger guarantee the engine is
// built around: parallel output equals serial output including order, for
// every worker count.
func TestParallelMatchesSerialExactly(t *testing.T) {
	for _, tc := range crossAlgoCases {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.gen()
			v := d.Vertical()
			for _, k := range tc.ks {
				for _, s := range tc.sups {
					for _, workers := range []int{2, 3, 8} {
						if got, want := EclatKTidListParallel(v, k, s, workers), EclatKTidList(v, k, s); !reflect.DeepEqual(got, want) {
							t.Fatalf("tids k=%d s=%d w=%d: parallel order differs from serial", k, s, workers)
						}
						if got, want := EclatKBitsetParallel(v, k, s, workers), EclatKBitset(v, k, s); !reflect.DeepEqual(got, want) {
							t.Fatalf("bits k=%d s=%d w=%d: parallel order differs from serial", k, s, workers)
						}
					}
				}
				for _, workers := range []int{2, 8} {
					if got, want := AprioriKParallel(d, k, 3, workers), AprioriK(d, k, 3); !reflect.DeepEqual(got, want) {
						t.Fatalf("apriori k=%d w=%d: parallel differs from serial", k, workers)
					}
				}
			}
			for _, workers := range []int{2, 8} {
				if got, want := EclatAllParallel(v, 5, 3, workers), EclatAll(v, 5, 3); !reflect.DeepEqual(got, want) {
					t.Fatalf("eclat-all w=%d: parallel order differs from serial", workers)
				}
				if got, want := AprioriAllParallel(d, 5, 3, workers), AprioriAll(d, 5, 3); !reflect.DeepEqual(got, want) {
					t.Fatalf("apriori-all w=%d: parallel differs from serial", workers)
				}
			}
		})
	}
}

// TestFPGrowthParallelMatchesSerialExactly pins the tentpole guarantee for
// the FP-Growth engine: sharding the header-table suffix classes across the
// worker pool yields output bit-identical to the serial miner — values AND
// order — at Workers 1, 4, and 8.
func TestFPGrowthParallelMatchesSerialExactly(t *testing.T) {
	for _, tc := range crossAlgoCases {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.gen()
			for _, k := range tc.ks {
				for _, s := range tc.sups {
					want := FPGrowthK(d, k, s)
					for _, workers := range []int{1, 4, 8} {
						if got := FPGrowthKParallel(d, k, s, workers); !reflect.DeepEqual(got, want) {
							t.Fatalf("FPGrowthK k=%d s=%d w=%d: parallel output differs from serial", k, s, workers)
						}
					}
				}
			}
			wantAll := FPGrowthAll(d, 5, 3)
			if len(wantAll) == 0 {
				t.Fatal("empty FPGrowthAll output, test is vacuous")
			}
			for _, workers := range []int{1, 4, 8} {
				if got := FPGrowthAllParallel(d, 5, 3, workers); !reflect.DeepEqual(got, wantAll) {
					t.Fatalf("FPGrowthAll w=%d: parallel output differs from serial", workers)
				}
			}
		})
	}
}

// TestAlgoDispatchers checks the algorithm-generic visit and histogram
// dispatchers: every algorithm must produce the same itemset collection and
// the exact same support histogram for every worker count.
func TestAlgoDispatchers(t *testing.T) {
	d := plantedDataset(71, 20, 300, 0.15, []uint32{1, 4, 9}, 5)
	v := d.Vertical()
	for _, k := range []int{2, 3} {
		for _, s := range []int{5, 30} {
			wantHist := SupportHistogram(v, k, s)
			want := MineK(v, k, s)
			sortByItems(want)
			for _, algo := range []Algorithm{Auto, EclatTids, EclatBits, Apriori, FPGrowth} {
				for _, workers := range []int{1, 4} {
					if got := SupportHistogramAlgoParallel(v, k, s, workers, algo); !reflect.DeepEqual(got, wantHist) {
						t.Fatalf("SupportHistogramAlgoParallel(k=%d,s=%d,%v,w=%d) differs", k, s, algo, workers)
					}
					var got []Result
					VisitKAlgoParallel(v, k, s, workers, algo, func(is Itemset, sup int) {
						got = append(got, Result{Items: is.Clone(), Support: sup})
					})
					sortByItems(got)
					if !resultsEqual(got, want) {
						t.Fatalf("VisitKAlgoParallel(k=%d,s=%d,%v,w=%d): %d results, want %d",
							k, s, algo, workers, len(got), len(want))
					}
				}
			}
		}
	}
}

// TestCountAndHistogramParallel checks the counting reductions against their
// serial counterparts on random datasets (property-style, many shapes).
func TestCountAndHistogramParallel(t *testing.T) {
	r := stats.NewRNG(404)
	for trial := 0; trial < 25; trial++ {
		d := randomDataset(r, 12, 60)
		v := d.Vertical()
		for k := 1; k <= 3; k++ {
			for _, s := range []int{1, 2, 6} {
				for _, workers := range []int{2, 5} {
					if got, want := CountKParallel(v, k, s, workers), CountK(v, k, s); got != want {
						t.Fatalf("trial %d CountK(k=%d,s=%d,w=%d) = %d, want %d", trial, k, s, workers, got, want)
					}
					got := SupportHistogramParallel(v, k, s, workers)
					want := SupportHistogram(v, k, s)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("trial %d SupportHistogram(k=%d,s=%d,w=%d) differs", trial, k, s, workers)
					}
				}
			}
		}
	}
}

// TestVisitKParallelOrder asserts the streaming variant replays emissions in
// exactly VisitK's order on a dataset dense enough to take the eclat path.
func TestVisitKParallelOrder(t *testing.T) {
	d := plantedDataset(55, 25, 500, 0.25, []uint32{2, 9, 17}, 5)
	v := d.Vertical()
	for _, k := range []int{2, 3} {
		for _, s := range []int{20, 60} {
			var serial, par []Result
			VisitK(v, k, s, func(is Itemset, sup int) {
				serial = append(serial, Result{Items: is.Clone(), Support: sup})
			})
			VisitKParallel(v, k, s, 4, func(is Itemset, sup int) {
				par = append(par, Result{Items: is.Clone(), Support: sup})
			})
			if len(serial) == 0 {
				t.Fatalf("k=%d s=%d: empty mining output, test is vacuous", k, s)
			}
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("k=%d s=%d: VisitKParallel order differs from VisitK", k, s)
			}
		}
	}
}

package mining

import (
	"sigfim/internal/bitset"
	"sigfim/internal/dataset"
)

// Closed itemsets. An itemset is closed when no proper superset has the same
// support; equivalently, when it equals its closure — the set of all items
// present in every transaction containing it. The paper uses closed itemsets
// in Section 4.1 to interpret the 27M significant 4-itemsets of Bms1: one
// closed itemset of cardinality 154 accounts for over 22M of them.
//
// ClosedAll enumerates closed itemsets directly with prefix-preserving
// closure extensions (the LCM scheme): each closed itemset is generated
// exactly once, without storing previously found sets, and — crucially — a
// single huge closed block is ONE output, not 2^|block| frequent subsets.

// Closure returns the closure of the itemset: every item whose tid list
// contains tids(X). For an itemset with support zero the closure is returned
// as the itemset itself.
func Closure(v *dataset.Vertical, items Itemset) Itemset {
	tids := v.TidListOf(items)
	if len(tids) == 0 {
		return items.Clone()
	}
	return closureOfTids(v, tids)
}

// closureOfTids returns all items present in every transaction of tids.
func closureOfTids(v *dataset.Vertical, tids bitset.TidList) Itemset {
	sup := len(tids)
	out := make(Itemset, 0, 8)
	for it := 0; it < v.NumItems(); it++ {
		l := v.Tids[it]
		if len(l) < sup {
			continue
		}
		if bitset.IntersectCount(l, tids) == sup {
			out = append(out, uint32(it))
		}
	}
	return out
}

// IsClosed reports whether the itemset equals its closure.
func IsClosed(v *dataset.Vertical, items Itemset) bool {
	return Closure(v, items).Equal(items)
}

// FilterClosed keeps only the closed itemsets from the results.
func FilterClosed(v *dataset.Vertical, rs []Result) []Result {
	out := make([]Result, 0, len(rs))
	for _, r := range rs {
		if IsClosed(v, r.Items) {
			out = append(out, r)
		}
	}
	return out
}

// ClosedAll enumerates every closed itemset (size >= 1) with support >=
// minSupport, in no particular order, sorted on return for determinism.
func ClosedAll(v *dataset.Vertical, minSupport int) []Result {
	var out []Result
	VisitClosed(v, minSupport, func(items Itemset, support int) bool {
		out = append(out, Result{Items: items.Clone(), Support: support})
		return true
	})
	SortResults(out)
	return out
}

// VisitClosed streams every closed itemset with support >= minSupport to
// visit; returning false stops the enumeration. The items slice is only
// valid during the call.
func VisitClosed(v *dataset.Vertical, minSupport int, visit func(items Itemset, support int) bool) {
	if minSupport < 1 {
		panic("mining: VisitClosed requires minSupport >= 1")
	}
	if v.NumTransactions == 0 {
		return
	}
	stopped := false
	var rec func(p Itemset, tids bitset.TidList, core int)
	rec = func(p Itemset, tids bitset.TidList, core int) {
		for i := core + 1; i < v.NumItems(); i++ {
			if stopped {
				return
			}
			it := uint32(i)
			if p.Contains(it) {
				continue
			}
			if len(v.Tids[i]) < minSupport {
				continue
			}
			newTids := bitset.Intersect(tids, v.Tids[i])
			if len(newTids) < minSupport {
				continue
			}
			q := closureOfTids(v, newTids)
			// Prefix-preserving check: the closure must not introduce any
			// item below the extension item i that p lacks; otherwise q is
			// (or will be) generated from a smaller extension.
			if prefixPreserved(p, q, it) {
				if !visit(q, len(newTids)) {
					stopped = true
					return
				}
				rec(q, newTids, i)
			}
		}
	}
	// Root: the closure of the empty set (items in every transaction).
	all := make(bitset.TidList, v.NumTransactions)
	for i := range all {
		all[i] = uint32(i)
	}
	if len(all) < minSupport {
		// Not even the full transaction set reaches minSupport; impossible
		// since minSupport >= 1 and t >= 1, kept for clarity.
		return
	}
	root := closureOfTids(v, all)
	if len(root) > 0 {
		if !visit(root, len(all)) {
			return
		}
	}
	rec(root, all, -1)
}

// prefixPreserved reports whether every element of q below ext is already in
// p (both sorted).
func prefixPreserved(p, q Itemset, ext uint32) bool {
	j := 0
	for _, it := range q {
		if it >= ext {
			break
		}
		for j < len(p) && p[j] < it {
			j++
		}
		if j >= len(p) || p[j] != it {
			return false
		}
		j++
	}
	return true
}

// MaxClosedCardinality returns a largest-cardinality closed itemset with
// support >= minSupport and its support ((nil, 0) if none exists).
// Reproduces the paper's Bms1 diagnostic: one closed itemset of cardinality
// 154 with support > 7 explains over 22M significant subsets.
func MaxClosedCardinality(v *dataset.Vertical, minSupport int) (Itemset, int) {
	var best Itemset
	bestSup := 0
	VisitClosed(v, minSupport, func(items Itemset, support int) bool {
		if len(items) > len(best) || (len(items) == len(best) && support > bestSup) {
			best = items.Clone()
			bestSup = support
		}
		return true
	})
	return best, bestSup
}

package mining

import (
	"sigfim/internal/bitset"
	"sigfim/internal/dataset"
)

// Multi-threshold counting. Procedure 2 needs Q_{k,s_i} for a geometric
// ladder of thresholds s_i = s_min + 2^i; materializing the itemsets at the
// lowest threshold can be enormous (the paper reports 27M significant
// 4-itemsets on Bms1), so we count into a support histogram in one DFS
// without keeping the itemsets.

// CountK returns Q_{k,s} = |{X : |X|=k, support(X) >= minSupport}| without
// materializing itemsets.
func CountK(v *dataset.Vertical, k, minSupport int) int64 {
	var n int64
	VisitK(v, k, minSupport, func(Itemset, int) { n++ })
	return n
}

// SupportHistogram counts size-k itemsets by support level: the returned
// hist satisfies hist[s] = |{X : |X| = k, support(X) = s}| for
// s in [minSupport, len(hist)). Q_{k,s} for any s >= minSupport is then the
// suffix sum, see QFromHistogram.
func SupportHistogram(v *dataset.Vertical, k, minSupport int) []int64 {
	hist := make([]int64, v.MaxItemSupport()+1)
	VisitK(v, k, minSupport, func(_ Itemset, sup int) {
		hist[sup]++
	})
	return hist
}

// QFromHistogram returns Q_{k,s} = sum_{j >= s} hist[j].
func QFromHistogram(hist []int64, s int) int64 {
	if s < 0 {
		s = 0
	}
	var total int64
	for j := s; j < len(hist); j++ {
		total += hist[j]
	}
	return total
}

// CumulativeQ converts a support histogram into the full Q curve:
// out[s] = Q_{k,s} for every s in [0, len(hist)).
func CumulativeQ(hist []int64) []int64 {
	out := make([]int64, len(hist))
	var acc int64
	for s := len(hist) - 1; s >= 0; s-- {
		acc += hist[s]
		out[s] = acc
	}
	return out
}

// TopSupports returns the supports of the size-k itemsets with the largest
// supports, capped at limit entries, in descending order. Algorithm 1 uses
// the maximum observed support to bound its scan range.
func TopSupports(v *dataset.Vertical, k, minSupport, limit int) []int {
	hist := SupportHistogram(v, k, minSupport)
	var out []int
	for s := len(hist) - 1; s >= minSupport && len(out) < limit; s-- {
		for c := int64(0); c < hist[s] && len(out) < limit; c++ {
			out = append(out, s)
		}
	}
	return out
}

// MineKWithTids mines k-itemsets with support >= minSupport and hands the
// caller each itemset together with its tid list (valid only during the
// callback). Algorithm 1 records per-replicate supports of the union set W
// this way.
func MineKWithTids(v *dataset.Vertical, k, minSupport int, visit func(items Itemset, tids bitset.TidList)) {
	if k <= 0 || minSupport < 1 {
		panic("mining: MineKWithTids requires k >= 1 and minSupport >= 1")
	}
	items := frequentItems(v, minSupport)
	if len(items) < k {
		return
	}
	prefix := make(Itemset, 0, k)
	var rec func(start int, tids bitset.TidList)
	rec = func(start int, tids bitset.TidList) {
		depth := len(prefix)
		for i := start; i <= len(items)-(k-depth); i++ {
			it := items[i]
			var next bitset.TidList
			if depth == 0 {
				next = v.Tids[it]
			} else {
				next = bitset.Intersect(tids, v.Tids[it])
			}
			if len(next) < minSupport {
				continue
			}
			prefix = append(prefix, it)
			if depth+1 == k {
				emitSortedTids(prefix, next, visit)
			} else {
				rec(i+1, next)
			}
			prefix = prefix[:depth]
		}
	}
	rec(0, nil)
}

func emitSortedTids(prefix Itemset, tids bitset.TidList, visit func(Itemset, bitset.TidList)) {
	tmp := prefix.Clone()
	for i := 1; i < len(tmp); i++ {
		for j := i; j > 0 && tmp[j] < tmp[j-1]; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	visit(tmp, tids)
}

package mining

import (
	"reflect"
	"testing"

	"sigfim/internal/stats"
)

// collectScratch materializes a streaming mine into owned Results.
func collectScratch(run func(emit func(Itemset, int))) []Result {
	var out []Result
	run(func(is Itemset, sup int) {
		out = append(out, Result{Items: is.Clone(), Support: sup})
	})
	return out
}

// TestScratchReuseAcrossDatasets runs two datasets of different shapes
// through ONE Scratch — the replicate-engine usage pattern — and checks every
// kernel against a fresh-scratch run. A reused Scratch must never leak state
// (stale items, oversized buffers, old FP-trees, a previous table) from one
// dataset into the next.
func TestScratchReuseAcrossDatasets(t *testing.T) {
	r := stats.NewRNG(2024)
	// Dataset A: dense-ish, 40 items. Dataset B: sparser and wider, 70 items,
	// mined at a lower threshold so every code path re-sizes its buffers.
	dA := randomDataset(r, 40, 300)
	dB := sparseRandom(r, 70, 500, 3)
	vA, vB := dA.Vertical(), dB.Vertical()

	shared := NewScratch()
	type run struct {
		name string
		mine func(s *Scratch) interface{}
	}
	runs := []run{
		{"eclatTidList/A", func(s *Scratch) interface{} {
			return collectScratch(func(emit func(Itemset, int)) { eclatKTidList(vA, 2, 3, s, emit) })
		}},
		{"eclatTidList/B", func(s *Scratch) interface{} {
			return collectScratch(func(emit func(Itemset, int)) { eclatKTidList(vB, 3, 2, s, emit) })
		}},
		{"eclatBitset/A", func(s *Scratch) interface{} {
			return collectScratch(func(emit func(Itemset, int)) { eclatKBitset(vA, 2, 3, s, emit) })
		}},
		{"eclatBitset/B", func(s *Scratch) interface{} {
			return collectScratch(func(emit func(Itemset, int)) { eclatKBitset(vB, 3, 2, s, emit) })
		}},
		{"hashMine/B", func(s *Scratch) interface{} {
			return collectScratch(func(emit func(Itemset, int)) { hashMineK(vB, 2, 1, s, emit) })
		}},
		{"hashMine/A", func(s *Scratch) interface{} {
			return collectScratch(func(emit func(Itemset, int)) { hashMineK(vA, 3, 2, s, emit) })
		}},
		{"fpGrowthVisitK/A", func(s *Scratch) interface{} {
			return collectScratch(func(emit func(Itemset, int)) { fpGrowthVisitK(dA, 2, 3, 1, s, emit) })
		}},
		{"fpGrowthVisitK/B", func(s *Scratch) interface{} {
			return collectScratch(func(emit func(Itemset, int)) { fpGrowthVisitK(dB, 3, 2, 1, s, emit) })
		}},
		{"histogramAuto/A", func(s *Scratch) interface{} {
			return SupportHistogramAlgoScratch(vA, 2, 3, 1, Auto, s)
		}},
		{"histogramBits/B", func(s *Scratch) interface{} {
			return SupportHistogramAlgoScratch(vB, 2, 2, 1, EclatBits, s)
		}},
		{"histogramFP/A", func(s *Scratch) interface{} {
			return SupportHistogramAlgoScratch(vA, 3, 2, 1, FPGrowth, s)
		}},
	}
	// Interleave the datasets twice so the scratch crosses shapes repeatedly.
	for round := 0; round < 2; round++ {
		for _, rn := range runs {
			got := rn.mine(shared)
			want := rn.mine(NewScratch())
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d %s: reused scratch output differs from fresh scratch", round, rn.name)
			}
		}
	}
}

// TestVisitKAlgoScratchMatchesDispatcher pins the scratch-threaded dispatcher
// to the public one for every algorithm and several worker counts: same
// values AND same order.
func TestVisitKAlgoScratchMatchesDispatcher(t *testing.T) {
	r := stats.NewRNG(77)
	v := randomDataset(r, 30, 400).Vertical()
	s := NewScratch()
	for _, algo := range []Algorithm{Auto, EclatTids, EclatBits, Apriori, FPGrowth} {
		for _, workers := range []int{1, 4} {
			want := collectScratch(func(emit func(Itemset, int)) {
				VisitKAlgoParallel(v, 2, 2, workers, algo, emit)
			})
			// Run twice with the same shared scratch: both the first (cold)
			// and second (warm) pass must match.
			for pass := 0; pass < 2; pass++ {
				got := collectScratch(func(emit func(Itemset, int)) {
					VisitKAlgoScratch(v, 2, 2, workers, algo, s, emit)
				})
				if !resultsEqual(got, want) {
					t.Fatalf("algo %v workers %d pass %d: scratch dispatcher differs", algo, workers, pass)
				}
			}
		}
	}
}

// TestItemsetTable exercises the string-free itemset table directly: dense
// insertion-order ids, lookups across growth, and Reset reuse.
func TestItemsetTable(t *testing.T) {
	tab := NewItemsetTable(3, 0)
	r := stats.NewRNG(5)
	var tuples [][]uint32
	seen := map[string]int{}
	for i := 0; i < 5000; i++ {
		tup := []uint32{uint32(r.Intn(40)), uint32(r.Intn(40)), uint32(r.Intn(40))}
		id, added := tab.Insert(tup)
		key := Itemset(tup).Key()
		if prev, ok := seen[key]; ok {
			if added || id != prev {
				t.Fatalf("duplicate %v: got id %d added %v, want id %d", tup, id, added, prev)
			}
		} else {
			if !added || id != len(tuples) {
				t.Fatalf("new %v: got id %d added %v, want id %d", tup, id, added, len(tuples))
			}
			seen[key] = id
			tuples = append(tuples, append([]uint32(nil), tup...))
		}
	}
	if tab.Len() != len(tuples) {
		t.Fatalf("Len %d, want %d", tab.Len(), len(tuples))
	}
	for id, tup := range tuples {
		if got := tab.Lookup(tup); got != id {
			t.Fatalf("Lookup(%v) = %d, want %d", tup, got, id)
		}
		if !Itemset(tab.Items(id)).Equal(Itemset(tup)) {
			t.Fatalf("Items(%d) = %v, want %v", id, tab.Items(id), tup)
		}
	}
	if tab.Lookup([]uint32{99, 99, 99}) != -1 {
		t.Fatal("Lookup of absent tuple should return -1")
	}
	// Reset keeps storage but empties the table, including a k change.
	tab.Reset(2)
	if tab.Len() != 0 || tab.K() != 2 {
		t.Fatalf("after Reset: Len %d K %d", tab.Len(), tab.K())
	}
	if id, added := tab.Insert([]uint32{1, 2}); !added || id != 0 {
		t.Fatalf("first insert after Reset: id %d added %v", id, added)
	}
}

package mining

import (
	"fmt"

	"sigfim/internal/dataset"
)

// Algorithm selects the mining strategy.
type Algorithm int

const (
	// Auto picks Eclat with an automatically chosen physical layout.
	Auto Algorithm = iota
	// EclatTids forces vertical mining over sorted tid lists.
	EclatTids
	// EclatBits forces vertical mining over dense bitsets.
	EclatBits
	// Apriori forces level-wise horizontal mining.
	Apriori
	// FPGrowth forces FP-tree mining.
	FPGrowth
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "auto"
	case EclatTids:
		return "eclat-tids"
	case EclatBits:
		return "eclat-bits"
	case Apriori:
		return "apriori"
	case FPGrowth:
		return "fpgrowth"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures a mining run.
type Options struct {
	// K restricts output to itemsets of exactly this size when positive;
	// zero mines all sizes (bounded by MaxLen).
	K int
	// MinSupport is the absolute support threshold (>= 1).
	MinSupport int
	// MaxLen caps itemset size when K is zero; <= 0 means unbounded.
	MaxLen int
	// Algorithm selects the strategy; Auto by default.
	Algorithm Algorithm
	// Workers bounds the goroutines of the parallel engine; 0 selects
	// runtime.NumCPU(), 1 forces the serial path. Output is identical —
	// values and order — for every worker count (FP-Growth mines serially
	// regardless; its conditional-tree recursion does not shard cleanly).
	Workers int
}

// Mine runs the configured algorithm against the dataset. Both layouts are
// accepted; whichever the algorithm does not need is derived on the fly.
func Mine(d *dataset.Dataset, opts Options) ([]Result, error) {
	if opts.MinSupport < 1 {
		return nil, fmt.Errorf("mining: MinSupport must be >= 1, got %d", opts.MinSupport)
	}
	if opts.K < 0 {
		return nil, fmt.Errorf("mining: K must be >= 0, got %d", opts.K)
	}
	switch opts.Algorithm {
	case Auto, EclatTids, EclatBits:
		return MineVertical(d.Vertical(), opts)
	case Apriori:
		if opts.K > 0 {
			return AprioriKParallel(d, opts.K, opts.MinSupport, opts.Workers), nil
		}
		return AprioriAllParallel(d, opts.MinSupport, opts.MaxLen, opts.Workers), nil
	case FPGrowth:
		if opts.K > 0 {
			return FPGrowthK(d, opts.K, opts.MinSupport), nil
		}
		return FPGrowthAll(d, opts.MinSupport, opts.MaxLen), nil
	default:
		return nil, fmt.Errorf("mining: unknown algorithm %v", opts.Algorithm)
	}
}

// MineVertical mines directly from the vertical layout (the natural input
// when datasets come from the random generator). Only the Eclat variants
// apply; Auto picks the layout by density.
func MineVertical(v *dataset.Vertical, opts Options) ([]Result, error) {
	if opts.MinSupport < 1 {
		return nil, fmt.Errorf("mining: MinSupport must be >= 1, got %d", opts.MinSupport)
	}
	switch opts.Algorithm {
	case Auto:
		if opts.K > 0 {
			return EclatKParallel(v, opts.K, opts.MinSupport, opts.Workers), nil
		}
		return EclatAllParallel(v, opts.MinSupport, opts.MaxLen, opts.Workers), nil
	case EclatTids:
		if opts.K > 0 {
			return EclatKTidListParallel(v, opts.K, opts.MinSupport, opts.Workers), nil
		}
		return EclatAllParallel(v, opts.MinSupport, opts.MaxLen, opts.Workers), nil
	case EclatBits:
		if opts.K > 0 {
			return EclatKBitsetParallel(v, opts.K, opts.MinSupport, opts.Workers), nil
		}
		return EclatAllParallel(v, opts.MinSupport, opts.MaxLen, opts.Workers), nil
	case Apriori, FPGrowth:
		d := v.Horizontal()
		return Mine(d, opts)
	default:
		return nil, fmt.Errorf("mining: unknown algorithm %v", opts.Algorithm)
	}
}

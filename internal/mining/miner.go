package mining

import (
	"fmt"

	"sigfim/internal/dataset"
)

// Algorithm selects the mining strategy.
type Algorithm int

const (
	// Auto picks Eclat with an automatically chosen physical layout.
	Auto Algorithm = iota
	// EclatTids forces vertical mining over sorted tid lists.
	EclatTids
	// EclatBits forces vertical mining over dense bitsets.
	EclatBits
	// Apriori forces level-wise horizontal mining.
	Apriori
	// FPGrowth forces FP-tree mining.
	FPGrowth
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "auto"
	case EclatTids:
		return "eclat-tids"
	case EclatBits:
		return "eclat-bits"
	case Apriori:
		return "apriori"
	case FPGrowth:
		return "fpgrowth"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm maps an algorithm name (as accepted by the CLIs and the
// public API) to its Algorithm value. The empty string selects Auto; "eclat"
// is an alias for "eclat-tids".
func ParseAlgorithm(name string) (Algorithm, error) {
	switch name {
	case "", "auto":
		return Auto, nil
	case "eclat", "eclat-tids":
		return EclatTids, nil
	case "eclat-bits":
		return EclatBits, nil
	case "apriori":
		return Apriori, nil
	case "fpgrowth":
		return FPGrowth, nil
	default:
		return Auto, fmt.Errorf("mining: unknown algorithm %q", name)
	}
}

// Options configures a mining run.
type Options struct {
	// K restricts output to itemsets of exactly this size when positive;
	// zero mines all sizes (bounded by MaxLen).
	K int
	// MinSupport is the absolute support threshold (>= 1).
	MinSupport int
	// MaxLen caps itemset size when K is zero; <= 0 means unbounded.
	MaxLen int
	// Algorithm selects the strategy; Auto by default.
	Algorithm Algorithm
	// Workers bounds the goroutines of the parallel engine; 0 selects
	// runtime.NumCPU(), 1 forces the serial path. For a fixed algorithm the
	// output is identical — values and order — for every worker count:
	// Eclat shards first-item prefix classes, Apriori shards its counting
	// scans, and FP-Growth shards the header-table suffix classes of the
	// global tree. (Orders differ BETWEEN algorithms: Eclat emits DFS
	// order, Apriori and FP-Growth emit lexicographically sorted output.)
	Workers int
}

// Mine runs the configured algorithm against the dataset. Both layouts are
// accepted; whichever the algorithm does not need is derived on the fly.
func Mine(d *dataset.Dataset, opts Options) ([]Result, error) {
	if opts.MinSupport < 1 {
		return nil, fmt.Errorf("mining: MinSupport must be >= 1, got %d", opts.MinSupport)
	}
	if opts.K < 0 {
		return nil, fmt.Errorf("mining: K must be >= 0, got %d", opts.K)
	}
	switch opts.Algorithm {
	case Auto, EclatTids, EclatBits:
		return MineVertical(d.Vertical(), opts)
	case Apriori:
		if opts.K > 0 {
			return AprioriKParallel(d, opts.K, opts.MinSupport, opts.Workers), nil
		}
		return AprioriAllParallel(d, opts.MinSupport, opts.MaxLen, opts.Workers), nil
	case FPGrowth:
		if opts.K > 0 {
			return FPGrowthKParallel(d, opts.K, opts.MinSupport, opts.Workers), nil
		}
		return FPGrowthAllParallel(d, opts.MinSupport, opts.MaxLen, opts.Workers), nil
	default:
		return nil, fmt.Errorf("mining: unknown algorithm %v", opts.Algorithm)
	}
}

// MineVertical mines directly from the vertical layout (the natural input
// when datasets come from the random generator). Only the Eclat variants
// apply; Auto picks the layout by density.
func MineVertical(v *dataset.Vertical, opts Options) ([]Result, error) {
	if opts.MinSupport < 1 {
		return nil, fmt.Errorf("mining: MinSupport must be >= 1, got %d", opts.MinSupport)
	}
	switch opts.Algorithm {
	case Auto:
		if opts.K > 0 {
			return EclatKParallel(v, opts.K, opts.MinSupport, opts.Workers), nil
		}
		return EclatAllParallel(v, opts.MinSupport, opts.MaxLen, opts.Workers), nil
	case EclatTids:
		if opts.K > 0 {
			return EclatKTidListParallel(v, opts.K, opts.MinSupport, opts.Workers), nil
		}
		return EclatAllParallel(v, opts.MinSupport, opts.MaxLen, opts.Workers), nil
	case EclatBits:
		if opts.K > 0 {
			return EclatKBitsetParallel(v, opts.K, opts.MinSupport, opts.Workers), nil
		}
		return EclatAllParallel(v, opts.MinSupport, opts.MaxLen, opts.Workers), nil
	case Apriori, FPGrowth:
		d := v.Horizontal()
		return Mine(d, opts)
	default:
		return nil, fmt.Errorf("mining: unknown algorithm %v", opts.Algorithm)
	}
}

// VisitKAlgoParallel streams every k-itemset with support >= minSupport to
// emit using the selected algorithm with a worker pool. emit is never called
// concurrently, and — for every algorithm — the itemset it receives is a
// scratch slice valid only during the call (clone it to retain it), as with
// VisitK. For a fixed algorithm the emission order is identical for every
// worker count (orders differ BETWEEN algorithms: Eclat variants emit DFS
// order, Apriori and FP-Growth emit lexicographically sorted output).
func VisitKAlgoParallel(v *dataset.Vertical, k, minSupport, workers int, algo Algorithm, emit func(items Itemset, support int)) {
	VisitKAlgoScratch(v, k, minSupport, workers, algo, nil, emit)
}

// VisitKAlgoScratch is VisitKAlgoParallel with a threaded Scratch (nil
// allowed); output — values and order — is identical to VisitKAlgoParallel.
// This is the entry point of the Monte Carlo replicate engine: with a reused
// per-worker Scratch the serial paths of every algorithm (Eclat over tid
// lists or bitsets, FP-Growth, the hash path) stream straight from pooled
// buffers, so a worker's second replicate allocates nothing.
func VisitKAlgoScratch(v *dataset.Vertical, k, minSupport, workers int, algo Algorithm, s *Scratch, emit func(items Itemset, support int)) {
	s = ensureScratch(s)
	switch algo {
	case EclatBits:
		if workers = ResolveWorkers(workers); workers <= 1 {
			// Streaming the serial kernel emits the exact DFS order the
			// sharded merge reproduces, so both branches agree bit for bit.
			eclatKBitset(v, k, minSupport, s, emit)
			return
		}
		for _, r := range eclatKBitsetParallel(v, k, minSupport, workers, s) {
			emit(r.Items, r.Support)
		}
	case Apriori:
		for _, r := range AprioriKParallel(s.horizontal(v), k, minSupport, workers) {
			emit(r.Items, r.Support)
		}
	case FPGrowth:
		// fpGrowthVisitK streams the lexicographically sorted patterns from
		// the scratch's flat collection — the same values and order
		// FPGrowthKParallel materializes, without the per-Result allocations.
		fpGrowthVisitK(s.horizontal(v), k, minSupport, workers, s, emit)
	default:
		visitKParallel(v, k, minSupport, workers, s, emit)
	}
}

// SupportHistogramAlgoParallel is SupportHistogramParallel with an explicit
// algorithm choice; every algorithm yields the exact same histogram, so the
// choice only affects performance. FP-Growth streams shard-local counts
// without materializing itemsets; EclatBits streams over the dense bitset
// kernels; Apriori counts from its k-th level, which level-wise mining
// materializes regardless.
func SupportHistogramAlgoParallel(v *dataset.Vertical, k, minSupport, workers int, algo Algorithm) []int64 {
	return SupportHistogramAlgoScratch(v, k, minSupport, workers, algo, nil)
}

// SupportHistogramAlgoScratch is SupportHistogramAlgoParallel with a threaded
// Scratch (nil allowed): a reused Scratch pools the horizontal conversion,
// the dense columns, the FP-tree arenas, and the DFS buffers across calls.
func SupportHistogramAlgoScratch(v *dataset.Vertical, k, minSupport, workers int, algo Algorithm, s *Scratch) []int64 {
	s = ensureScratch(s)
	switch algo {
	case EclatBits:
		return supportHistogramBitsetParallel(v, k, minSupport, workers, s)
	case FPGrowth:
		return fpGrowthSupportHistogram(s.horizontal(v), k, minSupport, workers, v.MaxItemSupport()+1, s)
	case Apriori:
		hist := make([]int64, v.MaxItemSupport()+1)
		for _, r := range AprioriKParallel(s.horizontal(v), k, minSupport, workers) {
			hist[r.Support]++
		}
		return hist
	default:
		return supportHistogramParallel(v, k, minSupport, workers, s)
	}
}

// Package mining implements the frequent itemset mining engine under the
// significance methodology: Apriori (level-wise, candidate prefix trie),
// Eclat (vertical depth-first search over tid lists or bitsets), FP-Growth
// (conditional pattern trees), fixed-size-k mining (the primitive the paper's
// procedures consume), support histograms for multi-threshold counting, and
// closed-itemset filtering.
//
// There is no Go frequent-itemset-mining library to lean on, so the package
// is self-contained; all algorithms agree with each other and with brute
// force enumeration (see the cross-agreement property tests).
package mining

import (
	"encoding/binary"
	"sort"
)

// Itemset is a sorted, duplicate-free list of item ids.
type Itemset []uint32

// Key encodes the itemset as a compact string for use as a map key.
func (s Itemset) Key() string {
	buf := make([]byte, 4*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint32(buf[4*i:], v)
	}
	return string(buf)
}

// KeyToItemset decodes a Key back into an Itemset.
func KeyToItemset(key string) Itemset {
	b := []byte(key)
	out := make(Itemset, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

// NewItemset copies, sorts, and deduplicates the given items.
func NewItemset(items ...uint32) Itemset {
	c := append([]uint32(nil), items...)
	sort.Slice(c, func(a, b int) bool { return c[a] < c[b] })
	w := 0
	for r := 0; r < len(c); r++ {
		if w == 0 || c[w-1] != c[r] {
			c[w] = c[r]
			w++
		}
	}
	return Itemset(c[:w])
}

// Equal reports element-wise equality.
func (s Itemset) Equal(o Itemset) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Contains reports whether item is a member (binary search).
func (s Itemset) Contains(item uint32) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < item {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == item
}

// SubsetOf reports whether every element of s is in o (both sorted).
func (s Itemset) SubsetOf(o Itemset) bool {
	if len(s) > len(o) {
		return false
	}
	j := 0
	for _, v := range s {
		for j < len(o) && o[j] < v {
			j++
		}
		if j >= len(o) || o[j] != v {
			return false
		}
		j++
	}
	return true
}

// Intersects reports whether s and o share at least one item. The paper's
// Chen-Stein neighborhoods I(X) are exactly the equal-size itemsets that
// intersect X.
func (s Itemset) Intersects(o Itemset) bool {
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] < o[j]:
			i++
		case s[i] > o[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// Union returns the sorted union of s and o.
func (s Itemset) Union(o Itemset) Itemset {
	out := make(Itemset, 0, len(s)+len(o))
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] < o[j]:
			out = append(out, s[i])
			i++
		case s[i] > o[j]:
			out = append(out, o[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, o[j:]...)
	return out
}

// Clone returns a copy.
func (s Itemset) Clone() Itemset { return append(Itemset(nil), s...) }

// Result pairs an itemset with its observed support.
type Result struct {
	Items   Itemset
	Support int
}

// SortResults orders results by descending support, breaking ties
// lexicographically by items; deterministic output for tests and tools.
func SortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Support != rs[j].Support {
			return rs[i].Support > rs[j].Support
		}
		a, b := rs[i].Items, rs[j].Items
		for x := 0; x < len(a) && x < len(b); x++ {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return len(a) < len(b)
	})
}

package mining

import (
	"testing"

	"sigfim/internal/stats"
)

// bruteMaximal: frequent itemsets with no frequent strict superset.
func bruteMaximal(v interface {
	NumItems() int
}, all []Result) []Result {
	var out []Result
	for i, r := range all {
		maximal := true
		for j, o := range all {
			if i == j {
				continue
			}
			if len(o.Items) > len(r.Items) && r.Items.SubsetOf(o.Items) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, r)
		}
	}
	SortResults(out)
	return out
}

func TestMaximalAgainstBrute(t *testing.T) {
	r := stats.NewRNG(909)
	for trial := 0; trial < 20; trial++ {
		d := randomDataset(r, 8, 30)
		v := d.Vertical()
		for _, minSup := range []int{1, 2, 4} {
			all := EclatAll(v, minSup, 0)
			want := bruteMaximal(v, all)
			got := MaximalAll(v, minSup)
			if !resultsEqual(got, want) {
				t.Fatalf("trial %d minSup=%d: maximal %d vs brute %d",
					trial, minSup, len(got), len(want))
			}
		}
	}
}

func TestMaximalAreClosedAndFrequent(t *testing.T) {
	r := stats.NewRNG(910)
	d := randomDataset(r, 8, 30)
	v := d.Vertical()
	for _, m := range MaximalAll(v, 2) {
		if m.Support < 2 {
			t.Fatalf("maximal itemset below threshold: %v", m)
		}
		if !IsClosed(v, m.Items) {
			t.Fatalf("maximal itemset not closed: %v", m.Items)
		}
	}
}

func TestTopK(t *testing.T) {
	r := stats.NewRNG(911)
	for trial := 0; trial < 15; trial++ {
		d := randomDataset(r, 8, 40)
		v := d.Vertical()
		all := EclatKTidList(v, 2, 1)
		SortResults(all)
		for _, K := range []int{1, 3, 10, 1000} {
			got := TopK(v, 2, K)
			wantLen := K
			if wantLen > len(all) {
				wantLen = len(all)
			}
			if len(got) != wantLen {
				t.Fatalf("TopK(%d) returned %d, want %d", K, len(got), wantLen)
			}
			// The returned supports must equal the top supports exactly.
			for i := range got {
				if got[i].Support != all[i].Support {
					t.Fatalf("TopK(%d)[%d] support %d, want %d",
						K, i, got[i].Support, all[i].Support)
				}
			}
		}
	}
}

func TestTopKDegenerate(t *testing.T) {
	r := stats.NewRNG(912)
	d := randomDataset(r, 6, 20)
	v := d.Vertical()
	if got := TopK(v, 2, 0); got != nil {
		t.Error("K=0 should return nil")
	}
	if got := TopK(v, 20, 5); len(got) != 0 {
		t.Errorf("k beyond universe returned %d", len(got))
	}
}

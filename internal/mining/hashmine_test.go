package mining

import (
	"testing"

	"sigfim/internal/dataset"
	"sigfim/internal/stats"
)

// sparseRandom builds short-transaction datasets that exercise the hash path.
func sparseRandom(r *stats.RNG, n, t int, meanLen float64) *dataset.Dataset {
	tx := make([][]uint32, t)
	for i := range tx {
		ln := stats.Poisson{Lambda: meanLen}.Sample(r)
		seen := map[int]bool{}
		for j := 0; j < ln; j++ {
			it := r.Intn(n)
			if !seen[it] {
				seen[it] = true
				tx[i] = append(tx[i], uint32(it))
			}
		}
	}
	return dataset.MustNew(n, tx)
}

func TestHashMineAgreesWithEclat(t *testing.T) {
	r := stats.NewRNG(4242)
	for trial := 0; trial < 15; trial++ {
		d := sparseRandom(r, 30, 200, 3)
		v := d.Vertical()
		for k := 2; k <= 4; k++ {
			for _, minSup := range []int{1, 2, 3} {
				want := map[string]int{}
				eclatKTidList(v, k, minSup, nil, func(items Itemset, sup int) {
					want[items.Key()] = sup
				})
				got := map[string]int{}
				hashMineK(v, k, minSup, NewScratch(), func(items Itemset, sup int) {
					got[items.Key()] = sup
				})
				if len(got) != len(want) {
					t.Fatalf("trial %d k=%d s=%d: hash %d vs eclat %d itemsets",
						trial, k, minSup, len(got), len(want))
				}
				for key, sup := range want {
					if got[key] != sup {
						t.Fatalf("trial %d k=%d s=%d: support mismatch for %v: %d vs %d",
							trial, k, minSup, KeyToItemset(key), got[key], sup)
					}
				}
			}
		}
	}
}

func TestVisitKDispatch(t *testing.T) {
	r := stats.NewRNG(11)
	// Sparse data at low threshold must select the hash path.
	sparse := sparseRandom(r, 50, 500, 2).Vertical()
	if !useHashPath(sparse, 3, 1) {
		t.Error("sparse low-threshold input should use hash path")
	}
	// High thresholds must not.
	if useHashPath(sparse, 3, 100) {
		t.Error("high threshold should use Eclat")
	}
	// k = 1 is answered directly from item supports.
	count := 0
	VisitK(sparse, 1, 3, func(items Itemset, sup int) {
		if len(items) != 1 || sup < 3 {
			t.Fatalf("bad k=1 emission: %v %d", items, sup)
		}
		count++
	})
	want := 0
	for _, l := range sparse.Tids {
		if len(l) >= 3 {
			want++
		}
	}
	if count != want {
		t.Fatalf("k=1 count %d, want %d", count, want)
	}
}

func TestVisitKPanicsOnBadArgs(t *testing.T) {
	v := dataset.MustNew(2, [][]uint32{{0, 1}}).Vertical()
	for _, bad := range [][2]int{{0, 1}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("VisitK(%v) should panic", bad)
				}
			}()
			VisitK(v, bad[0], bad[1], func(Itemset, int) {})
		}()
	}
}

func TestSubsetEnumerationCost(t *testing.T) {
	lens := []int{5, 3, 2, 10}
	// C(5,2)+C(3,2)+C(2,2)+C(10,2) = 10+3+1+45 = 59.
	if got := subsetEnumerationCost(lens, 2, 1000); got != 59 {
		t.Fatalf("cost = %d, want 59", got)
	}
	// Limit short-circuits.
	if got := subsetEnumerationCost(lens, 2, 10); got != 11 {
		t.Fatalf("capped cost = %d, want 11", got)
	}
	// Transactions shorter than k contribute nothing.
	if got := subsetEnumerationCost([]int{1, 2}, 3, 100); got != 0 {
		t.Fatalf("short transactions cost = %d", got)
	}
}

func TestMineKMatchesEclatOnDense(t *testing.T) {
	// Dense data routes through Eclat; MineK must agree with EclatK.
	r := stats.NewRNG(5)
	d := randomDataset(r, 8, 40)
	v := d.Vertical()
	a := MineK(v, 2, 2)
	b := EclatKTidList(v, 2, 2)
	if !resultsEqual(a, b) {
		t.Fatal("MineK disagrees with EclatK")
	}
}

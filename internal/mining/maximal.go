package mining

import (
	"container/heap"

	"sigfim/internal/dataset"
)

// Maximal frequent itemsets and top-K mining: the standard condensed
// representations alongside closed itemsets. A frequent itemset is maximal
// when no proper superset is frequent; the maximal family is the minimal
// description of the frequent border.

// MaximalAll returns every maximal frequent itemset with support >=
// minSupport (any size). Derived from the closed family: an itemset is
// maximal iff it is closed and no other closed itemset strictly contains it.
func MaximalAll(v *dataset.Vertical, minSupport int) []Result {
	closed := ClosedAll(v, minSupport)
	// Index closed itemsets by length descending; a closed set is maximal
	// iff no longer closed set contains it.
	var out []Result
	for i, c := range closed {
		maximal := true
		for j, o := range closed {
			if i == j || len(o.Items) <= len(c.Items) {
				continue
			}
			if c.Items.SubsetOf(o.Items) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, c)
		}
	}
	SortResults(out)
	return out
}

// resultHeap is a min-heap on support for top-K selection.
type resultHeap []Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return h[i].Support < h[j].Support }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TopK returns the K size-k itemsets with the largest supports (fewer if
// the dataset has fewer), descending by support. The search threshold rises
// as the heap fills, so the underlying DFS prunes like a normal mining run
// at the (unknown in advance) K-th support level.
func TopK(v *dataset.Vertical, k, K int) []Result {
	if K <= 0 {
		return nil
	}
	h := &resultHeap{}
	heap.Init(h)
	// Two-phase: first find the K-th largest support via the histogram
	// (cheap: counting at threshold 1 may be expensive on dense data, so
	// start from a high guess and halve).
	threshold := v.MaxItemSupport()
	if threshold < 1 {
		return nil
	}
	for threshold > 1 {
		if CountK(v, k, threshold) >= int64(K) {
			break
		}
		threshold /= 2
	}
	VisitK(v, k, threshold, func(items Itemset, sup int) {
		if h.Len() < K {
			heap.Push(h, Result{Items: items.Clone(), Support: sup})
			return
		}
		if sup > (*h)[0].Support {
			(*h)[0] = Result{Items: items.Clone(), Support: sup}
			heap.Fix(h, 0)
		}
	})
	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Result)
	}
	SortResults(out)
	return out
}

package mining

import (
	"sort"

	"sigfim/internal/bitset"
	"sigfim/internal/dataset"
)

// Eclat: vertical depth-first mining. The search tree is the prefix tree over
// items ordered by ascending support; each node carries the tid list (or
// bitset) of its prefix, refined by intersection as the search descends.
// Fixed-size-k mining prunes the tree at depth k, which is what the paper's
// procedures need (they mine k-itemsets for one k at a time).
//
// Every kernel threads a *Scratch carrying its mutable buffers (per-depth
// intersection storage, prefix and sort stacks, pooled dense columns), so a
// reused Scratch makes repeated mines — the Monte Carlo replicate loop —
// allocation-free in steady state.

// eclatDensityThreshold selects the bitset representation when average item
// support exceeds this fraction of t (dense columns intersect faster as
// words), and tid lists otherwise.
const eclatDensityThreshold = 1.0 / 16

// ensureScratch returns s, or a fresh Scratch when s is nil (the un-pooled
// entry points).
func ensureScratch(s *Scratch) *Scratch {
	if s == nil {
		return NewScratch()
	}
	return s
}

// EclatK mines all k-itemsets with support >= minSupport, choosing the
// physical representation automatically.
func EclatK(v *dataset.Vertical, k, minSupport int) []Result {
	if dense(v, minSupport) {
		return EclatKBitset(v, k, minSupport)
	}
	return EclatKTidList(v, k, minSupport)
}

// dense estimates whether frequent columns are dense enough for bitsets.
func dense(v *dataset.Vertical, minSupport int) bool {
	if v.NumTransactions == 0 {
		return false
	}
	total, cnt := 0, 0
	for _, l := range v.Tids {
		if len(l) >= minSupport {
			total += len(l)
			cnt++
		}
	}
	if cnt == 0 {
		return false
	}
	avg := float64(total) / float64(cnt)
	return avg/float64(v.NumTransactions) > eclatDensityThreshold
}

// frequentItems returns items with support >= minSupport sorted by ascending
// support (the standard Eclat ordering: least frequent first shrinks
// intersections early), allocated at exactly the needed capacity.
func frequentItems(v *dataset.Vertical, minSupport int) []uint32 {
	n := 0
	for _, l := range v.Tids {
		if len(l) >= minSupport {
			n++
		}
	}
	return frequentItemsInto(make([]uint32, 0, n), v, minSupport)
}

// frequentItemsInto is frequentItems appending into a reused buffer.
func frequentItemsInto(items []uint32, v *dataset.Vertical, minSupport int) []uint32 {
	for it, l := range v.Tids {
		if len(l) >= minSupport {
			items = append(items, uint32(it))
		}
	}
	sort.Slice(items, func(a, b int) bool {
		la, lb := len(v.Tids[items[a]]), len(v.Tids[items[b]])
		if la != lb {
			return la < lb
		}
		return items[a] < items[b]
	})
	return items
}

// EclatKTidList is EclatK with sorted tid-list intersections.
func EclatKTidList(v *dataset.Vertical, k, minSupport int) []Result {
	var out []Result
	eclatKTidList(v, k, minSupport, nil, func(items Itemset, support int) {
		out = append(out, Result{Items: items.Clone(), Support: support})
	})
	return out
}

// eclatKTidList runs the DFS, invoking emit for every size-k itemset found.
// emit receives a scratch slice valid only during the call.
func eclatKTidList(v *dataset.Vertical, k, minSupport int, s *Scratch, emit func(Itemset, int)) {
	if k <= 0 || minSupport < 1 {
		panic("mining: EclatK requires k >= 1 and minSupport >= 1")
	}
	s = ensureScratch(s)
	s.items = frequentItemsInto(s.items[:0], v, minSupport)
	if len(s.items) < k {
		return
	}
	items := s.items
	for first := 0; first <= len(items)-k; first++ {
		eclatKTidListSubtree(v, items, k, minSupport, first, s, emit)
	}
}

// eclatKTidListSubtree mines the prefix-tree subtree rooted at items[first]:
// every size-k itemset whose least-frequent member (in eclat order) is
// items[first]. The subtrees for first = 0..len(items)-k partition the full
// search space, which is the unit of work the parallel driver shards; visiting
// them in ascending first reproduces the serial DFS emission order exactly.
func eclatKTidListSubtree(v *dataset.Vertical, items []uint32, k, minSupport, first int, s *Scratch, emit func(Itemset, int)) {
	it := items[first]
	base := v.Tids[it]
	if len(base) < minSupport {
		return
	}
	s.ensureDepth(k)
	prefix := append(s.prefix[:0], it)
	if k == 1 {
		s.emitSortedScratch(prefix, len(base), emit)
		return
	}
	var rec func(start int, tids bitset.TidList)
	rec = func(start int, tids bitset.TidList) {
		depth := len(prefix)
		for i := start; i <= len(items)-(k-depth); i++ {
			next := bitset.IntersectTo(s.tidBufs[depth][:0], tids, v.Tids[items[i]])
			s.tidBufs[depth] = next
			sup := len(next)
			if sup < minSupport {
				continue
			}
			prefix = append(prefix, items[i])
			if depth+1 == k {
				s.emitSortedScratch(prefix, sup, emit)
			} else {
				rec(i+1, next)
			}
			prefix = prefix[:depth]
		}
	}
	rec(first+1, base)
}

// emitSorted hands emit a freshly allocated, id-sorted copy of the prefix
// (items were visited in support order, not id order); the callee owns it.
// The all-sizes miners use it because their collectors retain the slice.
func emitSorted(prefix Itemset, sup int, emit func(Itemset, int)) {
	tmp := prefix.Clone()
	sortSmall(tmp)
	emit(tmp, sup)
}

// EclatKBitset is EclatK with dense bitset intersections.
func EclatKBitset(v *dataset.Vertical, k, minSupport int) []Result {
	var out []Result
	eclatKBitset(v, k, minSupport, nil, func(items Itemset, support int) {
		out = append(out, Result{Items: items.Clone(), Support: support})
	})
	return out
}

// eclatKBitset runs the dense-bitset DFS, invoking emit for every size-k
// itemset found. emit receives a scratch slice valid only during the call.
func eclatKBitset(v *dataset.Vertical, k, minSupport int, s *Scratch, emit func(Itemset, int)) {
	if k <= 0 || minSupport < 1 {
		panic("mining: EclatK requires k >= 1 and minSupport >= 1")
	}
	s = ensureScratch(s)
	s.items = frequentItemsInto(s.items[:0], v, minSupport)
	if len(s.items) < k {
		return
	}
	items := s.items
	cols := s.columns(v, items)
	s.ensureBits(v.NumTransactions, k)
	for first := 0; first <= len(items)-k; first++ {
		eclatKBitsetSubtree(v, items, cols, s, k, minSupport, first, emit)
	}
}

// eclatKBitsetSubtree is eclatKTidListSubtree over dense bitset columns;
// cols[i] is the column of items[i]. The caller must have sized s's bitset
// scratch via ensureBits.
func eclatKBitsetSubtree(v *dataset.Vertical, items []uint32, cols []*bitset.Bitset, s *Scratch, k, minSupport, first int, emit func(Itemset, int)) {
	it := items[first]
	if len(v.Tids[it]) < minSupport {
		return
	}
	s.ensureDepth(k)
	prefix := append(s.prefix[:0], it)
	if k == 1 {
		s.emitSortedScratch(prefix, len(v.Tids[it]), emit)
		return
	}
	var rec func(start int, acc *bitset.Bitset)
	rec = func(start int, acc *bitset.Bitset) {
		depth := len(prefix)
		for i := start; i <= len(items)-(k-depth); i++ {
			next := s.bits[depth]
			next.And(acc, cols[i])
			sup := next.Count()
			if sup < minSupport {
				continue
			}
			prefix = append(prefix, items[i])
			if depth+1 == k {
				s.emitSortedScratch(prefix, sup, emit)
			} else {
				rec(i+1, next)
			}
			prefix = prefix[:depth]
		}
	}
	rec(first+1, cols[first])
}

// EclatAll mines every itemset (any size >= 1 up to maxLen; maxLen <= 0 means
// unbounded) with support >= minSupport using tid lists.
func EclatAll(v *dataset.Vertical, minSupport, maxLen int) []Result {
	if minSupport < 1 {
		panic("mining: EclatAll requires minSupport >= 1")
	}
	items := frequentItems(v, minSupport)
	var out []Result
	for first := range items {
		out = eclatAllSubtree(v, items, minSupport, maxLen, first, out)
	}
	return out
}

// eclatAllSubtree mines every itemset (all sizes) whose eclat-least item is
// items[first], appending to out. Like the fixed-k subtrees, ascending first
// reproduces the serial DFS order.
func eclatAllSubtree(v *dataset.Vertical, items []uint32, minSupport, maxLen, first int, out []Result) []Result {
	base := v.Tids[items[first]]
	if len(base) < minSupport {
		return out
	}
	prefix := make(Itemset, 1, 16)
	prefix[0] = items[first]
	emitSorted(prefix, len(base), func(is Itemset, s int) {
		out = append(out, Result{Items: is, Support: s})
	})
	var rec func(start int, tids bitset.TidList)
	rec = func(start int, tids bitset.TidList) {
		depth := len(prefix)
		if maxLen > 0 && depth == maxLen {
			return
		}
		for i := start; i < len(items); i++ {
			next := bitset.Intersect(tids, v.Tids[items[i]])
			sup := len(next)
			if sup < minSupport {
				continue
			}
			prefix = append(prefix, items[i])
			emitSorted(prefix, sup, func(is Itemset, s int) {
				out = append(out, Result{Items: is, Support: s})
			})
			rec(i+1, next)
			prefix = prefix[:depth]
		}
	}
	rec(first+1, base)
	return out
}

package mining

import (
	"sort"
	"sync/atomic"

	"sigfim/internal/dataset"
)

// FP-Growth: compresses the dataset into a frequent-pattern tree (items
// ordered by descending support so common prefixes share nodes), then mines
// recursively by building conditional trees per suffix item. No candidate
// generation; each recursion multiplies the suffix pattern.
//
// Parallel decomposition: after the (serial-insertion) global tree build, the
// header-table items are independent bottom-up suffix classes — mining item X
// reads only the global tree (which is immutable once built) and private
// conditional trees, so the classes shard across the same dynamic worker pool
// Eclat uses, with per-suffix result buffers merged in header order. The
// merged stream equals the serial emission stream exactly, and the final
// lexicographic sort is deterministic (itemsets are distinct), so parallel
// output is bit-identical to serial, including order, for every worker count.

// fpNode is one FP-tree node.
type fpNode struct {
	item     uint32
	count    int
	parent   *fpNode
	children map[uint32]*fpNode
	next     *fpNode // header-table chain of nodes carrying the same item
}

// fpTree is an FP-tree with its header table.
type fpTree struct {
	root    *fpNode
	heads   map[uint32]*fpNode // first node per item
	tails   map[uint32]*fpNode // last node per item, for O(1) chain append
	support map[uint32]int     // item support within this (conditional) tree
	order   map[uint32]int     // global rank: lower rank = more frequent
}

func newFPTree(order map[uint32]int) *fpTree {
	return &fpTree{
		root:    &fpNode{children: make(map[uint32]*fpNode)},
		heads:   make(map[uint32]*fpNode),
		tails:   make(map[uint32]*fpNode),
		support: make(map[uint32]int),
		order:   order,
	}
}

// insert adds a transaction (already filtered to frequent items and sorted by
// rank) with multiplicity count.
func (t *fpTree) insert(items []uint32, count int) {
	node := t.root
	for _, it := range items {
		child, ok := node.children[it]
		if !ok {
			child = &fpNode{item: it, parent: node, children: make(map[uint32]*fpNode)}
			node.children[it] = child
			if t.heads[it] == nil {
				t.heads[it] = child
				t.tails[it] = child
			} else {
				t.tails[it].next = child
				t.tails[it] = child
			}
		}
		child.count += count
		t.support[it] += count
		node = child
	}
}

// FPGrowthAll mines every itemset of size 1..maxLen (maxLen <= 0: unbounded)
// with support >= minSupport, serially.
func FPGrowthAll(d *dataset.Dataset, minSupport, maxLen int) []Result {
	return FPGrowthAllParallel(d, minSupport, maxLen, 1)
}

// FPGrowthAllParallel is FPGrowthAll with a worker pool (workers <= 0:
// NumCPU): the support-counting scan and the per-transaction filter-and-sort
// shard over transaction chunks, and the conditional-tree mining shards the
// header items. Output is identical (including order) to FPGrowthAll for any
// worker count.
func FPGrowthAllParallel(d *dataset.Dataset, minSupport, maxLen, workers int) []Result {
	return fpGrowthCollect(d, minSupport, maxLen, workers, 0)
}

// FPGrowthK mines exactly the k-itemsets with support >= minSupport,
// serially.
func FPGrowthK(d *dataset.Dataset, k, minSupport int) []Result {
	return FPGrowthKParallel(d, k, minSupport, 1)
}

// FPGrowthKParallel is FPGrowthK with a worker pool; output is identical
// (including order) to FPGrowthK for any worker count. Sub-k patterns are
// filtered out inside the emit path, before any Result is allocated.
func FPGrowthKParallel(d *dataset.Dataset, k, minSupport, workers int) []Result {
	if k < 1 {
		panic("mining: FPGrowthK requires k >= 1")
	}
	return fpGrowthCollect(d, minSupport, k, workers, k)
}

// fpGrowthCollect is the shared FP-Growth driver: it materializes the mined
// patterns up to maxLen, keeping only those of length onlyLen when
// onlyLen > 0, and returns them lexicographically sorted. The mine itself
// shards the header-table suffix classes over the worker pool; the final
// total sort over distinct itemsets makes the output independent of the
// shard schedule, so it is bit-identical to a serial run.
func fpGrowthCollect(d *dataset.Dataset, minSupport, maxLen, workers, onlyLen int) []Result {
	if minSupport < 1 {
		panic("mining: FPGrowth requires minSupport >= 1")
	}
	workers = ResolveWorkers(workers)
	tree := buildFPTree(d, fpRankOrder(d, minSupport, workers), workers)

	// Top-level suffix classes in serial mining order: descending rank.
	items := fpTreeItems(tree, minSupport)
	collect := func(out *[]Result) func(Itemset, int) {
		return func(pattern Itemset, sup int) {
			if onlyLen > 0 && len(pattern) != onlyLen {
				return
			}
			sort.Slice(pattern, func(a, b int) bool { return pattern[a] < pattern[b] })
			*out = append(*out, Result{Items: pattern, Support: sup})
		}
	}
	var out []Result
	if workers <= 1 || len(items) <= 1 {
		suffix := make(Itemset, 0, 16)
		for _, it := range items {
			fpMineItem(tree, it, minSupport, maxLen, suffix, collect(&out))
		}
	} else {
		bufs := make([][]Result, len(items))
		parallelShards(len(items), workers, func(_, shard int) {
			fpMineItem(tree, items[shard], minSupport, maxLen, nil, collect(&bufs[shard]))
		})
		out = mergeShardResults(bufs)
	}
	sortByItems(out)
	return out
}

// fpRankOrder ranks the frequent items by descending support (ties by
// ascending id) and returns the item -> rank map that fixes the FP-tree
// shape; the support scan shards over the workers.
func fpRankOrder(d *dataset.Dataset, minSupport, workers int) map[uint32]int {
	supports := fpItemSupports(d, workers)
	type itemSup struct {
		item uint32
		sup  int
	}
	var freq []itemSup
	for it, s := range supports {
		if s >= minSupport {
			freq = append(freq, itemSup{uint32(it), s})
		}
	}
	sort.Slice(freq, func(i, j int) bool {
		if freq[i].sup != freq[j].sup {
			return freq[i].sup > freq[j].sup
		}
		return freq[i].item < freq[j].item
	})
	order := make(map[uint32]int, len(freq))
	for rank, is := range freq {
		order[is.item] = rank
	}
	return order
}

// fpItemSupports counts n(i) for every item. With workers > 1 the scan
// shards the transactions into chunks counted into per-worker flat arrays
// (the pattern Apriori's candidate counting uses) merged by integer addition;
// serial runs read the dataset's cached supports.
func fpItemSupports(d *dataset.Dataset, workers int) []int {
	txs := d.Transactions()
	const chunkSize = 2048
	numChunks := (len(txs) + chunkSize - 1) / chunkSize
	if workers <= 1 || numChunks <= 1 {
		return d.ItemSupports()
	}
	if workers > numChunks {
		workers = numChunks
	}
	counts := make([][]int32, workers)
	for w := range counts {
		counts[w] = make([]int32, d.NumItems())
	}
	parallelShards(numChunks, workers, func(w, chunk int) {
		lo := chunk * chunkSize
		hi := lo + chunkSize
		if hi > len(txs) {
			hi = len(txs)
		}
		c := counts[w]
		for _, tr := range txs[lo:hi] {
			for _, it := range tr {
				c[it]++
			}
		}
	})
	out := make([]int, d.NumItems())
	for _, c := range counts {
		for i, n := range c {
			out[i] += int(n)
		}
	}
	return out
}

// buildFPTree constructs the global FP-tree. The per-transaction filtering
// and rank-sorting shard over transaction chunks; insertion stays serial in
// transaction order, so the tree — node counts AND header-chain order — is
// identical to a fully serial build.
func buildFPTree(d *dataset.Dataset, order map[uint32]int, workers int) *fpTree {
	tree := newFPTree(order)
	txs := d.Transactions()
	const chunkSize = 1024
	numChunks := (len(txs) + chunkSize - 1) / chunkSize
	if workers <= 1 || numChunks <= 1 {
		scratch := make([]uint32, 0, 64)
		for _, tr := range txs {
			scratch = fpFilterSort(scratch[:0], tr, order)
			if len(scratch) > 0 {
				tree.insert(scratch, 1)
			}
		}
		return tree
	}
	// Producer/consumer: workers filter chunks claimed off an atomic counter
	// while the consumer inserts finished chunks strictly in chunk order. The
	// semaphore bounds outstanding filtered chunks (filtering outruns the
	// serial insertion), keeping the transient footprint O(workers · chunk)
	// instead of a near-full filtered copy of the dataset.
	if workers > numChunks {
		workers = numChunks
	}
	outputs := make([]chan [][]uint32, numChunks)
	for i := range outputs {
		outputs[i] = make(chan [][]uint32, 1)
	}
	sem := make(chan struct{}, 2*workers)
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		go func() {
			for {
				sem <- struct{}{}
				chunk := int(next.Add(1)) - 1
				if chunk >= numChunks {
					<-sem
					return
				}
				lo := chunk * chunkSize
				hi := lo + chunkSize
				if hi > len(txs) {
					hi = len(txs)
				}
				out := make([][]uint32, hi-lo)
				arena := make([]uint32, 0, (hi-lo)*8)
				for i, tr := range txs[lo:hi] {
					start := len(arena)
					arena = fpFilterSort(arena, tr, order)
					if len(arena) > start {
						out[i] = arena[start:len(arena):len(arena)]
					}
				}
				outputs[chunk] <- out
			}
		}()
	}
	for chunk := 0; chunk < numChunks; chunk++ {
		for _, items := range <-outputs[chunk] {
			if len(items) > 0 {
				tree.insert(items, 1)
			}
		}
		<-sem
	}
	return tree
}

// fpFilterSort appends the transaction's frequent items to dst and sorts the
// appended region by ascending rank.
func fpFilterSort(dst []uint32, tr []uint32, order map[uint32]int) []uint32 {
	start := len(dst)
	for _, it := range tr {
		if _, ok := order[it]; ok {
			dst = append(dst, it)
		}
	}
	seg := dst[start:]
	sort.Slice(seg, func(a, b int) bool { return order[seg[a]] < order[seg[b]] })
	return dst
}

// fpTreeItems returns the tree's frequent items in mining order: descending
// global rank (least frequent first, the traditional bottom-up visit).
func fpTreeItems(t *fpTree, minSupport int) []uint32 {
	items := make([]uint32, 0, len(t.support))
	for it, s := range t.support {
		if s >= minSupport {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(a, b int) bool { return t.order[items[a]] > t.order[items[b]] })
	return items
}

// fpMine emits suffix-extended patterns from the (conditional) tree.
func fpMine(t *fpTree, minSupport, maxLen int, suffix Itemset, emit func(Itemset, int)) {
	if maxLen > 0 && len(suffix) >= maxLen {
		return
	}
	for _, it := range fpTreeItems(t, minSupport) {
		fpMineItem(t, it, minSupport, maxLen, suffix, emit)
	}
}

// fpMineItem emits the pattern suffix ∪ {it} (freshly allocated; the callee
// owns it) and recursively mines its conditional tree. It reads the shared
// tree t but never mutates it, so distinct items may be mined concurrently
// from the same tree.
func fpMineItem(t *fpTree, it uint32, minSupport, maxLen int, suffix Itemset, emit func(Itemset, int)) {
	pattern := append(suffix.Clone(), it)
	emit(pattern, t.support[it])
	if maxLen > 0 && len(pattern) >= maxLen {
		return
	}
	// Build the conditional tree: prefix paths of every node carrying it.
	cond := newFPTree(t.order)
	for node := t.heads[it]; node != nil; node = node.next {
		var path []uint32
		for p := node.parent; p != nil && p.parent != nil; p = p.parent {
			path = append(path, p.item)
		}
		// path is bottom-up; reverse to root-down rank order.
		for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
			path[l], path[r] = path[r], path[l]
		}
		if len(path) > 0 {
			cond.insert(path, node.count)
		}
	}
	if len(cond.support) > 0 {
		fpMine(cond, minSupport, maxLen, pattern, emit)
	}
}

// fpGrowthSupportHistogram fills a support histogram of the k-itemsets with
// support >= minSupport (hist[s] = count at support s, len(hist) = size)
// without materializing any itemset: the header-item shards stream into
// per-worker integer histograms merged by addition — order is irrelevant to
// a histogram, so no buffers and no pattern allocations survive the mine.
func fpGrowthSupportHistogram(d *dataset.Dataset, k, minSupport, workers, size int) []int64 {
	if k < 1 || minSupport < 1 {
		panic("mining: fpGrowthSupportHistogram requires k >= 1 and minSupport >= 1")
	}
	workers = ResolveWorkers(workers)
	tree := buildFPTree(d, fpRankOrder(d, minSupport, workers), workers)
	items := fpTreeItems(tree, minSupport)
	if workers > len(items) {
		workers = len(items)
	}
	if workers < 1 {
		workers = 1
	}
	hists := newWorkerHistograms(workers, size)
	parallelShards(len(items), workers, func(w, shard int) {
		hist := hists[w]
		fpMineItem(tree, items[shard], minSupport, k, nil, func(pattern Itemset, sup int) {
			if len(pattern) == k {
				hist[sup]++
			}
		})
	})
	return mergeWorkerHistograms(hists)
}

package mining

import (
	"sort"

	"sigfim/internal/dataset"
)

// FP-Growth: compresses the dataset into a frequent-pattern tree (items
// ordered by descending support so common prefixes share nodes), then mines
// recursively by building conditional trees per suffix item. No candidate
// generation; each recursion multiplies the suffix pattern.

// fpNode is one FP-tree node.
type fpNode struct {
	item     uint32
	count    int
	parent   *fpNode
	children map[uint32]*fpNode
	next     *fpNode // header-table chain of nodes carrying the same item
}

// fpTree is an FP-tree with its header table.
type fpTree struct {
	root    *fpNode
	heads   map[uint32]*fpNode // first node per item
	tails   map[uint32]*fpNode // last node per item, for O(1) chain append
	support map[uint32]int     // item support within this (conditional) tree
	order   map[uint32]int     // global rank: lower rank = more frequent
}

func newFPTree(order map[uint32]int) *fpTree {
	return &fpTree{
		root:    &fpNode{children: make(map[uint32]*fpNode)},
		heads:   make(map[uint32]*fpNode),
		tails:   make(map[uint32]*fpNode),
		support: make(map[uint32]int),
		order:   order,
	}
}

// insert adds a transaction (already filtered to frequent items and sorted by
// rank) with multiplicity count.
func (t *fpTree) insert(items []uint32, count int) {
	node := t.root
	for _, it := range items {
		child, ok := node.children[it]
		if !ok {
			child = &fpNode{item: it, parent: node, children: make(map[uint32]*fpNode)}
			node.children[it] = child
			if t.heads[it] == nil {
				t.heads[it] = child
				t.tails[it] = child
			} else {
				t.tails[it].next = child
				t.tails[it] = child
			}
		}
		child.count += count
		t.support[it] += count
		node = child
	}
}

// FPGrowthAll mines every itemset of size 1..maxLen (maxLen <= 0: unbounded)
// with support >= minSupport.
func FPGrowthAll(d *dataset.Dataset, minSupport, maxLen int) []Result {
	if minSupport < 1 {
		panic("mining: FPGrowth requires minSupport >= 1")
	}
	supports := d.ItemSupports()
	// Rank items by descending support (ties by id) and keep frequent ones.
	type itemSup struct {
		item uint32
		sup  int
	}
	var freq []itemSup
	for it, s := range supports {
		if s >= minSupport {
			freq = append(freq, itemSup{uint32(it), s})
		}
	}
	sort.Slice(freq, func(i, j int) bool {
		if freq[i].sup != freq[j].sup {
			return freq[i].sup > freq[j].sup
		}
		return freq[i].item < freq[j].item
	})
	order := make(map[uint32]int, len(freq))
	for rank, is := range freq {
		order[is.item] = rank
	}
	tree := newFPTree(order)
	scratch := make([]uint32, 0, 64)
	for _, tr := range d.Transactions() {
		scratch = scratch[:0]
		for _, it := range tr {
			if _, ok := order[it]; ok {
				scratch = append(scratch, it)
			}
		}
		sort.Slice(scratch, func(a, b int) bool { return order[scratch[a]] < order[scratch[b]] })
		if len(scratch) > 0 {
			tree.insert(scratch, 1)
		}
	}
	var out []Result
	suffix := make(Itemset, 0, 16)
	fpMine(tree, minSupport, maxLen, suffix, &out)
	for i := range out {
		sort.Slice(out[i].Items, func(a, b int) bool { return out[i].Items[a] < out[i].Items[b] })
	}
	sortByItems(out)
	return out
}

// FPGrowthK mines exactly the k-itemsets with support >= minSupport.
func FPGrowthK(d *dataset.Dataset, k, minSupport int) []Result {
	all := FPGrowthAll(d, minSupport, k)
	out := all[:0]
	for _, r := range all {
		if len(r.Items) == k {
			out = append(out, r)
		}
	}
	return out
}

// fpMine emits suffix-extended patterns from the (conditional) tree.
func fpMine(t *fpTree, minSupport, maxLen int, suffix Itemset, out *[]Result) {
	if maxLen > 0 && len(suffix) >= maxLen {
		return
	}
	// Visit items by ascending support rank order descending (least frequent
	// first is traditional; any order is correct).
	items := make([]uint32, 0, len(t.support))
	for it, s := range t.support {
		if s >= minSupport {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(a, b int) bool { return t.order[items[a]] > t.order[items[b]] })
	for _, it := range items {
		pattern := append(suffix.Clone(), it)
		*out = append(*out, Result{Items: pattern, Support: t.support[it]})
		if maxLen > 0 && len(pattern) >= maxLen {
			continue
		}
		// Build the conditional tree: prefix paths of every node carrying it.
		cond := newFPTree(t.order)
		for node := t.heads[it]; node != nil; node = node.next {
			var path []uint32
			for p := node.parent; p != nil && p.parent != nil; p = p.parent {
				path = append(path, p.item)
			}
			// path is bottom-up; reverse to root-down rank order.
			for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
				path[l], path[r] = path[r], path[l]
			}
			if len(path) > 0 {
				cond.insert(path, node.count)
			}
		}
		if len(cond.support) > 0 {
			fpMine(cond, minSupport, maxLen, pattern, out)
		}
	}
}

package mining

import (
	"slices"
	"sort"
	"sync/atomic"

	"sigfim/internal/dataset"
)

// FP-Growth: compresses the dataset into a frequent-pattern tree (items
// ordered by descending support so common prefixes share nodes), then mines
// recursively by building conditional trees per suffix item. No candidate
// generation; each recursion multiplies the suffix pattern.
//
// The trees are index-based arenas: nodes live in one flat slice per tree
// (child/sibling/header links are indices, -1 = none), items are replaced by
// dense ranks so header chains and per-item supports are plain slices, and
// the conditional trees of a mining descent are pooled per recursion depth in
// the fpScratch — so a reused Scratch rebuilds and re-mines trees replicate
// after replicate without allocating. Child lookup walks the sibling list,
// which beats the former per-node map: fanout is bounded by the frequent-item
// count and shrinks rapidly with depth.
//
// Parallel decomposition: after the (serial-insertion) global tree build, the
// header-table ranks are independent bottom-up suffix classes — mining rank r
// reads only the global tree (immutable once built) and private conditional
// trees, so the classes shard across the same dynamic worker pool Eclat uses.
// Every emission path either streams into per-worker accumulators (histogram)
// or ends in a lexicographic sort over distinct itemsets, so output is
// bit-identical to serial, including order, for every worker count.

// fpNode is one FP-tree node; all links are indices into the owning tree's
// node arena, -1 meaning none. Node 0 is the root (rank -1).
type fpNode struct {
	rank    int32
	count   int32
	parent  int32
	child   int32 // first child
	sibling int32 // next child of the same parent
	next    int32 // header chain of nodes carrying the same rank
}

// fpTree is an FP-tree with its header table, all storage index-based and
// reusable via reset.
type fpTree struct {
	nodes   []fpNode
	heads   []int32 // per rank: first node in the header chain
	tails   []int32 // per rank: last node, for O(1) chain append
	support []int32 // per rank: support within this (conditional) tree
}

// reset empties the tree for ranks [0, numRanks), keeping capacity.
func (t *fpTree) reset(numRanks int) {
	t.nodes = append(t.nodes[:0], fpNode{rank: -1, count: 0, parent: -1, child: -1, sibling: -1, next: -1})
	if cap(t.heads) < numRanks {
		t.heads = make([]int32, numRanks)
		t.tails = make([]int32, numRanks)
		t.support = make([]int32, numRanks)
	} else {
		t.heads = t.heads[:numRanks]
		t.tails = t.tails[:numRanks]
		t.support = t.support[:numRanks]
	}
	for i := 0; i < numRanks; i++ {
		t.heads[i] = -1
		t.tails[i] = -1
		t.support[i] = 0
	}
}

// insert adds a path of ranks (already filtered to frequent items and sorted
// ascending, i.e. most frequent first) with multiplicity count.
func (t *fpTree) insert(ranks []int32, count int32) {
	cur := int32(0)
	for _, rk := range ranks {
		t.support[rk] += count
		c := t.nodes[cur].child
		for c >= 0 && t.nodes[c].rank != rk {
			c = t.nodes[c].sibling
		}
		if c < 0 {
			c = int32(len(t.nodes))
			t.nodes = append(t.nodes, fpNode{rank: rk, parent: cur, child: -1, sibling: t.nodes[cur].child, next: -1})
			t.nodes[cur].child = c
			if t.heads[rk] < 0 {
				t.heads[rk] = c
			} else {
				t.nodes[t.tails[rk]].next = c
			}
			t.tails[rk] = c
		}
		t.nodes[c].count += count
		cur = c
	}
}

// fpScratch is the FP-Growth slice of a mining Scratch: the rank maps and
// global tree of the current mine, the per-depth conditional tree pool, and
// the pattern/path buffers of one mining descent.
type fpScratch struct {
	rank     []int32   // item -> rank, -1 when infrequent
	rankItem []uint32  // rank -> item
	global   fpTree    // the global tree of the current mine
	cond     []*fpTree // pooled conditional trees, by recursion depth
	pattern  []uint32  // suffix item stack of the descent
	sortBuf  []uint32  // emit-time sort buffer
	pathBuf  []int32   // prefix-path buffer for conditional builds
	ranksBuf []int32   // per-transaction filter/sort buffer for builds
	flat     []uint32  // flat pattern collection (fixed-k streaming)
	sups     []int32   // supports parallel to flat
	order    []int32   // sort permutation over the flat collection
}

// condTree returns the pooled conditional tree for the given recursion depth.
func (f *fpScratch) condTree(depth int) *fpTree {
	for len(f.cond) <= depth {
		f.cond = append(f.cond, &fpTree{})
	}
	return f.cond[depth]
}

// FPGrowthAll mines every itemset of size 1..maxLen (maxLen <= 0: unbounded)
// with support >= minSupport, serially.
func FPGrowthAll(d *dataset.Dataset, minSupport, maxLen int) []Result {
	return FPGrowthAllParallel(d, minSupport, maxLen, 1)
}

// FPGrowthAllParallel is FPGrowthAll with a worker pool (workers <= 0:
// NumCPU): the support-counting scan and the per-transaction filter-and-sort
// shard over transaction chunks, and the conditional-tree mining shards the
// header ranks. Output is identical (including order) to FPGrowthAll for any
// worker count.
func FPGrowthAllParallel(d *dataset.Dataset, minSupport, maxLen, workers int) []Result {
	return fpGrowthCollect(d, minSupport, maxLen, workers, 0, nil)
}

// FPGrowthK mines exactly the k-itemsets with support >= minSupport,
// serially.
func FPGrowthK(d *dataset.Dataset, k, minSupport int) []Result {
	return FPGrowthKParallel(d, k, minSupport, 1)
}

// FPGrowthKParallel is FPGrowthK with a worker pool; output is identical
// (including order) to FPGrowthK for any worker count. Sub-k patterns are
// filtered out inside the emit path, before any Result is allocated.
func FPGrowthKParallel(d *dataset.Dataset, k, minSupport, workers int) []Result {
	if k < 1 {
		panic("mining: FPGrowthK requires k >= 1")
	}
	return fpGrowthCollect(d, minSupport, k, workers, k, nil)
}

// fpBuild computes the rank order and builds the global FP-tree into s.fp,
// returning the number of ranks (frequent items). The support scan and the
// per-transaction filter/sort shard over the workers; insertion stays serial
// in transaction order, so the tree — node counts AND header-chain order —
// is identical to a fully serial build.
func fpBuild(d *dataset.Dataset, minSupport, workers int, s *Scratch) int {
	fs := &s.fp
	supports := fpItemSupports(d, workers)
	if cap(fs.rank) < d.NumItems() {
		fs.rank = make([]int32, d.NumItems())
	}
	fs.rank = fs.rank[:d.NumItems()]
	fs.rankItem = fs.rankItem[:0]
	for it, sup := range supports {
		fs.rank[it] = -1
		if sup >= minSupport {
			fs.rankItem = append(fs.rankItem, uint32(it))
		}
	}
	// Rank by descending support, ties by ascending id; this fixes the tree
	// shape exactly as the former map-based order did.
	items := fs.rankItem
	sort.Slice(items, func(i, j int) bool {
		if supports[items[i]] != supports[items[j]] {
			return supports[items[i]] > supports[items[j]]
		}
		return items[i] < items[j]
	})
	for rk, it := range items {
		fs.rank[it] = int32(rk)
	}
	numRanks := len(items)
	fs.global.reset(numRanks)
	txs := d.Transactions()
	const chunkSize = 1024
	numChunks := (len(txs) + chunkSize - 1) / chunkSize
	workers = ResolveWorkers(workers)
	if workers <= 1 || numChunks <= 1 {
		for _, tr := range txs {
			fs.ranksBuf = fpFilterSortRanks(fs.ranksBuf[:0], tr, fs.rank)
			if len(fs.ranksBuf) > 0 {
				fs.global.insert(fs.ranksBuf, 1)
			}
		}
		return numRanks
	}
	// Producer/consumer: workers filter chunks claimed off an atomic counter
	// while the consumer inserts finished chunks strictly in chunk order. The
	// semaphore bounds outstanding filtered chunks (filtering outruns the
	// serial insertion), keeping the transient footprint O(workers · chunk)
	// instead of a near-full filtered copy of the dataset.
	if workers > numChunks {
		workers = numChunks
	}
	outputs := make([]chan [][]int32, numChunks)
	for i := range outputs {
		outputs[i] = make(chan [][]int32, 1)
	}
	sem := make(chan struct{}, 2*workers)
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		go func() {
			for {
				sem <- struct{}{}
				chunk := int(next.Add(1)) - 1
				if chunk >= numChunks {
					<-sem
					return
				}
				lo := chunk * chunkSize
				hi := lo + chunkSize
				if hi > len(txs) {
					hi = len(txs)
				}
				out := make([][]int32, hi-lo)
				arena := make([]int32, 0, (hi-lo)*8)
				for i, tr := range txs[lo:hi] {
					start := len(arena)
					arena = fpFilterSortRanks(arena, tr, fs.rank)
					if len(arena) > start {
						out[i] = arena[start:len(arena):len(arena)]
					}
				}
				outputs[chunk] <- out
			}
		}()
	}
	for chunk := 0; chunk < numChunks; chunk++ {
		for _, ranks := range <-outputs[chunk] {
			if len(ranks) > 0 {
				fs.global.insert(ranks, 1)
			}
		}
		<-sem
	}
	return numRanks
}

// fpItemSupports counts n(i) for every item. With workers > 1 the scan
// shards the transactions into chunks counted into per-worker flat arrays
// (the pattern Apriori's candidate counting uses) merged by integer addition;
// serial runs read the dataset's cached supports.
func fpItemSupports(d *dataset.Dataset, workers int) []int {
	txs := d.Transactions()
	const chunkSize = 2048
	numChunks := (len(txs) + chunkSize - 1) / chunkSize
	if workers <= 1 || numChunks <= 1 {
		return d.ItemSupports()
	}
	if workers > numChunks {
		workers = numChunks
	}
	counts := make([][]int32, workers)
	for w := range counts {
		counts[w] = make([]int32, d.NumItems())
	}
	parallelShards(numChunks, workers, func(w, chunk int) {
		lo := chunk * chunkSize
		hi := lo + chunkSize
		if hi > len(txs) {
			hi = len(txs)
		}
		c := counts[w]
		for _, tr := range txs[lo:hi] {
			for _, it := range tr {
				c[it]++
			}
		}
	})
	out := make([]int, d.NumItems())
	for _, c := range counts {
		for i, n := range c {
			out[i] += int(n)
		}
	}
	return out
}

// fpFilterSortRanks appends the ranks of the transaction's frequent items to
// dst and sorts the appended region ascending (most frequent first — the
// insertion order the tree shape depends on).
func fpFilterSortRanks(dst []int32, tr []uint32, rank []int32) []int32 {
	start := len(dst)
	for _, it := range tr {
		if rk := rank[it]; rk >= 0 {
			dst = append(dst, rk)
		}
	}
	slices.Sort(dst[start:])
	return dst
}

// fpMineRank emits the suffix class of rank rk in tree t: the pattern
// (current descent suffix ∪ {rank rk's item}) and, recursively, everything
// below it via rk's conditional tree. Patterns are emitted as id-sorted
// scratch slices valid only during the call. t is read but never mutated, so
// distinct top-level ranks may be mined concurrently from the same tree as
// long as each worker brings its own fpScratch for the descent state.
func fpMineRank(t *fpTree, rk int32, depth int, ws *fpScratch, rankItem []uint32, minSupport, maxLen, onlyLen int, emit func(Itemset, int)) {
	ws.pattern = append(ws.pattern, rankItem[rk])
	if onlyLen == 0 || len(ws.pattern) == onlyLen {
		buf := append(ws.sortBuf[:0], ws.pattern...)
		ws.sortBuf = buf
		sortSmall(buf)
		emit(Itemset(buf), int(t.support[rk]))
	}
	if (maxLen <= 0 || len(ws.pattern) < maxLen) && rk > 0 {
		// Build the conditional tree: prefix paths of every node carrying rk.
		// Only ranks below rk can appear in a prefix (paths ascend in rank),
		// so the conditional tree is sized rk.
		cond := ws.condTree(depth)
		cond.reset(int(rk))
		for n := t.heads[rk]; n >= 0; n = t.nodes[n].next {
			path := ws.pathBuf[:0]
			for p := t.nodes[n].parent; p > 0; p = t.nodes[p].parent {
				path = append(path, t.nodes[p].rank)
			}
			ws.pathBuf = path
			// path is bottom-up; reverse to root-down rank order.
			for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
				path[l], path[r] = path[r], path[l]
			}
			if len(path) > 0 {
				cond.insert(path, t.nodes[n].count)
			}
		}
		for rk2 := rk - 1; rk2 >= 0; rk2-- {
			if cond.support[rk2] >= int32(minSupport) {
				fpMineRank(cond, rk2, depth+1, ws, rankItem, minSupport, maxLen, onlyLen, emit)
			}
		}
	}
	ws.pattern = ws.pattern[:len(ws.pattern)-1]
}

// fpGrowthCollect is the shared materializing FP-Growth driver: it mines the
// patterns up to maxLen, keeping only those of length onlyLen when
// onlyLen > 0, and returns them lexicographically sorted (freshly allocated;
// the caller owns them). The mine shards the top-level suffix ranks over the
// worker pool; the final total sort over distinct itemsets makes the output
// independent of the shard schedule, so it is bit-identical to a serial run.
func fpGrowthCollect(d *dataset.Dataset, minSupport, maxLen, workers, onlyLen int, s *Scratch) []Result {
	if minSupport < 1 {
		panic("mining: FPGrowth requires minSupport >= 1")
	}
	s = ensureScratch(s)
	workers = ResolveWorkers(workers)
	numRanks := fpBuild(d, minSupport, workers, s)
	ranks := fpMiningRanks(&s.fp, numRanks, minSupport)
	collect := func(out *[]Result) func(Itemset, int) {
		return func(pattern Itemset, sup int) {
			*out = append(*out, Result{Items: pattern.Clone(), Support: sup})
		}
	}
	var out []Result
	if workers <= 1 || len(ranks) <= 1 {
		for _, rk := range ranks {
			fpMineRank(&s.fp.global, rk, 0, &s.fp, s.fp.rankItem, minSupport, maxLen, onlyLen, collect(&out))
		}
	} else {
		workers = shardWorkers(s, len(ranks), workers)
		bufs := make([][]Result, len(ranks))
		parallelShards(len(ranks), workers, func(w, shard int) {
			ws := &s.child(w).fp
			fpMineRank(&s.fp.global, ranks[shard], 0, ws, s.fp.rankItem, minSupport, maxLen, onlyLen, collect(&bufs[shard]))
		})
		out = mergeShardResults(bufs)
	}
	sortByItems(out)
	return out
}

// fpMiningRanks returns the tree's frequent ranks in mining order: descending
// rank (least frequent first, the traditional bottom-up visit).
func fpMiningRanks(fs *fpScratch, numRanks, minSupport int) []int32 {
	ranks := make([]int32, 0, numRanks)
	for rk := int32(numRanks) - 1; rk >= 0; rk-- {
		if fs.global.support[rk] >= int32(minSupport) {
			ranks = append(ranks, rk)
		}
	}
	return ranks
}

// fpGrowthVisitK streams the k-itemsets with support >= minSupport to emit
// in lexicographic order, using only scratch storage in the serial case: the
// patterns collect into a flat stride-k buffer that is permutation-sorted
// and replayed. emit receives a scratch slice valid only during the call.
func fpGrowthVisitK(d *dataset.Dataset, k, minSupport, workers int, s *Scratch, emit func(Itemset, int)) {
	if k < 1 || minSupport < 1 {
		panic("mining: FPGrowth requires k >= 1 and minSupport >= 1")
	}
	s = ensureScratch(s)
	workers = ResolveWorkers(workers)
	numRanks := fpBuild(d, minSupport, workers, s)
	ranks := fpMiningRanks(&s.fp, numRanks, minSupport)
	fs := &s.fp
	fs.flat = fs.flat[:0]
	fs.sups = fs.sups[:0]
	if workers <= 1 || len(ranks) <= 1 {
		for _, rk := range ranks {
			fpMineRank(&fs.global, rk, 0, fs, fs.rankItem, minSupport, k, k, func(items Itemset, sup int) {
				fs.flat = append(fs.flat, items...)
				fs.sups = append(fs.sups, int32(sup))
			})
		}
	} else {
		type shardOut struct {
			flat []uint32
			sups []int32
		}
		workers = shardWorkers(s, len(ranks), workers)
		bufs := make([]shardOut, len(ranks))
		parallelShards(len(ranks), workers, func(w, shard int) {
			ws := &s.child(w).fp
			b := &bufs[shard]
			fpMineRank(&fs.global, ranks[shard], 0, ws, fs.rankItem, minSupport, k, k, func(items Itemset, sup int) {
				b.flat = append(b.flat, items...)
				b.sups = append(b.sups, int32(sup))
			})
		})
		for _, b := range bufs {
			fs.flat = append(fs.flat, b.flat...)
			fs.sups = append(fs.sups, b.sups...)
		}
	}
	// Lexicographic permutation sort over the flat collection; itemsets are
	// distinct, so the order is total and shard-schedule independent.
	n := len(fs.sups)
	fs.order = fs.order[:0]
	for i := 0; i < n; i++ {
		fs.order = append(fs.order, int32(i))
	}
	flat := fs.flat
	sort.Slice(fs.order, func(a, b int) bool {
		x := flat[int(fs.order[a])*k : int(fs.order[a])*k+k]
		y := flat[int(fs.order[b])*k : int(fs.order[b])*k+k]
		for i := 0; i < k; i++ {
			if x[i] != y[i] {
				return x[i] < y[i]
			}
		}
		return false
	})
	for _, id := range fs.order {
		emit(Itemset(flat[int(id)*k:int(id)*k+k]), int(fs.sups[id]))
	}
}

// fpGrowthSupportHistogram fills a support histogram of the k-itemsets with
// support >= minSupport (hist[s] = count at support s, len(hist) = size)
// without materializing any itemset: the rank shards stream into per-worker
// integer histograms merged by addition — order is irrelevant to a
// histogram, so no buffers and no pattern allocations survive the mine.
func fpGrowthSupportHistogram(d *dataset.Dataset, k, minSupport, workers, size int, s *Scratch) []int64 {
	if k < 1 || minSupport < 1 {
		panic("mining: fpGrowthSupportHistogram requires k >= 1 and minSupport >= 1")
	}
	s = ensureScratch(s)
	workers = ResolveWorkers(workers)
	numRanks := fpBuild(d, minSupport, workers, s)
	ranks := fpMiningRanks(&s.fp, numRanks, minSupport)
	if workers > len(ranks) {
		workers = len(ranks)
	}
	if workers < 1 {
		workers = 1
	}
	hists := newWorkerHistograms(workers, size)
	if workers <= 1 {
		hist := hists[0]
		for _, rk := range ranks {
			fpMineRank(&s.fp.global, rk, 0, &s.fp, s.fp.rankItem, minSupport, k, k, func(_ Itemset, sup int) {
				hist[sup]++
			})
		}
		return hists[0]
	}
	workers = shardWorkers(s, len(ranks), workers)
	parallelShards(len(ranks), workers, func(w, shard int) {
		ws := &s.child(w).fp
		hist := hists[w]
		fpMineRank(&s.fp.global, ranks[shard], 0, ws, s.fp.rankItem, minSupport, k, k, func(_ Itemset, sup int) {
			hist[sup]++
		})
	})
	return mergeWorkerHistograms(hists)
}

package mining

import (
	"runtime"
	"sync"
	"sync/atomic"

	"sigfim/internal/dataset"
)

// Parallel mining engine. The Eclat prefix tree decomposes into independent
// subtrees, one per first item (in eclat support order); those subtrees are
// the sharding unit. Workers claim subtrees dynamically off an atomic counter
// (subtree sizes are wildly skewed, so static striping would load-balance
// poorly), write into per-subtree result buffers, and the driver concatenates
// the buffers in subtree order — which is exactly the serial DFS emission
// order, so parallel mining is identical to serial mining for every worker
// count, including output order.

// ResolveWorkers maps a Workers knob value to a concrete goroutine count:
// values <= 0 select runtime.NumCPU().
func ResolveWorkers(w int) int {
	if w <= 0 {
		return runtime.NumCPU()
	}
	return w
}

// shardWorkers caps the worker count at the shard count (a worker beyond that
// would never claim work) and pre-creates the per-worker child scratches —
// child() mutates the parent and must not be called from concurrent shards.
func shardWorkers(s *Scratch, n, workers int) int {
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		s.child(w)
	}
	return workers
}

// parallelShards runs fn(worker, shard) for every shard in [0, n), spreading
// shards over `workers` goroutines via dynamic claiming. fn must be safe for
// concurrent invocation across distinct worker ids; each worker id runs on a
// single goroutine, so per-worker state needs no locking.
func parallelShards(n, workers int, fn func(worker, shard int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for s := 0; s < n; s++ {
			fn(0, s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= n {
					return
				}
				fn(w, s)
			}
		}(w)
	}
	wg.Wait()
}

// EclatKParallel is EclatK with a worker pool (workers <= 0: NumCPU); the
// physical representation is chosen automatically, as in EclatK.
func EclatKParallel(v *dataset.Vertical, k, minSupport, workers int) []Result {
	if dense(v, minSupport) {
		return EclatKBitsetParallel(v, k, minSupport, workers)
	}
	return EclatKTidListParallel(v, k, minSupport, workers)
}

// EclatKTidListParallel mines k-itemsets over tid lists with a worker pool.
// Output is identical (including order) to EclatKTidList for any worker count.
func EclatKTidListParallel(v *dataset.Vertical, k, minSupport, workers int) []Result {
	if k <= 0 || minSupport < 1 {
		panic("mining: EclatK requires k >= 1 and minSupport >= 1")
	}
	if workers = ResolveWorkers(workers); workers <= 1 {
		return EclatKTidList(v, k, minSupport)
	}
	s := NewScratch()
	items := frequentItemsInto(s.items[:0], v, minSupport)
	if len(items) < k {
		return nil
	}
	n := len(items) - k + 1
	if n <= 1 {
		return EclatKTidList(v, k, minSupport)
	}
	workers = shardWorkers(s, n, workers)
	bufs := make([][]Result, n)
	parallelShards(n, workers, func(w, first int) {
		bufs[first] = collectSubtree(func(emit func(Itemset, int)) {
			eclatKTidListSubtree(v, items, k, minSupport, first, s.child(w), emit)
		})
	})
	return mergeShardResults(bufs)
}

// EclatKBitsetParallel mines k-itemsets over dense bitsets with a worker
// pool; the columns are shared read-only, intersection scratch is per worker.
func EclatKBitsetParallel(v *dataset.Vertical, k, minSupport, workers int) []Result {
	if workers = ResolveWorkers(workers); workers > 1 {
		return eclatKBitsetParallel(v, k, minSupport, workers, nil)
	}
	return EclatKBitset(v, k, minSupport)
}

// eclatKBitsetParallel is the scratch-threaded parallel bitset miner: the
// parent Scratch supplies the pooled dense columns (built serially, shared
// read-only across the shards) and one child Scratch per worker carries the
// per-depth intersection bitsets.
func eclatKBitsetParallel(v *dataset.Vertical, k, minSupport, workers int, s *Scratch) []Result {
	if k <= 0 || minSupport < 1 {
		panic("mining: EclatK requires k >= 1 and minSupport >= 1")
	}
	s = ensureScratch(s)
	items := frequentItemsInto(s.items[:0], v, minSupport)
	if len(items) < k {
		return nil
	}
	n := len(items) - k + 1
	if n <= 1 {
		return EclatKBitset(v, k, minSupport)
	}
	workers = shardWorkers(s, n, workers)
	cols := s.columns(v, items)
	for w := 0; w < workers; w++ {
		s.child(w).ensureBits(v.NumTransactions, k)
	}
	bufs := make([][]Result, n)
	parallelShards(n, workers, func(w, first int) {
		bufs[first] = collectSubtree(func(emit func(Itemset, int)) {
			eclatKBitsetSubtree(v, items, cols, s.child(w), k, minSupport, first, emit)
		})
	})
	return mergeShardResults(bufs)
}

// EclatAllParallel mines all sizes (up to maxLen; <= 0 unbounded) with a
// worker pool. Output is identical to EclatAll for any worker count.
func EclatAllParallel(v *dataset.Vertical, minSupport, maxLen, workers int) []Result {
	if minSupport < 1 {
		panic("mining: EclatAll requires minSupport >= 1")
	}
	if workers = ResolveWorkers(workers); workers <= 1 {
		return EclatAll(v, minSupport, maxLen)
	}
	items := frequentItems(v, minSupport)
	if len(items) <= 1 {
		return EclatAll(v, minSupport, maxLen)
	}
	bufs := make([][]Result, len(items))
	parallelShards(len(items), workers, func(_, first int) {
		bufs[first] = eclatAllSubtree(v, items, minSupport, maxLen, first, nil)
	})
	return mergeShardResults(bufs)
}

// CountKParallel is CountK with a worker pool: per-worker counters over the
// sharded eclat search, summed at the end. The hash-mining path (which wins
// at very low thresholds on sparse data) is kept serial — it is selected
// precisely when the total work is small.
func CountKParallel(v *dataset.Vertical, k, minSupport, workers int) int64 {
	if k < 1 || minSupport < 1 {
		panic("mining: CountK requires k >= 1 and minSupport >= 1")
	}
	workers = ResolveWorkers(workers)
	if workers <= 1 || k == 1 || useHashPath(v, k, minSupport) {
		return CountK(v, k, minSupport)
	}
	s := NewScratch()
	items := frequentItemsInto(s.items[:0], v, minSupport)
	if len(items) < k {
		return 0
	}
	n := len(items) - k + 1
	workers = shardWorkers(s, n, workers)
	counts := make([]int64, workers)
	parallelShards(n, workers, func(w, first int) {
		// Accumulate into a shard-local counter: counts' adjacent slots
		// share cache lines, and incrementing them per emission would
		// false-share across workers in the engine's hottest loop.
		var local int64
		eclatKTidListSubtree(v, items, k, minSupport, first, s.child(w), func(Itemset, int) {
			local++
		})
		counts[w] += local
	})
	var total int64
	for _, c := range counts {
		total += c
	}
	return total
}

// newWorkerHistograms allocates one int64 histogram of the given size per
// worker.
func newWorkerHistograms(workers, size int) [][]int64 {
	hists := make([][]int64, workers)
	for w := range hists {
		hists[w] = make([]int64, size)
	}
	return hists
}

// mergeWorkerHistograms sums the per-worker histograms into the first one by
// integer addition and returns it; the merged result is therefore identical
// for any worker count.
func mergeWorkerHistograms(hists [][]int64) []int64 {
	out := hists[0]
	for _, h := range hists[1:] {
		for s, c := range h {
			out[s] += c
		}
	}
	return out
}

// SupportHistogramParallel is SupportHistogram with a worker pool:
// per-worker histograms over the sharded eclat search, merged by integer
// addition, so the result is exactly SupportHistogram's for any worker count.
func SupportHistogramParallel(v *dataset.Vertical, k, minSupport, workers int) []int64 {
	return supportHistogramParallel(v, k, minSupport, workers, nil)
}

// supportHistogramParallel is SupportHistogramParallel with a threaded
// Scratch (nil allowed); a reused Scratch makes repeated histogram runs
// allocation-free apart from the returned histogram itself.
func supportHistogramParallel(v *dataset.Vertical, k, minSupport, workers int, s *Scratch) []int64 {
	if k < 1 || minSupport < 1 {
		panic("mining: SupportHistogram requires k >= 1 and minSupport >= 1")
	}
	s = ensureScratch(s)
	workers = ResolveWorkers(workers)
	if workers <= 1 || k == 1 ||
		(minSupport <= hashPathMaxSupport && useHashPathLens(s.scratchLengths(v), k, minSupport)) {
		return supportHistogram(v, k, minSupport, s)
	}
	items := frequentItemsInto(s.items[:0], v, minSupport)
	size := v.MaxItemSupport() + 1
	if len(items) < k {
		return make([]int64, size)
	}
	n := len(items) - k + 1
	workers = shardWorkers(s, n, workers)
	hists := newWorkerHistograms(workers, size)
	parallelShards(n, workers, func(w, first int) {
		eclatKTidListSubtree(v, items, k, minSupport, first, s.child(w), func(_ Itemset, sup int) {
			hists[w][sup]++
		})
	})
	return mergeWorkerHistograms(hists)
}

// supportHistogram is the serial histogram with a threaded Scratch.
func supportHistogram(v *dataset.Vertical, k, minSupport int, s *Scratch) []int64 {
	hist := make([]int64, v.MaxItemSupport()+1)
	visitK(v, k, minSupport, s, func(_ Itemset, sup int) {
		hist[sup]++
	})
	return hist
}

// supportHistogramBitsetParallel is supportHistogramParallel with the dense
// bitset kernels forced, for Algorithm = EclatBits callers: per-worker
// histograms over the sharded bitset subtrees, merged by addition. The
// histogram is identical to every other miner's; only the intersection
// representation differs. k = 1 falls back to the generic path (no
// intersections happen at size one).
func supportHistogramBitsetParallel(v *dataset.Vertical, k, minSupport, workers int, s *Scratch) []int64 {
	if k < 1 || minSupport < 1 {
		panic("mining: SupportHistogram requires k >= 1 and minSupport >= 1")
	}
	s = ensureScratch(s)
	if k == 1 {
		return supportHistogram(v, k, minSupport, s)
	}
	workers = ResolveWorkers(workers)
	size := v.MaxItemSupport() + 1
	items := frequentItemsInto(s.items[:0], v, minSupport)
	if len(items) < k {
		return make([]int64, size)
	}
	n := len(items) - k + 1
	workers = shardWorkers(s, n, workers)
	cols := s.columns(v, items)
	for w := 0; w < workers; w++ {
		s.child(w).ensureBits(v.NumTransactions, k)
	}
	hists := newWorkerHistograms(workers, size)
	parallelShards(n, workers, func(w, first int) {
		eclatKBitsetSubtree(v, items, cols, s.child(w), k, minSupport, first, func(_ Itemset, sup int) {
			hists[w][sup]++
		})
	})
	return mergeWorkerHistograms(hists)
}

// VisitKParallel streams every k-itemset with support >= minSupport to emit
// in exactly VisitK's order, mining the eclat subtrees with a worker pool and
// replaying the per-subtree buffers sequentially. emit itself is never called
// concurrently, and the itemset it receives is owned by the callee only for
// the duration of the call, as with VisitK. The hash-mining path and k = 1
// stay serial (both are trivial fractions of the total work when selected).
func VisitKParallel(v *dataset.Vertical, k, minSupport, workers int, emit func(items Itemset, support int)) {
	visitKParallel(v, k, minSupport, workers, nil, emit)
}

// visitKParallel is VisitKParallel with a threaded Scratch (nil allowed).
// The serial case (the Monte Carlo replicate engine's steady state) streams
// straight through visitK and allocates nothing once the Scratch has warmed
// up; the sharded case still materializes per-subtree buffers for the ordered
// replay.
func visitKParallel(v *dataset.Vertical, k, minSupport, workers int, s *Scratch, emit func(items Itemset, support int)) {
	if k < 1 || minSupport < 1 {
		panic("mining: VisitK requires k >= 1 and minSupport >= 1")
	}
	s = ensureScratch(s)
	workers = ResolveWorkers(workers)
	if workers <= 1 || k == 1 ||
		(minSupport <= hashPathMaxSupport && useHashPathLens(s.scratchLengths(v), k, minSupport)) {
		visitK(v, k, minSupport, s, emit)
		return
	}
	items := frequentItemsInto(s.items[:0], v, minSupport)
	if len(items) < k {
		return
	}
	n := len(items) - k + 1
	workers = shardWorkers(s, n, workers)
	bufs := make([][]Result, n)
	parallelShards(n, workers, func(w, first int) {
		bufs[first] = collectSubtree(func(emit func(Itemset, int)) {
			eclatKTidListSubtree(v, items, k, minSupport, first, s.child(w), emit)
		})
	})
	for i, b := range bufs {
		for _, r := range b {
			emit(r.Items, r.Support)
		}
		bufs[i] = nil // release as we replay; emit may retain copies of its own
	}
}

// collectSubtree materializes one subtree's emissions.
func collectSubtree(run func(emit func(Itemset, int))) []Result {
	var out []Result
	run(func(is Itemset, sup int) {
		out = append(out, Result{Items: is.Clone(), Support: sup})
	})
	return out
}

// mergeShardResults concatenates per-subtree buffers in subtree order.
func mergeShardResults(bufs [][]Result) []Result {
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	if total == 0 {
		return nil
	}
	out := make([]Result, 0, total)
	for _, b := range bufs {
		out = append(out, b...)
	}
	return out
}

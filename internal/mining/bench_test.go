package mining

import (
	"fmt"
	"testing"

	"sigfim/internal/dataset"
	"sigfim/internal/stats"
)

// Ablation benchmarks for the mining engine: the algorithm choices DESIGN.md
// calls out (tid-list vs bitset Eclat, Apriori vs FP-Growth, hash path vs
// DFS at low thresholds, counting vs materializing).

// benchDataset builds a power-law dataset with planted pairs: 800 items,
// 20000 transactions, mean length ~8.
func benchDataset(b *testing.B) *dataset.Dataset {
	b.Helper()
	r := stats.NewRNG(99)
	z := stats.FitPowerLaw(800, 1e-4, 0.25, 8)
	freqs := z.Frequencies()
	const t = 20000
	tx := make([][]uint32, t)
	for item, f := range freqs {
		s := stats.NewSkipSampler(t, f, r)
		for {
			pos, ok := s.Next()
			if !ok {
				break
			}
			tx[pos] = append(tx[pos], uint32(item))
		}
	}
	return dataset.MustNew(800, tx)
}

// sparseDataset is short-transaction data where the hash path wins.
func sparseDataset(b *testing.B) *dataset.Dataset {
	b.Helper()
	r := stats.NewRNG(7)
	const t = 30000
	tx := make([][]uint32, t)
	for i := range tx {
		ln := 1 + stats.Poisson{Lambda: 2.0}.Sample(r)
		seen := map[int]bool{}
		for j := 0; j < ln; j++ {
			it := r.Intn(400)
			if !seen[it] {
				seen[it] = true
				tx[i] = append(tx[i], uint32(it))
			}
		}
	}
	return dataset.MustNew(400, tx)
}

func BenchmarkEclatTidListK2(b *testing.B) {
	v := benchDataset(b).Vertical()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EclatKTidList(v, 2, 200)
	}
}

func BenchmarkEclatBitsetK2(b *testing.B) {
	v := benchDataset(b).Vertical()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EclatKBitset(v, 2, 200)
	}
}

func BenchmarkAprioriK2(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AprioriK(d, 2, 200)
	}
}

func BenchmarkFPGrowthK2(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FPGrowthK(d, 2, 200)
	}
}

func BenchmarkEclatTidListK3(b *testing.B) {
	v := benchDataset(b).Vertical()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EclatKTidList(v, 3, 60)
	}
}

func BenchmarkEclatBitsetK3(b *testing.B) {
	v := benchDataset(b).Vertical()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EclatKBitset(v, 3, 60)
	}
}

// Low-threshold regime: the VisitK dispatcher should pick the hash path and
// beat raw Eclat by a wide margin.
func BenchmarkLowThresholdHashPath(b *testing.B) {
	v := sparseDataset(b).Vertical()
	if !useHashPath(v, 3, 1) {
		b.Fatal("expected hash path to be selected")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		VisitK(v, 3, 1, func(Itemset, int) { n++ })
	}
}

func BenchmarkLowThresholdEclat(b *testing.B) {
	v := sparseDataset(b).Vertical()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		eclatKTidList(v, 3, 1, nil, func(Itemset, int) { n++ })
	}
}

// Parallel-engine scaling on the dense synthetic profile. On multi-core
// hardware workers=4 should be >= 2x workers=1; on a single-core runner the
// sub-benchmarks collapse to roughly equal times (the engine adds only
// buffer-merge overhead).
func BenchmarkEclatParallel(b *testing.B) {
	v := benchDataset(b).Vertical()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				EclatKTidListParallel(v, 3, 60, w)
			}
		})
	}
}

func BenchmarkEclatBitsetParallel(b *testing.B) {
	v := benchDataset(b).Vertical()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				EclatKBitsetParallel(v, 3, 60, w)
			}
		})
	}
}

// BenchmarkFPGrowthParallel measures the sharded conditional-tree miner next
// to the Eclat scaling benchmarks: the serial global-tree build is a fixed
// cost, so the per-worker speedup ceiling is set by the mining fraction
// (Amdahl) and by header-item skew.
func BenchmarkFPGrowthParallel(b *testing.B) {
	d := benchDataset(b)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				FPGrowthKParallel(d, 3, 60, w)
			}
		})
	}
}

func BenchmarkCountKParallel(b *testing.B) {
	v := benchDataset(b).Vertical()
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				CountKParallel(v, 2, 50, w)
			}
		})
	}
}

func BenchmarkCountVsMaterialize(b *testing.B) {
	v := benchDataset(b).Vertical()
	b.Run("CountK", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			CountK(v, 2, 50)
		}
	})
	b.Run("MineK", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MineK(v, 2, 50)
		}
	})
}

func BenchmarkSupportHistogram(b *testing.B) {
	v := benchDataset(b).Vertical()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SupportHistogram(v, 2, 50)
	}
}

func BenchmarkClosedEnumeration(b *testing.B) {
	v := benchDataset(b).Vertical()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		VisitClosed(v, 400, func(Itemset, int) bool { n++; return true })
	}
}

package mining

// ItemsetTable is a string-free set of fixed-size itemsets: an open-addressing
// hash table keyed by the packed [k]uint32 item tuple, with the tuples stored
// in one flat insertion-ordered array. It replaces the map[string]T +
// Itemset.Key() pattern on hot paths — the Monte Carlo collection index, the
// hash-mining counter, and Apriori's downward-closure set — where a
// heap-allocated string key per itemset per replicate dominated GC pressure.
//
// Entry ids are dense and assigned in insertion order, so iteration over
// [0, Len()) is deterministic; callers keep per-entry payloads in parallel
// slices indexed by id.
type ItemsetTable struct {
	k     int
	data  []uint32 // flat tuples, k words per entry; entry id = position/k
	slots []int32  // open addressing, -1 = empty, else entry id
	n     int
}

// NewItemsetTable returns a table for itemsets of exactly k items, sized for
// about capHint entries (0 picks a small default).
func NewItemsetTable(k, capHint int) *ItemsetTable {
	t := &ItemsetTable{}
	t.Reset(k)
	if capHint > 0 {
		t.grow(tableSizeFor(capHint))
		t.data = make([]uint32, 0, capHint*k)
	}
	return t
}

// tableSizeFor returns the power-of-two slot count holding n entries below
// the 2/3 load ceiling.
func tableSizeFor(n int) int {
	size := 16
	for size*2 < n*3 {
		size *= 2
	}
	return size
}

// Reset empties the table and sets the itemset size to k, keeping the backing
// storage for reuse.
func (t *ItemsetTable) Reset(k int) {
	if k < 1 {
		panic("mining: ItemsetTable requires k >= 1")
	}
	t.k = k
	t.data = t.data[:0]
	t.n = 0
	if t.slots == nil {
		t.slots = make([]int32, 16)
	}
	for i := range t.slots {
		t.slots[i] = -1
	}
}

// K returns the itemset size.
func (t *ItemsetTable) K() int { return t.k }

// Len returns the number of distinct itemsets stored.
func (t *ItemsetTable) Len() int { return t.n }

// Items returns the stored tuple of entry id (a view into the flat storage;
// do not modify, invalidated by the next Insert growth or Reset).
func (t *ItemsetTable) Items(id int) []uint32 {
	return t.data[id*t.k : (id+1)*t.k]
}

// hashItems mixes the k item words; the multiply-xorshift step is the
// splitmix64 finalizer, strong enough that linear probing stays short.
func hashItems(items []uint32) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range items {
		h ^= uint64(v)
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 31
	}
	return h
}

func (t *ItemsetTable) equalAt(id int32, items []uint32) bool {
	e := t.data[int(id)*t.k:]
	for i, v := range items {
		if e[i] != v {
			return false
		}
	}
	return true
}

// Lookup returns the entry id of the tuple, or -1 when absent. len(items)
// must equal K.
func (t *ItemsetTable) Lookup(items []uint32) int {
	mask := uint64(len(t.slots) - 1)
	for idx := hashItems(items) & mask; ; idx = (idx + 1) & mask {
		id := t.slots[idx]
		if id < 0 {
			return -1
		}
		if t.equalAt(id, items) {
			return int(id)
		}
	}
}

// Insert adds the tuple if absent and returns its entry id plus whether it
// was newly added. The tuple is copied into the flat storage.
func (t *ItemsetTable) Insert(items []uint32) (id int, added bool) {
	if t.n*3 >= len(t.slots)*2 {
		t.grow(len(t.slots) * 2)
	}
	mask := uint64(len(t.slots) - 1)
	idx := hashItems(items) & mask
	for {
		s := t.slots[idx]
		if s < 0 {
			break
		}
		if t.equalAt(s, items) {
			return int(s), false
		}
		idx = (idx + 1) & mask
	}
	id = t.n
	t.slots[idx] = int32(id)
	t.data = append(t.data, items...)
	t.n++
	return id, true
}

// grow rehashes into a larger slot array; entry ids are stable.
func (t *ItemsetTable) grow(size int) {
	if size < len(t.slots) {
		size = len(t.slots)
	}
	if cap(t.slots) >= size {
		t.slots = t.slots[:size]
	} else {
		t.slots = make([]int32, size)
	}
	for i := range t.slots {
		t.slots[i] = -1
	}
	mask := uint64(size - 1)
	for id := 0; id < t.n; id++ {
		items := t.Items(id)
		idx := hashItems(items) & mask
		for t.slots[idx] >= 0 {
			idx = (idx + 1) & mask
		}
		t.slots[idx] = int32(id)
	}
}

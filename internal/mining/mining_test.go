package mining

import (
	"sort"
	"testing"
	"testing/quick"

	"sigfim/internal/bitset"
	"sigfim/internal/dataset"
	"sigfim/internal/stats"
)

// bruteMineK enumerates all k-subsets of the item universe and counts
// supports by scanning; the ground truth for the algorithm tests.
func bruteMineK(d *dataset.Dataset, k, minSupport int) []Result {
	n := d.NumItems()
	var out []Result
	idx := make([]int, k)
	var rec func(pos, start int)
	rec = func(pos, start int) {
		if pos == k {
			items := make(Itemset, k)
			for i, v := range idx {
				items[i] = uint32(v)
			}
			sup := d.Support(items)
			if sup >= minSupport {
				out = append(out, Result{Items: items, Support: sup})
			}
			return
		}
		for i := start; i < n; i++ {
			idx[pos] = i
			rec(pos+1, i+1)
		}
	}
	if k >= 1 && k <= n {
		rec(0, 0)
	}
	return out
}

// randomDataset builds a small random dataset for property tests.
func randomDataset(r *stats.RNG, maxItems, maxT int) *dataset.Dataset {
	n := 2 + r.Intn(maxItems-1)
	t := 1 + r.Intn(maxT)
	tx := make([][]uint32, t)
	p := 0.1 + 0.5*r.Float64()
	for i := range tx {
		for it := 0; it < n; it++ {
			if r.Bernoulli(p) {
				tx[i] = append(tx[i], uint32(it))
			}
		}
	}
	return dataset.MustNew(n, tx)
}

func resultsEqual(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	sortByItems(a)
	sortByItems(b)
	for i := range a {
		if !a[i].Items.Equal(b[i].Items) || a[i].Support != b[i].Support {
			return false
		}
	}
	return true
}

func TestAllAlgorithmsAgreeWithBruteForce(t *testing.T) {
	r := stats.NewRNG(2025)
	for trial := 0; trial < 40; trial++ {
		d := randomDataset(r, 9, 40)
		v := d.Vertical()
		for k := 1; k <= 4; k++ {
			for _, minSup := range []int{1, 2, 5} {
				want := bruteMineK(d, k, minSup)
				algos := map[string][]Result{
					"eclat-tids": EclatKTidList(v, k, minSup),
					"eclat-bits": EclatKBitset(v, k, minSup),
					"apriori":    AprioriK(d, k, minSup),
					"fpgrowth":   FPGrowthK(d, k, minSup),
				}
				for name, got := range algos {
					if !resultsEqual(got, append([]Result(nil), want...)) {
						t.Fatalf("trial %d %s k=%d minSup=%d: got %d results, want %d",
							trial, name, k, minSup, len(got), len(want))
					}
				}
			}
		}
	}
}

func TestAllSizesAgree(t *testing.T) {
	r := stats.NewRNG(77)
	for trial := 0; trial < 20; trial++ {
		d := randomDataset(r, 8, 30)
		v := d.Vertical()
		for _, minSup := range []int{1, 3} {
			eclat := EclatAll(v, minSup, 0)
			apriori := AprioriAll(d, minSup, 0)
			fp := FPGrowthAll(d, minSup, 0)
			if !resultsEqual(eclat, apriori) {
				t.Fatalf("trial %d minSup=%d: eclat %d vs apriori %d results",
					trial, minSup, len(eclat), len(apriori))
			}
			if !resultsEqual(eclat, fp) {
				t.Fatalf("trial %d minSup=%d: eclat %d vs fpgrowth %d results",
					trial, minSup, len(eclat), len(fp))
			}
		}
	}
}

func TestMaxLenCap(t *testing.T) {
	r := stats.NewRNG(31)
	d := randomDataset(r, 8, 30)
	v := d.Vertical()
	for _, maxLen := range []int{1, 2, 3} {
		for _, rs := range [][]Result{
			EclatAll(v, 2, maxLen),
			AprioriAll(d, 2, maxLen),
			FPGrowthAll(d, 2, maxLen),
		} {
			for _, res := range rs {
				if len(res.Items) > maxLen {
					t.Fatalf("maxLen=%d violated by %v", maxLen, res.Items)
				}
			}
		}
	}
}

func TestMineFacade(t *testing.T) {
	r := stats.NewRNG(99)
	d := randomDataset(r, 8, 40)
	want := bruteMineK(d, 2, 3)
	for _, algo := range []Algorithm{Auto, EclatTids, EclatBits, Apriori, FPGrowth} {
		got, err := Mine(d, Options{K: 2, MinSupport: 3, Algorithm: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if !resultsEqual(got, append([]Result(nil), want...)) {
			t.Fatalf("%v disagrees with brute force", algo)
		}
	}
	if _, err := Mine(d, Options{K: 2, MinSupport: 0}); err == nil {
		t.Error("MinSupport 0 accepted")
	}
	if _, err := Mine(d, Options{K: -1, MinSupport: 1}); err == nil {
		t.Error("negative K accepted")
	}
	if _, err := Mine(d, Options{K: 1, MinSupport: 1, Algorithm: Algorithm(99)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	// Vertical facade with horizontal algorithms round-trips.
	got, err := MineVertical(d.Vertical(), Options{K: 2, MinSupport: 3, Algorithm: FPGrowth})
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(got, append([]Result(nil), want...)) {
		t.Fatal("MineVertical(FPGrowth) disagrees")
	}
}

func TestCountKMatchesMine(t *testing.T) {
	r := stats.NewRNG(123)
	for trial := 0; trial < 20; trial++ {
		d := randomDataset(r, 9, 40)
		v := d.Vertical()
		for k := 1; k <= 3; k++ {
			for _, s := range []int{1, 2, 4} {
				if got, want := CountK(v, k, s), int64(len(EclatKTidList(v, k, s))); got != want {
					t.Fatalf("CountK(k=%d,s=%d) = %d, want %d", k, s, got, want)
				}
			}
		}
	}
}

func TestSupportHistogram(t *testing.T) {
	r := stats.NewRNG(321)
	d := randomDataset(r, 8, 50)
	v := d.Vertical()
	k, minSup := 2, 1
	hist := SupportHistogram(v, k, minSup)
	// Q from histogram must match direct counting at every threshold.
	q := CumulativeQ(hist)
	for s := minSup; s < len(hist); s++ {
		want := CountK(v, k, s)
		if got := QFromHistogram(hist, s); got != want {
			t.Fatalf("QFromHistogram(%d) = %d, want %d", s, got, want)
		}
		if q[s] != want {
			t.Fatalf("CumulativeQ[%d] = %d, want %d", s, q[s], want)
		}
	}
	if got := QFromHistogram(hist, -5); got != QFromHistogram(hist, 0) {
		t.Error("negative threshold should clamp to 0")
	}
}

func TestTopSupports(t *testing.T) {
	d := dataset.MustNew(4, [][]uint32{
		{0, 1}, {0, 1}, {0, 1}, {0, 2}, {1, 2}, {2, 3},
	})
	v := d.Vertical()
	top := TopSupports(v, 2, 1, 3)
	if len(top) != 3 || top[0] != 3 {
		t.Fatalf("TopSupports = %v", top)
	}
	if !sort.SliceIsSorted(top, func(i, j int) bool { return top[i] > top[j] }) {
		t.Fatalf("TopSupports not descending: %v", top)
	}
}

func TestMineKWithTids(t *testing.T) {
	d := dataset.MustNew(3, [][]uint32{
		{0, 1, 2}, {0, 1}, {1, 2}, {0, 1, 2},
	})
	v := d.Vertical()
	got := map[string]int{}
	MineKWithTids(v, 2, 2, func(items Itemset, tids bitset.TidList) {
		got[items.Key()] = len(tids)
		// Tids must actually be the supporting transactions.
		for _, tid := range tids {
			for _, it := range items {
				found := false
				for _, x := range d.Transaction(int(tid)) {
					if x == it {
						found = true
					}
				}
				if !found {
					t.Fatalf("tid %d does not contain item %d", tid, it)
				}
			}
		}
	})
	want := map[string]int{
		NewItemset(0, 1).Key(): 3,
		NewItemset(0, 2).Key(): 2,
		NewItemset(1, 2).Key(): 3,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d itemsets, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("support mismatch for %v: %d vs %d", KeyToItemset(k), got[k], v)
		}
	}
}

func TestItemsetOps(t *testing.T) {
	s := NewItemset(3, 1, 2, 1)
	if !s.Equal(Itemset{1, 2, 3}) {
		t.Fatalf("NewItemset = %v", s)
	}
	if !s.Contains(2) || s.Contains(4) {
		t.Error("Contains")
	}
	if !(Itemset{1, 3}).SubsetOf(s) || (Itemset{1, 4}).SubsetOf(s) {
		t.Error("SubsetOf")
	}
	if !s.Intersects(Itemset{3, 9}) || s.Intersects(Itemset{4, 9}) {
		t.Error("Intersects")
	}
	u := (Itemset{1, 3}).Union(Itemset{2, 3, 5})
	if !u.Equal(Itemset{1, 2, 3, 5}) {
		t.Fatalf("Union = %v", u)
	}
	if got := KeyToItemset(s.Key()); !got.Equal(s) {
		t.Fatalf("Key round trip = %v", got)
	}
}

func TestItemsetKeyRoundTripProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		s := NewItemset(raw...)
		return KeyToItemset(s.Key()).Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortResultsDeterministic(t *testing.T) {
	rs := []Result{
		{Items: Itemset{2}, Support: 5},
		{Items: Itemset{1}, Support: 5},
		{Items: Itemset{0}, Support: 7},
		{Items: Itemset{1, 2}, Support: 5},
	}
	SortResults(rs)
	if rs[0].Support != 7 || !rs[1].Items.Equal(Itemset{1}) || !rs[2].Items.Equal(Itemset{1, 2}) {
		t.Fatalf("SortResults order = %v", rs)
	}
}

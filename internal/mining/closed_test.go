package mining

import (
	"testing"

	"sigfim/internal/dataset"
	"sigfim/internal/stats"
)

// bruteClosed derives closed itemsets from all frequent itemsets: keep those
// with no strict superset of equal support.
func bruteClosed(d *dataset.Dataset, minSupport int) []Result {
	v := d.Vertical()
	all := EclatAll(v, minSupport, 0)
	var out []Result
	for _, r := range all {
		closed := true
		for _, o := range all {
			if len(o.Items) > len(r.Items) && o.Support == r.Support && r.Items.SubsetOf(o.Items) {
				closed = false
				break
			}
		}
		if closed {
			out = append(out, r)
		}
	}
	SortResults(out)
	return out
}

func TestClosureBasics(t *testing.T) {
	// item 0 and 1 always co-occur; 2 sometimes joins.
	d := dataset.MustNew(3, [][]uint32{
		{0, 1}, {0, 1}, {0, 1, 2},
	})
	v := d.Vertical()
	c := Closure(v, Itemset{0})
	if !c.Equal(Itemset{0, 1}) {
		t.Fatalf("Closure({0}) = %v", c)
	}
	if IsClosed(v, Itemset{0}) {
		t.Error("{0} should not be closed")
	}
	if !IsClosed(v, Itemset{0, 1}) {
		t.Error("{0,1} should be closed")
	}
	if !IsClosed(v, Itemset{0, 1, 2}) {
		t.Error("{0,1,2} should be closed")
	}
}

func TestClosedAllAgainstBrute(t *testing.T) {
	r := stats.NewRNG(555)
	for trial := 0; trial < 30; trial++ {
		d := randomDataset(r, 8, 25)
		for _, minSup := range []int{1, 2, 4} {
			want := bruteClosed(d, minSup)
			got := ClosedAll(d.Vertical(), minSup)
			if !resultsEqual(got, want) {
				t.Fatalf("trial %d minSup=%d: ClosedAll %d vs brute %d",
					trial, minSup, len(got), len(want))
			}
		}
	}
}

func TestClosedCountNeverExceedsFrequent(t *testing.T) {
	r := stats.NewRNG(556)
	for trial := 0; trial < 10; trial++ {
		d := randomDataset(r, 8, 25)
		v := d.Vertical()
		all := EclatAll(v, 2, 0)
		closed := ClosedAll(v, 2)
		if len(closed) > len(all) {
			t.Fatalf("more closed than frequent: %d > %d", len(closed), len(all))
		}
		// Every frequent itemset must have a closed superset of equal support.
		for _, fr := range all {
			found := false
			for _, cl := range closed {
				if cl.Support == fr.Support && fr.Items.SubsetOf(cl.Items) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("frequent %v (sup %d) has no closed cover", fr.Items, fr.Support)
			}
		}
	}
}

func TestVisitClosedEarlyStop(t *testing.T) {
	d := dataset.MustNew(4, [][]uint32{
		{0}, {1}, {2}, {3}, {0, 1}, {2, 3},
	})
	calls := 0
	VisitClosed(d.Vertical(), 1, func(Itemset, int) bool {
		calls++
		return calls < 2
	})
	if calls != 2 {
		t.Fatalf("early stop made %d calls", calls)
	}
}

func TestLargeClosedBlockIsCheap(t *testing.T) {
	// A planted 40-item block at support 5 has 2^40 frequent subsets but only
	// a handful of closed sets; direct closed enumeration must stay tiny.
	const blockSize = 40
	tx := make([][]uint32, 0, 25)
	block := make([]uint32, blockSize)
	for i := range block {
		block[i] = uint32(i)
	}
	for i := 0; i < 5; i++ {
		tx = append(tx, block)
	}
	for i := 0; i < 20; i++ {
		tx = append(tx, []uint32{uint32(blockSize + i%3)})
	}
	d := dataset.MustNew(blockSize+3, tx)
	v := d.Vertical()
	closed := ClosedAll(v, 2)
	if len(closed) > 10 {
		t.Fatalf("expected few closed sets, got %d", len(closed))
	}
	best, sup := MaxClosedCardinality(v, 2)
	if len(best) != blockSize || sup != 5 {
		t.Fatalf("MaxClosedCardinality = %d items at support %d", len(best), sup)
	}
}

func TestMaxClosedCardinalityEmpty(t *testing.T) {
	d := dataset.MustNew(2, [][]uint32{{}, {}})
	best, sup := MaxClosedCardinality(d.Vertical(), 1)
	if len(best) != 0 || sup != 0 {
		t.Fatalf("expected none, got %v at %d", best, sup)
	}
}

func TestFilterClosed(t *testing.T) {
	d := dataset.MustNew(3, [][]uint32{{0, 1}, {0, 1}, {0, 1, 2}})
	v := d.Vertical()
	rs := []Result{
		{Items: Itemset{0}, Support: 3},
		{Items: Itemset{0, 1}, Support: 3},
	}
	got := FilterClosed(v, rs)
	if len(got) != 1 || !got[0].Items.Equal(Itemset{0, 1}) {
		t.Fatalf("FilterClosed = %v", got)
	}
}

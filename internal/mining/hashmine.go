package mining

import (
	"sigfim/internal/dataset"
)

// Low-threshold mining path. Eclat's pruning collapses when minSupport is a
// handful of transactions: with threshold 1 every item is "frequent" and the
// DFS probes every candidate extension even though almost all have empty
// intersections. For sparse datasets (short transactions) the k-itemsets
// with support >= 1 are exactly the k-subsets occurring inside transactions,
// so enumerating each transaction's C(len, k) subsets into a hash table is
// dramatically cheaper. The dispatcher VisitK estimates that enumeration
// cost from the transaction length histogram and picks the faster strategy.

// subsetBudget caps the per-transaction enumeration volume (and with it the
// hash table size) before falling back to Eclat.
const subsetBudget = 3_000_000

// hashPathMaxSupport bounds the thresholds for which the hash path is even
// considered; at higher thresholds Eclat's pruning works fine.
const hashPathMaxSupport = 8

// transactionLengths recovers the per-transaction lengths from the vertical
// layout in O(total occurrences).
func transactionLengths(v *dataset.Vertical) []int {
	lens := make([]int, v.NumTransactions)
	for _, l := range v.Tids {
		for _, tid := range l {
			lens[tid]++
		}
	}
	return lens
}

// subsetEnumerationCost returns sum over transactions of C(len, k), capped
// at limit+1 once it exceeds the limit.
func subsetEnumerationCost(lens []int, k int, limit int64) int64 {
	var total int64
	for _, n := range lens {
		if n < k {
			continue
		}
		// C(n, k) with overflow care for the small k we use (k <= ~8).
		c := int64(1)
		for i := 0; i < k; i++ {
			c = c * int64(n-i) / int64(i+1)
			if c > limit {
				return limit + 1
			}
		}
		total += c
		if total > limit {
			return limit + 1
		}
	}
	return total
}

// useHashPath decides whether transaction-subset enumeration beats Eclat.
func useHashPath(v *dataset.Vertical, k, minSupport int) bool {
	if k < 2 || minSupport > hashPathMaxSupport {
		return false
	}
	lens := transactionLengths(v)
	return subsetEnumerationCost(lens, k, subsetBudget) <= subsetBudget
}

// hashMineK enumerates every k-subset of every transaction, counts them in a
// hash table, and emits those reaching minSupport. emit receives a scratch
// itemset valid only during the call.
func hashMineK(v *dataset.Vertical, k, minSupport int, emit func(Itemset, int)) {
	// Rebuild horizontal transactions from the vertical layout.
	lens := transactionLengths(v)
	tx := make([][]uint32, v.NumTransactions)
	for tid, n := range lens {
		if n >= k {
			tx[tid] = make([]uint32, 0, n)
		}
	}
	for item, l := range v.Tids {
		for _, tid := range l {
			if tx[tid] != nil {
				tx[tid] = append(tx[tid], uint32(item))
			}
		}
	}
	counts := make(map[string]int32)
	idx := make(Itemset, k)
	key := make([]byte, 4*k)
	for _, tr := range tx {
		if len(tr) < k {
			continue
		}
		var rec func(pos, start int)
		rec = func(pos, start int) {
			if pos == k {
				for i, it := range idx {
					key[4*i] = byte(it)
					key[4*i+1] = byte(it >> 8)
					key[4*i+2] = byte(it >> 16)
					key[4*i+3] = byte(it >> 24)
				}
				counts[string(key)]++
				return
			}
			for i := start; i <= len(tr)-(k-pos); i++ {
				idx[pos] = tr[i]
				rec(pos+1, i+1)
			}
		}
		rec(0, 0)
	}
	for kk, c := range counts {
		if int(c) >= minSupport {
			emit(KeyToItemset(kk), int(c))
		}
	}
}

// VisitK streams every k-itemset with support >= minSupport to emit,
// choosing between Eclat DFS and transaction-subset enumeration by cost.
// The itemset slice passed to emit is only valid during the call.
func VisitK(v *dataset.Vertical, k, minSupport int, emit func(items Itemset, support int)) {
	if k < 1 || minSupport < 1 {
		panic("mining: VisitK requires k >= 1 and minSupport >= 1")
	}
	if k == 1 {
		for it, l := range v.Tids {
			if len(l) >= minSupport {
				emit(Itemset{uint32(it)}, len(l))
			}
		}
		return
	}
	if useHashPath(v, k, minSupport) {
		hashMineK(v, k, minSupport, emit)
		return
	}
	eclatKTidList(v, k, minSupport, emit)
}

// MineK mines size-k itemsets with the automatic strategy choice,
// materializing the results.
func MineK(v *dataset.Vertical, k, minSupport int) []Result {
	var out []Result
	VisitK(v, k, minSupport, func(items Itemset, sup int) {
		out = append(out, Result{Items: items.Clone(), Support: sup})
	})
	return out
}

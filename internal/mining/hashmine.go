package mining

import (
	"sigfim/internal/dataset"
)

// Low-threshold mining path. Eclat's pruning collapses when minSupport is a
// handful of transactions: with threshold 1 every item is "frequent" and the
// DFS probes every candidate extension even though almost all have empty
// intersections. For sparse datasets (short transactions) the k-itemsets
// with support >= 1 are exactly the k-subsets occurring inside transactions,
// so enumerating each transaction's C(len, k) subsets into a hash table is
// dramatically cheaper. The dispatcher VisitK estimates that enumeration
// cost from the transaction length histogram and picks the faster strategy.
//
// The counting table is a string-free ItemsetTable (open addressing over the
// packed item tuples) with a parallel count array, both pooled in the
// Scratch; emission replays the table in insertion order, which is
// deterministic (first-occurrence order over the transaction scan), unlike
// the Go map iteration the original implementation leaned on.

// subsetBudget caps the per-transaction enumeration volume (and with it the
// hash table size) before falling back to Eclat.
const subsetBudget = 3_000_000

// hashPathMaxSupport bounds the thresholds for which the hash path is even
// considered; at higher thresholds Eclat's pruning works fine.
const hashPathMaxSupport = 8

// transactionLengths recovers the per-transaction lengths from the vertical
// layout in O(total occurrences).
func transactionLengths(v *dataset.Vertical) []int {
	return transactionLengthsInto(make([]int, v.NumTransactions), v)
}

// transactionLengthsInto is transactionLengths into a caller-sized buffer
// (len must be v.NumTransactions; contents are overwritten).
func transactionLengthsInto(lens []int, v *dataset.Vertical) []int {
	for i := range lens {
		lens[i] = 0
	}
	for _, l := range v.Tids {
		for _, tid := range l {
			lens[tid]++
		}
	}
	return lens
}

// scratchLengths returns the pooled transaction-length buffer.
func (s *Scratch) scratchLengths(v *dataset.Vertical) []int {
	if cap(s.lens) < v.NumTransactions {
		s.lens = make([]int, v.NumTransactions)
	}
	s.lens = s.lens[:v.NumTransactions]
	return transactionLengthsInto(s.lens, v)
}

// subsetEnumerationCost returns sum over transactions of C(len, k), capped
// at limit+1 once it exceeds the limit.
func subsetEnumerationCost(lens []int, k int, limit int64) int64 {
	var total int64
	for _, n := range lens {
		if n < k {
			continue
		}
		// C(n, k) with overflow care for the small k we use (k <= ~8).
		c := int64(1)
		for i := 0; i < k; i++ {
			c = c * int64(n-i) / int64(i+1)
			if c > limit {
				return limit + 1
			}
		}
		total += c
		if total > limit {
			return limit + 1
		}
	}
	return total
}

// useHashPath decides whether transaction-subset enumeration beats Eclat.
func useHashPath(v *dataset.Vertical, k, minSupport int) bool {
	if k < 2 || minSupport > hashPathMaxSupport {
		return false
	}
	lens := transactionLengths(v)
	return useHashPathLens(lens, k, minSupport)
}

// useHashPathLens is useHashPath against precomputed transaction lengths.
func useHashPathLens(lens []int, k, minSupport int) bool {
	if k < 2 || minSupport > hashPathMaxSupport {
		return false
	}
	return subsetEnumerationCost(lens, k, subsetBudget) <= subsetBudget
}

// hashMineK enumerates every k-subset of every transaction, counts them in
// the scratch's ItemsetTable, and emits those reaching minSupport in table
// insertion order. emit receives a scratch itemset valid only during the
// call.
func hashMineK(v *dataset.Vertical, k, minSupport int, s *Scratch, emit func(Itemset, int)) {
	// Rebuild horizontal transactions from the vertical layout, packed into
	// the pooled conversion target (transactions shorter than k are still
	// materialized there; they are skipped below).
	d := s.horizontal(v)
	if s.table == nil {
		s.table = NewItemsetTable(k, 0)
	} else {
		s.table.Reset(k)
	}
	counts := s.counts[:0]
	s.ensureDepth(k)
	idx := s.prefix[:k]
	for _, tr := range d.Transactions() {
		if len(tr) < k {
			continue
		}
		var rec func(pos, start int)
		rec = func(pos, start int) {
			if pos == k {
				id, added := s.table.Insert(idx)
				if added {
					counts = append(counts, 0)
				}
				counts[id]++
				return
			}
			for i := start; i <= len(tr)-(k-pos); i++ {
				idx[pos] = tr[i]
				rec(pos+1, i+1)
			}
		}
		rec(0, 0)
	}
	s.counts = counts
	for id := 0; id < s.table.Len(); id++ {
		if int(counts[id]) >= minSupport {
			emit(Itemset(s.table.Items(id)), int(counts[id]))
		}
	}
}

// VisitK streams every k-itemset with support >= minSupport to emit,
// choosing between Eclat DFS and transaction-subset enumeration by cost.
// The itemset slice passed to emit is only valid during the call.
func VisitK(v *dataset.Vertical, k, minSupport int, emit func(items Itemset, support int)) {
	visitK(v, k, minSupport, nil, emit)
}

// visitK is VisitK with a threaded Scratch (nil allowed).
func visitK(v *dataset.Vertical, k, minSupport int, s *Scratch, emit func(items Itemset, support int)) {
	if k < 1 || minSupport < 1 {
		panic("mining: VisitK requires k >= 1 and minSupport >= 1")
	}
	if k == 1 {
		for it, l := range v.Tids {
			if len(l) >= minSupport {
				emit(Itemset{uint32(it)}, len(l))
			}
		}
		return
	}
	s = ensureScratch(s)
	if minSupport <= hashPathMaxSupport {
		if useHashPathLens(s.scratchLengths(v), k, minSupport) {
			hashMineK(v, k, minSupport, s, emit)
			return
		}
	}
	eclatKTidList(v, k, minSupport, s, emit)
}

// MineK mines size-k itemsets with the automatic strategy choice,
// materializing the results.
func MineK(v *dataset.Vertical, k, minSupport int) []Result {
	var out []Result
	VisitK(v, k, minSupport, func(items Itemset, sup int) {
		out = append(out, Result{Items: items.Clone(), Support: sup})
	})
	return out
}

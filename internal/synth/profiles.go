// Package synth synthesizes benchmark datasets mirroring the six FIMI
// benchmarks of the paper's Table 1 (Retail, Kosarak, Bms1, Bms2, Bmspos,
// Pumsb*). The originals are not redistributable here, but the significance
// methodology interacts with a dataset only through (a) its item frequency
// vector, (b) its transaction count, and (c) the observed counts Q_{k,s} —
// which exceed the null exactly where items are correlated. Each profile
// therefore provides:
//
//   - a truncated power-law item frequency vector fitted to the published
//     (n, m, fmin, fmax) so the null model — and hence ŝ_min and every
//     lambda — matches the published scale;
//   - a "real" variant that additionally plants correlated item blocks
//     calibrated so Procedure 2 reproduces the qualitative Table 3 pattern
//     (which (dataset, k) pairs admit a finite s*, and roughly how large the
//     significant family is);
//   - a "random" variant with no planting: exactly the null model, used for
//     Table 2 and the Table 4 robustness runs.
//
// Scale(f) divides the transaction count by f (block sizes are fractions of
// t, so the planted structure survives scaling); full-size runs reproduce
// the published magnitudes, scaled runs keep CI and laptop budgets honest.
package synth

import (
	"fmt"
	"sort"

	"sigfim/internal/bitset"
	"sigfim/internal/dataset"
	"sigfim/internal/randmodel"
	"sigfim/internal/stats"
)

// Block plants correlated structure: Repeat disjoint item blocks of the
// given Size, anchored at frequency ranks RankStart, RankStart+RankStride,
// ..., each forced to co-occur fully in CountFrac*T extra transactions.
type Block struct {
	Size       int
	Repeat     int
	RankStart  int
	RankStride int
	// CountFrac is the planted joint support as a fraction of T, so the
	// structure scales with the dataset.
	CountFrac float64
}

// Spec is a synthetic benchmark profile.
type Spec struct {
	// Name labels the profile ("Retail", ...).
	Name string
	// N is the item universe size, T the transaction count.
	N, T int
	// FMin, FMax bound item frequencies; MeanLen is the target mean
	// transaction length (equivalently the frequency sum).
	FMin, FMax, MeanLen float64
	// HeadCount/HeadFreq optionally prepend a flat plateau: the HeadCount
	// most frequent items all get frequency HeadFreq, with the power-law
	// tail fitted to the remaining mean length. A dense near-equal head is
	// what makes itemsets individually MARGINAL (a few sigma) rather than
	// individually extreme — the regime where Procedure 2's collective test
	// beats per-itemset corrections (the paper's Table 5 ratios >> 1).
	HeadCount int
	HeadFreq  float64
	// Blocks is the planted correlation layer of the "real" variant.
	Blocks []Block
}

// Scale returns a copy with the transaction count divided by factor
// (minimum 1). Frequencies, universe size, and fractional block supports
// are unchanged, so thresholds shrink roughly linearly while the qualitative
// significance pattern is preserved.
func (s Spec) Scale(factor int) Spec {
	if factor <= 1 {
		return s
	}
	out := s
	out.T = s.T / factor
	if out.T < 1 {
		out.T = 1
	}
	out.Name = fmt.Sprintf("%s/%d", s.Name, factor)
	return out
}

// Frequencies returns the fitted frequency vector, descending: an optional
// flat head plateau followed by a truncated power-law tail.
func (s Spec) Frequencies() []float64 {
	if s.HeadCount <= 0 {
		return stats.FitPowerLaw(s.N, s.FMin, s.FMax, s.MeanLen).Frequencies()
	}
	head := s.HeadCount
	if head > s.N {
		head = s.N
	}
	out := make([]float64, 0, s.N)
	for i := 0; i < head; i++ {
		out = append(out, s.HeadFreq)
	}
	rest := s.N - head
	if rest > 0 {
		tailLen := s.MeanLen - float64(head)*s.HeadFreq
		if tailLen < 0 {
			tailLen = 0
		}
		tailMax := s.HeadFreq
		out = append(out, stats.FitPowerLaw(rest, s.FMin, tailMax, tailLen).Frequencies()...)
	}
	return out
}

// NullModel returns the independence model for the profile — the random
// counterpart used in Tables 2 and 4.
func (s Spec) NullModel() randmodel.IndependentModel {
	return randmodel.IndependentModel{T: s.T, Freqs: s.Frequencies()}
}

// GenerateNull draws a pure random dataset (no planted structure).
func (s Spec) GenerateNull(seed uint64) *dataset.Vertical {
	return s.NullModel().Generate(stats.NewRNG(seed))
}

// GenerateReal draws the "real" variant: a null draw plus the planted
// blocks. The returned dataset's measured profile differs slightly from the
// null (planting raises the involved items' frequencies), exactly as a real
// correlated dataset would.
func (s Spec) GenerateReal(seed uint64) *dataset.Vertical {
	r := stats.NewRNG(seed)
	v := s.NullModel().Generate(r.Split())
	for _, b := range s.Blocks {
		plantBlock(v, b, r.Split())
	}
	return v
}

// plantBlock adds each repeated block's joint occurrences to the dataset.
func plantBlock(v *dataset.Vertical, b Block, r *stats.RNG) {
	count := int(b.CountFrac * float64(v.NumTransactions))
	if count < 1 || b.Size < 1 {
		return
	}
	if count > v.NumTransactions {
		count = v.NumTransactions
	}
	for rep := 0; rep < b.Repeat || (b.Repeat == 0 && rep == 0); rep++ {
		start := b.RankStart + rep*b.RankStride
		if start+b.Size > v.NumItems() {
			break
		}
		// Joint transactions for this block.
		tids := stats.SampleKOfN(count, v.NumTransactions, r)
		sorted := make(bitset.TidList, len(tids))
		for i, t := range tids {
			sorted[i] = uint32(t)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for item := start; item < start+b.Size; item++ {
			v.Tids[item] = unionTids(v.Tids[item], sorted)
		}
	}
}

// unionTids merges two sorted tid lists without duplicates.
func unionTids(a, b bitset.TidList) bitset.TidList {
	out := make(bitset.TidList, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

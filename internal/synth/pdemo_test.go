package synth

import (
	"testing"

	"sigfim/internal/core"
)

func TestPowerDemoExhibitsRatioAboveOne(t *testing.T) {
	spec := PowerDemo()
	v := spec.GenerateReal(3)
	a, err := core.Analyze(spec.Name, v, 2, core.Options{Delta: 150, Seed: 11, RunProcedure1: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("found=%v s*=%d Q=%d lambda=%g |R|=%d r=%g",
		a.Proc2.Found, a.Proc2.SStar, a.Proc2.Q, a.Proc2.Lambda, a.Proc1.FamilySize, a.PowerRatio())
	if !a.Proc2.Found {
		t.Fatal("PowerDemo: Procedure 2 found nothing")
	}
	if r := a.PowerRatio(); r <= 1.5 && a.Proc1.FamilySize > 0 {
		t.Errorf("PowerDemo ratio r = %v, want >> 1", r)
	}
}

package synth

// The six benchmark profiles of the paper's Table 1, with planted
// correlation layers calibrated to reproduce the qualitative Table 3
// pattern. MeanLen is the NULL layer's frequency sum; the planted blocks add
// their own occurrence mass on top, budgeted so that the generated "real"
// variant's measured mean transaction length lands on the published m of
// Table 1. The calibration logic, per profile:
//
//   - ŝ_min falls steeply with k (Table 2), so a block of j >= 4 items whose
//     planted joint support sits between ŝ_min(k=4) and ŝ_min(k=3) is
//     invisible at k = 2, 3 but significant at k = 4 — the Retail/Kosarak
//     pattern (finite s* only at k = 4 with a handful of discoveries).
//   - The Bms profiles live at tiny absolute supports (ŝ_min of a few
//     units for k >= 3); many small planted pairs plus one large block make
//     every k significant with family sizes exploding combinatorially —
//     including a Bms1 block of 154 items at support ≈ 8, the closed
//     itemset the paper highlights (C(154,4) ≈ 23M significant 4-itemsets).
//   - Bmspos plants size-3 and size-8 blocks between the k = 3 and k = 2
//     thresholds: k = 2 stays infinite, k = 3 and 4 go finite.
//   - Pumsb* is dense (mean length 50.5, fmax 0.79); blocks among the top
//     frequency ranks at ~0.6 T joint support make every k significant, with
//     counts growing in k as C(block, k) does.
var benchmarks = []Spec{
	{
		Name: "Retail", N: 16470, T: 88162,
		FMin: 1.13e-05, FMax: 0.57, MeanLen: 10.2,
		Blocks: []Block{
			// Six 4-item blocks at ~1.2% of t: above ŝ_min(k=4) ≈ 0.9% of
			// t, far below ŝ_min(k=2) ≈ 10% of t; Table 3 reports Q = 6.
			{Size: 4, Repeat: 6, RankStart: 60, RankStride: 200, CountFrac: 0.0125},
		},
	},
	{
		Name: "Kosarak", N: 41270, T: 990002,
		FMin: 1.01e-06, FMax: 0.61, MeanLen: 7.8,
		Blocks: []Block{
			// Three 4-item blocks at ~2.2% of t (ŝ_min(k=4) ≈ 2% of t,
			// ŝ_min(k=3) ≈ 10% of t).
			{Size: 4, Repeat: 3, RankStart: 80, RankStride: 300, CountFrac: 0.022},
		},
	},
	{
		Name: "Bms1", N: 497, T: 59602,
		FMin: 1.68e-05, FMax: 0.06, MeanLen: 1.95,
		Blocks: []Block{
			// ~50 planted pairs just above ŝ_min(k=2) ≈ 0.45% of t.
			{Size: 2, Repeat: 50, RankStart: 170, RankStride: 2, CountFrac: 0.0050},
			// A mid-size block feeding the k=3 regime.
			{Size: 24, Repeat: 1, RankStart: 230, RankStride: 0, CountFrac: 0.00060},
			// The 154-item closed block at low support (the paper's Bms1
			// diagnostic): C(154,4) ≈ 23M significant 4-itemsets. Anchored
			// at the TOP frequency ranks so its 4-subsets' Binomial
			// p-values span marginal to tiny — Procedure 2 flags them all
			// collectively while Benjamini-Yekutieli rejects only the deep
			// tail, reproducing the paper's Table 5 power ratio r >> 1.
			{Size: 154, Repeat: 1, RankStart: 2, RankStride: 0, CountFrac: 0.00025},
		},
	},
	{
		Name: "Bms2", N: 3340, T: 77512,
		FMin: 1.29e-05, FMax: 0.05, MeanLen: 5.2,
		Blocks: []Block{
			{Size: 2, Repeat: 60, RankStart: 700, RankStride: 6, CountFrac: 0.0033},
			{Size: 40, Repeat: 1, RankStart: 600, RankStride: 0, CountFrac: 0.00050},
			{Size: 90, Repeat: 1, RankStart: 5, RankStride: 0, CountFrac: 0.00019},
		},
	},
	{
		Name: "Bmspos", N: 1657, T: 515597,
		FMin: 1.94e-06, FMax: 0.60, MeanLen: 5.8,
		Blocks: []Block{
			// Size-3 blocks at ~5.5% of t: above ŝ_min(k=3), below
			// ŝ_min(k=2) ≈ 15-20% of t at every scale.
			{Size: 3, Repeat: 7, RankStart: 40, RankStride: 30, CountFrac: 0.055},
			// Size-8 blocks feeding k=4 (C(8,4) = 70 each).
			{Size: 8, Repeat: 6, RankStart: 300, RankStride: 40, CountFrac: 0.011},
		},
	},
	{
		Name: "Pumsb*", N: 2088, T: 49046,
		FMin: 2.04e-05, FMax: 0.79, MeanLen: 37.5,
		Blocks: []Block{
			// Dense data: blocks of MID-frequency items (planting among the
			// top items would inflate their marginals until the null model
			// absorbs the signal) forced to co-occur in ~60% of
			// transactions — above the natural top-pair support (~0.55 t),
			// squarely in the rare-event region. C(8,2)+C(14,2) pairs,
			// C(8,3)+C(14,3) triples, ... track the paper's Table 3 counts.
			{Size: 8, Repeat: 1, RankStart: 40, RankStride: 0, CountFrac: 0.62},
			{Size: 14, Repeat: 1, RankStart: 60, RankStride: 0, CountFrac: 0.58},
		},
	},
}

// Profiles returns the six benchmark profiles at full published scale.
func Profiles() []Spec {
	out := make([]Spec, len(benchmarks))
	copy(out, benchmarks)
	return out
}

// ByName looks up a profile by its Table 1 name (case-sensitive); the extra
// PowerDemo profile is also addressable.
func ByName(name string) (Spec, bool) {
	for _, s := range benchmarks {
		if s.Name == name {
			return s, true
		}
	}
	if name == "PowerDemo" {
		return PowerDemo(), true
	}
	return Spec{}, false
}

// Names lists the profile names in Table 1 order.
func Names() []string {
	out := make([]string, len(benchmarks))
	for i, s := range benchmarks {
		out[i] = s.Name
	}
	return out
}

// RecommendedScale returns a per-profile scale divisor balancing fidelity
// and runtime: the big clickstream datasets (Kosarak, Bmspos) shrink hard,
// while the low-support Bms profiles keep enough transactions that their
// planted blocks stay above the (scaled) Poisson thresholds.
func RecommendedScale(name string) int {
	switch name {
	case "Kosarak", "Bmspos":
		return 32
	case "Retail", "Pumsb*":
		return 8
	default: // Bms1, Bms2
		return 4
	}
}

// PowerDemo is a seventh, non-Table-1 profile engineered to exhibit the
// paper's Table 5 phenomenon (power ratio r >> 1) cleanly. Twenty items
// share a flat 5% frequency plateau, so pairs among them have natural
// expected support ~50 out of t = 20000; forty of those pairs receive a
// modest +0.15% t joint boost — about 3-4 sigma each. Individually every
// boosted pair is statistically unremarkable (Binomial p-values around
// 1e-2..1e-5, far above the Benjamini-Yekutieli step-up line over
// C(n,2) hypotheses), so Procedure 1 flags almost none of them; but forty
// pairs landing above the Poisson threshold together is impossible under
// the null, so Procedure 2 flags the whole family.
func PowerDemo() Spec {
	return Spec{
		Name: "PowerDemo", N: 200, T: 20000,
		FMin: 1e-4, FMax: 0.05, MeanLen: 1.6,
		HeadCount: 20, HeadFreq: 0.05,
		Blocks: []Block{
			{Size: 2, Repeat: 40, RankStart: 0, RankStride: 1, CountFrac: 0.0017},
		},
	}
}

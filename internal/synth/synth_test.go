package synth

import (
	"math"
	"testing"

	"sigfim/internal/dataset"
)

func TestProfilesMatchTable1(t *testing.T) {
	// The fitted frequency vectors must reproduce the published n, frequency
	// range, and mean transaction length.
	for _, spec := range Profiles() {
		freqs := spec.Frequencies()
		if len(freqs) != spec.N {
			t.Fatalf("%s: %d items, want %d", spec.Name, len(freqs), spec.N)
		}
		sum, fmin, fmax := 0.0, math.Inf(1), 0.0
		for _, f := range freqs {
			sum += f
			if f < fmin {
				fmin = f
			}
			if f > fmax {
				fmax = f
			}
		}
		if math.Abs(sum-spec.MeanLen) > 0.05*spec.MeanLen {
			t.Errorf("%s: mean length %v, want %v", spec.Name, sum, spec.MeanLen)
		}
		if fmax > spec.FMax*1.0001 || fmax < spec.FMax*0.8 {
			t.Errorf("%s: fmax %v, want ~%v", spec.Name, fmax, spec.FMax)
		}
		if fmin < spec.FMin*0.9999 {
			t.Errorf("%s: fmin %v below clamp %v", spec.Name, fmin, spec.FMin)
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("expected 6 profiles, got %d", len(names))
	}
	for _, n := range names {
		if _, ok := ByName(n); !ok {
			t.Errorf("ByName(%q) failed", n)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName of unknown name succeeded")
	}
}

func TestScale(t *testing.T) {
	spec, _ := ByName("Retail")
	s := spec.Scale(8)
	if s.T != spec.T/8 {
		t.Errorf("scaled T = %d", s.T)
	}
	if s.N != spec.N {
		t.Errorf("scale changed N")
	}
	if spec.Scale(1).T != spec.T || spec.Scale(0).T != spec.T {
		t.Error("identity scales changed T")
	}
	if s.Name == spec.Name {
		t.Error("scaled name should differ")
	}
}

func TestGenerateNullMatchesProfile(t *testing.T) {
	spec, _ := ByName("Bms1")
	spec = spec.Scale(16)
	v := spec.GenerateNull(7)
	if v.NumTransactions != spec.T || v.NumItems() != spec.N {
		t.Fatalf("dims %d,%d", v.NumTransactions, v.NumItems())
	}
	p := dataset.ExtractVertical("x", v)
	if got := p.AvgTransactionLen(); math.Abs(got-spec.MeanLen) > 0.25*spec.MeanLen {
		t.Errorf("generated mean length %v, want ~%v", got, spec.MeanLen)
	}
}

func TestGenerateRealPlantsBlocks(t *testing.T) {
	spec := Spec{
		Name: "toy", N: 100, T: 2000,
		FMin: 0.001, FMax: 0.1, MeanLen: 2,
		Blocks: []Block{
			{Size: 3, Repeat: 2, RankStart: 10, RankStride: 20, CountFrac: 0.05},
		},
	}
	v := spec.GenerateReal(3)
	// Each planted block must have joint support >= the planted count.
	count := int(0.05 * 2000)
	for rep := 0; rep < 2; rep++ {
		start := 10 + rep*20
		block := []uint32{uint32(start), uint32(start + 1), uint32(start + 2)}
		if got := v.Support(block); got < count {
			t.Errorf("block %d support %d < planted %d", rep, got, count)
		}
	}
	// The null twin must NOT contain such joint structure.
	nullV := spec.GenerateNull(3)
	block := []uint32{10, 11, 12}
	if got := nullV.Support(block); got >= count/2 {
		t.Errorf("null dataset has block support %d", got)
	}
}

func TestGenerateRealDeterministic(t *testing.T) {
	spec, _ := ByName("Bms2")
	spec = spec.Scale(32)
	a := spec.GenerateReal(11)
	b := spec.GenerateReal(11)
	for it := range a.Tids {
		if len(a.Tids[it]) != len(b.Tids[it]) {
			t.Fatal("same seed, different real datasets")
		}
	}
	c := spec.GenerateReal(12)
	diff := false
	for it := range a.Tids {
		if len(a.Tids[it]) != len(c.Tids[it]) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical support vectors (suspicious)")
	}
}

func TestPlantBlockBounds(t *testing.T) {
	// Blocks that overflow the universe or have degenerate sizes must be
	// no-ops rather than panics.
	spec := Spec{
		Name: "edge", N: 10, T: 100,
		FMin: 0.01, FMax: 0.2, MeanLen: 1,
		Blocks: []Block{
			{Size: 20, Repeat: 1, RankStart: 0, CountFrac: 0.1}, // too wide
			{Size: 2, Repeat: 1, RankStart: 9, CountFrac: 0.1},  // overflows
			{Size: 2, Repeat: 1, RankStart: 0, CountFrac: 0},    // zero count
			{Size: 2, Repeat: 1, RankStart: 0, CountFrac: 2.0},  // clamped to t
			{Size: 0, Repeat: 1, RankStart: 0, CountFrac: 0.5},  // no items
		},
	}
	v := spec.GenerateReal(5)
	if v.NumItems() != 10 {
		t.Fatal("universe changed")
	}
	// CountFrac 2.0 clamps to every transaction.
	if got := v.Support([]uint32{0, 1}); got != 100 {
		t.Errorf("clamped block support = %d, want 100", got)
	}
	// Tid lists must remain strictly increasing (valid vertical layout).
	if _, err := dataset.NewVertical(v.NumTransactions, v.Tids); err != nil {
		t.Fatalf("planting corrupted the layout: %v", err)
	}
}

func TestUnionTids(t *testing.T) {
	a := []uint32{1, 3, 5}
	b := []uint32{2, 3, 6}
	got := unionTids(a, b)
	want := []uint32{1, 2, 3, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("union = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("union = %v, want %v", got, want)
		}
	}
}

// Published Table 1 mean transaction lengths; the generated "real" variant
// (null layer + planted blocks) must land near them.
var publishedMeanLen = map[string]float64{
	"Retail": 10.3, "Kosarak": 8.1, "Bms1": 2.5,
	"Bms2": 5.6, "Bmspos": 7.5, "Pumsb*": 50.5,
}

func TestRealVariantMatchesPublishedMeanLen(t *testing.T) {
	for _, spec := range Profiles() {
		scaled := spec.Scale(RecommendedScale(spec.Name))
		v := scaled.GenerateReal(99)
		p := dataset.ExtractVertical(spec.Name, v)
		want := publishedMeanLen[spec.Name]
		if got := p.AvgTransactionLen(); math.Abs(got-want) > 0.15*want {
			t.Errorf("%s: real variant mean length %.2f, published %.2f",
				spec.Name, got, want)
		}
	}
}

func TestRecommendedScale(t *testing.T) {
	for _, name := range Names() {
		if RecommendedScale(name) < 1 {
			t.Errorf("%s: bad recommended scale", name)
		}
	}
	if RecommendedScale("Kosarak") <= RecommendedScale("Bms1") {
		t.Error("big datasets should scale harder than small ones")
	}
}

// Package rules derives association rules from frequent itemsets and
// attaches exact significance measures. Frequent itemset mining exists to
// serve rule mining (the paper's opening motivation); this package closes
// the loop: classical confidence/lift generation in the style of Agrawal et
// al., plus the statistically sound layer — an exact Binomial p-value per
// rule (the null: consequent independent of antecedent) and
// Benjamini-Yekutieli selection with bounded FDR, following the program of
// the paper's Section 1.4 references [13, 17].
package rules

import (
	"fmt"
	"sort"

	"sigfim/internal/dataset"
	"sigfim/internal/mht"
	"sigfim/internal/mining"
	"sigfim/internal/stats"
)

// Rule is an association rule Antecedent => Consequent.
type Rule struct {
	Antecedent mining.Itemset
	Consequent mining.Itemset
	// Support is the number of transactions containing Antecedent ∪
	// Consequent.
	Support int
	// AntecedentSupport is the number of transactions containing the
	// antecedent alone.
	AntecedentSupport int
	// Confidence is Support / AntecedentSupport.
	Confidence float64
	// Lift is Confidence divided by the consequent's overall frequency;
	// values above 1 indicate positive association.
	Lift float64
	// PValue is Pr(Bin(AntecedentSupport, f_C) >= Support): the probability
	// of observing this many joint occurrences if the consequent were
	// independent of the antecedent, with f_C the consequent's observed
	// frequency.
	PValue float64
	// FisherP is the one-sided Fisher exact p-value conditioning on both
	// margins (antecedent and consequent supports fixed); the classical
	// 2x2-table alternative to the Binomial model.
	FisherP float64
}

// Options configures rule generation.
type Options struct {
	// MinSupport is the absolute support threshold for the joint itemset.
	MinSupport int
	// MinConfidence filters rules below this confidence (0 keeps all).
	MinConfidence float64
	// MaxLen caps the joint itemset size (0 = 4; rule counts explode
	// combinatorially beyond that).
	MaxLen int
}

// Generate mines frequent itemsets and expands every frequent itemset of
// size >= 2 into candidate rules (each non-empty proper subset as
// antecedent). Rules are returned sorted by ascending p-value.
func Generate(v *dataset.Vertical, opts Options) ([]Rule, error) {
	if opts.MinSupport < 1 {
		return nil, fmt.Errorf("rules: MinSupport must be >= 1, got %d", opts.MinSupport)
	}
	maxLen := opts.MaxLen
	if maxLen == 0 {
		maxLen = 4
	}
	if maxLen < 2 {
		return nil, fmt.Errorf("rules: MaxLen must be >= 2, got %d", maxLen)
	}
	frequent := mining.EclatAll(v, opts.MinSupport, maxLen)
	supportOf := make(map[string]int, len(frequent))
	for _, r := range frequent {
		supportOf[r.Items.Key()] = r.Support
	}
	t := v.NumTransactions
	freqs := v.Frequencies()
	consFreq := func(c mining.Itemset) float64 {
		f := 1.0
		for _, it := range c {
			f *= freqs[it]
		}
		return f
	}
	supportLookup := func(items mining.Itemset) int {
		if sup, ok := supportOf[items.Key()]; ok {
			return sup
		}
		return v.Support(items)
	}

	var out []Rule
	for _, r := range frequent {
		if len(r.Items) < 2 {
			continue
		}
		visitProperSubsets(r.Items, func(ant, cons mining.Itemset) {
			antSup := supportLookup(ant)
			conf := float64(r.Support) / float64(antSup)
			if conf < opts.MinConfidence {
				return
			}
			fC := consFreq(cons)
			lift := 0.0
			if fC > 0 {
				lift = conf / fC
			}
			p := stats.Binomial{N: antSup, P: fC}.UpperTail(r.Support)
			consSup := supportLookup(cons)
			out = append(out, Rule{
				Antecedent:        ant.Clone(),
				Consequent:        cons.Clone(),
				Support:           r.Support,
				AntecedentSupport: antSup,
				Confidence:        conf,
				Lift:              lift,
				PValue:            p,
				FisherP:           stats.FisherExactUpper(t, antSup, consSup, r.Support),
			})
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PValue != out[j].PValue {
			return out[i].PValue < out[j].PValue
		}
		return out[i].Support > out[j].Support
	})
	return out, nil
}

// visitProperSubsets enumerates every non-empty proper subset of items as an
// antecedent, with the complement as consequent.
func visitProperSubsets(items mining.Itemset, fn func(ant, cons mining.Itemset)) {
	n := len(items)
	// Bitmask enumeration; n is small (<= MaxLen).
	for mask := 1; mask < (1<<uint(n))-1; mask++ {
		var ant, cons mining.Itemset
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				ant = append(ant, items[i])
			} else {
				cons = append(cons, items[i])
			}
		}
		fn(ant, cons)
	}
}

// SelectSignificant applies Benjamini-Yekutieli at level beta over the rule
// p-values, optionally against a larger total hypothesis count mTotal
// (<= 0 uses the number of candidate rules). Returned rules preserve the
// input order restricted to the selected ones; FDR among them is at most
// beta.
func SelectSignificant(rs []Rule, beta float64, mTotal float64) []Rule {
	if len(rs) == 0 {
		return nil
	}
	pvals := make([]float64, len(rs))
	for i, r := range rs {
		pvals[i] = r.PValue
	}
	reject := mht.BenjaminiYekutieli(pvals, beta, mTotal)
	var out []Rule
	for i, rej := range reject {
		if rej {
			out = append(out, rs[i])
		}
	}
	return out
}

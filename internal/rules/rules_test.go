package rules

import (
	"math"
	"testing"

	"sigfim/internal/dataset"
	"sigfim/internal/mining"
	"sigfim/internal/randmodel"
	"sigfim/internal/stats"
)

func toy() *dataset.Vertical {
	// 0 and 1 co-occur strongly; 2 is independent noise.
	tx := [][]uint32{
		{0, 1}, {0, 1}, {0, 1}, {0, 1, 2}, {0, 1},
		{0, 2}, {1}, {2}, {0, 1}, {0, 1},
	}
	return dataset.MustNew(3, tx).Vertical()
}

func TestGenerateBasics(t *testing.T) {
	rs, err := Generate(toy(), Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no rules")
	}
	var r01 *Rule
	for i := range rs {
		r := &rs[i]
		// Confidence and lift must be internally consistent.
		wantConf := float64(r.Support) / float64(r.AntecedentSupport)
		if math.Abs(r.Confidence-wantConf) > 1e-12 {
			t.Fatalf("confidence mismatch: %+v", r)
		}
		if r.Antecedent.Equal(mining.Itemset{0}) && r.Consequent.Equal(mining.Itemset{1}) {
			r01 = r
		}
	}
	if r01 == nil {
		t.Fatal("rule {0}=>{1} missing")
	}
	// supp({0,1}) = 7, supp({0}) = 8, f_1 = 8/10.
	if r01.Support != 7 || r01.AntecedentSupport != 8 {
		t.Fatalf("rule {0}=>{1}: %+v", r01)
	}
	if math.Abs(r01.Lift-(7.0/8)/(8.0/10)) > 1e-12 {
		t.Fatalf("lift = %v", r01.Lift)
	}
	wantP := stats.Binomial{N: 8, P: 0.8}.UpperTail(7)
	if math.Abs(r01.PValue-wantP) > 1e-12 {
		t.Fatalf("p-value = %v, want %v", r01.PValue, wantP)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(toy(), Options{MinSupport: 0}); err == nil {
		t.Error("MinSupport 0 accepted")
	}
	if _, err := Generate(toy(), Options{MinSupport: 1, MaxLen: 1}); err == nil {
		t.Error("MaxLen 1 accepted")
	}
}

func TestMinConfidenceFilter(t *testing.T) {
	all, _ := Generate(toy(), Options{MinSupport: 2})
	strict, _ := Generate(toy(), Options{MinSupport: 2, MinConfidence: 0.9})
	if len(strict) >= len(all) {
		t.Fatalf("confidence filter did nothing: %d vs %d", len(strict), len(all))
	}
	for _, r := range strict {
		if r.Confidence < 0.9 {
			t.Fatalf("rule below confidence threshold: %+v", r)
		}
	}
}

func TestRuleCountMatchesSubsetCombinatorics(t *testing.T) {
	// With MinConfidence 0, every frequent itemset of size j yields
	// 2^j - 2 rules.
	v := toy()
	frequent := mining.EclatAll(v, 2, 3)
	want := 0
	for _, r := range frequent {
		if len(r.Items) >= 2 {
			want += (1 << uint(len(r.Items))) - 2
		}
	}
	rs, _ := Generate(v, Options{MinSupport: 2, MaxLen: 3})
	if len(rs) != want {
		t.Fatalf("rules = %d, want %d", len(rs), want)
	}
}

func TestSortedByPValue(t *testing.T) {
	rs, _ := Generate(toy(), Options{MinSupport: 2})
	for i := 1; i < len(rs); i++ {
		if rs[i].PValue < rs[i-1].PValue {
			t.Fatal("rules not sorted by p-value")
		}
	}
}

func TestSelectSignificantOnPlantedVsNull(t *testing.T) {
	// A planted pair must survive selection; pure-noise rules must not.
	r := stats.NewRNG(77)
	freqs := make([]float64, 20)
	for i := range freqs {
		freqs[i] = 0.1
	}
	m := randmodel.IndependentModel{T: 500, Freqs: freqs}
	v := m.Generate(r)
	// Plant {0,1} in 60 transactions.
	d := v.Horizontal()
	tx := make([][]uint32, d.NumTransactions())
	for i := range tx {
		tx[i] = append([]uint32(nil), d.Transaction(i)...)
	}
	for i := 0; i < 60; i++ {
		tx[i] = append(tx[i], 0, 1)
	}
	v = dataset.MustNew(20, tx).Vertical()

	rs, err := Generate(v, Options{MinSupport: 5, MaxLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	sig := SelectSignificant(rs, 0.05, 0)
	foundPlanted := false
	for _, rule := range sig {
		if rule.Antecedent.Equal(mining.Itemset{0}) && rule.Consequent.Equal(mining.Itemset{1}) {
			foundPlanted = true
		}
	}
	if !foundPlanted {
		t.Error("planted rule not selected")
	}
	// On the pure null, selection should return (almost) nothing.
	nullV := m.Generate(stats.NewRNG(78))
	nullRules, err := Generate(nullV, Options{MinSupport: 5, MaxLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	nullSig := SelectSignificant(nullRules, 0.05, 0)
	if len(nullSig) > 2 {
		t.Errorf("null data yielded %d significant rules", len(nullSig))
	}
}

func TestSelectSignificantEmpty(t *testing.T) {
	if got := SelectSignificant(nil, 0.05, 0); got != nil {
		t.Error("empty selection should be nil")
	}
}

func TestVisitProperSubsets(t *testing.T) {
	items := mining.Itemset{1, 2, 3}
	count := 0
	seen := map[string]bool{}
	visitProperSubsets(items, func(ant, cons mining.Itemset) {
		count++
		if len(ant) == 0 || len(cons) == 0 {
			t.Fatal("empty side")
		}
		if len(ant)+len(cons) != 3 {
			t.Fatal("sides do not partition")
		}
		key := ant.Key() + "|" + cons.Key()
		if seen[key] {
			t.Fatal("duplicate split")
		}
		seen[key] = true
	})
	if count != 6 { // 2^3 - 2
		t.Fatalf("splits = %d, want 6", count)
	}
}

func TestFisherPTracksBinomialP(t *testing.T) {
	// For rare consequents the Fisher exact and Binomial p-values agree to
	// leading order; both must flag the planted rule and stay in [0,1].
	rs, err := Generate(toy(), Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.FisherP < 0 || r.FisherP > 1 {
			t.Fatalf("FisherP out of range: %+v", r)
		}
	}
	// The strongly associated pair must be near the top under both measures.
	var bestFisher Rule
	first := true
	for _, r := range rs {
		if first || r.FisherP < bestFisher.FisherP {
			bestFisher = r
			first = false
		}
	}
	joint := bestFisher.Antecedent.Union(bestFisher.Consequent)
	if !joint.Equal(mining.Itemset{0, 1}) {
		t.Errorf("most Fisher-significant rule is %v => %v",
			bestFisher.Antecedent, bestFisher.Consequent)
	}
}

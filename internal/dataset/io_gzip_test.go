package dataset

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestReadFIMIGzip verifies the transparent gzip path against an in-memory
// fixture: the compressed stream must parse to exactly the same dataset as
// the plain text, and the sniffing must not disturb plain streams that
// merely start with digits.
func TestReadFIMIGzip(t *testing.T) {
	const text = "1 2 3\n7 23\n2 3\n\n5\n"
	plain, err := ReadFIMI(bytes.NewReader([]byte(text)))
	if err != nil {
		t.Fatal(err)
	}

	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write([]byte(text)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	zipped, err := ReadFIMI(bytes.NewReader(gz.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	if plain.NumItems() != zipped.NumItems() || plain.NumTransactions() != zipped.NumTransactions() {
		t.Fatalf("dims differ: plain %d items/%d tx, gzip %d items/%d tx",
			plain.NumItems(), plain.NumTransactions(), zipped.NumItems(), zipped.NumTransactions())
	}
	if !reflect.DeepEqual(plain.Transactions(), zipped.Transactions()) {
		t.Error("transactions differ between plain and gzip parse")
	}
}

// TestReadFIMIGzipFile covers the file path (ReadFIMIFile on a .gz) and the
// degenerate inputs the sniffer must pass through untouched.
func TestReadFIMIGzipFile(t *testing.T) {
	const text = "10 20\n30\n"
	path := filepath.Join(t.TempDir(), "mini.dat.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	if _, err := zw.Write([]byte(text)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := ReadFIMIFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTransactions() != 2 || d.NumItems() != 31 {
		t.Errorf("got %d tx over %d items, want 2 over 31", d.NumTransactions(), d.NumItems())
	}

	// Empty and single-byte streams must not trip the 2-byte peek.
	for _, tc := range []string{"", "7"} {
		d, err := ReadFIMI(bytes.NewReader([]byte(tc)))
		if err != nil {
			t.Errorf("input %q: %v", tc, err)
			continue
		}
		want := 0
		if tc != "" {
			want = 1
		}
		if d.NumTransactions() != want {
			t.Errorf("input %q: %d transactions, want %d", tc, d.NumTransactions(), want)
		}
	}

	// A truncated gzip stream (valid magic, garbage after) must error, not
	// parse as text.
	if _, err := ReadFIMI(bytes.NewReader([]byte{0x1f, 0x8b, 0x00})); err == nil {
		t.Error("truncated gzip stream parsed without error")
	}
}

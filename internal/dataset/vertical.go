package dataset

import (
	"fmt"
	"sort"

	"sigfim/internal/bitset"
)

// Vertical is the item-major layout: one sorted transaction-id list per item.
// The random dataset generator produces this layout directly (it places each
// item's occurrences independently), and the Eclat miner consumes it.
type Vertical struct {
	NumTransactions int
	Tids            []bitset.TidList
}

// NewVertical validates and wraps per-item tid lists. Lists must be strictly
// increasing with ids below numTransactions.
func NewVertical(numTransactions int, tids []bitset.TidList) (*Vertical, error) {
	for item, l := range tids {
		for i, tid := range l {
			if int(tid) >= numTransactions {
				return nil, fmt.Errorf("dataset: item %d has tid %d >= t=%d", item, tid, numTransactions)
			}
			if i > 0 && l[i-1] >= tid {
				return nil, fmt.Errorf("dataset: item %d tid list not strictly increasing at %d", item, i)
			}
		}
	}
	return &Vertical{NumTransactions: numTransactions, Tids: tids}, nil
}

// NumItems returns the item universe size.
func (v *Vertical) NumItems() int { return len(v.Tids) }

// Reuse reshapes v to numTransactions transactions over numItems items with
// every tid list empty, preserving the per-item backing arrays so generators
// can refill the columns without reallocating. The Monte Carlo replicate
// engine calls this once per replicate on a per-worker Vertical.
func (v *Vertical) Reuse(numTransactions, numItems int) {
	v.NumTransactions = numTransactions
	if cap(v.Tids) < numItems {
		tids := make([]bitset.TidList, numItems)
		copy(tids, v.Tids)
		v.Tids = tids
	} else {
		v.Tids = v.Tids[:numItems]
	}
	for i := range v.Tids {
		v.Tids[i] = v.Tids[i][:0]
	}
}

// ItemSupport returns n(i) for one item.
func (v *Vertical) ItemSupport(item uint32) int { return len(v.Tids[item]) }

// ItemSupports returns the support of every item.
func (v *Vertical) ItemSupports() []int {
	s := make([]int, len(v.Tids))
	for i, l := range v.Tids {
		s[i] = len(l)
	}
	return s
}

// Frequencies returns f_i = n(i)/t.
func (v *Vertical) Frequencies() []float64 {
	f := make([]float64, len(v.Tids))
	if v.NumTransactions == 0 {
		return f
	}
	t := float64(v.NumTransactions)
	for i, l := range v.Tids {
		f[i] = float64(len(l)) / t
	}
	return f
}

// MaxItemSupport returns the largest single-item support.
func (v *Vertical) MaxItemSupport() int {
	max := 0
	for _, l := range v.Tids {
		if len(l) > max {
			max = len(l)
		}
	}
	return max
}

// Support intersects the tid lists of the itemset's items, cheapest-first.
func (v *Vertical) Support(itemset []uint32) int {
	switch len(itemset) {
	case 0:
		return v.NumTransactions
	case 1:
		return len(v.Tids[itemset[0]])
	}
	// Intersect in increasing order of list length so intermediate results
	// shrink as fast as possible.
	order := append([]uint32(nil), itemset...)
	sort.Slice(order, func(a, b int) bool {
		return len(v.Tids[order[a]]) < len(v.Tids[order[b]])
	})
	if len(v.Tids[order[0]]) == 0 {
		return 0
	}
	if len(order) == 2 {
		return bitset.IntersectCount(v.Tids[order[0]], v.Tids[order[1]])
	}
	acc := bitset.Intersect(v.Tids[order[0]], v.Tids[order[1]])
	for _, it := range order[2:] {
		if len(acc) == 0 {
			return 0
		}
		acc = bitset.IntersectInto(acc, v.Tids[it])
	}
	return len(acc)
}

// TidListOf returns the transactions containing every item of the itemset.
func (v *Vertical) TidListOf(itemset []uint32) bitset.TidList {
	switch len(itemset) {
	case 0:
		all := make(bitset.TidList, v.NumTransactions)
		for i := range all {
			all[i] = uint32(i)
		}
		return all
	case 1:
		return append(bitset.TidList(nil), v.Tids[itemset[0]]...)
	}
	acc := append(bitset.TidList(nil), v.Tids[itemset[0]]...)
	for _, it := range itemset[1:] {
		acc = bitset.IntersectInto(acc, v.Tids[it])
	}
	return acc
}

// Horizontal converts back to transaction-major layout.
func (v *Vertical) Horizontal() *Dataset {
	d := &Dataset{}
	v.HorizontalInto(d)
	return d
}

// HorizontalInto rebuilds the transaction-major layout into d, reusing d's
// transaction headers, item arena, and support cache. Horizontal miners in
// the Monte Carlo replicate loop (Apriori, FP-Growth) convert every
// replicate; pooling the conversion target removes one full dataset copy of
// allocation per replicate. d must not be in use by a previous conversion.
func (v *Vertical) HorizontalInto(d *Dataset) {
	t := v.NumTransactions
	d.numItems = len(v.Tids)
	if cap(d.supports) < len(v.Tids) {
		d.supports = make([]int, len(v.Tids))
	} else {
		d.supports = d.supports[:len(v.Tids)]
	}
	total := 0
	for i, l := range v.Tids {
		d.supports[i] = len(l)
		total += len(l)
	}
	if cap(d.lens) < t {
		d.lens = make([]int, t)
	} else {
		d.lens = d.lens[:t]
		for i := range d.lens {
			d.lens[i] = 0
		}
	}
	for _, l := range v.Tids {
		for _, tid := range l {
			d.lens[tid]++
		}
	}
	if cap(d.arena) < total {
		d.arena = make([]uint32, total)
	} else {
		d.arena = d.arena[:total]
	}
	if cap(d.tx) < t {
		d.tx = make([][]uint32, t)
	} else {
		d.tx = d.tx[:t]
	}
	off := 0
	for tid := 0; tid < t; tid++ {
		d.tx[tid] = d.arena[off : off : off+d.lens[tid]]
		off += d.lens[tid]
	}
	// Visiting items in ascending order keeps each transaction sorted.
	for item, l := range v.Tids {
		for _, tid := range l {
			d.tx[tid] = append(d.tx[tid], uint32(item))
		}
	}
}

package dataset

import "sort"

// Profile captures everything the paper's methodology reads from a dataset:
// the item universe size n, the transaction count t, and the individual item
// frequencies f_i. The derived values (frequency range, mean transaction
// length) are the columns of the paper's Table 1.
type Profile struct {
	Name  string
	T     int       // number of transactions
	Freqs []float64 // per-item frequency, f_i = n(i)/t
}

// Extract measures a dataset's profile.
func Extract(name string, d *Dataset) Profile {
	return Profile{Name: name, T: d.NumTransactions(), Freqs: d.Frequencies()}
}

// ExtractVertical measures a vertical dataset's profile.
func ExtractVertical(name string, v *Vertical) Profile {
	return Profile{Name: name, T: v.NumTransactions, Freqs: v.Frequencies()}
}

// NumItems returns n.
func (p Profile) NumItems() int { return len(p.Freqs) }

// FreqRange returns the minimum and maximum item frequency, ignoring items
// that never occur (frequency zero), matching how Table 1 reports fmin.
func (p Profile) FreqRange() (fmin, fmax float64) {
	first := true
	for _, f := range p.Freqs {
		if f == 0 {
			continue
		}
		if first {
			fmin, fmax = f, f
			first = false
			continue
		}
		if f < fmin {
			fmin = f
		}
		if f > fmax {
			fmax = f
		}
	}
	return
}

// AvgTransactionLen returns m = sum of frequencies (expected transaction
// length under the independence model, exact mean for a real dataset).
func (p Profile) AvgTransactionLen() float64 {
	s := 0.0
	for _, f := range p.Freqs {
		s += f
	}
	return s
}

// TopFrequencies returns the k largest frequencies in descending order
// (fewer if the universe is smaller). Used to compute s-tilde, the largest
// expected k-itemset support, in Algorithm 1.
func (p Profile) TopFrequencies(k int) []float64 {
	fs := append([]float64(nil), p.Freqs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(fs)))
	if k > len(fs) {
		k = len(fs)
	}
	return fs[:k]
}

// MaxExpectedSupport returns t times the product of the k largest item
// frequencies: the largest expected support of any k-itemset under the
// independence null model (the paper's s-tilde).
func (p Profile) MaxExpectedSupport(k int) float64 {
	top := p.TopFrequencies(k)
	prod := float64(p.T)
	for _, f := range top {
		prod *= f
	}
	if len(top) < k {
		return 0
	}
	return prod
}

package dataset

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
)

// FIMI text format: one transaction per line, space-separated non-negative
// integer item ids, as used by the FIMI repository datasets the paper
// benchmarks on (Retail, Kosarak, Bms1, Bms2, Bmspos, Pumsb*). Readers accept
// arbitrary ids and remap is left to the caller via ReadFIMI's returned
// universe size (max id + 1). Gzip-compressed streams are detected by their
// 2-byte magic header and decompressed transparently, so the large public
// FIMI datasets can be used without unpacking.

// maybeGzip sniffs the gzip magic header (0x1f 0x8b) and, when present,
// interposes a decompressor. Streams shorter than two bytes (including empty
// ones) pass through untouched.
func maybeGzip(r io.Reader) (io.Reader, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(2)
	if err != nil || len(magic) < 2 || magic[0] != 0x1f || magic[1] != 0x8b {
		return br, nil
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, fmt.Errorf("dataset: gzip: %w", err)
	}
	return zr, nil
}

// ReadFIMI parses a FIMI-format stream, transparently decompressing gzip
// input. The item universe is [0, maxID+1).
func ReadFIMI(r io.Reader) (*Dataset, error) {
	plain, err := maybeGzip(r)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(plain)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	var tx [][]uint32
	maxID := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		var tr []uint32
		i := 0
		for i < len(line) {
			// Skip separators.
			for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
				i++
			}
			start := i
			for i < len(line) && line[i] >= '0' && line[i] <= '9' {
				i++
			}
			if i == start {
				if i < len(line) {
					return nil, fmt.Errorf("dataset: line %d: unexpected byte %q", lineNo, line[i])
				}
				break
			}
			v, err := strconv.Atoi(string(line[start:i]))
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: %v", lineNo, err)
			}
			if v > math.MaxUint32 {
				// Item ids are stored as uint32; silently wrapping would
				// alias distinct ids, so refuse the input instead.
				return nil, fmt.Errorf("dataset: line %d: item id %d overflows uint32", lineNo, v)
			}
			if v > maxID {
				maxID = v
			}
			tr = append(tr, uint32(v))
		}
		tx = append(tx, tr)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: scan: %w", err)
	}
	return New(maxID+1, tx)
}

// ReadFIMIFile opens and parses a FIMI file.
func ReadFIMIFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFIMI(f)
}

// WriteFIMI writes the dataset in FIMI format.
func WriteFIMI(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 16)
	for _, tr := range d.Transactions() {
		for j, it := range tr {
			if j > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			buf = strconv.AppendUint(buf[:0], uint64(it), 10)
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFIMIFile writes the dataset to a file in FIMI format.
func WriteFIMIFile(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteFIMI(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

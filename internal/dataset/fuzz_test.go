package dataset

import (
	"bytes"
	"compress/gzip"
	"testing"
)

// gzipped compresses b for gzip-path seeds; the fuzzer mutates the compressed
// bytes too, exercising truncated and corrupt deflate streams.
func gzipped(tb testing.TB, b []byte) []byte {
	tb.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(b); err != nil {
		tb.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadFIMI throws arbitrary byte streams at the FIMI reader and checks
// its full contract: it must never panic, every accepted dataset satisfies
// the Dataset invariants (sorted duplicate-free transactions inside the item
// universe), accepted input survives a WriteFIMI round trip unchanged, and
// gzip-compressing a plain stream never changes what is parsed — the 2-byte
// magic sniff must be the only thing deciding between the two paths.
func FuzzReadFIMI(f *testing.F) {
	seeds := [][]byte{
		[]byte(""),
		[]byte("\n"),
		[]byte("1 2 3\n4 5\n"),
		[]byte("0\n"),
		[]byte("7 7 7\n"),                // duplicates collapse
		[]byte("3 1 2\n"),                // unsorted input
		[]byte("  1\t2 \r\n"),            // separator soup
		[]byte("1 2 3"),                  // no trailing newline
		[]byte("1\n\n2\n"),               // empty transaction in the middle
		[]byte("4294967295\n"),           // max uint32: accepted
		[]byte("4294967296\n"),           // uint32 overflow: must error, not wrap
		[]byte("99999999999999999999\n"), // overflows int64 inside Atoi
		[]byte("1 x 2\n"),                // junk byte mid-line
		[]byte("-1\n"),                   // sign is not a digit
		[]byte{0x1f, 0x8b, '\n'},         // gzip magic, invalid gzip header
	}
	golden := []byte("1 2\n0 3 2\n\n1\n")
	seeds = append(seeds, golden, gzipped(f, golden))
	seeds = append(seeds, gzipped(f, golden)[:8]) // truncated gzip stream
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadFIMI(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are the bug
		}
		n := d.NumItems()
		for i, tr := range d.Transactions() {
			for j, it := range tr {
				if int(it) >= n {
					t.Fatalf("transaction %d holds item %d outside universe [0,%d)", i, it, n)
				}
				if j > 0 && tr[j-1] >= it {
					t.Fatalf("transaction %d is not strictly increasing: %v", i, tr)
				}
			}
		}

		// Round trip: writing what we parsed and re-reading it must
		// reproduce the dataset exactly.
		var buf bytes.Buffer
		if err := WriteFIMI(&buf, d); err != nil {
			t.Fatalf("WriteFIMI on accepted dataset: %v", err)
		}
		d2, err := ReadFIMI(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading WriteFIMI output: %v", err)
		}
		if d2.NumItems() != d.NumItems() || d2.NumTransactions() != d.NumTransactions() {
			t.Fatalf("round trip changed shape: %dx%d -> %dx%d",
				d.NumItems(), d.NumTransactions(), d2.NumItems(), d2.NumTransactions())
		}
		for i, tr := range d.Transactions() {
			tr2 := d2.Transactions()[i]
			if len(tr) != len(tr2) {
				t.Fatalf("round trip changed transaction %d: %v -> %v", i, tr, tr2)
			}
			for j := range tr {
				if tr[j] != tr2[j] {
					t.Fatalf("round trip changed transaction %d: %v -> %v", i, tr, tr2)
				}
			}
		}

		// Gzip transparency: unless the plain bytes already carry the gzip
		// magic (and were therefore decompressed above), compressing them
		// must parse to the identical dataset.
		if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
			return
		}
		dz, err := ReadFIMI(bytes.NewReader(gzipped(t, data)))
		if err != nil {
			t.Fatalf("gzip of accepted plain input rejected: %v", err)
		}
		if dz.NumItems() != d.NumItems() || dz.NumTransactions() != d.NumTransactions() {
			t.Fatalf("gzip path changed shape: %dx%d -> %dx%d",
				d.NumItems(), d.NumTransactions(), dz.NumItems(), dz.NumTransactions())
		}
		for i, tr := range d.Transactions() {
			trz := dz.Transactions()[i]
			if len(tr) != len(trz) {
				t.Fatalf("gzip path changed transaction %d: %v -> %v", i, tr, trz)
			}
			for j := range tr {
				if tr[j] != trz[j] {
					t.Fatalf("gzip path changed transaction %d: %v -> %v", i, tr, trz)
				}
			}
		}
	})
}

package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"sigfim/internal/bitset"
	"sigfim/internal/stats"
)

func small() *Dataset {
	// 5 items, 6 transactions.
	return MustNew(5, [][]uint32{
		{0, 1, 2},
		{0, 1},
		{2, 3},
		{0, 1, 2, 3, 4},
		{4},
		{},
	})
}

func TestBasicAccessors(t *testing.T) {
	d := small()
	if d.NumItems() != 5 || d.NumTransactions() != 6 {
		t.Fatalf("dims = %d,%d", d.NumItems(), d.NumTransactions())
	}
	wantSup := []int{3, 3, 3, 2, 2}
	got := d.ItemSupports()
	for i, w := range wantSup {
		if got[i] != w {
			t.Errorf("support[%d] = %d, want %d", i, got[i], w)
		}
	}
	f := d.Frequencies()
	if math.Abs(f[0]-0.5) > 1e-12 {
		t.Errorf("f[0] = %v", f[0])
	}
	if got := d.AvgTransactionLen(); math.Abs(got-13.0/6) > 1e-12 {
		t.Errorf("avg len = %v", got)
	}
	if d.MaxItemSupport() != 3 {
		t.Errorf("max support = %d", d.MaxItemSupport())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(2, [][]uint32{{0, 5}}); err == nil {
		t.Error("out-of-range item accepted")
	}
	if _, err := New(-1, nil); err == nil {
		t.Error("negative item count accepted")
	}
	// Duplicates and unsorted input are normalized.
	d := MustNew(3, [][]uint32{{2, 0, 2, 1, 0}})
	tr := d.Transaction(0)
	if len(tr) != 3 || tr[0] != 0 || tr[1] != 1 || tr[2] != 2 {
		t.Errorf("normalized transaction = %v", tr)
	}
}

func TestSupportBrute(t *testing.T) {
	d := small()
	cases := []struct {
		set  []uint32
		want int
	}{
		{[]uint32{}, 6},
		{[]uint32{0}, 3},
		{[]uint32{0, 1}, 3},
		{[]uint32{1, 0}, 3}, // order-insensitive
		{[]uint32{0, 1, 2}, 2},
		{[]uint32{2, 3}, 2},
		{[]uint32{0, 4}, 1},
		{[]uint32{3, 4}, 1},
		{[]uint32{0, 1, 2, 3, 4}, 1},
	}
	for _, c := range cases {
		if got := d.Support(c.set); got != c.want {
			t.Errorf("Support(%v) = %d, want %d", c.set, got, c.want)
		}
	}
}

func TestVerticalAgreesWithHorizontal(t *testing.T) {
	d := small()
	v := d.Vertical()
	if v.NumItems() != d.NumItems() || v.NumTransactions != d.NumTransactions() {
		t.Fatal("vertical dims mismatch")
	}
	sets := [][]uint32{{}, {0}, {0, 1}, {0, 1, 2}, {2, 3}, {0, 4}, {3, 4}, {0, 1, 2, 3, 4}, {1, 3}}
	for _, s := range sets {
		if hv, vv := d.Support(s), v.Support(s); hv != vv {
			t.Errorf("Support(%v): horizontal %d vs vertical %d", s, hv, vv)
		}
	}
}

func TestVerticalRoundTrip(t *testing.T) {
	d := small()
	rt := d.Vertical().Horizontal()
	if rt.NumItems() != d.NumItems() || rt.NumTransactions() != d.NumTransactions() {
		t.Fatal("round trip dims mismatch")
	}
	for i := 0; i < d.NumTransactions(); i++ {
		a, b := d.Transaction(i), rt.Transaction(i)
		if len(a) != len(b) {
			t.Fatalf("transaction %d length mismatch", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("transaction %d differs", i)
			}
		}
	}
}

func TestVerticalRandomRoundTripProperty(t *testing.T) {
	r := stats.NewRNG(404)
	f := func(seed uint16) bool {
		n := 1 + r.Intn(8)
		tcount := r.Intn(30)
		tx := make([][]uint32, tcount)
		for i := range tx {
			for it := 0; it < n; it++ {
				if r.Bernoulli(0.3) {
					tx[i] = append(tx[i], uint32(it))
				}
			}
		}
		d := MustNew(n, tx)
		rt := d.Vertical().Horizontal()
		for i := range tx {
			a, b := d.Transaction(i), rt.Transaction(i)
			if len(a) != len(b) {
				return false
			}
			for j := range a {
				if a[j] != b[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNewVerticalValidation(t *testing.T) {
	if _, err := NewVertical(3, []bitset.TidList{{0, 2, 1}}); err == nil {
		t.Error("non-increasing tid list accepted")
	}
	if _, err := NewVertical(3, []bitset.TidList{{0, 3}}); err == nil {
		t.Error("tid >= t accepted")
	}
	if _, err := NewVertical(3, []bitset.TidList{{0, 2}, {}}); err != nil {
		t.Errorf("valid vertical rejected: %v", err)
	}
}

func TestTidListOf(t *testing.T) {
	v := small().Vertical()
	got := v.TidListOf([]uint32{0, 1})
	want := bitset.TidList{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("TidListOf = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TidListOf = %v, want %v", got, want)
		}
	}
	if all := v.TidListOf(nil); len(all) != 6 {
		t.Fatalf("empty itemset tidlist = %v", all)
	}
}

func TestFIMIRoundTrip(t *testing.T) {
	d := small()
	var buf bytes.Buffer
	if err := WriteFIMI(&buf, d); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadFIMI(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rt.NumTransactions() != d.NumTransactions() {
		t.Fatalf("t = %d, want %d", rt.NumTransactions(), d.NumTransactions())
	}
	for i := 0; i < d.NumTransactions(); i++ {
		a, b := d.Transaction(i), rt.Transaction(i)
		if len(a) != len(b) {
			t.Fatalf("transaction %d mismatch: %v vs %v", i, a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("transaction %d mismatch: %v vs %v", i, a, b)
			}
		}
	}
}

func TestReadFIMIFormats(t *testing.T) {
	in := "1 2 3\n\n10   20\n7\n"
	d, err := ReadFIMI(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTransactions() != 4 {
		t.Fatalf("t = %d", d.NumTransactions())
	}
	if d.NumItems() != 21 {
		t.Fatalf("n = %d", d.NumItems())
	}
	if len(d.Transaction(1)) != 0 {
		t.Fatal("empty line should be empty transaction")
	}
	if _, err := ReadFIMI(strings.NewReader("1 x 2\n")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestProfile(t *testing.T) {
	d := small()
	p := Extract("small", d)
	if p.NumItems() != 5 || p.T != 6 {
		t.Fatalf("profile dims: %d items, t=%d", p.NumItems(), p.T)
	}
	fmin, fmax := p.FreqRange()
	if math.Abs(fmin-2.0/6) > 1e-12 || math.Abs(fmax-0.5) > 1e-12 {
		t.Errorf("freq range = [%v, %v]", fmin, fmax)
	}
	if got := p.AvgTransactionLen(); math.Abs(got-13.0/6) > 1e-12 {
		t.Errorf("avg len = %v", got)
	}
	top := p.TopFrequencies(2)
	if len(top) != 2 || top[0] != 0.5 || top[1] != 0.5 {
		t.Errorf("top2 = %v", top)
	}
	// s-tilde for k=2: t * f1 * f2 = 6 * 0.5 * 0.5 = 1.5.
	if got := p.MaxExpectedSupport(2); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("max expected support = %v", got)
	}
	pv := ExtractVertical("small", d.Vertical())
	if pv.T != p.T || pv.NumItems() != p.NumItems() {
		t.Error("vertical profile mismatch")
	}
}

func TestProfileIgnoresZeroFreqItems(t *testing.T) {
	d := MustNew(3, [][]uint32{{0}, {0}})
	p := Extract("z", d)
	fmin, fmax := p.FreqRange()
	if fmin != 1 || fmax != 1 {
		t.Errorf("zero-frequency items should be ignored: [%v, %v]", fmin, fmax)
	}
}

func TestMaxExpectedSupportTooFewItems(t *testing.T) {
	p := Profile{T: 100, Freqs: []float64{0.5}}
	if got := p.MaxExpectedSupport(2); got != 0 {
		t.Errorf("k beyond universe should give 0, got %v", got)
	}
}

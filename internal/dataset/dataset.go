// Package dataset implements transactional datasets: the horizontal
// (transaction-major) and vertical (item-major) physical layouts, FIMI text
// IO, and dataset profiles (the Table 1 parameters of the paper: number of
// items n, transaction count t, item frequency range, and mean transaction
// length m).
//
// Items are dense integer ids in [0, NumItems). Transactions are sorted,
// duplicate-free item slices.
package dataset

import (
	"fmt"
	"sort"

	"sigfim/internal/bitset"
)

// Dataset is a transactional dataset in horizontal layout. It is immutable
// through its exported API; HorizontalInto may rebuild one in place as a
// pooled conversion target.
type Dataset struct {
	numItems int
	tx       [][]uint32
	supports []int    // lazily computed item supports
	arena    []uint32 // flat item storage backing tx when built by HorizontalInto
	lens     []int    // per-transaction length scratch for HorizontalInto
}

// New builds a Dataset over numItems items from the given transactions.
// Each transaction is copied, sorted, and deduplicated; item ids must be in
// [0, numItems).
func New(numItems int, transactions [][]uint32) (*Dataset, error) {
	if numItems < 0 {
		return nil, fmt.Errorf("dataset: negative item count %d", numItems)
	}
	tx := make([][]uint32, len(transactions))
	for i, tr := range transactions {
		c := append([]uint32(nil), tr...)
		sort.Slice(c, func(a, b int) bool { return c[a] < c[b] })
		w := 0
		for r := 0; r < len(c); r++ {
			if int(c[r]) >= numItems {
				return nil, fmt.Errorf("dataset: transaction %d has item %d >= numItems %d", i, c[r], numItems)
			}
			if w == 0 || c[w-1] != c[r] {
				c[w] = c[r]
				w++
			}
		}
		tx[i] = c[:w]
	}
	return &Dataset{numItems: numItems, tx: tx}, nil
}

// MustNew is New but panics on error; for tests and generators that construct
// valid data by construction.
func MustNew(numItems int, transactions [][]uint32) *Dataset {
	d, err := New(numItems, transactions)
	if err != nil {
		panic(err)
	}
	return d
}

// NumItems returns the size of the item universe.
func (d *Dataset) NumItems() int { return d.numItems }

// NumTransactions returns t, the number of transactions.
func (d *Dataset) NumTransactions() int { return len(d.tx) }

// Transaction returns the i-th transaction (shared slice; do not modify).
func (d *Dataset) Transaction(i int) []uint32 { return d.tx[i] }

// Transactions returns the underlying transaction slice (shared; read-only).
func (d *Dataset) Transactions() [][]uint32 { return d.tx }

// ItemSupports returns n(i), the number of transactions containing each item.
// The result is computed once and cached (shared slice; do not modify).
func (d *Dataset) ItemSupports() []int {
	if d.supports == nil {
		s := make([]int, d.numItems)
		for _, tr := range d.tx {
			for _, it := range tr {
				s[it]++
			}
		}
		d.supports = s
	}
	return d.supports
}

// Frequencies returns f_i = n(i)/t for each item. If the dataset has no
// transactions all frequencies are zero.
func (d *Dataset) Frequencies() []float64 {
	f := make([]float64, d.numItems)
	t := float64(len(d.tx))
	if t == 0 {
		return f
	}
	for i, s := range d.ItemSupports() {
		f[i] = float64(s) / t
	}
	return f
}

// AvgTransactionLen returns m, the mean number of items per transaction.
func (d *Dataset) AvgTransactionLen() float64 {
	if len(d.tx) == 0 {
		return 0
	}
	total := 0
	for _, tr := range d.tx {
		total += len(tr)
	}
	return float64(total) / float64(len(d.tx))
}

// Support scans the horizontal layout and returns the number of transactions
// containing every item of the (sorted or unsorted) itemset. O(t * m); the
// vertical layout is preferred for repeated queries.
func (d *Dataset) Support(itemset []uint32) int {
	if len(itemset) == 0 {
		return len(d.tx)
	}
	q := append([]uint32(nil), itemset...)
	sort.Slice(q, func(a, b int) bool { return q[a] < q[b] })
	count := 0
	for _, tr := range d.tx {
		if containsSorted(tr, q) {
			count++
		}
	}
	return count
}

// containsSorted reports whether the sorted transaction tr contains every
// element of the sorted query q (merge scan).
func containsSorted(tr, q []uint32) bool {
	i := 0
	for _, want := range q {
		for i < len(tr) && tr[i] < want {
			i++
		}
		if i >= len(tr) || tr[i] != want {
			return false
		}
		i++
	}
	return true
}

// MaxItemSupport returns the largest single-item support (0 for an empty
// dataset). Procedure 2 uses it as s_max, the scan's upper end.
func (d *Dataset) MaxItemSupport() int {
	max := 0
	for _, s := range d.ItemSupports() {
		if s > max {
			max = s
		}
	}
	return max
}

// Vertical converts to the item-major layout.
func (d *Dataset) Vertical() *Vertical {
	tids := make([]bitset.TidList, d.numItems)
	supports := d.ItemSupports()
	for i, s := range supports {
		tids[i] = make(bitset.TidList, 0, s)
	}
	for tid, tr := range d.tx {
		for _, it := range tr {
			tids[it] = append(tids[it], uint32(tid))
		}
	}
	return &Vertical{NumTransactions: len(d.tx), Tids: tids}
}

package bitset

import (
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	b := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Test(i) {
			t.Fatalf("bit %d set in fresh bitset", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if b.Count() != 8 {
		t.Fatalf("Count = %d, want 8", b.Count())
	}
	b.Clear(64)
	if b.Test(64) || b.Count() != 7 {
		t.Fatal("Clear failed")
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestAndOrCount(t *testing.T) {
	x := FromSlice(200, []uint32{1, 5, 64, 100, 150, 199})
	y := FromSlice(200, []uint32{5, 64, 101, 150})
	if got := AndCount(x, y); got != 3 {
		t.Fatalf("AndCount = %d, want 3", got)
	}
	z := New(200)
	z.And(x, y)
	if got := z.ToSlice(); len(got) != 3 || got[0] != 5 || got[1] != 64 || got[2] != 150 {
		t.Fatalf("And = %v", got)
	}
	z.Or(x, y)
	if z.Count() != 7 {
		t.Fatalf("Or count = %d, want 7", z.Count())
	}
}

func TestAndCountInto(t *testing.T) {
	x := FromSlice(100, []uint32{2, 4, 6, 8, 10})
	y := FromSlice(100, []uint32{4, 8, 12})
	c := x.AndCountInto(y)
	if c != 2 {
		t.Fatalf("AndCountInto = %d, want 2", c)
	}
	got := x.ToSlice()
	if len(got) != 2 || got[0] != 4 || got[1] != 8 {
		t.Fatalf("in-place intersection = %v", got)
	}
}

func TestIterateEarlyStop(t *testing.T) {
	b := FromSlice(300, []uint32{10, 20, 30, 40})
	var seen []int
	b.Iterate(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 10 || seen[1] != 20 {
		t.Fatalf("early stop iterate = %v", seen)
	}
}

func TestRoundTripSlice(t *testing.T) {
	f := func(raw []uint16) bool {
		n := 1 << 16
		seen := map[uint32]bool{}
		var idx []uint32
		for _, v := range raw {
			u := uint32(v)
			if !seen[u] {
				seen[u] = true
				idx = append(idx, u)
			}
		}
		b := FromSlice(n, idx)
		if b.Count() != len(seen) {
			return false
		}
		out := b.ToSlice()
		for _, v := range out {
			if !seen[v] {
				return false
			}
		}
		return len(out) == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClone(t *testing.T) {
	x := FromSlice(64, []uint32{0, 63})
	y := x.Clone()
	y.Set(5)
	if x.Test(5) {
		t.Fatal("Clone shares storage")
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AndCount with mismatched capacity should panic")
		}
	}()
	AndCount(New(10), New(20))
}

package bitset

// TidList is a strictly increasing list of transaction ids. It is the sparse
// counterpart of Bitset: intersection costs O(|x| + |y|) regardless of the
// transaction count, which wins when supports are far below t.
type TidList []uint32

// IntersectCount returns |x ∩ y| by a linear merge with a galloping fallback
// when the lists are very unbalanced.
func IntersectCount(x, y TidList) int {
	if len(x) > len(y) {
		x, y = y, x
	}
	if len(x) == 0 {
		return 0
	}
	// Galloping pays off when one list is much shorter.
	if len(y) >= 32*len(x) {
		return gallopCount(x, y)
	}
	c, i, j := 0, 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] < y[j]:
			i++
		case x[i] > y[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// gallopCount counts matches of the short list x inside the long list y by
// exponential search.
func gallopCount(x, y TidList) int {
	c := 0
	lo := 0
	for _, v := range x {
		// Exponential probe from lo.
		step := 1
		hi := lo
		for hi < len(y) && y[hi] < v {
			lo = hi + 1
			hi += step
			step *= 2
		}
		if hi > len(y) {
			hi = len(y)
		}
		// Binary search in (lo-1, hi].
		a, b := lo, hi
		for a < b {
			mid := (a + b) / 2
			if y[mid] < v {
				a = mid + 1
			} else {
				b = mid
			}
		}
		lo = a
		if lo < len(y) && y[lo] == v {
			c++
			lo++
		}
		if lo >= len(y) {
			break
		}
	}
	return c
}

// Intersect returns x ∩ y as a new TidList.
func Intersect(x, y TidList) TidList {
	if len(x) > len(y) {
		x, y = y, x
	}
	out := make(TidList, 0, len(x))
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] < y[j]:
			i++
		case x[i] > y[j]:
			j++
		default:
			out = append(out, x[i])
			i++
			j++
		}
	}
	return out
}

// IntersectTo appends x ∩ y to dst (normally passed with length zero and
// retained capacity) and returns the extended slice. dst must not alias x or
// y. DFS miners keep one such buffer per depth, so a whole mine runs without
// per-node list allocations once the buffers have grown.
func IntersectTo(dst, x, y TidList) TidList {
	if len(x) > len(y) {
		x, y = y, x
	}
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] < y[j]:
			i++
		case x[i] > y[j]:
			j++
		default:
			dst = append(dst, x[i])
			i++
			j++
		}
	}
	return dst
}

// IntersectInto intersects dst with y in place (dst must be sorted) and
// returns the shortened dst. Reuses dst's backing array, so DFS miners can
// maintain a stack of prefix intersections without allocation churn.
func IntersectInto(dst, y TidList) TidList {
	w, i, j := 0, 0, 0
	for i < len(dst) && j < len(y) {
		switch {
		case dst[i] < y[j]:
			i++
		case dst[i] > y[j]:
			j++
		default:
			dst[w] = dst[i]
			w++
			i++
			j++
		}
	}
	return dst[:w]
}

// ToBitset converts the list into a Bitset of capacity n.
func (t TidList) ToBitset(n int) *Bitset {
	return FromSlice(n, t)
}

// ToBitsetInto reinitializes b to capacity n and sets the list's bits,
// reusing b's backing storage when possible.
func (t TidList) ToBitsetInto(n int, b *Bitset) {
	b.Reinit(n)
	for _, tid := range t {
		b.Set(int(tid))
	}
}

// Contains reports whether tid is present (binary search).
func (t TidList) Contains(tid uint32) bool {
	lo, hi := 0, len(t)
	for lo < hi {
		mid := (lo + hi) / 2
		if t[mid] < tid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(t) && t[lo] == tid
}

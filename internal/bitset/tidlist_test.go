package bitset

import (
	"sort"
	"testing"
	"testing/quick"
)

func mkSorted(raw []uint16) TidList {
	seen := map[uint32]bool{}
	var out TidList
	for _, v := range raw {
		u := uint32(v)
		if !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func bruteIntersect(x, y TidList) TidList {
	set := map[uint32]bool{}
	for _, v := range x {
		set[v] = true
	}
	var out TidList
	for _, v := range y {
		if set[v] {
			out = append(out, v)
		}
	}
	return out
}

func TestIntersectCountAgainstBrute(t *testing.T) {
	f := func(a, b []uint16) bool {
		x, y := mkSorted(a), mkSorted(b)
		want := len(bruteIntersect(x, y))
		return IntersectCount(x, y) == want &&
			IntersectCount(y, x) == want &&
			len(Intersect(x, y)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGallopPath(t *testing.T) {
	// Force the galloping branch: short x, long y.
	var y TidList
	for i := uint32(0); i < 10000; i += 3 {
		y = append(y, i)
	}
	x := TidList{0, 3, 4, 9999, 9000}
	sort.Slice(x, func(i, j int) bool { return x[i] < x[j] })
	want := len(bruteIntersect(x, y))
	if got := IntersectCount(x, y); got != want {
		t.Fatalf("gallop count = %d, want %d", got, want)
	}
	if got := gallopCount(x, y); got != want {
		t.Fatalf("direct gallop = %d, want %d", got, want)
	}
}

func TestIntersectInto(t *testing.T) {
	dst := TidList{1, 3, 5, 7, 9}
	y := TidList{3, 4, 7, 10}
	out := IntersectInto(dst, y)
	if len(out) != 2 || out[0] != 3 || out[1] != 7 {
		t.Fatalf("IntersectInto = %v", out)
	}
}

func TestIntersectIntoProperty(t *testing.T) {
	f := func(a, b []uint16) bool {
		x, y := mkSorted(a), mkSorted(b)
		dst := append(TidList(nil), x...)
		got := IntersectInto(dst, y)
		want := bruteIntersect(x, y)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestContains(t *testing.T) {
	x := TidList{2, 4, 8, 16, 32}
	for _, v := range x {
		if !x.Contains(v) {
			t.Fatalf("Contains(%d) false", v)
		}
	}
	for _, v := range []uint32{0, 3, 33} {
		if x.Contains(v) {
			t.Fatalf("Contains(%d) true", v)
		}
	}
	if TidList(nil).Contains(1) {
		t.Fatal("empty Contains true")
	}
}

func TestTidListBitsetAgreement(t *testing.T) {
	f := func(a, b []uint16) bool {
		x, y := mkSorted(a), mkSorted(b)
		n := 1 << 16
		bx, by := x.ToBitset(n), y.ToBitset(n)
		return IntersectCount(x, y) == AndCount(bx, by)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEmptyIntersections(t *testing.T) {
	if IntersectCount(nil, TidList{1, 2}) != 0 {
		t.Fatal("empty intersect count")
	}
	if got := Intersect(nil, nil); len(got) != 0 {
		t.Fatal("empty intersect")
	}
}

// Package bitset provides dense bit vectors and sorted transaction-id lists,
// the two physical representations behind vertical itemset mining. Support
// counting for an itemset is the cardinality of the intersection of its
// items' transaction sets; both representations implement that primitive with
// different tradeoffs (bitsets win when sets are dense, tidlists when sparse).
package bitset

import "math/bits"

const wordBits = 64

// Bitset is a fixed-capacity dense bit vector over [0, n).
type Bitset struct {
	words []uint64
	n     int
}

// New returns a Bitset with capacity for n bits, all clear.
func New(n int) *Bitset {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Bitset{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity in bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i.
func (b *Bitset) Set(i int) {
	b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (b *Bitset) Clear(i int) {
	b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether bit i is set.
func (b *Bitset) Test(i int) bool {
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a deep copy.
func (b *Bitset) Clone() *Bitset {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitset{words: w, n: b.n}
}

// Reset clears all bits in place.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Reinit resizes b to capacity n with all bits clear, reusing the word
// backing array whenever it is large enough. It is the reuse counterpart of
// New: pooled callers (the Monte Carlo replicate engine's mining scratch)
// Reinit per replicate instead of allocating fresh bitsets.
func (b *Bitset) Reinit(n int) {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	need := (n + wordBits - 1) / wordBits
	if cap(b.words) < need {
		b.words = make([]uint64, need)
	} else {
		b.words = b.words[:need]
		for i := range b.words {
			b.words[i] = 0
		}
	}
	b.n = n
}

// And stores x AND y into b (capacities must match).
func (b *Bitset) And(x, y *Bitset) {
	if x.n != y.n || b.n != x.n {
		panic("bitset: And capacity mismatch")
	}
	for i := range b.words {
		b.words[i] = x.words[i] & y.words[i]
	}
}

// AndCount returns |x AND y| without materializing the intersection — the
// hot path of bitset-based support counting.
func AndCount(x, y *Bitset) int {
	if x.n != y.n {
		panic("bitset: AndCount capacity mismatch")
	}
	c := 0
	for i, w := range x.words {
		c += bits.OnesCount64(w & y.words[i])
	}
	return c
}

// AndCountInto intersects x into dst (dst = dst AND x) and returns the new
// cardinality. Used by DFS miners that refine a running intersection.
func (b *Bitset) AndCountInto(x *Bitset) int {
	if b.n != x.n {
		panic("bitset: AndCountInto capacity mismatch")
	}
	c := 0
	for i := range b.words {
		b.words[i] &= x.words[i]
		c += bits.OnesCount64(b.words[i])
	}
	return c
}

// Or stores x OR y into b.
func (b *Bitset) Or(x, y *Bitset) {
	if x.n != y.n || b.n != x.n {
		panic("bitset: Or capacity mismatch")
	}
	for i := range b.words {
		b.words[i] = x.words[i] | y.words[i]
	}
}

// Iterate calls fn for every set bit in ascending order; fn returning false
// stops the iteration.
func (b *Bitset) Iterate(fn func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + tz) {
				return
			}
			w &= w - 1
		}
	}
}

// ToSlice returns the indices of set bits in ascending order.
func (b *Bitset) ToSlice() []uint32 {
	out := make([]uint32, 0, b.Count())
	b.Iterate(func(i int) bool {
		out = append(out, uint32(i))
		return true
	})
	return out
}

// FromSlice builds a Bitset of capacity n with the given bits set.
func FromSlice(n int, idx []uint32) *Bitset {
	b := New(n)
	for _, i := range idx {
		b.Set(int(i))
	}
	return b
}

package chenstein

import (
	"testing"

	"sigfim/internal/stats"
)

// Analytic-bound benchmarks: the ablation DESIGN.md calls out is analytic
// (bucketed) lambda/b1 versus the Monte Carlo estimates of Algorithm 1.

func benchFreqs() []float64 {
	return stats.FitPowerLaw(2000, 1e-5, 0.3, 8).Frequencies()
}

func BenchmarkBucketedLambda(b *testing.B) {
	buckets := NewBuckets(benchFreqs(), 1.05)
	for i := 0; i < b.N; i++ {
		BucketedLambda(buckets, 50000, 2, 1000)
	}
}

func BenchmarkBucketedB1(b *testing.B) {
	buckets := NewBuckets(benchFreqs(), 1.2)
	for i := 0; i < b.N; i++ {
		BucketedB1(buckets, 50000, 2, 1000)
	}
}

func BenchmarkUniformBoundsSum(b *testing.B) {
	u := UniformBounds{N: 1000, K: 3, T: 100000, P: 0.01}
	for i := 0; i < b.N; i++ {
		u.Sum(25)
	}
}

func BenchmarkUniformSMin(b *testing.B) {
	u := UniformBounds{N: 1000, K: 2, T: 100000, P: 0.01}
	for i := 0; i < b.N; i++ {
		u.SMin(0.01, 1)
	}
}

func BenchmarkJointTailDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		JointTail(10000, 0.01, 0.012, 0.001, 10)
	}
}

func BenchmarkExactLambdaSmall(b *testing.B) {
	freqs := benchFreqs()[:25]
	for i := 0; i < b.N; i++ {
		ExactLambda(freqs, 50000, 3, 100)
	}
}

package chenstein

import (
	"math"
	"testing"

	"sigfim/internal/randmodel"
	"sigfim/internal/stats"
)

func almostEq(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestJointTailAgainstMonteCarlo(t *testing.T) {
	// Exact DP vs simulation for a pair of overlapping itemsets.
	fx, fy := 0.3, 0.25
	fu := 0.1 // Pr(transaction contains X union Y)
	tt, s := 40, 4
	exact := JointTail(tt, fx, fy, fu, s)
	r := stats.NewRNG(42)
	const reps = 200000
	hit := 0
	for i := 0; i < reps; i++ {
		sx, sy := 0, 0
		for j := 0; j < tt; j++ {
			u := r.Float64()
			switch {
			case u < fu:
				sx++
				sy++
			case u < fx:
				sx++
			case u < fx+fy-fu:
				sy++
			}
		}
		if sx >= s && sy >= s {
			hit++
		}
	}
	emp := float64(hit) / reps
	se := math.Sqrt(exact * (1 - exact) / reps)
	if math.Abs(emp-exact) > 6*se+1e-4 {
		t.Errorf("JointTail = %v, Monte Carlo = %v", exact, emp)
	}
}

func TestJointTailMarginalConsistency(t *testing.T) {
	// With fU = fX*fY the supports are NOT independent in general, but when
	// Y's support is certain (fY=1, s<=t scaled), the joint tail reduces to
	// the marginal.
	tt, s := 30, 3
	fx := 0.2
	got := JointTail(tt, fx, 1.0, fx, s)
	want := stats.Binomial{N: tt, P: fx}.UpperTail(s)
	if !almostEq(got, want, 1e-9) {
		t.Errorf("degenerate joint = %v, want %v", got, want)
	}
	if got := JointTail(10, 0.5, 0.5, 0.25, 0); got != 1 {
		t.Errorf("s=0 should give 1, got %v", got)
	}
}

func TestExactLambdaSmall(t *testing.T) {
	// 3 items, k=2: direct sum over the 3 pairs.
	freqs := []float64{0.5, 0.4, 0.3}
	tt, s := 20, 3
	want := 0.0
	for _, pair := range [][2]int{{0, 1}, {0, 2}, {1, 2}} {
		p := freqs[pair[0]] * freqs[pair[1]]
		want += stats.Binomial{N: tt, P: p}.UpperTail(s)
	}
	if got := ExactLambda(freqs, tt, 2, s); !almostEq(got, want, 1e-12) {
		t.Errorf("ExactLambda = %v, want %v", got, want)
	}
	if got := ExactLambda(freqs, tt, 4, s); got != 0 {
		t.Errorf("k > n should give 0, got %v", got)
	}
}

func TestExactLambdaAgainstSimulation(t *testing.T) {
	freqs := []float64{0.4, 0.35, 0.3, 0.25, 0.2}
	tt, k, s := 50, 2, 6
	want := ExactLambda(freqs, tt, k, s)
	m := randmodel.IndependentModel{T: tt, Freqs: freqs}
	r := stats.NewRNG(7)
	const reps = 20000
	total := 0.0
	for i := 0; i < reps; i++ {
		v := m.Generate(r.Split())
		// count pairs with support >= s by brute force
		for a := 0; a < len(freqs); a++ {
			for b := a + 1; b < len(freqs); b++ {
				if v.Support([]uint32{uint32(a), uint32(b)}) >= s {
					total++
				}
			}
		}
	}
	emp := total / reps
	se := math.Sqrt(want / reps) // Poisson-ish variance
	if math.Abs(emp-want) > 8*se+0.01 {
		t.Errorf("lambda: exact %v vs simulated %v", want, emp)
	}
}

func TestBucketedLambdaMatchesExact(t *testing.T) {
	// With ratio close to 1 the bucketed value converges to the exact one.
	r := stats.NewRNG(3)
	freqs := make([]float64, 30)
	for i := range freqs {
		freqs[i] = 0.05 + 0.3*r.Float64()
	}
	tt, k, s := 60, 2, 8
	exact := ExactLambda(freqs, tt, k, s)
	b := NewBuckets(freqs, 1.01)
	got := BucketedLambda(b, tt, k, s)
	if !almostEq(got, exact, 0.05) {
		t.Errorf("BucketedLambda = %v, exact %v", got, exact)
	}
	// Coarser buckets stay within a loose factor.
	coarse := BucketedLambda(NewBuckets(freqs, 1.5), tt, k, s)
	if coarse <= 0 || coarse > exact*10 || coarse < exact/10 {
		t.Errorf("coarse BucketedLambda = %v vs exact %v", coarse, exact)
	}
}

func TestBucketsDropZeroFreqs(t *testing.T) {
	b := NewBuckets([]float64{0, 0.5, 0, 0.25}, 1.1)
	total := 0
	for _, c := range b.Count {
		total += c
	}
	if total != 2 {
		t.Errorf("buckets contain %d items, want 2", total)
	}
	empty := NewBuckets([]float64{0, 0}, 1.1)
	if len(empty.Count) != 0 {
		t.Error("all-zero frequencies should give no buckets")
	}
}

func TestBucketedB1MatchesExactPairs(t *testing.T) {
	freqs := []float64{0.3, 0.28, 0.26, 0.24, 0.22, 0.2}
	tt, k, s := 40, 2, 5
	wantB1, _ := ExactPairBounds(freqs, tt, k, s)
	got := BucketedB1(NewBuckets(freqs, 1.001), tt, k, s)
	if !almostEq(got, wantB1, 0.05) {
		t.Errorf("BucketedB1 = %v, exact %v", got, wantB1)
	}
}

func TestUniformBoundsAgainstExact(t *testing.T) {
	// In the uniform regime, UniformBounds.B1 must equal the enumerated b1
	// exactly, and UniformBounds.B2 must upper bound the enumerated b2.
	n, k, tt, p := 7, 2, 25, 0.3
	freqs := make([]float64, n)
	for i := range freqs {
		freqs[i] = p
	}
	u := UniformBounds{N: n, K: k, T: tt, P: p}
	for _, s := range []int{2, 3, 5, 8} {
		exactB1, exactB2 := ExactPairBounds(freqs, tt, k, s)
		if got := u.B1(s); !almostEq(got, exactB1, 1e-6) {
			t.Errorf("s=%d: B1 = %v, exact %v", s, got, exactB1)
		}
		if got := u.B2(s); got < exactB2*(1-1e-9) {
			t.Errorf("s=%d: B2 bound %v below exact %v", s, got, exactB2)
		}
	}
}

func TestUniformBoundsDecreasingInS(t *testing.T) {
	u := UniformBounds{N: 50, K: 3, T: 200, P: 0.1}
	prev := math.Inf(1)
	for s := 1; s <= 12; s++ {
		cur := u.Sum(s)
		if cur > prev*(1+1e-9) {
			t.Fatalf("bound increased at s=%d: %v -> %v", s, prev, cur)
		}
		prev = cur
	}
}

func TestUniformSMin(t *testing.T) {
	u := UniformBounds{N: 100, K: 2, T: 1000, P: 0.05}
	s, ok := u.SMin(0.01, 1)
	if !ok {
		t.Fatal("no s_min found")
	}
	if u.Sum(s) > 0.01 {
		t.Errorf("Sum(s_min)=%v exceeds eps", u.Sum(s))
	}
	if s > 1 && u.Sum(s-1) <= 0.01 {
		t.Errorf("s_min %d not minimal", s)
	}
	// Lambda at s_min should be modest (rare-events regime).
	if lam := u.Lambda(s); lam > 10 {
		t.Errorf("lambda at s_min suspiciously large: %v", lam)
	}
}

func TestMixtureBoundsDominateUniform(t *testing.T) {
	// With R a point mass, the mixture bounds (which take Jensen slack in
	// b1) must still upper-bound the exact uniform quantities.
	n, k, tt, p := 8, 2, 30, 0.2
	freqs := make([]float64, n)
	for i := range freqs {
		freqs[i] = p
	}
	pr := randmodel.PointR{P: p}
	m := MixtureBounds{N: n, K: k, T: tt, Moments: pr.Moment}
	for _, s := range []int{2, 4, 6} {
		exactB1, exactB2 := ExactPairBounds(freqs, tt, k, s)
		if got := m.B1(s); got < exactB1*(1-1e-9) {
			t.Errorf("s=%d: mixture B1 bound %v below exact %v", s, got, exactB1)
		}
		if got := m.B2(s); got < exactB2*(1-1e-9) {
			t.Errorf("s=%d: mixture B2 bound %v below exact %v", s, got, exactB2)
		}
	}
}

func TestMixtureSMinFindsThreshold(t *testing.T) {
	pr := randmodel.TwoPointR{Lo: 0.01, Hi: 0.2, W: 0.1}
	m := MixtureBounds{N: 200, K: 2, T: 500, Moments: pr.Moment}
	s, ok := m.SMin(0.01, 1)
	if !ok {
		t.Fatal("no mixture s_min")
	}
	if m.Sum(s) > 0.01 || (s > 1 && m.Sum(s-1) <= 0.01) {
		t.Errorf("mixture s_min %d wrong: sum=%v prev=%v", s, m.Sum(s), m.Sum(s-1))
	}
}

func TestSMinExactSmallUniverse(t *testing.T) {
	freqs := []float64{0.5, 0.45, 0.4, 0.35}
	tt := 60
	s, ok := SMinExact(freqs, tt, 2, 0.01)
	if !ok {
		t.Fatal("no exact s_min")
	}
	if VariationDistanceBound(freqs, tt, 2, s) > 0.01 {
		t.Error("bound at s_min exceeds eps")
	}
	if s > 1 && VariationDistanceBound(freqs, tt, 2, s-1) <= 0.01 {
		t.Error("exact s_min not minimal")
	}
}

func TestMaxExpectedSupport(t *testing.T) {
	freqs := []float64{0.1, 0.5, 0.3, 0.2}
	if got := MaxExpectedSupport(freqs, 100, 2); !almostEq(got, 15, 1e-12) {
		t.Errorf("s-tilde = %v, want 15", got)
	}
	if got := MaxExpectedSupport(freqs, 100, 5); got != 0 {
		t.Errorf("k > n should give 0, got %v", got)
	}
}

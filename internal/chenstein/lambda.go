package chenstein

import (
	"math"
	"sort"

	"sigfim/internal/stats"
)

// Lambda computation: lambda_{k,s} = E[Q̂_{k,s}] = sum over all k-itemsets X
// of Pr(Bin(t, prod f_i) >= s). ExactLambda enumerates the C(n,k) itemsets —
// fine for tests and small universes; BucketedLambda groups items into
// geometric frequency buckets and enumerates bucket compositions instead,
// reducing the sum to C(#buckets + k - 1, k) terms with relative error
// bounded by the bucket width. The same composition machinery yields an
// analytic b1 for arbitrary frequency vectors (BucketedB1), used to
// cross-check the Monte Carlo estimates of Algorithm 1.

// ExactLambda computes lambda by full enumeration; cost C(n, k) tail
// evaluations.
func ExactLambda(freqs []float64, t, k, s int) float64 {
	n := len(freqs)
	if k < 1 || k > n {
		return 0
	}
	total := 0.0
	idx := make([]int, k)
	var rec func(pos, start int, prod float64)
	rec = func(pos, start int, prod float64) {
		if pos == k {
			total += stats.Binomial{N: t, P: prod}.UpperTail(s)
			return
		}
		for i := start; i < n; i++ {
			idx[pos] = i
			rec(pos+1, i+1, prod*freqs[i])
		}
	}
	rec(0, 0, 1)
	return total
}

// Buckets partitions items into geometric frequency bands.
type Buckets struct {
	Count []int     // items per bucket
	Rep   []float64 // representative frequency (geometric mean of members)
}

// NewBuckets groups the frequency vector into geometric buckets of the given
// ratio (e.g. 1.05 for 5% bands). Zero-frequency items are dropped: they can
// never contribute to any itemset's support.
func NewBuckets(freqs []float64, ratio float64) Buckets {
	if ratio <= 1 {
		panic("chenstein: bucket ratio must exceed 1")
	}
	pos := make([]float64, 0, len(freqs))
	for _, f := range freqs {
		if f > 0 {
			pos = append(pos, f)
		}
	}
	if len(pos) == 0 {
		return Buckets{}
	}
	sort.Float64s(pos)
	logRatio := math.Log(ratio)
	var b Buckets
	start := 0
	for start < len(pos) {
		// Bucket spans [pos[start], pos[start]*ratio).
		end := start
		logSum := 0.0
		for end < len(pos) && pos[end] < pos[start]*ratio {
			logSum += math.Log(pos[end])
			end++
		}
		_ = logRatio
		b.Count = append(b.Count, end-start)
		b.Rep = append(b.Rep, math.Exp(logSum/float64(end-start)))
		start = end
	}
	return b
}

// visitCompositions enumerates all ways to choose k items across the buckets
// (c_b items from bucket b, sum c_b = k), invoking fn with the composition's
// multiplicity count (product of C(count_b, c_b)) and the product of
// representative frequencies.
func (b Buckets) visitCompositions(k int, fn func(count float64, prodFreq float64, comp []int)) {
	nb := len(b.Count)
	comp := make([]int, nb)
	var rec func(bucket, remaining int, logCount, logProd float64)
	rec = func(bucket, remaining int, logCount, logProd float64) {
		if remaining == 0 {
			fn(math.Exp(logCount), math.Exp(logProd), comp)
			return
		}
		if bucket >= nb {
			return
		}
		// Upper bound on how many more items are available.
		avail := 0
		for i := bucket; i < nb; i++ {
			avail += b.Count[i]
		}
		if avail < remaining {
			return
		}
		max := remaining
		if b.Count[bucket] < max {
			max = b.Count[bucket]
		}
		for c := 0; c <= max; c++ {
			comp[bucket] = c
			rec(bucket+1, remaining-c,
				logCount+stats.LogChoose(b.Count[bucket], c),
				logProd+float64(c)*math.Log(b.Rep[bucket]))
		}
		comp[bucket] = 0
	}
	rec(0, k, 0, 0)
}

// BucketedLambda approximates lambda using bucket compositions.
func BucketedLambda(b Buckets, t, k, s int) float64 {
	total := 0.0
	b.visitCompositions(k, func(count, prod float64, _ []int) {
		if count == 0 {
			return
		}
		total += count * stats.Binomial{N: t, P: prod}.UpperTail(s)
	})
	return total
}

// BucketedB1 approximates b1(s) = sum_X p_X * sum_{Y: Y∩X != ∅} p_Y for an
// arbitrary frequency vector. For each composition c of X it computes the
// total tail mass lambda and the mass D_c of itemsets disjoint from X
// (compositions drawn from the reduced bucket counts count_b - c_b), giving
// b1 = sum_c N_c p_c (lambda - D_c).
func BucketedB1(b Buckets, t, k, s int) float64 {
	lambda := BucketedLambda(b, t, k, s)
	if lambda == 0 {
		return 0
	}
	total := 0.0
	b.visitCompositions(k, func(count, prod float64, comp []int) {
		if count == 0 {
			return
		}
		pc := stats.Binomial{N: t, P: prod}.UpperTail(s)
		if pc == 0 {
			return
		}
		// Disjoint mass: compositions over the buckets with c removed.
		reduced := Buckets{Count: make([]int, len(b.Count)), Rep: b.Rep}
		for i := range b.Count {
			reduced.Count[i] = b.Count[i] - comp[i]
		}
		d := BucketedLambda(reduced, t, k, s)
		overlap := lambda - d
		if overlap < 0 {
			overlap = 0
		}
		total += count * pc * overlap
	})
	return total
}

package chenstein

import (
	"math"

	"sigfim/internal/stats"
)

// Exact small-scale computations used to validate both the analytic bounds
// and the Monte Carlo estimator: the joint tail probability of two
// overlapping itemsets' supports, and the exact b1/b2 sums by enumeration.

// JointTail returns Pr(sup(X) >= s AND sup(Y) >= s) exactly for two itemsets
// under the independence model, where fX, fY are the itemsets' occurrence
// probabilities per transaction and fU is the probability that a transaction
// contains X ∪ Y. A transaction falls in one of four categories — both
// (prob fU), X-only (fX-fU), Y-only (fY-fU), neither — and a dynamic program
// over transactions with support counts capped at s computes the joint tail
// in O(t s^2) time.
func JointTail(t int, fX, fY, fU float64, s int) float64 {
	if s <= 0 {
		return 1
	}
	pb := fU
	px := fX - fU
	py := fY - fU
	if px < 0 {
		px = 0
	}
	if py < 0 {
		py = 0
	}
	pn := 1 - pb - px - py
	if pn < 0 {
		pn = 0
	}
	// dp[u][w] = probability that capped supports are (u, w).
	cur := make([][]float64, s+1)
	next := make([][]float64, s+1)
	for i := range cur {
		cur[i] = make([]float64, s+1)
		next[i] = make([]float64, s+1)
	}
	cur[0][0] = 1
	capAdd := func(v int) int {
		if v >= s {
			return s
		}
		return v
	}
	for i := 0; i < t; i++ {
		for u := 0; u <= s; u++ {
			for w := 0; w <= s; w++ {
				next[u][w] = 0
			}
		}
		for u := 0; u <= s; u++ {
			for w := 0; w <= s; w++ {
				p := cur[u][w]
				if p == 0 {
					continue
				}
				next[capAdd(u+1)][capAdd(w+1)] += p * pb
				next[capAdd(u+1)][w] += p * px
				next[u][capAdd(w+1)] += p * py
				next[u][w] += p * pn
			}
		}
		cur, next = next, cur
	}
	return cur[s][s]
}

// ExactPairBounds computes b1(s) and b2(s) exactly (not as upper bounds) by
// enumerating every ordered pair of overlapping k-itemsets, using JointTail
// for the cross moments. Exponential in n; for validation on small
// universes only.
func ExactPairBounds(freqs []float64, t, k, s int) (b1, b2 float64) {
	n := len(freqs)
	sets := enumerateK(n, k)
	pX := make([]float64, len(sets))
	fProd := make([]float64, len(sets))
	for i, set := range sets {
		prod := 1.0
		for _, it := range set {
			prod *= freqs[it]
		}
		fProd[i] = prod
		pX[i] = stats.Binomial{N: t, P: prod}.UpperTail(s)
	}
	for i, x := range sets {
		for j, y := range sets {
			g := overlap(x, y)
			if g == 0 {
				continue
			}
			b1 += pX[i] * pX[j]
			if i == j {
				continue
			}
			// The joint tail is at most the smaller marginal tail; pairs
			// whose ceiling is below 1e-14 cannot move the bound at any
			// useful eps, so skip the O(t s^2) DP for them.
			if math.Min(pX[i], pX[j]) < 1e-14 {
				continue
			}
			// fU = product over X ∪ Y = fX * fY / f_{X∩Y}.
			fInter := 1.0
			for _, it := range x {
				if contains(y, it) {
					fInter *= freqs[it]
				}
			}
			fU := fProd[i] * fProd[j] / fInter
			b2 += JointTail(t, fProd[i], fProd[j], fU, s)
		}
	}
	return b1, b2
}

// enumerateK lists all k-subsets of [0, n).
func enumerateK(n, k int) [][]int {
	var out [][]int
	idx := make([]int, k)
	var rec func(pos, start int)
	rec = func(pos, start int) {
		if pos == k {
			out = append(out, append([]int(nil), idx...))
			return
		}
		for i := start; i < n; i++ {
			idx[pos] = i
			rec(pos+1, i+1)
		}
	}
	if k >= 1 && k <= n {
		rec(0, 0)
	}
	return out
}

func overlap(a, b []int) int {
	g := 0
	for _, x := range a {
		if contains(b, x) {
			g++
		}
	}
	return g
}

func contains(a []int, x int) bool {
	for _, v := range a {
		if v == x {
			return true
		}
	}
	return false
}

// VariationDistanceBound returns the Theorem 1 certificate b1(s) + b2(s)
// computed exactly for a small universe; the total variation distance
// between L(Q̂_{k,s}) and Poisson(lambda) is at most this value.
func VariationDistanceBound(freqs []float64, t, k, s int) float64 {
	b1, b2 := ExactPairBounds(freqs, t, k, s)
	return b1 + b2
}

// SMinExact scans s upward for the first s with the exact bound below eps.
func SMinExact(freqs []float64, t, k int, eps float64) (int, bool) {
	for s := 1; s <= t; s++ {
		if VariationDistanceBound(freqs, t, k, s) <= eps {
			return s, true
		}
	}
	return 0, false
}

// MaxExpectedSupport returns t times the product of the k largest
// frequencies (the paper's s-tilde) — duplicated here in float form for
// callers that have a raw frequency vector rather than a dataset profile.
func MaxExpectedSupport(freqs []float64, t, k int) float64 {
	if k > len(freqs) {
		return 0
	}
	top := append([]float64(nil), freqs...)
	// Partial selection of the k largest.
	for i := 0; i < k; i++ {
		maxIdx := i
		for j := i + 1; j < len(top); j++ {
			if top[j] > top[maxIdx] {
				maxIdx = j
			}
		}
		top[i], top[maxIdx] = top[maxIdx], top[i]
	}
	prod := float64(t)
	for i := 0; i < k; i++ {
		prod *= top[i]
	}
	return prod
}

// Package chenstein implements the Chen-Stein Poisson-approximation
// machinery of the paper's Section 2: the dependency bounds b1(s) and b2(s)
// of Theorem 1, their closed forms in the uniform-frequency regime of
// Theorem 2 and the mixture regime of Theorem 3, exact and bucketed
// computation of lambda = E[Q̂_{k,s}], and the analytic support threshold
// s_min = min{s : b1(s)+b2(s) <= eps} of Equation (1).
//
// The variation distance between the law of Q̂_{k,s} (the number of
// k-itemsets with support >= s in a random dataset) and a Poisson law of the
// same mean is at most b1(s) + b2(s), where b1 sums p_X p_Y over ordered
// pairs of overlapping k-itemsets (including X = Y) and b2 sums E[Z_X Z_Y]
// over ordered pairs of distinct overlapping k-itemsets.
package chenstein

import (
	"math"

	"sigfim/internal/stats"
)

// UniformBounds evaluates b1 and b2 in the Theorem 2 regime: every item has
// the same frequency P, so every k-itemset has support distribution
// Binomial(T, P^k) and the combinatorics collapse to closed forms.
type UniformBounds struct {
	N int     // number of items
	K int     // itemset size
	T int     // number of transactions
	P float64 // per-item frequency
}

// pX returns Pr(Bin(T, P^k) >= s), the tail probability shared by all
// k-itemsets.
func (u UniformBounds) pX(s int) float64 {
	return stats.Binomial{N: u.T, P: math.Pow(u.P, float64(u.K))}.UpperTail(s)
}

// Lambda returns E[Q̂_{k,s}] = C(n,k) * pX(s).
func (u UniformBounds) Lambda(s int) float64 {
	return math.Exp(stats.LogChoose(u.N, u.K) + math.Log(u.pX(s)))
}

// B1 returns the exact b1(s): the number of ordered overlapping pairs,
// C(n,k)^2 - C(n,k) C(n-k,k), times pX(s)^2.
func (u UniformBounds) B1(s int) float64 {
	p := u.pX(s)
	if p == 0 {
		return 0
	}
	logNk := stats.LogChoose(u.N, u.K)
	// pairs = C(n,k)^2 (1 - C(n-k,k)/C(n,k)).
	ratio := math.Exp(stats.LogChoose(u.N-u.K, u.K) - logNk) // < 1
	pairs := math.Exp(2*logNk) * (1 - ratio)
	return pairs * p * p
}

// B2 returns the Theorem 2 upper bound on b2(s):
//
//	sum_{g=1}^{k-1} C(n; g, k-g, k-g) * sum_{i=0}^{s} C(t; i, s-i, s-i)
//	    * p^{(2k-g) i + 2k (s-i)}
//
// where C(n; a,b,c) is the multinomial coefficient n!/(a! b! c! (n-a-b-c)!).
func (u UniformBounds) B2(s int) float64 {
	total := 0.0
	logP := math.Log(u.P)
	for g := 1; g <= u.K-1; g++ {
		logCount := logMultinomial3(u.N, g, u.K-g, u.K-g)
		inner := math.Inf(-1)
		for i := 0; i <= s; i++ {
			if i > u.T || 2*(s-i) > u.T-i {
				continue
			}
			logTerm := logMultinomial3(u.T, i, s-i, s-i) +
				float64((2*u.K-g)*i+2*u.K*(s-i))*logP
			inner = stats.LogSumExp(inner, logTerm)
		}
		if math.IsInf(inner, -1) {
			continue
		}
		total += math.Exp(logCount + inner)
	}
	return total
}

// logMultinomial3 returns ln( n! / (a! b! c! (n-a-b-c)!) ), -Inf when the
// parts do not fit.
func logMultinomial3(n, a, b, c int) float64 {
	rest := n - a - b - c
	if a < 0 || b < 0 || c < 0 || rest < 0 {
		return math.Inf(-1)
	}
	return stats.LogFactorial(n) - stats.LogFactorial(a) - stats.LogFactorial(b) -
		stats.LogFactorial(c) - stats.LogFactorial(rest)
}

// Sum returns b1(s) + b2(s).
func (u UniformBounds) Sum(s int) float64 { return u.B1(s) + u.B2(s) }

// SMin returns the analytic threshold min{s >= lo : b1(s)+b2(s) <= eps},
// searching upward from lo (lo < 1 is clamped to 1). Both bounds decrease in
// s, so the scan exits at the first satisfying s. Returns (s, true), or
// (0, false) if no s <= T satisfies the bound.
func (u UniformBounds) SMin(eps float64, lo int) (int, bool) {
	if lo < 1 {
		lo = 1
	}
	for s := lo; s <= u.T; s++ {
		if u.Sum(s) <= eps {
			return s, true
		}
	}
	return 0, false
}

// MixtureBounds evaluates the Theorem 3 bounds for the regime where each
// item's frequency is drawn independently from a distribution R with known
// moments. Only the moments E[R^s] and E[R^{2s}] enter the bounds.
type MixtureBounds struct {
	N       int
	K       int
	T       int
	Moments func(j int) float64 // E[R^j]
}

// B1 returns the Theorem 3 bound
//
//	b1 <= [C(n,k)^2 - C(n,k) C(n-k,k)] * C(t,s)^2 * E[R^{2s}]^k,
//
// the Jensen-relaxed form used in the proof.
func (m MixtureBounds) B1(s int) float64 {
	logNk := stats.LogChoose(m.N, m.K)
	ratio := math.Exp(stats.LogChoose(m.N-m.K, m.K) - logNk)
	logPairs := 2*logNk + math.Log1p(-ratio)
	m2s := m.Moments(2 * s)
	if m2s <= 0 {
		return 0
	}
	return math.Exp(logPairs + 2*stats.LogChoose(m.T, s) + float64(m.K)*math.Log(m2s))
}

// B2 returns the Theorem 3 bound
//
//	b2 <= sum_{g=1}^{k-1} C(n; g,k-g,k-g)
//	      * sum_{i=0}^{s} C(t; i,s-i,s-i) * E[R^{2s}]^{k - ig/(2s)},
//
// following the proof's chain E[R^{2s-i}]^g E[R^s]^{2(k-g)} <=
// E[R^{2s}]^{g(2s-i)/(2s)} E[R^{2s}]^{k-g}.
func (m MixtureBounds) B2(s int) float64 {
	m2s := m.Moments(2 * s)
	if m2s <= 0 {
		return 0
	}
	logM := math.Log(m2s)
	total := 0.0
	for g := 1; g <= m.K-1; g++ {
		logCount := logMultinomial3(m.N, g, m.K-g, m.K-g)
		inner := math.Inf(-1)
		for i := 0; i <= s; i++ {
			if i > m.T || 2*(s-i) > m.T-i {
				continue
			}
			exp := float64(m.K) - float64(i*g)/float64(2*s)
			logTerm := logMultinomial3(m.T, i, s-i, s-i) + exp*logM
			inner = stats.LogSumExp(inner, logTerm)
		}
		if math.IsInf(inner, -1) {
			continue
		}
		total += math.Exp(logCount + inner)
	}
	return total
}

// Sum returns B1(s) + B2(s).
func (m MixtureBounds) Sum(s int) float64 { return m.B1(s) + m.B2(s) }

// SMin searches upward from lo for the first s with Sum(s) <= eps.
func (m MixtureBounds) SMin(eps float64, lo int) (int, bool) {
	if lo < 1 {
		lo = 1
	}
	for s := lo; s <= m.T; s++ {
		if m.Sum(s) <= eps {
			return s, true
		}
	}
	return 0, false
}

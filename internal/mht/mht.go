// Package mht implements multiple hypothesis testing corrections: the
// Bonferroni and Holm FWER procedures and the Benjamini-Hochberg and
// Benjamini-Yekutieli FDR step-up procedures. Benjamini-Yekutieli is the
// paper's Theorem 5 and the engine of Procedure 1; the others are standard
// baselines the experiments compare against.
package mht

import (
	"math"
	"sort"
)

// eulerMascheroni is the gamma constant of the harmonic asymptotic.
const eulerMascheroni = 0.5772156649015328606

// Harmonic returns H(m) = sum_{j=1..m} 1/j. Procedure 1 tests m = C(n, k)
// hypotheses — far beyond exact summation — so values above the cutoff use
// the asymptotic H(m) = ln m + gamma + 1/(2m) - 1/(12m^2), whose error is
// O(m^-4).
func Harmonic(m float64) float64 {
	if m < 1 {
		return 0
	}
	const exactCutoff = 1 << 20
	if m <= exactCutoff {
		n := int(m)
		s := 0.0
		for j := 1; j <= n; j++ {
			s += 1 / float64(j)
		}
		return s
	}
	return math.Log(m) + eulerMascheroni + 1/(2*m) - 1/(12*m*m)
}

// stepUp runs a generic step-up procedure: find the largest i (1-based on
// the sorted p-values) with p_(i) <= threshold(i), and reject hypotheses
// 1..i. Returns the rejection mask aligned with the input order.
func stepUp(pvalues []float64, threshold func(i int) float64) []bool {
	n := len(pvalues)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pvalues[idx[a]] < pvalues[idx[b]] })
	cut := 0 // number of rejections
	for i := n; i >= 1; i-- {
		if pvalues[idx[i-1]] <= threshold(i) {
			cut = i
			break
		}
	}
	reject := make([]bool, n)
	for i := 0; i < cut; i++ {
		reject[idx[i]] = true
	}
	return reject
}

// Bonferroni rejects hypothesis i when p_i <= alpha/m, controlling FWER at
// alpha. m defaults to len(pvalues) when mTotal <= 0; pass the full
// hypothesis count when only a subset of p-values was computed.
func Bonferroni(pvalues []float64, alpha float64, mTotal float64) []bool {
	m := mTotal
	if m <= 0 {
		m = float64(len(pvalues))
	}
	reject := make([]bool, len(pvalues))
	if m == 0 {
		return reject
	}
	thr := alpha / m
	for i, p := range pvalues {
		reject[i] = p <= thr
	}
	return reject
}

// Holm is the step-down refinement of Bonferroni: sorted p-values are
// compared against alpha/(m-i+1), stopping at the first failure. Uniformly
// more powerful than Bonferroni with the same FWER guarantee.
func Holm(pvalues []float64, alpha float64) []bool {
	n := len(pvalues)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pvalues[idx[a]] < pvalues[idx[b]] })
	reject := make([]bool, n)
	for i := 0; i < n; i++ {
		if pvalues[idx[i]] <= alpha/float64(n-i) {
			reject[idx[i]] = true
		} else {
			break
		}
	}
	return reject
}

// BenjaminiHochberg runs the BH step-up procedure at level q: reject the
// smallest i p-values where i = max{i : p_(i) <= (i/m) q}. Controls FDR at q
// under independence or positive dependence.
func BenjaminiHochberg(pvalues []float64, q float64) []bool {
	m := float64(len(pvalues))
	if m == 0 {
		return nil
	}
	return stepUp(pvalues, func(i int) float64 { return float64(i) / m * q })
}

// BenjaminiYekutieli runs the BY step-up procedure at level beta with an
// explicit total hypothesis count mTotal (paper Theorem 5): reject the
// smallest ell p-values where
//
//	ell = max{ i : p_(i) <= (i / (m * H(m))) * beta },
//
// which controls FDR at beta under arbitrary dependence. mTotal <= 0
// defaults to len(pvalues). Procedure 1 passes mTotal = C(n, k) — the
// hypotheses whose p-values were never computed are implicitly non-rejected,
// which is conservative and exactly what the paper prescribes.
func BenjaminiYekutieli(pvalues []float64, beta float64, mTotal float64) []bool {
	m := mTotal
	if m <= 0 {
		m = float64(len(pvalues))
	}
	if m == 0 {
		return make([]bool, len(pvalues))
	}
	denom := m * Harmonic(m)
	return stepUp(pvalues, func(i int) float64 { return float64(i) / denom * beta })
}

// BYThreshold returns the p-value rejection threshold that the BY procedure
// used for its ell-th rejection; diagnostic for reports.
func BYThreshold(ell int, beta float64, mTotal float64) float64 {
	if mTotal <= 0 || ell <= 0 {
		return 0
	}
	return float64(ell) / (mTotal * Harmonic(mTotal)) * beta
}

// EmpiricalFDR computes V/R given a rejection mask and ground-truth null
// indicators (isNull[i] true when hypothesis i is a true null). Returns 0
// when nothing was rejected, matching the FDR convention.
func EmpiricalFDR(reject []bool, isNull []bool) float64 {
	v, r := 0, 0
	for i, rej := range reject {
		if !rej {
			continue
		}
		r++
		if isNull[i] {
			v++
		}
	}
	if r == 0 {
		return 0
	}
	return float64(v) / float64(r)
}

// Power computes the fraction of false nulls that were rejected.
func Power(reject []bool, isNull []bool) float64 {
	caught, total := 0, 0
	for i, null := range isNull {
		if null {
			continue
		}
		total++
		if reject[i] {
			caught++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(caught) / float64(total)
}

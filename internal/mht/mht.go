// Package mht implements the multiple hypothesis testing corrections the
// significance pipeline selects between:
//
//   - Bonferroni and Holm, the classical FWER procedures (Holm is the
//     uniformly more powerful step-down refinement);
//   - Benjamini-Hochberg and Benjamini-Yekutieli, the FDR step-up
//     procedures — Benjamini-Yekutieli is the paper's Theorem 5 and the
//     default engine of Procedure 1, valid under arbitrary dependence;
//   - Westfall-Young, the resampling-based min-p step-down procedure,
//     whose null distribution is the per-replicate minimum p-value that
//     montecarlo.MineRange collects while Algorithm 1's replicates are
//     mined (Config.CollectMinPs).
//
// Two API shapes coexist. The mask functions (Bonferroni, Holm,
// BenjaminiHochberg, BenjaminiYekutieli) answer "which hypotheses does this
// procedure reject at this level" directly. The adjusted-p functions
// (BonferroniAdjust, HolmAdjust, WestfallYoung) instead return one adjusted
// p-value per hypothesis — the smallest level at which the procedure would
// reject it — which composes with any downstream threshold via
// RejectAdjusted and is what reports should carry: an adjusted p-value is
// interpretable without knowing the procedure's bookkeeping.
package mht

import (
	"math"
	"sort"
)

// eulerMascheroni is the gamma constant of the harmonic asymptotic.
const eulerMascheroni = 0.5772156649015328606

// Harmonic returns H(m) = sum_{j=1..m} 1/j. Procedure 1 tests m = C(n, k)
// hypotheses — far beyond exact summation — so values above the cutoff use
// the asymptotic H(m) = ln m + gamma + 1/(2m) - 1/(12m^2), whose error is
// O(m^-4).
func Harmonic(m float64) float64 {
	if m < 1 {
		return 0
	}
	const exactCutoff = 1 << 20
	if m <= exactCutoff {
		n := int(m)
		s := 0.0
		for j := 1; j <= n; j++ {
			s += 1 / float64(j)
		}
		return s
	}
	return math.Log(m) + eulerMascheroni + 1/(2*m) - 1/(12*m*m)
}

// stepUp runs a generic step-up procedure: find the largest i (1-based on
// the sorted p-values) with p_(i) <= threshold(i), and reject hypotheses
// 1..i. Returns the rejection mask aligned with the input order.
func stepUp(pvalues []float64, threshold func(i int) float64) []bool {
	n := len(pvalues)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pvalues[idx[a]] < pvalues[idx[b]] })
	cut := 0 // number of rejections
	for i := n; i >= 1; i-- {
		if pvalues[idx[i-1]] <= threshold(i) {
			cut = i
			break
		}
	}
	reject := make([]bool, n)
	for i := 0; i < cut; i++ {
		reject[idx[i]] = true
	}
	return reject
}

// Bonferroni rejects hypothesis i when p_i <= alpha/m, controlling the
// family-wise error rate (the probability of even one false rejection) at
// alpha under arbitrary dependence. Returns the rejection mask aligned with
// the input order. m defaults to len(pvalues) when mTotal <= 0; pass the
// full hypothesis count (Procedure 1 passes C(n, k)) when only a subset of
// p-values was computed — the uncomputed hypotheses are implicitly
// non-rejected, which is conservative.
func Bonferroni(pvalues []float64, alpha float64, mTotal float64) []bool {
	m := mTotal
	if m <= 0 {
		m = float64(len(pvalues))
	}
	reject := make([]bool, len(pvalues))
	if m == 0 {
		return reject
	}
	thr := alpha / m
	for i, p := range pvalues {
		reject[i] = p <= thr
	}
	return reject
}

// Holm is the step-down refinement of Bonferroni: the sorted p-values
// p_(1) <= ... <= p_(m) are compared against alpha/(m-i+1) in order,
// stopping at the first failure, and hypotheses before the stopping point
// are rejected. Returns the rejection mask aligned with the input order.
// Uniformly more powerful than Bonferroni with the same FWER guarantee
// under arbitrary dependence; here m is len(pvalues) — use HolmAdjust with
// an explicit mTotal when only a subset of the family was computed.
func Holm(pvalues []float64, alpha float64) []bool {
	n := len(pvalues)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pvalues[idx[a]] < pvalues[idx[b]] })
	reject := make([]bool, n)
	for i := 0; i < n; i++ {
		if pvalues[idx[i]] <= alpha/float64(n-i) {
			reject[idx[i]] = true
		} else {
			break
		}
	}
	return reject
}

// BenjaminiHochberg runs the BH step-up procedure at level q: reject the
// smallest i p-values where i = max{i : p_(i) <= (i/m) q}, with
// m = len(pvalues). Returns the rejection mask aligned with the input
// order. Controls the false discovery rate (expected fraction of false
// rejections among all rejections) at q under independence or positive
// regression dependence; itemset supports are arbitrarily dependent, which
// is why Procedure 1 defaults to BenjaminiYekutieli instead.
func BenjaminiHochberg(pvalues []float64, q float64) []bool {
	m := float64(len(pvalues))
	if m == 0 {
		return nil
	}
	return stepUp(pvalues, func(i int) float64 { return float64(i) / m * q })
}

// BenjaminiYekutieli runs the BY step-up procedure at level beta with an
// explicit total hypothesis count mTotal (paper Theorem 5): reject the
// smallest ell p-values where
//
//	ell = max{ i : p_(i) <= (i / (m * H(m))) * beta },
//
// which controls FDR at beta under arbitrary dependence. mTotal <= 0
// defaults to len(pvalues). Procedure 1 passes mTotal = C(n, k) — the
// hypotheses whose p-values were never computed are implicitly non-rejected,
// which is conservative and exactly what the paper prescribes.
func BenjaminiYekutieli(pvalues []float64, beta float64, mTotal float64) []bool {
	m := mTotal
	if m <= 0 {
		m = float64(len(pvalues))
	}
	if m == 0 {
		return make([]bool, len(pvalues))
	}
	denom := m * Harmonic(m)
	return stepUp(pvalues, func(i int) float64 { return float64(i) / denom * beta })
}

// BYThreshold returns the p-value rejection threshold that the BY procedure
// used for its ell-th rejection; diagnostic for reports.
func BYThreshold(ell int, beta float64, mTotal float64) float64 {
	if mTotal <= 0 || ell <= 0 {
		return 0
	}
	return float64(ell) / (mTotal * Harmonic(mTotal)) * beta
}

// BonferroniAdjust returns the Bonferroni adjusted p-values
// min(1, m * p_i), aligned with the input order: hypothesis i is rejected
// at FWER level alpha exactly when the adjusted value is <= alpha
// (RejectAdjusted). m defaults to len(pvalues) when mTotal <= 0; pass the
// full hypothesis count when only a subset of the family was computed.
func BonferroniAdjust(pvalues []float64, mTotal float64) []float64 {
	m := mTotal
	if m <= 0 {
		m = float64(len(pvalues))
	}
	out := make([]float64, len(pvalues))
	for i, p := range pvalues {
		out[i] = math.Min(1, m*p)
	}
	return out
}

// HolmAdjust returns the Holm step-down adjusted p-values, aligned with the
// input order: with p_(1) <= ... <= p_(n) the sorted inputs, the i-th order
// statistic is adjusted to
//
//	p~_(i) = min(1, max(p~_(i-1), (m - i + 1) * p_(i))),
//
// whose running maximum enforces the monotonicity that makes the step-down
// procedure coherent (a hypothesis can never be rejected while one with a
// smaller p-value is not). Rejecting p~ <= alpha reproduces Holm exactly
// and controls FWER at alpha under arbitrary dependence.
//
// mTotal <= 0 defaults to len(pvalues); pass the full hypothesis count when
// only a subset of the family was computed (Procedure 1 passes C(n, k), at
// which scale Holm's (m - i + 1) multiplier is indistinguishable from
// Bonferroni's m — the step-down refinement only pays off when the rejected
// fraction of the family is non-negligible). A multiplier that would drop
// below 1 (possible when mTotal < len(pvalues)) is clamped to 1.
func HolmAdjust(pvalues []float64, mTotal float64) []float64 {
	n := len(pvalues)
	m := mTotal
	if m <= 0 {
		m = float64(n)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pvalues[idx[a]] < pvalues[idx[b]] })
	out := make([]float64, n)
	running := 0.0
	for i := 0; i < n; i++ {
		mult := m - float64(i)
		if mult < 1 {
			mult = 1
		}
		adj := mult * pvalues[idx[i]]
		if adj < running {
			adj = running
		}
		if adj > 1 {
			adj = 1
		}
		running = adj
		out[idx[i]] = adj
	}
	return out
}

// WestfallYoung returns the resampling-based min-p adjusted p-values,
// aligned with the input order. nullMin holds the null distribution of the
// family's minimum p-value: one value per Monte Carlo replicate, each the
// smallest marginal p-value any hypothesis attained in that replicate (the
// per-replicate statistic montecarlo collects under Config.CollectMinPs,
// identically for the independence and swap null models). With Delta =
// len(nullMin) replicates, the i-th order statistic of the observed
// p-values is adjusted to
//
//	p~_(i) = max(p~_(i-1), (1 + #{r : nullMin[r] <= p_(i)}) / (Delta + 1)),
//
// the empirical probability that a null dataset's best hypothesis beats
// p_(i), with the +1 smoothing that keeps a resampled p-value valid and
// never zero (Phipson & Smyth 2010), and a running maximum enforcing
// step-down monotonicity. Rejecting p~ <= alpha controls FWER at about
// alpha — and FWER control implies FDR control at the same level, so the
// procedure slots directly into Procedure 1's beta budget.
//
// Unlike Bonferroni/Holm/BY, no hypothesis count enters: the resampled
// minimum already reflects the joint distribution of every statistic the
// replicates could produce, which is exactly why Westfall-Young recovers
// the power that counting-based corrections give up when tests are strongly
// dependent (itemset supports are: overlapping itemsets share items). An
// empty nullMin adjusts everything to 1 (no evidence, nothing rejectable).
func WestfallYoung(pvalues, nullMin []float64) []float64 {
	n := len(pvalues)
	out := make([]float64, n)
	delta := len(nullMin)
	sortedMin := append([]float64(nil), nullMin...)
	sort.Float64s(sortedMin)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pvalues[idx[a]] < pvalues[idx[b]] })
	running := 0.0
	for i := 0; i < n; i++ {
		p := pvalues[idx[i]]
		cnt := sort.Search(delta, func(j int) bool { return sortedMin[j] > p })
		adj := float64(1+cnt) / float64(delta+1)
		if adj < running {
			adj = running
		}
		running = adj
		out[idx[i]] = adj
	}
	return out
}

// RejectAdjusted converts adjusted p-values into a rejection mask at level
// alpha: reject[i] = adjusted[i] <= alpha. Because every *Adjust function
// returns monotone-coherent values, the mask is always downward closed in
// the raw p-value order.
func RejectAdjusted(adjusted []float64, alpha float64) []bool {
	reject := make([]bool, len(adjusted))
	for i, a := range adjusted {
		reject[i] = a <= alpha
	}
	return reject
}

// EmpiricalFDR computes V/R — the realized fraction of false rejections —
// given a rejection mask and ground-truth null indicators (isNull[i] true
// when hypothesis i is a true null). It is the simulation-side check that a
// procedure's FDR guarantee holds: averaging EmpiricalFDR over independent
// trials estimates the procedure's actual FDR. Returns 0 when nothing was
// rejected, matching the FDR convention E[V/max(R,1)].
func EmpiricalFDR(reject []bool, isNull []bool) float64 {
	v, r := 0, 0
	for i, rej := range reject {
		if !rej {
			continue
		}
		r++
		if isNull[i] {
			v++
		}
	}
	if r == 0 {
		return 0
	}
	return float64(v) / float64(r)
}

// Power computes the fraction of false nulls (true signals) that were
// rejected — the procedure's sensitivity in a simulation with known ground
// truth, the natural companion to EmpiricalFDR. Returns 0 when the ground
// truth contains no signals.
func Power(reject []bool, isNull []bool) float64 {
	caught, total := 0, 0
	for i, null := range isNull {
		if null {
			continue
		}
		total++
		if reject[i] {
			caught++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(caught) / float64(total)
}

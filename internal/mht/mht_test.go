package mht

import (
	"math"
	"testing"

	"sigfim/internal/stats"
)

func TestHarmonicExactSmall(t *testing.T) {
	want := 0.0
	for m := 1; m <= 1000; m++ {
		want += 1 / float64(m)
		if got := Harmonic(float64(m)); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Harmonic(%d) = %v, want %v", m, got, want)
		}
	}
}

func TestHarmonicAsymptoticContinuity(t *testing.T) {
	// The asymptotic branch must agree with exact summation at the cutoff.
	m := float64(1 << 20)
	exact := Harmonic(m)
	asym := math.Log(m+1) + eulerMascheroni + 1/(2*(m+1)) - 1/(12*(m+1)*(m+1)) - 1/(m+1)
	if math.Abs(exact-asym) > 1e-9 {
		t.Errorf("harmonic branches disagree at cutoff: %v vs %v", exact, asym)
	}
	if Harmonic(0.5) != 0 {
		t.Error("Harmonic below 1 should be 0")
	}
}

func TestBonferroni(t *testing.T) {
	p := []float64{0.001, 0.02, 0.04, 0.9}
	got := Bonferroni(p, 0.05, 0)
	want := []bool{true, false, false, false} // threshold 0.0125
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Bonferroni = %v, want %v", got, want)
		}
	}
	// Explicit larger m tightens the threshold.
	got = Bonferroni(p, 0.05, 100)
	if got[0] != false {
		t.Error("m=100 should reject nothing at p=0.001? threshold 5e-4")
	}
}

func TestHolmDominatesBonferroni(t *testing.T) {
	r := stats.NewRNG(5)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(20)
		p := make([]float64, n)
		for i := range p {
			p[i] = r.Float64()
			if r.Bernoulli(0.3) {
				p[i] *= 1e-4 // sprinkle signals
			}
		}
		bon := Bonferroni(p, 0.05, 0)
		holm := Holm(p, 0.05)
		for i := range p {
			if bon[i] && !holm[i] {
				t.Fatalf("Holm rejected less than Bonferroni at %v", p)
			}
		}
	}
}

func TestBHKnownExample(t *testing.T) {
	// Worked example: m=10, q=0.05; thresholds 0.005*i. Largest i with
	// p_(i) <= 0.005i is i=2 (0.008 <= 0.010); i>=3 all fail.
	p := []float64{0.001, 0.008, 0.039, 0.041, 0.042, 0.06, 0.074, 0.205, 0.212, 0.216}
	got := BenjaminiHochberg(p, 0.05)
	wantRejected := 2
	count := 0
	for _, b := range got {
		if b {
			count++
		}
	}
	if count != wantRejected {
		t.Fatalf("BH rejected %d, want %d", count, wantRejected)
	}
	for i := 0; i < wantRejected; i++ {
		if !got[i] {
			t.Fatalf("BH should reject the %d smallest: %v", wantRejected, got)
		}
	}
}

func TestBYMoreConservativeThanBH(t *testing.T) {
	r := stats.NewRNG(6)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(30)
		p := make([]float64, n)
		for i := range p {
			p[i] = r.Float64()
			if r.Bernoulli(0.3) {
				p[i] *= 1e-5
			}
		}
		bh := BenjaminiHochberg(p, 0.05)
		by := BenjaminiYekutieli(p, 0.05, 0)
		for i := range p {
			if by[i] && !bh[i] {
				t.Fatalf("BY rejected more than BH")
			}
		}
	}
}

func TestBYExplicitM(t *testing.T) {
	// With a huge external m, only extremely small p-values survive.
	p := []float64{1e-20, 1e-3, 0.01}
	m := 1e15
	got := BenjaminiYekutieli(p, 0.05, m)
	if !got[0] || got[1] || got[2] {
		t.Fatalf("BY with m=1e15: %v", got)
	}
	thr := BYThreshold(1, 0.05, m)
	if thr <= 0 || thr > 1e-15 {
		t.Errorf("BY threshold = %v", thr)
	}
	if BYThreshold(0, 0.05, m) != 0 || BYThreshold(1, 0.05, 0) != 0 {
		t.Error("degenerate thresholds should be 0")
	}
}

func TestStepUpRejectsPrefixOfSorted(t *testing.T) {
	// Any step-up output must be a prefix of the sorted p-values: if p_i is
	// rejected then every p_j <= p_i is rejected too.
	r := stats.NewRNG(7)
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(40)
		p := make([]float64, n)
		for i := range p {
			p[i] = r.Float64()
		}
		for _, mask := range [][]bool{
			BenjaminiHochberg(p, 0.2),
			BenjaminiYekutieli(p, 0.2, 0),
		} {
			for i := range p {
				if !mask[i] {
					continue
				}
				for j := range p {
					if p[j] <= p[i] && !mask[j] {
						t.Fatalf("rejection set not downward closed")
					}
				}
			}
		}
	}
}

func TestBHControlsFDRSimulation(t *testing.T) {
	// 60% true nulls with Uniform p-values, 40% alternatives with tiny
	// p-values; the average empirical FDR over trials must be <= q (with
	// slack for noise).
	r := stats.NewRNG(8)
	const trials = 2000
	const n = 50
	q := 0.1
	sumFDR := 0.0
	for trial := 0; trial < trials; trial++ {
		p := make([]float64, n)
		isNull := make([]bool, n)
		for i := range p {
			if i < 30 {
				isNull[i] = true
				p[i] = r.Float64()
			} else {
				p[i] = r.Float64() * 1e-4
			}
		}
		sumFDR += EmpiricalFDR(BenjaminiHochberg(p, q), isNull)
	}
	avg := sumFDR / trials
	if avg > q*1.15 {
		t.Errorf("BH empirical FDR %v exceeds q=%v", avg, q)
	}
}

func TestBYControlsFDRSimulation(t *testing.T) {
	r := stats.NewRNG(9)
	const trials = 2000
	const n = 50
	beta := 0.1
	sumFDR := 0.0
	for trial := 0; trial < trials; trial++ {
		p := make([]float64, n)
		isNull := make([]bool, n)
		for i := range p {
			if i < 30 {
				isNull[i] = true
				p[i] = r.Float64()
			} else {
				p[i] = r.Float64() * 1e-4
			}
		}
		sumFDR += EmpiricalFDR(BenjaminiYekutieli(p, beta, 0), isNull)
	}
	avg := sumFDR / trials
	if avg > beta*1.15 {
		t.Errorf("BY empirical FDR %v exceeds beta=%v", avg, beta)
	}
}

func TestEmpiricalFDRAndPower(t *testing.T) {
	reject := []bool{true, true, false, false}
	isNull := []bool{true, false, false, true}
	if got := EmpiricalFDR(reject, isNull); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("FDR = %v", got)
	}
	if got := Power(reject, isNull); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Power = %v", got)
	}
	if EmpiricalFDR([]bool{false}, []bool{true}) != 0 {
		t.Error("no rejections should give FDR 0")
	}
	if Power([]bool{false}, []bool{true}) != 0 {
		t.Error("no alternatives should give power 0")
	}
}

func TestBonferroniAdjust(t *testing.T) {
	p := []float64{0.001, 0.02, 0.5}
	adj := BonferroniAdjust(p, 0) // m = 3
	want := []float64{0.003, 0.06, 1}
	for i := range want {
		if math.Abs(adj[i]-want[i]) > 1e-12 {
			t.Fatalf("BonferroniAdjust = %v, want %v", adj, want)
		}
	}
	// Explicit m scales the adjustment; rejection must match the mask form.
	adj = BonferroniAdjust(p, 100)
	mask := Bonferroni(p, 0.05, 100)
	for i := range p {
		if (adj[i] <= 0.05) != mask[i] {
			t.Fatalf("BonferroniAdjust disagrees with Bonferroni at %d: adj=%v mask=%v", i, adj, mask)
		}
	}
}

func TestHolmAdjustMatchesHolmMask(t *testing.T) {
	// With mTotal = len(p), rejecting adjusted <= alpha must reproduce the
	// Holm mask exactly, across random inputs and levels.
	r := stats.NewRNG(11)
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(25)
		p := make([]float64, n)
		for i := range p {
			p[i] = r.Float64()
			if r.Bernoulli(0.4) {
				p[i] *= 1e-4
			}
		}
		alpha := 0.01 + r.Float64()*0.2
		adj := HolmAdjust(p, 0)
		mask := Holm(p, alpha)
		for i := range p {
			if (adj[i] <= alpha) != mask[i] {
				t.Fatalf("HolmAdjust(<=%v) disagrees with Holm at %v", alpha, p)
			}
		}
	}
}

func TestHolmAdjustSmallMTotal(t *testing.T) {
	// mTotal smaller than len(pvalues): the (m - i + 1) multiplier would go
	// nonpositive for the tail order statistics and must clamp to 1, so the
	// adjusted value never drops below the raw p-value.
	p := []float64{0.5, 0.01, 0.2, 0.9, 0.03}
	adj := HolmAdjust(p, 2)
	for i := range p {
		if adj[i] < p[i] {
			t.Fatalf("adjusted %v below raw %v at %d", adj[i], p[i], i)
		}
		if adj[i] > 1 {
			t.Fatalf("adjusted %v above 1", adj[i])
		}
	}
}

func TestWestfallYoungKnownCounts(t *testing.T) {
	// Hand-checked: Delta = 4 null minima {0.01, 0.05, 0.2, 0.8}.
	// p=0.005 -> count 0 -> 1/5; p=0.05 -> count 2 -> 3/5 (ties at the
	// observed value count, <=); p=0.9 -> count 4 -> 5/5.
	nullMin := []float64{0.2, 0.01, 0.8, 0.05}
	p := []float64{0.9, 0.005, 0.05}
	adj := WestfallYoung(p, nullMin)
	want := []float64{1.0, 0.2, 0.6}
	for i := range want {
		if math.Abs(adj[i]-want[i]) > 1e-12 {
			t.Fatalf("WestfallYoung = %v, want %v", adj, want)
		}
	}
}

func TestWestfallYoungStepDownMonotone(t *testing.T) {
	// The adjusted p-values must be monotone in the raw p-values: a smaller
	// raw p never gets a larger adjustment. This is the step-down coherence
	// the running maximum enforces.
	r := stats.NewRNG(12)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(30)
		delta := r.Intn(50)
		p := make([]float64, n)
		for i := range p {
			p[i] = r.Float64()
		}
		nullMin := make([]float64, delta)
		for i := range nullMin {
			nullMin[i] = r.Float64()
		}
		for _, adj := range [][]float64{
			WestfallYoung(p, nullMin),
			HolmAdjust(p, 0),
			BonferroniAdjust(p, 0),
		} {
			for i := range p {
				if adj[i] < 0 || adj[i] > 1 {
					t.Fatalf("adjusted p %v out of [0,1]", adj[i])
				}
				for j := range p {
					if p[i] < p[j] && adj[i] > adj[j] {
						t.Fatalf("monotonicity violated: p %v < %v but adj %v > %v",
							p[i], p[j], adj[i], adj[j])
					}
				}
			}
		}
	}
}

func TestWestfallYoungAllTies(t *testing.T) {
	// Every observed p-value identical: all share one count, hence one
	// adjusted value, and RejectAdjusted is all-or-nothing.
	p := []float64{0.03, 0.03, 0.03, 0.03}
	nullMin := []float64{0.01, 0.02, 0.5, 0.5, 0.9}
	adj := WestfallYoung(p, nullMin)
	for i := 1; i < len(adj); i++ {
		if adj[i] != adj[0] {
			t.Fatalf("tied p-values adjusted differently: %v", adj)
		}
	}
	// count{<=0.03} = 2 -> (1+2)/(5+1) = 0.5.
	if math.Abs(adj[0]-0.5) > 1e-12 {
		t.Fatalf("tied adjustment = %v, want 0.5", adj[0])
	}
	mask := RejectAdjusted(adj, 0.5)
	for _, b := range mask {
		if !b {
			t.Fatalf("RejectAdjusted at the exact level should reject: %v", mask)
		}
	}
}

func TestWestfallYoungEmptyInputs(t *testing.T) {
	// Empty p-value slice: empty output, any null distribution.
	if got := WestfallYoung(nil, []float64{0.1, 0.2}); len(got) != 0 {
		t.Fatalf("WestfallYoung(nil, ...) = %v", got)
	}
	// Empty null distribution: everything adjusts to exactly 1.
	adj := WestfallYoung([]float64{0.0001, 0.5}, nil)
	for _, a := range adj {
		if a != 1 {
			t.Fatalf("empty null distribution should adjust to 1, got %v", adj)
		}
	}
	if got := RejectAdjusted(nil, 0.05); len(got) != 0 {
		t.Fatalf("RejectAdjusted(nil) = %v", got)
	}
	if got := HolmAdjust(nil, 0); len(got) != 0 {
		t.Fatalf("HolmAdjust(nil) = %v", got)
	}
	if got := BonferroniAdjust(nil, 0); len(got) != 0 {
		t.Fatalf("BonferroniAdjust(nil) = %v", got)
	}
}

func TestWestfallYoungNeverZeroAndValid(t *testing.T) {
	// The +1 smoothing keeps every adjusted p-value strictly positive and at
	// least 1/(Delta+1), even for a p-value below every null minimum.
	nullMin := []float64{0.3, 0.4, 0.5}
	adj := WestfallYoung([]float64{0}, nullMin)
	if adj[0] != 0.25 {
		t.Fatalf("floor adjustment = %v, want 1/(Delta+1) = 0.25", adj[0])
	}
}

func TestEmptyInputs(t *testing.T) {
	if got := BenjaminiHochberg(nil, 0.05); got != nil {
		t.Error("BH(nil) should be nil")
	}
	if got := BenjaminiYekutieli(nil, 0.05, 0); len(got) != 0 {
		t.Error("BY(nil) should be empty")
	}
	if got := Bonferroni(nil, 0.05, 0); len(got) != 0 {
		t.Error("Bonferroni(nil) should be empty")
	}
	if got := Holm(nil, 0.05); len(got) != 0 {
		t.Error("Holm(nil) should be empty")
	}
}

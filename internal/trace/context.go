package trace

import (
	"context"
	"time"
)

// ctxKey carries the recorder plus the ID of the span currently open in
// this context branch (0 = no enclosing span).
type ctxKey struct{}

type ctxVal struct {
	rec    *Recorder
	spanID int
}

// NewContext returns ctx carrying rec as the active recorder. Spans
// started from the returned context are roots until Start nests them.
func NewContext(ctx context.Context, rec *Recorder) context.Context {
	if rec == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{rec: rec})
}

// FromContext returns the recorder in ctx, or nil.
func FromContext(ctx context.Context) *Recorder {
	r, _ := fromContext(ctx)
	return r
}

func fromContext(ctx context.Context) (*Recorder, int) {
	v, ok := ctx.Value(ctxKey{}).(ctxVal)
	if !ok {
		return nil, 0
	}
	return v.rec, v.spanID
}

// Enabled reports whether ctx carries a recorder. Hot paths may use it to
// skip measurement work entirely when no one is listening.
func Enabled(ctx context.Context) bool {
	return FromContext(ctx) != nil
}

// Start opens a span named name as a child of the span current in ctx and
// returns a context in which the new span is current. When ctx carries no
// recorder the original context and a nil handle come back, and the nil
// handle's methods are no-ops.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Active) {
	rec, parent := fromContext(ctx)
	if rec == nil {
		return ctx, nil
	}
	a := &Active{rec: rec, id: rec.startID(), start: time.Now(), name: name, prnt: parent, attrs: attrs}
	return context.WithValue(ctx, ctxKey{}, ctxVal{rec: rec, spanID: a.id}), a
}

// HeaderValue renders the current trace context of ctx for the
// X-Sigfim-Trace header, or "" when ctx carries no recorder.
func HeaderValue(ctx context.Context) string {
	rec, spanID := fromContext(ctx)
	if rec == nil {
		return ""
	}
	return FormatHeader(rec.traceID, spanID)
}

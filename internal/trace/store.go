package trace

import (
	"container/list"
	"sync"
)

// Store is a bounded LRU map from job ID to completed Trace. The service
// keeps one to retain the last N job traces; eviction is independent of
// job-record retention, so a trace can be gone while the job's status and
// result are still queryable (and vice versa).
type Store struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	byID     map[string]*list.Element
}

type storeItem struct {
	id string
	tr *Trace
}

// NewStore returns a store retaining up to capacity traces; capacity <= 0
// disables retention (every Put is dropped, every Get misses).
func NewStore(capacity int) *Store {
	return &Store{
		capacity: capacity,
		ll:       list.New(),
		byID:     make(map[string]*list.Element),
	}
}

// Put stores tr under job ID id, evicting the least recently used trace
// when over capacity. Re-putting an ID replaces its trace.
func (s *Store) Put(id string, tr *Trace) {
	if s == nil || s.capacity <= 0 || tr == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byID[id]; ok {
		el.Value.(*storeItem).tr = tr
		s.ll.MoveToFront(el)
		return
	}
	s.byID[id] = s.ll.PushFront(&storeItem{id: id, tr: tr})
	for s.ll.Len() > s.capacity {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.byID, oldest.Value.(*storeItem).id)
	}
}

// Get returns the trace for job id, marking it most recently used.
func (s *Store) Get(id string) (*Trace, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*storeItem).tr, true
}

// Len returns the number of retained traces.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

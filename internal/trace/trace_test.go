package trace

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestStartEndNesting(t *testing.T) {
	rec := NewRecorder("j1")
	ctx := NewContext(context.Background(), rec)

	ctx, root := Start(ctx, "job", String("kind", "smin"))
	cctx, child := Start(ctx, "phase")
	_, grand := Start(cctx, "range", Int("from", 0))
	grand.End(String("outcome", "ok"))
	child.End()
	root.End()

	tr := rec.Snapshot()
	if tr.TraceID == "" || tr.JobID != "j1" {
		t.Fatalf("trace identity = %q/%q", tr.TraceID, tr.JobID)
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(tr.Spans))
	}
	// Snapshot orders by start: job, phase, range.
	byName := map[string]Span{}
	for _, sp := range tr.Spans {
		byName[sp.Name] = sp
	}
	if got := []string{tr.Spans[0].Name, tr.Spans[1].Name, tr.Spans[2].Name}; got[0] != "job" || got[1] != "phase" || got[2] != "range" {
		t.Fatalf("span order = %v", got)
	}
	if byName["job"].Parent != 0 {
		t.Errorf("root parent = %d, want 0", byName["job"].Parent)
	}
	if byName["phase"].Parent != byName["job"].ID {
		t.Errorf("phase parent = %d, want %d", byName["phase"].Parent, byName["job"].ID)
	}
	if byName["range"].Parent != byName["phase"].ID {
		t.Errorf("range parent = %d, want %d", byName["range"].Parent, byName["phase"].ID)
	}
	if len(byName["range"].Attrs) != 2 {
		t.Errorf("range attrs = %v, want from + outcome", byName["range"].Attrs)
	}
}

func TestNilSafety(t *testing.T) {
	ctx := context.Background()
	if Enabled(ctx) {
		t.Fatal("bare context reports tracing enabled")
	}
	ctx2, sp := Start(ctx, "anything")
	if ctx2 != ctx {
		t.Error("Start without recorder should return ctx unchanged")
	}
	sp.Annotate(String("k", "v")) // must not panic
	sp.End()
	Add(ctx, "retro", time.Now(), time.Second)
	if HeaderValue(ctx) != "" {
		t.Errorf("HeaderValue on bare ctx = %q", HeaderValue(ctx))
	}
	var nilRec *Recorder
	if nilRec.TraceID() != "" || nilRec.JobID() != "" || nilRec.Snapshot() != nil {
		t.Error("nil recorder accessors should return zero values")
	}
}

func TestAddRetroactive(t *testing.T) {
	rec := NewRecorder("j")
	ctx := NewContext(context.Background(), rec)
	ctx, root := Start(ctx, "job")
	start := time.Now().Add(-time.Minute)
	Add(ctx, "queued", start, 250*time.Millisecond, String("why", "backlog"))
	root.End()
	tr := rec.Snapshot()
	if len(tr.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(tr.Spans))
	}
	var q Span
	for _, sp := range tr.Spans {
		if sp.Name == "queued" {
			q = sp
		}
	}
	if q.Duration != 250*time.Millisecond || !q.Start.Equal(start) {
		t.Errorf("queued span = %+v", q)
	}
	if q.Parent == 0 {
		t.Error("retroactive span should parent under the current span")
	}
}

// TestRecorderConcurrent hammers one recorder from 8 goroutines; run
// under -race this pins the lock discipline the fabric relies on when
// many ranges record spans at once.
func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder("j")
	base := NewContext(context.Background(), rec)
	ctx, root := Start(base, "job")

	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sctx, sp := Start(ctx, "range", Int("worker", w))
				_ = HeaderValue(sctx)
				sp.Annotate(Int("i", i))
				sp.End(String("outcome", "ok"))
			}
		}(w)
	}
	wg.Wait()
	root.End()

	tr := rec.Snapshot()
	if want := workers*perWorker + 1; len(tr.Spans)+tr.Dropped != want {
		t.Fatalf("spans+dropped = %d+%d, want %d", len(tr.Spans), tr.Dropped, want)
	}
	seen := map[int]bool{}
	for _, sp := range tr.Spans {
		if seen[sp.ID] {
			t.Fatalf("duplicate span ID %d", sp.ID)
		}
		seen[sp.ID] = true
		if sp.Name == "range" && sp.Parent != 1 {
			t.Fatalf("range span parent = %d, want 1", sp.Parent)
		}
	}
}

func TestRecorderSpanCap(t *testing.T) {
	rec := NewRecorder("j")
	ctx := NewContext(context.Background(), rec)
	total := DefaultMaxSpans + 50
	for i := 0; i < total; i++ {
		_, sp := Start(ctx, "s")
		sp.End()
	}
	tr := rec.Snapshot()
	if len(tr.Spans) != DefaultMaxSpans {
		t.Errorf("retained %d spans, want cap %d", len(tr.Spans), DefaultMaxSpans)
	}
	if tr.Dropped != 50 {
		t.Errorf("dropped = %d, want 50", tr.Dropped)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	rec := NewRecorder("j7")
	ctx := NewContext(context.Background(), rec)
	ctx, sp := Start(ctx, "dispatch")
	h := HeaderValue(ctx)
	tid, sid, ok := ParseHeader(h)
	if !ok || tid != rec.TraceID() || sid != 1 {
		t.Fatalf("ParseHeader(%q) = %q,%d,%v", h, tid, sid, ok)
	}
	sp.End()

	for _, bad := range []string{"", "/", "abc", "abc/", "abc/x", "/5", "abc/-1"} {
		if _, _, ok := ParseHeader(bad); ok {
			t.Errorf("ParseHeader(%q) accepted", bad)
		}
	}
}

func TestStoreLRU(t *testing.T) {
	s := NewStore(3)
	put := func(id string) { s.Put(id, &Trace{TraceID: id, JobID: id}) }
	put("a")
	put("b")
	put("c")
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	// Touch "a" so "b" is the LRU victim.
	if _, ok := s.Get("a"); !ok {
		t.Fatal("a missing")
	}
	put("d")
	if _, ok := s.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, id := range []string{"a", "c", "d"} {
		if _, ok := s.Get(id); !ok {
			t.Errorf("%s should survive", id)
		}
	}
	// Re-put replaces in place without growing.
	s.Put("d", &Trace{TraceID: "d2"})
	if tr, _ := s.Get("d"); tr.TraceID != "d2" {
		t.Errorf("re-put did not replace: %q", tr.TraceID)
	}
	if s.Len() != 3 {
		t.Errorf("len after re-put = %d, want 3", s.Len())
	}
}

func TestStoreDisabledAndNil(t *testing.T) {
	s := NewStore(0)
	s.Put("a", &Trace{})
	if _, ok := s.Get("a"); ok {
		t.Error("capacity 0 store retained a trace")
	}
	var nilStore *Store
	nilStore.Put("a", &Trace{})
	if _, ok := nilStore.Get("a"); ok {
		t.Error("nil store returned a trace")
	}
	if nilStore.Len() != 0 {
		t.Error("nil store Len != 0")
	}
}

func TestStoreEvictionOrderIsLRU(t *testing.T) {
	s := NewStore(8)
	for i := 0; i < 24; i++ {
		id := fmt.Sprintf("j%03d", i)
		s.Put(id, &Trace{JobID: id})
	}
	if s.Len() != 8 {
		t.Fatalf("len = %d, want 8", s.Len())
	}
	for i := 0; i < 16; i++ {
		if _, ok := s.Get(fmt.Sprintf("j%03d", i)); ok {
			t.Errorf("old trace j%03d survived", i)
		}
	}
	for i := 16; i < 24; i++ {
		if _, ok := s.Get(fmt.Sprintf("j%03d", i)); !ok {
			t.Errorf("recent trace j%03d evicted", i)
		}
	}
}

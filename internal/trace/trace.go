// Package trace is a dependency-free, in-process tracing subsystem for
// sigfim jobs. A Recorder collects completed Spans (name, attributes,
// start time, duration, parent) into a Trace; the recorder travels down
// through context.Context so every layer of a job — engine, pipeline,
// Monte Carlo phases, per-range fabric dispatches — can annotate the same
// trace without plumbing new parameters through public signatures.
//
// Tracing is pure observation: a recorder never influences scheduling,
// random number generation, or merge order, so report bytes are identical
// with tracing on or off. All operations are nil-safe; code paths record
// spans unconditionally and pay nothing when no recorder is in context.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Header is the HTTP header propagating trace context from a coordinator
// to a worker, formatted "traceID/spanID" (see FormatHeader/ParseHeader).
const Header = "X-Sigfim-Trace"

// JobHeader carries the coordinator's job ID alongside Header so worker
// log lines can be grepped together with the coordinator's by job_id.
const JobHeader = "X-Sigfim-Job"

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// String returns a string-valued attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int returns an integer-valued attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Span is one completed, named interval of a trace. Parent is the ID of
// the enclosing span, or 0 for a root span. IDs are assigned in start
// order, so sorting by ID reconstructs the order work began.
type Span struct {
	ID       int           `json:"id"`
	Parent   int           `json:"parent,omitempty"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Trace is the completed span set of one job.
type Trace struct {
	TraceID string `json:"trace_id"`
	JobID   string `json:"job_id,omitempty"`
	Spans   []Span `json:"spans"`
	// Dropped counts spans discarded after the recorder's span cap was
	// reached; nonzero means the trace is truncated, not that work was lost.
	Dropped int `json:"dropped_spans,omitempty"`
}

// DefaultMaxSpans bounds the spans a single recorder retains. Traces are
// phase- and range-grained, so real jobs sit far below this; the cap is a
// memory backstop, not an expected operating point.
const DefaultMaxSpans = 8192

// Recorder accumulates completed spans for one trace. It is safe for
// concurrent use; recording a span takes one short critical section
// (append under a mutex), cheap next to the work being measured.
type Recorder struct {
	traceID string
	jobID   string

	mu      sync.Mutex
	nextID  int
	spans   []Span
	dropped int
}

// NewRecorder returns a recorder with a fresh random trace ID, tagged
// with the job it traces (may be empty outside the service).
func NewRecorder(jobID string) *Recorder {
	return &Recorder{traceID: newTraceID(), jobID: jobID}
}

func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Trace IDs only need to be distinguishable, not secret; fall
		// back to a process-unique counter if the system RNG is broken.
		return fmt.Sprintf("trace-%d", fallbackID.next())
	}
	return hex.EncodeToString(b[:])
}

var fallbackID counter

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) next() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

// TraceID returns the recorder's trace ID; empty for a nil recorder.
func (r *Recorder) TraceID() string {
	if r == nil {
		return ""
	}
	return r.traceID
}

// JobID returns the job the recorder traces; empty for a nil recorder.
func (r *Recorder) JobID() string {
	if r == nil {
		return ""
	}
	return r.jobID
}

// startID reserves the next span ID.
func (r *Recorder) startID() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	return r.nextID
}

// add records a completed span, dropping it if the recorder is full.
func (r *Recorder) add(sp Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= DefaultMaxSpans {
		r.dropped++
		return
	}
	r.spans = append(r.spans, sp)
}

// Add records an already-timed span as a child of the span current in ctx.
// It is the retroactive form of Start/End, for intervals whose bounds were
// measured before a recorder existed (e.g. queue wait before a job ran).
func Add(ctx context.Context, name string, start time.Time, d time.Duration, attrs ...Attr) {
	r, parent := fromContext(ctx)
	if r == nil {
		return
	}
	r.add(Span{ID: r.startID(), Parent: parent, Name: name, Start: start, Duration: d, Attrs: attrs})
}

// AddRoot records an already-timed root span directly on the recorder,
// for traces built outside a context flow (e.g. cache-hit jobs whose
// "work" completed before any pipeline ran).
func (r *Recorder) AddRoot(name string, start time.Time, d time.Duration, attrs ...Attr) {
	if r == nil {
		return
	}
	r.add(Span{ID: r.startID(), Name: name, Start: start, Duration: d, Attrs: attrs})
}

// Snapshot returns a copy of the trace so far, spans ordered by start
// (ID). The recorder remains usable after a snapshot.
func (r *Recorder) Snapshot() *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	spans := make([]Span, len(r.spans))
	copy(spans, r.spans)
	dropped := r.dropped
	r.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool { return spans[i].ID < spans[j].ID })
	return &Trace{TraceID: r.traceID, JobID: r.jobID, Spans: spans, Dropped: dropped}
}

// Active is a live span handle returned by Start. A nil *Active is valid
// and all its methods are no-ops, so callers never branch on whether
// tracing is enabled.
type Active struct {
	rec   *Recorder
	id    int
	start time.Time
	name  string
	prnt  int
	attrs []Attr
}

// End completes the span, appending any final attributes, and records it.
func (a *Active) End(attrs ...Attr) {
	if a == nil {
		return
	}
	a.rec.add(Span{
		ID:       a.id,
		Parent:   a.prnt,
		Name:     a.name,
		Start:    a.start,
		Duration: time.Since(a.start),
		Attrs:    append(a.attrs, attrs...),
	})
}

// Annotate appends attributes to the span before it ends. Not safe for
// concurrent use with End on the same handle (spans are owned by one
// goroutine; concurrency safety lives in the Recorder).
func (a *Active) Annotate(attrs ...Attr) {
	if a == nil {
		return
	}
	a.attrs = append(a.attrs, attrs...)
}

// FormatHeader renders trace context for the wire: "traceID/spanID".
func FormatHeader(traceID string, spanID int) string {
	return traceID + "/" + strconv.Itoa(spanID)
}

// ParseHeader inverts FormatHeader. ok is false for an empty or
// malformed value.
func ParseHeader(v string) (traceID string, spanID int, ok bool) {
	tid, sid, found := strings.Cut(v, "/")
	if !found || tid == "" {
		return "", 0, false
	}
	n, err := strconv.Atoi(sid)
	if err != nil || n < 0 {
		return "", 0, false
	}
	return tid, n, true
}

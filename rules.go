package sigfim

import "sigfim/internal/rules"

// AssociationRule is a mined rule Antecedent => Consequent with classical
// interestingness measures and an exact significance p-value.
type AssociationRule struct {
	// Antecedent and Consequent partition the rule's itemset.
	Antecedent, Consequent []uint32
	// Support counts transactions containing both sides.
	Support int
	// Confidence is Support / support(Antecedent).
	Confidence float64
	// Lift is Confidence relative to the consequent's base frequency;
	// above 1 means positive association.
	Lift float64
	// PValue is the exact Binomial probability of the observed joint count
	// if the consequent were independent of the antecedent.
	PValue float64
	// FisherP is the one-sided Fisher exact p-value (margins conditioned).
	FisherP float64
}

// RuleOptions configures association rule mining.
type RuleOptions struct {
	// MinSupport is the absolute joint-support threshold (>= 1).
	MinSupport int
	// MinConfidence drops rules below this confidence (0 keeps all).
	MinConfidence float64
	// MaxLen caps the joint itemset size (0 = 4).
	MaxLen int
}

// Rules mines association rules, sorted by ascending p-value.
func (ds *Dataset) Rules(opts RuleOptions) ([]AssociationRule, error) {
	rs, err := rules.Generate(ds.vertical(), rules.Options{
		MinSupport:    opts.MinSupport,
		MinConfidence: opts.MinConfidence,
		MaxLen:        opts.MaxLen,
	})
	if err != nil {
		return nil, err
	}
	return convertRules(rs), nil
}

// SignificantRules mines association rules and keeps only those passing the
// Benjamini-Yekutieli selection at FDR level beta.
func (ds *Dataset) SignificantRules(opts RuleOptions, beta float64) ([]AssociationRule, error) {
	rs, err := rules.Generate(ds.vertical(), rules.Options{
		MinSupport:    opts.MinSupport,
		MinConfidence: opts.MinConfidence,
		MaxLen:        opts.MaxLen,
	})
	if err != nil {
		return nil, err
	}
	return convertRules(rules.SelectSignificant(rs, beta, 0)), nil
}

func convertRules(rs []rules.Rule) []AssociationRule {
	out := make([]AssociationRule, len(rs))
	for i, r := range rs {
		out[i] = AssociationRule{
			Antecedent: r.Antecedent,
			Consequent: r.Consequent,
			Support:    r.Support,
			Confidence: r.Confidence,
			Lift:       r.Lift,
			PValue:     r.PValue,
			FisherP:    r.FisherP,
		}
	}
	return out
}

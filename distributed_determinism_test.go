package sigfim_test

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"sigfim"
	"sigfim/internal/service"
)

// discardLogger silences the services' request logs in test output.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// End-to-end distributed determinism: a coordinator sharding Algorithm 1's
// Monte Carlo replicates across real sigfimd workers (in-process httptest
// servers running the full service stack) must produce byte-identical
// reports to the single-process run — for both null models, any coordinator
// worker count, and with dead workers in the pool. This is the PR's hard
// invariant: the existing golden fixtures pin the single-process path, and
// these tests pin the distributed path to it.

// The tests are external (package sigfim_test) because a sigfim-package test
// importing internal/service would close an import cycle.

// startWorkers boots n sigfimd worker instances with the golden dataset
// registered and returns their base URLs. Each worker is a complete service;
// the coordinator addresses the dataset by content hash.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		srv := service.New(service.Options{Logger: discardLogger()})
		if _, err := srv.Registry().RegisterFile("golden", "testdata/golden_input.dat"); err != nil {
			t.Fatalf("register golden dataset: %v", err)
		}
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		})
		urls[i] = hs.URL
	}
	return urls
}

// deadWorker returns a URL that refuses every connection.
func deadWorker(t *testing.T) string {
	t.Helper()
	hs := httptest.NewServer(nil)
	url := hs.URL
	hs.Close()
	return url
}

func goldenDataset(t *testing.T) *sigfim.Dataset {
	t.Helper()
	d, err := sigfim.OpenFIMI("testdata/golden_input.dat")
	if err != nil {
		t.Fatalf("open golden fixture: %v", err)
	}
	return d
}

// mustJSON marshals a report for byte-level comparison.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDistributedSignificantBitIdentity is the acceptance criterion: a
// coordinator fanning out over two live workers produces byte-identical
// Significant reports to the single-process run, for coordinator worker
// counts 1, 4, and 8, under both the independence and the swap null.
func TestDistributedSignificantBitIdentity(t *testing.T) {
	d := goldenDataset(t)
	workers := startWorkers(t, 2)

	nulls := []struct {
		name string
		cfg  func() *sigfim.Config
	}{
		{"independence", func() *sigfim.Config {
			return &sigfim.Config{Delta: 120, Seed: 9, WithBaseline: true}
		}},
		{"swap", func() *sigfim.Config {
			return &sigfim.Config{Delta: 60, Seed: 9, SwapNull: true}
		}},
	}
	for _, null := range nulls {
		t.Run(null.name, func(t *testing.T) {
			local, err := d.Significant(2, null.cfg())
			if err != nil {
				t.Fatal(err)
			}
			localJSON := mustJSON(t, local)
			for _, w := range []int{1, 4, 8} {
				cfg := null.cfg()
				cfg.Workers = w
				cfg.RemoteWorkers = workers
				dist, err := d.Significant(2, cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if got := mustJSON(t, dist); !reflect.DeepEqual(got, localJSON) {
					t.Fatalf("workers=%d: distributed report differs from single-process report\nlocal: %s\ndist:  %s", w, localJSON, got)
				}
			}
		})
	}
}

// TestDistributedFindSMin pins the smin path (Algorithm 1 alone, always the
// independence null) across the fabric, including a pinned range size.
func TestDistributedFindSMin(t *testing.T) {
	d := goldenDataset(t)
	workers := startWorkers(t, 2)

	local, err := d.FindSMin(2, &sigfim.Config{Delta: 120, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, rangeSize := range []int{0, 1, 13} {
		got, err := d.FindSMin(2, &sigfim.Config{
			Delta: 120, Seed: 9,
			RemoteWorkers: workers, RemoteRangeSize: rangeSize,
		})
		if err != nil {
			t.Fatalf("rangeSize=%d: %v", rangeSize, err)
		}
		if got != local {
			t.Fatalf("rangeSize=%d: distributed s_min = %d, single-process = %d", rangeSize, got, local)
		}
	}
}

// TestDistributedWorkerFailure: ranges landing on a dead worker must be
// retried on the live one (and, with every worker dead, mined locally
// through the identical code path) without changing a byte of the report.
func TestDistributedWorkerFailure(t *testing.T) {
	d := goldenDataset(t)
	local, err := d.Significant(2, &sigfim.Config{Delta: 120, Seed: 9, WithBaseline: true})
	if err != nil {
		t.Fatal(err)
	}
	localJSON := mustJSON(t, local)

	live := startWorkers(t, 1)
	pools := map[string][]string{
		"dead worker in pool": {deadWorker(t), live[0]},
		"all workers dead":    {deadWorker(t), deadWorker(t)},
	}
	for name, pool := range pools {
		t.Run(name, func(t *testing.T) {
			dist, err := d.Significant(2, &sigfim.Config{
				Delta: 120, Seed: 9, WithBaseline: true,
				RemoteWorkers: pool,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := mustJSON(t, dist); !reflect.DeepEqual(got, localJSON) {
				t.Fatalf("report with %s differs from single-process report", name)
			}
		})
	}
}

// TestCoordinatorServiceBitIdentity drives the full service stack: a
// coordinator sigfimd (Options.RemoteWorkers) executes a job by sharding
// across two worker sigfimds, and its stored result bytes equal those of an
// identical job on a plain local sigfimd. This also pins that RemoteWorkers
// stays out of the cache key — the coordinator serves the same bytes a local
// server would.
func TestCoordinatorServiceBitIdentity(t *testing.T) {
	workers := startWorkers(t, 2)

	runJob := func(opts service.Options) []byte {
		t.Helper()
		srv := service.New(opts)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
		if _, err := srv.Registry().RegisterFile("golden", "testdata/golden_input.dat"); err != nil {
			t.Fatal(err)
		}
		st, err := srv.Engine().Submit(service.JobRequest{
			Dataset: "golden", Kind: service.KindSignificant, K: 2,
			Config: &sigfim.Config{Delta: 120, Seed: 9},
		})
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(60 * time.Second)
		for !st.State.Terminal() {
			if time.Now().After(deadline) {
				t.Fatalf("job stuck in state %s", st.State)
			}
			time.Sleep(20 * time.Millisecond)
			if st, err = srv.Engine().Get(st.ID); err != nil {
				t.Fatal(err)
			}
		}
		if st.State != service.StateDone {
			t.Fatalf("job ended %s: %s", st.State, st.Error)
		}
		return st.Result
	}

	localResult := runJob(service.Options{Logger: discardLogger()})
	coordResult := runJob(service.Options{Logger: discardLogger(), RemoteWorkers: workers})
	if !reflect.DeepEqual(coordResult, localResult) {
		t.Fatalf("coordinator job result differs from local job result\nlocal: %s\ncoord: %s", localResult, coordResult)
	}
}

// TestMineReplicateRangeHashCheck: the worker entry point refuses a request
// addressed to a different dataset instead of silently mining the wrong one.
func TestMineReplicateRangeHashCheck(t *testing.T) {
	d := goldenDataset(t)
	_, err := d.MineReplicateRange(context.Background(), sigfim.PartialRequest{
		DatasetHash: "not-the-hash",
		From:        0, To: 1, K: 2, Floor: 2, Seeds: []uint64{42},
	})
	if err == nil {
		t.Fatal("hash mismatch accepted")
	}
}

package sigfim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sigfim"
	"sigfim/internal/service"
)

// discardLogger silences the services' request logs in test output.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// End-to-end distributed determinism: a coordinator sharding Algorithm 1's
// Monte Carlo replicates across real sigfimd workers (in-process httptest
// servers running the full service stack) must produce byte-identical
// reports to the single-process run — for both null models, any coordinator
// worker count, and with dead workers in the pool. This is the PR's hard
// invariant: the existing golden fixtures pin the single-process path, and
// these tests pin the distributed path to it.

// The tests are external (package sigfim_test) because a sigfim-package test
// importing internal/service would close an import cycle.

// startWorkers boots n sigfimd worker instances with the golden dataset
// registered and returns their base URLs. Each worker is a complete service;
// the coordinator addresses the dataset by content hash.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		srv := service.New(service.Options{Logger: discardLogger()})
		if _, err := srv.Registry().RegisterFile("golden", "testdata/golden_input.dat"); err != nil {
			t.Fatalf("register golden dataset: %v", err)
		}
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		})
		urls[i] = hs.URL
	}
	return urls
}

// deadWorker returns a URL that refuses every connection.
func deadWorker(t *testing.T) string {
	t.Helper()
	hs := httptest.NewServer(nil)
	url := hs.URL
	hs.Close()
	return url
}

func goldenDataset(t *testing.T) *sigfim.Dataset {
	t.Helper()
	d, err := sigfim.OpenFIMI("testdata/golden_input.dat")
	if err != nil {
		t.Fatalf("open golden fixture: %v", err)
	}
	return d
}

// mustJSON marshals a report for byte-level comparison.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDistributedSignificantBitIdentity is the acceptance criterion: a
// coordinator fanning out over two live workers produces byte-identical
// Significant reports to the single-process run, for coordinator worker
// counts 1, 4, and 8, under both the independence and the swap null.
func TestDistributedSignificantBitIdentity(t *testing.T) {
	d := goldenDataset(t)
	workers := startWorkers(t, 2)

	nulls := []struct {
		name string
		cfg  func() *sigfim.Config
	}{
		{"independence", func() *sigfim.Config {
			return &sigfim.Config{Delta: 120, Seed: 9, WithBaseline: true}
		}},
		{"swap", func() *sigfim.Config {
			return &sigfim.Config{Delta: 60, Seed: 9, SwapNull: true}
		}},
	}
	for _, null := range nulls {
		t.Run(null.name, func(t *testing.T) {
			local, err := d.Significant(2, null.cfg())
			if err != nil {
				t.Fatal(err)
			}
			localJSON := mustJSON(t, local)
			for _, w := range []int{1, 4, 8} {
				cfg := null.cfg()
				cfg.Workers = w
				cfg.RemoteWorkers = workers
				dist, err := d.Significant(2, cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if got := mustJSON(t, dist); !reflect.DeepEqual(got, localJSON) {
					t.Fatalf("workers=%d: distributed report differs from single-process report\nlocal: %s\ndist:  %s", w, localJSON, got)
				}
			}
		})
	}
}

// TestDistributedWestfallYoungBitIdentity extends the acceptance criterion to
// the resampling correction: Westfall–Young needs one min-p statistic per
// Monte Carlo replicate, so the per-replicate minima now ride the fabric's
// partials and must survive sharding, range splits, and ordered merges
// untouched. A coordinator fanning out over two live workers must produce
// byte-identical Westfall–Young reports to the single-process run — adjusted
// p-values included — for coordinator worker counts 1, 4, and 8, under both
// the independence and the swap null.
func TestDistributedWestfallYoungBitIdentity(t *testing.T) {
	d := goldenDataset(t)
	workers := startWorkers(t, 2)

	nulls := []struct {
		name string
		cfg  func() *sigfim.Config
	}{
		{"independence", func() *sigfim.Config {
			return &sigfim.Config{Delta: 120, Seed: 9, Correction: sigfim.CorrectionWestfallYoung}
		}},
		{"swap", func() *sigfim.Config {
			return &sigfim.Config{Delta: 60, Seed: 9, SwapNull: true, Correction: sigfim.CorrectionWestfallYoung}
		}},
	}
	for _, null := range nulls {
		t.Run(null.name, func(t *testing.T) {
			local, err := d.Significant(2, null.cfg())
			if err != nil {
				t.Fatal(err)
			}
			if local.Baseline == nil || local.Baseline.Correction != sigfim.CorrectionWestfallYoung {
				t.Fatalf("local baseline = %+v, want westfall-young", local.Baseline)
			}
			localJSON := mustJSON(t, local)

			// Drive the fabric through an instrumented pool so a silent local
			// fallback (which would also be bit-identical) cannot masquerade as
			// the remote path: the min-p partials must actually ride the wire.
			pool := sigfim.NewWorkerPool(workers, sigfim.WorkerPoolOptions{})
			defer pool.Close()
			for _, w := range []int{1, 4, 8} {
				cfg := null.cfg()
				cfg.Workers = w
				cfg.RemotePool = pool
				dist, err := d.Significant(2, cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if got := mustJSON(t, dist); !reflect.DeepEqual(got, localJSON) {
					t.Fatalf("workers=%d: distributed westfall-young report differs from single-process report\nlocal: %s\ndist:  %s", w, localJSON, got)
				}
			}
			st := pool.Snapshot()
			if st.LocalFallbacks > 0 {
				t.Fatalf("%d ranges fell back to local mining; the remote min-p path was not exercised", st.LocalFallbacks)
			}
			var successes uint64
			for _, ws := range st.Workers {
				successes += ws.Successes
			}
			if successes == 0 {
				t.Fatal("no successful remote dispatches recorded; the remote min-p path was not exercised")
			}
		})
	}
}

// TestDistributedFindSMin pins the smin path (Algorithm 1 alone, always the
// independence null) across the fabric, including a pinned range size.
func TestDistributedFindSMin(t *testing.T) {
	d := goldenDataset(t)
	workers := startWorkers(t, 2)

	local, err := d.FindSMin(2, &sigfim.Config{Delta: 120, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, rangeSize := range []int{0, 1, 13} {
		got, err := d.FindSMin(2, &sigfim.Config{
			Delta: 120, Seed: 9,
			RemoteWorkers: workers, RemoteRangeSize: rangeSize,
		})
		if err != nil {
			t.Fatalf("rangeSize=%d: %v", rangeSize, err)
		}
		if got != local {
			t.Fatalf("rangeSize=%d: distributed s_min = %d, single-process = %d", rangeSize, got, local)
		}
	}
}

// TestDistributedWorkerFailure: ranges landing on a dead worker must be
// retried on the live one (and, with every worker dead, mined locally
// through the identical code path) without changing a byte of the report.
func TestDistributedWorkerFailure(t *testing.T) {
	d := goldenDataset(t)
	local, err := d.Significant(2, &sigfim.Config{Delta: 120, Seed: 9, WithBaseline: true})
	if err != nil {
		t.Fatal(err)
	}
	localJSON := mustJSON(t, local)

	live := startWorkers(t, 1)
	pools := map[string][]string{
		"dead worker in pool": {deadWorker(t), live[0]},
		"all workers dead":    {deadWorker(t), deadWorker(t)},
	}
	for name, pool := range pools {
		t.Run(name, func(t *testing.T) {
			dist, err := d.Significant(2, &sigfim.Config{
				Delta: 120, Seed: 9, WithBaseline: true,
				RemoteWorkers: pool,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := mustJSON(t, dist); !reflect.DeepEqual(got, localJSON) {
				t.Fatalf("report with %s differs from single-process report", name)
			}
		})
	}
}

// TestCoordinatorServiceBitIdentity drives the full service stack: a
// coordinator sigfimd (Options.RemoteWorkers) executes a job by sharding
// across two worker sigfimds, and its stored result bytes equal those of an
// identical job on a plain local sigfimd. This also pins that RemoteWorkers
// stays out of the cache key — the coordinator serves the same bytes a local
// server would.
func TestCoordinatorServiceBitIdentity(t *testing.T) {
	workers := startWorkers(t, 2)

	runJob := func(opts service.Options) []byte {
		t.Helper()
		srv := service.New(opts)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
		if _, err := srv.Registry().RegisterFile("golden", "testdata/golden_input.dat"); err != nil {
			t.Fatal(err)
		}
		st, err := srv.Engine().Submit(service.JobRequest{
			Dataset: "golden", Kind: service.KindSignificant, K: 2,
			Config: &sigfim.Config{Delta: 120, Seed: 9},
		})
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(60 * time.Second)
		for !st.State.Terminal() {
			if time.Now().After(deadline) {
				t.Fatalf("job stuck in state %s", st.State)
			}
			time.Sleep(20 * time.Millisecond)
			if st, err = srv.Engine().Get(st.ID); err != nil {
				t.Fatal(err)
			}
		}
		if st.State != service.StateDone {
			t.Fatalf("job ended %s: %s", st.State, st.Error)
		}
		return st.Result
	}

	localResult := runJob(service.Options{Logger: discardLogger()})
	coordResult := runJob(service.Options{Logger: discardLogger(), RemoteWorkers: workers})
	if !reflect.DeepEqual(coordResult, localResult) {
		t.Fatalf("coordinator job result differs from local job result\nlocal: %s\ncoord: %s", localResult, coordResult)
	}
}

// TestMineReplicateRangeHashCheck: the worker entry point refuses a request
// addressed to a different dataset instead of silently mining the wrong one.
func TestMineReplicateRangeHashCheck(t *testing.T) {
	d := goldenDataset(t)
	_, err := d.MineReplicateRange(context.Background(), sigfim.PartialRequest{
		DatasetHash: "not-the-hash",
		From:        0, To: 1, K: 2, Floor: 2, Seeds: []uint64{42},
	})
	if err == nil {
		t.Fatal("hash mismatch accepted")
	}
}

// ---------------------------------------------------------------------------
// Fault injection. chaosWorker is a proxy in front of a real sigfimd worker
// that mangles POST /v1/partials traffic according to a cycling fault
// schedule: dropped connections, latency spikes past the per-range deadline,
// mid-body truncation, corrupt JSON, wrong-range echoes, 500s, and 503
// load-shedding bursts. The tests below drive whole analyses through the
// proxy and assert the merged report stays byte-identical to a
// single-process run under every injected fault class — the fabric's
// supervision, retry, validation, and local-fallback machinery may change
// where a range is mined, never what it computes.

const (
	faultNone       = "none"
	faultDrop       = "drop"       // connection severed before any response
	faultLatency    = "latency"    // response delayed past the client deadline
	faultTruncate   = "truncate"   // 200 with a mid-body truncated payload
	faultCorrupt    = "corrupt"    // 200 with invalid JSON
	faultWrongRange = "wrongrange" // valid partial echoing somebody else's range
	fault500        = "500"        // hard server error
	fault503        = "503"        // load shedding with Retry-After
)

// chaosSchedule interleaves every fault class with clean requests so the
// proxy keeps cycling instead of tripping the circuit breaker; the shedding
// burst sits last so its backoff window cannot starve later fault classes.
var chaosSchedule = []string{
	faultNone, faultDrop,
	faultNone, faultLatency,
	faultNone, faultTruncate,
	faultNone, faultCorrupt,
	faultNone, faultWrongRange,
	faultNone, fault500,
	faultNone, fault503,
}

// chaosWorker proxies /v1/partials to target, applying the schedule one
// entry per request. The returned map counts injections per fault so tests
// can assert coverage of every class.
func chaosWorker(t *testing.T, target string) (string, *sync.Map) {
	t.Helper()
	var idx atomic.Int64
	injected := &sync.Map{}
	count := func(fault string) {
		v, _ := injected.LoadOrStore(fault, new(atomic.Int64))
		v.(*atomic.Int64).Add(1)
	}
	forward := func(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return nil, false
		}
		resp, err := http.Post(target+"/v1/partials", "application/json", bytes.NewReader(body))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return nil, false
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			http.Error(w, "upstream failed", http.StatusBadGateway)
			return nil, false
		}
		return out, true
	}
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		fault := chaosSchedule[int(idx.Add(1)-1)%len(chaosSchedule)]
		count(fault)
		switch fault {
		case faultNone:
			if out, ok := forward(w, r); ok {
				w.Header().Set("Content-Type", "application/json")
				w.Write(out)
			}
		case faultDrop:
			conn, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				conn.Close()
			}
		case faultLatency:
			// Stall past the coordinator's per-range deadline; leave when the
			// client gives up so server shutdown stays prompt. The body must be
			// drained first: the server only watches for a client disconnect
			// (which cancels r.Context()) once the request body is consumed.
			io.Copy(io.Discard, r.Body)
			select {
			case <-time.After(5 * time.Second):
			case <-r.Context().Done():
			}
		case faultTruncate:
			if out, ok := forward(w, r); ok {
				w.Header().Set("Content-Type", "application/json")
				w.Header().Set("Content-Length", strconv.Itoa(len(out)))
				w.Write(out[:len(out)/2]) // short write; Go closes the conn mid-body
			}
		case faultCorrupt:
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"from": 0, "to": `))
		case faultWrongRange:
			out, ok := forward(w, r)
			if !ok {
				return
			}
			var rp sigfim.RangePartial
			if err := json.Unmarshal(out, &rp); err != nil {
				t.Errorf("chaos proxy: decode upstream partial: %v", err)
				return
			}
			rp.From++ // a partial for somebody else's range
			rp.To++
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(&rp)
		case fault500:
			http.Error(w, "chaos", http.StatusInternalServerError)
		case fault503:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"error":"chaos shedding"}`)
		}
	}))
	t.Cleanup(hs.Close)
	return hs.URL, injected
}

// assertChaosCoverage fails unless every fault class in the schedule was
// injected at least once — otherwise the bit-identity claim silently shrank.
func assertChaosCoverage(t *testing.T, injected *sync.Map) {
	t.Helper()
	for _, fault := range chaosSchedule {
		v, ok := injected.Load(fault)
		if !ok || v.(*atomic.Int64).Load() == 0 {
			t.Errorf("fault class %q was never injected; shrink the range size or raise Delta", fault)
		}
	}
}

// TestDistributedChaosBitIdentity is the tentpole acceptance test: with a
// chaos proxy injecting every fault class between the coordinator and its
// only worker, the merged report must stay byte-identical to the
// single-process run — for both null models — because every failed or
// corrupted range is retried or mined locally through the identical code
// path, and every accepted partial was validated first.
func TestDistributedChaosBitIdentity(t *testing.T) {
	d := goldenDataset(t)
	live := startWorkers(t, 1)

	nulls := []struct {
		name string
		cfg  func() *sigfim.Config
	}{
		{"independence", func() *sigfim.Config {
			return &sigfim.Config{Delta: 120, Seed: 9, WithBaseline: true}
		}},
		{"swap", func() *sigfim.Config {
			return &sigfim.Config{Delta: 60, Seed: 9, SwapNull: true}
		}},
	}
	for _, null := range nulls {
		t.Run(null.name, func(t *testing.T) {
			local, err := d.Significant(2, null.cfg())
			if err != nil {
				t.Fatal(err)
			}
			localJSON := mustJSON(t, local)

			chaos, injected := chaosWorker(t, live[0])
			cfg := null.cfg()
			cfg.RemoteWorkers = []string{chaos}
			cfg.RemoteRangeSize = 3
			cfg.RemoteTimeout = 500 * time.Millisecond
			dist, err := d.Significant(2, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := mustJSON(t, dist); !reflect.DeepEqual(got, localJSON) {
				t.Fatalf("chaos report differs from single-process report\nlocal: %s\ndist:  %s", localJSON, got)
			}
			assertChaosCoverage(t, injected)
		})
	}
}

// TestDistributedChaosFindSMin pins the smin path under the same fault
// schedule.
func TestDistributedChaosFindSMin(t *testing.T) {
	d := goldenDataset(t)
	live := startWorkers(t, 1)
	localS, err := d.FindSMin(2, &sigfim.Config{Delta: 120, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	chaos, injected := chaosWorker(t, live[0])
	gotS, err := d.FindSMin(2, &sigfim.Config{
		Delta: 120, Seed: 9,
		RemoteWorkers: []string{chaos}, RemoteRangeSize: 3,
		RemoteTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotS != localS {
		t.Fatalf("chaos s_min = %d, single-process = %d", gotS, localS)
	}
	assertChaosCoverage(t, injected)
}

// hungWorker accepts connections and never answers /v1/partials — the
// classic stalled-worker failure the per-range deadline exists for.
func hungWorker(t *testing.T) string {
	t.Helper()
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		// Drain the body so the server notices the client abandoning the
		// request and cancels r.Context() — otherwise these handlers leak
		// until the test binary exits and Server.Close hangs.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	t.Cleanup(hs.Close)
	return hs.URL
}

// TestHungWorkerCannotStallJob is the acceptance criterion for the deadline:
// with a hung worker in the pool and a short per-range timeout, the job must
// finish promptly (every range that lands on the hung worker times out, is
// retried on the live one, and the hung worker is ejected after EjectAfter
// consecutive timeouts) with a byte-identical report.
func TestHungWorkerCannotStallJob(t *testing.T) {
	d := goldenDataset(t)
	local, err := d.Significant(2, &sigfim.Config{Delta: 120, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	localJSON := mustJSON(t, local)

	hung := hungWorker(t)
	live := startWorkers(t, 1)
	pool := sigfim.NewWorkerPool([]string{hung, live[0]}, sigfim.WorkerPoolOptions{
		Timeout:    300 * time.Millisecond,
		EjectAfter: 2,
	})
	defer pool.Close()

	start := time.Now()
	dist, err := d.Significant(2, &sigfim.Config{
		Delta: 120, Seed: 9,
		RemotePool: pool, RemoteRangeSize: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 60*time.Second {
		t.Fatalf("job took %v with a hung worker; the per-range deadline is not bounding stalls", elapsed)
	}
	if got := mustJSON(t, dist); !reflect.DeepEqual(got, localJSON) {
		t.Fatal("report with hung worker differs from single-process report")
	}

	st := pool.Snapshot()
	var hungStatus, liveStatus *sigfim.WorkerStatus
	for i := range st.Workers {
		switch st.Workers[i].URL {
		case hung:
			hungStatus = &st.Workers[i]
		case live[0]:
			liveStatus = &st.Workers[i]
		}
	}
	if hungStatus == nil || liveStatus == nil {
		t.Fatalf("snapshot missing workers: %+v", st.Workers)
	}
	if hungStatus.Failures < 2 || hungStatus.Ejections < 1 {
		t.Fatalf("hung worker was not ejected: %+v", hungStatus)
	}
	if liveStatus.Successes == 0 {
		t.Fatalf("live worker served nothing: %+v", liveStatus)
	}
}

// TestHedgedDispatch: with hedging enabled, a range stalled on the hung
// worker is re-dispatched to the live one after the hedge delay and the
// first valid partial wins — the job finishes fast and byte-identical, and
// the pool records the hedges.
func TestHedgedDispatch(t *testing.T) {
	d := goldenDataset(t)
	local, err := d.Significant(2, &sigfim.Config{Delta: 120, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	localJSON := mustJSON(t, local)

	hung := hungWorker(t)
	live := startWorkers(t, 1)
	pool := sigfim.NewWorkerPool([]string{hung, live[0]}, sigfim.WorkerPoolOptions{
		Timeout:    10 * time.Second, // deadline alone would be slow; hedging wins first
		EjectAfter: 1000,             // keep the hung worker in rotation so hedges keep firing
	})
	defer pool.Close()

	dist, err := d.Significant(2, &sigfim.Config{
		Delta: 120, Seed: 9,
		RemotePool: pool, RemoteRangeSize: 10,
		RemoteHedgeDelay: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustJSON(t, dist); !reflect.DeepEqual(got, localJSON) {
		t.Fatal("hedged report differs from single-process report")
	}
	if st := pool.Snapshot(); st.Hedges == 0 {
		t.Fatalf("no hedged dispatches recorded: %+v", st)
	}
}

package sigfim

import (
	"reflect"
	"testing"

	"sigfim/internal/stats"
)

// plantedTransactions builds a deterministic dataset with i.i.d. background
// noise and a planted pair, dense enough that the significance pipeline finds
// a finite s*.
func plantedTransactions(seed uint64, n, t int, p float64) [][]uint32 {
	r := stats.NewRNG(seed)
	tx := make([][]uint32, t)
	for i := range tx {
		for it := 0; it < n; it++ {
			if r.Bernoulli(p) {
				tx[i] = append(tx[i], uint32(it))
			}
		}
		if i%3 == 0 {
			tx[i] = append(tx[i], 2, 5)
		}
	}
	return tx
}

// TestFPGrowthGoldenWorkerIdentity pins the FP-Growth acceptance criterion on
// the committed golden fixture: mining with -algo fpgrowth is bit-identical —
// values and order — for Workers 1, 2, 4, and 8, and the full Significant
// pipeline driven by FP-Growth agrees with the default Eclat-driven pipeline.
func TestFPGrowthGoldenWorkerIdentity(t *testing.T) {
	d, err := OpenFIMI("testdata/golden_input.dat")
	if err != nil {
		t.Fatalf("open golden fixture: %v", err)
	}

	serial, err := d.Mine(MineOptions{MinSupport: 5, MaxLen: 3, Algorithm: AlgoFPGrowth, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) == 0 {
		t.Fatal("empty FP-Growth output on golden fixture; test is vacuous")
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := d.Mine(MineOptions{MinSupport: 5, MaxLen: 3, Algorithm: AlgoFPGrowth, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("fpgrowth workers=%d: output differs from serial", workers)
		}
	}

	cfg := goldenConfig()
	cfg.Algorithm = AlgoFPGrowth
	cfg.Workers = 1
	rep1, err := d.Significant(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	rep8, err := d.Significant(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep1, rep8) {
		t.Fatalf("fpgrowth Significant differs between workers=1 and workers=8:\n%+v\nvs\n%+v", rep1, rep8)
	}
	def, err := d.Significant(2, goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep1.SMin != def.SMin || rep1.SStar != def.SStar || rep1.NumSignificant != def.NumSignificant {
		t.Fatalf("fpgrowth pipeline (s_min=%d, s*=%d, Q=%d) disagrees with default (s_min=%d, s*=%d, Q=%d)",
			rep1.SMin, rep1.SStar, rep1.NumSignificant, def.SMin, def.SStar, def.NumSignificant)
	}
}

// TestWorkerCountDeterminism pins the engine's central guarantee: for a fixed
// seed, FindSMin and Significant return identical reports at Workers=1 and
// Workers=8. Per-goroutine RNGs are derived from per-replicate seeds and all
// parallel reductions merge in deterministic order, so the worker count must
// never leak into results.
func TestWorkerCountDeterminism(t *testing.T) {
	d, err := FromTransactions(plantedTransactions(99, 40, 360, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Delta: 80, Seed: 12345, WithBaseline: true}

	cfg1, cfg8 := base, base
	cfg1.Workers = 1
	cfg8.Workers = 8

	s1, err := d.FindSMin(2, &cfg1)
	if err != nil {
		t.Fatal(err)
	}
	s8, err := d.FindSMin(2, &cfg8)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s8 {
		t.Fatalf("FindSMin: workers=1 gives %d, workers=8 gives %d", s1, s8)
	}

	r1, err := d.Significant(2, &cfg1)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := d.Significant(2, &cfg8)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Infinite {
		t.Fatal("expected a finite s* on the planted dataset; determinism test is vacuous")
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Fatalf("Significant reports differ between workers=1 and workers=8:\n%+v\nvs\n%+v", r1, r8)
	}
}

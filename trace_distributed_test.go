package sigfim_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"sigfim"
	"sigfim/internal/service"
	"sigfim/internal/trace"
)

// Distributed-tracing and autotuning acceptance tests, reusing the worker
// helpers from distributed_determinism_test.go.

// spanAttr returns the value of an attribute on a span ("" if absent).
func spanAttr(sp trace.Span, key string) string {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestAutotunedRangeSizeBitIdentity closes the observability loop:
// RemoteRangeSize 0 sizes ranges from the pool's observed per-worker EWMA
// (after a first run has seeded it), and the autotuned sizing must stay
// byte-identical to the single-process run at every coordinator worker
// count. The pool is shared across runs exactly as a sigfimd coordinator
// shares it across jobs.
func TestAutotunedRangeSizeBitIdentity(t *testing.T) {
	d := goldenDataset(t)
	workers := startWorkers(t, 2)

	local, err := d.Significant(2, &sigfim.Config{Delta: 120, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	localJSON := mustJSON(t, local)

	pool := sigfim.NewWorkerPool(workers, sigfim.WorkerPoolOptions{})
	defer pool.Close()

	// First autotuned run: no latency observed yet, so the static heuristic
	// sizes the ranges — and the run seeds every worker's EWMA.
	dist, err := d.Significant(2, &sigfim.Config{Delta: 120, Seed: 9, RemotePool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustJSON(t, dist); !reflect.DeepEqual(got, localJSON) {
		t.Fatal("heuristic-sized run differs from single-process report")
	}
	size := pool.AutotuneRangeSize(120, 0)
	if size < 1 || size > 60 {
		t.Fatalf("autotuned size after a seeding run = %d, want within [1, 60]", size)
	}

	// Subsequent autotuned runs actually use the EWMA-derived size. Vary the
	// per-range target so different sizes are exercised; none may change a
	// byte.
	for _, run := range []struct {
		workers int
		target  time.Duration
	}{
		{1, 0},
		{4, 10 * time.Millisecond},
		{8, 10 * time.Second},
	} {
		dist, err := d.Significant(2, &sigfim.Config{
			Delta: 120, Seed: 9, Workers: run.workers,
			RemotePool: pool, RemoteRangeTarget: run.target,
		})
		if err != nil {
			t.Fatalf("workers=%d target=%v: %v", run.workers, run.target, err)
		}
		if got := mustJSON(t, dist); !reflect.DeepEqual(got, localJSON) {
			t.Fatalf("workers=%d target=%v: autotuned report differs from single-process report",
				run.workers, run.target)
		}
	}
}

// TestDistributedJobTrace runs a coordinator sigfimd with one dead and one
// live worker and asserts the job's trace attributes the fabric work: at
// least one attempt span per surviving worker, and the dead worker's failed
// attempts surfaced as retry/error/local-fallback outcomes.
func TestDistributedJobTrace(t *testing.T) {
	live := startWorkers(t, 1)
	dead := deadWorker(t)

	srv := service.New(service.Options{
		Logger:        discardLogger(),
		RemoteWorkers: []string{dead, live[0]},
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	if _, err := srv.Registry().RegisterFile("golden", "testdata/golden_input.dat"); err != nil {
		t.Fatal(err)
	}
	st, err := srv.Engine().Submit(service.JobRequest{
		Dataset: "golden", Kind: service.KindSignificant, K: 2,
		Config: &sigfim.Config{Delta: 120, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", st.State)
		}
		time.Sleep(20 * time.Millisecond)
		if st, err = srv.Engine().Get(st.ID); err != nil {
			t.Fatal(err)
		}
	}
	if st.State != service.StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}

	tr, ok := srv.Engine().Trace(st.ID)
	if !ok {
		t.Fatalf("no trace retained for job %s", st.ID)
	}
	if tr.JobID != st.ID {
		t.Fatalf("trace JobID = %q, want %q", tr.JobID, st.ID)
	}
	var liveAttempts, ranges int
	var deadDegraded bool
	for _, sp := range tr.Spans {
		switch sp.Name {
		case "fabric.range":
			ranges++
		case "fabric.attempt":
			switch spanAttr(sp, "worker") {
			case live[0]:
				liveAttempts++
			case dead:
				if o := spanAttr(sp, "outcome"); o == "retry" || o == "error" {
					deadDegraded = true
				}
			}
		case "fabric.local":
			deadDegraded = true
		}
	}
	if ranges == 0 {
		t.Fatal("trace has no fabric.range spans for a distributed job")
	}
	if liveAttempts == 0 {
		t.Fatalf("trace has no attempt spans for the surviving worker %s", live[0])
	}
	if !deadDegraded {
		t.Fatal("trace shows no retry/error/local-fallback evidence of the dead worker")
	}
}

package sigfim

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sigfim/internal/stats"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden end-to-end fixtures")

// The golden test runs the full public Significant pipeline on a small
// committed FIMI fixture and compares the complete report — s_min, s*, the
// ladder, the significant family, and the BY baseline — against a golden
// file. It catches public-API regressions (changed thresholds, broken
// determinism, field renames) without relying on the examples.
//
// Regenerate after an intentional behavior change with:
//
//	go test -run TestGoldenSignificantReport -update .

const (
	goldenDataPath   = "testdata/golden_input.dat"
	goldenReportPath = "testdata/golden_report.json"
)

// goldenTransactions deterministically generates the fixture's transactions:
// background noise plus a planted pair and a planted triple.
func goldenTransactions() [][]uint32 {
	r := stats.NewRNG(314159)
	const n, t = 60, 500
	tx := make([][]uint32, t)
	for i := range tx {
		for it := 0; it < n; it++ {
			if r.Bernoulli(0.04) {
				tx[i] = append(tx[i], uint32(it))
			}
		}
		if i%4 == 0 {
			tx[i] = append(tx[i], 7, 23)
		}
		if i%6 == 0 {
			tx[i] = append(tx[i], 11, 30, 44)
		}
	}
	return tx
}

func goldenConfig() *Config {
	return &Config{Delta: 120, Seed: 9, WithBaseline: true}
}

func TestGoldenSignificantReport(t *testing.T) {
	if *updateGolden {
		d, err := FromTransactions(goldenTransactions())
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenDataPath), 0o755); err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(goldenDataPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.WriteFIMI(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	d, err := OpenFIMI(goldenDataPath)
	if err != nil {
		t.Fatalf("open fixture (regenerate with -update): %v", err)
	}
	rep, err := d.Significant(2, goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Infinite || rep.NumSignificant == 0 {
		t.Fatalf("golden run found no significant family (s* infinite=%v): fixture is vacuous", rep.Infinite)
	}

	gotJSON, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.WriteFile(goldenReportPath, append(gotJSON, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden report rewritten: s_min=%d s*=%d count=%d lambda=%g",
			rep.SMin, rep.SStar, rep.NumSignificant, rep.Lambda)
		return
	}

	wantJSON, err := os.ReadFile(goldenReportPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	// Compare through the JSON round trip so representation noise (nil vs
	// empty slices) can't produce false mismatches.
	var got, want Report
	if err := json.Unmarshal(gotJSON, &got); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(wantJSON, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("report deviates from golden file.\ngot:\n%s\nwant:\n%s", gotJSON, wantJSON)
	}
}

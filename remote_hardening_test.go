package sigfim

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// White-box tests for the hardened worker round trip: postPartial must
// bound and fully validate a 200 body before the partial is accepted, and
// classify non-2xx responses for the supervisor.

// partialEcho answers POST /v1/partials with the JSON produced by mutate
// (given a valid echo of the request).
func partialEcho(t *testing.T, mutate func(*RangePartial) any) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req PartialRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decode request: %v", err)
			return
		}
		rp := &RangePartial{
			From: req.From, To: req.To, K: req.K, Floor: req.Floor,
			Counts: make([]int32, req.To-req.From),
		}
		body := mutate(rp)
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(body); err != nil {
			t.Errorf("encode response: %v", err)
		}
	}))
}

func hardeningRequest() PartialRequest {
	return PartialRequest{From: 5, To: 10, K: 2, Floor: 3, Seeds: []uint64{1, 2, 3, 4, 5}}
}

func TestPostPartialAcceptsValidEcho(t *testing.T) {
	srv := partialEcho(t, func(rp *RangePartial) any { return rp })
	defer srv.Close()
	rp, err := postPartial(context.Background(), srv.Client(), srv.URL, hardeningRequest())
	if err != nil {
		t.Fatal(err)
	}
	if rp.From != 5 || rp.To != 10 {
		t.Fatalf("partial covers [%d,%d), want [5,10)", rp.From, rp.To)
	}
}

func TestPostPartialRejectsTrailingGarbage(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// A valid document followed by garbage: a corrupted stream or a
		// confused proxy, not a partial.
		w.Write([]byte(`{"from":5,"to":10,"k":2,"floor":3,"counts":[0,0,0,0,0]}{"oops":1}`))
	}))
	defer srv.Close()
	_, err := postPartial(context.Background(), srv.Client(), srv.URL, hardeningRequest())
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing garbage accepted: err = %v", err)
	}
}

func TestPostPartialRejectsEchoMismatch(t *testing.T) {
	cases := map[string]func(*RangePartial) any{
		"wrong range": func(rp *RangePartial) any { rp.From++; rp.To++; return rp },
		"wrong k":     func(rp *RangePartial) any { rp.K++; return rp },
		"floor above requested": func(rp *RangePartial) any {
			rp.Floor = rp.Floor + 5
			return rp
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			srv := partialEcho(t, mutate)
			defer srv.Close()
			_, err := postPartial(context.Background(), srv.Client(), srv.URL, hardeningRequest())
			if err == nil || !strings.Contains(err.Error(), "echo mismatch") {
				t.Fatalf("mismatched echo accepted: err = %v", err)
			}
		})
	}
}

// A floor below the requested one is legal: the merge re-filters, so the
// partial only carries extra entries — the echo check must not refuse it.
func TestPostPartialAcceptsLowerFloor(t *testing.T) {
	srv := partialEcho(t, func(rp *RangePartial) any { rp.Floor = 1; return rp })
	defer srv.Close()
	if _, err := postPartial(context.Background(), srv.Client(), srv.URL, hardeningRequest()); err != nil {
		t.Fatalf("lower-floor echo refused: %v", err)
	}
}

func TestPostPartialClassifiesShedding(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"error": "worker draining"})
	}))
	defer srv.Close()
	_, err := postPartial(context.Background(), srv.Client(), srv.URL, hardeningRequest())
	var he *workerHTTPError
	if !errors.As(err, &he) {
		t.Fatalf("want *workerHTTPError, got %v", err)
	}
	if !he.shedding() {
		t.Fatalf("503 not classified as shedding: %+v", he)
	}
	if he.retryAfter != 7*time.Second {
		t.Fatalf("retryAfter = %v, want 7s", he.retryAfter)
	}
	if !strings.Contains(he.Error(), "worker draining") {
		t.Fatalf("error %q does not carry the server's message", he.Error())
	}
}

func TestPostPartialClassifiesHardHTTPFailure(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "kaboom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	_, err := postPartial(context.Background(), srv.Client(), srv.URL, hardeningRequest())
	var he *workerHTTPError
	if !errors.As(err, &he) {
		t.Fatalf("want *workerHTTPError, got %v", err)
	}
	if he.shedding() {
		t.Fatalf("500 classified as shedding: %+v", he)
	}
}

// TestWorkerPoolDedicatedClient: the fabric must never ride
// http.DefaultClient (which has no timeout) — the pool builds a dedicated
// client carrying the configured per-range deadline.
func TestWorkerPoolDedicatedClient(t *testing.T) {
	p := NewWorkerPool([]string{"http://a"}, WorkerPoolOptions{Timeout: 7 * time.Second})
	defer p.Close()
	hc := p.client()
	if hc == http.DefaultClient {
		t.Fatal("pool uses http.DefaultClient")
	}
	if hc.Timeout != 7*time.Second {
		t.Fatalf("client timeout = %v, want 7s", hc.Timeout)
	}
	if hc.Transport == nil {
		t.Fatal("pool client has no dedicated transport")
	}
}

package sigfim

import (
	"fmt"

	"sigfim/internal/synth"
)

// BenchmarkSpec identifies one of the paper's six benchmark dataset profiles
// (Table 1), synthesized offline: a power-law item frequency vector fitted
// to the published (n, t, m, fmin, fmax), plus a planted-correlation layer
// for the "real" variant.
type BenchmarkSpec struct {
	spec synth.Spec
}

// BenchmarkNames lists the available profiles in Table 1 order:
// Retail, Kosarak, Bms1, Bms2, Bmspos, Pumsb*.
func BenchmarkNames() []string { return synth.Names() }

// BenchmarkProfile looks up a profile by name.
func BenchmarkProfile(name string) (BenchmarkSpec, error) {
	s, ok := synth.ByName(name)
	if !ok {
		return BenchmarkSpec{}, fmt.Errorf("sigfim: unknown benchmark %q (have %v)", name, synth.Names())
	}
	return BenchmarkSpec{spec: s}, nil
}

// Scale divides the profile's transaction count by factor, preserving the
// frequency structure; use for fast, shape-preserving experiment runs.
func (b BenchmarkSpec) Scale(factor int) BenchmarkSpec {
	return BenchmarkSpec{spec: b.spec.Scale(factor)}
}

// Name returns the (possibly scale-suffixed) profile name.
func (b BenchmarkSpec) Name() string { return b.spec.Name }

// NumItems returns n.
func (b BenchmarkSpec) NumItems() int { return b.spec.N }

// NumTransactions returns t.
func (b BenchmarkSpec) NumTransactions() int { return b.spec.T }

// Real synthesizes the "real" variant: null model plus planted correlated
// blocks. Deterministic per seed.
func (b BenchmarkSpec) Real(seed uint64) *Dataset {
	return fromVertical(b.spec.GenerateReal(seed))
}

// Random synthesizes the pure null variant ("Rand"-prefixed in the paper's
// tables): the independence model with the profile's frequencies, no
// planted structure.
func (b BenchmarkSpec) Random(seed uint64) *Dataset {
	return fromVertical(b.spec.GenerateNull(seed))
}

package sigfim

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Worker supervision for the distributed replicate fabric. A WorkerPool
// tracks the health of every configured sigfimd worker from the outcomes of
// the range requests sent to it plus periodic /healthz probes, and decides
// which workers are eligible to receive the next range:
//
//   - healthy: the worker answers; ranges are dispatched to it.
//   - suspect: recent consecutive failures, but fewer than the ejection
//     threshold; still eligible, but healthy workers are preferred.
//   - ejected: the circuit breaker tripped after EjectAfter consecutive hard
//     failures. Ejected workers receive no ranges; the pool re-probes their
//     /healthz with exponential backoff plus jitter and re-admits them on the
//     first successful probe, so a restarted worker rejoins automatically.
//
// A 503 (or 429) response is load shedding, not death: the worker is backed
// off for its Retry-After window without counting toward ejection, and
// becomes eligible again when the window expires.
//
// Supervision can only affect where a range is executed, never what it
// computes — every replicate consumes the same seed on every executor and
// partials are validated before merging — so the pool is free to make
// arbitrary placement decisions without endangering the fabric's
// bit-identity guarantee.

// Worker states as reported by WorkerStatus.State.
const (
	WorkerHealthy = "healthy"
	WorkerSuspect = "suspect"
	WorkerEjected = "ejected"
)

// workerHTTPError is a non-2xx response from a worker, carrying what the
// supervisor needs to classify it: load shedding (503/429, honor Retry-After
// and back off) versus a hard failure (count toward ejection).
type workerHTTPError struct {
	url        string
	status     int
	retryAfter time.Duration // parsed Retry-After on 503/429; 0 if absent
	msg        string
}

func (e *workerHTTPError) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("worker %s: %s (HTTP %d)", e.url, e.msg, e.status)
	}
	return fmt.Sprintf("worker %s: HTTP %d", e.url, e.status)
}

// shedding reports whether the response asks the coordinator to back off
// rather than give up on the worker.
func (e *workerHTTPError) shedding() bool {
	return e.status == http.StatusServiceUnavailable || e.status == http.StatusTooManyRequests
}

// WorkerPoolOptions tunes a WorkerPool; the zero value selects the defaults
// documented per field.
type WorkerPoolOptions struct {
	// EjectAfter is the number of consecutive hard failures after which a
	// worker is ejected (default 3). Load-shedding responses (503/429) never
	// count.
	EjectAfter int
	// Timeout bounds every HTTP round trip to a worker — range dispatches and
	// health probes alike (default 2 minutes). This is the per-range deadline
	// that keeps a hung worker from stalling a job: when it expires the range
	// is retried elsewhere and the timeout counts as a hard failure.
	Timeout time.Duration
	// ProbeInterval is the delay before the first re-probe of an ejected
	// worker (default 2s). Each failed probe doubles the delay up to
	// MaxProbeBackoff; every delay is jittered by ±25% so a fleet of
	// coordinators doesn't probe in lockstep.
	ProbeInterval time.Duration
	// MaxProbeBackoff caps the probe backoff (default 60s).
	MaxProbeBackoff time.Duration
	// BackoffDefault is the back-off window applied on a 503/429 without a
	// parseable Retry-After header (default 1s).
	BackoffDefault time.Duration
	// Transport overrides the HTTP transport (nil builds a dedicated one with
	// bounded connection reuse). Tests use this to inject faults.
	Transport http.RoundTripper

	// Test seams (package-internal): a fake clock and a fake probe.
	now   func() time.Time
	probe func(ctx context.Context, base string) error
}

func (o WorkerPoolOptions) withDefaults() WorkerPoolOptions {
	if o.EjectAfter <= 0 {
		o.EjectAfter = 3
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Minute
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.MaxProbeBackoff <= 0 {
		o.MaxProbeBackoff = 60 * time.Second
	}
	if o.BackoffDefault <= 0 {
		o.BackoffDefault = time.Second
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// fabricWorker is the supervisor's per-worker record; all fields are guarded
// by the pool mutex.
type fabricWorker struct {
	url   string
	state string

	consecFails  int
	backoffUntil time.Time // 503/429 shed window; zero when not backed off

	probing      bool
	probeBackoff time.Duration
	nextProbeAt  time.Time // meaningful while ejected

	successes    uint64
	failures     uint64
	backoffs     uint64
	ejections    uint64
	readmissions uint64
	hedged       uint64

	// Range-latency telemetry: a fixed-bucket histogram of observed range
	// wall latencies (successful dispatches plus canceled hedge losers) and
	// an EWMA of seconds-per-replicate from successful dispatches only. The
	// EWMA feeds range-size autotuning; hedge losers are censored
	// observations (canceled mid-flight) so they land in the histogram but
	// never move the EWMA.
	latBuckets    []uint64
	latCount      uint64
	latSumSeconds float64
	ewmaRepSecs   float64
}

// RangeLatencyBuckets are the upper bounds (seconds) of the per-worker
// range-latency histogram; observations above the last bound land in an
// implicit overflow bucket.
var RangeLatencyBuckets = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}

// ewmaAlpha weights the newest per-replicate latency observation; ~0.3
// adapts within a few ranges while smoothing single-range noise.
const ewmaAlpha = 0.3

// observeLatencyLocked records one range round trip of duration d covering
// replicates replicates. Callers hold p.mu.
func (w *fabricWorker) observeLatencyLocked(d time.Duration, replicates int, updateEWMA bool) {
	if d < 0 {
		d = 0
	}
	if w.latBuckets == nil {
		w.latBuckets = make([]uint64, len(RangeLatencyBuckets)+1)
	}
	secs := d.Seconds()
	i := 0
	for i < len(RangeLatencyBuckets) && secs > RangeLatencyBuckets[i] {
		i++
	}
	w.latBuckets[i]++
	w.latCount++
	w.latSumSeconds += secs
	if updateEWMA && replicates > 0 {
		rep := secs / float64(replicates)
		if w.ewmaRepSecs == 0 {
			w.ewmaRepSecs = rep
		} else {
			w.ewmaRepSecs = (1-ewmaAlpha)*w.ewmaRepSecs + ewmaAlpha*rep
		}
	}
}

// RangeLatencyStats is one worker's observed range-latency distribution.
type RangeLatencyStats struct {
	// Count and SumSeconds summarize every observation (successes and
	// canceled hedge losers).
	Count      uint64  `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	// Buckets holds per-bucket (non-cumulative) counts aligned with
	// RangeLatencyBuckets, plus a final overflow bucket.
	Buckets []uint64 `json:"buckets"`
	// EWMAReplicateSeconds is the smoothed per-replicate latency from
	// successful dispatches; 0 until the first success. It drives range-size
	// autotuning (see AutotuneRangeSize).
	EWMAReplicateSeconds float64 `json:"ewma_replicate_seconds,omitempty"`
}

// WorkerStatus is one worker's public supervision snapshot.
type WorkerStatus struct {
	URL   string `json:"url"`
	State string `json:"state"`
	// ConsecutiveFailures is the current hard-failure streak (resets on any
	// success or re-admission).
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// Successes and Failures count range dispatches by outcome; Backoffs
	// counts honored 503/429 shed responses (not failures).
	Successes uint64 `json:"successes"`
	Failures  uint64 `json:"failures"`
	Backoffs  uint64 `json:"backoffs"`
	// Ejections and Readmissions count circuit-breaker trips and recoveries.
	Ejections    uint64 `json:"ejections"`
	Readmissions uint64 `json:"readmissions"`
	// Hedged counts hedged (duplicate) range dispatches sent to this worker.
	Hedged uint64 `json:"hedged"`
	// RangeLatency is the worker's observed range-latency distribution;
	// nil until the first observation.
	RangeLatency *RangeLatencyStats `json:"range_latency,omitempty"`
	// NextProbeInSeconds is how far away the next health probe is while the
	// worker is ejected (0 once due).
	NextProbeInSeconds float64 `json:"next_probe_in_seconds,omitempty"`
}

// FabricStats is the pool-wide supervision snapshot served by /v1/stats and
// rendered into /metrics by a coordinating sigfimd.
type FabricStats struct {
	Workers []WorkerStatus `json:"workers"`
	// Hedges counts hedged range dispatches (a straggling range re-sent to a
	// second worker; the first valid partial wins).
	Hedges uint64 `json:"hedges"`
	// LocalFallbacks counts ranges the coordinator mined locally because no
	// worker was eligible or every remote attempt failed.
	LocalFallbacks uint64 `json:"local_fallbacks"`
}

// WorkerPool supervises a set of sigfimd workers for a coordinator. It is
// safe for concurrent use and may be shared by any number of concurrent
// analyses (a sigfimd coordinator shares one pool across all its jobs, so
// health state persists between jobs). Close releases the background prober.
type WorkerPool struct {
	opts WorkerPoolOptions
	hc   *http.Client

	mu      sync.Mutex
	workers []*fabricWorker
	cursor  int
	rng     *rand.Rand
	hedges  uint64
	locals  uint64
	closed  bool

	stop    chan struct{}
	probeWG sync.WaitGroup
}

// NewWorkerPool builds a supervisor over the given worker base URLs
// (duplicates and empty entries are dropped) and starts its background
// prober. Call Close when the pool is no longer needed.
func NewWorkerPool(urls []string, opts WorkerPoolOptions) *WorkerPool {
	opts = opts.withDefaults()
	hc := &http.Client{Timeout: opts.Timeout, Transport: opts.Transport}
	if hc.Transport == nil {
		hc.Transport = &http.Transport{
			Proxy:               http.ProxyFromEnvironment,
			DialContext:         (&net.Dialer{Timeout: 10 * time.Second, KeepAlive: 30 * time.Second}).DialContext,
			MaxIdleConns:        128,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
			TLSHandshakeTimeout: 10 * time.Second,
		}
	}
	p := &WorkerPool{
		opts: opts,
		hc:   hc,
		rng:  rand.New(rand.NewSource(int64(len(urls)) + 1)),
		stop: make(chan struct{}),
	}
	seen := make(map[string]bool)
	for _, u := range urls {
		if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" && !seen[u] {
			seen[u] = true
			p.workers = append(p.workers, &fabricWorker{url: u, state: WorkerHealthy})
		}
	}
	p.probeWG.Add(1)
	go p.probeLoop()
	return p
}

// Close stops the background prober and waits for in-flight probes. The pool
// must not be used after Close.
func (p *WorkerPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.stop)
	p.mu.Unlock()
	p.probeWG.Wait()
}

// client returns the pool's dedicated HTTP client (shared with the fabric's
// range dispatches so probes and ranges see the same transport and timeout).
func (p *WorkerPool) client() *http.Client { return p.hc }

// size returns the number of configured workers.
func (p *WorkerPool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.workers)
}

// probeLoop periodically re-probes ejected workers that are due. The tick
// only bounds probe latency; the schedule itself (exponential backoff with
// jitter) lives in nextProbeAt.
func (p *WorkerPool) probeLoop() {
	defer p.probeWG.Done()
	t := time.NewTicker(500 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.probeDue()
		}
	}
}

// probeDue launches an asynchronous health probe for every ejected worker
// whose backoff has expired. It is called by the background prober and by
// pick, so probing happens both periodically and under traffic.
func (p *WorkerPool) probeDue() {
	p.mu.Lock()
	now := p.opts.now()
	var due []*fabricWorker
	if !p.closed {
		for _, w := range p.workers {
			if w.state == WorkerEjected && !w.probing && !w.nextProbeAt.After(now) {
				w.probing = true
				due = append(due, w)
			}
		}
		p.probeWG.Add(len(due))
	}
	p.mu.Unlock()
	for _, w := range due {
		go p.probeOne(w)
	}
}

// probeOne performs one health probe and applies its outcome: success
// re-admits the worker, failure doubles the probe backoff (capped) and
// schedules the next attempt.
func (p *WorkerPool) probeOne(w *fabricWorker) {
	defer p.probeWG.Done()
	timeout := p.opts.Timeout
	if timeout > 5*time.Second {
		timeout = 5 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	probe := p.opts.probe
	if probe == nil {
		probe = p.httpProbe
	}
	err := probe(ctx, w.url)

	p.mu.Lock()
	defer p.mu.Unlock()
	w.probing = false
	if err == nil {
		p.readmitLocked(w)
		return
	}
	w.probeBackoff *= 2
	if w.probeBackoff > p.opts.MaxProbeBackoff {
		w.probeBackoff = p.opts.MaxProbeBackoff
	}
	w.nextProbeAt = p.opts.now().Add(p.jitterLocked(w.probeBackoff))
}

// httpProbe is the default probe: GET {base}/healthz must answer 2xx.
func (p *WorkerPool) httpProbe(ctx context.Context, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	return nil
}

// readmitLocked returns an ejected worker to service. Callers hold p.mu.
func (p *WorkerPool) readmitLocked(w *fabricWorker) {
	w.state = WorkerHealthy
	w.consecFails = 0
	w.probeBackoff = 0
	w.nextProbeAt = time.Time{}
	w.backoffUntil = time.Time{}
	w.readmissions++
}

// jitterLocked spreads d by ±25% so probe schedules decorrelate across
// coordinators. Callers hold p.mu.
func (p *WorkerPool) jitterLocked(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return time.Duration(float64(d) * (0.75 + 0.5*p.rng.Float64()))
}

// pick returns up to max eligible worker URLs for one range's attempt
// sequence: healthy workers first, then suspects, both in round-robin order
// starting at the pool cursor; ejected and backed-off workers are skipped.
// An empty result means "mine locally". Picking also opportunistically
// schedules due probes, so ejected workers are re-examined under traffic
// even between prober ticks.
func (p *WorkerPool) pick(max int) []string {
	p.probeDue()
	p.mu.Lock()
	n := len(p.workers)
	if n == 0 || max <= 0 {
		p.mu.Unlock()
		return nil
	}
	now := p.opts.now()
	start := p.cursor
	p.cursor++
	var healthy, suspect []string
	for i := 0; i < n; i++ {
		w := p.workers[(start+i)%n]
		if w.backoffUntil.After(now) {
			continue
		}
		switch w.state {
		case WorkerHealthy:
			healthy = append(healthy, w.url)
		case WorkerSuspect:
			suspect = append(suspect, w.url)
		}
	}
	p.mu.Unlock()
	out := append(healthy, suspect...)
	if len(out) > max {
		out = out[:max]
	}
	return out
}

// find returns the record for url; nil if unknown. Callers hold p.mu.
func (p *WorkerPool) findLocked(url string) *fabricWorker {
	for _, w := range p.workers {
		if w.url == url {
			return w
		}
	}
	return nil
}

// reportSuccess records a successful range dispatch of duration d covering
// replicates replicates: the failure streak resets, a suspect worker
// recovers to healthy, and the latency feeds the worker's histogram and
// autotuning EWMA.
func (p *WorkerPool) reportSuccess(url string, d time.Duration, replicates int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w := p.findLocked(url)
	if w == nil {
		return
	}
	w.successes++
	w.consecFails = 0
	if w.state == WorkerSuspect {
		w.state = WorkerHealthy
	}
	w.observeLatencyLocked(d, replicates, true)
}

// reportFailure records a failed range dispatch and classifies it. A
// load-shedding response (503/429) backs the worker off for its Retry-After
// window without touching the failure streak; anything else — connect errors,
// timeouts, other HTTP statuses, invalid partials — is a hard failure that
// advances the streak and trips the breaker at EjectAfter.
func (p *WorkerPool) reportFailure(url string, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w := p.findLocked(url)
	if w == nil {
		return
	}
	now := p.opts.now()
	if he, ok := err.(*workerHTTPError); ok && he.shedding() {
		w.backoffs++
		window := he.retryAfter
		if window <= 0 {
			window = p.opts.BackoffDefault
		}
		w.backoffUntil = now.Add(window)
		return
	}
	w.failures++
	w.consecFails++
	switch {
	case w.state == WorkerEjected:
		// Already ejected (a hedged attempt finishing late); leave the probe
		// schedule alone.
	case w.consecFails >= p.opts.EjectAfter:
		w.state = WorkerEjected
		w.ejections++
		w.probeBackoff = p.opts.ProbeInterval
		w.nextProbeAt = now.Add(p.jitterLocked(w.probeBackoff))
	default:
		w.state = WorkerSuspect
	}
}

// noteHedge records one hedged dispatch to url.
func (p *WorkerPool) noteHedge(url string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hedges++
	if w := p.findLocked(url); w != nil {
		w.hedged++
	}
}

// noteHedgeLoss records the latency of a hedged dispatch that lost its
// race and was canceled after d. Losing a race is not a failure (the
// worker did nothing wrong) and the observation is censored, so it lands
// in the latency histogram but touches neither health state nor the EWMA.
func (p *WorkerPool) noteHedgeLoss(url string, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if w := p.findLocked(url); w != nil {
		w.observeLatencyLocked(d, 0, false)
	}
}

// noteLocalFallback records one range mined locally because no remote
// attempt produced a valid partial.
func (p *WorkerPool) noteLocalFallback() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.locals++
}

// AutotuneRangeSize suggests a replicate-range size for a job of delta
// replicates from observed worker latency: the slowest non-ejected
// worker's per-replicate EWMA is scaled so one range takes about target
// wall time on it, clamped to [1, delta/workers] so every worker still
// sees work. It returns 0 — "no opinion, use the static heuristic" — when
// no worker has a latency observation yet. Range size can never change
// result bytes (partials merge in replicate order and replicate i always
// consumes seed i), so autotuning is free to pick any value.
func (p *WorkerPool) AutotuneRangeSize(delta int, target time.Duration) int {
	if delta <= 0 {
		return 0
	}
	if target <= 0 {
		target = DefaultRangeTarget
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	slowest := 0.0
	for _, w := range p.workers {
		if w.state != WorkerEjected && w.ewmaRepSecs > slowest {
			slowest = w.ewmaRepSecs
		}
	}
	if slowest == 0 || len(p.workers) == 0 {
		return 0
	}
	size := int(target.Seconds() / slowest)
	if hi := delta / len(p.workers); size > hi {
		size = hi
	}
	if size < 1 {
		size = 1
	}
	return size
}

// DefaultRangeTarget is the per-range wall time autotuning aims for when
// no explicit target is configured: long enough to amortize the HTTP
// round trip, short enough that retry and hedging stay responsive.
const DefaultRangeTarget = 2 * time.Second

// Snapshot returns the pool's current supervision state, workers in
// configuration order.
func (p *WorkerPool) Snapshot() FabricStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.opts.now()
	st := FabricStats{Hedges: p.hedges, LocalFallbacks: p.locals}
	for _, w := range p.workers {
		ws := WorkerStatus{
			URL:                 w.url,
			State:               w.state,
			ConsecutiveFailures: w.consecFails,
			Successes:           w.successes,
			Failures:            w.failures,
			Backoffs:            w.backoffs,
			Ejections:           w.ejections,
			Readmissions:        w.readmissions,
			Hedged:              w.hedged,
		}
		if w.latCount > 0 {
			ws.RangeLatency = &RangeLatencyStats{
				Count:                w.latCount,
				SumSeconds:           w.latSumSeconds,
				Buckets:              append([]uint64(nil), w.latBuckets...),
				EWMAReplicateSeconds: w.ewmaRepSecs,
			}
		}
		if w.state == WorkerEjected && w.nextProbeAt.After(now) {
			ws.NextProbeInSeconds = w.nextProbeAt.Sub(now).Seconds()
		}
		st.Workers = append(st.Workers, ws)
	}
	return st
}

// Null calibration: empirical verification of the paper's core theorem.
// Above the Chen-Stein threshold s_min, the number of frequent k-itemsets
// in a random dataset follows (approximately) a Poisson law; below it, the
// dependency between overlapping itemsets breaks the approximation. This
// example samples Q̂_{k,s} across many random datasets at several thresholds
// and reports the total variation distance to the best-fit Poisson, plus a
// swap-randomization cross-check of the null model choice.
//
//	go run ./examples/nullcalibration [-reps 600]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"sigfim"
)

var reps = flag.Int("reps", 600, "random datasets per threshold")

func main() {
	flag.Parse()
	// A moderately dense universe where pairs overlap a lot at low support.
	const (
		numItems = 40
		numTx    = 500
		freq     = 0.12
	)
	tx := make([][]uint32, numTx)
	base, err := sigfim.FromTransactions(tx)
	if err != nil {
		log.Fatal(err)
	}
	profile := base.Profile("uniform")
	profile.NumItems = numItems
	profile.Freqs = make([]float64, numItems)
	for i := range profile.Freqs {
		profile.Freqs[i] = freq
	}
	profile.NumTransactions = numTx

	ref := sigfim.GenerateRandom(profile, 1)
	sMin, err := ref.FindSMin(2, &sigfim.Config{Delta: 400, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uniform null: n=%d t=%d f=%.2f -> s_min = %d for pairs\n\n",
		numItems, numTx, freq, sMin)

	fmt.Printf("%10s %12s %12s %16s\n", "s", "mean Q", "var Q", "TV to Poisson")
	for _, s := range []int{sMin - 4, sMin - 2, sMin, sMin + 2} {
		if s < 1 {
			continue
		}
		sample := make([]int, *reps)
		mean := 0.0
		for i := range sample {
			twin := sigfim.GenerateRandom(profile, uint64(1000+i))
			sample[i] = int(twin.CountK(2, s))
			mean += float64(sample[i])
		}
		mean /= float64(*reps)
		variance := 0.0
		for _, q := range sample {
			d := float64(q) - mean
			variance += d * d
		}
		variance /= float64(*reps)
		tv := totalVariationPoisson(sample, mean)
		marker := ""
		if s >= sMin {
			marker = "  <- Poisson regime"
		}
		fmt.Printf("%10d %12.2f %12.2f %16.4f%s\n", s, mean, variance, tv, marker)
	}

	fmt.Println(`
A Poisson law has variance equal to its mean and small TV distance; watch
both converge as s crosses s_min.`)

	// Swap-randomization cross-check: the alternative null model that also
	// preserves transaction lengths should agree on high-support counts.
	fmt.Println("\nnull model cross-check at s = s_min (independence vs swap randomization):")
	real := sigfim.GenerateRandom(profile, 77)
	meanInd, meanSwap := 0.0, 0.0
	const crossReps = 60
	for i := 0; i < crossReps; i++ {
		meanInd += float64(real.RandomTwin(uint64(i)).CountK(2, sMin))
		meanSwap += float64(real.SwapTwin(uint64(i)).CountK(2, sMin))
	}
	fmt.Printf("mean Q under independence model: %.2f\n", meanInd/crossReps)
	fmt.Printf("mean Q under swap randomization: %.2f\n", meanSwap/crossReps)
}

// totalVariationPoisson computes the TV distance between the sample's
// empirical distribution and Poisson(lambda) (local copy to keep the example
// self-contained on the public API).
func totalVariationPoisson(sample []int, lambda float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	counts := map[int]int{}
	maxK := 0
	for _, v := range sample {
		counts[v]++
		if v > maxK {
			maxK = v
		}
	}
	// Poisson pmf by recurrence.
	pmf := make([]float64, maxK+2)
	pmf[0] = math.Exp(-lambda)
	for k := 1; k < len(pmf); k++ {
		pmf[k] = pmf[k-1] * lambda / float64(k)
	}
	tv := 0.0
	used := 0.0
	for k := 0; k <= maxK; k++ {
		emp := float64(counts[k]) / float64(len(sample))
		tv += math.Abs(emp - pmf[k])
		used += pmf[k]
	}
	tv += 1 - used // unobserved tail
	return tv / 2
}

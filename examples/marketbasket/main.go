// Market-basket study on the Retail benchmark profile: reproduces the
// paper's headline Retail observation — the dataset behaves randomly at
// k = 2 and 3 (no significant support threshold exists), while a small
// genuinely-correlated family appears at k = 4.
//
//	go run ./examples/marketbasket [-scale 16] [-delta 150]
package main

import (
	"flag"
	"fmt"
	"log"

	"sigfim"
)

var (
	scale = flag.Int("scale", 16, "divide the Retail profile's t by this factor")
	delta = flag.Int("delta", 150, "Monte Carlo replicates")
)

func main() {
	flag.Parse()
	spec, err := sigfim.BenchmarkProfile("Retail")
	if err != nil {
		log.Fatal(err)
	}
	spec = spec.Scale(*scale)
	d := spec.Real(2009)
	p := d.Profile(spec.Name())
	fmt.Printf("%s: %d items, %d transactions, mean length %.1f\n\n",
		p.Name, p.NumItems, p.NumTransactions, p.AvgTransactionLen)

	for k := 2; k <= 4; k++ {
		report, err := d.Significant(k, &sigfim.Config{Delta: *delta, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("k = %d: s_min = %d, ", k, report.SMin)
		if report.Infinite {
			fmt.Println("s* = inf — high-support structure is indistinguishable from random")
			continue
		}
		fmt.Printf("s* = %d -> %d significant %d-itemsets (null expects %.3f)\n",
			report.SStar, report.NumSignificant, k, report.Lambda)
		for i, pat := range report.Significant {
			if i == 8 {
				fmt.Printf("    ... and %d more\n", len(report.Significant)-8)
				break
			}
			fmt.Printf("    %v support %d\n", pat.Items, pat.Support)
		}
	}

	fmt.Println("\nSame analysis on a random twin (same frequencies, no correlations):")
	twin := d.RandomTwin(99)
	for k := 2; k <= 4; k++ {
		report, err := twin.Significant(k, &sigfim.Config{Delta: *delta, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		status := "s* = inf (correct: nothing to find)"
		if !report.Infinite {
			status = fmt.Sprintf("s* = %d (false alarm, Q=%d)", report.SStar, report.NumSignificant)
		}
		fmt.Printf("k = %d: %s\n", k, status)
	}
}

// Quickstart: build a small market-basket dataset, embed one genuinely
// correlated product pair among independent noise, and let the methodology
// find the statistically significant support threshold.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sigfim"

	"math/rand"
)

func main() {
	const (
		numItems = 60
		numTx    = 4000
	)
	rng := rand.New(rand.NewSource(1))

	// Independent background noise: every product lands in a basket with
	// probability 5%.
	tx := make([][]uint32, numTx)
	for i := range tx {
		for item := 0; item < numItems; item++ {
			if rng.Float64() < 0.05 {
				tx[i] = append(tx[i], uint32(item))
			}
		}
	}
	// The real signal: products 7 and 8 are bought together in an extra 5%
	// of baskets (think "pasta and pasta sauce").
	for i := 0; i < numTx/20; i++ {
		tid := rng.Intn(numTx)
		tx[tid] = append(tx[tid], 7, 8)
	}

	d, err := sigfim.FromTransactions(tx)
	if err != nil {
		log.Fatal(err)
	}
	p := d.Profile("quickstart")
	fmt.Printf("dataset: %d items, %d baskets, mean basket size %.2f\n",
		p.NumItems, p.NumTransactions, p.AvgTransactionLen)

	// How many pairs co-occur at least 20 times? Classical mining with an
	// arbitrary threshold gives a number with no statistical meaning.
	fmt.Printf("pairs with support >= 20: %d (is that a lot? who knows)\n",
		d.CountK(2, 20))

	// The methodology answers the question rigorously.
	report, err := d.Significant(2, &sigfim.Config{
		Delta: 300, // Monte Carlo replicates
		Seed:  42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Poisson regime starts at s_min = %d\n", report.SMin)
	if report.Infinite {
		fmt.Println("s* = infinity: nothing here beats the independence null")
		return
	}
	fmt.Printf("s* = %d with confidence %.0f%%, FDR <= %.0f%%\n",
		report.SStar, 100*(1-report.Alpha), 100*report.Beta)
	fmt.Printf("significant pairs: %d (a random twin would have %.3f)\n",
		report.NumSignificant, report.Lambda)
	for _, pat := range report.Significant {
		fmt.Printf("  items %v  support %d\n", pat.Items, pat.Support)
	}
}

// FDR comparison: Procedure 2 (the paper's support-threshold methodology)
// against Procedure 1 (per-itemset correction) on a Bms2-like profile — the
// Table 5 story. Both control FDR at the same beta; the support-threshold
// approach tests one global hypothesis per level instead of C(n, k)
// per-itemset hypotheses, and consequently flags more of the planted
// structure (power ratio r >= 1, often much larger).
//
// Procedure 1 runs twice per k: under the paper's analytic
// Benjamini-Yekutieli correction and under the resampling Westfall-Young
// correction, whose min-p null distribution comes from the same Monte Carlo
// replicates — the WY column shows how much of the analytic penalty is an
// artifact of ignoring the dependence between overlapping itemsets. The
// PowerDemo coda then prints all four correction modes side by side.
//
//	go run ./examples/fdrcomparison [-scale 16] [-delta 150]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"sigfim"
)

var (
	scale = flag.Int("scale", 4, "profile scale divisor")
	delta = flag.Int("delta", 150, "Monte Carlo replicates")
)

func main() {
	flag.Parse()
	spec, err := sigfim.BenchmarkProfile("Bms2")
	if err != nil {
		log.Fatal(err)
	}
	spec = spec.Scale(*scale)
	d := spec.Real(5)
	fmt.Printf("%s with planted correlations, alpha = beta = 0.05\n\n", spec.Name())
	fmt.Printf("%3s %10s %14s %14s %14s %10s\n", "k", "s*", "Proc2 family", "Proc1 |R| BY", "Proc1 |R| WY", "ratio r")

	for k := 2; k <= 4; k++ {
		report, err := d.Significant(k, &sigfim.Config{
			Delta:        *delta,
			Seed:         11,
			WithBaseline: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		wy, err := d.Significant(k, &sigfim.Config{
			Delta:      *delta,
			Seed:       11,
			Correction: sigfim.CorrectionWestfallYoung,
		})
		if err != nil {
			log.Fatal(err)
		}
		sStar := "inf"
		var q int64
		if !report.Infinite {
			sStar = fmt.Sprint(report.SStar)
			q = report.NumSignificant
		}
		ratio := "-"
		if report.Baseline != nil && !report.Infinite {
			if report.Baseline.NumSignificant == 0 {
				ratio = "inf"
			} else if !math.IsInf(report.PowerRatio, 0) {
				ratio = fmt.Sprintf("%.2f", report.PowerRatio)
			}
		}
		fmt.Printf("%3d %10s %14d %14d %14d %10s\n",
			k, sStar, q, report.Baseline.NumSignificant, wy.Baseline.NumSignificant, ratio)
	}

	fmt.Println(`
Reading the table: both procedures bound the false discovery rate by 5%,
but Procedure 1 pays a Benjamini-Yekutieli penalty over all C(n,k)
hypotheses, so its rejection threshold collapses as k grows; Procedure 2
tests ~log2(s_max - s_min) Poisson hypotheses regardless of n, keeping its
power. Ratios above 1 are exactly the paper's Table 5 phenomenon.`)

	// The phenomenon in its purest form: a dense plateau of equally popular
	// items with modestly boosted pairs. Each boosted pair is individually
	// unremarkable (a few sigma, p ~ 1e-2..1e-5 — far above the BY step-up
	// line), but forty of them above the Poisson threshold cannot happen
	// under the null.
	fmt.Println("\nPowerDemo profile (individually-marginal, collectively-impossible signal):")
	demo, err := sigfim.BenchmarkProfile("PowerDemo")
	if err != nil {
		log.Fatal(err)
	}
	d2 := demo.Real(3)
	rep, err := d2.Significant(2, &sigfim.Config{Delta: 150, Seed: 11, WithBaseline: true})
	if err != nil {
		log.Fatal(err)
	}
	if rep.Infinite {
		fmt.Println("unexpected: no threshold found")
		return
	}
	fmt.Printf("Procedure 2: s* = %d -> %d significant pairs (null expects %.3f)\n",
		rep.SStar, rep.NumSignificant, rep.Lambda)
	fmt.Printf("Procedure 1: |R| = %d  ->  power ratio r = %.1f\n",
		rep.Baseline.NumSignificant, rep.PowerRatio)

	// All four Procedure 1 corrections on the same dataset and seed. The
	// analytic modes (BY, Bonferroni, Holm) each charge for all C(n, 2)
	// hypotheses; Westfall-Young calibrates against the resampled joint null,
	// so it is the one per-itemset mode that can see the marginal signal.
	fmt.Println("\nProcedure 1 family size by correction mode:")
	for _, corr := range []string{
		sigfim.CorrectionBY,
		sigfim.CorrectionBonferroni,
		sigfim.CorrectionHolm,
		sigfim.CorrectionWestfallYoung,
	} {
		r, err := d2.Significant(2, &sigfim.Config{Delta: 150, Seed: 11, Correction: corr})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15s |R| = %d\n", corr, r.Baseline.NumSignificant)
	}
}

package sigfim

import (
	"context"
	"fmt"
	"time"

	"sigfim/internal/core"
	"sigfim/internal/mining"
	"sigfim/internal/montecarlo"
	"sigfim/internal/randmodel"
	"sigfim/internal/trace"
)

// The multiple-testing corrections Config.Correction accepts. See the
// Correction field for the decision guide; "" selects CorrectionBY.
const (
	CorrectionBonferroni    = core.CorrectionBonferroni
	CorrectionHolm          = core.CorrectionHolm
	CorrectionBY            = core.CorrectionBY
	CorrectionWestfallYoung = core.CorrectionWestfallYoung
)

// ParseCorrection normalizes a correction name the way Config.Correction is
// interpreted: trimmed, lowercased, with "" meaning CorrectionBY. Unknown
// names return an error enumerating the accepted set.
func ParseCorrection(s string) (string, error) {
	c, err := core.ParseCorrection(s)
	if err != nil {
		return "", fmt.Errorf("sigfim: unknown correction %q (want %q, %q, %q, or %q)",
			s, CorrectionBonferroni, CorrectionHolm, CorrectionBY, CorrectionWestfallYoung)
	}
	return c, nil
}

// Config tunes the significance methodology. The zero value (or a nil
// pointer) selects the paper's experimental settings: alpha = beta = 0.05,
// epsilon = 0.01, Delta = 1000 Monte Carlo replicates.
type Config struct {
	// Alpha is the confidence budget: with probability at least 1-Alpha no
	// level of the threshold ladder is falsely rejected.
	Alpha float64
	// Beta is the FDR budget for the returned family.
	Beta float64
	// Epsilon is the Poisson-approximation tolerance of Algorithm 1.
	Epsilon float64
	// Delta is the Monte Carlo replicate count.
	Delta int
	// Seed fixes all random streams; runs are fully deterministic per seed.
	Seed uint64
	// WithBaseline additionally runs the per-itemset baseline (Procedure 1,
	// under Correction) and fills Report.Baseline.
	WithBaseline bool
	// Correction selects the multiple-testing correction Procedure 1 flags
	// discoveries with: one of CorrectionBonferroni, CorrectionHolm,
	// CorrectionBY (the default, the paper's Theorem 5 procedure), or
	// CorrectionWestfallYoung. Setting it implies WithBaseline.
	// Westfall-Young calibrates against the per-replicate minimum p-value
	// distribution collected from the same Monte Carlo replicates Algorithm 1
	// mines — under either null model — so it costs no extra replicates, only
	// one exact Binomial tail per mined itemset. It controls FWER (hence also
	// FDR) at Beta while adapting to the dependence among supports instead of
	// paying the worst-case C(n, k) penalty. Ignored by FindSMin.
	Correction string
	// MaxPatterns caps how many significant itemsets Report.Significant
	// materializes (0 = 100000). The count NumSignificant is always exact.
	MaxPatterns int
	// SwapNull replaces the independence null model with swap randomization
	// (preserving transaction lengths as well as item frequencies) — the
	// alternative null the paper's Section 1.1 anticipates. Every Monte
	// Carlo replicate re-runs the swap chain from the observed dataset in
	// pooled per-worker scratch space, so the replicate loop stays
	// allocation-free; the chain itself still costs O(proposals) per
	// replicate on top of mining. Supported by Significant only: FindSMin
	// rejects it (see FindSMin).
	SwapNull bool
	// SwapProposalsPerOccurrence sets the swap chain's burn-in per replicate
	// relative to the number of ones in the transaction matrix: each
	// replicate runs SwapProposalsPerOccurrence * |occurrences| swap
	// proposals before the randomized dataset is mined (default 8 when zero;
	// Gionis et al. report mixing after a small constant). Ignored unless
	// SwapNull is set.
	SwapProposalsPerOccurrence int
	// SwapProposals, when positive, fixes the absolute number of swap
	// proposals per replicate and overrides SwapProposalsPerOccurrence.
	// Ignored unless SwapNull is set.
	SwapProposals int
	// Workers bounds the goroutines of every parallel stage (Monte Carlo
	// replicate mining, observed-dataset counting, pattern materialization):
	// 0 uses every CPU, 1 forces serial execution. For a fixed Seed the
	// report is identical for every worker count.
	Workers int
	// Algorithm selects the frequent-itemset miner used by every mining
	// stage (one of the Algo* constants; "" = auto, which picks Eclat with
	// an automatic physical layout). All algorithms mine identical itemsets,
	// so the choice affects performance only.
	Algorithm string
	// Progress, when non-nil, receives the Monte Carlo replicate progress
	// (replicates merged so far, total Delta) from Algorithm 1's merge
	// goroutine; an internal restart (s-tilde halving) resets the count to
	// zero. The callback must be fast and must not block. It cannot
	// influence the result, and it is ignored by JSON encoding, so configs
	// arriving as JSON (e.g. through sigfimd) never carry one.
	Progress func(completed, total int) `json:"-"`
	// RemoteWorkers lists base URLs of sigfimd workers (e.g.
	// "http://10.0.0.2:8080") to shard the Monte Carlo replicates across.
	// Empty runs everything in-process. Remote execution is bit-identical to
	// a local run: each replicate consumes the same RNG substream regardless
	// of which worker executes it, failed ranges are retried on the other
	// workers and finally mined locally through the identical code path, and
	// partials merge in replicate-index order. Like Progress, the field is
	// a deployment concern, not part of the analysis identity, and is ignored
	// by JSON encoding so job requests cannot inject it.
	RemoteWorkers []string `json:"-"`
	// RemoteRangeSize pins the number of replicates per dispatched range when
	// RemoteWorkers is set. 0 autotunes: when the pool has observed worker
	// latency (an EWMA of seconds-per-replicate, fed by every successful
	// range), ranges are sized so one range takes about RemoteRangeTarget of
	// wall time on the slowest worker, clamped to [1, Delta/workers]; before
	// any observation exists a static heuristic keeps a few ranges in flight
	// per worker. Range size cannot influence the result — partials merge in
	// replicate-index order whatever the split.
	RemoteRangeSize int `json:"-"`
	// RemoteRangeTarget is the per-range wall time autotuned range sizing
	// aims for when RemoteRangeSize is 0 (0 = the 2s default). Shorter
	// targets sharpen retry/hedge granularity; longer ones amortize more
	// dispatch overhead.
	RemoteRangeTarget time.Duration `json:"-"`
	// RemoteTimeout bounds every HTTP round trip to a remote worker — the
	// per-range deadline that keeps a hung worker from stalling a job (0 =
	// the WorkerPool default of 2 minutes). Ignored when RemotePool is set
	// (the pool carries its own timeout).
	RemoteTimeout time.Duration `json:"-"`
	// RemoteHedgeDelay, when positive, enables hedged dispatch: a range whose
	// first attempt has not answered within the delay is additionally sent to
	// a second worker, and the first valid partial wins. Hedging trades
	// duplicate work for tail latency; it cannot influence the result because
	// partials are deterministic and validated before merging.
	RemoteHedgeDelay time.Duration `json:"-"`
	// RemoteRetries bounds the remote attempts per range before the
	// coordinator mines the range locally (0 = one attempt per configured
	// worker).
	RemoteRetries int `json:"-"`
	// RemotePool, when non-nil, supplies a caller-owned worker supervisor and
	// overrides RemoteWorkers/RemoteTimeout. Sharing one pool across analyses
	// (as a sigfimd coordinator does across jobs) preserves worker-health
	// state — ejections, backoff schedules, statistics — between runs. The
	// caller closes it; per-run configs instead list RemoteWorkers and get an
	// ephemeral pool for the duration of the call.
	RemotePool *WorkerPool `json:"-"`
}

// remoteEnabled reports whether the Monte Carlo replicates should shard
// across the distributed fabric.
func (c *Config) remoteEnabled() bool {
	return c != nil && (c.RemotePool != nil || len(c.RemoteWorkers) > 0)
}

// autotuneRangeSize resolves the range size for one remote run: an explicit
// RemoteRangeSize is pinned; 0 consults the pool's observed per-worker
// latency (see WorkerPool.AutotuneRangeSize), and returns 0 — montecarlo's
// static heuristic — when the pool has no observations yet.
func autotuneRangeSize(pool *WorkerPool, cfg *Config, delta int) int {
	if cfg.RemoteRangeSize != 0 {
		return cfg.RemoteRangeSize
	}
	if delta == 0 {
		delta = 1000
	}
	return pool.AutotuneRangeSize(delta, cfg.RemoteRangeTarget)
}

func (c *Config) withDefaults() (core.Options, error) {
	o := core.Options{}
	if c != nil {
		o.Alpha = c.Alpha
		o.Beta = c.Beta
		o.Epsilon = c.Epsilon
		o.Delta = c.Delta
		o.Seed = c.Seed
		o.RunProcedure1 = c.WithBaseline || c.Correction != ""
		o.Workers = c.Workers
		o.Progress = c.Progress
		algo, err := mining.ParseAlgorithm(c.Algorithm)
		if err != nil {
			return o, fmt.Errorf("sigfim: unknown algorithm %q", c.Algorithm)
		}
		o.Algorithm = algo
		correction, err := ParseCorrection(c.Correction)
		if err != nil {
			return o, err
		}
		o.Correction = correction
	}
	return o, nil
}

// LadderStep reports one comparison of the support-threshold ladder.
type LadderStep struct {
	S        int     // tested support threshold
	Q        int64   // observed count of k-itemsets with support >= S
	Lambda   float64 // null expectation of that count
	PValue   float64 // Pr(Poisson(Lambda) >= Q)
	Rejected bool
}

// BaselineReport carries the Procedure 1 outcome under the configured
// multiple-testing correction (Benjamini-Yekutieli unless overridden).
type BaselineReport struct {
	// Correction names the multiple-testing correction the family was
	// flagged under (one of the Correction* constants).
	Correction string
	// NumSignificant is |R|, the size of the flagged family.
	NumSignificant int
	// NumTested is |F_k(s_min)|, the number of itemsets whose p-value was
	// computed.
	NumTested int
	// Significant lists the flagged itemsets ascending by p-value.
	Significant []Pattern
}

// Report is the outcome of the significance analysis for one itemset size.
type Report struct {
	// K is the analyzed itemset size.
	K int
	// SMin is the estimated Poisson threshold ŝ_min (Algorithm 1).
	SMin int
	// SStar is the selected support threshold s*; meaningful only when
	// Infinite is false.
	SStar int
	// Infinite reports that no threshold was significant (s* = ∞): the
	// dataset's high-support structure is consistent with the null model.
	Infinite bool
	// NumSignificant is Q_{k,s*}, the number of significant k-itemsets.
	NumSignificant int64
	// Lambda is lambda(s*), the expected count in a random twin.
	Lambda float64
	// Alpha and Beta echo the budgets the guarantee holds for.
	Alpha, Beta float64
	// Steps traces the threshold ladder.
	Steps []LadderStep
	// Significant materializes the flagged itemsets (up to the configured
	// cap), descending by support. Empty when Infinite.
	Significant []Pattern
	// Baseline is the Procedure 1 comparison (nil unless requested).
	Baseline *BaselineReport
	// PowerRatio is NumSignificant / |R| when the baseline ran and both
	// families are nonempty; the paper's Table 5 ratio r.
	PowerRatio float64
}

// Significant runs the full methodology for k-itemsets: Algorithm 1 to find
// the Poisson regime, then Procedure 2 to select s* with the FDR guarantee.
func (ds *Dataset) Significant(k int, cfg *Config) (*Report, error) {
	return ds.SignificantCtx(context.Background(), k, cfg)
}

// SignificantCtx is Significant with cooperative cancellation: the context
// is checked at replicate boundaries of the Monte Carlo loop and between
// pipeline stages. A canceled run returns ctx.Err() (wrapping
// context.Canceled or context.DeadlineExceeded) and never a partial Report,
// so for a fixed seed every report that IS returned is bit-identical
// regardless of how many sibling runs were canceled around it.
func (ds *Dataset) SignificantCtx(ctx context.Context, k int, cfg *Config) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if cfg != nil && cfg.SwapNull {
		opts.NullModel = &randmodel.SwapModel{
			Base:                   ds.d,
			ProposalsPerOccurrence: cfg.SwapProposalsPerOccurrence,
			Proposals:              cfg.SwapProposals,
		}
	}
	if cfg.remoteEnabled() {
		runner, pool, cleanup := ds.newRangeRunner(cfg)
		defer cleanup()
		opts.Runner = runner
		opts.RangeSize = autotuneRangeSize(pool, cfg, opts.Delta)
	}
	_, warm := trace.Start(ctx, "dataset.warmup")
	v := ds.vertical()
	warm.End()
	a, err := core.AnalyzeCtx(ctx, "dataset", v, k, opts)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		K:     k,
		SMin:  a.Proc2.SMin,
		Alpha: a.Proc2.Alpha,
		Beta:  a.Proc2.Beta,
	}
	for _, st := range a.Proc2.Steps {
		rep.Steps = append(rep.Steps, LadderStep{
			S: st.S, Q: st.Q, Lambda: st.Lambda, PValue: st.PValue, Rejected: st.Rejected,
		})
	}
	if a.Proc2.Found {
		rep.SStar = a.Proc2.SStar
		rep.NumSignificant = a.Proc2.Q
		rep.Lambda = a.Proc2.Lambda
		maxPat := 100000
		if cfg != nil && cfg.MaxPatterns > 0 {
			maxPat = cfg.MaxPatterns
		}
		if rep.NumSignificant <= int64(maxPat) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			ps, err := ds.mineParsed(opts.Algorithm, MineOptions{K: k, MinSupport: rep.SStar, Workers: opts.Workers})
			if err != nil {
				return nil, err
			}
			rep.Significant = ps
		}
	} else {
		rep.Infinite = true
	}
	if a.Proc1 != nil {
		b := &BaselineReport{
			Correction:     a.Proc1.Correction,
			NumSignificant: a.Proc1.FamilySize,
			NumTested:      a.Proc1.NumMined,
		}
		for _, s := range a.Proc1.Family {
			b.Significant = append(b.Significant, Pattern{Items: s.Items, Support: s.Support})
		}
		rep.Baseline = b
		rep.PowerRatio = a.PowerRatio()
	}
	return rep, nil
}

// FindSMin runs Algorithm 1 alone against the independence null model and
// returns the estimated Poisson threshold ŝ_min for size-k itemsets.
//
// FindSMin is independence-only by contract: it reproduces the paper's
// published Algorithm 1, whose soundness guarantee (Theorem 4) is stated for
// the independence null, and a standalone threshold quoted without its
// ladder is only interpretable against that reference model. Setting
// Config.SwapNull is therefore rejected with an error rather than silently
// answered with an independence-model threshold — a swap-null analysis gets
// its ŝ_min (and the ladder that makes it meaningful) from Significant.
func (ds *Dataset) FindSMin(k int, cfg *Config) (int, error) {
	return ds.FindSMinCtx(context.Background(), k, cfg)
}

// FindSMinCtx is FindSMin with cooperative cancellation; see SignificantCtx
// for the cancellation contract.
func (ds *Dataset) FindSMinCtx(ctx context.Context, k int, cfg *Config) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg != nil && cfg.SwapNull {
		return 0, fmt.Errorf("sigfim: FindSMin supports only the independence null (Config.SwapNull must be false); run Significant for a swap-null analysis")
	}
	opts, err := cfg.withDefaults()
	if err != nil {
		return 0, err
	}
	if opts.Delta == 0 {
		opts.Delta = 1000
	}
	if opts.Epsilon == 0 {
		opts.Epsilon = 0.01
	}
	_, warm := trace.Start(ctx, "dataset.warmup")
	freqs := ds.frequencies()
	warm.End()
	m := randmodel.IndependentModel{
		T:     ds.d.NumTransactions(),
		Freqs: freqs,
	}
	mcfg := montecarlo.Config{
		K: k, Delta: opts.Delta, Epsilon: opts.Epsilon, Seed: opts.Seed,
		Workers: opts.Workers, Algorithm: opts.Algorithm, Progress: opts.Progress,
	}
	if cfg.remoteEnabled() {
		runner, pool, cleanup := ds.newRangeRunner(cfg)
		defer cleanup()
		mcfg.Runner = runner
		mcfg.RangeSize = autotuneRangeSize(pool, cfg, opts.Delta)
	}
	res, err := montecarlo.FindPoissonThresholdCtx(ctx, m, mcfg)
	if err != nil {
		return 0, fmt.Errorf("sigfim: %w", err)
	}
	return res.SMin, nil
}

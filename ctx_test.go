package sigfim

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
)

// TestHashDeterministic pins the content-hash contract: equality iff equal
// canonical content, independence from input ordering/duplication (New
// sorts and dedups), and stability under concurrent computation.
func TestHashDeterministic(t *testing.T) {
	a, err := FromTransactions([][]uint32{{3, 1, 2}, {5, 5, 4}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromTransactions([][]uint32{{1, 2, 3}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Errorf("canonically equal datasets hash differently: %s vs %s", a.Hash(), b.Hash())
	}
	c, err := FromTransactions([][]uint32{{1, 2, 3}, {4}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() == c.Hash() {
		t.Error("different datasets share a hash")
	}
	// Transaction ORDER is part of the identity (datasets are sequences).
	d, err := FromTransactions([][]uint32{{4, 5}, {1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() == d.Hash() {
		t.Error("reordered transactions share a hash")
	}
	// Concurrent first computation must agree (sync.Once guard).
	e, _ := FromTransactions([][]uint32{{1, 2, 3}, {4, 5}})
	var wg sync.WaitGroup
	hashes := make([]string, 8)
	for i := range hashes {
		wg.Add(1)
		go func(i int) { defer wg.Done(); hashes[i] = e.Hash() }(i)
	}
	wg.Wait()
	for _, h := range hashes {
		if h != a.Hash() {
			t.Fatalf("concurrent hash %s != %s", h, a.Hash())
		}
	}
}

// TestCtxVariantsMatchAndCancel verifies the context-aware entry points: a
// background context reproduces the plain calls exactly, and a canceled
// context aborts with context.Canceled without producing a result.
func TestCtxVariantsMatchAndCancel(t *testing.T) {
	d, err := OpenFIMI("testdata/golden_input.dat")
	if err != nil {
		t.Fatal(err)
	}
	cfg := &Config{Delta: 40, Seed: 5}

	want, err := d.Significant(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.SignificantCtx(context.Background(), 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("SignificantCtx(background) differs from Significant")
	}

	wantS, err := d.FindSMin(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotS, err := d.FindSMinCtx(context.Background(), 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gotS != wantS {
		t.Errorf("FindSMinCtx = %d, FindSMin = %d", gotS, wantS)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if rep, err := d.SignificantCtx(canceled, 2, cfg); !errors.Is(err, context.Canceled) || rep != nil {
		t.Errorf("canceled SignificantCtx: rep=%v err=%v, want nil/context.Canceled", rep, err)
	}
	if _, err := d.FindSMinCtx(canceled, 2, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled FindSMinCtx: err=%v, want context.Canceled", err)
	}

	// A run canceled midway must not perturb a subsequent complete run.
	after, err := d.Significant(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, want) {
		t.Error("report after canceled run differs from baseline")
	}
}

// TestProgressCallback checks the replicate progress plumbing end to end
// through the public Config.
func TestProgressCallback(t *testing.T) {
	d, err := OpenFIMI("testdata/golden_input.dat")
	if err != nil {
		t.Fatal(err)
	}
	var last, calls, total int
	cfg := &Config{Delta: 40, Seed: 5, Workers: 1, Progress: func(done, tot int) {
		calls++
		last = done
		total = tot
	}}
	if _, err := d.FindSMin(2, cfg); err != nil {
		t.Fatal(err)
	}
	if total != 40 || last != 40 || calls < 40 {
		t.Errorf("progress: calls=%d last=%d total=%d, want >=40 calls ending at 40/40", calls, last, total)
	}
}

module sigfim

go 1.22

// Package sigfim identifies statistically significant frequent itemsets in
// transactional data, implementing the methodology of Kirsch, Mitzenmacher,
// Pietracaprina, Pucci, Upfal and Vandin, "An Efficient Rigorous Approach for
// Identifying Statistically Significant Frequent Itemsets" (ACM PODS 2009).
//
// Classical frequent itemset mining returns every itemset whose support
// clears a user-chosen threshold, with no statistical guarantee: in a random
// dataset with the same item frequencies, plenty of itemsets clear any given
// threshold by chance. This package determines, for a fixed itemset size k,
// a support threshold s* such that the family of k-itemsets with support at
// least s* deviates significantly from the independence null model AND
// carries a bounded false discovery rate:
//
//   - With confidence 1-alpha, the count of k-itemsets with support >= s* is
//     not explained by the null model (a random dataset with the same number
//     of transactions and the same item frequencies).
//   - The expected fraction of false discoveries in the returned family is
//     at most beta.
//
// The machinery behind the guarantee is a Chen-Stein Poisson approximation:
// above a computable support s_min, the number of frequent k-itemsets in a
// random dataset is approximately Poisson, so observed counts can be tested
// against exact Poisson tails. s_min itself is estimated by Monte Carlo
// (Algorithm 1 of the paper), and a Benjamini-Yekutieli per-itemset baseline
// (Procedure 1) is included for comparison.
//
// # Quick start
//
//	d, err := sigfim.OpenFIMI("transactions.dat")
//	if err != nil { ... }
//	report, err := d.Significant(2, nil) // pairs, default alpha=beta=0.05
//	if err != nil { ... }
//	if report.Infinite {
//	    fmt.Println("no significant support threshold: data looks random")
//	} else {
//	    fmt.Printf("s* = %d: %d significant pairs (null expects %.2f)\n",
//	        report.SStar, report.NumSignificant, report.Lambda)
//	}
//
// Lower-level entry points expose the individual components: Mine for plain
// frequent itemset mining (Apriori, Eclat, FP-Growth), FindSMin for the
// Poisson threshold alone, RandomTwin / SwapTwin for null-model dataset
// generation, and BenchmarkProfile for the paper's six synthetic benchmark
// profiles.
//
// # Parallelism and determinism
//
// Mining and the significance pipeline run on a parallel engine. Both
// MineOptions and Config expose a Workers knob: 0 (the default) uses every
// CPU, 1 forces serial execution, and any other value bounds the worker
// goroutines. Eclat shards the prefix tree's first-item equivalence classes
// across the pool, Apriori parallelizes its candidate-counting scans over
// transaction chunks, and the Monte Carlo estimator splits workers between
// replicate-level and intra-mine parallelism (FP-Growth mines serially).
//
// The engine guarantees determinism: for a fixed Seed, every result —
// including FindSMin's threshold and the complete Significant report — is
// identical for every worker count. Parallel reductions merge per-worker
// buffers in a fixed order (mining output order even matches the serial DFS
// exactly), and each Monte Carlo replicate derives its RNG from its own
// per-replicate seed, so scheduling never influences random streams.
package sigfim

// Package sigfim identifies statistically significant frequent itemsets in
// transactional data, implementing the methodology of Kirsch, Mitzenmacher,
// Pietracaprina, Pucci, Upfal and Vandin, "An Efficient Rigorous Approach for
// Identifying Statistically Significant Frequent Itemsets" (ACM PODS 2009).
//
// Classical frequent itemset mining returns every itemset whose support
// clears a user-chosen threshold, with no statistical guarantee: in a random
// dataset with the same item frequencies, plenty of itemsets clear any given
// threshold by chance. This package determines, for a fixed itemset size k,
// a support threshold s* such that the family of k-itemsets with support at
// least s* deviates significantly from the independence null model AND
// carries a bounded false discovery rate:
//
//   - With confidence 1-alpha, the count of k-itemsets with support >= s* is
//     not explained by the null model (a random dataset with the same number
//     of transactions and the same item frequencies).
//   - The expected fraction of false discoveries in the returned family is
//     at most beta.
//
// # Quick start
//
//	d, err := sigfim.OpenFIMI("transactions.dat")
//	if err != nil { ... }
//	report, err := d.Significant(2, nil) // pairs, default alpha=beta=0.05
//	if err != nil { ... }
//	if report.Infinite {
//	    fmt.Println("no significant support threshold: data looks random")
//	} else {
//	    fmt.Printf("s* = %d: %d significant pairs (null expects %.2f)\n",
//	        report.SStar, report.NumSignificant, report.Lambda)
//	}
//
// # Architecture: paper concepts to packages
//
// The pipeline behind Significant maps onto the internal packages as
// follows; every stage is also reachable individually through the exported
// entry points named below.
//
// Random support model (paper Section 2). The null hypothesis is a dataset
// with the same transaction count t and per-item frequencies f_i, items
// placed independently. internal/randmodel implements it (IndependentModel)
// along with the alternative swap-randomization null (*SwapModel) that
// additionally preserves transaction lengths. Exported as
// Dataset.RandomTwin, Dataset.SwapTwin, GenerateRandom, and — for the
// significance pipeline — Config.SwapNull with its chain-length knobs
// (see "Null models" below).
//
// Poisson regime search, s_min (Algorithm 1). Above a threshold s_min the
// count Q_{k,s} of frequent k-itemsets in a random dataset is approximately
// Poisson, by a Chen-Stein argument whose b1/b2 terms are estimated by Monte
// Carlo: internal/montecarlo generates Delta random replicates, mines each,
// and searches the empirical bound curve for b1+b2 <= eps/4.
// internal/chenstein provides the exact analytic counterpart used as a test
// oracle. Exported as Dataset.FindSMin; the replicate count for a target
// confidence is montecarlo.DeltaForConfidence (Theorem 4).
//
// Threshold selection with FDR control, s* (Procedure 2). internal/core
// tests the geometric ladder s_i = s_min + 2^i against exact Poisson tails
// (internal/stats), rejecting when the observed count Q_{k,s_i} is both
// improbable (p <= alpha_i) and large relative to the null mean
// (Q >= beta_i * lambda_i); the first rejected level is s*. The ladder's
// counts come from one support-histogram mining pass (internal/mining).
// Exported as Dataset.Significant, which returns the full Report including
// the ladder trace.
//
// Per-itemset baseline (Procedure 1). A multiple-testing correction over
// individual itemset p-values, implemented in internal/mht and driven by
// internal/core; the power ratio r = Q_{k,s*}/|R| is the paper's Table 5
// comparison. Exported via Config.WithBaseline and Report.Baseline.
//
// Statistics layer. The correction itself is pluggable (Config.Correction;
// the Correction* constants; setting it implies WithBaseline). internal/mht
// is the pure statistics layer — selection and adjusted-p functions over
// sorted p-value slices, no mining types — and internal/core.Procedure1Ex
// dispatches on the chosen mode: the paper's Benjamini-Yekutieli step-up
// (FDR, the default), Bonferroni and Holm adjusted p-values (FWER), or the
// Westfall-Young min-p resampling adjustment (FWER learned from the joint
// null distribution rather than bounded analytically). Westfall-Young rides
// the replicate engine: under montecarlo.Config.CollectMinPs each Monte
// Carlo replicate also records the minimum p-value over its own mined
// k-itemsets, the per-replicate minima travel inside the fabric's partials
// (so the correction shards across remote workers bit-identically), and
// mht.WestfallYoung turns observed p-values plus the Delta null minima into
// step-down monotone adjusted p-values. Every correction rejects a prefix
// of the sorted p-values with ties kept together, so all four modes share
// Procedure 1's threshold and family-size machinery, and since FWER control
// implies FDR control each slots into the same beta budget. The report's
// Baseline.Correction field records which mode produced the family.
//
// Mining engine. internal/mining implements the miners every stage above
// consumes: Eclat over sorted tid lists or dense bitsets (layout chosen by
// density), level-wise Apriori with a candidate prefix trie, FP-Growth with
// sharded conditional pattern trees, a hash-based path for very low
// thresholds on sparse data, closed and maximal itemset enumeration, and
// counting primitives (CountK, SupportHistogram) that avoid materializing
// enormous families. internal/dataset supplies the horizontal and vertical
// layouts plus FIMI I/O; internal/bitset the intersection kernels.
// Exported as Dataset.Mine (MineOptions selects algorithm, K, threshold,
// workers), Dataset.CountK, Dataset.ClosedItemsets, Dataset.MaximalItemsets,
// and Dataset.TopKItemsets.
//
// Association rules. internal/rules derives rules from mined itemsets with
// exact Binomial and Fisher significance p-values and BY selection,
// exported as Dataset.Rules and Dataset.SignificantRules.
//
// Benchmarks and experiments. internal/synth reproduces the paper's six
// Table 1 dataset profiles as deterministic generators (exported as
// BenchmarkProfile / BenchmarkSpec); cmd/experiments regenerates Tables
// 1-5, cmd/sigfim is the general-purpose mining CLI, and cmd/fimigen
// synthesizes FIMI files.
//
// Service layer. internal/service and cmd/sigfimd expose the pipeline as a
// long-running HTTP service: a registry of named immutable datasets (each
// content-hashed via Dataset.Hash, with the vertical index built once at
// registration), an asynchronous job engine with five job kinds — the
// statistical kinds significant (SignificantCtx) and smin (FindSMinCtx)
// plus the mining kinds closed, maximal, and rules, whose responses are
// bit-identical to the corresponding direct library calls — on a bounded
// worker pool with queue backpressure and cooperative cancellation, and an
// LRU result cache keyed by (dataset hash, canonicalized request) that
// serves repeated queries the exact bytes of the original computation —
// sound because the pipeline is deterministic for a fixed seed. The context-aware entry points
// (SignificantCtx, FindSMinCtx) check the context at replicate boundaries of
// the Monte Carlo loop; a canceled run returns ctx.Err() and never a partial
// result, so cancellation cannot perturb results that do complete. Config's
// Progress callback surfaces replicate progress for job status reporting.
//
// The service is observable on three surfaces. GET /metrics renders a
// dependency-free Prometheus text exposition (job counters by kind and
// terminal state, queue depth, in-flight gauge, cache hit/miss/entry
// counters, total replicates merged, and per-kind fixed-bucket job-duration
// histograms that observe computed jobs only). GET /v1/jobs/{id}/events
// streams one job's lifecycle as Server-Sent Events: "state" frames for
// every transition (the terminal frame carries the result, matching
// GET /v1/jobs/{id} exactly) and "progress" frames coalesced to at most one
// per 100ms per subscriber, so a stalled client can neither miss a terminal
// state nor back-pressure the engine. internal/client wraps the whole HTTP
// API, including an SSE watcher, and backs the "sigfim jobs" subcommand
// (list, get, watch). Instrumentation never touches result bytes: the
// determinism and cache bit-identity contracts are unaffected.
//
// Distributed replicate fabric. Monte Carlo replicates are embarrassingly
// parallel, so Algorithm 1's replicate loop is factored into an explicit
// range job: internal/montecarlo splits the Delta replicates into
// [from, to) ranges, and MineRange executes one range into a serializable
// Partial that the coordinator folds back replicate-by-replicate in index
// order. The in-process worker pool and remote workers run this same code
// path — "distributed" is only a dispatch decision. Setting
// Config.RemoteWorkers to sigfimd base URLs makes Significant/FindSMin fan
// ranges out over those workers via POST /v1/partials (every sigfimd
// instance serves it; cmd/sigfimd -workers-remote configures a coordinator
// service, and the sigfim smin/significant CLIs take the same flag). A
// PartialRequest addresses the dataset by its SHA-256 content hash, so a
// worker provably mines the same bytes or refuses. Because each replicate
// index derives its RNG from its own per-replicate seed and partials merge
// in replicate order, the distributed run is byte-identical to the
// single-process run for both null models, any worker count, and any range
// size — the same bit-identity contract the in-process pool honors, pinned
// end to end by distributed_determinism_test.go. Remote topology is a
// deployment concern, not part of the query: RemoteWorkers, RemoteRangeSize,
// and the supervision knobs below are excluded from job-request JSON and
// from the result-cache key.
//
// Fault tolerance. Dispatch runs through a WorkerPool supervisor that
// tracks per-worker health from request outcomes plus periodic /healthz
// probes: every range request carries a hard HTTP deadline
// (Config.RemoteTimeout), a failed range is retried on the next eligible
// worker and finally mined locally through the identical MineRange path, a
// worker that fails repeatedly is ejected and re-probed with exponential
// backoff and jitter until it answers again (then re-admitted with a clean
// slate), a 503/429 shed response backs the worker off for its Retry-After
// window without counting toward ejection, and Config.RemoteHedgeDelay
// optionally re-dispatches a straggling range to a second worker with the
// first valid partial winning. The worker side sheds load rather than queue
// unboundedly: POST /v1/partials answers 503 + Retry-After while draining
// or over its concurrent-partials cap. Every accepted partial is
// size-bounded, parsed as exactly one JSON document, and validated against
// the requested range before merging, so supervision decides only where a
// range executes — never what it computes — and the bit-identity contract
// holds under every failure mode, which a chaos-proxy fault-injection
// harness (connection drops, latency spikes, truncation, corrupt JSON,
// wrong-range echoes, 5xx bursts) pins in distributed_determinism_test.go.
// A shared supervisor can be passed via Config.RemotePool; a sigfimd
// coordinator keeps one pool across all jobs so health state persists
// between them.
//
// Observability closes the loop on the fabric. Every job records a span
// trace (internal/trace, dependency-free): queue wait, dataset warm-up, the
// Monte Carlo phases, each s̃-halving iteration, and one span per dispatched
// replicate range with its per-worker attempts (URL, attempt number, hedged
// flag, outcome). The recorder rides the context, is nil-safe, and is pure
// observation — trace_noninterference_test.go pins that tracing on or off
// yields byte-identical reports. Traces propagate to workers in the
// X-Sigfim-Trace header so worker logs correlate by trace_id/job_id, are
// retained in a bounded LRU, and are served at GET /v1/jobs/{id}/trace
// ("sigfim jobs trace" renders the tree). The same per-worker latency that
// the trace records feeds a range-latency histogram and EWMA
// (sigfimd_fabric_range_seconds, sigfimd_fabric_replicate_seconds_ewma),
// and when Config.RemoteRangeSize is 0 the pool autotunes range sizes from
// that EWMA toward Config.RemoteRangeTarget of wall time per range
// (default 2s, clamped to [1, Delta/workers]) — sizing changes batching
// only, never bytes. An opt-in net/http/pprof listener (sigfimd
// -debug-addr) completes the surface.
//
// # Null models
//
// Two null models ship with the package, and both are first-class citizens
// of the replicate engine: each implements randmodel.InPlaceGenerator, so
// the Monte Carlo loop stays allocation-free in steady state under either.
//
//   - Independence (the default; the paper's reference model): item i
//     appears in each of t transactions independently with its observed
//     frequency f_i. Item supports are preserved in expectation only, and
//     transaction lengths vary freely.
//   - Swap randomization (Config.SwapNull; Gionis et al., KDD 2006): a
//     Markov chain of margin-preserving 2x2 swaps started at the observed
//     dataset. Every replicate preserves BOTH the exact item supports and
//     the exact transaction lengths, so it asks the sharper question of
//     whether the joint structure is explainable by the margins alone.
//
// The swap chain's burn-in is paid per replicate (each replicate restarts
// the chain from the observed dataset, so replicates are independent):
// Config.SwapProposalsPerOccurrence sets it relative to the number of ones
// in the transaction matrix (default 8; Gionis et al. report mixing after a
// small constant), and Config.SwapProposals, when positive, fixes the
// absolute per-replicate proposal count instead.
//
// The swap null drives Significant and SignificantCtx only. FindSMin is
// independence-only by contract: it reproduces the paper's published
// Algorithm 1, whose soundness guarantee is stated for the independence
// null, and a standalone threshold quoted without its ladder is only
// interpretable against that reference model — so setting Config.SwapNull
// makes FindSMin return an error rather than silently answering with an
// independence-model threshold, and sigfimd maps the same rejection of
// swap smin jobs to HTTP 400. A swap-null analysis reads its s_min from the
// Significant report.
//
// The sigfimd result cache canonicalizes the null-model configuration into
// its key as three fields: null_model ("independence" or "swap"), swap_ppo
// (the per-occurrence burn-in, with the default of 8 filled in), and
// swap_proposals (the absolute override; when it is set, swap_ppo is zeroed
// as irrelevant). Under the independence null both swap fields are zeroed,
// so stray chain knobs never split the cache.
//
// # Parallelism and determinism
//
// Mining and the significance pipeline run on a parallel engine. Both
// MineOptions and Config expose a Workers knob: 0 (the default) uses every
// CPU, 1 forces serial execution, and any other value bounds the worker
// goroutines. Eclat shards the prefix tree's first-item equivalence classes
// across the pool, Apriori parallelizes its candidate-counting scans over
// transaction chunks, FP-Growth shards the header-table suffix classes of
// the global tree (its support-counting and transaction-preprocessing scans
// also run chunked), and the Monte Carlo estimator splits workers between
// replicate-level and intra-mine parallelism.
//
// Both option structs also expose an Algorithm knob (the Algo* constants)
// selecting the miner that drives every stage — plain mining, Monte Carlo
// replicate mining, and Procedure 2's counting pass. Every algorithm mines
// exactly the same itemsets, so the choice affects performance only.
//
// The engine guarantees determinism: for a fixed Seed and algorithm, every
// result — including FindSMin's threshold and the complete Significant
// report — is identical for every worker count. Parallel reductions merge
// per-worker buffers in a fixed order (mining output order even matches the
// serial order exactly), and each Monte Carlo replicate derives its RNG
// from its own per-replicate seed, so scheduling never influences random
// streams.
//
// # Performance: the allocation-free replicate engine
//
// FindSMin's Monte Carlo estimate mines Delta random replicates per
// s-tilde-halving, making generate-mine-merge the hot loop of the whole
// package. That loop reuses all of its storage in steady state:
//
//   - Generation: models implementing randmodel.InPlaceGenerator refill a
//     per-worker vertical dataset in place, reusing the per-item column
//     arrays across replicates; the consumed random stream is identical to
//     fresh generation, so results cannot differ.
//   - Mining: every kernel (Eclat over tid lists or bitsets, FP-Growth,
//     Apriori's horizontal conversion, the low-threshold hash path) threads
//     a reusable per-worker mining.Scratch carrying its DFS buffers, dense
//     columns, tree arenas, and tables. A Scratch is single-goroutine but
//     reusable across calls and dataset shapes; a worker's second replicate
//     allocates nothing.
//   - Collection: the union set W is indexed by a string-free
//     open-addressing table over the packed item tuples
//     (mining.ItemsetTable) instead of a map keyed by per-itemset strings,
//     and replicate outputs travel in flat recycled arrays.
//
// BENCH_montecarlo.json records the measured effect (about 30-400x fewer
// allocations per mineAll, with end-to-end speedups where the merge
// dominated) and the commands to regenerate the numbers.
package sigfim

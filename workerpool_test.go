package sigfim

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// White-box supervisor tests: state transitions, the probe backoff schedule,
// and failure classification are exercised against a fake clock and a
// stubbed probe, so nothing here sleeps on real time or opens a socket.

// fakeClock is a race-safe manual clock for WorkerPoolOptions.now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// waitFor polls cond until it holds or the deadline expires. Probe outcomes
// are applied by pool goroutines, so tests observe them with a poll instead
// of a sleep.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// state reads one worker's supervision state.
func (p *WorkerPool) state(url string) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if w := p.findLocked(url); w != nil {
		return w.state
	}
	return ""
}

func TestWorkerPoolEjectionAfterConsecutiveFailures(t *testing.T) {
	clk := newFakeClock()
	p := NewWorkerPool([]string{"http://a", "http://b"}, WorkerPoolOptions{
		EjectAfter: 3,
		now:        clk.now,
		probe:      func(ctx context.Context, base string) error { return errors.New("down") },
	})
	defer p.Close()

	hard := errors.New("connection refused")
	p.reportFailure("http://a", hard)
	if got := p.state("http://a"); got != WorkerSuspect {
		t.Fatalf("after 1 failure: state %q, want suspect", got)
	}
	// A suspect worker is still eligible, but ordered after healthy ones.
	if got := p.pick(2); len(got) != 2 || got[0] != "http://b" || got[1] != "http://a" {
		t.Fatalf("pick with one suspect = %v, want healthy b before suspect a", got)
	}

	p.reportFailure("http://a", hard)
	p.reportFailure("http://a", hard)
	if got := p.state("http://a"); got != WorkerEjected {
		t.Fatalf("after 3 consecutive failures: state %q, want ejected", got)
	}
	if got := p.pick(2); len(got) != 1 || got[0] != "http://b" {
		t.Fatalf("pick with a ejected = %v, want [http://b]", got)
	}

	st := p.Snapshot()
	if st.Workers[0].Ejections != 1 || st.Workers[0].Failures != 3 {
		t.Fatalf("snapshot = %+v, want 1 ejection and 3 failures for a", st.Workers[0])
	}
}

func TestWorkerPoolSuccessResetsStreak(t *testing.T) {
	clk := newFakeClock()
	p := NewWorkerPool([]string{"http://a"}, WorkerPoolOptions{EjectAfter: 3, now: clk.now})
	defer p.Close()

	hard := errors.New("timeout")
	p.reportFailure("http://a", hard)
	p.reportFailure("http://a", hard)
	p.reportSuccess("http://a", 40*time.Millisecond, 10)
	if got := p.state("http://a"); got != WorkerHealthy {
		t.Fatalf("after success: state %q, want healthy", got)
	}
	// The streak restarted: two more failures must not eject.
	p.reportFailure("http://a", hard)
	p.reportFailure("http://a", hard)
	if got := p.state("http://a"); got != WorkerSuspect {
		t.Fatalf("2 failures after a success: state %q, want suspect (streak reset)", got)
	}
}

// TestWorkerPoolSheddingClassification: a 503/429 backs the worker off for
// its Retry-After window without advancing the failure streak — the breaker
// must never trip on load shedding.
func TestWorkerPoolSheddingClassification(t *testing.T) {
	clk := newFakeClock()
	p := NewWorkerPool([]string{"http://a"}, WorkerPoolOptions{EjectAfter: 1, now: clk.now})
	defer p.Close()

	for i := 0; i < 5; i++ {
		p.reportFailure("http://a", &workerHTTPError{
			url: "http://a", status: http.StatusServiceUnavailable, retryAfter: 10 * time.Second,
		})
	}
	if got := p.state("http://a"); got != WorkerHealthy {
		t.Fatalf("after 5 shed responses with EjectAfter=1: state %q, want healthy", got)
	}
	// Backed off: ineligible until the Retry-After window passes.
	if got := p.pick(1); len(got) != 0 {
		t.Fatalf("pick during backoff window = %v, want none", got)
	}
	clk.advance(11 * time.Second)
	if got := p.pick(1); len(got) != 1 {
		t.Fatalf("pick after backoff window = %v, want [http://a]", got)
	}
	st := p.Snapshot()
	if st.Workers[0].Backoffs != 5 || st.Workers[0].Failures != 0 {
		t.Fatalf("snapshot = %+v, want 5 backoffs and 0 failures", st.Workers[0])
	}

	// A plain 500 is a hard failure and (EjectAfter=1) ejects immediately.
	p.reportFailure("http://a", &workerHTTPError{url: "http://a", status: http.StatusInternalServerError})
	if got := p.state("http://a"); got != WorkerEjected {
		t.Fatalf("after a 500 with EjectAfter=1: state %q, want ejected", got)
	}
}

// TestWorkerPoolReadmission: an ejected worker whose probe succeeds returns
// to service with a clean slate.
func TestWorkerPoolReadmission(t *testing.T) {
	clk := newFakeClock()
	var probeOK sync.Map // url -> bool
	p := NewWorkerPool([]string{"http://a", "http://b"}, WorkerPoolOptions{
		EjectAfter:    1,
		ProbeInterval: 2 * time.Second,
		now:           clk.now,
		probe: func(ctx context.Context, base string) error {
			if ok, _ := probeOK.Load(base); ok == true {
				return nil
			}
			return errors.New("still down")
		},
	})
	defer p.Close()

	p.reportFailure("http://a", errors.New("connect: refused"))
	if got := p.state("http://a"); got != WorkerEjected {
		t.Fatalf("state %q, want ejected", got)
	}

	// Until the worker recovers, probes fail and it stays ejected.
	clk.advance(time.Minute)
	p.probeDue()
	waitFor(t, "failed probe applied", func() bool {
		p.mu.Lock()
		defer p.mu.Unlock()
		return !p.workers[0].probing && p.workers[0].probeBackoff > 2*time.Second
	})
	if got := p.state("http://a"); got != WorkerEjected {
		t.Fatalf("after failed probe: state %q, want ejected", got)
	}

	// The worker comes back; the next due probe re-admits it.
	probeOK.Store("http://a", true)
	clk.advance(time.Minute)
	p.probeDue()
	waitFor(t, "re-admission", func() bool { return p.state("http://a") == WorkerHealthy })

	st := p.Snapshot()
	if st.Workers[0].Readmissions != 1 {
		t.Fatalf("readmissions = %d, want 1", st.Workers[0].Readmissions)
	}
	if got := p.pick(2); len(got) != 2 {
		t.Fatalf("pick after re-admission = %v, want both workers", got)
	}
}

// TestWorkerPoolProbeBackoffSchedule: failed probes double the re-probe
// delay up to MaxProbeBackoff, and every scheduled delay is jittered within
// ±25% of the nominal backoff.
func TestWorkerPoolProbeBackoffSchedule(t *testing.T) {
	clk := newFakeClock()
	p := NewWorkerPool([]string{"http://a"}, WorkerPoolOptions{
		EjectAfter:      1,
		ProbeInterval:   2 * time.Second,
		MaxProbeBackoff: 8 * time.Second,
		now:             clk.now,
		probe:           func(ctx context.Context, base string) error { return errors.New("down") },
	})
	defer p.Close()

	p.reportFailure("http://a", errors.New("boom"))
	wantBackoffs := []time.Duration{4 * time.Second, 8 * time.Second, 8 * time.Second}
	for round, want := range wantBackoffs {
		before := clk.now()
		clk.advance(time.Minute) // past any jittered nextProbeAt
		p.probeDue()
		waitFor(t, fmt.Sprintf("probe round %d", round), func() bool {
			p.mu.Lock()
			defer p.mu.Unlock()
			return !p.workers[0].probing && p.workers[0].probeBackoff == want
		})
		p.mu.Lock()
		next := p.workers[0].nextProbeAt
		p.mu.Unlock()
		delay := next.Sub(before.Add(time.Minute))
		if delay < time.Duration(float64(want)*0.75) || delay > time.Duration(float64(want)*1.25) {
			t.Fatalf("round %d: next probe in %v, want within ±25%% of %v", round, delay, want)
		}
	}
}

// TestWorkerPoolPickRotation: the cursor round-robins the starting worker so
// load spreads across healthy workers.
func TestWorkerPoolPickRotation(t *testing.T) {
	clk := newFakeClock()
	p := NewWorkerPool([]string{"http://a", "http://b"}, WorkerPoolOptions{now: clk.now})
	defer p.Close()

	first := p.pick(2)
	second := p.pick(2)
	if first[0] == second[0] {
		t.Fatalf("consecutive picks started at the same worker: %v then %v", first, second)
	}
}

func TestWorkerPoolURLNormalization(t *testing.T) {
	clk := newFakeClock()
	p := NewWorkerPool(
		[]string{" http://a/ ", "http://a", "", "http://b"},
		WorkerPoolOptions{now: clk.now},
	)
	defer p.Close()
	if n := p.size(); n != 2 {
		t.Fatalf("pool size = %d, want 2 (dedup + trim)", n)
	}
}

func TestWorkerPoolCloseIdempotent(t *testing.T) {
	p := NewWorkerPool([]string{"http://a"}, WorkerPoolOptions{})
	p.Close()
	p.Close() // must not panic or deadlock
}

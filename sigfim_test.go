package sigfim

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func toyDataset(t *testing.T) *Dataset {
	t.Helper()
	d, err := FromTransactions([][]uint32{
		{0, 1, 2}, {0, 1}, {0, 1, 3}, {2, 3}, {0, 1, 2, 3}, {4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFromTransactionsAndAccessors(t *testing.T) {
	d := toyDataset(t)
	if d.NumItems() != 5 || d.NumTransactions() != 6 {
		t.Fatalf("dims = %d,%d", d.NumItems(), d.NumTransactions())
	}
	if got := d.Support([]uint32{0, 1}); got != 4 {
		t.Errorf("Support = %d, want 4", got)
	}
	tr := d.Transaction(0)
	if len(tr) != 3 || tr[0] != 0 {
		t.Errorf("Transaction(0) = %v", tr)
	}
}

func TestFIMIRoundTripPublic(t *testing.T) {
	d := toyDataset(t)
	var buf bytes.Buffer
	if err := d.WriteFIMI(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadFIMI(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rt.NumTransactions() != d.NumTransactions() {
		t.Fatal("round trip changed t")
	}
	if _, err := ReadFIMI(strings.NewReader("1 junk")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestProfileMeasurement(t *testing.T) {
	d := toyDataset(t)
	p := d.Profile("toy")
	if p.Name != "toy" || p.NumItems != 5 || p.NumTransactions != 6 {
		t.Fatalf("profile = %+v", p)
	}
	if p.FMax != 4.0/6 {
		t.Errorf("fmax = %v", p.FMax)
	}
	if math.Abs(p.AvgTransactionLen-15.0/6) > 1e-12 {
		t.Errorf("avg len = %v", p.AvgTransactionLen)
	}
}

func TestMineFacadeAlgorithms(t *testing.T) {
	d := toyDataset(t)
	var ref []Pattern
	for _, algo := range []string{"", AlgoAuto, AlgoEclat, AlgoEclatBit, AlgoApriori, AlgoFPGrowth} {
		ps, err := d.Mine(MineOptions{K: 2, MinSupport: 2, Algorithm: algo})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if ref == nil {
			ref = ps
			continue
		}
		if len(ps) != len(ref) {
			t.Fatalf("%s disagrees: %d vs %d patterns", algo, len(ps), len(ref))
		}
		for i := range ps {
			if ps[i].Support != ref[i].Support {
				t.Fatalf("%s support mismatch", algo)
			}
		}
	}
	if _, err := d.Mine(MineOptions{K: 2, MinSupport: 1, Algorithm: "nope"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := d.Mine(MineOptions{K: 2, MinSupport: 0}); err == nil {
		t.Error("zero support accepted")
	}
}

func TestCountKMatchesMinePublic(t *testing.T) {
	d := toyDataset(t)
	for k := 1; k <= 3; k++ {
		for s := 1; s <= 4; s++ {
			ps, err := d.Mine(MineOptions{K: k, MinSupport: s})
			if err != nil {
				t.Fatal(err)
			}
			if got := d.CountK(k, s); got != int64(len(ps)) {
				t.Fatalf("CountK(%d,%d) = %d, want %d", k, s, got, len(ps))
			}
		}
	}
}

func TestClosedItemsetsPublic(t *testing.T) {
	d, err := FromTransactions([][]uint32{{0, 1}, {0, 1}, {0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	closed := d.ClosedItemsets(1)
	// Closed sets: {0,1} (sup 3), {0,1,2} (sup 1).
	if len(closed) != 2 {
		t.Fatalf("closed = %v", closed)
	}
	big, ok := d.LargestClosedItemset(1)
	if !ok || len(big.Items) != 3 {
		t.Fatalf("largest closed = %v, %v", big, ok)
	}
	if _, ok := toyDatasetEmpty().LargestClosedItemset(1); ok {
		t.Error("empty dataset has a largest closed itemset")
	}
}

func toyDatasetEmpty() *Dataset {
	d, _ := FromTransactions([][]uint32{{}, {}})
	return d
}

func TestRandomTwinPreservesProfile(t *testing.T) {
	spec, err := BenchmarkProfile("Bms1")
	if err != nil {
		t.Fatal(err)
	}
	d := spec.Scale(64).Random(1)
	twin := d.RandomTwin(2)
	if twin.NumTransactions() != d.NumTransactions() || twin.NumItems() != d.NumItems() {
		t.Fatal("twin dims differ")
	}
	// Frequencies approximately preserved in aggregate.
	a := d.Profile("a")
	b := twin.Profile("b")
	if math.Abs(a.AvgTransactionLen-b.AvgTransactionLen) > 0.3*a.AvgTransactionLen+0.2 {
		t.Errorf("twin mean length %v vs %v", b.AvgTransactionLen, a.AvgTransactionLen)
	}
}

func TestSwapTwinPreservesMarginsExactly(t *testing.T) {
	d := toyDataset(t)
	twin := d.SwapTwin(3)
	for i := 0; i < d.NumTransactions(); i++ {
		if len(d.Transaction(i)) != len(twin.Transaction(i)) {
			t.Fatal("swap twin changed a transaction length")
		}
	}
	ap, bp := d.Profile("a"), twin.Profile("b")
	for i := range ap.Freqs {
		if ap.Freqs[i] != bp.Freqs[i] {
			t.Fatal("swap twin changed item frequencies")
		}
	}
}

func TestBenchmarkProfilesPublic(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 6 {
		t.Fatalf("profiles = %v", names)
	}
	if _, err := BenchmarkProfile("bogus"); err == nil {
		t.Error("bogus profile accepted")
	}
	spec, err := BenchmarkProfile("Retail")
	if err != nil {
		t.Fatal(err)
	}
	if spec.NumItems() != 16470 || spec.NumTransactions() != 88162 {
		t.Errorf("Retail dims = %d,%d", spec.NumItems(), spec.NumTransactions())
	}
	scaled := spec.Scale(16)
	if scaled.NumTransactions() != 88162/16 {
		t.Errorf("scaled t = %d", scaled.NumTransactions())
	}
	if scaled.Name() == "Retail" {
		t.Error("scaled name unchanged")
	}
}

func TestSignificantEndToEndNull(t *testing.T) {
	// A pure random benchmark twin should report s* = infinity.
	spec, err := BenchmarkProfile("Bms1")
	if err != nil {
		t.Fatal(err)
	}
	d := spec.Scale(64).Random(7)
	rep, err := d.Significant(2, &Config{Delta: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Infinite {
		t.Errorf("null twin produced finite s* = %d (Q=%d, lambda=%v)",
			rep.SStar, rep.NumSignificant, rep.Lambda)
	}
	if len(rep.Steps) == 0 {
		t.Error("no ladder steps recorded")
	}
}

func TestSignificantEndToEndPlanted(t *testing.T) {
	spec, err := BenchmarkProfile("Bms1")
	if err != nil {
		t.Fatal(err)
	}
	d := spec.Scale(16).Real(7)
	rep, err := d.Significant(2, &Config{Delta: 120, Seed: 5, WithBaseline: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Infinite {
		t.Fatal("planted benchmark reported infinite s*")
	}
	if rep.NumSignificant < 1 {
		t.Fatal("no significant itemsets")
	}
	if rep.Lambda > float64(rep.NumSignificant) {
		t.Errorf("lambda %v exceeds observed %d", rep.Lambda, rep.NumSignificant)
	}
	if int64(len(rep.Significant)) != rep.NumSignificant {
		t.Errorf("materialized %d of %d", len(rep.Significant), rep.NumSignificant)
	}
	if rep.Baseline == nil {
		t.Fatal("baseline missing")
	}
}

func TestFindSMinPublic(t *testing.T) {
	spec, err := BenchmarkProfile("Bms1")
	if err != nil {
		t.Fatal(err)
	}
	d := spec.Scale(64).Random(3)
	s, err := d.FindSMin(2, &Config{Delta: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s < 1 {
		t.Errorf("s_min = %d", s)
	}
}

func TestMaximalAndTopKPublic(t *testing.T) {
	d := toyDataset(t)
	maximal := d.MaximalItemsets(2)
	if len(maximal) == 0 {
		t.Fatal("no maximal itemsets")
	}
	// No maximal itemset may contain another.
	for i, a := range maximal {
		for j, b := range maximal {
			if i == j || len(a.Items) >= len(b.Items) {
				continue
			}
			contained := true
			bi := 0
			for _, x := range a.Items {
				for bi < len(b.Items) && b.Items[bi] < x {
					bi++
				}
				if bi >= len(b.Items) || b.Items[bi] != x {
					contained = false
					break
				}
			}
			if contained {
				t.Fatalf("maximal %v contained in %v", a.Items, b.Items)
			}
		}
	}
	top := d.TopKItemsets(2, 3)
	if len(top) != 3 {
		t.Fatalf("TopK returned %d", len(top))
	}
	if top[0].Support < top[1].Support || top[1].Support < top[2].Support {
		t.Fatal("TopK not descending")
	}
}

func TestRulesPublic(t *testing.T) {
	d, err := FromTransactions([][]uint32{
		{0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1},
		{0, 2}, {1}, {2}, {0, 1}, {0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := d.Rules(RuleOptions{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules")
	}
	for i := 1; i < len(rules); i++ {
		if rules[i].PValue < rules[i-1].PValue {
			t.Fatal("rules not sorted by p-value")
		}
	}
	if _, err := d.Rules(RuleOptions{MinSupport: 0}); err == nil {
		t.Error("MinSupport 0 accepted")
	}
	sig, err := d.SignificantRules(RuleOptions{MinSupport: 2}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) > len(rules) {
		t.Fatal("selection grew the set")
	}
}

package sigfim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"sigfim/internal/mining"
	"sigfim/internal/montecarlo"
	"sigfim/internal/randmodel"
	"sigfim/internal/trace"
)

// The distributed replicate fabric. Algorithm 1's Delta Monte Carlo
// replicates are embarrassingly parallel and deterministic per seed, so a
// coordinator can shard them across sigfimd workers: the replicate loop is
// split into half-open ranges, each range ships to a worker as a
// PartialRequest (addressed to a dataset by content hash, carrying the
// per-replicate seeds), the worker mines it through the exact code path the
// local pool uses (Dataset.MineReplicateRange), and the coordinator merges
// the returned RangePartials strictly in replicate-index order. Because
// replicate i always consumes seed i of the root RNG stream no matter which
// worker executes it, the merged result — and therefore the whole report —
// is bit-identical to a single-process run.
//
// Failure policy: dispatch goes through a WorkerPool supervisor (see
// workerpool.go) — every range request carries a hard HTTP deadline, a
// worker that keeps failing is ejected and stops receiving ranges until a
// health probe re-admits it, a 503 shed response backs the worker off
// without ejecting it, a straggling range can be hedged to a second worker
// (first valid partial wins; safe because partials are deterministic and
// validated), and a range no worker can serve is mined locally through the
// identical code path. None of this can change a byte of the result: every
// partial is validated against its request before it merges, and the merge
// order is fixed by replicate index regardless of who mined what.
//
// Configure a coordinator with Config.RemoteWorkers (or a shared
// Config.RemotePool); serve the worker side with sigfimd, whose POST
// /v1/partials endpoint calls MineReplicateRange against its dataset
// registry. Every sigfimd instance is a capable worker — there is no
// separate worker binary or mode flag.

// PartialRequest asks a worker to mine one replicate range. It is the body
// of sigfimd's POST /v1/partials and the input of Dataset.MineReplicateRange;
// the dataset is addressed by content hash so the coordinator and the worker
// provably mine the same bytes regardless of the names their registries use.
type PartialRequest struct {
	// DatasetHash is the content hash (Dataset.Hash) the worker must resolve
	// in its registry. Empty skips the check in MineReplicateRange (the
	// caller already holds the dataset); the HTTP endpoint requires it.
	DatasetHash string `json:"dataset_hash"`
	// From and To bound the half-open replicate range [From, To).
	From int `json:"from"`
	To   int `json:"to"`
	// K is the itemset size under study.
	K int `json:"k"`
	// Floor is the mining support threshold for every replicate in the range.
	Floor int `json:"floor"`
	// StatFloor, when positive, makes the worker additionally report each
	// replicate's minimum marginal Binomial p-value over itemsets with
	// support >= StatFloor (RangePartial.MinPs) — the Westfall-Young
	// statistic. Must be >= Floor; coordinators collecting it pin the two
	// equal. Zero (the default) skips collection.
	StatFloor int `json:"stat_floor,omitempty"`
	// Algorithm is one of the Algo* constants ("" = auto).
	Algorithm string `json:"algorithm,omitempty"`
	// Seeds holds one RNG seed per replicate; Seeds[i] drives replicate
	// From+i. The coordinator derives them from the root stream, so a
	// replicate's substream never depends on which worker executes it.
	Seeds []uint64 `json:"seeds"`
	// Workers bounds the worker-side intra-mine parallelism (0 = worker's
	// choice). It cannot influence the mined result.
	Workers int `json:"workers,omitempty"`
	// SwapNull selects swap randomization as the null model; the zero value
	// is the paper's independence model. SwapProposalsPerOccurrence and
	// SwapProposals parameterize the chain exactly as in Config.
	SwapNull                   bool `json:"swap_null,omitempty"`
	SwapProposalsPerOccurrence int  `json:"swap_ppo,omitempty"`
	SwapProposals              int  `json:"swap_proposals,omitempty"`
}

// RangePartial is the serializable product of mining one replicate range:
// per replicate, the k-itemsets whose support reached the floor, in the
// deterministic emission order of the miner. It is the response body of
// POST /v1/partials. The field layout mirrors the coordinator's internal
// partial exactly, so conversion is a struct cast.
type RangePartial struct {
	// From and To echo the replicate range.
	From int `json:"from"`
	To   int `json:"to"`
	// Floor is the mining threshold the range was mined at.
	Floor int `json:"floor"`
	// K is the itemset size.
	K int `json:"k"`
	// Counts[i] is the number of itemsets mined from replicate From+i.
	Counts []int32 `json:"counts"`
	// Items holds K item ids per itemset, concatenated across replicates in
	// range order; Sups holds the parallel supports.
	Items []uint32 `json:"items,omitempty"`
	Sups  []int32  `json:"sups,omitempty"`
	// MinPs, present exactly when the request carried a StatFloor, holds one
	// value per replicate: the minimum marginal Binomial p-value over the
	// replicate's itemsets with support >= StatFloor (montecarlo.MinPNone
	// when none reached it). float64 JSON round trips are exact, so the
	// Westfall-Young null distribution is bit-identical however many
	// processes it crossed.
	MinPs []float64 `json:"min_ps,omitempty"`
}

// nullModelFor builds the null model a PartialRequest names, constructed
// from the same dataset state the single-process pipeline uses — the worker
// and the coordinator therefore generate value-identical replicates.
func (ds *Dataset) nullModelFor(req PartialRequest) randmodel.Model {
	if req.SwapNull {
		return &randmodel.SwapModel{
			Base:                   ds.d,
			ProposalsPerOccurrence: req.SwapProposalsPerOccurrence,
			Proposals:              req.SwapProposals,
		}
	}
	return randmodel.IndependentModel{
		T:     ds.d.NumTransactions(),
		Freqs: ds.frequencies(),
	}
}

// MineReplicateRange executes one replicate-range request against this
// dataset and returns the mined partial. It is the worker side of the
// distributed fabric — sigfimd's POST /v1/partials calls it — and also the
// coordinator's local fallback when every remote worker fails, which is what
// guarantees the two paths cannot diverge: they are the same function. The
// context is honored at replicate boundaries.
func (ds *Dataset) MineReplicateRange(ctx context.Context, req PartialRequest) (*RangePartial, error) {
	if req.DatasetHash != "" && req.DatasetHash != ds.Hash() {
		return nil, fmt.Errorf("sigfim: dataset hash mismatch: request %s, dataset %s", req.DatasetHash, ds.Hash())
	}
	algo, err := mining.ParseAlgorithm(req.Algorithm)
	if err != nil {
		return nil, fmt.Errorf("sigfim: unknown algorithm %q", req.Algorithm)
	}
	mreq := montecarlo.RangeRequest{
		Range:     montecarlo.ReplicateRange{From: req.From, To: req.To},
		K:         req.K,
		Floor:     req.Floor,
		StatFloor: req.StatFloor,
		Algorithm: algo,
		Seeds:     req.Seeds,
		Workers:   req.Workers,
	}
	ds.vertical() // force the one-time lazy caches for concurrent safety
	var p montecarlo.Partial
	if err := montecarlo.MineRange(ctx, ds.nullModelFor(req), mreq, nil, &p); err != nil {
		return nil, err
	}
	out := RangePartial(p)
	return &out, nil
}

// remoteFabric is the coordinator's RangeRunner: it fans replicate ranges
// out over the supervised worker pool — each range gets a bounded sequence
// of attempts against eligible workers (with every attempt under the pool's
// HTTP deadline, and optionally a hedged duplicate dispatch once the first
// attempt straggles past hedgeDelay) and finally falls back to mining the
// range locally through the identical code path. Safe for concurrent calls.
type remoteFabric struct {
	ds         *Dataset
	pool       *WorkerPool
	hc         *http.Client
	template   PartialRequest // null model + algorithm; range fields filled per call
	retries    int            // max remote attempts per range
	hedgeDelay time.Duration  // 0 disables hedged dispatch
}

// newRangeRunner builds the montecarlo runner for cfg's remote
// configuration, together with the pool it dispatches through (so callers
// can consult its latency telemetry, e.g. for range autotuning) and a
// cleanup that releases any pool the runner had to create itself (a
// caller-supplied Config.RemotePool is left alone: its owner closes it).
func (ds *Dataset) newRangeRunner(cfg *Config) (montecarlo.RangeRunner, *WorkerPool, func()) {
	pool := cfg.RemotePool
	cleanup := func() {}
	if pool == nil {
		pool = NewWorkerPool(cfg.RemoteWorkers, WorkerPoolOptions{Timeout: cfg.RemoteTimeout})
		cleanup = pool.Close
	}
	retries := cfg.RemoteRetries
	if retries <= 0 {
		retries = pool.size()
	}
	f := &remoteFabric{
		ds:         ds,
		pool:       pool,
		hc:         pool.client(),
		retries:    retries,
		hedgeDelay: cfg.RemoteHedgeDelay,
		template: PartialRequest{
			DatasetHash:                ds.Hash(),
			Algorithm:                  cfg.Algorithm,
			SwapNull:                   cfg.SwapNull,
			SwapProposalsPerOccurrence: cfg.SwapProposalsPerOccurrence,
			SwapProposals:              cfg.SwapProposals,
		},
	}
	return f.run, pool, cleanup
}

// run executes one range: up to the retry budget of eligible workers are
// attempted (the supervisor orders them and skips ejected or backed-off
// ones), then the range runs locally. Only context cancellation aborts
// without the local fallback — no combination of worker failures can cost
// the job, and a worker the supervisor has ejected costs nothing at all.
// Each range records one fabric.range span with per-attempt children, so a
// job's trace attributes every range to the worker(s) that tried it.
func (f *remoteFabric) run(ctx context.Context, req montecarlo.RangeRequest) (*montecarlo.Partial, error) {
	wire := f.template
	wire.From = req.Range.From
	wire.To = req.Range.To
	wire.K = req.K
	wire.Floor = req.Floor
	wire.StatFloor = req.StatFloor
	wire.Seeds = req.Seeds
	wire.Workers = req.Workers

	rctx, rsp := trace.Start(ctx, "fabric.range",
		trace.Int("from", req.Range.From), trace.Int("to", req.Range.To))

	var lastErr error
	if candidates := f.pool.pick(f.retries); len(candidates) > 0 {
		p, err := f.runRemote(rctx, req, wire, candidates)
		if err == nil {
			rsp.End(trace.String("outcome", "ok"))
			return p, nil
		}
		if ctx.Err() != nil {
			rsp.End(trace.String("outcome", "canceled"))
			return nil, ctx.Err()
		}
		lastErr = err
	}
	f.pool.noteLocalFallback()
	lctx, lsp := trace.Start(rctx, "fabric.local")
	rp, err := f.ds.MineReplicateRange(lctx, wire)
	lsp.End(trace.String("outcome", "local-fallback"))
	if err != nil {
		rsp.End(trace.String("outcome", "error"))
		if lastErr != nil {
			return nil, fmt.Errorf("remote attempts failed (last: %v); local fallback: %w", lastErr, err)
		}
		return nil, err
	}
	rsp.End(trace.String("outcome", "local-fallback"))
	p := montecarlo.Partial(*rp)
	return &p, nil
}

// runRemote walks the candidate workers for one range. Attempts run
// sequentially on failure; when hedging is enabled, a second attempt is
// additionally launched in parallel once the current one has straggled past
// hedgeDelay, and the first valid partial wins (the loser is canceled).
// Every outcome is reported to the supervisor; attempts canceled because a
// sibling already won are not failures — losing a hedge race never touches
// health state — but their cancellation latency still lands in the
// worker's range-latency histogram (via noteHedgeLoss) so the telemetry
// accounts for every dispatched request.
func (f *remoteFabric) runRemote(ctx context.Context, req montecarlo.RangeRequest, wire PartialRequest, candidates []string) (*montecarlo.Partial, error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()

	type attempt struct {
		p      *montecarlo.Partial
		url    string
		err    error
		hedged bool
		lat    time.Duration
		sp     *trace.Active
	}
	results := make(chan attempt, len(candidates))
	next := 0
	launch := func(hedged bool) {
		url := candidates[next]
		next++
		if hedged {
			f.pool.noteHedge(url)
		}
		sctx, sp := trace.Start(actx, "fabric.attempt",
			trace.String("worker", url), trace.Int("attempt", next),
			trace.String("hedged", strconv.FormatBool(hedged)))
		go func() {
			start := time.Now()
			rp, err := postPartial(sctx, f.hc, url, wire)
			lat := time.Since(start)
			var p *montecarlo.Partial
			if err == nil {
				pp := montecarlo.Partial(*rp)
				if verr := pp.Validate(req); verr != nil {
					err = fmt.Errorf("worker %s: %w", url, verr)
				} else {
					p = &pp
				}
			}
			results <- attempt{p: p, url: url, err: err, hedged: hedged, lat: lat, sp: sp}
		}()
	}
	launch(false)
	outstanding := 1

	var hedge <-chan time.Time
	if f.hedgeDelay > 0 && len(candidates) > 1 {
		t := time.NewTimer(f.hedgeDelay)
		defer t.Stop()
		hedge = t.C
	}

	// drainLosers settles attempts still in flight after a winner returned:
	// each is canceled by the deferred cancel, and its latency-until-cancel
	// is recorded as a hedge loss. Runs detached so the winner's partial is
	// merged without waiting on the losers to notice the cancellation.
	drainLosers := func(n int) {
		if n <= 0 {
			return
		}
		go func() {
			for i := 0; i < n; i++ {
				l := <-results
				f.pool.noteHedgeLoss(l.url, l.lat)
				l.sp.End(trace.String("outcome", "hedge-loss"))
			}
		}()
	}

	var lastErr error
	for {
		select {
		case <-ctx.Done():
			drainLosers(outstanding)
			return nil, ctx.Err()
		case <-hedge:
			hedge = nil
			if next < len(candidates) {
				launch(true)
				outstanding++
			}
		case r := <-results:
			outstanding--
			if r.err == nil {
				f.pool.reportSuccess(r.url, r.lat, req.Range.To-req.Range.From)
				outcome := "ok"
				if r.hedged {
					outcome = "hedge-win"
				}
				r.sp.End(trace.String("outcome", outcome))
				drainLosers(outstanding)
				return r.p, nil
			}
			f.pool.reportFailure(r.url, r.err)
			lastErr = r.err
			if next < len(candidates) {
				launch(false)
				outstanding++
			} else if outstanding == 0 {
				r.sp.End(trace.String("outcome", "error"), trace.String("error", r.err.Error()))
				return nil, lastErr
			}
			// Another attempt was just launched or is still in flight, so
			// from this range's point of view the failure became a retry.
			r.sp.End(trace.String("outcome", "retry"), trace.String("error", r.err.Error()))
		}
	}
}

// maxPartialResponse bounds how many bytes of a worker's 200 response the
// coordinator will read. Partials for very low floors are large, but a
// response past this bound is a misbehaving worker, not a bigger partial.
const maxPartialResponse = 1 << 30

// postPartial performs one POST /v1/partials round trip against a worker.
// The 200 body is read through a hard size limit, must be exactly one JSON
// document (trailing garbage — a truncated proxy buffer, a corrupted stream
// — is rejected), and must echo the requested range before it is accepted;
// non-2xx responses come back as *workerHTTPError so the supervisor can
// classify load shedding (503/429 + Retry-After) apart from hard failures.
func postPartial(ctx context.Context, hc *http.Client, base string, req PartialRequest) (*RangePartial, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/partials", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	// Propagate trace context so the worker's /v1/partials log lines carry
	// the coordinator's trace/span and job IDs (see trace.Header contract).
	if h := trace.HeaderValue(ctx); h != "" {
		httpReq.Header.Set(trace.Header, h)
		if jid := trace.FromContext(ctx).JobID(); jid != "" {
			httpReq.Header.Set(trace.JobHeader, jid)
		}
	}
	resp, err := hc.Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("worker %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		herr := &workerHTTPError{url: base, status: resp.StatusCode}
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(msg, &e) == nil && e.Error != "" {
			herr.msg = e.Error
		} else {
			herr.msg = string(bytes.TrimSpace(msg))
		}
		if herr.shedding() {
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
				herr.retryAfter = time.Duration(secs) * time.Second
			}
		}
		return nil, herr
	}
	dec := json.NewDecoder(io.LimitReader(resp.Body, maxPartialResponse))
	var rp RangePartial
	if err := dec.Decode(&rp); err != nil {
		return nil, fmt.Errorf("worker %s: decode partial: %w", base, err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("worker %s: trailing data after partial JSON document", base)
	}
	if rp.From != req.From || rp.To != req.To || rp.K != req.K || rp.Floor > req.Floor {
		return nil, fmt.Errorf("worker %s: partial echo mismatch: got range [%d,%d) k=%d floor=%d, want [%d,%d) k=%d floor<=%d",
			base, rp.From, rp.To, rp.K, rp.Floor, req.From, req.To, req.K, req.Floor)
	}
	return &rp, nil
}

package sigfim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"

	"sigfim/internal/mining"
	"sigfim/internal/montecarlo"
	"sigfim/internal/randmodel"
)

// The distributed replicate fabric. Algorithm 1's Delta Monte Carlo
// replicates are embarrassingly parallel and deterministic per seed, so a
// coordinator can shard them across sigfimd workers: the replicate loop is
// split into half-open ranges, each range ships to a worker as a
// PartialRequest (addressed to a dataset by content hash, carrying the
// per-replicate seeds), the worker mines it through the exact code path the
// local pool uses (Dataset.MineReplicateRange), and the coordinator merges
// the returned RangePartials strictly in replicate-index order. Because
// replicate i always consumes seed i of the root RNG stream no matter which
// worker executes it, the merged result — and therefore the whole report —
// is bit-identical to a single-process run.
//
// Configure a coordinator with Config.RemoteWorkers; serve the worker side
// with sigfimd, whose POST /v1/partials endpoint calls MineReplicateRange
// against its dataset registry. Every sigfimd instance is a capable worker —
// there is no separate worker binary or mode flag.

// PartialRequest asks a worker to mine one replicate range. It is the body
// of sigfimd's POST /v1/partials and the input of Dataset.MineReplicateRange;
// the dataset is addressed by content hash so the coordinator and the worker
// provably mine the same bytes regardless of the names their registries use.
type PartialRequest struct {
	// DatasetHash is the content hash (Dataset.Hash) the worker must resolve
	// in its registry. Empty skips the check in MineReplicateRange (the
	// caller already holds the dataset); the HTTP endpoint requires it.
	DatasetHash string `json:"dataset_hash"`
	// From and To bound the half-open replicate range [From, To).
	From int `json:"from"`
	To   int `json:"to"`
	// K is the itemset size under study.
	K int `json:"k"`
	// Floor is the mining support threshold for every replicate in the range.
	Floor int `json:"floor"`
	// Algorithm is one of the Algo* constants ("" = auto).
	Algorithm string `json:"algorithm,omitempty"`
	// Seeds holds one RNG seed per replicate; Seeds[i] drives replicate
	// From+i. The coordinator derives them from the root stream, so a
	// replicate's substream never depends on which worker executes it.
	Seeds []uint64 `json:"seeds"`
	// Workers bounds the worker-side intra-mine parallelism (0 = worker's
	// choice). It cannot influence the mined result.
	Workers int `json:"workers,omitempty"`
	// SwapNull selects swap randomization as the null model; the zero value
	// is the paper's independence model. SwapProposalsPerOccurrence and
	// SwapProposals parameterize the chain exactly as in Config.
	SwapNull                   bool `json:"swap_null,omitempty"`
	SwapProposalsPerOccurrence int  `json:"swap_ppo,omitempty"`
	SwapProposals              int  `json:"swap_proposals,omitempty"`
}

// RangePartial is the serializable product of mining one replicate range:
// per replicate, the k-itemsets whose support reached the floor, in the
// deterministic emission order of the miner. It is the response body of
// POST /v1/partials. The field layout mirrors the coordinator's internal
// partial exactly, so conversion is a struct cast.
type RangePartial struct {
	// From and To echo the replicate range.
	From int `json:"from"`
	To   int `json:"to"`
	// Floor is the mining threshold the range was mined at.
	Floor int `json:"floor"`
	// K is the itemset size.
	K int `json:"k"`
	// Counts[i] is the number of itemsets mined from replicate From+i.
	Counts []int32 `json:"counts"`
	// Items holds K item ids per itemset, concatenated across replicates in
	// range order; Sups holds the parallel supports.
	Items []uint32 `json:"items,omitempty"`
	Sups  []int32  `json:"sups,omitempty"`
}

// nullModelFor builds the null model a PartialRequest names, constructed
// from the same dataset state the single-process pipeline uses — the worker
// and the coordinator therefore generate value-identical replicates.
func (ds *Dataset) nullModelFor(req PartialRequest) randmodel.Model {
	if req.SwapNull {
		return &randmodel.SwapModel{
			Base:                   ds.d,
			ProposalsPerOccurrence: req.SwapProposalsPerOccurrence,
			Proposals:              req.SwapProposals,
		}
	}
	return randmodel.IndependentModel{
		T:     ds.d.NumTransactions(),
		Freqs: ds.frequencies(),
	}
}

// MineReplicateRange executes one replicate-range request against this
// dataset and returns the mined partial. It is the worker side of the
// distributed fabric — sigfimd's POST /v1/partials calls it — and also the
// coordinator's local fallback when every remote worker fails, which is what
// guarantees the two paths cannot diverge: they are the same function. The
// context is honored at replicate boundaries.
func (ds *Dataset) MineReplicateRange(ctx context.Context, req PartialRequest) (*RangePartial, error) {
	if req.DatasetHash != "" && req.DatasetHash != ds.Hash() {
		return nil, fmt.Errorf("sigfim: dataset hash mismatch: request %s, dataset %s", req.DatasetHash, ds.Hash())
	}
	algo, err := mining.ParseAlgorithm(req.Algorithm)
	if err != nil {
		return nil, fmt.Errorf("sigfim: unknown algorithm %q", req.Algorithm)
	}
	mreq := montecarlo.RangeRequest{
		Range:     montecarlo.ReplicateRange{From: req.From, To: req.To},
		K:         req.K,
		Floor:     req.Floor,
		Algorithm: algo,
		Seeds:     req.Seeds,
		Workers:   req.Workers,
	}
	ds.vertical() // force the one-time lazy caches for concurrent safety
	var p montecarlo.Partial
	if err := montecarlo.MineRange(ctx, ds.nullModelFor(req), mreq, nil, &p); err != nil {
		return nil, err
	}
	out := RangePartial(p)
	return &out, nil
}

// remoteFabric is the coordinator's RangeRunner: it fans replicate ranges
// out over the configured sigfimd workers, round-robining the starting
// worker per range so load spreads, retrying each range on every other
// worker on failure, and finally falling back to mining the range locally
// through the identical code path. Safe for concurrent calls.
type remoteFabric struct {
	ds       *Dataset
	workers  []string
	hc       *http.Client
	template PartialRequest // null model + algorithm; range fields filled per call
	next     atomic.Uint64  // round-robin cursor over workers
}

// newRangeRunner builds the montecarlo runner for cfg.RemoteWorkers.
func (ds *Dataset) newRangeRunner(cfg *Config) montecarlo.RangeRunner {
	f := &remoteFabric{
		ds: ds,
		hc: http.DefaultClient,
		template: PartialRequest{
			DatasetHash:                ds.Hash(),
			Algorithm:                  cfg.Algorithm,
			SwapNull:                   cfg.SwapNull,
			SwapProposalsPerOccurrence: cfg.SwapProposalsPerOccurrence,
			SwapProposals:              cfg.SwapProposals,
		},
	}
	for _, w := range cfg.RemoteWorkers {
		if w = strings.TrimRight(strings.TrimSpace(w), "/"); w != "" {
			f.workers = append(f.workers, w)
		}
	}
	return f.run
}

// run executes one range: each worker gets one attempt (starting from the
// round-robin cursor), then the range runs locally. Only context
// cancellation aborts without the local fallback — a dead worker costs one
// failed HTTP round trip, never the job.
func (f *remoteFabric) run(ctx context.Context, req montecarlo.RangeRequest) (*montecarlo.Partial, error) {
	wire := f.template
	wire.From = req.Range.From
	wire.To = req.Range.To
	wire.K = req.K
	wire.Floor = req.Floor
	wire.Seeds = req.Seeds
	wire.Workers = req.Workers

	var lastErr error
	if n := len(f.workers); n > 0 {
		start := int(f.next.Add(1)-1) % n
		for i := 0; i < n; i++ {
			worker := f.workers[(start+i)%n]
			rp, err := postPartial(ctx, f.hc, worker, wire)
			if err == nil {
				p := montecarlo.Partial(*rp)
				return &p, nil
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err
		}
	}
	rp, err := f.ds.MineReplicateRange(ctx, wire)
	if err != nil {
		if lastErr != nil {
			return nil, fmt.Errorf("all %d workers failed (last: %v); local fallback: %w", len(f.workers), lastErr, err)
		}
		return nil, err
	}
	p := montecarlo.Partial(*rp)
	return &p, nil
}

// postPartial performs one POST /v1/partials round trip against a worker.
func postPartial(ctx context.Context, hc *http.Client, base string, req PartialRequest) (*RangePartial, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/partials", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("worker %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(msg, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("worker %s: %s (HTTP %d)", base, e.Error, resp.StatusCode)
		}
		return nil, fmt.Errorf("worker %s: HTTP %d: %s", base, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var rp RangePartial
	if err := json.NewDecoder(resp.Body).Decode(&rp); err != nil {
		return nil, fmt.Errorf("worker %s: decode partial: %w", base, err)
	}
	return &rp, nil
}
